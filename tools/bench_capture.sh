#!/usr/bin/env bash
# Captures the perf-trajectory seed point: runs the JSON-emitting data-plane
# benches and writes their machine-readable lines to BENCH_<shortsha>.json
# at the repo root, where <shortsha> is the current HEAD (when run before
# committing, the datapoint is attributed to the parent of the commit that
# ships it; the "commit" field inside each line carries the configure-time
# SHA the binaries were built from).
#
# Usage: tools/bench_capture.sh [build_dir]    (default: <repo>/build)
#
# bench_gf_bulk registers one benchmark per GF implementation the host
# supports (generic is always included), so a single run covers the whole
# scalar-vs-SIMD spread. bench_ida follows the dispatched implementation,
# so it runs twice: once pinned to the generic kernels via BDISK_GF_IMPL
# and once on the probed best; its metric names carry the implementation
# prefix, so the lines coexist in one file.
#
# The finished capture is validated with `bench_compare --check` (when the
# tool is built): every line must parse as a trajectory datapoint and the
# file must be non-empty, so a silently-broken capture fails here instead
# of committing an unusable trajectory.

set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$root/build}"
sha="$(git -C "$root" rev-parse --short HEAD)"
out="$root/BENCH_${sha}.json"

for bench in bench_gf_bulk bench_ida bench_store bench_net; do
  if [[ ! -x "$build/$bench" ]]; then
    echo "error: $build/$bench not built (configure with benchmarks on)" >&2
    exit 1
  fi
done

: > "$out"

capture() {
  echo "== $*" >&2
  # pipefail makes a failing bench (or a bench that emits no JSON line)
  # fail the capture instead of writing a silently truncated trajectory.
  "$@" | grep '^{"bench"' >> "$out"
}

capture "$build/bench_gf_bulk"
BDISK_GF_IMPL=generic capture "$build/bench_ida"
# Persistent-store datapoints (build/read MiB/s and the peak-RSS-under-cap
# proof); the bench exits non-zero if RSS breaches the cap, which pipefail
# turns into a failed capture.
capture "$build/bench_store" --store-bytes 256MiB --cap-bytes 64MiB --reads 256 --path "$(mktemp -u)"
# Wire-pacing datapoints (token-bucket accuracy per rate); the bench exits
# non-zero past the ±5% gate, which pipefail turns into a failed capture.
capture "$build/bench_net" --seconds 0.5

# Second bench_ida run on the probed-best implementation, shielded from any
# BDISK_GF_IMPL in the caller's environment. Skipped when the probe's best
# IS generic (pre-SSSE3 hosts) — its datapoints would duplicate the pinned
# run's metrics with conflicting values.
best_lines="$(mktemp)"
trap 'rm -f "$best_lines"' EXIT
echo "== $build/bench_ida (probed best)" >&2
env -u BDISK_GF_IMPL "$build/bench_ida" | grep '^{"bench"' > "$best_lines"
if grep -q '"metric":"generic:' "$best_lines"; then
  echo "   probed best is generic; skipping duplicate datapoints" >&2
else
  cat "$best_lines" >> "$out"
fi

# Validate the capture before anyone commits it. --check fails on an
# empty file and on any line that is not a well-formed datapoint.
if [[ -x "$build/bench_compare" ]]; then
  "$build/bench_compare" --check "$out" >&2
else
  echo "warning: $build/bench_compare not built; capture not validated" >&2
  if [[ ! -s "$out" ]]; then
    echo "error: capture '$out' is empty" >&2
    exit 1
  fi
fi

echo "wrote $(grep -c . "$out") datapoints to $out" >&2
