// bdisk_trace — filter and summarize a --trace-out Chrome trace.
//
// Reads the Chrome trace-event JSON written by `bdisk_planner --trace-out`
// (obs/trace.h) and renders the captured retrieval spans as a table, a
// top-N slowest summary with stall attribution, or a filtered Chrome
// document ready for chrome://tracing / Perfetto.
//
// Usage:
//   bdisk_trace [--client N] [--file NAME] [--outcome ok|deadline_miss|
//               undecodable] [--summary] [--top N] [--chrome]
//               <trace.json | ->
//
// --client / --file / --outcome keep only retrieval spans matching the
// given request id, file name, or outcome (controller swap-decision spans
// are dropped once any filter is set). --summary prints the top N spans
// (default 10, --top to change) ranked by reconstruction stall, then
// latency, with the faults behind each stall split into lost and corrupt
// transmissions. --chrome re-emits the surviving events as a valid Chrome
// trace document on stdout instead of a table, for drilling into a few
// requests without loading the full capture.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "runtime/flags.h"

namespace {

using bdisk::obs::JsonValue;
using bdisk::obs::ParseJson;
using bdisk::obs::ToCanonicalJson;

double Num(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.Find(key);
  return v != nullptr && v->is_number() ? v->number : 0.0;
}

std::string Str(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.Find(key);
  return v != nullptr && v->is_string() ? v->string_value : std::string();
}

std::uint64_t U64(const JsonValue& obj, const char* key) {
  return static_cast<std::uint64_t>(Num(obj, key));
}

// One parsed "X" (complete) event of the capture.
struct SpanRow {
  std::uint64_t pid = 0;
  std::uint64_t tid = 0;
  std::uint64_t ts = 0;
  std::uint64_t dur = 0;
  bool retrieval = false;
  // Retrieval fields.
  std::uint64_t request = 0;
  std::string file;
  std::string outcome;
  std::uint64_t latency = 0;
  std::uint64_t stall = 0;
  std::uint64_t errors = 0;
  std::uint64_t corrupt = 0;
  std::string trigger;
  // Controller fields.
  std::uint64_t interval = 0;
  bool swapped = false;
};

struct Filters {
  bool have_client = false;
  std::uint64_t client = 0;
  const char* file = nullptr;
  const char* outcome = nullptr;

  bool any() const {
    return have_client || file != nullptr || outcome != nullptr;
  }

  bool Keep(const SpanRow& row) const {
    if (!row.retrieval) return !any();
    if (have_client && row.request != client) return false;
    if (file != nullptr && row.file != file) return false;
    if (outcome != nullptr && row.outcome != outcome) return false;
    return true;
  }
};

std::vector<SpanRow> ExtractSpans(const JsonValue& events) {
  std::vector<SpanRow> rows;
  for (const JsonValue& e : events.array) {
    if (!e.is_object() || Str(e, "ph") != "X") continue;
    const JsonValue* args = e.Find("args");
    if (args == nullptr || !args->is_object()) continue;
    SpanRow row;
    row.pid = U64(e, "pid");
    row.tid = U64(e, "tid");
    row.ts = U64(e, "ts");
    row.dur = U64(e, "dur");
    row.trigger = Str(*args, "trigger");
    const std::string cat = Str(e, "cat");
    if (cat == "retrieval") {
      row.retrieval = true;
      row.request = U64(*args, "request");
      row.file = Str(*args, "file");
      row.outcome = Str(*args, "outcome");
      row.latency = U64(*args, "latency");
      row.stall = U64(*args, "stall_slots");
      row.errors = U64(*args, "errors_observed");
      row.corrupt = U64(*args, "corrupt_detected");
    } else if (cat == "controller") {
      row.interval = U64(*args, "interval");
      const JsonValue* swapped = args->Find("swapped");
      row.swapped = swapped != nullptr && swapped->bool_value;
    } else {
      continue;
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

void PrintTable(const std::vector<SpanRow>& rows) {
  std::size_t retrievals = 0;
  std::size_t controller = 0;
  for (const SpanRow& row : rows) (row.retrieval ? retrievals : controller)++;
  if (retrievals > 0) {
    std::printf("%10s %-16s %10s %8s %13s %6s %5s+%-5s %s\n", "request",
                "file", "start", "latency", "outcome", "stall", "lost",
                "corr", "trigger");
    for (const SpanRow& row : rows) {
      if (!row.retrieval) continue;
      std::printf("%10llu %-16s %10llu %8llu %13s %6llu %5llu+%-5llu %s\n",
                  static_cast<unsigned long long>(row.request),
                  row.file.c_str(),
                  static_cast<unsigned long long>(row.ts),
                  static_cast<unsigned long long>(row.latency),
                  row.outcome.c_str(),
                  static_cast<unsigned long long>(row.stall),
                  static_cast<unsigned long long>(row.errors - row.corrupt),
                  static_cast<unsigned long long>(row.corrupt),
                  row.trigger.c_str());
    }
  }
  if (controller > 0) {
    std::printf("%s%10s %10s %10s %8s\n", retrievals > 0 ? "\n" : "",
                "interval", "start", "end", "swapped");
    for (const SpanRow& row : rows) {
      if (row.retrieval) continue;
      std::printf("%10llu %10llu %10llu %8s\n",
                  static_cast<unsigned long long>(row.interval),
                  static_cast<unsigned long long>(row.ts),
                  static_cast<unsigned long long>(row.ts + row.dur),
                  row.swapped ? "yes" : "no");
    }
  }
  std::printf("\n%zu retrieval span(s), %zu controller span(s)\n",
              retrievals, controller);
}

void PrintSummary(const std::vector<SpanRow>& rows, std::uint64_t top) {
  std::vector<const SpanRow*> retrievals;
  std::map<std::string, std::size_t> by_outcome;
  std::uint64_t swaps = 0;
  std::size_t controller = 0;
  for (const SpanRow& row : rows) {
    if (!row.retrieval) {
      ++controller;
      if (row.swapped) ++swaps;
      continue;
    }
    retrievals.push_back(&row);
    ++by_outcome[row.outcome];
  }
  std::printf("%zu retrieval span(s)", retrievals.size());
  for (const auto& [outcome, count] : by_outcome) {
    std::printf(", %zu %s", count, outcome.c_str());
  }
  if (controller > 0) {
    std::printf("; %zu controller interval(s), %llu swap(s)", controller,
                static_cast<unsigned long long>(swaps));
  }
  std::printf("\n");
  if (retrievals.empty()) return;

  // Slowest first: stall, then latency, then request id for a total and
  // deterministic order (undecodables carry latency 0 but surface through
  // their stall-free "undecodable" outcome above and the table filter).
  std::sort(retrievals.begin(), retrievals.end(),
            [](const SpanRow* a, const SpanRow* b) {
              if (a->stall != b->stall) return a->stall > b->stall;
              if (a->latency != b->latency) return a->latency > b->latency;
              return a->request < b->request;
            });
  const std::size_t n =
      std::min<std::size_t>(retrievals.size(),
                            static_cast<std::size_t>(top));
  std::printf("\ntop %zu by reconstruction stall:\n", n);
  std::printf("%10s %-16s %8s %6s %13s  stall attribution\n", "request",
              "file", "latency", "stall", "outcome");
  for (std::size_t i = 0; i < n; ++i) {
    const SpanRow& row = *retrievals[i];
    std::printf("%10llu %-16s %8llu %6llu %13s  %llu lost, %llu corrupt\n",
                static_cast<unsigned long long>(row.request),
                row.file.c_str(),
                static_cast<unsigned long long>(row.latency),
                static_cast<unsigned long long>(row.stall),
                row.outcome.c_str(),
                static_cast<unsigned long long>(row.errors - row.corrupt),
                static_cast<unsigned long long>(row.corrupt));
  }
}

// Re-emits the events surviving the filter as one Chrome trace document:
// metadata ("M") events pass through, "X"/"i" events survive iff their
// (pid, tid) lane belongs to a kept span.
void PrintChrome(const JsonValue& doc, const JsonValue& events,
                 const std::vector<SpanRow>& kept) {
  std::set<std::pair<std::uint64_t, std::uint64_t>> lanes;
  for (const SpanRow& row : kept) lanes.insert({row.pid, row.tid});
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const JsonValue& e : events.array) {
    if (!e.is_object()) continue;
    const std::string ph = Str(e, "ph");
    if (ph != "M" && lanes.count({U64(e, "pid"), U64(e, "tid")}) == 0) {
      continue;
    }
    out += first ? "\n" : ",\n";
    first = false;
    out += ToCanonicalJson(e);
  }
  out += "\n],\n\"otherData\":";
  const JsonValue* other = doc.Find("otherData");
  out += other != nullptr ? ToCanonicalJson(*other) : "{}";
  out += ",\n\"displayTimeUnit\":";
  const JsonValue* unit = doc.Find("displayTimeUnit");
  out += unit != nullptr ? ToCanonicalJson(*unit) : "\"ms\"";
  out += "}\n";
  std::fwrite(out.data(), 1, out.size(), stdout);
}

}  // namespace

int main(int argc, char** argv) {
  const bool summary = bdisk::runtime::ConsumeBoolFlag(&argc, argv,
                                                       "summary");
  const bool chrome = bdisk::runtime::ConsumeBoolFlag(&argc, argv, "chrome");
  const char* client_token =
      bdisk::runtime::ConsumeStringFlag(&argc, argv, "client");
  const char* top_token = bdisk::runtime::ConsumeStringFlag(&argc, argv,
                                                            "top");
  Filters filters;
  filters.file = bdisk::runtime::ConsumeStringFlag(&argc, argv, "file");
  filters.outcome = bdisk::runtime::ConsumeStringFlag(&argc, argv,
                                                      "outcome");
  if (argc != 2) {
    std::fprintf(stderr,
                 "usage: %s [--client N] [--file NAME] [--outcome "
                 "ok|deadline_miss|undecodable] [--summary] [--top N] "
                 "[--chrome] <trace.json | ->\n",
                 argv[0]);
    return 2;
  }
  if (client_token != nullptr) {
    if (!bdisk::runtime::ParseUint64Token(client_token, &filters.client)) {
      std::fprintf(stderr, "error: --client must be a non-negative integer, "
                   "got '%s'\n", client_token);
      return 2;
    }
    filters.have_client = true;
  }
  std::uint64_t top = 10;
  if (top_token != nullptr &&
      (!bdisk::runtime::ParseUint64Token(top_token, &top) || top == 0)) {
    std::fprintf(stderr, "error: --top must be a positive integer, got "
                 "'%s'\n", top_token);
    return 2;
  }
  if (filters.outcome != nullptr) {
    const std::string o = filters.outcome;
    if (o != "ok" && o != "deadline_miss" && o != "undecodable") {
      std::fprintf(stderr, "error: --outcome must be ok, deadline_miss, or "
                   "undecodable, got '%s'\n", filters.outcome);
      return 2;
    }
  }

  const char* path = argv[1];
  std::ostringstream text;
  if (std::string(path) == "-") {
    text << std::cin.rdbuf();
  } else {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "error: cannot open '%s'\n", path);
      return 1;
    }
    text << in.rdbuf();
  }
  auto doc = ParseJson(text.str());
  if (!doc.ok()) {
    std::fprintf(stderr, "error: %s\n", doc.status().ToString().c_str());
    return 1;
  }
  const JsonValue* events = doc->Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    std::fprintf(stderr, "error: '%s' has no traceEvents array\n", path);
    return 1;
  }

  std::vector<SpanRow> rows = ExtractSpans(*events);
  std::vector<SpanRow> kept;
  for (SpanRow& row : rows) {
    if (filters.Keep(row)) kept.push_back(std::move(row));
  }
  if (chrome) {
    PrintChrome(*doc, *events, kept);
  } else if (summary) {
    PrintSummary(kept, top);
  } else {
    PrintTable(kept);
  }
  return 0;
}
