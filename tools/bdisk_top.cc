// bdisk_top — live dashboard over a --metrics-out snapshot stream.
//
// Reads the JSON-line stream written by `bdisk_planner --metrics-out` (or
// any obs::WriteSnapshotStream caller) and renders a table of the run's
// progress over the simulated clock: one row per snapshot line with
// completed retrievals, delay mean/max and p50/p90/p99, deadline misses,
// and observed channel errors; the final row adds the undecodable and
// miss rates that are only knowable at the horizon. When the stream
// carries a "registry" line, a footer derives throughput figures from the
// process-wide instruments: GF encode/decode GB/s, event-engine events/s,
// and adaptive hot swaps.
//
// Usage:
//   bdisk_top [--follow] [--rows N] stream.jsonl
//
// --follow polls the file every 500 ms and redraws in place (ANSI),
// tailing a run that is still appending; only the bytes appended since
// the previous poll are parsed, and a truncated or replaced file (a new
// run re-creating it) restarts the tail from byte zero. Ctrl-C to stop.
// --rows N limits
// the table to the last N snapshot rows (default 20; 0 = all). A stream
// holding several runs (e.g. --adaptive appends static + adaptive
// replays) renders the last run, with a header count of the others.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/stream_tail.h"
#include "runtime/flags.h"

namespace {

using bdisk::obs::JsonValue;
using bdisk::obs::ParseJson;

double Num(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.Find(key);
  return v != nullptr && v->is_number() ? v->number : 0.0;
}

struct Stream {
  std::size_t runs = 0;           // Header lines seen.
  std::vector<JsonValue> rows;    // Snapshot + final lines of the last run.
  JsonValue header;               // Last run's header.
  JsonValue registry;             // Last registry line (if any).
  bool has_registry = false;
  std::size_t bad_lines = 0;
};

// Folds one stream line into the state, keeping only the last run's rows
// (a file may hold several appended runs).
void FoldLine(Stream* s, const std::string& line) {
  if (line.empty()) return;
  auto parsed = ParseJson(line);
  if (!parsed.ok() || !parsed->is_object()) {
    ++s->bad_lines;
    return;
  }
  const JsonValue* type = parsed->Find("type");
  if (type == nullptr || !type->is_string()) {
    ++s->bad_lines;
    return;
  }
  if (type->string_value == "header") {
    ++s->runs;
    s->header = std::move(*parsed);
    s->rows.clear();
  } else if (type->string_value == "snapshot" ||
             type->string_value == "final") {
    s->rows.push_back(std::move(*parsed));
  } else if (type->string_value == "registry") {
    s->registry = std::move(*parsed);
    s->has_registry = true;
  } else {
    ++s->bad_lines;
  }
}

// Incremental tailing is obs::StreamTail's job: --follow polls every
// 500 ms, and re-parsing the whole stream on every tick makes the
// dashboard quadratic in run length; the tailer remembers how many bytes
// were folded and parses only what the producer appended since.
//
// Exactly-once framing: the authoritative Stream folds only completed
// lines. A trailing line the producer has not newline-terminated yet is
// *displayed* by folding it into a throwaway copy of the Stream each
// redraw (RenderView below) — so the dashboard shows it immediately, and
// when its newline finally arrives the authoritative fold parses it
// exactly once (no drop while pending, no double-count on completion).

void RenderRegistryFooter(const JsonValue& registry) {
  // Derived throughput: bytes counters over the matching phase-timer sums
  // (histogram "sum" is total microseconds spent in that phase).
  const auto phase_us = [&](const char* name) {
    const JsonValue* h = registry.Find(name);
    return h != nullptr && h->is_object() ? Num(*h, "sum") : 0.0;
  };
  const double encode_us = phase_us("phase.encode_us");
  const double decode_us = phase_us("phase.decode_us");
  const double drain_us = phase_us("phase.event_drain_us");
  const double encode_bytes = Num(registry, "ida.encode_bytes");
  const double decode_bytes = Num(registry, "ida.decode_bytes");
  const double events = Num(registry, "sim.events");
  const double swaps = Num(registry, "adaptive.swaps");

  std::printf("\nprocess instruments (wall clock):\n");
  if (encode_us > 0.0) {
    std::printf("  GF encode: %8.3f GB/s (%.0f MB in %.1f ms)\n",
                encode_bytes / 1e3 / encode_us, encode_bytes / 1e6,
                encode_us / 1e3);
  }
  if (decode_us > 0.0) {
    std::printf("  GF decode: %8.3f GB/s (%.0f MB in %.1f ms)\n",
                decode_bytes / 1e3 / decode_us, decode_bytes / 1e6,
                decode_us / 1e3);
  }
  if (drain_us > 0.0) {
    std::printf("  events:    %8.3f M events/s (%.0f events in %.1f ms)\n",
                events / drain_us, events, drain_us / 1e3);
  }
  if (swaps > 0.0) {
    std::printf("  hot swaps: %.0f\n", swaps);
  }
}

void Render(const Stream& s, std::size_t max_rows, const char* path) {
  if (s.runs == 0) {
    std::printf("bdisk_top: no snapshot stream in '%s' yet\n", path);
    return;
  }
  std::printf("bdisk_top: %s — showing run %zu (last of %zu), interval "
              "%llu slots, horizon %llu slots\n",
              path, s.runs, s.runs,
              static_cast<unsigned long long>(Num(s.header,
                                                  "interval_slots")),
              static_cast<unsigned long long>(Num(s.header, "horizon")));
  std::printf("%10s %10s %9s %9s %9s %6s %6s %6s %7s %8s\n", "slot",
              "completed", "+intvl", "mean_lat", "max_lat", "p50", "p90",
              "p99", "missed", "errors");
  const std::size_t begin =
      max_rows > 0 && s.rows.size() > max_rows ? s.rows.size() - max_rows
                                               : 0;
  if (begin > 0) {
    std::printf("  ... %zu earlier snapshots ...\n", begin);
  }
  for (std::size_t i = begin; i < s.rows.size(); ++i) {
    const JsonValue& r = s.rows[i];
    std::printf("%10llu %10llu %9llu %9.2f %9.0f %6llu %6llu %6llu "
                "%7llu %8llu\n",
                static_cast<unsigned long long>(Num(r, "slot")),
                static_cast<unsigned long long>(Num(r, "completed")),
                static_cast<unsigned long long>(
                    Num(r, "interval_completed")),
                Num(r, "mean_latency"), Num(r, "max_latency"),
                static_cast<unsigned long long>(Num(r, "p50_latency")),
                static_cast<unsigned long long>(Num(r, "p90_latency")),
                static_cast<unsigned long long>(Num(r, "p99_latency")),
                static_cast<unsigned long long>(Num(r, "missed_deadline")),
                static_cast<unsigned long long>(Num(r, "errors_observed")));
  }
  if (!s.rows.empty()) {
    const JsonValue& last = s.rows.back();
    const JsonValue* type = last.Find("type");
    if (type != nullptr && type->string_value == "final") {
      std::printf("final: %llu attempts, undecodable rate %.4f, miss rate "
                  "%.4f\n",
                  static_cast<unsigned long long>(Num(last, "attempts")),
                  Num(last, "undecodable_rate"), Num(last, "miss_rate"));
    } else {
      std::printf("(run in progress — no final line yet)\n");
    }
  }
  if (s.has_registry) RenderRegistryFooter(s.registry);
  if (s.bad_lines > 0) {
    std::printf("warning: %zu unparseable lines skipped\n", s.bad_lines);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto follow_flag =
      bdisk::runtime::ConsumeBoolFlagOnce(&argc, argv, "follow");
  if (!follow_flag.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 follow_flag.status().message().c_str());
    return 2;
  }
  const bool follow = *follow_flag;
  const auto rows_flag =
      bdisk::runtime::ConsumeUintFlagOnce(&argc, argv, "rows", 20);
  if (!rows_flag.ok()) {
    std::fprintf(stderr, "error: %s\n", rows_flag.status().message().c_str());
    return 2;
  }
  const std::uint64_t max_rows = *rows_flag;
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s [--follow] [--rows N] stream.jsonl\n",
                 argv[0]);
    return 2;
  }
  const char* path = argv[1];

  bdisk::obs::StreamTail tail;
  Stream stream;
  for (;;) {
    bool restarted = false;
    const bool opened = tail.PollFile(
        path, [&stream, &restarted](const std::string& line) {
          if (restarted) {
            // First line after a truncate/replace: the folded state
            // describes a file that no longer exists.
            stream = Stream{};
            restarted = false;
          }
          FoldLine(&stream, line);
        },
        &restarted);
    if (restarted) stream = Stream{};  // Restart with no complete line yet.
    if (!opened && !follow) {
      std::fprintf(stderr, "error: cannot open '%s'\n", path);
      return 1;
    }
    if (follow) {
      // Home + clear-to-end redraw keeps the table in place while the
      // producer appends.
      std::printf("\033[H\033[J");
    }
    if (opened) {
      // Speculatively fold the unterminated trailing line (if any) into a
      // throwaway view; the authoritative `stream` only ever folds on a
      // newline, so the completed line is never counted twice.
      if (!tail.pending().empty()) {
        Stream view = stream;
        FoldLine(&view, tail.pending());
        Render(view, static_cast<std::size_t>(max_rows), path);
      } else {
        Render(stream, static_cast<std::size_t>(max_rows), path);
      }
    } else {
      std::printf("bdisk_top: waiting for '%s'...\n", path);
    }
    if (!follow) break;
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
  }
  return 0;
}
