// bdisk_top — live dashboard over a --metrics-out snapshot stream.
//
// Reads the JSON-line stream written by `bdisk_planner --metrics-out` (or
// any obs::WriteSnapshotStream caller) and renders a table of the run's
// progress over the simulated clock: one row per snapshot line with
// completed retrievals, delay mean/max and p50/p90/p99, deadline misses,
// and observed channel errors; the final row adds the undecodable and
// miss rates that are only knowable at the horizon. When the stream
// carries a "registry" line, a footer derives throughput figures from the
// process-wide instruments: GF encode/decode GB/s, event-engine events/s,
// and adaptive hot swaps.
//
// Usage:
//   bdisk_top [--follow] [--rows N] stream.jsonl
//
// --follow re-reads the file every 500 ms and redraws in place (ANSI),
// tailing a run that is still appending; Ctrl-C to stop. --rows N limits
// the table to the last N snapshot rows (default 20; 0 = all). A stream
// holding several runs (e.g. --adaptive appends static + adaptive
// replays) renders the last run, with a header count of the others.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "runtime/flags.h"

namespace {

using bdisk::obs::JsonValue;
using bdisk::obs::ParseJson;

double Num(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.Find(key);
  return v != nullptr && v->is_number() ? v->number : 0.0;
}

struct Stream {
  std::size_t runs = 0;           // Header lines seen.
  std::vector<JsonValue> rows;    // Snapshot + final lines of the last run.
  JsonValue header;               // Last run's header.
  JsonValue registry;             // Last registry line (if any).
  bool has_registry = false;
  std::size_t bad_lines = 0;
};

// Parses the stream, keeping only the last run's rows (a file may hold
// several appended runs).
Stream ParseStream(std::istream& in) {
  Stream s;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto parsed = ParseJson(line);
    if (!parsed.ok() || !parsed->is_object()) {
      ++s.bad_lines;
      continue;
    }
    const JsonValue* type = parsed->Find("type");
    if (type == nullptr || !type->is_string()) {
      ++s.bad_lines;
      continue;
    }
    if (type->string_value == "header") {
      ++s.runs;
      s.header = std::move(*parsed);
      s.rows.clear();
    } else if (type->string_value == "snapshot" ||
               type->string_value == "final") {
      s.rows.push_back(std::move(*parsed));
    } else if (type->string_value == "registry") {
      s.registry = std::move(*parsed);
      s.has_registry = true;
    } else {
      ++s.bad_lines;
    }
  }
  return s;
}

void RenderRegistryFooter(const JsonValue& registry) {
  // Derived throughput: bytes counters over the matching phase-timer sums
  // (histogram "sum" is total microseconds spent in that phase).
  const auto phase_us = [&](const char* name) {
    const JsonValue* h = registry.Find(name);
    return h != nullptr && h->is_object() ? Num(*h, "sum") : 0.0;
  };
  const double encode_us = phase_us("phase.encode_us");
  const double decode_us = phase_us("phase.decode_us");
  const double drain_us = phase_us("phase.event_drain_us");
  const double encode_bytes = Num(registry, "ida.encode_bytes");
  const double decode_bytes = Num(registry, "ida.decode_bytes");
  const double events = Num(registry, "sim.events");
  const double swaps = Num(registry, "adaptive.swaps");

  std::printf("\nprocess instruments (wall clock):\n");
  if (encode_us > 0.0) {
    std::printf("  GF encode: %8.3f GB/s (%.0f MB in %.1f ms)\n",
                encode_bytes / 1e3 / encode_us, encode_bytes / 1e6,
                encode_us / 1e3);
  }
  if (decode_us > 0.0) {
    std::printf("  GF decode: %8.3f GB/s (%.0f MB in %.1f ms)\n",
                decode_bytes / 1e3 / decode_us, decode_bytes / 1e6,
                decode_us / 1e3);
  }
  if (drain_us > 0.0) {
    std::printf("  events:    %8.3f M events/s (%.0f events in %.1f ms)\n",
                events / drain_us, events, drain_us / 1e3);
  }
  if (swaps > 0.0) {
    std::printf("  hot swaps: %.0f\n", swaps);
  }
}

void Render(const Stream& s, std::size_t max_rows, const char* path) {
  if (s.runs == 0) {
    std::printf("bdisk_top: no snapshot stream in '%s' yet\n", path);
    return;
  }
  std::printf("bdisk_top: %s — showing run %zu (last of %zu), interval "
              "%llu slots, horizon %llu slots\n",
              path, s.runs, s.runs,
              static_cast<unsigned long long>(Num(s.header,
                                                  "interval_slots")),
              static_cast<unsigned long long>(Num(s.header, "horizon")));
  std::printf("%10s %10s %9s %9s %9s %6s %6s %6s %7s %8s\n", "slot",
              "completed", "+intvl", "mean_lat", "max_lat", "p50", "p90",
              "p99", "missed", "errors");
  const std::size_t begin =
      max_rows > 0 && s.rows.size() > max_rows ? s.rows.size() - max_rows
                                               : 0;
  if (begin > 0) {
    std::printf("  ... %zu earlier snapshots ...\n", begin);
  }
  for (std::size_t i = begin; i < s.rows.size(); ++i) {
    const JsonValue& r = s.rows[i];
    std::printf("%10llu %10llu %9llu %9.2f %9.0f %6llu %6llu %6llu "
                "%7llu %8llu\n",
                static_cast<unsigned long long>(Num(r, "slot")),
                static_cast<unsigned long long>(Num(r, "completed")),
                static_cast<unsigned long long>(
                    Num(r, "interval_completed")),
                Num(r, "mean_latency"), Num(r, "max_latency"),
                static_cast<unsigned long long>(Num(r, "p50_latency")),
                static_cast<unsigned long long>(Num(r, "p90_latency")),
                static_cast<unsigned long long>(Num(r, "p99_latency")),
                static_cast<unsigned long long>(Num(r, "missed_deadline")),
                static_cast<unsigned long long>(Num(r, "errors_observed")));
  }
  if (!s.rows.empty()) {
    const JsonValue& last = s.rows.back();
    const JsonValue* type = last.Find("type");
    if (type != nullptr && type->string_value == "final") {
      std::printf("final: %llu attempts, undecodable rate %.4f, miss rate "
                  "%.4f\n",
                  static_cast<unsigned long long>(Num(last, "attempts")),
                  Num(last, "undecodable_rate"), Num(last, "miss_rate"));
    } else {
      std::printf("(run in progress — no final line yet)\n");
    }
  }
  if (s.has_registry) RenderRegistryFooter(s.registry);
  if (s.bad_lines > 0) {
    std::printf("warning: %zu unparseable lines skipped\n", s.bad_lines);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool follow = bdisk::runtime::ConsumeBoolFlag(&argc, argv, "follow");
  const char* rows_token =
      bdisk::runtime::ConsumeStringFlag(&argc, argv, "rows");
  std::uint64_t max_rows = 20;
  if (rows_token != nullptr &&
      !bdisk::runtime::ParseUint64Token(rows_token, &max_rows)) {
    std::fprintf(stderr, "error: --rows must be a non-negative integer, "
                 "got '%s'\n", rows_token);
    return 2;
  }
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s [--follow] [--rows N] stream.jsonl\n",
                 argv[0]);
    return 2;
  }
  const char* path = argv[1];

  for (;;) {
    std::ifstream in(path);
    if (!in && !follow) {
      std::fprintf(stderr, "error: cannot open '%s'\n", path);
      return 1;
    }
    if (follow) {
      // Home + clear-to-end redraw keeps the table in place while the
      // producer appends.
      std::printf("\033[H\033[J");
    }
    if (in) {
      Stream s = ParseStream(in);
      Render(s, static_cast<std::size_t>(max_rows), path);
    } else {
      std::printf("bdisk_top: waiting for '%s'...\n", path);
    }
    if (!follow) break;
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
  }
  return 0;
}
