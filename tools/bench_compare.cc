// bench_compare — bench-trajectory validator and perf-regression gate.
//
// The benches emit machine-readable JSON lines (bench/bench_util.h):
//   {"bench":"bench_ida","metric":"disperse_MBps","value":123.4,
//    "threads":1,"commit":"abc1234"}
// which CI scrapes into BENCH_<shortsha>.json trajectory files. This tool
// has two modes:
//
//   bench_compare --check FILE
//     Validates a capture: FILE must be non-empty and every line must
//     parse as a JSON object carrying string "bench"/"metric" and numeric
//     "value" members. Exit 0 iff valid — tools/bench_capture.sh runs this
//     so a silently-broken capture fails loudly instead of committing an
//     empty trajectory.
//
//   bench_compare BASELINE CURRENT [--threshold T]
//     Compares two trajectory files keyed by (bench, metric, threads) and
//     fails (exit 1) when any *headline* metric regresses by more than T
//     (default 0.10, overridable by --threshold or the
//     BDISK_PERF_THRESHOLD env var). Headline metrics and their
//     directions:
//       higher is better: *bytes_per_second, events_per_sec, *_MBps
//       lower  is better: *real_time_ns, mean_delay_slots,
//                         undecodable_rate
//     Non-headline metrics are reported but never gate. Keys present in
//     only one file are reported and skipped (the bench set may grow
//     between commits). Exit 2 on usage/parse errors.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "runtime/flags.h"

namespace {

using bdisk::obs::JsonValue;
using bdisk::obs::ParseJson;

struct MetricKey {
  std::string bench;
  std::string metric;
  std::uint64_t threads = 0;

  bool operator<(const MetricKey& other) const {
    if (bench != other.bench) return bench < other.bench;
    if (metric != other.metric) return metric < other.metric;
    return threads < other.threads;
  }
  std::string ToString() const {
    return bench + " " + metric + " (threads=" + std::to_string(threads) +
           ")";
  }
};

enum class Direction { kHigherBetter, kLowerBetter, kUntracked };

bool EndsWith(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

// Headline classification (see file comment). Anything else is untracked:
// reported, never gating.
Direction ClassifyMetric(const std::string& metric) {
  if (EndsWith(metric, "bytes_per_second") || EndsWith(metric, "_MBps") ||
      metric == "events_per_sec") {
    return Direction::kHigherBetter;
  }
  if (EndsWith(metric, "real_time_ns") || metric == "mean_delay_slots" ||
      metric == "undecodable_rate") {
    return Direction::kLowerBetter;
  }
  return Direction::kUntracked;
}

// Parses one trajectory line into (key, value); returns false with a
// diagnostic for malformed lines.
bool ParseLine(const std::string& line, std::size_t lineno,
               const char* path, MetricKey* key, double* value) {
  auto parsed = ParseJson(line);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s:%zu: %s\n", path, lineno,
                 parsed.status().ToString().c_str());
    return false;
  }
  if (!parsed->is_object()) {
    std::fprintf(stderr, "%s:%zu: not a JSON object\n", path, lineno);
    return false;
  }
  const JsonValue* bench = parsed->Find("bench");
  const JsonValue* metric = parsed->Find("metric");
  const JsonValue* val = parsed->Find("value");
  if (bench == nullptr || !bench->is_string() || metric == nullptr ||
      !metric->is_string() || val == nullptr || !val->is_number()) {
    std::fprintf(stderr,
                 "%s:%zu: missing string \"bench\"/\"metric\" or numeric "
                 "\"value\"\n",
                 path, lineno);
    return false;
  }
  key->bench = bench->string_value;
  key->metric = metric->string_value;
  const JsonValue* threads = parsed->Find("threads");
  key->threads = threads != nullptr && threads->is_number()
                     ? static_cast<std::uint64_t>(threads->number)
                     : 0;
  *value = val->number;
  return true;
}

// Loads a trajectory file. Later datapoints for the same key win (a capture
// may repeat a bench; the last run is the one that would be committed).
bool LoadTrajectory(const char* path, std::map<MetricKey, double>* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open '%s'\n", path);
    return false;
  }
  std::string line;
  std::size_t lineno = 0;
  std::size_t datapoints = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    MetricKey key;
    double value = 0.0;
    if (!ParseLine(line, lineno, path, &key, &value)) return false;
    (*out)[key] = value;
    ++datapoints;
  }
  if (datapoints == 0) {
    std::fprintf(stderr, "error: '%s' holds no datapoints\n", path);
    return false;
  }
  return true;
}

int CheckMode(const char* path) {
  std::map<MetricKey, double> trajectory;
  if (!LoadTrajectory(path, &trajectory)) return 1;
  std::printf("bench_compare: '%s' OK (%zu datapoints)\n", path,
              trajectory.size());
  return 0;
}

int CompareMode(const char* baseline_path, const char* current_path,
                double threshold) {
  std::map<MetricKey, double> baseline;
  std::map<MetricKey, double> current;
  if (!LoadTrajectory(baseline_path, &baseline)) return 2;
  if (!LoadTrajectory(current_path, &current)) return 2;

  std::size_t compared = 0;
  std::size_t regressions = 0;
  for (const auto& [key, base_value] : baseline) {
    const auto it = current.find(key);
    if (it == current.end()) {
      std::printf("  [gone]      %s\n", key.ToString().c_str());
      continue;
    }
    const double cur_value = it->second;
    const Direction dir = ClassifyMetric(key.metric);
    if (dir == Direction::kUntracked) {
      std::printf("  [untracked] %s: %.6g -> %.6g\n",
                  key.ToString().c_str(), base_value, cur_value);
      continue;
    }
    ++compared;
    // Relative change in the bad direction; <= 0 means no regression.
    double regression = 0.0;
    if (dir == Direction::kHigherBetter && base_value > 0.0) {
      regression = (base_value - cur_value) / base_value;
    } else if (dir == Direction::kLowerBetter && base_value > 0.0) {
      regression = (cur_value - base_value) / base_value;
    } else if (dir == Direction::kLowerBetter && base_value == 0.0) {
      // A zero baseline (e.g. undecodable_rate 0) regresses iff it becomes
      // meaningfully positive; treat any increase past the threshold as a
      // full-threshold regression.
      regression = cur_value > threshold ? threshold + 1.0 : 0.0;
    }
    const bool failed = regression > threshold;
    if (failed) ++regressions;
    std::printf("  [%s] %s: %.6g -> %.6g (%+.1f%% %s)\n",
                failed ? "REGRESSED" : "ok", key.ToString().c_str(),
                base_value, cur_value, 100.0 * regression,
                dir == Direction::kHigherBetter ? "slower/lower"
                                                : "worse");
  }
  for (const auto& [key, value] : current) {
    if (baseline.find(key) == baseline.end()) {
      std::printf("  [new]       %s = %.6g\n", key.ToString().c_str(),
                  value);
    }
  }
  std::printf("bench_compare: %zu headline metrics compared, %zu regressed "
              "(threshold %.0f%%)\n",
              compared, regressions, 100.0 * threshold);
  return regressions > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* check_path =
      bdisk::runtime::ConsumeStringFlag(&argc, argv, "check");
  const char* threshold_token =
      bdisk::runtime::ConsumeStringFlag(&argc, argv, "threshold");

  double threshold = 0.10;
  if (const char* env = std::getenv("BDISK_PERF_THRESHOLD")) {
    threshold = std::atof(env);
  }
  if (threshold_token != nullptr) threshold = std::atof(threshold_token);
  if (threshold <= 0.0 || threshold >= 1.0) {
    std::fprintf(stderr, "error: threshold must be in (0, 1), got %g\n",
                 threshold);
    return 2;
  }

  if (check_path != nullptr) {
    if (argc != 1) {
      std::fprintf(stderr, "usage: %s --check FILE\n", argv[0]);
      return 2;
    }
    return CheckMode(check_path);
  }
  if (argc != 3) {
    std::fprintf(stderr,
                 "usage: %s BASELINE CURRENT [--threshold T]\n"
                 "       %s --check FILE\n",
                 argv[0], argv[0]);
    return 2;
  }
  return CompareMode(argv[1], argv[2], threshold);
}
