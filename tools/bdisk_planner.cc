// bdisk_planner — command-line broadcast-disk planner.
//
// Reads a workload spec (see docs/SPEC_FORMAT.md for the grammar) from
// a file or stdin, plans the broadcast program, and prints: the bandwidth
// arithmetic (paper Eq. (2)), the chosen block size (byte-domain specs),
// the per-file pinwheel-algebra conversions (slot-domain specs), the
// program layout, and the exact worst-case retrieval latency per fault
// level.
//
// Usage:
//   bdisk_planner [--threads N] workload.spec
//   bdisk_planner [--threads N] - < workload.spec
//
// --threads N fans the per-file worst-case delay analysis (the exact
// adversary computation, the planner's dominant cost on big specs) out
// across N workers; output is identical at any thread count.
//
// Example byte-domain spec:
//   channel 196608
//   file nav     bytes=16384 latency=0.5 faults=1
//   file weather bytes=8192  latency=2.0 faults=1
//
// Example slot-domain (generalized) spec:
//   gfile incidents blocks=2 latencies=12,14,16
//   gfile maps      blocks=8 latencies=150,170

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bdisk/bandwidth.h"
#include "bdisk/block_size.h"
#include "bdisk/delay_analysis.h"
#include "bdisk/pinwheel_builder.h"
#include "bdisk/spec_parser.h"
#include "pinwheel/composite_scheduler.h"
#include "runtime/flags.h"
#include "runtime/parallel_for.h"
#include "runtime/thread_pool.h"

namespace {

using namespace bdisk::broadcast;  // NOLINT

bdisk::runtime::ThreadPool* g_pool = nullptr;

void PrintProgram(const BuildResult& result) {
  const BroadcastProgram& p = result.program;
  std::printf("\nprogram: period %llu slots, data cycle %llu, utilization "
              "%.0f%%, scheduled density %.3f\n",
              static_cast<unsigned long long>(p.period()),
              static_cast<unsigned long long>(p.DataCycleLength()),
              100.0 * p.Utilization(), result.scheduled_density);
  DelayAnalyzer analyzer(p);
  std::printf("%-16s %4s %4s %10s %8s  worst-case latency per fault level\n",
              "file", "m", "n", "slots/per", "max gap");
  // The exact adversary analysis is independent per file: shard it across
  // the pool (analysis only — the rendered table stays in file order).
  std::vector<std::string> latency_cols(p.file_count());
  bdisk::runtime::ParallelFor(
      g_pool, p.file_count(),
      bdisk::runtime::ShardCountFor(g_pool, p.file_count()),
      [&](unsigned, bdisk::runtime::ShardRange range) {
        for (std::uint64_t f = range.begin; f < range.end; ++f) {
          const ProgramFile& pf = p.files()[f];
          std::string col;
          for (std::size_t j = 0; j < pf.latency_slots.size(); ++j) {
            auto latency = analyzer.WorstCaseLatency(
                static_cast<FileIndex>(f), static_cast<std::uint32_t>(j),
                ClientModel::kIda);
            if (latency.ok()) {
              col += " " + std::to_string(*latency) + "<=" +
                     std::to_string(pf.latency_slots[j]);
            }
          }
          latency_cols[f] = std::move(col);
        }
      });
  for (FileIndex f = 0; f < p.file_count(); ++f) {
    const ProgramFile& pf = p.files()[f];
    std::printf("%-16s %4u %4u %10llu %8llu %s\n", pf.name.c_str(), pf.m,
                pf.n, static_cast<unsigned long long>(p.CountOf(f)),
                static_cast<unsigned long long>(p.MaxGapOf(f)),
                latency_cols[f].c_str());
  }
  if (!result.conversions.empty()) {
    std::printf("\npinwheel-algebra conversions:\n");
    for (std::size_t f = 0; f < result.conversions.size(); ++f) {
      const auto& conv = result.conversions[f];
      std::printf("  %-16s %-26s -> %-8s density %.4f (lower bound %.4f)\n",
                  p.files()[f].name.c_str(), conv.bc.ToString().c_str(),
                  conv.best().strategy.c_str(), conv.best().density(),
                  conv.density_lower_bound);
    }
  }
}

int Plan(const std::string& text) {
  auto spec = ParseWorkloadSpec(text);
  if (!spec.ok()) {
    std::fprintf(stderr, "error: %s\n", spec.status().ToString().c_str());
    return 2;
  }
  bdisk::pinwheel::CompositeScheduler scheduler;

  if (spec->IsByteDomain()) {
    std::printf("byte-domain workload: %zu files, channel %llu bytes/s\n",
                spec->byte_files.size(),
                static_cast<unsigned long long>(
                    spec->channel_bytes_per_second));
    std::vector<std::uint64_t> ladder;
    if (spec->block_size != 0) ladder.push_back(spec->block_size);
    auto choice = ChooseLargestFeasibleBlockSize(
        spec->byte_files, spec->channel_bytes_per_second, scheduler,
        std::move(ladder));
    if (!choice.ok()) {
      std::fprintf(stderr, "infeasible: %s\n",
                   choice.status().ToString().c_str());
      return 1;
    }
    std::printf("block size: %llu bytes  =>  bandwidth %llu blocks/s\n",
                static_cast<unsigned long long>(choice->block_size),
                static_cast<unsigned long long>(
                    choice->bandwidth_blocks_per_second));
    PrintProgram(choice->build);
    return 0;
  }

  std::printf("slot-domain workload: %zu generalized files\n",
              spec->generalized_files.size());
  auto result = BuildGeneralizedProgram(spec->generalized_files, scheduler);
  if (!result.ok()) {
    std::fprintf(stderr, "infeasible: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  PrintProgram(*result);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned threads = bdisk::runtime::ConsumeThreadsFlag(&argc, argv);
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s [--threads N] <spec-file | ->\n",
                 argv[0]);
    return 2;
  }
  const char* spec_arg = argv[1];
  std::unique_ptr<bdisk::runtime::ThreadPool> pool;
  if (threads > 1) {
    pool = std::make_unique<bdisk::runtime::ThreadPool>(threads);
    g_pool = pool.get();
  }
  std::ostringstream text;
  if (std::string(spec_arg) == "-") {
    text << std::cin.rdbuf();
  } else {
    std::ifstream in(spec_arg);
    if (!in) {
      std::fprintf(stderr, "error: cannot open '%s'\n", spec_arg);
      return 2;
    }
    text << in.rdbuf();
  }
  return Plan(text.str());
}
