// bdisk_planner — command-line broadcast-disk planner.
//
// Reads a workload spec (see docs/SPEC_FORMAT.md for the grammar) from
// a file or stdin, plans the broadcast program, and prints: the bandwidth
// arithmetic (paper Eq. (2)), the chosen block size (byte-domain specs),
// the per-file pinwheel-algebra conversions (slot-domain specs), the
// program layout, and the exact worst-case retrieval latency per fault
// level.
//
// Usage:
//   bdisk_planner [--threads N] [--adaptive] [--channel SPEC]
//                 [--engine slot|event] [--requests N] [--seed S]
//                 workload.spec
//   bdisk_planner [...] - < workload.spec
//
// --threads N fans the per-file worst-case delay analysis (the exact
// adversary computation, the planner's dominant cost on big specs) out
// across N workers; output is identical at any thread count.
//
// --adaptive additionally replays a synthetic drifting-Zipf demand trace
// (popularity ranking reverses mid-run) against the planned program and
// against the adaptive controller (src/adaptive/), printing the hot-swap
// timeline and the static vs adaptive mean retrieval delay.
//
// --channel SPEC additionally replays a random-start retrieval workload
// against the planned program over the given erasure channel (the grammar
// of src/faults/channel_spec.h, e.g. bernoulli:p=0.1,seed=7 or
// gilbert:pgb=0.02,pbg=0.2+corrupt:p=0.01), printing per-file latency,
// reconstruction stall, and undecodable-rate metrics. --requests sets the
// retrieval attempts per file (default 200), --seed the workload seed
// (default 42); the channel's own seed lives in SPEC, and the whole replay
// is deterministic. With --adaptive, the same channel also drives the
// adaptive replay.
//
// --engine selects the simulation core for the channel replay: `slot` (the
// default) walks every slot; `event` runs the discrete-event engine
// (src/sim/event_engine.h), which produces byte-identical metrics but
// scales to million-client fleets.
//
// --metrics-out PATH streams periodic JSON-line snapshots of the replay
// (obs/snapshot.h; "-" = stdout) every --metrics-interval N slots
// (default: one program period). The stream is deterministic — identical
// at any thread count and across both engines — and is what `bdisk_top`
// tails. With --adaptive, the static and adaptive replays append their
// own streams to the same file; the global metric registry is reset
// between the two, so each stream's registry line covers only its own
// replay.
//
// --trace-out PATH writes a Chrome trace-event JSON document (open in
// chrome://tracing or Perfetto; "-" = stdout) of the causal spans the
// replays capture (obs/trace.h): --trace-sample 1/N (or plain N) samples
// every N-th request by global index, anomalies (deadline misses,
// undecodables, and — with --trace-stall S — stalls >= S slots) are
// always traced, and --trace-flight K keeps only the last K spans per
// shard, dumped when an anomaly fires. The trace covers the --channel
// replay and, with --adaptive, both adaptive-experiment replays plus the
// controller's per-interval swap decisions. Deterministic: byte-identical
// at any thread count and across both engines. `bdisk_trace` filters and
// summarizes the file.
//
// --store PATH materializes the planned program into a crash-safe
// persistent block store (src/store/) at PATH: deterministic per-file
// contents are dispersed, checksum-stamped, and committed, then one full
// broadcast period is served back FROM DISK and every coded block is
// re-read and verified bit-exact before the tool reports the store's
// stats. --store-bytes SIZE (byte-size grammar: 4096, 64KiB, 1MiB, ...)
// caps the device size; omitted, the device is sized to fit the program.
// An undersized cap surfaces the store's typed out-of-space error.
//
// --serve HOST:PORT broadcasts the planned program as real UDP datagrams
// (one per slot; wire format src/net/wire.h), paced by a token bucket at
// the spec's channel rate (--serve-bandwidth overrides; byte-size
// grammar). --serve-horizon N sets the slot count (default: the channel
// replay's horizon). With --channel, the datagrams pass through a
// FaultingSocket: the channel model's per-slot verdicts become deliberate
// drops and corruptions on the real wire.
//
// --listen HOST:PORT is the receiving side: it plans the same spec (for
// the program geometry and block size), binds the endpoint (port 0 =
// kernel-chosen, printed), tunes in mid-stream, reconstructs every file,
// and verifies the bytes against the spec's deterministic contents —
// exit status 0 iff every file reconstructed byte-exact.
//
// Example byte-domain spec:
//   channel 196608
//   file nav     bytes=16384 latency=0.5 faults=1
//   file weather bytes=8192  latency=2.0 faults=1
//
// Example slot-domain (generalized) spec:
//   gfile incidents blocks=2 latencies=12,14,16
//   gfile maps      blocks=8 latencies=150,170

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "adaptive/adaptive_loop.h"
#include "bdisk/bandwidth.h"
#include "bdisk/block_size.h"
#include "bdisk/delay_analysis.h"
#include "bdisk/flat_builder.h"
#include "bdisk/pinwheel_builder.h"
#include "bdisk/spec_parser.h"
#include "common/random.h"
#include "faults/channel_spec.h"
#include "ida/dispersal.h"
#include "net/faulting_socket.h"
#include "net/udp_client.h"
#include "net/udp_server.h"
#include "net/udp_socket.h"
#include "obs/registry.h"
#include "obs/snapshot.h"
#include "obs/trace.h"
#include "pinwheel/composite_scheduler.h"
#include "runtime/flags.h"
#include "runtime/parallel_for.h"
#include "runtime/thread_pool.h"
#include "sim/server.h"
#include "sim/simulation.h"
#include "store/block_device.h"
#include "store/block_store.h"

namespace {

using namespace bdisk::broadcast;  // NOLINT

bdisk::runtime::ThreadPool* g_pool = nullptr;
const bdisk::faults::ChannelModel* g_channel = nullptr;
std::uint64_t g_requests_per_file = 200;
std::uint64_t g_workload_seed = 42;
bool g_evented_engine = false;
const char* g_metrics_out = nullptr;
std::uint64_t g_metrics_interval = 0;  // 0 = one program period.
// The first stream truncates the file; later runs (e.g. the two --adaptive
// replays) append to it.
bool g_metrics_append = false;
const char* g_store_path = nullptr;
// 0 = size the device to fit the program; otherwise a hard capacity cap.
std::uint64_t g_store_bytes = 0;
const char* g_trace_out = nullptr;
// --serve / --listen: the real UDP data plane.
const char* g_serve_endpoint = nullptr;
const char* g_listen_endpoint = nullptr;
std::uint64_t g_serve_bandwidth = 0;  // 0 = the spec's channel rate.
std::uint64_t g_serve_horizon = 0;    // 0 = tail + 50 periods.
// Capture policy; tracing is active iff g_trace_out is set.
bdisk::obs::TraceOptions g_trace_options;
// Sinks accumulated by the replays, written as one Chrome trace at the
// end of Plan (one process lane group per replay).
std::vector<std::pair<std::string, std::unique_ptr<bdisk::obs::TraceSink>>>
    g_trace_tracks;

// Streams `timeline` (plus the global registry) to --metrics-out, then
// resets the registry so the next stream's registry line covers only its
// own run — without this the phase timers of an earlier replay (e.g. the
// static half of --adaptive) bleed into every later stream.
int EmitMetricsStream(const bdisk::obs::Timeline& timeline) {
  auto status = bdisk::obs::WriteSnapshotStream(
      timeline, &bdisk::obs::GlobalRegistry(), g_metrics_out,
      g_metrics_append);
  if (!status.ok()) {
    std::fprintf(stderr, "metrics stream failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  g_metrics_append = true;
  bdisk::obs::GlobalRegistry().Reset();
  return 0;
}

// Writes the accumulated trace tracks to --trace-out as one Chrome
// trace-event JSON document.
int EmitTrace() {
  if (g_trace_out == nullptr) return 0;
  std::vector<bdisk::obs::TraceTrack> tracks;
  for (const auto& [label, sink] : g_trace_tracks) {
    tracks.push_back({sink.get(), label});
  }
  std::vector<std::pair<std::string, std::string>> metadata;
  metadata.emplace_back("engine", g_evented_engine ? "event" : "slot");
  if (g_channel != nullptr) {
    metadata.emplace_back("channel", g_channel->Describe());
  }
  auto status = bdisk::obs::WriteChromeTrace(tracks, metadata, g_trace_out);
  if (!status.ok()) {
    std::fprintf(stderr, "trace output failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}

void PrintProgram(const BuildResult& result) {
  const BroadcastProgram& p = result.program;
  std::printf("\nprogram: period %llu slots, data cycle %llu, utilization "
              "%.0f%%, scheduled density %.3f\n",
              static_cast<unsigned long long>(p.period()),
              static_cast<unsigned long long>(p.DataCycleLength()),
              100.0 * p.Utilization(), result.scheduled_density);
  DelayAnalyzer analyzer(p);
  std::printf("%-16s %4s %4s %10s %8s  worst-case latency per fault level\n",
              "file", "m", "n", "slots/per", "max gap");
  // The exact adversary analysis is independent per file: shard it across
  // the pool (analysis only — the rendered table stays in file order).
  std::vector<std::string> latency_cols(p.file_count());
  bdisk::runtime::ParallelFor(
      g_pool, p.file_count(),
      bdisk::runtime::ShardCountFor(g_pool, p.file_count()),
      [&](unsigned, bdisk::runtime::ShardRange range) {
        for (std::uint64_t f = range.begin; f < range.end; ++f) {
          const ProgramFile& pf = p.files()[f];
          std::string col;
          for (std::size_t j = 0; j < pf.latency_slots.size(); ++j) {
            auto latency = analyzer.WorstCaseLatency(
                static_cast<FileIndex>(f), static_cast<std::uint32_t>(j),
                ClientModel::kIda);
            if (latency.ok()) {
              col += " " + std::to_string(*latency) + "<=" +
                     std::to_string(pf.latency_slots[j]);
            }
          }
          latency_cols[f] = std::move(col);
        }
      });
  for (FileIndex f = 0; f < p.file_count(); ++f) {
    const ProgramFile& pf = p.files()[f];
    std::printf("%-16s %4u %4u %10llu %8llu %s\n", pf.name.c_str(), pf.m,
                pf.n, static_cast<unsigned long long>(p.CountOf(f)),
                static_cast<unsigned long long>(p.MaxGapOf(f)),
                latency_cols[f].c_str());
  }
  if (!result.conversions.empty()) {
    std::printf("\npinwheel-algebra conversions:\n");
    for (std::size_t f = 0; f < result.conversions.size(); ++f) {
      const auto& conv = result.conversions[f];
      std::printf("  %-16s %-26s -> %-8s density %.4f (lower bound %.4f)\n",
                  p.files()[f].name.c_str(), conv.bc.ToString().c_str(),
                  conv.best().strategy.c_str(), conv.best().density(),
                  conv.density_lower_bound);
    }
  }
}

using bdisk::runtime::ParseUint64Token;

// --store: materialize the planned program into a crash-safe persistent
// block store at g_store_path, serve one full period back from disk, and
// re-read every coded block bit-exact before reporting the store's stats.
// Deterministic per-file contents (exactly m payloads each): the same
// bytes for the same spec on every run, so --store re-materializations are
// byte-identical and a --listen receiver can verify a --serve broadcast
// from a different process (or machine) without a side channel.
std::vector<std::vector<std::uint8_t>> DeterministicContents(
    const BroadcastProgram& planned, std::size_t payload_bytes) {
  std::vector<std::vector<std::uint8_t>> contents(planned.file_count());
  for (FileIndex f = 0; f < planned.file_count(); ++f) {
    bdisk::Rng rng(0x5702Eull + f);
    contents[f].resize(planned.files()[f].m * payload_bytes);
    for (auto& b : contents[f]) {
      b = static_cast<std::uint8_t>(rng.Uniform(256));
    }
  }
  return contents;
}

int MaterializeStore(const BroadcastProgram& planned,
                     std::size_t payload_bytes) {
  namespace store = bdisk::store;
  constexpr std::size_t kDeviceBlock = 4096;

  const std::vector<std::vector<std::uint8_t>> contents =
      DeterministicContents(planned, payload_bytes);

  std::uint64_t device_blocks;
  if (g_store_bytes != 0) {
    device_blocks = g_store_bytes / kDeviceBlock;
  } else {
    device_blocks = store::BlockStore::kFirstDataBlock;
    std::uint64_t catalog_bytes = 8;
    for (FileIndex f = 0; f < planned.file_count(); ++f) {
      const ProgramFile& pf = planned.files()[f];
      device_blocks +=
          pf.n * ((payload_bytes + kDeviceBlock - 1) / kDeviceBlock);
      catalog_bytes += 28 + pf.n * 12;
    }
    device_blocks +=
        2 * ((catalog_bytes + kDeviceBlock - 1) / kDeviceBlock) + 16;
  }

  std::remove(g_store_path);
  auto device =
      store::FileBlockDevice::Create(g_store_path, kDeviceBlock,
                                     device_blocks);
  if (!device.ok()) {
    std::fprintf(stderr, "store: %s\n", device.status().ToString().c_str());
    return 1;
  }
  auto built = store::BlockStore::Format(std::move(*device));
  if (!built.ok()) {
    std::fprintf(stderr, "store: %s\n", built.status().ToString().c_str());
    return 1;
  }
  store::BlockStore& st = **built;
  auto server = bdisk::sim::BroadcastServer::CreateDiskBacked(
      bdisk::sim::EpochSchedule::Single(planned), contents, payload_bytes,
      &st);
  if (!server.ok()) {
    std::fprintf(stderr, "store: %s\n", server.status().ToString().c_str());
    return 1;
  }

  // Serve one full period from disk, then re-read and re-verify every
  // cataloged block and reconstruct each file from its first m blocks.
  for (std::uint64_t t = 0; t < planned.period(); ++t) {
    auto tx = server->FetchTransmission(t);
    if (!tx.ok()) {
      std::fprintf(stderr, "store: slot %llu: %s\n",
                   static_cast<unsigned long long>(t),
                   tx.status().ToString().c_str());
      return 1;
    }
  }
  for (FileIndex f = 0; f < planned.file_count(); ++f) {
    const ProgramFile& pf = planned.files()[f];
    std::vector<bdisk::ida::Block> first_m;
    for (std::uint32_t k = 0; k < pf.n; ++k) {
      auto block = st.ReadCodedBlock(f, 0, k);
      if (!block.ok()) {
        std::fprintf(stderr, "store: %s block %u: %s\n", pf.name.c_str(), k,
                     block.status().ToString().c_str());
        return 1;
      }
      if (first_m.size() < pf.m) first_m.push_back(std::move(*block));
    }
    auto engine = bdisk::ida::Dispersal::Create(pf.m, pf.n, payload_bytes);
    if (!engine.ok()) {
      std::fprintf(stderr, "store: %s\n",
                   engine.status().ToString().c_str());
      return 1;
    }
    auto data = engine->Reconstruct(first_m);
    if (!data.ok() || *data != contents[f]) {
      std::fprintf(stderr,
                   "store: %s did not reconstruct to the bytes written\n",
                   pf.name.c_str());
      return 1;
    }
  }
  std::printf("\nstore: materialized to %s and verified (one period served "
              "from disk, every block re-read bit-exact)\n  %s\n",
              g_store_path, st.Stats().ToString().c_str());
  return 0;
}

// --channel replay: a random-start retrieval workload against the planned
// program over the parsed erasure channel, surfacing the
// reliability/latency frontier of the chosen (n, m) redundancy.
int ReplayChannel(const BroadcastProgram& planned) {
  // Horizon: room for every per-file tail (deadline or four data cycles)
  // plus a generous start range of 50 periods.
  std::uint64_t tail = 4 * planned.DataCycleLength();
  for (const ProgramFile& pf : planned.files()) {
    if (!pf.latency_slots.empty()) {
      tail = std::max(tail, pf.latency_slots.front());
    }
  }
  const std::uint64_t horizon = tail + 50 * planned.period() + 1;

  bdisk::sim::Simulator simulator(planned, *g_channel, horizon);
  bdisk::sim::WorkloadConfig config;
  config.requests_per_file = g_requests_per_file;
  config.seed = g_workload_seed;
  std::unique_ptr<bdisk::obs::Timeline> timeline;
  if (g_metrics_out != nullptr) {
    const std::uint64_t interval =
        g_metrics_interval > 0 ? g_metrics_interval : planned.period();
    timeline = std::make_unique<bdisk::obs::Timeline>(interval, horizon);
  }
  std::unique_ptr<bdisk::obs::TraceSink> trace;
  if (g_trace_out != nullptr) {
    trace = std::make_unique<bdisk::obs::TraceSink>(g_trace_options);
  }
  auto metrics =
      g_evented_engine
          ? simulator.RunWorkloadEvented(config, g_pool, timeline.get(),
                                         trace.get())
          : simulator.RunWorkload(config, g_pool, timeline.get(),
                                  trace.get());
  if (!metrics.ok()) {
    std::fprintf(stderr, "channel replay failed: %s\n",
                 metrics.status().ToString().c_str());
    return 1;
  }
  if (timeline != nullptr) {
    const int rc = EmitMetricsStream(*timeline);
    if (rc != 0) return rc;
  }
  if (trace != nullptr) {
    g_trace_tracks.emplace_back("channel replay", std::move(trace));
  }
  std::printf("\nchannel replay (%s engine): %s over %llu slots "
              "(%llu faulty), %llu requests/file, workload seed %llu\n",
              g_evented_engine ? "event" : "slot",
              g_channel->Describe().c_str(),
              static_cast<unsigned long long>(horizon),
              static_cast<unsigned long long>(simulator.CorruptedSlotCount()),
              static_cast<unsigned long long>(g_requests_per_file),
              static_cast<unsigned long long>(g_workload_seed));
  std::printf("%s", metrics->ToString().c_str());
  std::printf("overall: mean latency %.2f slots, mean stall %.2f slots, "
              "undecodable rate %.4f, miss rate %.4f\n",
              metrics->OverallMeanLatency(), metrics->OverallMeanStall(),
              metrics->OverallUndecodableRate(), metrics->OverallMissRate());
  return 0;
}

// --adaptive replay: a drifting-Zipf demand trace (ranking reverses
// mid-run) against the planned program (static) and against the adaptive
// controller re-optimizing over the same file population.
int ReplayAdaptive(const BroadcastProgram& planned) {
  std::vector<FlatFileSpec> population;
  for (const ProgramFile& pf : planned.files()) {
    population.push_back({pf.name, pf.m, pf.n, pf.latency_slots});
  }

  bdisk::adaptive::DriftingZipfWorkload workload;
  workload.requests = 500 * planned.file_count();
  workload.theta = 0.95;
  workload.arrival_horizon = 300 * planned.period();
  workload.flip_slot = workload.arrival_horizon / 2;
  workload.seed = 7;
  const std::uint64_t interval = 25 * planned.period();

  std::uint64_t snapshot_interval = 0;
  if (g_metrics_out != nullptr) {
    snapshot_interval =
        g_metrics_interval > 0 ? g_metrics_interval : planned.period();
  }
  // Streams are emitted per replay through the experiment's callback, so
  // the registry reset in EmitMetricsStream lands *between* the static
  // and adaptive runs — each stream's registry line is its own run's.
  const auto on_replay =
      [](const bdisk::obs::Timeline& timeline, bool) -> bdisk::Status {
    if (EmitMetricsStream(timeline) != 0) {
      return bdisk::Status::Internal("metrics stream failed");
    }
    return bdisk::Status::OK();
  };
  const bdisk::obs::TraceOptions* trace_options =
      g_trace_out != nullptr ? &g_trace_options : nullptr;
  auto replay = bdisk::adaptive::RunAdaptiveExperiment(
      population, workload, interval, {}, /*loss_probability=*/0.02,
      /*fault_seed=*/99, g_pool, &planned, g_channel, snapshot_interval,
      trace_options, on_replay);
  if (!replay.ok()) {
    std::fprintf(stderr, "adaptive replay failed: %s\n",
                 replay.status().ToString().c_str());
    return 1;
  }
  if (replay->static_trace != nullptr) {
    g_trace_tracks.emplace_back("static replay",
                                std::move(replay->static_trace));
  }
  if (replay->adaptive_trace != nullptr) {
    g_trace_tracks.emplace_back("adaptive replay",
                                std::move(replay->adaptive_trace));
  }
  std::printf("\nadaptive replay: Zipf(%.2f) demand over %llu slots, "
              "ranking reversed at slot %llu, %llu requests, "
              "re-optimization every %llu slots\n",
              workload.theta,
              static_cast<unsigned long long>(workload.arrival_horizon),
              static_cast<unsigned long long>(workload.flip_slot),
              static_cast<unsigned long long>(workload.requests),
              static_cast<unsigned long long>(interval));
  std::printf("  hot swaps: %zu\n", replay->swaps);
  for (std::size_t e = 1; e < replay->schedule.epoch_count(); ++e) {
    const auto& epoch = replay->schedule.epochs()[e];
    std::printf("    epoch %zu from slot %llu (period %llu slots)\n", e,
                static_cast<unsigned long long>(epoch.start_slot),
                static_cast<unsigned long long>(epoch.program.period()));
  }
  const double s = replay->static_metrics.OverallMeanLatency();
  const double a = replay->adaptive_metrics.OverallMeanLatency();
  std::printf("  mean retrieval delay: static %.1f slots, adaptive %.1f "
              "slots (%+.1f%%)\n",
              s, a, 100.0 * (a - s) / s);
  return 0;
}

// --serve: broadcast the planned program as real UDP datagrams — one per
// slot, paced by a token bucket at the spec's channel rate (or the
// --serve-bandwidth override). With --channel, the datagrams pass through
// a FaultingSocket first: the channel model's per-slot verdicts become
// deliberately dropped or corrupted packets on the real wire.
int ServeUdp(const BroadcastProgram& planned, std::size_t payload_bytes,
             std::uint64_t default_rate) {
  namespace net = bdisk::net;
  auto endpoint = net::ParseEndpoint(g_serve_endpoint);
  if (!endpoint.ok()) {
    std::fprintf(stderr, "error: --serve: %s\n",
                 endpoint.status().ToString().c_str());
    return 2;
  }
  const auto contents = DeterministicContents(planned, payload_bytes);
  auto server =
      bdisk::sim::BroadcastServer::Create(planned, contents, payload_bytes);
  if (!server.ok()) {
    std::fprintf(stderr, "serve: %s\n", server.status().ToString().c_str());
    return 1;
  }
  std::uint64_t horizon = g_serve_horizon;
  if (horizon == 0) {
    std::uint64_t tail = 4 * planned.DataCycleLength();
    for (const ProgramFile& pf : planned.files()) {
      if (!pf.latency_slots.empty()) {
        tail = std::max(tail, pf.latency_slots.front());
      }
    }
    horizon = tail + 50 * planned.period() + 1;
  }
  auto socket = net::UdpSocket::Open();
  if (!socket.ok()) {
    std::fprintf(stderr, "serve: %s\n", socket.status().ToString().c_str());
    return 1;
  }
  net::SocketSink socket_sink(&*socket, *endpoint);
  std::unique_ptr<net::FaultingSocket> faulting;
  net::WireSink* sink = &socket_sink;
  if (g_channel != nullptr) {
    faulting = std::make_unique<net::FaultingSocket>(g_channel, &socket_sink);
    sink = faulting.get();
  }
  net::UdpServerOptions options;
  options.horizon = horizon;
  options.bandwidth_bytes_per_sec =
      g_serve_bandwidth != 0 ? g_serve_bandwidth : default_rate;
  std::printf("\nserving %llu slots to %s:%u at %llu bytes/s%s\n",
              static_cast<unsigned long long>(horizon),
              endpoint->host.c_str(), endpoint->port,
              static_cast<unsigned long long>(
                  options.bandwidth_bytes_per_sec),
              g_channel != nullptr ? " (channel faults injected)" : "");
  std::fflush(stdout);
  auto stats = bdisk::net::ServeBroadcast(&*server, sink, options);
  if (!stats.ok()) {
    std::fprintf(stderr, "serve: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  const double wall_s = static_cast<double>(stats->wall_ns) / 1e9;
  std::printf("served: %llu block + %llu idle + %llu end datagrams, "
              "%llu bytes in %.2fs (%.0f bytes/s)\n",
              static_cast<unsigned long long>(stats->block_datagrams),
              static_cast<unsigned long long>(stats->idle_datagrams),
              static_cast<unsigned long long>(stats->end_datagrams),
              static_cast<unsigned long long>(stats->bytes), wall_s,
              wall_s > 0 ? static_cast<double>(stats->bytes) / wall_s : 0.0);
  if (faulting != nullptr) {
    std::printf("channel on the wire: %llu dropped, %llu corrupted, "
                "%llu forwarded\n",
                static_cast<unsigned long long>(faulting->dropped()),
                static_cast<unsigned long long>(faulting->corrupted()),
                static_cast<unsigned long long>(faulting->forwarded()));
  }
  if (socket_sink.kernel_dropped() > 0) {
    std::printf("note: %llu datagrams refused by the local send buffer\n",
                static_cast<unsigned long long>(
                    socket_sink.kernel_dropped()));
  }
  return 0;
}

// --listen: tune in to a broadcast of this same spec (mid-stream join is
// fine — blocks are self-identifying), reconstruct every file, and verify
// the bytes against the spec's deterministic contents.
int ListenUdp(const BroadcastProgram& planned, std::size_t payload_bytes) {
  namespace net = bdisk::net;
  auto endpoint = net::ParseEndpoint(g_listen_endpoint);
  if (!endpoint.ok()) {
    std::fprintf(stderr, "error: --listen: %s\n",
                 endpoint.status().ToString().c_str());
    return 2;
  }
  net::UdpClientOptions options;
  options.bind_host = endpoint->host;
  options.port = endpoint->port;
  options.block_size = payload_bytes;
  auto client = net::UdpClient::Create(options);
  if (!client.ok()) {
    std::fprintf(stderr, "listen: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }
  for (FileIndex f = 0; f < planned.file_count(); ++f) {
    net::WireSession session;
    session.file = f;
    session.m = planned.files()[f].m;
    session.n = planned.files()[f].n;
    client->AddSession(session);  // No start slot: join mid-stream.
  }
  std::printf("\nlistening on %s:%u for %zu files...\n",
              endpoint->host.c_str(), client->bound_port(),
              planned.file_count());
  std::fflush(stdout);
  auto results = client->Run();
  if (!results.ok()) {
    std::fprintf(stderr, "listen: %s\n",
                 results.status().ToString().c_str());
    return 1;
  }
  const auto expected = DeterministicContents(planned, payload_bytes);
  const auto& stats = client->stats();
  std::printf("heard %llu datagrams (%llu blocks, %llu idle)%s%s\n",
              static_cast<unsigned long long>(stats.datagrams),
              static_cast<unsigned long long>(stats.block_datagrams),
              static_cast<unsigned long long>(stats.idle_datagrams),
              stats.end_seen ? ", end of stream" : "",
              stats.timed_out ? ", timed out" : "");
  int rc = 0;
  for (std::size_t f = 0; f < results->size(); ++f) {
    const auto& r = (*results)[f];
    if (!r.session.completed) {
      std::printf("  %-16s INCOMPLETE (tuned in at slot %llu)\n",
                  planned.files()[f].name.c_str(),
                  static_cast<unsigned long long>(r.start_slot));
      rc = 1;
      continue;
    }
    const bool byte_exact = r.session.data == expected[f];
    if (!byte_exact) rc = 1;
    std::printf("  %-16s reconstructed in %llu slots from slot %llu "
                "(%zu bytes, %s)\n",
                planned.files()[f].name.c_str(),
                static_cast<unsigned long long>(r.session.latency),
                static_cast<unsigned long long>(r.start_slot),
                r.session.data.size(),
                byte_exact ? "byte-exact" : "MISMATCH vs spec contents");
  }
  return rc;
}

int Plan(const std::string& text, bool adaptive) {
  auto spec = ParseWorkloadSpec(text);
  if (!spec.ok()) {
    std::fprintf(stderr, "error: %s\n", spec.status().ToString().c_str());
    return 2;
  }
  bdisk::pinwheel::CompositeScheduler scheduler;

  if (spec->IsByteDomain()) {
    std::printf("byte-domain workload: %zu files, channel %llu bytes/s\n",
                spec->byte_files.size(),
                static_cast<unsigned long long>(
                    spec->channel_bytes_per_second));
    std::vector<std::uint64_t> ladder;
    if (spec->block_size != 0) ladder.push_back(spec->block_size);
    auto choice = ChooseLargestFeasibleBlockSize(
        spec->byte_files, spec->channel_bytes_per_second, scheduler,
        std::move(ladder));
    if (!choice.ok()) {
      std::fprintf(stderr, "infeasible: %s\n",
                   choice.status().ToString().c_str());
      return 1;
    }
    std::printf("block size: %llu bytes  =>  bandwidth %llu blocks/s\n",
                static_cast<unsigned long long>(choice->block_size),
                static_cast<unsigned long long>(
                    choice->bandwidth_blocks_per_second));
    PrintProgram(choice->build);
    if (g_store_path != nullptr) {
      const int rc =
          MaterializeStore(choice->build.program, choice->block_size);
      if (rc != 0) return rc;
    }
    if (g_channel != nullptr) {
      const int rc = ReplayChannel(choice->build.program);
      if (rc != 0) return rc;
    }
    if (adaptive) {
      const int rc = ReplayAdaptive(choice->build.program);
      if (rc != 0) return rc;
    }
    if (g_serve_endpoint != nullptr) {
      // Pace at the spec's modeled channel rate unless overridden: the
      // wire then carries exactly the bandwidth the plan assumed.
      const int rc = ServeUdp(choice->build.program, choice->block_size,
                              spec->channel_bytes_per_second);
      if (rc != 0) return rc;
    }
    if (g_listen_endpoint != nullptr) {
      const int rc = ListenUdp(choice->build.program, choice->block_size);
      if (rc != 0) return rc;
    }
    return EmitTrace();
  }

  std::printf("slot-domain workload: %zu generalized files\n",
              spec->generalized_files.size());
  auto result = BuildGeneralizedProgram(spec->generalized_files, scheduler);
  if (!result.ok()) {
    std::fprintf(stderr, "infeasible: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  PrintProgram(*result);
  if (g_store_path != nullptr) {
    // Slot-domain specs have no byte size; store a fixed 64-byte payload
    // per coded block.
    const int rc = MaterializeStore(result->program, 64);
    if (rc != 0) return rc;
  }
  if (g_channel != nullptr) {
    const int rc = ReplayChannel(result->program);
    if (rc != 0) return rc;
  }
  if (adaptive) {
    const int rc = ReplayAdaptive(result->program);
    if (rc != 0) return rc;
  }
  if (g_serve_endpoint != nullptr) {
    // Slot-domain specs model no byte rate: unpaced unless
    // --serve-bandwidth is given (ServeUdp treats 0 as "as fast as the
    // kernel accepts").
    const int rc = ServeUdp(result->program, 64, g_serve_bandwidth);
    if (rc != 0) return rc;
  }
  if (g_listen_endpoint != nullptr) {
    const int rc = ListenUdp(result->program, 64);
    if (rc != 0) return rc;
  }
  return EmitTrace();
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned threads = bdisk::runtime::ConsumeThreadsFlag(&argc, argv);
  const bool adaptive =
      bdisk::runtime::ConsumeBoolFlag(&argc, argv, "adaptive");
  const char* channel_spec =
      bdisk::runtime::ConsumeStringFlag(&argc, argv, "channel");
  const char* requests_token =
      bdisk::runtime::ConsumeStringFlag(&argc, argv, "requests");
  const char* seed_token =
      bdisk::runtime::ConsumeStringFlag(&argc, argv, "seed");
  const char* engine_token =
      bdisk::runtime::ConsumeStringFlag(&argc, argv, "engine");
  g_metrics_out = bdisk::runtime::ConsumeStringFlag(&argc, argv,
                                                    "metrics-out");
  const char* metrics_interval_token =
      bdisk::runtime::ConsumeStringFlag(&argc, argv, "metrics-interval");
  g_store_path = bdisk::runtime::ConsumeStringFlag(&argc, argv, "store");
  const char* store_bytes_token =
      bdisk::runtime::ConsumeStringFlag(&argc, argv, "store-bytes");
  g_trace_out = bdisk::runtime::ConsumeStringFlag(&argc, argv, "trace-out");
  const auto serve_flag =
      bdisk::runtime::ConsumeStringFlagOnce(&argc, argv, "serve");
  if (!serve_flag.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 serve_flag.status().message().c_str());
    return 2;
  }
  g_serve_endpoint = *serve_flag;
  const auto listen_flag =
      bdisk::runtime::ConsumeStringFlagOnce(&argc, argv, "listen");
  if (!listen_flag.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 listen_flag.status().message().c_str());
    return 2;
  }
  g_listen_endpoint = *listen_flag;
  const auto serve_bandwidth_flag =
      bdisk::runtime::ConsumeByteSizeFlagOnce(&argc, argv,
                                              "serve-bandwidth", 0);
  if (!serve_bandwidth_flag.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 serve_bandwidth_flag.status().message().c_str());
    return 2;
  }
  g_serve_bandwidth = *serve_bandwidth_flag;
  const auto serve_horizon_flag =
      bdisk::runtime::ConsumeUintFlagOnce(&argc, argv, "serve-horizon", 0);
  if (!serve_horizon_flag.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 serve_horizon_flag.status().message().c_str());
    return 2;
  }
  g_serve_horizon = *serve_horizon_flag;
  const char* trace_sample_token =
      bdisk::runtime::ConsumeStringFlag(&argc, argv, "trace-sample");
  const char* trace_stall_token =
      bdisk::runtime::ConsumeStringFlag(&argc, argv, "trace-stall");
  const char* trace_flight_token =
      bdisk::runtime::ConsumeStringFlag(&argc, argv, "trace-flight");
  if (argc != 2) {
    std::fprintf(stderr,
                 "usage: %s [--threads N] [--adaptive] [--channel SPEC] "
                 "[--engine slot|event] [--requests N] [--seed S] "
                 "[--metrics-out PATH] [--metrics-interval N] "
                 "[--store PATH] [--store-bytes SIZE] "
                 "[--trace-out PATH] [--trace-sample 1/N] [--trace-stall S] "
                 "[--trace-flight K] [--serve HOST:PORT | --listen "
                 "HOST:PORT] [--serve-bandwidth RATE] [--serve-horizon N] "
                 "<spec-file | ->\n",
                 argv[0]);
    return 2;
  }
  if (store_bytes_token != nullptr) {
    auto parsed = bdisk::runtime::ParseByteSize(store_bytes_token);
    if (!parsed.ok()) {
      std::fprintf(stderr, "error: --store-bytes: %s\n",
                   parsed.status().ToString().c_str());
      return 2;
    }
    g_store_bytes = *parsed;
    if (g_store_path == nullptr) {
      std::fprintf(stderr, "error: --store-bytes requires --store\n");
      return 2;
    }
  }
  if (trace_sample_token != nullptr) {
    // Accepted as "1/N" (the sampling-rate reading) or plain "N".
    std::string token(trace_sample_token);
    if (token.rfind("1/", 0) == 0) token = token.substr(2);
    if (!ParseUint64Token(token.c_str(), &g_trace_options.sample_every) ||
        g_trace_options.sample_every == 0) {
      std::fprintf(stderr, "error: --trace-sample must be 1/N or N with "
                   "positive N, got '%s'\n", trace_sample_token);
      return 2;
    }
  }
  if (trace_stall_token != nullptr &&
      (!ParseUint64Token(trace_stall_token,
                         &g_trace_options.stall_threshold) ||
       g_trace_options.stall_threshold == 0)) {
    std::fprintf(stderr, "error: --trace-stall must be a positive integer, "
                 "got '%s'\n", trace_stall_token);
    return 2;
  }
  if (trace_flight_token != nullptr &&
      (!ParseUint64Token(trace_flight_token,
                         &g_trace_options.flight_recorder_depth) ||
       g_trace_options.flight_recorder_depth == 0)) {
    std::fprintf(stderr, "error: --trace-flight must be a positive integer, "
                 "got '%s'\n", trace_flight_token);
    return 2;
  }
  if (g_trace_out == nullptr &&
      (trace_sample_token != nullptr || trace_stall_token != nullptr ||
       trace_flight_token != nullptr)) {
    std::fprintf(stderr, "error: --trace-sample/--trace-stall/--trace-flight "
                 "require --trace-out\n");
    return 2;
  }
  if (g_trace_out != nullptr && channel_spec == nullptr && !adaptive) {
    std::fprintf(stderr,
                 "error: --trace-out requires --channel or --adaptive "
                 "(nothing to trace otherwise)\n");
    return 2;
  }
  if (g_serve_endpoint != nullptr && g_listen_endpoint != nullptr) {
    std::fprintf(stderr, "error: --serve and --listen are exclusive (run "
                 "one process per role)\n");
    return 2;
  }
  if ((g_serve_bandwidth != 0 || g_serve_horizon != 0) &&
      g_serve_endpoint == nullptr) {
    std::fprintf(stderr,
                 "error: --serve-bandwidth/--serve-horizon require "
                 "--serve\n");
    return 2;
  }
  if (metrics_interval_token != nullptr) {
    if (!ParseUint64Token(metrics_interval_token, &g_metrics_interval) ||
        g_metrics_interval == 0) {
      std::fprintf(stderr, "error: --metrics-interval must be a positive "
                   "integer, got '%s'\n", metrics_interval_token);
      return 2;
    }
  }
  if (g_metrics_interval != 0 && g_metrics_out == nullptr) {
    std::fprintf(stderr,
                 "error: --metrics-interval requires --metrics-out\n");
    return 2;
  }
  if (engine_token != nullptr) {
    if (std::string(engine_token) == "event") {
      g_evented_engine = true;
    } else if (std::string(engine_token) != "slot") {
      std::fprintf(stderr, "error: --engine must be 'slot' or 'event', "
                   "got '%s'\n", engine_token);
      return 2;
    }
  }
  std::unique_ptr<bdisk::faults::ChannelModel> channel;
  if (channel_spec != nullptr) {
    auto parsed = bdisk::faults::ParseChannelSpec(channel_spec);
    if (!parsed.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   parsed.status().ToString().c_str());
      return 2;
    }
    channel = std::move(*parsed);
    g_channel = channel.get();
  }
  if (requests_token != nullptr) {
    if (!ParseUint64Token(requests_token, &g_requests_per_file) ||
        g_requests_per_file == 0) {
      std::fprintf(stderr, "error: --requests must be a positive integer, "
                   "got '%s'\n", requests_token);
      return 2;
    }
  }
  if (seed_token != nullptr &&
      !ParseUint64Token(seed_token, &g_workload_seed)) {
    std::fprintf(stderr, "error: --seed must be a 64-bit non-negative "
                 "integer, got '%s'\n", seed_token);
    return 2;
  }
  const char* spec_arg = argv[1];
  std::unique_ptr<bdisk::runtime::ThreadPool> pool;
  if (threads > 1) {
    pool = std::make_unique<bdisk::runtime::ThreadPool>(threads);
    g_pool = pool.get();
  }
  std::ostringstream text;
  if (std::string(spec_arg) == "-") {
    text << std::cin.rdbuf();
  } else {
    std::ifstream in(spec_arg);
    if (!in) {
      std::fprintf(stderr, "error: cannot open '%s'\n", spec_arg);
      return 2;
    }
    text << in.rdbuf();
  }
  return Plan(text.str(), adaptive);
}
