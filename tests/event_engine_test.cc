// Unit tests for the discrete-event engine internals (sim/event_engine.h):
// heap ordering, jump arithmetic vs the slot-walk ground truth, per-client
// state transitions against Simulator::Retrieve, and the allocation-free
// steady-state guarantee (checked by counting global operator new calls
// across Drain()).

#include "sim/event_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "bdisk/flat_builder.h"
#include "faults/channel_model.h"
#include "runtime/rng_stream.h"
#include "sim/epoch.h"
#include "sim/simulation.h"

// ---------------------------------------------------------------------------
// Global allocation counter. Overriding the global operator new in a test
// binary is well-defined; the counter is only armed around Drain() calls.

namespace {
std::atomic<std::uint64_t> g_allocation_count{0};
std::atomic<bool> g_count_allocations{false};

void* CountedAlloc(std::size_t size) {
  if (g_count_allocations.load(std::memory_order_relaxed)) {
    g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace bdisk::sim {
namespace {

using broadcast::BroadcastProgram;
using broadcast::FlatLayout;

// A channel that replays an explicit trace — lets a test pin exact fault
// slots and hand the *same* realization to Simulator and EventEngine.
class VectorChannel final : public faults::ChannelModel {
 public:
  explicit VectorChannel(std::vector<faults::FaultType> trace)
      : trace_(std::move(trace)) {}
  faults::FaultType FaultAt(std::uint64_t slot) const override {
    return slot < trace_.size() ? trace_[slot] : faults::FaultType::kNone;
  }
  std::string Describe() const override { return "vector"; }

  const std::vector<faults::FaultType>& trace() const { return trace_; }

 private:
  std::vector<faults::FaultType> trace_;
};

BroadcastProgram SmallProgram() {
  auto p = broadcast::BuildFlatProgram(
      {{"a", 2, 4, {}}, {"b", 3, 5, {}}, {"c", 4, 6, {}}},
      FlatLayout::kSpread);
  EXPECT_TRUE(p.ok()) << p.status();
  return *p;
}

// ---------------------------------------------------------------------------
// EventHeap ordering.

TEST(EventHeapTest, PopsBySlotWithClientTieBreak) {
  EventHeap heap;
  heap.Reserve(8);
  // Scrambled insertion; blocks are payload and must ride along untouched.
  heap.Push({5, 2, 20});
  heap.Push({5, 0, 21});
  heap.Push({3, 9, 22});
  heap.Push({5, 1, 23});
  heap.Push({3, 1, 24});
  heap.Push({7, 0, 25});

  const std::vector<EventHeap::Event> expected = {
      {3, 1, 24}, {3, 9, 22}, {5, 0, 21}, {5, 1, 23}, {5, 2, 20}, {7, 0, 25},
  };
  for (const EventHeap::Event& want : expected) {
    ASSERT_FALSE(heap.Empty());
    const EventHeap::Event got = heap.Pop();
    EXPECT_EQ(got.slot, want.slot);
    EXPECT_EQ(got.client, want.client);
    EXPECT_EQ(got.block, want.block);
  }
  EXPECT_TRUE(heap.Empty());
}

TEST(EventHeapTest, RandomWorkoutDrainsInTotalOrder) {
  EventHeap heap;
  heap.Reserve(500);
  // Deterministic pseudo-random workout via a counter-based stream; many
  // (slot, client) collisions to stress the tie-break.
  Rng rng = runtime::StreamRng(17, 0);
  for (int i = 0; i < 500; ++i) {
    heap.Push({rng.Uniform(50), static_cast<std::uint32_t>(rng.Uniform(10)),
               static_cast<std::uint32_t>(i)});
  }
  ASSERT_EQ(heap.Size(), 500u);
  EventHeap::Event prev = heap.Pop();
  std::size_t popped = 1;
  while (!heap.Empty()) {
    const EventHeap::Event e = heap.Pop();
    EXPECT_FALSE(EventHeap::Before(e, prev))
        << "(" << e.slot << "," << e.client << ") popped after ("
        << prev.slot << "," << prev.client << ")";
    prev = e;
    ++popped;
  }
  EXPECT_EQ(popped, 500u);
}

// ---------------------------------------------------------------------------
// Jump arithmetic vs brute-force slot walk.

TEST(EventEngineTest, NextTransmissionMatchesSlotWalk) {
  const BroadcastProgram program = SmallProgram();
  const std::uint64_t horizon = 10 * program.period() + 7;
  const std::vector<faults::FaultType> trace(horizon,
                                             faults::FaultType::kNone);
  const EventEngine engine(program, trace);

  for (broadcast::FileIndex f = 0; f < program.files().size(); ++f) {
    for (std::uint64_t from = 0; from <= horizon; ++from) {
      // Ground truth: first slot >= from carrying file f.
      std::optional<EventEngine::NextTx> want;
      for (std::uint64_t t = from; t < horizon; ++t) {
        const auto tx = program.TransmissionAt(t);
        if (tx.has_value() && tx->file == f) {
          want = EventEngine::NextTx{t, tx->block_index};
          break;
        }
      }
      const auto got = engine.NextTransmissionOf(f, from);
      ASSERT_EQ(got.has_value(), want.has_value())
          << "file " << f << " from " << from;
      if (want.has_value()) {
        EXPECT_EQ(got->slot, want->slot) << "file " << f << " from " << from;
        EXPECT_EQ(got->block, want->block)
            << "file " << f << " from " << from;
      }
    }
  }
}

TEST(EventEngineTest, NextTransmissionCrossesEpochBoundary) {
  auto a = broadcast::BuildFlatProgram(
      {{"a", 2, 4, {}}, {"b", 3, 5, {}}, {"c", 4, 6, {}}},
      FlatLayout::kContiguous);
  ASSERT_TRUE(a.ok()) << a.status();
  auto b = broadcast::BuildFlatProgram(
      {{"a", 2, 4, {}}, {"b", 3, 5, {}}, {"c", 4, 6, {}}},
      FlatLayout::kSpread);
  ASSERT_TRUE(b.ok()) << b.status();
  std::vector<ProgramEpoch> epochs;
  epochs.push_back(ProgramEpoch{0, *a});
  epochs.push_back(ProgramEpoch{3 * a->period(), *b});
  auto schedule = EpochSchedule::Create(std::move(epochs));
  ASSERT_TRUE(schedule.ok()) << schedule.status();

  const std::uint64_t horizon = 8 * a->period();
  const std::vector<faults::FaultType> trace(horizon,
                                             faults::FaultType::kNone);
  const EventEngine engine(*schedule, trace);

  for (broadcast::FileIndex f = 0; f < schedule->file_count(); ++f) {
    for (std::uint64_t from = 0; from <= horizon; ++from) {
      std::optional<EventEngine::NextTx> want;
      for (std::uint64_t t = from; t < horizon; ++t) {
        const auto tx = schedule->TransmissionAt(t);
        if (tx.has_value() && tx->file == f) {
          want = EventEngine::NextTx{t, tx->block_index};
          break;
        }
      }
      const auto got = engine.NextTransmissionOf(f, from);
      ASSERT_EQ(got.has_value(), want.has_value())
          << "file " << f << " from " << from;
      if (want.has_value()) {
        EXPECT_EQ(got->slot, want->slot) << "file " << f << " from " << from;
        EXPECT_EQ(got->block, want->block)
            << "file " << f << " from " << from;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Per-client state transitions vs Simulator::Retrieve ground truth.

// Runs one client through an EventShardRunner and checks its final state
// against the slot engine's RetrievalOutcome on the same realization.
void ExpectStateMatchesRetrieve(const Simulator& simulator,
                                const EventEngine& engine,
                                const EventClient& client,
                                const char* label) {
  EventShardRunner runner(engine);
  runner.Prepare(0, 1, [&](std::uint64_t) { return client; });
  runner.Drain();
  ASSERT_EQ(runner.client_count(), 1u) << label;
  const ClientState& st = runner.state(0);

  ClientRequest request;
  request.file = client.file;
  request.start_slot = client.start_slot;
  request.deadline_slots = client.deadline_slots;
  auto outcome = simulator.Retrieve(request);
  ASSERT_TRUE(outcome.ok()) << label << ": " << outcome.status();

  EXPECT_EQ((st.flags & ClientState::kCompleted) != 0, outcome->completed)
      << label;
  EXPECT_EQ(st.errors_observed, outcome->errors_observed) << label;
  EXPECT_EQ(st.corrupt_detected, outcome->corrupt_detected) << label;
  if (outcome->completed) {
    EXPECT_EQ(st.completion_slot, outcome->completion_slot) << label;
    EXPECT_EQ(st.completion_slot - st.start_slot + 1, outcome->latency)
        << label;
    const std::uint64_t stall =
        st.errors_observed > 0 ? st.completion_slot - st.baseline_slot : 0;
    EXPECT_EQ(stall, outcome->stall_slots) << label;
  }
}

TEST(EventEngineTest, TuneInMidPeriodMatchesRetrieve) {
  const BroadcastProgram program = SmallProgram();
  const std::uint64_t horizon = 20 * program.period();
  VectorChannel channel(
      std::vector<faults::FaultType>(horizon, faults::FaultType::kNone));
  const Simulator simulator(program, channel, horizon);
  const EventEngine engine(program, channel.trace());

  // Every start offset inside one period, every file: tune-in alignment
  // cannot matter.
  for (broadcast::FileIndex f = 0; f < program.files().size(); ++f) {
    for (std::uint64_t offset = 0; offset < program.period(); ++offset) {
      EventClient client;
      client.file = f;
      client.start_slot = 3 * program.period() + offset;
      ExpectStateMatchesRetrieve(simulator, engine, client, "mid-period");
    }
  }
}

TEST(EventEngineTest, FaultStallMatchesRetrieve) {
  const BroadcastProgram program = SmallProgram();
  const std::uint64_t horizon = 30 * program.period();
  // Lose an early window and corrupt a later stripe: clients tuning in
  // near slot 0 observe errors, stall, and detected corruption.
  std::vector<faults::FaultType> trace(horizon, faults::FaultType::kNone);
  for (std::uint64_t t = 2; t < 2 + 2 * program.period(); ++t) {
    trace[t] = faults::FaultType::kLost;
  }
  for (std::uint64_t t = 4 * program.period(); t < 5 * program.period();
       t += 2) {
    trace[t] = faults::FaultType::kCorrupted;
  }
  VectorChannel channel(trace);
  const Simulator simulator(program, channel, horizon);
  const EventEngine engine(program, channel.trace());

  bool saw_errors = false;
  for (broadcast::FileIndex f = 0; f < program.files().size(); ++f) {
    for (std::uint64_t start = 0; start < 6 * program.period(); ++start) {
      EventClient client;
      client.file = f;
      client.start_slot = start;
      ExpectStateMatchesRetrieve(simulator, engine, client, "faulted");
      EventShardRunner runner(engine);
      runner.Prepare(0, 1, [&](std::uint64_t) { return client; });
      runner.Drain();
      if (runner.state(0).errors_observed > 0) saw_errors = true;
    }
  }
  EXPECT_TRUE(saw_errors) << "fault window never hit — test is vacuous";
}

TEST(EventEngineTest, EpochSpanningReconstructionMatchesRetrieve) {
  auto a = broadcast::BuildFlatProgram(
      {{"a", 2, 4, {}}, {"b", 3, 5, {}}, {"c", 4, 6, {}}},
      FlatLayout::kContiguous);
  ASSERT_TRUE(a.ok()) << a.status();
  auto b = broadcast::BuildFlatProgram(
      {{"a", 2, 4, {}}, {"b", 3, 5, {}}, {"c", 4, 6, {}}},
      FlatLayout::kSpread);
  ASSERT_TRUE(b.ok()) << b.status();
  const std::uint64_t swap = 2 * a->period();
  std::vector<ProgramEpoch> epochs;
  epochs.push_back(ProgramEpoch{0, *a});
  epochs.push_back(ProgramEpoch{swap, *b});
  auto schedule = EpochSchedule::Create(std::move(epochs));
  ASSERT_TRUE(schedule.ok()) << schedule.status();

  const std::uint64_t horizon = 10 * a->period();
  // Heavy loss before the swap forces retrievals started in epoch 0 to
  // finish — reconstructing across the boundary — in epoch 1.
  std::vector<faults::FaultType> trace(horizon, faults::FaultType::kNone);
  for (std::uint64_t t = 0; t < swap; ++t) {
    if (t % 3 != 0) trace[t] = faults::FaultType::kLost;
  }
  VectorChannel channel(trace);
  const Simulator simulator(*schedule, channel, horizon);
  const EventEngine engine(*schedule, channel.trace());

  bool saw_epoch_spanner = false;
  for (broadcast::FileIndex f = 0; f < schedule->file_count(); ++f) {
    for (std::uint64_t start = 0; start < swap; ++start) {
      EventClient client;
      client.file = f;
      client.start_slot = start;
      ExpectStateMatchesRetrieve(simulator, engine, client, "epoch-span");
      EventShardRunner runner(engine);
      runner.Prepare(0, 1, [&](std::uint64_t) { return client; });
      runner.Drain();
      const ClientState& st = runner.state(0);
      if ((st.flags & ClientState::kCompleted) != 0 &&
          st.completion_slot >= swap) {
        saw_epoch_spanner = true;
      }
    }
  }
  EXPECT_TRUE(saw_epoch_spanner)
      << "no retrieval crossed the swap — test is vacuous";
}

TEST(EventEngineTest, WideFileSpillBitmapMatchesRetrieve) {
  // n = 96 > 64 forces the spill-arena bitmap path.
  auto p = broadcast::BuildFlatProgram({{"wide", 80, 96, {}}},
                                       FlatLayout::kContiguous);
  ASSERT_TRUE(p.ok()) << p.status();
  const std::uint64_t horizon = 12 * p->period();
  std::vector<faults::FaultType> trace(horizon, faults::FaultType::kNone);
  // Scatter losses so the distinct-set bookkeeping really works for it.
  for (std::uint64_t t = 0; t < horizon; t += 5) {
    trace[t] = faults::FaultType::kLost;
  }
  VectorChannel channel(trace);
  const Simulator simulator(*p, channel, horizon);
  const EventEngine engine(*p, channel.trace());

  for (std::uint64_t start = 0; start < 2 * p->period(); ++start) {
    EventClient client;
    client.file = 0;
    client.start_slot = start;
    ExpectStateMatchesRetrieve(simulator, engine, client, "wide-file");
  }
}

TEST(EventEngineTest, NoTransmissionBeforeHorizonIsIncomplete) {
  const BroadcastProgram program = SmallProgram();
  // Horizon so short that a late tune-in hears nothing.
  const std::uint64_t horizon = program.period();
  const std::vector<faults::FaultType> trace(horizon,
                                             faults::FaultType::kNone);
  const EventEngine engine(program, trace);

  EventClient client;
  client.file = 0;
  client.start_slot = horizon - 1;
  EventShardRunner runner(engine);
  runner.Prepare(0, 1, [&](std::uint64_t) { return client; });
  runner.Drain();
  const ClientState& st = runner.state(0);
  // Whether the last slot carries file 0 decides completion progress, but
  // a client can never complete m=2 blocks in one slot.
  EXPECT_EQ(st.flags & ClientState::kCompleted, 0);
  EXPECT_NE(st.flags & ClientState::kDone, 0);
}

// ---------------------------------------------------------------------------
// Steady-state event processing allocates nothing.

TEST(EventEngineTest, DrainPerformsNoHeapAllocation) {
  const BroadcastProgram program = SmallProgram();
  const std::uint64_t horizon = 200 * program.period();
  std::vector<faults::FaultType> trace(horizon, faults::FaultType::kNone);
  for (std::uint64_t t = 0; t < horizon; t += 7) {
    trace[t] = faults::FaultType::kLost;  // Re-arm under faults too.
  }
  const EventEngine engine(program, trace);

  EventShardRunner runner(engine);
  const auto client_at = [&](std::uint64_t g) {
    EventClient client;
    client.file = static_cast<broadcast::FileIndex>(g % 3);
    client.start_slot = (g * 37) % (horizon / 2);
    return client;
  };
  runner.Prepare(0, 4000, client_at);  // Prepare may allocate freely.

  g_allocation_count.store(0, std::memory_order_relaxed);
  g_count_allocations.store(true, std::memory_order_relaxed);
  runner.Drain();
  g_count_allocations.store(false, std::memory_order_relaxed);

  EXPECT_EQ(g_allocation_count.load(std::memory_order_relaxed), 0u)
      << "Drain() must not allocate: the event heap and client state are "
         "preallocated in Prepare()";
  EXPECT_GT(runner.events_processed(), 4000u);

  // The run must still be *correct*: everything completed on this trace.
  SimulationMetrics local;
  local.per_file.resize(program.files().size());
  runner.Collect(&local);
  std::uint64_t completed = 0;
  for (const FileMetrics& fm : local.per_file) completed += fm.completed;
  EXPECT_EQ(completed, 4000u);
}

// Spill clients (n > 64) must also drain allocation-free.
TEST(EventEngineTest, DrainWithSpillBitmapsPerformsNoHeapAllocation) {
  auto p = broadcast::BuildFlatProgram({{"wide", 80, 96, {}}},
                                       FlatLayout::kContiguous);
  ASSERT_TRUE(p.ok()) << p.status();
  const std::uint64_t horizon = 40 * p->period();
  const std::vector<faults::FaultType> trace(horizon,
                                             faults::FaultType::kNone);
  const EventEngine engine(*p, trace);

  EventShardRunner runner(engine);
  runner.Prepare(0, 500, [&](std::uint64_t g) {
    EventClient client;
    client.file = 0;
    client.start_slot = (g * 13) % (horizon / 2);
    return client;
  });

  g_allocation_count.store(0, std::memory_order_relaxed);
  g_count_allocations.store(true, std::memory_order_relaxed);
  runner.Drain();
  g_count_allocations.store(false, std::memory_order_relaxed);
  EXPECT_EQ(g_allocation_count.load(std::memory_order_relaxed), 0u);
}

}  // namespace
}  // namespace bdisk::sim
