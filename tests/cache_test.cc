// Tests for client-side caching (LRU / PIX) and the Zipf workload helper.

#include "sim/cache.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/zipf.h"

namespace bdisk::sim {
namespace {

TEST(ClientCacheTest, ZeroCapacityCachesNothing) {
  ClientCache cache(0, CachePolicy::kLru);
  cache.Insert(1, 0.5, 1.0);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup(1));
}

TEST(ClientCacheTest, BasicHitMiss) {
  ClientCache cache(2, CachePolicy::kLru);
  EXPECT_FALSE(cache.Lookup(1));
  cache.Insert(1, 0.5, 1.0);
  EXPECT_TRUE(cache.Lookup(1));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ClientCacheTest, DuplicateInsertIgnored) {
  ClientCache cache(2, CachePolicy::kLru);
  cache.Insert(1, 0.5, 1.0);
  cache.Insert(1, 0.9, 1.0);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ClientCacheTest, LruEvictsLeastRecent) {
  ClientCache cache(2, CachePolicy::kLru);
  cache.Insert(1, 0.1, 1.0);
  cache.Insert(2, 0.1, 1.0);
  EXPECT_TRUE(cache.Lookup(1));  // 1 is now most recent.
  cache.Insert(3, 0.1, 1.0);     // Evicts 2.
  EXPECT_TRUE(cache.Lookup(1));
  EXPECT_FALSE(cache.Lookup(2));
  EXPECT_TRUE(cache.Lookup(3));
}

TEST(ClientCacheTest, PixEvictsLowestScore) {
  ClientCache cache(2, CachePolicy::kPix);
  // Item 1: hot but broadcast constantly => low PIX value.
  cache.Insert(1, 0.5, 10.0);  // p/x = 0.05.
  // Item 2: lukewarm but broadcast rarely => high PIX value.
  cache.Insert(2, 0.2, 0.5);   // p/x = 0.4.
  cache.Insert(3, 0.3, 3.0);   // p/x = 0.1; evicts item 1.
  EXPECT_FALSE(cache.Lookup(1));
  EXPECT_TRUE(cache.Lookup(2));
  EXPECT_TRUE(cache.Lookup(3));
}

TEST(ClientCacheTest, PixDiffersFromLruOnSkewedFrequencies) {
  // Same access sequence, different evictions.
  ClientCache lru(1, CachePolicy::kLru);
  ClientCache pix(1, CachePolicy::kPix);
  // First item is precious under PIX (rarely broadcast).
  lru.Insert(1, 0.3, 0.1);
  pix.Insert(1, 0.3, 0.1);
  // Second item is cheap to refetch (broadcast every few slots).
  lru.Insert(2, 0.3, 10.0);
  pix.Insert(2, 0.3, 10.0);
  EXPECT_TRUE(lru.Lookup(2));   // LRU kept the newcomer...
  EXPECT_FALSE(lru.Lookup(1));
  EXPECT_TRUE(pix.Lookup(1));   // ...PIX kept the expensive item.
  EXPECT_FALSE(pix.Lookup(2));
}

TEST(ClientCacheTest, ContentsSorted) {
  ClientCache cache(4, CachePolicy::kLru);
  cache.Insert(3, 0.1, 1.0);
  cache.Insert(1, 0.1, 1.0);
  cache.Insert(2, 0.1, 1.0);
  EXPECT_EQ(cache.Contents(),
            (std::vector<broadcast::FileIndex>{1, 2, 3}));
}

TEST(ZipfTest, ProbabilitiesSumToOneAndDecrease) {
  ZipfDistribution zipf(10, 0.95);
  double sum = 0.0;
  for (std::size_t i = 0; i < 10; ++i) {
    sum += zipf.ProbabilityOf(i);
    if (i > 0) {
      EXPECT_LT(zipf.ProbabilityOf(i), zipf.ProbabilityOf(i - 1));
    }
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  ZipfDistribution zipf(4, 0.0);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(zipf.ProbabilityOf(i), 0.25, 1e-12);
  }
}

TEST(ZipfTest, SamplingMatchesProbabilities) {
  ZipfDistribution zipf(6, 1.0);
  Rng rng(555);
  std::vector<int> counts(6, 0);
  const int kTrials = 200000;
  for (int t = 0; t < kTrials; ++t) {
    ++counts[zipf.Sample(rng.UniformDouble())];
  }
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / kTrials,
                zipf.ProbabilityOf(i), 0.01)
        << "item " << i;
  }
}

TEST(ZipfTest, SampleEdges) {
  ZipfDistribution zipf(3, 1.0);
  EXPECT_EQ(zipf.Sample(0.0), 0u);
  EXPECT_LT(zipf.Sample(0.999999), 3u);
}

}  // namespace
}  // namespace bdisk::sim
