// End-to-end tests for the pinwheel-based program builders.

#include "bdisk/pinwheel_builder.h"

#include <gtest/gtest.h>

#include "bdisk/bandwidth.h"
#include "pinwheel/composite_scheduler.h"

namespace bdisk::broadcast {
namespace {

TEST(BuildProgramTest, RegularFilesEndToEnd) {
  const std::vector<FileSpec> files{
      {"fast", 2, 1.0, 1},
      {"slow", 4, 4.0, 0},
  };
  auto bandwidth = BandwidthPlanner::SufficientBandwidth(files);
  ASSERT_TRUE(bandwidth.ok());
  pinwheel::CompositeScheduler scheduler;
  auto result = BuildProgram(files, *bandwidth, scheduler);
  ASSERT_TRUE(result.ok()) << result.status();

  const BroadcastProgram& p = result->program;
  EXPECT_EQ(p.file_count(), 2u);
  EXPECT_TRUE(p.VerifyBroadcastConditions().ok());
  // n_i = m_i + r_i by default.
  EXPECT_EQ(p.files()[0].n, 3u);
  EXPECT_EQ(p.files()[1].n, 4u);
  EXPECT_GT(result->scheduled_density, 0.0);
}

TEST(BuildProgramTest, InsufficientBandwidthFails) {
  const std::vector<FileSpec> files{{"f", 8, 1.0, 0}};
  pinwheel::CompositeScheduler scheduler;
  EXPECT_FALSE(BuildProgram(files, 4, scheduler).ok());
}

TEST(BuildProgramTest, ExtraRotationIncreasesN) {
  const std::vector<FileSpec> files{{"f", 2, 1.0, 0}};
  pinwheel::CompositeScheduler scheduler;
  BuilderOptions options;
  options.extra_rotation = 3;
  auto result = BuildProgram(files, 10, scheduler, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->program.files()[0].n, 5u);
}

TEST(BuildGeneralizedProgramTest, PaperStyleLatencyVectors) {
  // Files with degrading latency tolerances under faults.
  const std::vector<GeneralizedFileSpec> files{
      {"critical", 2, {16, 20, 24}},
      {"relaxed", 1, {10, 30}},
  };
  pinwheel::CompositeScheduler scheduler;
  auto result = BuildGeneralizedProgram(files, scheduler);
  ASSERT_TRUE(result.ok()) << result.status();

  const BroadcastProgram& p = result->program;
  EXPECT_TRUE(p.VerifyBroadcastConditions().ok());
  EXPECT_EQ(p.files()[0].m, 2u);
  EXPECT_EQ(p.files()[0].n, 4u);  // m + r = 2 + 2.
  EXPECT_EQ(p.files()[1].n, 2u);
  // Conversion details are reported per file.
  ASSERT_EQ(result->conversions.size(), 2u);
  EXPECT_GE(result->conversions[0].best().density(),
            result->conversions[0].density_lower_bound - 1e-12);
}

TEST(BuildGeneralizedProgramTest, Example4FileBuilds) {
  // The paper's Example 4 condition bc(4, [8, 9]) as a file spec — dense
  // (lower bound 0.5556) but schedulable via the optimizer's 0.6 conjunct.
  const std::vector<GeneralizedFileSpec> files{{"ex4", 4, {8, 9}}};
  pinwheel::CompositeScheduler scheduler;
  auto result = BuildGeneralizedProgram(files, scheduler);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->program.VerifyBroadcastConditions().ok());
}

TEST(BuildGeneralizedProgramTest, InvalidSpecRejected) {
  const std::vector<GeneralizedFileSpec> files{{"bad", 4, {3}}};
  pinwheel::CompositeScheduler scheduler;
  EXPECT_FALSE(BuildGeneralizedProgram(files, scheduler).ok());
}

TEST(BuildGeneralizedProgramTest, EmptyRejected) {
  pinwheel::CompositeScheduler scheduler;
  EXPECT_FALSE(BuildGeneralizedProgram({}, scheduler).ok());
}

TEST(BuildGeneralizedProgramTest, MixedSystemDensityBudget) {
  // Several files whose combined converted density stays below 1 and
  // schedules.
  const std::vector<GeneralizedFileSpec> files{
      {"a", 1, {6}},
      {"b", 2, {14, 16}},
      {"c", 1, {9, 12}},
      {"d", 3, {40, 44, 50}},
  };
  pinwheel::CompositeScheduler scheduler;
  auto result = BuildGeneralizedProgram(files, scheduler);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->program.VerifyBroadcastConditions().ok());
  EXPECT_LE(result->scheduled_density, 1.0 + 1e-9);
}

}  // namespace
}  // namespace bdisk::broadcast
