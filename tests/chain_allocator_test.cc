// Unit and property tests for the residue-class chain allocator.

#include "pinwheel/chain_allocator.h"

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "pinwheel/verifier.h"

namespace bdisk::pinwheel {
namespace {

TEST(SmallestPrimeFactorTest, Basics) {
  EXPECT_EQ(SmallestPrimeFactor(2), 2u);
  EXPECT_EQ(SmallestPrimeFactor(3), 3u);
  EXPECT_EQ(SmallestPrimeFactor(4), 2u);
  EXPECT_EQ(SmallestPrimeFactor(9), 3u);
  EXPECT_EQ(SmallestPrimeFactor(15), 3u);
  EXPECT_EQ(SmallestPrimeFactor(97), 97u);
  EXPECT_EQ(SmallestPrimeFactor(91), 7u);
}

TEST(ChainAllocatorTest, RejectsZeroPeriodOrCount) {
  EXPECT_TRUE(ChainAllocator::Allocate({{1, 0, 1}})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ChainAllocator::Allocate({{1, 4, 0}})
                  .status()
                  .IsInvalidArgument());
}

TEST(ChainAllocatorTest, SingleTaskFullDensity) {
  auto a = ChainAllocator::Allocate({{1, 1, 1}});
  ASSERT_TRUE(a.ok());
  ASSERT_EQ(a->size(), 1u);
  EXPECT_EQ((*a)[0].offset, 0u);
  EXPECT_EQ((*a)[0].period, 1u);
}

TEST(ChainAllocatorTest, PowerOfTwoChainExactFit) {
  // Densities 1/2 + 1/4 + 1/4 = 1; all must fit.
  auto a = ChainAllocator::Allocate({{1, 2, 1}, {2, 4, 1}, {3, 4, 1}});
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->size(), 3u);
  // Distinct residue classes.
  std::map<std::uint64_t, int> slot_owner;
  for (const ClassAssignment& c : *a) {
    for (std::uint64_t t = c.offset; t < 8; t += c.period) {
      EXPECT_EQ(slot_owner.count(t), 0u) << "slot " << t;
      slot_owner[t] = 1;
    }
  }
}

TEST(ChainAllocatorTest, OverfullChainFails) {
  // 1/2 + 1/2 + 1/4 > 1.
  auto a = ChainAllocator::Allocate({{1, 2, 1}, {2, 2, 1}, {3, 4, 1}});
  EXPECT_TRUE(a.status().IsInfeasible());
}

TEST(ChainAllocatorTest, MultiCountRequest) {
  // One task wanting 3 classes of period 4 (density 3/4).
  auto a = ChainAllocator::Allocate({{1, 4, 3}});
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->size(), 3u);
  for (const ClassAssignment& c : *a) {
    EXPECT_EQ(c.period, 4u);
    EXPECT_EQ(c.task, 1u);
  }
}

TEST(ChainAllocatorTest, NonChainPeriodsBestEffort) {
  // Periods 2 and 3 are not chain-related; density 1/2 + 1/3 <= 1 but the
  // trie cannot always place them — here it can (split 1 -> 2, then the
  // spare class by 3).
  auto a = ChainAllocator::Allocate({{1, 2, 1}, {2, 6, 1}});
  ASSERT_TRUE(a.ok());
}

// Property: any power-of-two-period request set with density <= 1 is
// allocated, and the resulting schedule serves each task every `period`.
TEST(ChainAllocatorTest, PropertyChainDensityOneAlwaysFits) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    // Build random power-of-two requests filling density exactly <= 1.
    std::vector<ClassRequest> requests;
    double density = 0.0;
    TaskId next_id = 1;
    while (true) {
      const std::uint64_t period = 1ULL << (1 + rng.Uniform(5));  // 2..32
      const double d = 1.0 / static_cast<double>(period);
      if (density + d > 1.0 + 1e-12) break;
      requests.push_back({next_id++, period, 1});
      density += d;
      if (requests.size() > 30) break;
    }
    auto assignments = ChainAllocator::Allocate(requests);
    ASSERT_TRUE(assignments.ok()) << "trial " << trial;
    auto schedule = ChainAllocator::ToSchedule(*assignments);
    ASSERT_TRUE(schedule.ok());
    for (const ClassRequest& req : requests) {
      EXPECT_GE(Verifier::MinWindowCount(*schedule, req.task, req.period), 1u);
    }
  }
}

TEST(ChainAllocatorTest, MixedChainWithBase3) {
  // Chain {3, 6, 12}: density 1/3 + 1/6 + 2/12 <= 1.
  auto a = ChainAllocator::Allocate({{1, 3, 1}, {2, 6, 1}, {3, 12, 2}});
  ASSERT_TRUE(a.ok());
  auto s = ChainAllocator::ToSchedule(*a);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->period(), 12u);
  EXPECT_GE(Verifier::MinWindowCount(*s, 1, 3), 1u);
  EXPECT_GE(Verifier::MinWindowCount(*s, 2, 6), 1u);
  EXPECT_GE(Verifier::MinWindowCount(*s, 3, 12), 2u);
}

TEST(ToScheduleTest, RejectsEmptyAndMalformed) {
  EXPECT_TRUE(ChainAllocator::ToSchedule({}).status().IsInvalidArgument());
  EXPECT_TRUE(ChainAllocator::ToSchedule({{1, 5, 4}})
                  .status()
                  .IsInvalidArgument());  // offset >= period
}

TEST(ToScheduleTest, DetectsCollision) {
  // Two classes covering the same slots.
  Status s = ChainAllocator::ToSchedule({{1, 0, 2}, {2, 0, 4}}).status();
  EXPECT_TRUE(s.IsInternal());
}

TEST(ToScheduleTest, PeriodCapEnforced) {
  Status s =
      ChainAllocator::ToSchedule({{1, 0, 3}, {2, 1, 65536}}, 1000).status();
  EXPECT_TRUE(s.IsResourceExhausted());
}

TEST(ToScheduleTest, IdleSlotsWhereUnassigned) {
  auto s = ChainAllocator::ToSchedule({{1, 0, 4}});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->period(), 4u);
  EXPECT_EQ(s->CountOf(1), 1u);
  EXPECT_EQ(s->IdleCount(), 3u);
}

TEST(ChainAllocatorTest, DeterministicOutput) {
  const std::vector<ClassRequest> requests{{1, 4, 1}, {2, 8, 2}, {3, 2, 1}};
  auto a1 = ChainAllocator::Allocate(requests);
  auto a2 = ChainAllocator::Allocate(requests);
  ASSERT_TRUE(a1.ok());
  ASSERT_TRUE(a2.ok());
  ASSERT_EQ(a1->size(), a2->size());
  for (std::size_t i = 0; i < a1->size(); ++i) {
    EXPECT_EQ((*a1)[i].offset, (*a2)[i].offset);
    EXPECT_EQ((*a1)[i].period, (*a2)[i].period);
  }
}

}  // namespace
}  // namespace bdisk::pinwheel
