// Unit tests for the common RNG and statistics helpers.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/random.h"
#include "common/stats.h"

namespace bdisk {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliApproximatesRate) {
  Rng rng(23);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(29);
  double sum = 0.0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) sum += rng.Exponential(5.0);
  EXPECT_NEAR(sum / trials, 5.0, 0.15);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    const auto sample = rng.SampleWithoutReplacement(20, 7);
    ASSERT_EQ(sample.size(), 7u);
    std::set<std::size_t> s(sample.begin(), sample.end());
    EXPECT_EQ(s.size(), 7u);
    for (std::size_t v : sample) EXPECT_LT(v, 20u);
  }
}

TEST(RngTest, SampleFullRange) {
  Rng rng(37);
  const auto sample = rng.SampleWithoutReplacement(5, 5);
  std::set<std::size_t> s(sample.begin(), sample.end());
  EXPECT_EQ(s, (std::set<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(41);
  std::vector<int> v{1, 2, 3, 4, 5, 6};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RunningStatsTest, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // Population variance.
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  Rng rng(43);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.UniformDouble() * 10;
    if (i % 2 == 0) {
      a.Add(x);
    } else {
      b.Add(x);
    }
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergePartitionInvariantExactly) {
  // Property test: merging ANY partition of a sample stream, in ANY order,
  // reproduces single-pass accumulation bit for bit (for exactly
  // representable observations — here integer-valued, like the simulator's
  // slot latencies). The sharded simulator relies on this.
  Rng rng(101);
  std::vector<double> samples;
  samples.reserve(5000);
  for (int i = 0; i < 5000; ++i) {
    samples.push_back(static_cast<double>(rng.Uniform(1000)));
  }
  RunningStats single;
  for (double x : samples) single.Add(x);

  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t parts_count = 1 + rng.Uniform(8);
    std::vector<RunningStats> parts(parts_count);
    for (double x : samples) parts[rng.Uniform(parts_count)].Add(x);
    std::vector<std::size_t> order(parts_count);
    for (std::size_t i = 0; i < parts_count; ++i) order[i] = i;
    rng.Shuffle(&order);
    RunningStats merged;
    for (std::size_t idx : order) merged.Merge(parts[idx]);
    // Exact equality, not EXPECT_NEAR.
    EXPECT_EQ(merged.count(), single.count());
    EXPECT_EQ(merged.sum(), single.sum());
    EXPECT_EQ(merged.mean(), single.mean());
    EXPECT_EQ(merged.variance(), single.variance());
    EXPECT_EQ(merged.stddev(), single.stddev());
    EXPECT_EQ(merged.min(), single.min());
    EXPECT_EQ(merged.max(), single.max());
  }
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a;
  a.Add(1.0);
  RunningStats empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(HistogramTest, CountsAndOverflow) {
  Histogram h(10);
  h.Add(0);
  h.Add(5);
  h.Add(5);
  h.Add(10);
  h.Add(11);
  h.Add(1000);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.CountAt(5), 2u);
  EXPECT_EQ(h.CountAt(10), 1u);
  EXPECT_EQ(h.OverflowCount(), 2u);
}

TEST(HistogramTest, Quantiles) {
  Histogram h(100);
  for (std::uint64_t v = 1; v <= 100; ++v) h.Add(v);
  EXPECT_EQ(h.Quantile(0.5), 50u);
  EXPECT_EQ(h.Quantile(0.99), 99u);
  EXPECT_EQ(h.Quantile(1.0), 100u);
  EXPECT_EQ(h.Quantile(0.0), 1u);  // Smallest value covering >= 0 share.
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  Histogram h(4);
  EXPECT_EQ(h.Quantile(0.5), 0u);
}

TEST(GcdLcmTest, Gcd) {
  EXPECT_EQ(Gcd(12, 18), 6u);
  EXPECT_EQ(Gcd(7, 13), 1u);
  EXPECT_EQ(Gcd(0, 5), 5u);
  EXPECT_EQ(Gcd(5, 0), 5u);
  EXPECT_EQ(Gcd(48, 48), 48u);
}

TEST(GcdLcmTest, LcmBasics) {
  EXPECT_EQ(LcmCapped(4, 6), 12u);
  EXPECT_EQ(LcmCapped(1, 9), 9u);
  EXPECT_EQ(LcmCapped(8, 8), 8u);
}

TEST(GcdLcmTest, LcmSaturatesAtCap) {
  EXPECT_EQ(LcmCapped(1000000007ULL, 998244353ULL, 1000), 1000u);
}

}  // namespace
}  // namespace bdisk
