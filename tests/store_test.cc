// Unit tests for the store plane: block devices, the typed IoResult error
// path, the free-space bitmap, the device fault-injection grammar, and the
// crash-safe BlockStore (format, recovery, staging, commit, typed
// checksum rejection). The whole-workload power-cut enumeration lives in
// store_crash_sweep_test.cc; the byte-identity scenario replay in
// store_scenario_test.cc.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "ida/block.h"
#include "store/bitmap.h"
#include "store/block_device.h"
#include "store/block_store.h"
#include "store/fault_device.h"

namespace bdisk::store {
namespace {

constexpr std::size_t kBlockSize = 64;
constexpr std::uint64_t kBlockCount = 256;

// Deterministic stamped coded blocks for (file_id, version): n blocks of
// `payload_bytes` each, payload a function of every index.
std::vector<ida::Block> MakeBlocks(ida::FileId file_id, std::uint64_t version,
                                   std::uint32_t m, std::uint32_t n,
                                   std::size_t payload_bytes) {
  std::vector<ida::Block> blocks(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    blocks[i].header.file_id = file_id;
    blocks[i].header.block_index = i;
    blocks[i].header.reconstruct_threshold = m;
    blocks[i].header.total_blocks = n;
    blocks[i].header.version = version;
    blocks[i].payload.resize(payload_bytes);
    for (std::size_t b = 0; b < payload_bytes; ++b) {
      blocks[i].payload[b] = static_cast<std::uint8_t>(
          file_id * 7 + version * 131 + i * 17 + b);
    }
  }
  ida::StampChecksums(&blocks);
  return blocks;
}

std::unique_ptr<MemBlockDevice> MakeMem() {
  return std::make_unique<MemBlockDevice>(kBlockSize, kBlockCount);
}

// ---------------------------------------------------------------------------
// IoResult
// ---------------------------------------------------------------------------

TEST(IoResultTest, OkIsOk) {
  EXPECT_TRUE(IoResult::Ok().ok());
  EXPECT_TRUE(static_cast<bool>(IoResult::Ok()));
  EXPECT_TRUE(IoResult::Ok().ToStatus("ctx").ok());
}

TEST(IoResultTest, ToStringNamesOpAndBlock) {
  const IoResult r = IoResult::Errno(IoOp::kWrite, EIO, 17);
  EXPECT_FALSE(r.ok());
  const std::string s = r.ToString();
  EXPECT_NE(s.find("write"), std::string::npos) << s;
  EXPECT_NE(s.find("17"), std::string::npos) << s;
  EXPECT_NE(s.find("errno 5"), std::string::npos) << s;
}

TEST(IoResultTest, ToStatusPreservesCategory) {
  EXPECT_TRUE(IoResult::Errno(IoOp::kWrite, EIO).ToStatus("x").IsIoError());
  EXPECT_TRUE(IoResult::Errno(IoOp::kWrite, ENOSPC)
                  .ToStatus("x")
                  .IsResourceExhausted());
  EXPECT_TRUE(IoResult::PowerCut(IoOp::kSync).ToStatus("x").IsIoError());
  const IoResult rot{IoError::kChecksumMismatch, IoOp::kRead, 0, 3, 0};
  EXPECT_TRUE(rot.ToStatus("x").IsDataLoss());
}

// ---------------------------------------------------------------------------
// Devices
// ---------------------------------------------------------------------------

TEST(MemBlockDeviceTest, RoundTripsAndBoundsChecks) {
  auto dev = MakeMem();
  std::vector<std::uint8_t> in(kBlockSize, 0xAB), out(kBlockSize, 0);
  ASSERT_TRUE(dev->WriteBlock(5, in.data()).ok());
  ASSERT_TRUE(dev->ReadBlock(5, out.data()).ok());
  EXPECT_EQ(in, out);
  const IoResult r = dev->ReadBlock(kBlockCount, out.data());
  EXPECT_EQ(r.error, IoError::kOutOfRange);
  EXPECT_EQ(r.block, kBlockCount);
}

TEST(MemBlockDeviceTest, AttachSharesBytesAcrossReboot) {
  auto dev = MakeMem();
  std::vector<std::uint8_t> in(kBlockSize, 0x5C), out(kBlockSize, 0);
  ASSERT_TRUE(dev->WriteBlock(9, in.data()).ok());
  auto rebooted = MemBlockDevice::Attach(dev->buffer(), kBlockSize);
  ASSERT_TRUE(rebooted->ReadBlock(9, out.data()).ok());
  EXPECT_EQ(in, out);
}

TEST(FileBlockDeviceTest, CreateWriteReadReopen) {
  const std::string path = ::testing::TempDir() + "/bdisk_store_dev_test";
  {
    auto dev = FileBlockDevice::Create(path, kBlockSize, 16);
    ASSERT_TRUE(dev.ok()) << dev.status();
    std::vector<std::uint8_t> in(kBlockSize);
    for (std::size_t i = 0; i < in.size(); ++i) {
      in[i] = static_cast<std::uint8_t>(i);
    }
    ASSERT_TRUE((*dev)->WriteBlock(3, in.data()).ok());
    ASSERT_TRUE((*dev)->Sync().ok());
  }
  auto dev = FileBlockDevice::Open(path, kBlockSize);
  ASSERT_TRUE(dev.ok()) << dev.status();
  EXPECT_EQ((*dev)->block_count(), 16u);
  std::vector<std::uint8_t> out(kBlockSize, 0);
  ASSERT_TRUE((*dev)->ReadBlock(3, out.data()).ok());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<std::uint8_t>(i));
  }
  std::remove(path.c_str());
}

TEST(FileBlockDeviceTest, TruncatedBackingFileIsTypedShortReadNotSpin) {
  // Regression: a 0-byte pread (EOF inside the device extent, i.e. the
  // backing file was truncated underneath us) must surface as a typed
  // short read, not loop forever treating "no progress" as progress.
  const std::string path = ::testing::TempDir() + "/bdisk_store_trunc_test";
  auto dev = FileBlockDevice::Create(path, kBlockSize, 16);
  ASSERT_TRUE(dev.ok()) << dev.status();
  std::vector<std::uint8_t> buf(kBlockSize, 0xA7);
  ASSERT_TRUE((*dev)->WriteBlock(15, buf.data()).ok());
  // Shrink the file mid-block: block 4 now has half its bytes on disk.
  ASSERT_EQ(::truncate(path.c_str(), 4 * kBlockSize + kBlockSize / 2), 0);
  const IoResult r = (*dev)->ReadBlock(4, buf.data());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error, IoError::kShortRead);
  EXPECT_EQ(r.op, IoOp::kRead);
  EXPECT_EQ(r.block, 4u);
  EXPECT_EQ(r.bytes, kBlockSize / 2);
  // A fully truncated-away block reads zero bytes before EOF.
  const IoResult r2 = (*dev)->ReadBlock(10, buf.data());
  EXPECT_EQ(r2.error, IoError::kShortRead);
  EXPECT_EQ(r2.bytes, 0u);
  std::remove(path.c_str());
}

TEST(IoResultTest, ShortWriteFactoryIsTypedWriteSide) {
  // The write loop's 0-byte-pwrite guard reports through this factory;
  // pin its shape so the error keeps naming the op, block, and progress.
  const IoResult r = IoResult::Short(IoOp::kWrite, 7, 128);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error, IoError::kShortWrite);
  EXPECT_EQ(r.op, IoOp::kWrite);
  EXPECT_EQ(r.block, 7u);
  EXPECT_EQ(r.bytes, 128u);
}

TEST(FileBlockDeviceTest, OpenRejectsGeometryMismatch) {
  const std::string path = ::testing::TempDir() + "/bdisk_store_dev_odd";
  {
    auto dev = FileBlockDevice::Create(path, 96, 3);  // 288 bytes.
    ASSERT_TRUE(dev.ok()) << dev.status();
  }
  const auto reopened = FileBlockDevice::Open(path, kBlockSize);
  ASSERT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsInvalidArgument());
  std::remove(path.c_str());
}

TEST(FileBlockDeviceTest, OpenMissingFileIsTypedIoError) {
  const auto dev =
      FileBlockDevice::Open(::testing::TempDir() + "/bdisk_no_such_device",
                            kBlockSize);
  ASSERT_FALSE(dev.ok());
  EXPECT_TRUE(dev.status().IsNotFound() || dev.status().IsIoError())
      << dev.status();
}

// ---------------------------------------------------------------------------
// FreeBitmap
// ---------------------------------------------------------------------------

TEST(FreeBitmapTest, AllocateRunIsFirstFit) {
  FreeBitmap bitmap(16);
  bitmap.Set(0);
  bitmap.Set(5);  // Free gaps: [1,5) of 4, [6,16) of 10.
  EXPECT_EQ(bitmap.AllocateRun(4), std::optional<std::uint64_t>(1));
  EXPECT_EQ(bitmap.AllocateRun(4), std::optional<std::uint64_t>(6));
  EXPECT_EQ(bitmap.AllocateRun(7), std::nullopt);  // Only 6 left.
  EXPECT_EQ(bitmap.AllocateRun(6), std::optional<std::uint64_t>(10));
  EXPECT_EQ(bitmap.FreeCount(), 0u);
  EXPECT_EQ(bitmap.AllocateRun(1), std::nullopt);
}

TEST(FreeBitmapTest, SetClearTestAndFreeCount) {
  FreeBitmap bitmap(130);  // Spans three 64-bit words.
  EXPECT_EQ(bitmap.FreeCount(), 130u);
  bitmap.Set(0);
  bitmap.Set(64);
  bitmap.Set(129);
  EXPECT_TRUE(bitmap.Test(64));
  EXPECT_FALSE(bitmap.Test(63));
  EXPECT_EQ(bitmap.FreeCount(), 127u);
  bitmap.Clear(64);
  EXPECT_FALSE(bitmap.Test(64));
  EXPECT_EQ(bitmap.FreeCount(), 128u);
}

// ---------------------------------------------------------------------------
// Device fault spec grammar
// ---------------------------------------------------------------------------

TEST(DeviceFaultSpecTest, ParsesAndDescribesComposition) {
  const auto config = ParseDeviceFaultSpec(
      "errno:op=sync,at=2,err=ENOSPC+torn:at=1,bytes=10,seed=7+powercut:"
      "at=9,torn=32");
  ASSERT_TRUE(config.ok()) << config.status();
  ASSERT_EQ(config->errnos.size(), 1u);
  EXPECT_EQ(config->errnos[0].op, IoOp::kSync);
  EXPECT_EQ(config->errnos[0].err, ENOSPC);
  ASSERT_EQ(config->torns.size(), 1u);
  EXPECT_EQ(config->torns[0].bytes, 10u);
  ASSERT_TRUE(config->powercut.has_value());
  EXPECT_EQ(config->powercut->at, 9u);
  EXPECT_EQ(config->powercut->torn_bytes, std::optional<std::uint64_t>(32));
  EXPECT_EQ(config->Describe(),
            "errno:op=sync,at=2,err=ENOSPC+torn:at=1,bytes=10,seed=7+"
            "powercut:at=9,torn=32");
}

TEST(DeviceFaultSpecTest, NoneIsEmptyConfig) {
  const auto config = ParseDeviceFaultSpec("none");
  ASSERT_TRUE(config.ok()) << config.status();
  EXPECT_TRUE(config->errnos.empty());
  EXPECT_FALSE(config->powercut.has_value());
  EXPECT_EQ(config->Describe(), "none");
}

TEST(DeviceFaultSpecTest, ErrorsNameTheOffendingToken) {
  const struct {
    const char* spec;
    const char* needle;
  } kCases[] = {
      {"flaky", "unknown model 'flaky'"},
      {"powercut:when=3", "unknown key 'when'"},
      {"powercut:at=soon", "'at=soon'"},
      {"errno:err=EPIPE", "'err=EPIPE'"},
      {"errno:op=readahead", "'op=readahead'"},
      {"errno:count=0", "'count=0'"},
      {"short:at=1,at=2", "duplicate key 'at'"},
      {"powercut:at=1+powercut:at=2", "more than one powercut"},
      {"torn:bytes", "expected key=value"},
      {"", "empty"},
  };
  for (const auto& c : kCases) {
    const auto config = ParseDeviceFaultSpec(c.spec);
    ASSERT_FALSE(config.ok()) << c.spec;
    EXPECT_TRUE(config.status().IsInvalidArgument()) << config.status();
    EXPECT_NE(config.status().message().find(c.needle), std::string::npos)
        << "spec '" << c.spec << "' produced: " << config.status();
  }
}

// ---------------------------------------------------------------------------
// FaultingBlockDevice
// ---------------------------------------------------------------------------

TEST(FaultingBlockDeviceTest, ErrnoInjectionHasNoSideEffect) {
  auto config = ParseDeviceFaultSpec("errno:op=write,at=1,err=EIO");
  ASSERT_TRUE(config.ok());
  FaultingBlockDevice dev(MakeMem(), *config);
  std::vector<std::uint8_t> a(kBlockSize, 1), b(kBlockSize, 2),
      out(kBlockSize, 0);
  ASSERT_TRUE(dev.WriteBlock(7, a.data()).ok());  // Ordinal 0: passes.
  const IoResult r = dev.WriteBlock(7, b.data());  // Ordinal 1: EIO.
  EXPECT_EQ(r.error, IoError::kErrno);
  EXPECT_EQ(r.raw_errno, EIO);
  ASSERT_TRUE(dev.ReadBlock(7, out.data()).ok());
  EXPECT_EQ(out, a);  // The failed write changed nothing.
  EXPECT_EQ(dev.writes_attempted(), 2u);
}

TEST(FaultingBlockDeviceTest, ShortWritePersistsPrefixAndReportsIt) {
  auto config = ParseDeviceFaultSpec("short:at=0,bytes=8");
  ASSERT_TRUE(config.ok());
  FaultingBlockDevice dev(MakeMem(), *config);
  std::vector<std::uint8_t> in(kBlockSize, 0xEE), out(kBlockSize, 0);
  const IoResult r = dev.WriteBlock(0, in.data());
  EXPECT_EQ(r.error, IoError::kShortWrite);
  EXPECT_EQ(r.bytes, 8u);
  ASSERT_TRUE(dev.ReadBlock(0, out.data()).ok());
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    EXPECT_EQ(out[i], i < 8 ? 0xEE : 0x00) << i;
  }
}

TEST(FaultingBlockDeviceTest, TornWriteLiesAboutSuccess) {
  auto config = ParseDeviceFaultSpec("torn:at=0,bytes=8,seed=3");
  ASSERT_TRUE(config.ok());
  FaultingBlockDevice dev(MakeMem(), *config);
  std::vector<std::uint8_t> in(kBlockSize, 0xEE), out(kBlockSize, 0);
  ASSERT_TRUE(dev.WriteBlock(0, in.data()).ok());  // Reports success.
  ASSERT_TRUE(dev.ReadBlock(0, out.data()).ok());
  EXPECT_NE(out, in);  // ...but the sector is torn.
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(out[i], 0xEE) << i;
}

TEST(FaultingBlockDeviceTest, PowerCutKillsEverySubsequentOp) {
  auto config = ParseDeviceFaultSpec("powercut:at=2");
  ASSERT_TRUE(config.ok());
  FaultingBlockDevice dev(MakeMem(), *config);
  std::vector<std::uint8_t> buf(kBlockSize, 0x11);
  ASSERT_TRUE(dev.WriteBlock(0, buf.data()).ok());
  ASSERT_TRUE(dev.WriteBlock(1, buf.data()).ok());
  EXPECT_FALSE(dev.dead());
  EXPECT_EQ(dev.WriteBlock(2, buf.data()).error, IoError::kPowerCut);
  EXPECT_TRUE(dev.dead());
  EXPECT_EQ(dev.ReadBlock(0, buf.data()).error, IoError::kPowerCut);
  EXPECT_EQ(dev.Sync().error, IoError::kPowerCut);
  EXPECT_EQ(dev.WriteBlock(3, buf.data()).error, IoError::kPowerCut);
}

// ---------------------------------------------------------------------------
// BlockStore
// ---------------------------------------------------------------------------

TEST(BlockStoreTest, FormatThenOpenIsEmptyGenerationOne) {
  auto mem = MakeMem();
  auto buffer = mem->buffer();
  {
    auto store = BlockStore::Format(std::move(mem));
    ASSERT_TRUE(store.ok()) << store.status();
    EXPECT_EQ((*store)->generation(), 1u);
    EXPECT_TRUE((*store)->catalog().empty());
  }
  auto reopened =
      BlockStore::Open(MemBlockDevice::Attach(buffer, kBlockSize));
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->generation(), 1u);
  EXPECT_TRUE((*reopened)->catalog().empty());
}

TEST(BlockStoreTest, OpenUnformattedDeviceIsDataLoss) {
  const auto store = BlockStore::Open(MakeMem());
  ASSERT_FALSE(store.ok());
  EXPECT_TRUE(store.status().IsDataLoss()) << store.status();
}

TEST(BlockStoreTest, FormatRejectsTinyBlockSize) {
  const auto store =
      BlockStore::Format(std::make_unique<MemBlockDevice>(32, 64));
  ASSERT_FALSE(store.ok());
  EXPECT_TRUE(store.status().IsInvalidArgument());
}

TEST(BlockStoreTest, StageCommitReopenReadRoundTrip) {
  auto mem = MakeMem();
  auto buffer = mem->buffer();
  const auto blocks = MakeBlocks(/*file_id=*/4, /*version=*/2, 3, 5, 100);
  {
    auto store = BlockStore::Format(std::move(mem));
    ASSERT_TRUE(store.ok()) << store.status();
    ASSERT_TRUE((*store)->StageFile(blocks).ok());
    // Not visible before commit.
    EXPECT_EQ((*store)->FindEntry(4, 2), nullptr);
    EXPECT_TRUE((*store)->ReadCodedBlock(4, 2, 0).status().IsNotFound());
    ASSERT_TRUE((*store)->Commit().ok());
    EXPECT_EQ((*store)->generation(), 2u);
    ASSERT_NE((*store)->FindEntry(4, 2), nullptr);
  }
  auto store = BlockStore::Open(MemBlockDevice::Attach(buffer, kBlockSize));
  ASSERT_TRUE(store.ok()) << store.status();
  EXPECT_EQ((*store)->generation(), 2u);
  const CatalogEntry* entry = (*store)->FindEntry(4, 2);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->m, 3u);
  EXPECT_EQ(entry->n, 5u);
  EXPECT_EQ(entry->payload_bytes, 100u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    const auto block = (*store)->ReadCodedBlock(4, 2, i);
    ASSERT_TRUE(block.ok()) << block.status();
    EXPECT_EQ(*block, blocks[i]);  // Header AND payload, bit for bit.
  }
}

TEST(BlockStoreTest, StageFileValidatesIdentityAndStamps) {
  auto store = BlockStore::Format(MakeMem());
  ASSERT_TRUE(store.ok()) << store.status();
  EXPECT_TRUE((*store)->StageFile({}).IsInvalidArgument());

  auto mixed = MakeBlocks(1, 0, 2, 3, 40);
  mixed[2].header.version = 9;  // Identity disagreement.
  ida::StampChecksum(&mixed[2]);
  EXPECT_TRUE((*store)->StageFile(mixed).IsInvalidArgument());

  auto unstamped = MakeBlocks(1, 0, 2, 3, 40);
  unstamped[1].header.checksum = 0;
  EXPECT_TRUE((*store)->StageFile(unstamped).IsInvalidArgument());

  const auto good = MakeBlocks(1, 0, 2, 3, 40);
  ASSERT_TRUE((*store)->StageFile(good).ok());
  EXPECT_TRUE((*store)->StageFile(good).IsInvalidArgument())
      << "restaging the same (file, version) must be rejected";
}

TEST(BlockStoreTest, StagedEraseDefersFreeUntilCommit) {
  // Device with room for one big file (plus metadata), not two: an erase
  // staged in the same transaction as a new file must NOT make the old
  // blocks reusable — shadow paging forbids touching the committed
  // generation.
  auto store =
      BlockStore::Format(std::make_unique<MemBlockDevice>(kBlockSize, 40));
  ASSERT_TRUE(store.ok()) << store.status();
  const auto v0 = MakeBlocks(0, 0, 2, 4, 7 * kBlockSize);  // 28 blocks.
  ASSERT_TRUE((*store)->StageFile(v0).ok());
  ASSERT_TRUE((*store)->Commit().ok());

  ASSERT_TRUE((*store)->StageErase(0, 0).ok());
  const auto v1 = MakeBlocks(0, 1, 2, 4, 7 * kBlockSize);
  const Status replace = (*store)->StageFile(v1);
  ASSERT_FALSE(replace.ok());
  EXPECT_TRUE(replace.IsResourceExhausted()) << replace;

  // After aborting and committing the erase ALONE, the space is back.
  (*store)->Abort();
  ASSERT_TRUE((*store)->StageErase(0, 0).ok());
  ASSERT_TRUE((*store)->Commit().ok());
  ASSERT_TRUE((*store)->StageFile(v1).ok());
  ASSERT_TRUE((*store)->Commit().ok());
  EXPECT_NE((*store)->FindEntry(0, 1), nullptr);
  EXPECT_EQ((*store)->FindEntry(0, 0), nullptr);
}

TEST(BlockStoreTest, AbortDiscardsStagedState) {
  auto store = BlockStore::Format(MakeMem());
  ASSERT_TRUE(store.ok()) << store.status();
  ASSERT_TRUE((*store)->StageFile(MakeBlocks(3, 0, 2, 3, 50)).ok());
  (*store)->Abort();
  ASSERT_TRUE((*store)->Commit().ok());  // Nothing dirty: no-op.
  EXPECT_EQ((*store)->generation(), 1u);
  EXPECT_EQ((*store)->FindEntry(3, 0), nullptr);
}

TEST(BlockStoreTest, BitRotSurfacesAsTypedDataLossNeverGarbage) {
  auto mem = MakeMem();
  auto buffer = mem->buffer();
  auto store = BlockStore::Format(std::move(mem));
  ASSERT_TRUE(store.ok()) << store.status();
  ASSERT_TRUE((*store)->StageFile(MakeBlocks(2, 1, 2, 3, 90)).ok());
  ASSERT_TRUE((*store)->Commit().ok());
  const CatalogEntry* entry = (*store)->FindEntry(2, 1);
  ASSERT_NE(entry, nullptr);

  // Flip one bit in the middle of coded block 1's on-disk payload.
  const std::uint64_t victim = entry->blocks[1].first_block;
  (*buffer)[victim * kBlockSize + 11] ^= 0x40;

  const auto rotted = (*store)->ReadCodedBlock(2, 1, 1);
  ASSERT_FALSE(rotted.ok());
  EXPECT_TRUE(rotted.status().IsDataLoss()) << rotted.status();
  // Undamaged siblings still read fine.
  EXPECT_TRUE((*store)->ReadCodedBlock(2, 1, 0).ok());
  EXPECT_TRUE((*store)->ReadCodedBlock(2, 1, 2).ok());
}

TEST(BlockStoreTest, TornSuperblockRecoversToOlderGeneration) {
  auto mem = MakeMem();
  auto buffer = mem->buffer();
  auto store = BlockStore::Format(std::move(mem));
  ASSERT_TRUE(store.ok()) << store.status();
  ASSERT_TRUE((*store)->StageFile(MakeBlocks(0, 0, 2, 3, 30)).ok());
  ASSERT_TRUE((*store)->Commit().ok());  // Generation 2, slot 0.
  ASSERT_TRUE((*store)->StageFile(MakeBlocks(1, 0, 2, 3, 30)).ok());
  ASSERT_TRUE((*store)->Commit().ok());  // Generation 3, slot 1.

  // Tear generation 3's superblock (slot 1): its CRC must reject, and
  // recovery must land on generation 2 — old, consistent, no file 1.
  (*buffer)[1 * kBlockSize + 30] ^= 0xFF;
  auto reopened =
      BlockStore::Open(MemBlockDevice::Attach(buffer, kBlockSize));
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->generation(), 2u);
  EXPECT_NE((*reopened)->FindEntry(0, 0), nullptr);
  EXPECT_EQ((*reopened)->FindEntry(1, 0), nullptr);
}

TEST(BlockStoreTest, BothSuperblocksDamagedIsDataLoss) {
  auto mem = MakeMem();
  auto buffer = mem->buffer();
  {
    auto store = BlockStore::Format(std::move(mem));
    ASSERT_TRUE(store.ok()) << store.status();
  }
  (*buffer)[0 * kBlockSize + 5] ^= 0x01;
  (*buffer)[1 * kBlockSize + 5] ^= 0x01;
  const auto reopened =
      BlockStore::Open(MemBlockDevice::Attach(buffer, kBlockSize));
  ASSERT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsDataLoss()) << reopened.status();
}

TEST(BlockStoreTest, FailedCommitPoisonsUntilAbortReadsStillServe) {
  auto config = ParseDeviceFaultSpec("errno:op=sync,err=EIO,count=100");
  ASSERT_TRUE(config.ok());
  // Build a committed store first on a clean device, then wrap the SAME
  // bytes in a faulting device for the failing update.
  auto mem = MakeMem();
  auto buffer = mem->buffer();
  {
    auto store = BlockStore::Format(std::move(mem));
    ASSERT_TRUE(store.ok()) << store.status();
    ASSERT_TRUE((*store)->StageFile(MakeBlocks(0, 0, 2, 3, 30)).ok());
    ASSERT_TRUE((*store)->Commit().ok());
  }
  auto store = BlockStore::Open(std::make_unique<FaultingBlockDevice>(
      MemBlockDevice::Attach(buffer, kBlockSize), *config));
  ASSERT_TRUE(store.ok()) << store.status();
  ASSERT_TRUE((*store)->StageFile(MakeBlocks(1, 0, 2, 3, 30)).ok());
  const Status failed = (*store)->Commit();
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(failed.IsIoError()) << failed;
  EXPECT_TRUE((*store)->poisoned());
  // Mutation is rejected; reads of the committed generation still work.
  EXPECT_TRUE((*store)->StageErase(0, 0).IsIoError());
  EXPECT_TRUE((*store)->Commit().IsIoError());
  EXPECT_TRUE((*store)->ReadCodedBlock(0, 0, 0).ok());
  (*store)->Abort();
  EXPECT_FALSE((*store)->poisoned());
  EXPECT_TRUE((*store)->ReadCodedBlock(0, 0, 0).ok());
}

TEST(BlockStoreTest, StatsReflectCatalog) {
  auto store = BlockStore::Format(MakeMem());
  ASSERT_TRUE(store.ok()) << store.status();
  const StoreStats before = (*store)->Stats();
  EXPECT_EQ(before.generation, 1u);
  EXPECT_EQ(before.entries, 0u);
  EXPECT_EQ(before.total_blocks, kBlockCount);
  ASSERT_TRUE((*store)->StageFile(MakeBlocks(0, 0, 2, 4, 2 * kBlockSize)).ok());
  ASSERT_TRUE((*store)->Commit().ok());
  const StoreStats after = (*store)->Stats();
  EXPECT_EQ(after.entries, 1u);
  EXPECT_LT(after.free_blocks, before.free_blocks);
  EXPECT_NE(after.ToString().find("generation=2"), std::string::npos);
}

}  // namespace
}  // namespace bdisk::store
