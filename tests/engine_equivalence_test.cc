// Slot-vs-event engine equivalence proof.
//
// The discrete-event engine (sim/event_engine.h) claims byte-identity with
// the slot-by-slot engine, not statistical agreement. This suite enforces
// the claim three ways:
//
//  1. For every committed tests/fixtures/*.scenario, RunWorkloadEvented's
//     MetricsToJson snapshot — serial AND sharded across a thread pool —
//     must equal RunWorkload's serial snapshot byte for byte, and must
//     equal the committed <name>.golden.json byte for byte. The event
//     engine therefore reproduces every golden in the repository without
//     those goldens ever being regenerated for it.
//
//  2. A grid of (workload seed x channel spec) beyond the committed
//     fixtures, so equivalence is not an artifact of the fixture
//     parameters: each grid point compares slot-serial, event-serial, and
//     event-sharded snapshots.
//
//  3. An epoch-schedule workload (hot-swap mid-trace), exercising the
//     engine's epoch-crossing jump arithmetic under the same byte-identity
//     bar.
//
// The pool width defaults to 3 and can be overridden with
// BDISK_EQUIV_THREADS (the CI engine-matrix job runs {1, 3}); byte-identity
// must hold at every width.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bdisk/flat_builder.h"
#include "faults/channel_spec.h"
#include "runtime/thread_pool.h"
#include "scenario_util.h"
#include "sim/epoch.h"
#include "sim/metrics.h"
#include "sim/simulation.h"

#ifndef BDISK_FIXTURES_DIR
#error "BDISK_FIXTURES_DIR must be defined by the build (CMakeLists.txt)"
#endif

namespace bdisk::sim {
namespace {

namespace fs = std::filesystem;
using scenario_util::BuildProgram;
using scenario_util::DiscoverScenarioNames;
using scenario_util::ParseScenario;
using scenario_util::ReadFileOrDie;
using scenario_util::Scenario;

unsigned PoolWidth() {
  const char* env = std::getenv("BDISK_EQUIV_THREADS");
  if (env == nullptr) return 3;
  const unsigned threads = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
  return threads == 0 ? 3 : threads;
}

/// Runs both engines on `simulator` and asserts the three snapshots
/// (slot-serial, event-serial, event-sharded) are byte-identical; returns
/// the common snapshot.
std::string AssertEnginesAgree(const Simulator& simulator,
                               const WorkloadConfig& config,
                               const std::string& label) {
  auto slot = simulator.RunWorkload(config, nullptr);
  EXPECT_TRUE(slot.ok()) << label << ": " << slot.status();
  if (!slot.ok()) return "";
  const std::string expected = MetricsToJson(*slot);

  auto event_serial = simulator.RunWorkloadEvented(config, nullptr);
  EXPECT_TRUE(event_serial.ok()) << label << ": " << event_serial.status();
  if (event_serial.ok()) {
    EXPECT_EQ(expected, MetricsToJson(*event_serial))
        << label << ": event-serial snapshot differs from slot engine";
  }

  runtime::ThreadPool pool(PoolWidth());
  auto event_pooled = simulator.RunWorkloadEvented(config, &pool);
  EXPECT_TRUE(event_pooled.ok()) << label << ": " << event_pooled.status();
  if (event_pooled.ok()) {
    EXPECT_EQ(expected, MetricsToJson(*event_pooled))
        << label << ": event-sharded (" << PoolWidth()
        << " threads) snapshot differs from slot engine";
  }
  return expected;
}

class FixtureEquivalenceTest : public ::testing::TestWithParam<std::string> {};

// Every committed scenario golden, reproduced by the event engine byte for
// byte — serial and sharded — without regenerating any golden.
TEST_P(FixtureEquivalenceTest, EventEngineReproducesGolden) {
  const fs::path fixtures(BDISK_FIXTURES_DIR);
  const Scenario scenario =
      ParseScenario(fixtures / (GetParam() + ".scenario"));
  ASSERT_EQ(scenario.Problem(), "") << GetParam();

  const broadcast::BroadcastProgram program =
      BuildProgram(ReadFileOrDie(fixtures / scenario.spec_file));
  ASSERT_FALSE(::testing::Test::HasFailure());

  auto channel = faults::ParseChannelSpec(scenario.channel);
  ASSERT_TRUE(channel.ok()) << channel.status();

  const Simulator simulator(program, **channel, scenario.horizon);
  WorkloadConfig config;
  config.requests_per_file = scenario.requests_per_file;
  config.seed = scenario.workload_seed;

  const std::string snapshot =
      AssertEnginesAgree(simulator, config, scenario.name);
  ASSERT_FALSE(snapshot.empty());

  const fs::path golden_path = fixtures / (scenario.name + ".golden.json");
  ASSERT_TRUE(fs::exists(golden_path))
      << golden_path << " missing — scenario_test owns golden generation";
  EXPECT_EQ(snapshot, ReadFileOrDie(golden_path))
      << scenario.name
      << ": event-engine snapshot diverged from the committed golden";
}

INSTANTIATE_TEST_SUITE_P(
    Fixtures, FixtureEquivalenceTest,
    ::testing::ValuesIn(DiscoverScenarioNames(BDISK_FIXTURES_DIR)),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return scenario_util::ParamName(info.param);
    });

// Equivalence beyond the committed fixtures: a (seed x channel) grid over
// both committed specs, so agreement is not an artifact of fixture choice.
TEST(EngineEquivalenceGrid, SeedByChannelBySpec) {
  const fs::path fixtures(BDISK_FIXTURES_DIR);
  const std::vector<std::string> specs = {"smallmix.spec", "gslots.spec"};
  const std::vector<std::uint64_t> seeds = {1, 42, 20260807};
  const std::vector<std::string> channels = {
      "lossless",
      "bernoulli:p=0.05,seed=11",
      "gilbert:pgb=0.02,pbg=0.25,seed=7",
      "outage:period=97,start=13,len=9+corrupt:p=0.01,seed=5",
  };

  for (const std::string& spec_name : specs) {
    const broadcast::BroadcastProgram program =
        BuildProgram(ReadFileOrDie(fixtures / spec_name));
    ASSERT_FALSE(::testing::Test::HasFailure()) << spec_name;
    // The committed fixtures' horizons, known to clear each spec's
    // deadline tail.
    const std::uint64_t horizon =
        spec_name == "gslots.spec" ? 40000 : 20000;
    for (const std::string& channel_spec : channels) {
      auto channel = faults::ParseChannelSpec(channel_spec);
      ASSERT_TRUE(channel.ok()) << channel.status();
      const Simulator simulator(program, **channel, horizon);
      for (const std::uint64_t seed : seeds) {
        WorkloadConfig config;
        config.requests_per_file = 60;
        config.seed = seed;
        const std::string label =
            spec_name + " / " + channel_spec + " / seed=" +
            std::to_string(seed);
        AssertEnginesAgree(simulator, config, label);
      }
    }
  }
}

// Epoch hot-swap: both engines must agree across a mid-trace program swap,
// including retrievals that straddle the boundary. Same three files under
// two different layouts — the legal hot-swap pair of sim/epoch.h (geometry
// invariant, only the transmission schedule changes).
TEST(EngineEquivalenceGrid, EpochScheduleHotSwap) {
  auto before = broadcast::BuildFlatProgram(
      {{"a", 2, 4, {}}, {"b", 3, 5, {}}, {"c", 4, 6, {}}},
      broadcast::FlatLayout::kContiguous);
  ASSERT_TRUE(before.ok()) << before.status();
  auto after = broadcast::BuildFlatProgram(
      {{"a", 2, 4, {}}, {"b", 3, 5, {}}, {"c", 4, 6, {}}},
      broadcast::FlatLayout::kSpread);
  ASSERT_TRUE(after.ok()) << after.status();

  std::vector<ProgramEpoch> epochs;
  epochs.push_back(ProgramEpoch{0, *before});
  epochs.push_back(ProgramEpoch{4 * before->period(), *after});
  auto schedule = EpochSchedule::Create(std::move(epochs));
  ASSERT_TRUE(schedule.ok()) << schedule.status();

  auto channel = faults::ParseChannelSpec("gilbert:pgb=0.03,pbg=0.3,seed=13");
  ASSERT_TRUE(channel.ok()) << channel.status();

  const Simulator simulator(*schedule, **channel, 6000);
  WorkloadConfig config;
  config.requests_per_file = 80;
  config.seed = 99;
  AssertEnginesAgree(simulator, config, "epoch-hot-swap");
}

}  // namespace
}  // namespace bdisk::sim
