// The network-plane acceptance proof: a fixture scenario served over a
// *real UDP loopback socket* reproduces the committed in-process golden
// metrics. The test replays the smallmix_gilbert fixture's full workload —
// every (file, request) draw of the simulator, 450 sessions total — as
// wire sessions against a paced UdpBroadcastServer behind a FaultingSocket
// carrying the fixture's Gilbert-Elliott spec, then aggregates the wire
// results into the golden's per-file schema and compares.
//
// Tolerance contract (documented, not hand-waved):
//  * attempts / completed / incomplete / missed_deadline and the latency
//    count / sum / min / max are integers and must match the golden
//    EXACTLY — the channel trace is random-access-deterministic and the
//    fixture's Gilbert spec is pure erasure, so the wire walk is the same
//    walk the simulator did.
//  * latency mean is compared to 1e-9 (it is sum/count in doubles).
//  * errors_observed, stall and periods_to_recovery are NOT compared: a
//    wire client has no server-side ground truth (it cannot see blocks
//    that never arrived), so those fields are defined as 0 on the wire
//    path (udp_client.h documents this).
//
// Kernel receive-buffer overflow (scheduler jitter, not channel loss) is
// detected by comparing datagrams handed to the kernel against datagrams
// received, and the run retries; see net_test.cc for the same guard.

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "faults/channel_model.h"
#include "faults/channel_spec.h"
#include "net/faulting_socket.h"
#include "net/udp_client.h"
#include "net/udp_server.h"
#include "net/udp_socket.h"
#include "obs/json.h"
#include "runtime/rng_stream.h"
#include "scenario_util.h"
#include "sim/server.h"

namespace bdisk::net {
namespace {

namespace fs = std::filesystem;
namespace scenario_util = sim::scenario_util;

constexpr char kScenario[] = "smallmix_gilbert";

double Num(const obs::JsonValue& obj, const char* key) {
  const obs::JsonValue* v = obj.Find(key);
  EXPECT_TRUE(v != nullptr && v->is_number()) << "missing number: " << key;
  return v != nullptr && v->is_number() ? v->number : 0.0;
}

struct WireRun {
  std::vector<WireSessionResult> results;
  UdpClientStats client_stats;
  UdpServerStats server_stats;
  std::uint64_t deliberate_drops = 0;
};

Result<std::optional<WireRun>> RunWireOnce(
    sim::BroadcastServer* server, const faults::ChannelModel* channel,
    const std::vector<WireSession>& sessions,
    const UdpServerOptions& server_options) {
  UdpClientOptions client_options;
  client_options.block_size = server->block_size();
  client_options.idle_timeout_ms = 30000;
  BDISK_ASSIGN_OR_RETURN(UdpClient client, UdpClient::Create(client_options));
  for (const WireSession& s : sessions) client.AddSession(s);

  BDISK_ASSIGN_OR_RETURN(UdpSocket sender, UdpSocket::Open());
  Endpoint dest;
  dest.port = client.bound_port();
  SocketSink socket_sink(&sender, dest);
  FaultingSocket faulting(channel, &socket_sink);

  Result<UdpServerStats> server_stats =
      Status::Internal("server thread never ran");
  std::thread server_thread([&] {
    server_stats = ServeBroadcast(server, &faulting, server_options);
  });
  auto results = client.Run();
  server_thread.join();
  BDISK_RETURN_NOT_OK(results.status());
  BDISK_RETURN_NOT_OK(server_stats.status());

  WireRun run;
  run.results = std::move(*results);
  run.client_stats = client.stats();
  run.server_stats = *server_stats;
  run.deliberate_drops = faulting.dropped();
  if (run.client_stats.datagrams <
      socket_sink.sent() -
          static_cast<std::uint64_t>(server_options.end_repeats - 1)) {
    return std::optional<WireRun>();  // Kernel loss: retry.
  }
  return std::optional<WireRun>(std::move(run));
}

TEST(NetScenarioTest, SmallmixGilbertOverLoopbackMatchesGolden) {
  const fs::path fixtures(BDISK_FIXTURES_DIR);
  const scenario_util::Scenario scenario =
      scenario_util::ParseScenario(fixtures / (std::string(kScenario) +
                                               ".scenario"));
  ASSERT_EQ(scenario.Problem(), "");

  const scenario_util::BuiltProgram built =
      scenario_util::BuildProgramWithBlockSize(
          scenario_util::ReadFileOrDie(fixtures / scenario.spec_file));
  ASSERT_FALSE(::testing::Test::HasFailure());
  ASSERT_GT(built.block_size, 0u) << "fixture must be byte-domain";
  const broadcast::BroadcastProgram& program = built.program;

  auto channel = faults::ParseChannelSpec(scenario.channel);
  ASSERT_TRUE(channel.ok()) << channel.status();

  // Deterministic contents, same convention as the planner's store
  // materialization (contents do not affect the metrics — only the
  // reconstruct-vs-not walk does — but determinism keeps reruns honest).
  std::vector<std::vector<std::uint8_t>> contents;
  for (std::size_t f = 0; f < program.files().size(); ++f) {
    Rng rng(0x5702Eull + f);
    std::vector<std::uint8_t> bytes(program.files()[f].m * built.block_size);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.Uniform(256));
    contents.push_back(std::move(bytes));
  }
  auto server =
      sim::BroadcastServer::Create(program, contents, built.block_size);
  ASSERT_TRUE(server.ok()) << server.status();

  // Replicate the simulator's workload draws exactly (Simulator::
  // ValidateWorkload + RunWorkload): per-file deadline is the first
  // latency-class bound; start slots leave a tail of
  // max(deadline, 4 periods); request g = f * requests_per_file + k draws
  // its start from RNG stream g of the workload seed.
  const std::size_t file_count = program.files().size();
  std::vector<std::uint64_t> deadlines(file_count, 0);
  std::vector<std::uint64_t> start_ranges(file_count, 0);
  for (std::size_t f = 0; f < file_count; ++f) {
    const broadcast::ProgramFile& pf = program.files()[f];
    if (!pf.latency_slots.empty()) deadlines[f] = pf.latency_slots.front();
    const std::uint64_t tail = std::max<std::uint64_t>(
        deadlines[f], 4 * program.DataCycleLength());
    ASSERT_GT(scenario.horizon, tail);
    start_ranges[f] = scenario.horizon - tail;
  }
  std::vector<WireSession> sessions;
  for (std::size_t f = 0; f < file_count; ++f) {
    for (std::uint64_t k = 0; k < scenario.requests_per_file; ++k) {
      const std::uint64_t g = f * scenario.requests_per_file + k;
      Rng rng = runtime::StreamRng(scenario.workload_seed, g);
      WireSession s;
      s.file = static_cast<broadcast::FileIndex>(f);
      s.m = program.files()[f].m;
      s.n = program.files()[f].n;
      s.start_slot = rng.Uniform(start_ranges[f]);
      sessions.push_back(s);
    }
  }

  UdpServerOptions options;
  options.horizon = scenario.horizon;
  // Pace the broadcast so the single-threaded client keeps up without
  // kernel drops; the retry guard below catches the residual jitter.
  options.bandwidth_bytes_per_sec = 48 * 1024 * 1024;
  options.burst_bytes = 128 * 1024;

  std::optional<WireRun> run;
  for (int attempt = 0; attempt < 5 && !run.has_value(); ++attempt) {
    auto r = RunWireOnce(&*server, channel->get(), sessions, options);
    ASSERT_TRUE(r.ok()) << r.status();
    run = std::move(*r);
  }
  ASSERT_TRUE(run.has_value())
      << "loopback kept dropping datagrams in the kernel after 5 attempts";
  ASSERT_EQ(run->results.size(), sessions.size());
  EXPECT_GT(run->deliberate_drops, 0u)
      << "the Gilbert channel never fired; the scenario is vacuous";

  // Aggregate the wire sessions into the golden's per-file schema.
  struct FileAgg {
    std::uint64_t attempts = 0, completed = 0, incomplete = 0;
    std::uint64_t missed_deadline = 0;
    std::uint64_t latency_sum = 0, latency_min = ~0ull, latency_max = 0;
  };
  std::vector<FileAgg> agg(file_count);
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    const WireSession& spec = sessions[i];
    const sim::SessionResult& r = run->results[i].session;
    FileAgg& a = agg[spec.file];
    ++a.attempts;
    if (!r.completed) {
      ++a.incomplete;
      continue;
    }
    ++a.completed;
    a.latency_sum += r.latency;
    a.latency_min = std::min(a.latency_min, r.latency);
    a.latency_max = std::max(a.latency_max, r.latency);
    const std::uint64_t deadline = deadlines[spec.file];
    if (deadline > 0 && r.latency > deadline) ++a.missed_deadline;
    // Completed sessions must have reconstructed the broadcast bytes.
    ASSERT_EQ(r.data, contents[spec.file]) << "session " << i;
  }

  // Compare against the committed golden.
  auto golden = obs::ParseJson(scenario_util::ReadFileOrDie(
      fixtures / (std::string(kScenario) + ".golden.json")));
  ASSERT_TRUE(golden.ok()) << golden.status();
  const obs::JsonValue* files = golden->Find("files");
  ASSERT_TRUE(files != nullptr && files->is_array());
  ASSERT_EQ(files->array.size(), file_count);
  for (std::size_t f = 0; f < file_count; ++f) {
    const obs::JsonValue& gf = files->array[f];
    const FileAgg& a = agg[f];
    SCOPED_TRACE("file " + program.files()[f].name);
    EXPECT_EQ(a.attempts, static_cast<std::uint64_t>(Num(gf, "attempts")));
    EXPECT_EQ(a.completed, static_cast<std::uint64_t>(Num(gf, "completed")));
    EXPECT_EQ(a.incomplete,
              static_cast<std::uint64_t>(Num(gf, "incomplete")));
    EXPECT_EQ(a.missed_deadline,
              static_cast<std::uint64_t>(Num(gf, "missed_deadline")));
    const obs::JsonValue* latency = gf.Find("latency");
    ASSERT_TRUE(latency != nullptr && latency->is_object());
    EXPECT_EQ(a.completed,
              static_cast<std::uint64_t>(Num(*latency, "count")));
    EXPECT_EQ(a.latency_sum,
              static_cast<std::uint64_t>(Num(*latency, "sum")));
    EXPECT_EQ(a.latency_min, static_cast<std::uint64_t>(Num(*latency,
                                                            "min")));
    EXPECT_EQ(a.latency_max, static_cast<std::uint64_t>(Num(*latency,
                                                            "max")));
    if (a.completed > 0) {
      EXPECT_NEAR(static_cast<double>(a.latency_sum) /
                      static_cast<double>(a.completed),
                  Num(*latency, "mean"), 1e-9);
    }
  }
}

}  // namespace
}  // namespace bdisk::net
