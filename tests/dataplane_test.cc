// Byte-level data-plane tests: real IDA dispersal on the server, real
// GF(2^8) reconstruction on the client, through a faulty channel.

#include <gtest/gtest.h>

#include "bdisk/flat_builder.h"
#include "common/random.h"
#include "sim/client.h"
#include "sim/server.h"

namespace bdisk::sim {
namespace {

std::vector<std::uint8_t> RandomBytes(std::size_t size, Rng* rng) {
  std::vector<std::uint8_t> data(size);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng->Uniform(256));
  return data;
}

broadcast::BroadcastProgram ToyProgram() {
  std::vector<broadcast::FlatFileSpec> files{
      {"A", 5, 10, {}},
      {"B", 3, 6, {}},
  };
  auto p = broadcast::BuildFlatProgram(files, broadcast::FlatLayout::kSpread);
  EXPECT_TRUE(p.ok());
  return *p;
}

constexpr std::size_t kBlockSize = 64;

TEST(BroadcastServerTest, CreateValidatesContents) {
  const auto p = ToyProgram();
  // Wrong number of files.
  EXPECT_FALSE(BroadcastServer::Create(p, {{}}, kBlockSize).ok());
  // Wrong content size.
  std::vector<std::vector<std::uint8_t>> wrong{
      std::vector<std::uint8_t>(10, 0), std::vector<std::uint8_t>(10, 0)};
  EXPECT_FALSE(BroadcastServer::Create(p, wrong, kBlockSize).ok());
}

TEST(BroadcastServerTest, TransmissionsAreSelfIdentifying) {
  const auto p = ToyProgram();
  Rng rng(1);
  std::vector<std::vector<std::uint8_t>> contents{
      RandomBytes(5 * kBlockSize, &rng), RandomBytes(3 * kBlockSize, &rng)};
  auto server = BroadcastServer::Create(p, contents, kBlockSize);
  ASSERT_TRUE(server.ok()) << server.status();

  for (std::uint64_t t = 0; t < p.DataCycleLength(); ++t) {
    const auto block = server->TransmissionAt(t);
    ASSERT_TRUE(block.has_value());
    const auto tx = p.TransmissionAt(t);
    ASSERT_TRUE(tx.has_value());
    EXPECT_EQ(block->header.file_id, tx->file);
    EXPECT_EQ(block->header.block_index, tx->block_index);
    EXPECT_EQ(block->payload.size(), kBlockSize);
  }
}

TEST(DataPlaneTest, EndToEndNoFaults) {
  const auto p = ToyProgram();
  Rng rng(2);
  std::vector<std::vector<std::uint8_t>> contents{
      RandomBytes(5 * kBlockSize, &rng), RandomBytes(3 * kBlockSize, &rng)};
  auto server = BroadcastServer::Create(p, contents, kBlockSize);
  ASSERT_TRUE(server.ok());

  NoFaultModel faults;
  for (broadcast::FileIndex f = 0; f < 2; ++f) {
    auto session = RunRetrievalSession(*server, &faults, f, 0, 1000);
    ASSERT_TRUE(session.ok()) << session.status();
    ASSERT_TRUE(session->completed);
    EXPECT_EQ(session->data, contents[f]);
  }
}

TEST(DataPlaneTest, EndToEndWithBurstLoss) {
  const auto p = ToyProgram();
  Rng rng(3);
  std::vector<std::vector<std::uint8_t>> contents{
      RandomBytes(5 * kBlockSize, &rng), RandomBytes(3 * kBlockSize, &rng)};
  auto server = BroadcastServer::Create(p, contents, kBlockSize);
  ASSERT_TRUE(server.ok());

  GilbertElliottFaultModel::Params params;
  params.p_good_to_bad = 0.05;
  params.p_bad_to_good = 0.3;
  GilbertElliottFaultModel faults(params, 99);
  auto session = RunRetrievalSession(*server, &faults, 0, 0, 100000);
  ASSERT_TRUE(session.ok()) << session.status();
  ASSERT_TRUE(session->completed);
  EXPECT_EQ(session->data, contents[0]);
}

TEST(DataPlaneTest, LosingFirstPeriodStillReconstructsViaRotation) {
  // Figure 6's punchline: a client that misses every A block of the first
  // period reconstructs from A'6..A'10 in the second period.
  const auto p = ToyProgram();
  Rng rng(4);
  std::vector<std::vector<std::uint8_t>> contents{
      RandomBytes(5 * kBlockSize, &rng), RandomBytes(3 * kBlockSize, &rng)};
  auto server = BroadcastServer::Create(p, contents, kBlockSize);
  ASSERT_TRUE(server.ok());

  // Corrupt all of A's first-period transmissions.
  std::unordered_set<std::uint64_t> dead;
  for (std::uint64_t slot : p.OccurrencesOf(0)) dead.insert(slot);
  SlotSetFaultModel faults(std::move(dead));
  auto session = RunRetrievalSession(*server, &faults, 0, 0, 1000);
  ASSERT_TRUE(session.ok()) << session.status();
  ASSERT_TRUE(session->completed);
  EXPECT_EQ(session->data, contents[0]);
  // Completion must land in the second period.
  EXPECT_GE(session->completion_slot, p.period());
  EXPECT_LT(session->completion_slot, 2 * p.period());
}

TEST(ReconstructingClientTest, IgnoresForeignAndMalformedBlocks) {
  ReconstructingClient client(0, 2, 4, 8);
  ida::Block foreign;
  foreign.header = ida::BlockHeader{1, 0, 2, 4};
  foreign.payload.assign(8, 0);
  EXPECT_FALSE(client.Offer(foreign));
  EXPECT_EQ(client.distinct_blocks(), 0u);

  ida::Block malformed;
  malformed.header = ida::BlockHeader{0, 9, 2, 4};  // Index out of range.
  malformed.payload.assign(8, 0);
  EXPECT_FALSE(client.Offer(malformed));

  ida::Block stale;
  stale.header = ida::BlockHeader{0, 1, 3, 4};  // Wrong threshold.
  stale.payload.assign(8, 0);
  EXPECT_FALSE(client.Offer(stale));
  EXPECT_FALSE(client.CanReconstruct());
  EXPECT_TRUE(client.Reconstruct().status().IsDataLoss());
}

TEST(ReconstructingClientTest, ClearResets) {
  auto engine = ida::Dispersal::Create(2, 4, 8);
  ASSERT_TRUE(engine.ok());
  Rng rng(5);
  const auto file = RandomBytes(16, &rng);
  auto blocks = engine->Disperse(0, file);
  ASSERT_TRUE(blocks.ok());

  ReconstructingClient client(0, 2, 4, 8);
  EXPECT_FALSE(client.Offer((*blocks)[0]));
  EXPECT_TRUE(client.Offer((*blocks)[2]));
  ASSERT_TRUE(client.CanReconstruct());
  auto rec = client.Reconstruct();
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(*rec, file);

  client.Clear();
  EXPECT_EQ(client.distinct_blocks(), 0u);
  EXPECT_FALSE(client.CanReconstruct());
}

TEST(ReconstructingClientTest, DuplicateBlocksDoNotAdvance) {
  auto engine = ida::Dispersal::Create(2, 4, 8);
  ASSERT_TRUE(engine.ok());
  Rng rng(6);
  auto blocks = engine->Disperse(0, RandomBytes(16, &rng));
  ASSERT_TRUE(blocks.ok());
  ReconstructingClient client(0, 2, 4, 8);
  EXPECT_FALSE(client.Offer((*blocks)[1]));
  EXPECT_FALSE(client.Offer((*blocks)[1]));
  EXPECT_EQ(client.distinct_blocks(), 1u);
}

}  // namespace
}  // namespace bdisk::sim
