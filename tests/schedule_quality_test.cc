// Schedule-quality properties: beyond mere feasibility, the broadcast-disk
// layer depends on the chain schedulers producing *evenly spread* slots
// (small inter-service gaps drive Lemma 2's Delta). These tests pin that
// quality contract.

#include <gtest/gtest.h>

#include "common/random.h"
#include "pinwheel/chain_schedulers.h"
#include "pinwheel/composite_scheduler.h"
#include "pinwheel/verifier.h"

namespace bdisk::pinwheel {
namespace {

// For residue-class schedulers, each task's slots form unions of
// arithmetic progressions; the max gap never exceeds the task's window
// (service at least once per window is the defining property, and the
// spread encoding places the a slots evenly).
TEST(ScheduleQualityTest, ChainSchedulerGapsWithinWindows) {
  Rng rng(424242);
  SxScheduler sx;
  int produced = 0;
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<Task> tasks;
    const std::size_t n = 1 + rng.Uniform(4);
    double density = 0.0;
    for (TaskId i = 0; i < n; ++i) {
      const std::uint64_t b = 4 + rng.Uniform(40);
      const std::uint64_t a = 1 + rng.Uniform(3);
      if (a > b) continue;
      const double d = static_cast<double>(a) / static_cast<double>(b);
      if (density + d > 0.6) continue;
      density += d;
      tasks.push_back({i, a, b});
    }
    if (tasks.empty()) continue;
    auto inst = Instance::Create(tasks);
    ASSERT_TRUE(inst.ok());
    auto schedule = sx.BuildSchedule(*inst);
    if (!schedule.ok()) continue;
    ++produced;
    for (const Task& t : tasks) {
      auto gap = schedule->MaxGapOf(t.id);
      ASSERT_TRUE(gap.ok());
      // One service at least every floor(b/a) or b slots depending on the
      // encoding; b is the sound upper bound in both cases.
      EXPECT_LE(*gap, t.b) << t.ToString();
    }
  }
  EXPECT_GT(produced, 40);
}

// The spread encoding must beat the trivial bound for multi-slot tasks:
// a task (a, b) scheduled via a residue classes of period <= b has gaps
// around b/a, not b.
TEST(ScheduleQualityTest, MultiSlotTasksAreInterleaved) {
  SxScheduler sx;
  auto inst = Instance::Create({{1, 4, 16}, {2, 2, 32}});
  ASSERT_TRUE(inst.ok());
  auto schedule = sx.BuildSchedule(*inst);
  ASSERT_TRUE(schedule.ok()) << schedule.status();
  auto gap1 = schedule->MaxGapOf(1);
  ASSERT_TRUE(gap1.ok());
  EXPECT_LE(*gap1, 16u / 4 * 2);  // Spread: ~every 4 slots, not one burst.
}

// Utilization accounting: the schedule's busy fraction matches the sum of
// the realized encodings' densities (no phantom slots).
TEST(ScheduleQualityTest, UtilizationMatchesAllocatedDensity) {
  SaScheduler sa;
  auto inst = Instance::Create({{1, 1, 4}, {2, 1, 8}, {3, 1, 8}});
  ASSERT_TRUE(inst.ok());
  auto schedule = sa.BuildSchedule(*inst);
  ASSERT_TRUE(schedule.ok());
  // Power-of-two windows are preserved exactly: 1/4 + 1/8 + 1/8 = 0.5.
  EXPECT_DOUBLE_EQ(schedule->Utilization(), 0.5);
}

// The composite scheduler must prefer spread-friendly members: for the
// broadcast workloads it serves, the emitted schedule's per-task gap stays
// within the original window even when the greedy fallback would also
// succeed.
TEST(ScheduleQualityTest, CompositeKeepsGapContract) {
  CompositeScheduler composite;
  Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<Task> tasks;
    const std::size_t n = 2 + rng.Uniform(3);
    double density = 0.0;
    for (TaskId i = 0; i < n; ++i) {
      const std::uint64_t b = 6 + rng.Uniform(30);
      const double d = 1.0 / static_cast<double>(b);
      if (density + d > 0.8) break;
      density += d;
      tasks.push_back({i, 1, b});
    }
    if (tasks.size() < 2) continue;
    auto inst = Instance::Create(tasks);
    ASSERT_TRUE(inst.ok());
    auto schedule = composite.BuildSchedule(*inst);
    if (!schedule.ok()) continue;
    for (const Task& t : tasks) {
      auto gap = schedule->MaxGapOf(t.id);
      ASSERT_TRUE(gap.ok());
      EXPECT_LE(*gap, t.b) << t.ToString();
    }
  }
}

}  // namespace
}  // namespace bdisk::pinwheel
