// Fuzz-style cross-validation of the verifier's windowed counting against
// a naive brute-force reference, over random schedules and window sizes
// (including windows far beyond the period).

#include <gtest/gtest.h>

#include "common/random.h"
#include "pinwheel/schedule.h"
#include "pinwheel/verifier.h"

namespace bdisk::pinwheel {
namespace {

// Reference implementation: literally materialize the repeated schedule
// and slide the window.
std::uint64_t BruteMinWindowCount(const Schedule& s, TaskId id,
                                  std::uint64_t window) {
  const std::uint64_t period = s.period();
  std::uint64_t best = UINT64_MAX;
  for (std::uint64_t start = 0; start < period; ++start) {
    std::uint64_t count = 0;
    for (std::uint64_t k = 0; k < window; ++k) {
      if (s.At(start + k) == id) ++count;
    }
    best = std::min(best, count);
  }
  return best;
}

TEST(VerifierFuzzTest, MatchesBruteForceOnRandomSchedules) {
  Rng rng(314159);
  for (int trial = 0; trial < 120; ++trial) {
    const std::uint64_t period = 1 + rng.Uniform(24);
    const std::uint32_t n_tasks = 1 + static_cast<std::uint32_t>(rng.Uniform(4));
    std::vector<TaskId> cycle(period);
    for (auto& slot : cycle) {
      const std::uint64_t pick = rng.Uniform(n_tasks + 1);
      slot = pick == n_tasks ? Schedule::kIdle
                             : static_cast<TaskId>(pick);
    }
    auto schedule = Schedule::FromCycle(cycle);
    ASSERT_TRUE(schedule.ok());
    for (TaskId id = 0; id < n_tasks; ++id) {
      for (std::uint64_t window :
           {std::uint64_t{1}, std::uint64_t{2}, period, period + 1,
            2 * period, 2 * period + 3, 5 * period + 1}) {
        std::uint64_t worst = 0;
        const std::uint64_t fast =
            Verifier::MinWindowCount(*schedule, id, window, &worst);
        const std::uint64_t brute =
            BruteMinWindowCount(*schedule, id, window);
        ASSERT_EQ(fast, brute)
            << "trial " << trial << " period " << period << " task " << id
            << " window " << window << " schedule " << schedule->ToString();
        // The reported worst start must achieve the minimum.
        std::uint64_t at_worst = 0;
        for (std::uint64_t k = 0; k < window; ++k) {
          if (schedule->At(worst + k) == id) ++at_worst;
        }
        ASSERT_EQ(at_worst, fast);
      }
    }
  }
}

TEST(VerifierFuzzTest, MaxGapConsistentWithWindowCounts) {
  // pc(1, g) holds iff g >= MaxGapOf: cross-check on random schedules.
  Rng rng(2718);
  for (int trial = 0; trial < 80; ++trial) {
    const std::uint64_t period = 2 + rng.Uniform(20);
    std::vector<TaskId> cycle(period, Schedule::kIdle);
    // Ensure task 1 appears at least once.
    cycle[rng.Uniform(period)] = 1;
    for (auto& slot : cycle) {
      if (slot == Schedule::kIdle && rng.Bernoulli(0.4)) slot = 1;
    }
    auto schedule = Schedule::FromCycle(cycle);
    ASSERT_TRUE(schedule.ok());
    auto gap = schedule->MaxGapOf(1);
    ASSERT_TRUE(gap.ok());
    EXPECT_GE(Verifier::MinWindowCount(*schedule, 1, *gap), 1u);
    if (*gap > 1) {
      EXPECT_EQ(Verifier::MinWindowCount(*schedule, 1, *gap - 1), 0u);
    }
  }
}

}  // namespace
}  // namespace bdisk::pinwheel
