// Network-plane suite: wire datagram format, token-bucket arithmetic on a
// virtual clock, the channel-model-to-datagram fault mapping, and real
// UDP loopback round trips (port 0 binds, so parallel CI jobs never
// collide).
//
// The load-bearing claim: a retrieval served over a real socket is
// *byte-identical* to the in-process byte-level session with the same
// channel spec — same completion slot, same latency, same reconstructed
// bytes. Loss on the wire is the channel model's verdict applied to real
// datagrams (FaultingSocket), not a simulation of one.
//
// Loopback tests must distinguish deliberate (channel) loss from kernel
// loss (receive-buffer overflow under scheduler jitter). Each wire run
// compares datagrams-sent against datagrams-received and retries on
// mismatch; only a clean run's results are asserted on.

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "common/random.h"
#include "bdisk/flat_builder.h"
#include "faults/channel_model.h"
#include "faults/channel_spec.h"
#include "ida/block.h"
#include "net/faulting_socket.h"
#include "net/rate_limiter.h"
#include "net/udp_client.h"
#include "net/udp_server.h"
#include "net/udp_socket.h"
#include "net/wire.h"
#include "sim/client.h"
#include "sim/server.h"

namespace bdisk::net {
namespace {

std::vector<std::uint8_t> RandomBytes(std::size_t size, Rng* rng) {
  std::vector<std::uint8_t> data(size);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng->Uniform(256));
  return data;
}

// ---------------------------------------------------------------------------
// Wire format.

ida::Block MakeBlock(std::uint32_t file, std::uint32_t index,
                     std::size_t payload_bytes) {
  ida::Block b;
  b.header.file_id = file;
  b.header.block_index = index;
  b.header.reconstruct_threshold = 3;
  b.header.total_blocks = 5;
  b.header.version = 2;
  Rng rng(file * 100 + index);
  b.payload = RandomBytes(payload_bytes, &rng);
  ida::StampChecksum(&b);
  return b;
}

TEST(WireFormatTest, BlockDatagramRoundTripsBytePerfect) {
  const ida::Block block = MakeBlock(4, 2, 96);
  const auto datagram = EncodeBlockDatagram(/*slot=*/1234, /*epoch=*/7,
                                            block);
  EXPECT_EQ(datagram.size(), kWireHeaderBytes + 96);
  auto decoded = DecodeDatagram(datagram.data(), datagram.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->type, DatagramType::kBlock);
  EXPECT_EQ(decoded->slot, 1234u);
  EXPECT_EQ(decoded->epoch, 7u);
  EXPECT_EQ(decoded->block.header.file_id, block.header.file_id);
  EXPECT_EQ(decoded->block.header.block_index, block.header.block_index);
  EXPECT_EQ(decoded->block.header.reconstruct_threshold,
            block.header.reconstruct_threshold);
  EXPECT_EQ(decoded->block.header.total_blocks, block.header.total_blocks);
  EXPECT_EQ(decoded->block.header.version, block.header.version);
  EXPECT_EQ(decoded->block.header.checksum, block.header.checksum);
  EXPECT_EQ(decoded->block.payload, block.payload);
  // The checksum stamp survives the wire: the in-process integrity check
  // accepts the decoded block as-is.
  EXPECT_EQ(ida::VerifyChecksum(decoded->block), ida::ChecksumState::kValid);
}

TEST(WireFormatTest, ControlDatagramsAreHeaderOnly) {
  const auto idle = EncodeControlDatagram(DatagramType::kIdle, 9, 1);
  EXPECT_EQ(idle.size(), kWireHeaderBytes);
  auto decoded = DecodeDatagram(idle.data(), idle.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, DatagramType::kIdle);
  EXPECT_EQ(decoded->slot, 9u);

  const auto end = EncodeControlDatagram(DatagramType::kEnd, 20000, 3);
  auto end_decoded = DecodeDatagram(end.data(), end.size());
  ASSERT_TRUE(end_decoded.ok());
  EXPECT_EQ(end_decoded->type, DatagramType::kEnd);
  EXPECT_EQ(end_decoded->slot, 20000u);

  EXPECT_EQ(*PeekType(end.data(), end.size()), DatagramType::kEnd);
  EXPECT_EQ(*PeekSlot(end.data(), end.size()), 20000u);
}

TEST(WireFormatTest, RejectsForeignAndMangledDatagrams) {
  const ida::Block block = MakeBlock(1, 0, 32);
  auto datagram = EncodeBlockDatagram(5, 0, block);
  // Truncated header.
  EXPECT_FALSE(DecodeDatagram(datagram.data(), 10).ok());
  // Bad magic.
  auto bad_magic = datagram;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(DecodeDatagram(bad_magic.data(), bad_magic.size()).ok());
  EXPECT_FALSE(PeekType(bad_magic.data(), bad_magic.size()).ok());
  // Unknown type byte.
  auto bad_type = datagram;
  bad_type[4] = 9;
  EXPECT_FALSE(DecodeDatagram(bad_type.data(), bad_type.size()).ok());
  // A control datagram carrying a payload.
  auto idle = EncodeControlDatagram(DatagramType::kIdle, 1, 0);
  idle.push_back(0);
  EXPECT_FALSE(DecodeDatagram(idle.data(), idle.size()).ok());
  // Payload corruption is NOT the decoder's job: it decodes fine and the
  // block checksum catches it downstream.
  auto flipped = datagram;
  flipped[kWireHeaderBytes + 3] ^= 0x10;
  auto decoded = DecodeDatagram(flipped.data(), flipped.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(ida::VerifyChecksum(decoded->block), ida::ChecksumState::kMismatch);
}

// ---------------------------------------------------------------------------
// Endpoint parsing.

TEST(EndpointTest, ParsesHostPortAndDefaults) {
  auto full = ParseEndpoint("192.168.1.7:9000");
  ASSERT_TRUE(full.ok()) << full.status();
  EXPECT_EQ(full->host, "192.168.1.7");
  EXPECT_EQ(full->port, 9000);

  auto bare_port = ParseEndpoint("4501");
  ASSERT_TRUE(bare_port.ok());
  EXPECT_EQ(bare_port->host, "127.0.0.1");
  EXPECT_EQ(bare_port->port, 4501);

  auto colon_port = ParseEndpoint(":4501");
  ASSERT_TRUE(colon_port.ok());
  EXPECT_EQ(colon_port->host, "127.0.0.1");

  EXPECT_FALSE(ParseEndpoint("localhost:80").ok());  // No DNS.
  EXPECT_FALSE(ParseEndpoint("127.0.0.1:99999").ok());
  EXPECT_FALSE(ParseEndpoint("127.0.0.1:").ok());
  EXPECT_FALSE(ParseEndpoint("").ok());
}

// ---------------------------------------------------------------------------
// Token bucket on a virtual clock (no sleeping, exact arithmetic).

TEST(TokenBucketTest, StartsFullThenPacesAtRate) {
  // 1000 bytes/s, burst 100 bytes: 1 byte costs 1 ms of credit.
  TokenBucket bucket(1000, 100);
  const std::uint64_t t0 = 5'000'000'000ull;
  // The initial burst goes out immediately.
  EXPECT_EQ(bucket.ReserveAt(t0, 100), t0);
  // The bucket is empty: the next 50 bytes wait 50 ms to be earned.
  EXPECT_EQ(bucket.ReserveAt(t0, 50), t0 + 50'000'000ull);
  // And the 50 after that are granted 50 ms later again.
  EXPECT_EQ(bucket.ReserveAt(t0, 50), t0 + 100'000'000ull);
}

TEST(TokenBucketTest, CreditAccruesWhileIdleUpToBurst) {
  TokenBucket bucket(1000, 100);
  const std::uint64_t t0 = 1'000'000'000ull;
  EXPECT_EQ(bucket.ReserveAt(t0, 100), t0);  // Drain the initial burst.
  // 40 ms idle earns 40 bytes of credit.
  EXPECT_EQ(bucket.ReserveAt(t0 + 40'000'000ull, 40), t0 + 40'000'000ull);
  // A century idle earns only `burst` bytes, never more.
  const std::uint64_t much_later = t0 + 3'000'000'000'000'000ull;
  EXPECT_EQ(bucket.ReserveAt(much_later, 100), much_later);
  EXPECT_EQ(bucket.ReserveAt(much_later, 1), much_later + 1'000'000ull);
}

TEST(TokenBucketTest, GrantedBytesMatchRateOverAnyBusyWindow) {
  // Integer-exactness claim behind the ±5% CI gate: while the bucket
  // never sits full, granted traffic equals rate * elapsed exactly.
  TokenBucket bucket(123456, 4096);
  std::uint64_t now = 0;
  std::uint64_t sent = 0;
  for (int i = 0; i < 10000; ++i) {
    now = bucket.ReserveAt(now, 1000);
    sent += 1000;
  }
  // now == time to transmit (sent - burst) bytes at the rate, within one
  // datagram's rounding.
  const double expect_ns =
      static_cast<double>(sent - bucket.burst_bytes()) * 1e9 / 123456.0;
  EXPECT_NEAR(static_cast<double>(now), expect_ns, 1e9 * 1000.0 / 123456.0);
}

TEST(TokenBucketTest, ParentBudgetGovernsChildren) {
  // Two children, each alone allowed 1000 B/s, sharing a 1000 B/s parent:
  // together they cannot exceed the parent's budget.
  TokenBucket parent(1000, 100);
  TokenBucket a(1000, 100, &parent);
  TokenBucket b(1000, 100, &parent);
  const std::uint64_t t0 = 1'000'000'000ull;
  EXPECT_EQ(a.ReserveAt(t0, 100), t0);  // Parent burst covers this...
  // ...but b's own bucket is full while the parent's is drained: the
  // parent defers b even though b has local credit.
  EXPECT_EQ(b.ReserveAt(t0, 100), t0 + 100'000'000ull);
}

TEST(TokenBucketTest, DefaultBurstIsBounded) {
  TokenBucket small(1000);
  EXPECT_EQ(small.burst_bytes(), 64u * 1024u);  // Floor.
  TokenBucket big(64ull * 1024 * 1024);
  EXPECT_EQ(big.burst_bytes(), 64ull * 1024 * 1024 / 64);  // rate/64.
}

// ---------------------------------------------------------------------------
// FaultingSocket: channel verdicts applied to real datagram bytes.

/// Captures datagrams instead of sending them.
class CaptureSink : public WireSink {
 public:
  Status SendDatagram(const std::uint8_t* data, std::size_t size) override {
    datagrams.emplace_back(data, data + size);
    return Status::OK();
  }
  std::vector<std::vector<std::uint8_t>> datagrams;
};

TEST(FaultingSocketTest, AppliesChannelVerdictsBySlot) {
  auto channel = faults::ParseChannelSpec("gilbert:pgb=0.2,pbg=0.3,seed=5");
  ASSERT_TRUE(channel.ok()) << channel.status();

  CaptureSink capture;
  FaultingSocket faulting(channel->get(), &capture);

  constexpr std::uint64_t kSlots = 400;
  const ida::Block block = MakeBlock(0, 1, 48);
  std::uint64_t expect_forwarded = 0;
  for (std::uint64_t t = 0; t < kSlots; ++t) {
    const auto datagram = EncodeBlockDatagram(t, 0, block);
    ASSERT_TRUE(
        faulting.SendDatagram(datagram.data(), datagram.size()).ok());
    if ((*channel)->FaultAt(t) != faults::FaultType::kLost) {
      ++expect_forwarded;
    }
  }
  // Gilbert-Elliott default loss levels are lg=0, lb=1: pure erasure.
  EXPECT_EQ(faulting.forwarded(), expect_forwarded);
  EXPECT_EQ(faulting.dropped(), kSlots - expect_forwarded);
  EXPECT_EQ(faulting.corrupted(), 0u);
  EXPECT_EQ(capture.datagrams.size(), expect_forwarded);
  EXPECT_GT(faulting.dropped(), 0u) << "spec produced no losses; the test "
                                       "is vacuous — pick a lossier seed";
}

TEST(FaultingSocketTest, CorruptionMatchesInProcessBytes) {
  // A corrupting channel must damage the wire payload with the exact
  // bytes ChannelModel::CorruptBlock produces in-process.
  auto channel =
      faults::ParseChannelSpec("corrupt:p=0.5,seed=3");
  ASSERT_TRUE(channel.ok()) << channel.status();
  CaptureSink capture;
  FaultingSocket faulting(channel->get(), &capture);

  const ida::Block block = MakeBlock(2, 3, 64);
  bool saw_corrupted = false;
  for (std::uint64_t t = 0; t < 64; ++t) {
    const auto datagram = EncodeBlockDatagram(t, 0, block);
    ASSERT_TRUE(
        faulting.SendDatagram(datagram.data(), datagram.size()).ok());
    if ((*channel)->FaultAt(t) != faults::FaultType::kCorrupted) continue;
    saw_corrupted = true;
    ida::Block expect = block;
    (*channel)->CorruptBlock(t, &expect);
    auto wire = DecodeDatagram(capture.datagrams.back().data(),
                               capture.datagrams.back().size());
    ASSERT_TRUE(wire.ok());
    EXPECT_EQ(wire->block.payload, expect.payload);
    EXPECT_EQ(wire->block.header.checksum, expect.header.checksum);
    // And the in-process integrity check rejects it, as OfferEx would.
    EXPECT_NE(ida::VerifyChecksum(wire->block), ida::ChecksumState::kValid);
  }
  EXPECT_TRUE(saw_corrupted);
  EXPECT_GT(faulting.corrupted(), 0u);
  EXPECT_EQ(faulting.dropped(), 0u);  // corrupt: damages, never erases.
}

TEST(FaultingSocketTest, EndDatagramsBypassFaults) {
  // Every end-of-stream repeat carries slot = horizon; a single kLost
  // verdict on that slot must not erase the whole end marker.
  auto channel = faults::ParseChannelSpec("outage:start=0,len=1000000");
  ASSERT_TRUE(channel.ok()) << channel.status();
  ASSERT_EQ((*channel)->FaultAt(100), faults::FaultType::kLost);
  CaptureSink capture;
  FaultingSocket faulting(channel->get(), &capture);
  const auto end = EncodeControlDatagram(DatagramType::kEnd, 100, 0);
  ASSERT_TRUE(faulting.SendDatagram(end.data(), end.size()).ok());
  EXPECT_EQ(capture.datagrams.size(), 1u);
  // An idle beacon on a lost slot IS dropped (it occupies the channel).
  const auto idle = EncodeControlDatagram(DatagramType::kIdle, 100, 0);
  ASSERT_TRUE(faulting.SendDatagram(idle.data(), idle.size()).ok());
  EXPECT_EQ(capture.datagrams.size(), 1u);
  EXPECT_EQ(faulting.dropped(), 1u);
}

// ---------------------------------------------------------------------------
// Real UDP loopback.

broadcast::BroadcastProgram ToyProgram() {
  std::vector<broadcast::FlatFileSpec> files{
      {"A", 5, 10, {}},
      {"B", 3, 6, {}},
  };
  auto p = broadcast::BuildFlatProgram(files, broadcast::FlatLayout::kSpread);
  EXPECT_TRUE(p.ok());
  return *p;
}

constexpr std::size_t kBlockSize = 64;

struct WireRun {
  std::vector<WireSessionResult> results;
  UdpClientStats client_stats;
  UdpServerStats server_stats;
};

// One loopback broadcast pass. Returns nullopt when the kernel dropped
// datagrams (receive-buffer overflow — not channel loss): the caller
// retries, because kernel loss is scheduler noise, not semantics.
Result<std::optional<WireRun>> RunWireOnce(
    sim::BroadcastServer* server, const faults::ChannelModel* channel,
    const std::vector<WireSession>& sessions,
    const UdpServerOptions& server_options) {
  UdpClientOptions client_options;
  client_options.block_size = server->block_size();
  client_options.idle_timeout_ms = 10000;
  BDISK_ASSIGN_OR_RETURN(UdpClient client, UdpClient::Create(client_options));
  for (const WireSession& s : sessions) client.AddSession(s);

  BDISK_ASSIGN_OR_RETURN(UdpSocket sender, UdpSocket::Open());
  Endpoint dest;
  dest.port = client.bound_port();
  SocketSink socket_sink(&sender, dest);
  FaultingSocket faulting(channel, &socket_sink);
  WireSink* sink = channel != nullptr
                       ? static_cast<WireSink*>(&faulting)
                       : static_cast<WireSink*>(&socket_sink);

  Result<UdpServerStats> server_stats =
      Status::Internal("server thread never ran");
  std::thread server_thread([&] {
    server_stats = ServeBroadcast(server, sink, server_options);
  });
  auto results = client.Run();
  server_thread.join();
  BDISK_RETURN_NOT_OK(results.status());
  BDISK_RETURN_NOT_OK(server_stats.status());

  WireRun run;
  run.results = std::move(*results);
  run.client_stats = client.stats();
  run.server_stats = *server_stats;
  if (run.client_stats.datagrams <
      socket_sink.sent() - (server_options.end_repeats - 1)) {
    // Fewer arrived than were handed to the kernel (all end repeats
    // beyond the first may legitimately go unread: Run() returns at the
    // first one). Kernel loss — not deterministic, retry.
    return std::optional<WireRun>();
  }
  return std::optional<WireRun>(std::move(run));
}

Result<WireRun> RunWireWithRetry(sim::BroadcastServer* server,
                                 const faults::ChannelModel* channel,
                                 const std::vector<WireSession>& sessions,
                                 const UdpServerOptions& server_options) {
  for (int attempt = 0; attempt < 5; ++attempt) {
    BDISK_ASSIGN_OR_RETURN(
        std::optional<WireRun> run,
        RunWireOnce(server, channel, sessions, server_options));
    if (run.has_value()) return std::move(*run);
  }
  return Status::Internal(
      "loopback kept dropping datagrams in the kernel after 5 attempts");
}

TEST(UdpLoopbackTest, LosslessBroadcastReconstructsEveryFile) {
  const auto program = ToyProgram();
  Rng rng(42);
  std::vector<std::vector<std::uint8_t>> contents{
      RandomBytes(5 * kBlockSize, &rng), RandomBytes(3 * kBlockSize, &rng)};
  auto server = sim::BroadcastServer::Create(program, contents, kBlockSize);
  ASSERT_TRUE(server.ok()) << server.status();

  UdpServerOptions options;
  options.horizon = 64;
  std::vector<WireSession> sessions;
  for (broadcast::FileIndex f = 0; f < 2; ++f) {
    const auto& pf = program.files()[f];
    WireSession s;
    s.file = f;
    s.m = pf.m;
    s.n = pf.n;
    s.start_slot = 0;
    sessions.push_back(s);
  }
  auto run = RunWireWithRetry(&*server, nullptr, sessions, options);
  ASSERT_TRUE(run.ok()) << run.status();
  ASSERT_EQ(run->results.size(), 2u);
  for (broadcast::FileIndex f = 0; f < 2; ++f) {
    const auto& r = run->results[f];
    ASSERT_TRUE(r.session.completed) << "file " << f;
    EXPECT_EQ(r.session.data, contents[f]) << "file " << f;
    // The wire run must agree with the in-process session byte for byte.
    faults::LosslessChannel no_faults;
    auto reference = sim::RunRetrievalSession(
        *server, static_cast<const faults::ChannelModel&>(no_faults), f,
                                              /*start_slot=*/0,
                                              /*horizon=*/64);
    ASSERT_TRUE(reference.ok()) << reference.status();
    EXPECT_EQ(r.session.completion_slot, reference->completion_slot);
    EXPECT_EQ(r.session.latency, reference->latency);
    EXPECT_EQ(r.session.data, reference->data);
  }
  EXPECT_TRUE(run->client_stats.end_seen);
  EXPECT_FALSE(run->client_stats.timed_out);
}

TEST(UdpLoopbackTest, MidStreamTuneInUnderGilbertLossIsByteIdentical) {
  // The satellite claim: a client tuning in mid-stream under a
  // FaultingSocket Gilbert-Elliott drop spec reconstructs byte-identically
  // to the in-process run with the same channel seed.
  const auto program = ToyProgram();
  Rng rng(7);
  std::vector<std::vector<std::uint8_t>> contents{
      RandomBytes(5 * kBlockSize, &rng), RandomBytes(3 * kBlockSize, &rng)};
  auto server = sim::BroadcastServer::Create(program, contents, kBlockSize);
  ASSERT_TRUE(server.ok()) << server.status();

  auto channel = faults::ParseChannelSpec("gilbert:pgb=0.1,pbg=0.25,seed=11");
  ASSERT_TRUE(channel.ok()) << channel.status();

  UdpServerOptions options;
  options.horizon = 512;
  // Tune-ins scattered through the stream, including a mid-cycle join.
  const std::vector<std::uint64_t> starts{0, 17, 37, 200};
  std::vector<WireSession> sessions;
  for (const std::uint64_t start : starts) {
    for (broadcast::FileIndex f = 0; f < 2; ++f) {
      const auto& pf = program.files()[f];
      WireSession s;
      s.file = f;
      s.m = pf.m;
      s.n = pf.n;
      s.start_slot = start;
      sessions.push_back(s);
    }
  }
  auto run =
      RunWireWithRetry(&*server, channel->get(), sessions, options);
  ASSERT_TRUE(run.ok()) << run.status();
  ASSERT_EQ(run->results.size(), sessions.size());

  for (std::size_t i = 0; i < sessions.size(); ++i) {
    const auto& spec = sessions[i];
    const auto& wire = run->results[i];
    auto reference = sim::RunRetrievalSession(
        *server, **channel, spec.file, *spec.start_slot, options.horizon);
    ASSERT_TRUE(reference.ok()) << reference.status();
    ASSERT_EQ(wire.session.completed, reference->completed)
        << "session " << i;
    if (!reference->completed) continue;
    EXPECT_EQ(wire.session.completion_slot, reference->completion_slot)
        << "session " << i;
    EXPECT_EQ(wire.session.latency, reference->latency) << "session " << i;
    EXPECT_EQ(wire.session.epochs_spanned, reference->epochs_spanned);
    EXPECT_EQ(wire.session.data, reference->data) << "session " << i;
    EXPECT_EQ(wire.session.data, contents[spec.file]) << "session " << i;
  }
  // The channel actually bit: some datagrams were deliberately dropped.
  EXPECT_LT(run->client_stats.block_datagrams + run->client_stats.idle_datagrams,
            options.horizon);
}

}  // namespace
}  // namespace bdisk::net
