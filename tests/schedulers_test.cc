// Unit, property, and cross-validation tests for the pinwheel schedulers.

#include <gtest/gtest.h>

#include <memory>

#include "common/random.h"
#include "pinwheel/chain_schedulers.h"
#include "pinwheel/composite_scheduler.h"
#include "pinwheel/exact_scheduler.h"
#include "pinwheel/greedy_scheduler.h"
#include "pinwheel/verifier.h"

namespace bdisk::pinwheel {
namespace {

Instance MakeInstance(std::vector<Task> tasks) {
  auto inst = Instance::Create(std::move(tasks));
  EXPECT_TRUE(inst.ok());
  return *inst;
}

// All schedulers must handle the paper's Example 1 feasible systems.
class AllSchedulersTest
    : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<Scheduler> Make() const {
    const std::string name = GetParam();
    if (name == "Sa") return std::make_unique<SaScheduler>();
    if (name == "Sx") return std::make_unique<SxScheduler>();
    if (name == "Sxy") return std::make_unique<SxyScheduler>();
    if (name == "Greedy") return std::make_unique<GreedyScheduler>();
    if (name == "Exact") return std::make_unique<ExactScheduler>();
    return std::make_unique<CompositeScheduler>();
  }
};

TEST_P(AllSchedulersTest, Example1FirstSystem) {
  const Instance inst = MakeInstance({{1, 1, 2}, {2, 1, 3}});
  auto schedule = Make()->BuildSchedule(inst);
  ASSERT_TRUE(schedule.ok()) << schedule.status();
  EXPECT_TRUE(Verifier::Verify(*schedule, inst).ok());
}

TEST_P(AllSchedulersTest, Example1SecondSystem) {
  const Instance inst = MakeInstance({{1, 2, 5}, {2, 1, 3}});
  auto schedule = Make()->BuildSchedule(inst);
  ASSERT_TRUE(schedule.ok()) << schedule.status();
  EXPECT_TRUE(Verifier::Verify(*schedule, inst).ok());
}

TEST_P(AllSchedulersTest, SingleTask) {
  const Instance inst = MakeInstance({{1, 1, 7}});
  auto schedule = Make()->BuildSchedule(inst);
  ASSERT_TRUE(schedule.ok()) << schedule.status();
  EXPECT_TRUE(Verifier::Verify(*schedule, inst).ok());
}

TEST_P(AllSchedulersTest, EmptyInstanceRejected) {
  EXPECT_FALSE(Make()->BuildSchedule(Instance()).ok());
}

TEST_P(AllSchedulersTest, LowDensityManyTasks) {
  std::vector<Task> tasks;
  for (TaskId i = 0; i < 8; ++i) {
    tasks.push_back({i, 1, 64 + 7 * i});
  }
  const Instance inst = MakeInstance(std::move(tasks));
  ASSERT_LE(inst.density(), 0.5);
  auto schedule = Make()->BuildSchedule(inst);
  ASSERT_TRUE(schedule.ok()) << schedule.status();
  EXPECT_TRUE(Verifier::Verify(*schedule, inst).ok());
}

INSTANTIATE_TEST_SUITE_P(Portfolio, AllSchedulersTest,
                         ::testing::Values("Sa", "Sx", "Sxy", "Greedy",
                                           "Exact", "Composite"),
                         [](const auto& info) { return info.param; });

// Property: Sa succeeds on every random instance with density <= 1/2
// (its guarantee), and its output always verifies.
TEST(SaSchedulerTest, GuaranteeAtHalfDensity) {
  Rng rng(7);
  SaScheduler sa;
  for (int trial = 0; trial < 120; ++trial) {
    std::vector<Task> tasks;
    double density = 0.0;
    TaskId id = 0;
    while (tasks.size() < 6) {
      const std::uint64_t b = 2 + rng.Uniform(60);
      const std::uint64_t a = 1 + rng.Uniform(std::min<std::uint64_t>(b, 4));
      const double d = static_cast<double>(a) / static_cast<double>(b);
      if (density + d > 0.5) break;
      tasks.push_back({id++, a, b});
      density += d;
    }
    if (tasks.empty()) continue;
    const Instance inst = MakeInstance(std::move(tasks));
    auto schedule = sa.BuildSchedule(inst);
    ASSERT_TRUE(schedule.ok())
        << "density " << inst.density() << ": " << schedule.status();
  }
}

// Holte et al. [20]: every two-task single-unit system with density <= 1 is
// schedulable; Sx must match that (sweep all pairs up to 12).
TEST(SxSchedulerTest, TwoTaskCompleteness) {
  SxScheduler sx;
  for (std::uint64_t b1 = 2; b1 <= 12; ++b1) {
    for (std::uint64_t b2 = b1; b2 <= 12; ++b2) {
      if (1.0 / b1 + 1.0 / b2 > 1.0 + 1e-12) continue;
      const Instance inst = MakeInstance({{1, 1, b1}, {2, 1, b2}});
      auto schedule = sx.BuildSchedule(inst);
      EXPECT_TRUE(schedule.ok())
          << "(1," << b1 << "),(1," << b2 << "): " << schedule.status();
    }
  }
}

// Example 1 third system: {(1,2),(1,3),(1,n)} is infeasible for every n.
// The exact solver must prove it (single-unit => complete).
TEST(ExactSchedulerTest, ProvesExample1ThirdSystemInfeasible) {
  ExactScheduler exact;
  for (std::uint64_t n : {4ULL, 5ULL, 7ULL, 12ULL, 20ULL}) {
    const Instance inst = MakeInstance({{1, 1, 2}, {2, 1, 3}, {3, 1, n}});
    auto feasible = exact.IsFeasible(inst);
    ASSERT_TRUE(feasible.ok()) << feasible.status();
    EXPECT_FALSE(*feasible) << "n = " << n;
    EXPECT_TRUE(exact.BuildSchedule(inst).status().IsInfeasible());
  }
}

TEST(ExactSchedulerTest, DensityOneChainFeasible) {
  ExactScheduler exact;
  const Instance inst = MakeInstance({{1, 1, 2}, {2, 1, 4}, {3, 1, 4}});
  auto schedule = exact.BuildSchedule(inst);
  ASSERT_TRUE(schedule.ok()) << schedule.status();
  EXPECT_TRUE(Verifier::Verify(*schedule, inst).ok());
}

// Known tight instance: {(1,2),(1,3),(1,6)} has density exactly 1 and the
// unique-ish schedule 1,2,1,3,1,2 works... check solver finds something.
TEST(ExactSchedulerTest, TightDensityOneInstance) {
  ExactScheduler exact;
  const Instance inst = MakeInstance({{1, 1, 2}, {2, 1, 3}, {3, 1, 6}});
  // Density = 1/2 + 1/3 + 1/6 = 1. Feasibility: schedule 1,2,1,2,1,3 gives
  // task 2 gaps of 2 and 4 <= 3? No — this instance is actually infeasible
  // for gap reasons? The solver decides; we only assert consistency:
  // if a schedule is returned it must verify.
  auto schedule = exact.BuildSchedule(inst);
  if (schedule.ok()) {
    EXPECT_TRUE(Verifier::Verify(*schedule, inst).ok());
  } else {
    EXPECT_TRUE(schedule.status().IsInfeasible());
  }
}

// Cross-validation: on random small single-unit instances, whenever any
// heuristic schedules the instance, the exact solver must agree it is
// feasible; whenever the exact solver proves infeasibility, no heuristic
// may produce a schedule (it can't — schedules are verified — but check).
TEST(CrossValidationTest, HeuristicsNeverBeatExactInfeasibility) {
  Rng rng(21);
  ExactScheduler exact;
  SxyScheduler sxy;
  GreedyScheduler greedy;
  int feasible_count = 0;
  int infeasible_count = 0;
  for (int trial = 0; trial < 150; ++trial) {
    std::vector<Task> tasks;
    const std::size_t n = 2 + rng.Uniform(3);
    for (TaskId i = 0; i < n; ++i) {
      tasks.push_back({i, 1, 2 + rng.Uniform(9)});
    }
    const Instance inst = MakeInstance(std::move(tasks));
    auto feasible = exact.IsFeasible(inst);
    ASSERT_TRUE(feasible.ok());
    const bool sxy_ok = sxy.BuildSchedule(inst).ok();
    const bool greedy_ok = greedy.BuildSchedule(inst).ok();
    if (*feasible) {
      ++feasible_count;
    } else {
      ++infeasible_count;
      EXPECT_FALSE(sxy_ok) << inst.ToString();
      EXPECT_FALSE(greedy_ok) << inst.ToString();
    }
  }
  // The sweep must have exercised both outcomes.
  EXPECT_GT(feasible_count, 10);
  EXPECT_GT(infeasible_count, 10);
}

// Greedy harvests a cycle on a feasible dense instance (round-robin case,
// density exactly 1).
TEST(GreedySchedulerTest, RoundRobinDensityOne) {
  const Instance inst = MakeInstance({{1, 1, 3}, {2, 1, 3}, {3, 1, 3}});
  ASSERT_DOUBLE_EQ(inst.density(), 1.0);
  GreedyScheduler greedy;
  auto schedule = greedy.BuildSchedule(inst);
  ASSERT_TRUE(schedule.ok()) << schedule.status();
  EXPECT_TRUE(Verifier::Verify(*schedule, inst).ok());
}

// Greedy is a heuristic: there are feasible density-1 instances it misses
// (the buddy-structured {(1,2),(1,4),(1,8),(1,8)} needs offsets greedy's
// myopic policy does not discover). The composite portfolio still solves
// them via the chain schedulers.
TEST(GreedySchedulerTest, KnownMissIsCaughtByPortfolio) {
  const Instance inst = MakeInstance({{1, 1, 2}, {2, 1, 4}, {3, 1, 8},
                                      {4, 1, 8}});
  ASSERT_DOUBLE_EQ(inst.density(), 1.0);
  // Whatever greedy does, it must not return an invalid schedule.
  auto greedy_result = GreedyScheduler().BuildSchedule(inst);
  if (greedy_result.ok()) {
    EXPECT_TRUE(Verifier::Verify(*greedy_result, inst).ok());
  }
  auto composite_result = CompositeScheduler().BuildSchedule(inst);
  ASSERT_TRUE(composite_result.ok()) << composite_result.status();
  EXPECT_TRUE(Verifier::Verify(*composite_result, inst).ok());
}

TEST(GreedySchedulerTest, RejectsOverOne) {
  const Instance inst = MakeInstance({{1, 1, 2}, {2, 1, 2}, {3, 1, 2}});
  EXPECT_TRUE(GreedyScheduler().BuildSchedule(inst).status().IsInfeasible());
}

// Tasks with a > 1 must be spread: the chain schedulers' spread encoding
// gives a small max gap.
TEST(ChainSchedulersTest, SpreadEncodingBoundsGaps) {
  const Instance inst = MakeInstance({{1, 5, 20}, {2, 3, 30}});
  SxScheduler sx;
  auto schedule = sx.BuildSchedule(inst);
  ASSERT_TRUE(schedule.ok()) << schedule.status();
  EXPECT_TRUE(Verifier::Verify(*schedule, inst).ok());
  auto gap1 = schedule->MaxGapOf(1);
  ASSERT_TRUE(gap1.ok());
  // 5 slots per 20 => evenly spread service at most every 8 slots (the
  // specialized period), far below the naive bound of 16.
  EXPECT_LE(*gap1, 8u);
}

// The composite scheduler must succeed whenever any member does.
TEST(CompositeSchedulerTest, FallsThroughToExact) {
  // Density 5/6 + eps instances of three tasks defeat the chain
  // specializers sometimes; composite must still find schedules for
  // instances the exact search can crack.
  const Instance inst = MakeInstance({{1, 1, 2}, {2, 1, 3}, {3, 1, 7}});
  // Density = 1/2 + 1/3 + 1/7 = 0.976; feasible? 1,2,1,3,1,2 with 7-window
  // coverage of task 3... let the solver decide, and require consistency
  // with the exact solver's verdict.
  ExactScheduler exact;
  auto feasible = exact.IsFeasible(inst);
  ASSERT_TRUE(feasible.ok());
  CompositeScheduler composite;
  auto schedule = composite.BuildSchedule(inst);
  EXPECT_EQ(schedule.ok(), *feasible) << schedule.status();
}

TEST(CompositeSchedulerTest, ReportsAllFailures) {
  const Instance inst = MakeInstance({{1, 1, 2}, {2, 1, 3}, {3, 1, 30}});
  CompositeScheduler composite;
  auto schedule = composite.BuildSchedule(inst);
  ASSERT_FALSE(schedule.ok());
  EXPECT_TRUE(schedule.status().IsInfeasible());
  // Failure message names the members.
  EXPECT_NE(schedule.status().message().find("Sxy"), std::string::npos);
}

// Property: every schedule any scheduler returns verifies against the
// original instance (the library-wide invariant), including a > 1.
TEST(PropertyTest, AllReturnedSchedulesVerify) {
  Rng rng(31);
  SxyScheduler sxy;
  SxScheduler sx;
  SaScheduler sa;
  GreedyScheduler greedy;
  const std::vector<Scheduler*> schedulers{&sxy, &sx, &sa, &greedy};
  int produced = 0;
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<Task> tasks;
    const std::size_t n = 1 + rng.Uniform(5);
    for (TaskId i = 0; i < n; ++i) {
      const std::uint64_t b = 2 + rng.Uniform(40);
      const std::uint64_t a =
          1 + rng.Uniform(std::max<std::uint64_t>(1, b / 4));
      tasks.push_back({i, a, b});
    }
    const Instance inst = MakeInstance(std::move(tasks));
    for (Scheduler* s : schedulers) {
      auto schedule = s->BuildSchedule(inst);
      if (schedule.ok()) {
        ++produced;
        ASSERT_TRUE(Verifier::Verify(*schedule, inst).ok())
            << s->name() << " on " << inst.ToString();
      } else {
        ASSERT_FALSE(schedule.status().IsInternal())
            << s->name() << " on " << inst.ToString() << ": "
            << schedule.status();
      }
    }
  }
  EXPECT_GT(produced, 50);
}

}  // namespace
}  // namespace bdisk::pinwheel
