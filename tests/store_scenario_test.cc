// Disk-backed scenario replay: every committed scenario fixture is built
// into a persistent BlockStore on a real file device, and the disk-backed
// broadcast server must transmit BYTE-IDENTICAL blocks to the in-memory
// server at every slot of the horizon. The store is then closed and
// reopened (the recovery path — the same code that runs after a crash)
// and every cataloged block must still read back bit-exact, with every
// file reconstructing to its original contents from m disk-read blocks.
// Finally the index-level metric replay is held to the committed golden,
// pinning the whole disk-backed pipeline to the same bytes as the
// in-memory one.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/random.h"
#include "faults/channel_spec.h"
#include "ida/aida.h"
#include "scenario_util.h"
#include "sim/metrics.h"
#include "sim/server.h"
#include "sim/simulation.h"
#include "store/block_device.h"
#include "store/block_store.h"

#ifndef BDISK_FIXTURES_DIR
#error "BDISK_FIXTURES_DIR must be defined by the build (CMakeLists.txt)"
#endif

namespace bdisk::sim {
namespace {

namespace fs = std::filesystem;
using scenario_util::BuildProgram;
using scenario_util::DiscoverScenarioNames;
using scenario_util::ParseScenario;
using scenario_util::ReadFileOrDie;
using scenario_util::Scenario;

constexpr std::size_t kPayloadBytes = 64;   // Coded-block payload size.
constexpr std::size_t kDeviceBlock = 256;   // Device sector size.

// Deterministic per-file contents, exactly m * kPayloadBytes bytes.
std::vector<std::vector<std::uint8_t>> SynthesizeContents(
    const broadcast::BroadcastProgram& program) {
  std::vector<std::vector<std::uint8_t>> contents(program.file_count());
  for (broadcast::FileIndex f = 0; f < program.file_count(); ++f) {
    Rng rng(0xD15C0000ull + f);
    contents[f].resize(program.files()[f].m * kPayloadBytes);
    for (auto& b : contents[f]) {
      b = static_cast<std::uint8_t>(rng.Uniform(256));
    }
  }
  return contents;
}

// Device sized from the program with headroom for catalog + slack.
std::uint64_t DeviceBlocksFor(const broadcast::BroadcastProgram& program) {
  std::uint64_t blocks = store::BlockStore::kFirstDataBlock;
  std::uint64_t catalog_bytes = 8;
  for (broadcast::FileIndex f = 0; f < program.file_count(); ++f) {
    const auto& pf = program.files()[f];
    blocks += pf.n * ((kPayloadBytes + kDeviceBlock - 1) / kDeviceBlock);
    catalog_bytes += 28 + pf.n * 12;
  }
  // Two catalog extents can coexist transiently across a commit.
  blocks += 2 * ((catalog_bytes + kDeviceBlock - 1) / kDeviceBlock) + 16;
  return blocks;
}

class StoreScenarioTest : public ::testing::TestWithParam<std::string> {};

TEST_P(StoreScenarioTest, DiskBackedReplayIsByteIdentical) {
  const fs::path fixtures(BDISK_FIXTURES_DIR);
  const Scenario scenario =
      ParseScenario(fixtures / (GetParam() + ".scenario"));
  ASSERT_EQ(scenario.Problem(), "") << GetParam();
  ASSERT_FALSE(::testing::Test::HasFailure());

  const broadcast::BroadcastProgram program =
      BuildProgram(ReadFileOrDie(fixtures / scenario.spec_file));
  ASSERT_FALSE(::testing::Test::HasFailure());
  const auto contents = SynthesizeContents(program);

  // The reference: the established in-memory data plane.
  auto memory =
      BroadcastServer::Create(program, contents, kPayloadBytes);
  ASSERT_TRUE(memory.ok()) << memory.status();

  const std::string path =
      ::testing::TempDir() + "/bdisk_store_scenario_" + GetParam() + ".dev";
  std::remove(path.c_str());

  // Build the same program disk-backed.
  {
    auto device = store::FileBlockDevice::Create(path, kDeviceBlock,
                                                 DeviceBlocksFor(program));
    ASSERT_TRUE(device.ok()) << device.status();
    auto built = store::BlockStore::Format(std::move(*device));
    ASSERT_TRUE(built.ok()) << built.status();
    auto disk = BroadcastServer::CreateDiskBacked(
        EpochSchedule::Single(program), contents, kPayloadBytes,
        built->get());
    ASSERT_TRUE(disk.ok()) << disk.status();
    ASSERT_TRUE(disk->disk_backed());

    // Slot-for-slot byte identity over the whole horizon, idle slots
    // included.
    for (std::uint64_t t = 0; t < scenario.horizon; ++t) {
      const auto from_disk = disk->FetchTransmission(t);
      ASSERT_TRUE(from_disk.ok()) << "slot " << t << ": "
                                  << from_disk.status();
      const auto from_memory = memory->TransmissionAt(t);
      ASSERT_EQ(from_disk->has_value(), from_memory.has_value())
          << "slot " << t;
      if (from_memory.has_value()) {
        ASSERT_EQ(**from_disk, *from_memory)
            << "slot " << t << ": disk and memory transmissions differ";
      }
    }
  }  // Store and device close here.

  // Reopen through recovery and demand every block back, bit-exact, and
  // every file reconstructable to its original bytes from m blocks.
  {
    auto device = store::FileBlockDevice::Open(path, kDeviceBlock);
    ASSERT_TRUE(device.ok()) << device.status();
    auto reopened = store::BlockStore::Open(std::move(*device));
    ASSERT_TRUE(reopened.ok()) << reopened.status();
    ASSERT_EQ((*reopened)->catalog().size(), program.file_count());
    for (broadcast::FileIndex f = 0; f < program.file_count(); ++f) {
      const auto& pf = program.files()[f];
      std::vector<ida::Block> first_m;
      for (std::uint32_t k = 0; k < pf.n; ++k) {
        auto block = (*reopened)->ReadCodedBlock(f, 0, k);
        ASSERT_TRUE(block.ok()) << block.status();
        ASSERT_EQ(ida::VerifyChecksum(*block), ida::ChecksumState::kValid);
        if (first_m.size() < pf.m) first_m.push_back(std::move(*block));
      }
      auto engine = ida::Dispersal::Create(pf.m, pf.n, kPayloadBytes);
      ASSERT_TRUE(engine.ok()) << engine.status();
      auto data = engine->Reconstruct(first_m);
      ASSERT_TRUE(data.ok()) << data.status();
      EXPECT_EQ(*data, contents[f]) << "file " << f;
    }
  }
  std::remove(path.c_str());

  // The index-level metric replay stays pinned to the committed golden:
  // the disk-backed pipeline changed nothing observable.
  auto channel = faults::ParseChannelSpec(scenario.channel);
  ASSERT_TRUE(channel.ok()) << channel.status();
  const Simulator simulator(program, **channel, scenario.horizon);
  WorkloadConfig config;
  config.requests_per_file = scenario.requests_per_file;
  config.seed = scenario.workload_seed;
  auto metrics = simulator.RunWorkload(config, nullptr);
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  const fs::path golden_path = fixtures / (scenario.name + ".golden.json");
  ASSERT_TRUE(fs::exists(golden_path)) << golden_path;
  EXPECT_EQ(MetricsToJson(*metrics), ReadFileOrDie(golden_path))
      << scenario.name << ": replay diverged from the committed golden";
}

INSTANTIATE_TEST_SUITE_P(
    Fixtures, StoreScenarioTest,
    ::testing::ValuesIn(DiscoverScenarioNames(BDISK_FIXTURES_DIR)),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return scenario_util::ParamName(info.param);
    });

}  // namespace
}  // namespace bdisk::sim
