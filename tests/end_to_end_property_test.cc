// Randomized end-to-end property test: random generalized broadcast-file
// systems -> algebra conversion -> scheduling -> merged-schedule
// verification of every original bc level. This is the library's central
// soundness claim exercised on inputs no human picked.

#include <gtest/gtest.h>

#include "algebra/optimizer.h"
#include "bdisk/delay_analysis.h"
#include "bdisk/pinwheel_builder.h"
#include "common/random.h"
#include "pinwheel/composite_scheduler.h"
#include "pinwheel/verifier.h"

namespace bdisk {
namespace {

using algebra::BroadcastCondition;

// Random valid broadcast condition with bounded density contribution.
BroadcastCondition RandomCondition(Rng* rng, double max_density) {
  const std::uint64_t m = 1 + rng->Uniform(6);
  const std::uint64_t r = rng->Uniform(3);
  // Base window sized so (m + r) / d0 stays under max_density.
  const auto min_d0 = static_cast<std::uint64_t>(
      static_cast<double>(m + r) / max_density) + 1;
  const std::uint64_t d0 = min_d0 + rng->Uniform(40);
  BroadcastCondition bc;
  bc.m = m;
  bc.d.push_back(d0);
  std::uint64_t prev = d0;
  for (std::uint64_t j = 1; j <= r; ++j) {
    prev += rng->Uniform(8);
    bc.d.push_back(std::max(prev, m + j));
    prev = bc.d.back();
  }
  return bc;
}

TEST(EndToEndPropertyTest, RandomSystemsScheduleAndSatisfyEveryLevel) {
  Rng rng(13579);
  pinwheel::CompositeScheduler scheduler;
  int built = 0;
  for (int trial = 0; trial < 40; ++trial) {
    // 2-4 files, each consuming at most ~0.2 density: systems stay well
    // inside the schedulable regime.
    const std::size_t n_files = 2 + rng.Uniform(3);
    std::vector<BroadcastCondition> conditions;
    for (std::size_t i = 0; i < n_files; ++i) {
      conditions.push_back(RandomCondition(&rng, 0.2));
    }
    for (const auto& bc : conditions) {
      ASSERT_TRUE(bc.Validate().ok()) << bc.ToString();
    }

    auto system = algebra::ConvertSystem(conditions);
    ASSERT_TRUE(system.ok()) << system.status();
    // Conversion bookkeeping invariants.
    ASSERT_EQ(system->conversions.size(), n_files);
    for (const auto& conv : system->conversions) {
      EXPECT_GE(conv.best().density(), conv.density_lower_bound - 1e-9);
    }

    auto schedule = scheduler.BuildSchedule(system->instance);
    if (!schedule.ok()) {
      // Allowed (heuristic portfolio), but should be rare at this density.
      continue;
    }
    ++built;

    // Merge virtual tasks back to files; every bc level must hold exactly.
    std::vector<pinwheel::TaskId> merged(schedule->period());
    for (std::uint64_t t = 0; t < schedule->period(); ++t) {
      const pinwheel::TaskId v = schedule->slots()[t];
      merged[t] = v == pinwheel::Schedule::kIdle
                      ? pinwheel::Schedule::kIdle
                      : system->virtual_to_file[v];
    }
    auto merged_schedule = pinwheel::Schedule::FromCycle(std::move(merged));
    ASSERT_TRUE(merged_schedule.ok());
    for (std::size_t f = 0; f < conditions.size(); ++f) {
      for (std::size_t j = 0; j < conditions[f].d.size(); ++j) {
        ASSERT_GE(pinwheel::Verifier::MinWindowCount(
                      *merged_schedule, static_cast<pinwheel::TaskId>(f),
                      conditions[f].d[j]),
                  conditions[f].m + j)
            << "trial " << trial << " file " << conditions[f].ToString()
            << " level " << j;
      }
    }
  }
  EXPECT_GE(built, 35) << "portfolio failed too often at low density";
}

TEST(EndToEndPropertyTest, BuilderLatencyPromisesHoldOnRandomSystems) {
  Rng rng(86420);
  pinwheel::CompositeScheduler scheduler;
  int built = 0;
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t n_files = 2 + rng.Uniform(2);
    std::vector<broadcast::GeneralizedFileSpec> files;
    for (std::size_t i = 0; i < n_files; ++i) {
      const BroadcastCondition bc = RandomCondition(&rng, 0.25);
      files.push_back(broadcast::GeneralizedFileSpec{
          "f" + std::to_string(i), bc.m, bc.d});
    }
    auto result = broadcast::BuildGeneralizedProgram(files, scheduler);
    if (!result.ok()) continue;
    ++built;
    // The program's own exhaustive verification is the contract.
    ASSERT_TRUE(result->program.VerifyBroadcastConditions().ok());
    // The analytic worst-case latency respects every level.
    broadcast::DelayAnalyzer analyzer(result->program);
    for (broadcast::FileIndex f = 0; f < result->program.file_count(); ++f) {
      const auto& pf = result->program.files()[f];
      for (std::size_t j = 0; j < pf.latency_slots.size(); ++j) {
        auto latency = analyzer.WorstCaseLatency(
            f, static_cast<std::uint32_t>(j), broadcast::ClientModel::kIda);
        ASSERT_TRUE(latency.ok()) << latency.status();
        ASSERT_LE(*latency, pf.latency_slots[j])
            << "trial " << trial << " file " << pf.name << " level " << j;
      }
    }
  }
  EXPECT_GE(built, 12);
}

}  // namespace
}  // namespace bdisk
