// Tests for (1, m) index broadcasting.

#include "bdisk/indexing.h"

#include <gtest/gtest.h>

#include "bdisk/flat_builder.h"

namespace bdisk::broadcast {
namespace {

BroadcastProgram BaseProgram() {
  std::vector<FlatFileSpec> files{
      {"A", 4, 8, {}},
      {"B", 2, 4, {}},
      {"C", 6, 6, {}},
  };
  auto p = BuildFlatProgram(files, FlatLayout::kSpread);
  EXPECT_TRUE(p.ok());
  return *p;
}

TEST(IndexingTest, Validation) {
  const BroadcastProgram base = BaseProgram();
  EXPECT_FALSE(BuildIndexedProgram(base, {0, 1}).ok());
  EXPECT_FALSE(BuildIndexedProgram(base, {1, 0}).ok());
  EXPECT_FALSE(BuildIndexedProgram(base, {1000, 1}).ok());
}

TEST(IndexingTest, StructureOfIndexedProgram) {
  const BroadcastProgram base = BaseProgram();
  IndexingOptions options;
  options.replication = 3;
  options.index_slots = 2;
  auto indexed = BuildIndexedProgram(base, options);
  ASSERT_TRUE(indexed.ok()) << indexed.status();

  const BroadcastProgram& p = indexed->program;
  EXPECT_EQ(p.file_count(), base.file_count() + 1);
  EXPECT_EQ(p.period(), base.period() + 3 * 2);
  EXPECT_EQ(p.CountOf(indexed->index_file), 3u * 2u);
  // Base files keep their per-period counts.
  for (FileIndex f = 0; f < base.file_count(); ++f) {
    EXPECT_EQ(p.CountOf(f), base.CountOf(f));
  }
  // Every index segment is a contiguous run starting with block 0.
  std::uint64_t starts = 0;
  for (std::uint64_t t = 0; t < p.period(); ++t) {
    const auto tx = p.TransmissionAt(t);
    if (tx.has_value() && tx->file == indexed->index_file &&
        tx->block_index == 0) {
      ++starts;
      const auto next = p.TransmissionAt(t + 1);
      ASSERT_TRUE(next.has_value());
      EXPECT_EQ(next->file, indexed->index_file);
      EXPECT_EQ(next->block_index, 1u);
    }
  }
  EXPECT_EQ(starts, 3u);
}

TEST(IndexingTest, IndexedAccessCollectsTarget) {
  const BroadcastProgram base = BaseProgram();
  auto indexed = BuildIndexedProgram(base, {2, 1});
  ASSERT_TRUE(indexed.ok());
  for (FileIndex target = 0; target < base.file_count(); ++target) {
    for (std::uint64_t start = 0; start < indexed->program.period();
         ++start) {
      auto cost = IndexedAccess(*indexed, target, start);
      ASSERT_TRUE(cost.ok()) << cost.status();
      EXPECT_GT(cost->latency, 0u);
      // Tuning = probe + index + exactly the listened target slots
      // (m..n of them).
      const ProgramFile& pf = indexed->program.files()[target];
      EXPECT_GE(cost->tuning_time, 1 + indexed->options.index_slots + pf.m);
      EXPECT_LE(cost->tuning_time, 1 + indexed->options.index_slots + pf.n);
      EXPECT_LE(cost->tuning_time, cost->latency);
    }
  }
}

TEST(IndexingTest, TargetingIndexFileRejected) {
  const BroadcastProgram base = BaseProgram();
  auto indexed = BuildIndexedProgram(base, {1, 1});
  ASSERT_TRUE(indexed.ok());
  EXPECT_FALSE(IndexedAccess(*indexed, indexed->index_file, 0).ok());
}

TEST(IndexingTest, NonIndexedTuningEqualsLatency) {
  const BroadcastProgram base = BaseProgram();
  for (std::uint64_t start = 0; start < base.period(); ++start) {
    auto cost = NonIndexedAccess(base, 0, start);
    ASSERT_TRUE(cost.ok());
    EXPECT_EQ(cost->tuning_time, cost->latency);
  }
}

TEST(IndexingTest, IndexSlashesTuningTime) {
  const BroadcastProgram base = BaseProgram();
  auto indexed = BuildIndexedProgram(base, {2, 1});
  ASSERT_TRUE(indexed.ok());
  auto plain = MeanNonIndexedAccess(base, 0);
  auto smart = MeanIndexedAccess(*indexed, 0);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(smart.ok());
  // Tuning collapses to roughly probe + index + m target slots (the toy
  // program is small, so the relative saving is modest; bench_indexing
  // shows the > 4x savings on realistic sizes).
  EXPECT_LT(smart->tuning_time, plain.value().tuning_time * 0.75);
  EXPECT_LE(smart->tuning_time,
            1.0 + static_cast<double>(indexed->options.index_slots) +
                static_cast<double>(indexed->program.files()[0].n));
  // Latency pays only the index-slot overhead factor.
  EXPECT_LT(smart->latency,
            plain.value().latency *
                (1.5 + static_cast<double>(indexed->options.index_slots)));
}

TEST(IndexingTest, MoreReplicationShortensIndexWait) {
  const BroadcastProgram base = BaseProgram();
  // Mean latency-to-completion includes waiting for the index; with more
  // copies the wait shrinks, though the period grows. Tuning time stays
  // flat. Compare the extremes.
  auto sparse = BuildIndexedProgram(base, {1, 2});
  auto dense = BuildIndexedProgram(base, {6, 2});
  ASSERT_TRUE(sparse.ok());
  ASSERT_TRUE(dense.ok());
  auto sparse_cost = MeanIndexedAccess(*sparse, 1);
  auto dense_cost = MeanIndexedAccess(*dense, 1);
  ASSERT_TRUE(sparse_cost.ok());
  ASSERT_TRUE(dense_cost.ok());
  // Tuning time barely changes (within one slot on average).
  EXPECT_NEAR(sparse_cost->tuning_time, dense_cost->tuning_time, 1.5);
}

}  // namespace
}  // namespace bdisk::broadcast
