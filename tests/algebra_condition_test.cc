// Unit tests for pinwheel/broadcast conditions and the guaranteed-count
// bounds.

#include "algebra/condition.h"

#include <gtest/gtest.h>

#include "pinwheel/schedule.h"
#include "pinwheel/verifier.h"

namespace bdisk::algebra {
namespace {

TEST(PinwheelConditionTest, DensityAndToString) {
  PinwheelCondition c{2, 5};
  EXPECT_DOUBLE_EQ(c.density(), 0.4);
  EXPECT_EQ(c.ToString(), "pc(2, 5)");
}

TEST(BroadcastConditionTest, ValidateHappyPath) {
  BroadcastCondition bc{2, {5, 6, 7}};
  EXPECT_TRUE(bc.Validate().ok());
  EXPECT_EQ(bc.fault_tolerance(), 2u);
}

TEST(BroadcastConditionTest, ValidateRejectsZeroSize) {
  BroadcastCondition bc{0, {5}};
  EXPECT_TRUE(bc.Validate().IsInvalidArgument());
}

TEST(BroadcastConditionTest, ValidateRejectsEmptyVector) {
  BroadcastCondition bc{2, {}};
  EXPECT_TRUE(bc.Validate().IsInvalidArgument());
}

TEST(BroadcastConditionTest, ValidateRejectsTightLatency) {
  // d^(1) = 2 cannot hold m + 1 = 3 blocks.
  BroadcastCondition bc{2, {5, 2}};
  EXPECT_TRUE(bc.Validate().IsInvalidArgument());
}

TEST(BroadcastConditionTest, ToPinwheelConjunctIsEq3) {
  BroadcastCondition bc{2, {5, 6, 6}};
  const auto conjunct = bc.ToPinwheelConjunct();
  ASSERT_EQ(conjunct.size(), 3u);
  EXPECT_EQ(conjunct[0], (PinwheelCondition{2, 5}));
  EXPECT_EQ(conjunct[1], (PinwheelCondition{3, 6}));
  EXPECT_EQ(conjunct[2], (PinwheelCondition{4, 6}));
}

TEST(BroadcastConditionTest, DensityLowerBound) {
  // Example 2: bc(5, [100, 105, 110, 115, 120]) -> max = 9/120 = 0.075.
  BroadcastCondition bc{5, {100, 105, 110, 115, 120}};
  EXPECT_NEAR(bc.DensityLowerBound(), 0.075, 1e-12);
  // Example 3: bc(6, [105, 110]) -> max(6/105, 7/110) = 0.0636...
  BroadcastCondition bc3{6, {105, 110}};
  EXPECT_NEAR(bc3.DensityLowerBound(), 7.0 / 110.0, 1e-12);
  // Example 4: bc(4, [8, 9]) -> max(0.5, 5/9) = 0.5556.
  BroadcastCondition bc4{4, {8, 9}};
  EXPECT_NEAR(bc4.DensityLowerBound(), 5.0 / 9.0, 1e-12);
}

TEST(BroadcastConditionTest, ToStringFormat) {
  BroadcastCondition bc{2, {5, 6}};
  EXPECT_EQ(bc.ToString(), "bc(2, [5, 6])");
}

TEST(GuaranteedCountTest, ExactMultiples) {
  // pc(2, 5): windows of 10 guarantee 4, of 15 guarantee 6.
  EXPECT_EQ(GuaranteedCount({2, 5}, 10), 4u);
  EXPECT_EQ(GuaranteedCount({2, 5}, 15), 6u);
}

TEST(GuaranteedCountTest, PartialWindows) {
  // pc(1, 2) in window 9: 4 full windows + tail 1: 4 + max(0, 1-1) = 4.
  EXPECT_EQ(GuaranteedCount({1, 2}, 9), 4u);
  // pc(2, 3) in window 2: 0 full + max(0, 2 - (3-2)) = 1.
  EXPECT_EQ(GuaranteedCount({2, 3}, 2), 1u);
  // pc(3, 3) in window 7: 2*3 + max(0, 3-(3-1)) = 7 (every slot).
  EXPECT_EQ(GuaranteedCount({3, 3}, 7), 7u);
}

TEST(GuaranteedCountTest, SmallWindow) {
  EXPECT_EQ(GuaranteedCount({1, 10}, 5), 0u);
  EXPECT_EQ(GuaranteedCount({9, 10}, 5), 4u);  // max(0, 9 - (10-5)) = 4.
}

// The bound must be sound: for residue-class schedules realizing pc(a, b),
// every window of every length contains at least the bound.
TEST(GuaranteedCountTest, SoundAgainstConcreteSchedules) {
  // Schedule: task 1 at slots {0, 2} of period 5 => satisfies pc(2, 5).
  auto s = pinwheel::Schedule::FromCycle(
      {1, pinwheel::Schedule::kIdle, 1, pinwheel::Schedule::kIdle,
       pinwheel::Schedule::kIdle});
  ASSERT_TRUE(s.ok());
  for (std::uint64_t window = 1; window <= 30; ++window) {
    const std::uint64_t actual =
        pinwheel::Verifier::MinWindowCount(*s, 1, window);
    EXPECT_LE(GuaranteedCount({2, 5}, window), actual) << "window " << window;
  }
}

TEST(ImpliesTest, WeakeningHolds) {
  EXPECT_TRUE(Implies({2, 5}, {2, 5}));
  EXPECT_TRUE(Implies({2, 5}, {1, 5}));   // Fewer slots needed.
  EXPECT_TRUE(Implies({2, 5}, {2, 6}));   // Larger window... via tail bound.
  EXPECT_TRUE(Implies({2, 5}, {4, 10}));  // R1 scaling.
  EXPECT_TRUE(Implies({2, 3}, {4, 6}));   // Example 5's R1 use.
  EXPECT_TRUE(Implies({2, 3}, {2, 5}));   // Example 5's R0 use.
  EXPECT_TRUE(Implies({2, 3}, {1, 2}));   // Example 6's R2 use.
}

TEST(ImpliesTest, NonImplicationsRejected) {
  EXPECT_FALSE(Implies({1, 5}, {2, 5}));
  EXPECT_FALSE(Implies({1, 2}, {2, 3}));
  EXPECT_FALSE(Implies({2, 5}, {3, 6}));
}

TEST(ConjunctGuaranteedCountTest, SumsDisjointConditions) {
  // pc(1, 2) + pc(1, 3) in window 6: 3 + 2 = 5.
  EXPECT_EQ(ConjunctGuaranteedCount({{1, 2}, {1, 3}}, 6), 5u);
}

// The R5 situation from Example 4: pc(1,2) ∧ pc(1,10) jointly guarantee 5
// slots in every 9-window (enlarge to 10: 5 + 1 = 6, minus 1 slot).
TEST(ConjunctGuaranteedCountTest, CapturesR5Reasoning) {
  EXPECT_EQ(ConjunctGuaranteedCount({{1, 2}, {1, 10}}, 9), 5u);
  // Plain per-window sums would only give 4 + 0.
  EXPECT_EQ(GuaranteedCount({1, 2}, 9) + GuaranteedCount({1, 10}, 9), 4u);
}

TEST(ConjunctGuaranteedCountTest, SingleConditionMatchesOrImproves) {
  for (std::uint64_t b = 1; b <= 12; ++b) {
    for (std::uint64_t a = 1; a <= b; ++a) {
      for (std::uint64_t w = 1; w <= 25; ++w) {
        EXPECT_GE(ConjunctGuaranteedCount({{a, b}}, w),
                  GuaranteedCount({a, b}, w));
      }
    }
  }
}

// Soundness of the conjunct bound against concrete two-condition schedules.
TEST(ConjunctGuaranteedCountTest, SoundAgainstConcreteSchedule) {
  // Task 1 at slots {0,2,4,6,8} (every 2) and slot 9 (extra unit of window
  // 10): satisfies pc(1,2) ∧ pc(1,10) jointly mapped to one file.
  std::vector<pinwheel::TaskId> cycle(10, pinwheel::Schedule::kIdle);
  for (std::uint64_t t = 0; t < 10; t += 2) cycle[t] = 1;
  cycle[9] = 1;
  auto s = pinwheel::Schedule::FromCycle(cycle);
  ASSERT_TRUE(s.ok());
  for (std::uint64_t window = 1; window <= 40; ++window) {
    EXPECT_LE(ConjunctGuaranteedCount({{1, 2}, {1, 10}}, window),
              pinwheel::Verifier::MinWindowCount(*s, 1, window))
        << "window " << window;
  }
}

}  // namespace
}  // namespace bdisk::algebra
