// Tests for the multi-speed Broadcast Disks generator (Acharya et al.
// substrate) and the mean-latency analysis.

#include "bdisk/multi_disk.h"

#include <gtest/gtest.h>

#include "bdisk/delay_analysis.h"
#include "sim/simulation.h"

namespace bdisk::broadcast {
namespace {

TEST(MultiDiskTest, Validation) {
  EXPECT_FALSE(BuildMultiDiskProgram({}).ok());
  EXPECT_FALSE(BuildMultiDiskProgram({{0, {{"A", 1, 1, {}}}}}).ok());
  EXPECT_FALSE(BuildMultiDiskProgram({{1, {}}}).ok());
  EXPECT_FALSE(BuildMultiDiskProgram({{1, {{"A", 0, 0, {}}}}}).ok());
}

TEST(MultiDiskTest, SingleDiskIsFlat) {
  auto result = BuildMultiDiskProgram(
      {{1, {{"A", 2, 2, {}}, {"B", 3, 3, {}}}}});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->minor_cycles, 1u);
  EXPECT_EQ(result->program.period(), 5u);
  EXPECT_EQ(result->program.CountOf(0), 2u);
  EXPECT_EQ(result->program.CountOf(1), 3u);
}

TEST(MultiDiskTest, FrequencyRatiosRespected) {
  // Fast disk (f=2): file H with 2 pages; slow disk (f=1): file C with 4.
  auto result = BuildMultiDiskProgram({
      {2, {{"H", 2, 2, {}}}},
      {1, {{"C", 4, 4, {}}}},
  });
  ASSERT_TRUE(result.ok()) << result.status();
  // lcm = 2 minor cycles; fast disk: C_1 = 1 chunk of 2; slow: C_2 = 2
  // chunks of 2. Period = 2 * (2 + 2) = 8; H appears twice per major
  // cycle per page => 4 H slots, 4 C slots.
  EXPECT_EQ(result->minor_cycles, 2u);
  EXPECT_EQ(result->program.period(), 8u);
  EXPECT_EQ(result->program.CountOf(0), 4u);  // H broadcast 2x as often.
  EXPECT_EQ(result->program.CountOf(1), 4u);
  // Layout: H0 H1 C0 C1 | H0 H1 C2 C3 (chunked interleave).
  const std::vector<FileIndex> expected{0, 0, 1, 1, 0, 0, 1, 1};
  EXPECT_EQ(result->program.slots(), expected);
}

TEST(MultiDiskTest, PaddingForUnevenChunks) {
  // Slow disk with 3 pages into 2 chunks: chunk size 2, one idle pad slot.
  auto result = BuildMultiDiskProgram({
      {2, {{"H", 1, 1, {}}}},
      {1, {{"C", 3, 3, {}}}},
  });
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->program.period(), 2 * (1 + 2));
  EXPECT_EQ(result->program.CountOf(1), 3u);
  EXPECT_LT(result->program.Utilization(), 1.0);
}

TEST(MultiDiskTest, ThreeSpeedHierarchy) {
  auto result = BuildMultiDiskProgram({
      {4, {{"hot", 2, 4, {}}}},
      {2, {{"warm", 4, 6, {}}}},
      {1, {{"cold", 8, 8, {}}}},
  });
  ASSERT_TRUE(result.ok()) << result.status();
  const BroadcastProgram& p = result->program;
  EXPECT_EQ(result->minor_cycles, 4u);
  // Per major cycle: hot 2*4 = 8 slots, warm 4*2 = 8, cold 8.
  EXPECT_EQ(p.CountOf(0), 8u);
  EXPECT_EQ(p.CountOf(1), 8u);
  EXPECT_EQ(p.CountOf(2), 8u);
  // The hot file's pages recur 4x as often, so retrieving it is far
  // faster on average (max gap alone is chunk-boundary dominated and can
  // coincide across disks).
  EXPECT_LT(MeanRetrievalLatency(p, 0), MeanRetrievalLatency(p, 2) / 2);
}

TEST(MultiDiskTest, AidaRotationComposes) {
  auto result = BuildMultiDiskProgram({
      {2, {{"H", 2, 4, {}}}},
      {1, {{"C", 3, 6, {}}}},
  });
  ASSERT_TRUE(result.ok()) << result.status();
  // Rotation must cycle through all dispersed blocks across the data
  // cycle.
  const BroadcastProgram& p = result->program;
  std::vector<int> seen_h(4, 0);
  std::vector<int> seen_c(6, 0);
  for (std::uint64_t t = 0; t < p.DataCycleLength(); ++t) {
    auto tx = p.TransmissionAt(t);
    if (!tx.has_value()) continue;
    if (tx->file == 0) ++seen_h[tx->block_index];
    if (tx->file == 1) ++seen_c[tx->block_index];
  }
  for (int s : seen_h) EXPECT_GT(s, 0);
  for (int s : seen_c) EXPECT_GT(s, 0);
}

TEST(MeanLatencyTest, UniformSingleFile) {
  // One file, 2 of 4 slots (period 4, occurrences 0 and 2): retrieval
  // needs both blocks. Enumerate starts: s=0 -> done at 2 (lat 3),
  // s=1 -> occ 2, 4 (lat 4), s=2 -> 2,4 (3), s=3 -> 4,6 (4).
  std::vector<ProgramFile> files{{"A", 2, 2, {}}};
  std::vector<FileIndex> slots{0, BroadcastProgram::kIdleSlot, 0,
                               BroadcastProgram::kIdleSlot};
  auto p = BroadcastProgram::Create(std::move(files), std::move(slots));
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(MeanRetrievalLatency(*p, 0), (3 + 4 + 3 + 4) / 4.0);
}

TEST(MeanLatencyTest, HotFileBeatsColdOnFastDisk) {
  auto multi = BuildMultiDiskProgram({
      {4, {{"hot", 2, 2, {}}}},
      {1, {{"cold", 8, 8, {}}}},
  });
  ASSERT_TRUE(multi.ok()) << multi.status();
  const double hot = MeanRetrievalLatency(multi->program, 0);
  const double cold = MeanRetrievalLatency(multi->program, 1);
  EXPECT_LT(hot, cold / 2);  // The fast disk pays off.
}

// Cross-check: the closed-form mean latency must equal the simulator's
// empirical mean over every start slot on a fault-free channel.
TEST(MeanLatencyTest, ClosedFormMatchesSimulatorExactly) {
  auto multi = BuildMultiDiskProgram({
      {3, {{"hot", 2, 4, {}}}},
      {1, {{"cold", 5, 7, {}}, {"mid", 3, 3, {}}}},
  });
  ASSERT_TRUE(multi.ok()) << multi.status();
  const BroadcastProgram& p = multi->program;
  sim::NoFaultModel faults;
  sim::Simulator simulator(p, &faults,
                           p.DataCycleLength() * 20);
  for (FileIndex f = 0; f < p.file_count(); ++f) {
    double total = 0.0;
    for (std::uint64_t s = 0; s < p.DataCycleLength(); ++s) {
      sim::ClientRequest req;
      req.file = f;
      req.start_slot = s;
      auto outcome = simulator.Retrieve(req);
      ASSERT_TRUE(outcome.ok());
      ASSERT_TRUE(outcome->completed);
      total += static_cast<double>(outcome->latency);
    }
    const double empirical =
        total / static_cast<double>(p.DataCycleLength());
    EXPECT_NEAR(MeanRetrievalLatency(p, f), empirical, 1e-9)
        << p.files()[f].name;
  }
}

TEST(MeanLatencyTest, MultiDiskBeatsFlatForHotFiles) {
  // Same files; flat (single-speed) vs hot-on-fast-disk.
  const FlatFileSpec hot{"hot", 2, 2, {}};
  const FlatFileSpec cold{"cold", 12, 12, {}};
  auto flat = BuildFlatProgram({hot, cold}, FlatLayout::kSpread);
  auto multi = BuildMultiDiskProgram({{4, {hot}}, {1, {cold}}});
  ASSERT_TRUE(flat.ok());
  ASSERT_TRUE(multi.ok());
  EXPECT_LT(MeanRetrievalLatency(multi->program, 0),
            MeanRetrievalLatency(*flat, 0));
}

}  // namespace
}  // namespace bdisk::broadcast
