// Tests for the exact worst-case delay analysis (Lemmas 1 and 2, Figure 7).

#include "bdisk/delay_analysis.h"

#include <gtest/gtest.h>

#include "bdisk/flat_builder.h"

namespace bdisk::broadcast {
namespace {

// Figure 5/6 toy system: A (5 blocks), B (3 blocks), period 8.
BroadcastProgram ToyProgram(bool ida, FlatLayout layout) {
  std::vector<FlatFileSpec> files{
      {"A", 5, ida ? 10u : 5u, {}},
      {"B", 3, ida ? 6u : 3u, {}},
  };
  auto p = BuildFlatProgram(files, layout);
  EXPECT_TRUE(p.ok());
  return *p;
}

TEST(DelayAnalyzerTest, UnknownFileRejected) {
  const BroadcastProgram p = ToyProgram(true, FlatLayout::kSpread);
  DelayAnalyzer analyzer(p);
  EXPECT_FALSE(analyzer.WorstCaseDelay(7, 1, ClientModel::kIda).ok());
}

TEST(DelayAnalyzerTest, FlatModelRequiresNEqualsM) {
  const BroadcastProgram p = ToyProgram(true, FlatLayout::kSpread);
  DelayAnalyzer analyzer(p);
  EXPECT_TRUE(analyzer.WorstCaseCompletion(0, 0, 0, ClientModel::kFlat)
                  .status()
                  .IsInvalidArgument());
}

TEST(DelayAnalyzerTest, ZeroErrorsZeroDelay) {
  for (bool ida : {false, true}) {
    const BroadcastProgram p = ToyProgram(ida, FlatLayout::kSpread);
    DelayAnalyzer analyzer(p);
    const ClientModel model = ida ? ClientModel::kIda : ClientModel::kFlat;
    for (FileIndex f = 0; f < 2; ++f) {
      auto d = analyzer.WorstCaseDelay(f, 0, model);
      ASSERT_TRUE(d.ok()) << d.status();
      EXPECT_EQ(*d, 0u);
    }
  }
}

// Lemma 1: for a flat (non-IDA) program, the worst-case delay with r errors
// is exactly r * tau when each block is transmitted once per period.
TEST(DelayAnalyzerTest, Lemma1ExactForFlatPrograms) {
  for (FlatLayout layout : {FlatLayout::kContiguous, FlatLayout::kSpread}) {
    const BroadcastProgram p = ToyProgram(false, layout);
    DelayAnalyzer analyzer(p);
    for (FileIndex f = 0; f < 2; ++f) {
      for (std::uint32_t r = 1; r <= 5; ++r) {
        auto d = analyzer.WorstCaseDelay(f, r, ClientModel::kFlat);
        ASSERT_TRUE(d.ok()) << d.status();
        EXPECT_EQ(*d, analyzer.Lemma1Bound(r))
            << "file " << f << " r " << r;
      }
    }
  }
}

// Lemma 2: with AIDA the worst-case delay is bounded by r * Delta. The
// lemma's premise is that enough distinct dispersed blocks exist (AIDA
// transmits n >= m + r blocks when r faults must be masked), so the bound
// is asserted for r <= n - m; beyond that the client must wait for
// rotation repeats and only the generic data-cycle bound applies.
TEST(DelayAnalyzerTest, Lemma2BoundHolds) {
  for (FlatLayout layout : {FlatLayout::kContiguous, FlatLayout::kSpread}) {
    const BroadcastProgram p = ToyProgram(true, layout);
    DelayAnalyzer analyzer(p);
    for (FileIndex f = 0; f < 2; ++f) {
      const std::uint32_t max_masked = p.files()[f].n - p.files()[f].m;
      for (std::uint32_t r = 0; r <= 5; ++r) {
        auto d = analyzer.WorstCaseDelay(f, r, ClientModel::kIda);
        ASSERT_TRUE(d.ok()) << d.status();
        if (r <= max_masked) {
          EXPECT_LE(*d, analyzer.Lemma2Bound(f, r))
              << "file " << f << " r " << r << " layout "
              << static_cast<int>(layout);
        } else {
          EXPECT_LE(*d, r * p.DataCycleLength());
        }
      }
    }
  }
}

// The headline comparison behind Figure 7: with IDA the delay grows by at
// most Delta per error; without IDA by tau per error — IDA strictly wins
// for every r >= 1 on the toy system.
TEST(DelayAnalyzerTest, IdaBeatsFlatForEveryErrorCount) {
  const BroadcastProgram ida = ToyProgram(true, FlatLayout::kSpread);
  const BroadcastProgram flat = ToyProgram(false, FlatLayout::kSpread);
  DelayAnalyzer ida_analyzer(ida);
  DelayAnalyzer flat_analyzer(flat);
  for (FileIndex f = 0; f < 2; ++f) {
    for (std::uint32_t r = 1; r <= 5; ++r) {
      auto with_ida = ida_analyzer.WorstCaseDelay(f, r, ClientModel::kIda);
      auto without = flat_analyzer.WorstCaseDelay(f, r, ClientModel::kFlat);
      ASSERT_TRUE(with_ida.ok());
      ASSERT_TRUE(without.ok());
      EXPECT_LT(*with_ida, *without) << "file " << f << " r " << r;
    }
  }
}

TEST(DelayAnalyzerTest, DelayMonotoneInErrors) {
  const BroadcastProgram p = ToyProgram(true, FlatLayout::kSpread);
  DelayAnalyzer analyzer(p);
  for (FileIndex f = 0; f < 2; ++f) {
    std::uint64_t prev = 0;
    for (std::uint32_t r = 0; r <= 6; ++r) {
      auto d = analyzer.WorstCaseDelay(f, r, ClientModel::kIda);
      ASSERT_TRUE(d.ok());
      EXPECT_GE(*d, prev);
      prev = *d;
    }
  }
}

// Fast path vs DP cross-check: for r <= n - m both must agree (the DP is
// exercised by shrinking n... here we force the DP by using r > n - m).
TEST(DelayAnalyzerTest, DpPathHandlesRotationWrap) {
  // File with m=2, n=3: more than 1 error forces wrap handling in the DP.
  std::vector<FlatFileSpec> files{{"F", 2, 3, {}}};
  auto p = BuildFlatProgram(files, FlatLayout::kContiguous);
  ASSERT_TRUE(p.ok());
  DelayAnalyzer analyzer(*p);
  for (std::uint32_t r = 0; r <= 4; ++r) {
    auto d = analyzer.WorstCaseDelay(0, r, ClientModel::kIda);
    ASSERT_TRUE(d.ok()) << d.status();
    // r = 1 is within the AIDA premise (n - m = 1): Lemma 2 applies; larger
    // r waits on rotation repeats and only the data-cycle bound applies.
    if (r <= 1) {
      EXPECT_LE(*d, analyzer.Lemma2Bound(0, r));
    } else {
      EXPECT_LE(*d, r * p->DataCycleLength());
    }
  }
}

// Completion from a fixed start: fast-path formula check. A client starting
// at slot 0 of the Figure-6-style spread program, with n >= m + r, finishes
// at the (m + r)-th transmission of its file.
TEST(DelayAnalyzerTest, CompletionFormulaAtStartZero) {
  const BroadcastProgram p = ToyProgram(true, FlatLayout::kSpread);
  DelayAnalyzer analyzer(p);
  // File B: m = 3, occurrences within data cycle at known slots.
  const auto& occ = p.OccurrencesOf(1);
  ASSERT_EQ(occ.size(), 3u);
  auto c0 = analyzer.WorstCaseCompletion(1, 0, 0, ClientModel::kIda);
  ASSERT_TRUE(c0.ok());
  EXPECT_EQ(*c0, occ[2]);  // Third B transmission.
  auto c1 = analyzer.WorstCaseCompletion(1, 0, 1, ClientModel::kIda);
  ASSERT_TRUE(c1.ok());
  EXPECT_EQ(*c1, occ[0] + p.period());  // Fourth = first of next period.
}

// Latency accounting: worst-case latency with zero errors is bounded by
// period + max gap (you can just miss an occurrence).
TEST(DelayAnalyzerTest, LatencyZeroErrorsBounded) {
  const BroadcastProgram p = ToyProgram(true, FlatLayout::kSpread);
  DelayAnalyzer analyzer(p);
  for (FileIndex f = 0; f < 2; ++f) {
    auto lat = analyzer.WorstCaseLatency(f, 0, ClientModel::kIda);
    ASSERT_TRUE(lat.ok());
    EXPECT_LE(*lat, p.period() + p.MaxGapOf(f));
    EXPECT_GE(*lat, p.files()[f].m);  // Needs at least m slots.
  }
}

TEST(DelayAnalyzerTest, LatencyMonotoneInErrors) {
  const BroadcastProgram p = ToyProgram(true, FlatLayout::kSpread);
  DelayAnalyzer analyzer(p);
  std::uint64_t prev = 0;
  for (std::uint32_t r = 0; r <= 5; ++r) {
    auto lat = analyzer.WorstCaseLatency(0, r, ClientModel::kIda);
    ASSERT_TRUE(lat.ok());
    EXPECT_GE(*lat, prev);
    prev = *lat;
  }
}

}  // namespace
}  // namespace bdisk::broadcast
