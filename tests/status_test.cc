// Unit tests for bdisk::Status / bdisk::Result.

#include "common/status.h"

#include <gtest/gtest.h>

#include <sstream>

namespace bdisk {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, NamedConstructorsSetCodes) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Infeasible("x").IsInfeasible());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::DataLoss("x").IsDataLoss());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
}

TEST(StatusTest, IoErrorRendersItsCode) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIoError), "I/O error");
  EXPECT_EQ(Status::IoError("disk on fire").ToString(),
            "I/O error: disk on fire");
}

TEST(StatusTest, MessagePreserved) {
  Status s = Status::InvalidArgument("the message");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "the message");
  EXPECT_EQ(s.ToString(), "Invalid argument: the message");
}

TEST(StatusTest, CopyIsCheapAndEqual) {
  Status a = Status::Infeasible("nope");
  Status b = a;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_EQ(a, b);
  EXPECT_TRUE(b.IsInfeasible());
}

TEST(StatusTest, WithContextPrepends) {
  Status s = Status::NotFound("task 3").WithContext("lookup");
  EXPECT_EQ(s.message(), "lookup: task 3");
  EXPECT_TRUE(s.IsNotFound());
}

TEST(StatusTest, WithContextOnOkIsNoop) {
  Status s = Status::OK().WithContext("ctx");
  EXPECT_TRUE(s.ok());
}

TEST(StatusTest, OkWithMessageDegradesToInternal) {
  Status s(StatusCode::kOk, "should not happen");
  EXPECT_TRUE(s.IsInternal());
}

TEST(StatusTest, StreamInsertion) {
  std::ostringstream oss;
  oss << Status::DataLoss("bits fell out");
  EXPECT_EQ(oss.str(), "Data loss: bits fell out");
}

TEST(StatusTest, CodeToStringCoversAllCodes) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInfeasible), "Infeasible");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotImplemented),
               "Not implemented");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<int> r(7);
  EXPECT_EQ(r.ValueOr(-1), 7);
}

TEST(ResultTest, OkStatusInResultBecomesInternal) {
  Result<int> r(Status::OK());
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

Status FailingHelper() { return Status::Infeasible("inner"); }

Status PropagatingFunction() {
  BDISK_RETURN_NOT_OK(FailingHelper());
  return Status::Internal("should not reach");
}

TEST(MacrosTest, ReturnNotOkPropagates) {
  Status s = PropagatingFunction();
  EXPECT_TRUE(s.IsInfeasible());
  EXPECT_EQ(s.message(), "inner");
}

Result<int> ProducesValue() { return 5; }
Result<int> ProducesError() { return Status::DataLoss("bad"); }

Status AssignOrReturnUser(bool fail, int* out) {
  BDISK_ASSIGN_OR_RETURN(int v, fail ? ProducesError() : ProducesValue());
  *out = v;
  return Status::OK();
}

TEST(MacrosTest, AssignOrReturnAssignsOnSuccess) {
  int out = 0;
  ASSERT_TRUE(AssignOrReturnUser(false, &out).ok());
  EXPECT_EQ(out, 5);
}

TEST(MacrosTest, AssignOrReturnPropagatesError) {
  int out = 0;
  Status s = AssignOrReturnUser(true, &out);
  EXPECT_TRUE(s.IsDataLoss());
  EXPECT_EQ(out, 0);
}

}  // namespace
}  // namespace bdisk
