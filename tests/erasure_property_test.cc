// Failure-injection property tests for IDA: every erasure pattern within
// the designed tolerance is survivable, byte-exactly, across geometries.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"
#include "ida/dispersal.h"

namespace bdisk::ida {
namespace {

struct ErasureParam {
  std::uint32_t m;
  std::uint32_t n;
};

class ErasurePropertyTest : public ::testing::TestWithParam<ErasureParam> {};

std::vector<std::uint8_t> RandomFile(std::size_t size, Rng* rng) {
  std::vector<std::uint8_t> data(size);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng->Uniform(256));
  return data;
}

// Every erasure pattern of exactly n - m blocks (the design limit) leaves
// a reconstructible set. Exhaustive when C(n, n-m) is small, sampled
// otherwise.
TEST_P(ErasurePropertyTest, MaximalErasuresAlwaysSurvivable) {
  const auto [m, n] = GetParam();
  constexpr std::size_t kBlockSize = 24;
  auto engine = Dispersal::Create(m, n, kBlockSize);
  ASSERT_TRUE(engine.ok());
  Rng rng(m * 7919 + n);
  const auto file = RandomFile(m * kBlockSize, &rng);
  auto blocks = engine->Disperse(0, file);
  ASSERT_TRUE(blocks.ok());

  const std::uint32_t erasures = n - m;
  // Sample up to 60 erasure patterns (distinct by construction unlikely to
  // repeat; exactness is not required for a sampled property).
  for (int trial = 0; trial < 60; ++trial) {
    const auto dead = rng.SampleWithoutReplacement(n, erasures);
    std::vector<bool> erased(n, false);
    for (std::size_t i : dead) erased[i] = true;
    std::vector<Block> survivors;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (!erased[i]) survivors.push_back((*blocks)[i]);
    }
    ASSERT_EQ(survivors.size(), m);
    auto rec = engine->Reconstruct(survivors);
    ASSERT_TRUE(rec.ok()) << rec.status();
    ASSERT_EQ(*rec, file);
  }
}

// One erasure beyond the design limit is fatal — never silently wrong.
TEST_P(ErasurePropertyTest, ExcessErasuresFailLoudly) {
  const auto [m, n] = GetParam();
  if (m == 1) return;  // Cannot erase below one block meaningfully.
  constexpr std::size_t kBlockSize = 8;
  auto engine = Dispersal::Create(m, n, kBlockSize);
  ASSERT_TRUE(engine.ok());
  Rng rng(m * 104729 + n);
  const auto file = RandomFile(m * kBlockSize, &rng);
  auto blocks = engine->Disperse(0, file);
  ASSERT_TRUE(blocks.ok());
  std::vector<Block> survivors(blocks->begin(),
                               blocks->begin() + (m - 1));
  EXPECT_TRUE(engine->Reconstruct(survivors).status().IsDataLoss());
}

// Reconstruction is order-invariant: shuffled survivor sets give the same
// bytes.
TEST_P(ErasurePropertyTest, OrderInvariance) {
  const auto [m, n] = GetParam();
  constexpr std::size_t kBlockSize = 16;
  auto engine = Dispersal::Create(m, n, kBlockSize);
  ASSERT_TRUE(engine.ok());
  Rng rng(m * 31337 + n);
  const auto file = RandomFile(m * kBlockSize, &rng);
  auto blocks = engine->Disperse(0, file);
  ASSERT_TRUE(blocks.ok());
  std::vector<Block> survivors(blocks->begin(), blocks->begin() + m);
  for (int trial = 0; trial < 10; ++trial) {
    rng.Shuffle(&survivors);
    auto rec = engine->Reconstruct(survivors);
    ASSERT_TRUE(rec.ok());
    ASSERT_EQ(*rec, file);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ErasurePropertyTest,
    ::testing::Values(ErasureParam{1, 4}, ErasureParam{2, 5},
                      ErasureParam{3, 6}, ErasureParam{5, 10},
                      ErasureParam{8, 11}, ErasureParam{10, 30},
                      ErasureParam{17, 23}, ErasureParam{32, 40}),
    [](const ::testing::TestParamInfo<ErasureParam>& info) {
      std::string name = "m";
      name += std::to_string(info.param.m);
      name += "n";
      name += std::to_string(info.param.n);
      return name;
    });

}  // namespace
}  // namespace bdisk::ida
