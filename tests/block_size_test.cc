// Tests for the Section 5 block-size chooser.

#include "bdisk/block_size.h"

#include <gtest/gtest.h>

#include "pinwheel/composite_scheduler.h"

namespace bdisk::broadcast {
namespace {

TEST(BlockSizeTest, Validation) {
  pinwheel::CompositeScheduler scheduler;
  EXPECT_FALSE(ChooseLargestFeasibleBlockSize({}, 1000, scheduler).ok());
  EXPECT_FALSE(ChooseLargestFeasibleBlockSize(
                   {{"f", 100, 1.0, 0}}, 0, scheduler)
                   .ok());
  EXPECT_FALSE(ChooseLargestFeasibleBlockSize(
                   {{"f", 0, 1.0, 0}}, 1000, scheduler)
                   .ok());
  EXPECT_FALSE(ChooseLargestFeasibleBlockSize(
                   {{"f", 100, 0.0, 0}}, 1000, scheduler)
                   .ok());
}

TEST(BlockSizeTest, PicksLargestFeasible) {
  // Four 16 KiB files, 0.5 s deadlines, 1 fault, 192 KiB/s channel: per
  // the block-size bench, 8 KiB works and 16 KiB does not.
  std::vector<ByteFileSpec> files;
  for (int i = 0; i < 4; ++i) {
    files.push_back({"f" + std::to_string(i), 16 * 1024, 0.5, 1});
  }
  pinwheel::CompositeScheduler scheduler;
  auto choice = ChooseLargestFeasibleBlockSize(files, 192 * 1024, scheduler);
  ASSERT_TRUE(choice.ok()) << choice.status();
  EXPECT_EQ(choice->block_size, 8u * 1024);
  EXPECT_EQ(choice->bandwidth_blocks_per_second, 24u);
  ASSERT_EQ(choice->dispersal_levels.size(), 4u);
  EXPECT_EQ(choice->dispersal_levels[0], 2u);  // 16 KiB / 8 KiB.
  EXPECT_TRUE(choice->build.program.VerifyBroadcastConditions().ok());
}

TEST(BlockSizeTest, CustomCandidateLadder) {
  std::vector<ByteFileSpec> files{{"a", 4096, 1.0, 0}};
  pinwheel::CompositeScheduler scheduler;
  auto choice = ChooseLargestFeasibleBlockSize(files, 64 * 1024, scheduler,
                                               {1000, 2000, 500});
  ASSERT_TRUE(choice.ok()) << choice.status();
  EXPECT_EQ(choice->block_size, 2000u);
}

TEST(BlockSizeTest, InfeasibleEverywhere) {
  // Deadline shorter than the file itself at any block size on this
  // channel.
  std::vector<ByteFileSpec> files{{"big", 1024 * 1024, 0.01, 0}};
  pinwheel::CompositeScheduler scheduler;
  auto choice = ChooseLargestFeasibleBlockSize(files, 8 * 1024, scheduler);
  EXPECT_TRUE(choice.status().IsInfeasible());
}

TEST(BlockSizeTest, SmallerBlocksRescueTightSystems) {
  // A system that fits only when block granularity is fine enough: two
  // 1 KiB files with sub-second deadlines on a 16 KiB/s channel. At 1 KiB
  // blocks (m = 1, bandwidth 16), windows hold only m + r = 2 > 16*0.4 =
  // 6 slots? -> fine; at 8 KiB blocks bandwidth is 2 blocks/s and the
  // 0.4 s window holds 0 slots -> infeasible.
  std::vector<ByteFileSpec> files{
      {"x", 1024, 0.4, 1},
      {"y", 1024, 0.9, 1},
  };
  pinwheel::CompositeScheduler scheduler;
  auto choice = ChooseLargestFeasibleBlockSize(files, 16 * 1024, scheduler,
                                               {8192, 1024, 256});
  ASSERT_TRUE(choice.ok()) << choice.status();
  EXPECT_LT(choice->block_size, 8192u);
}

}  // namespace
}  // namespace bdisk::broadcast
