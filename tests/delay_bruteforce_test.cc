// Cross-validation: the DelayAnalyzer's closed forms and adversary DP
// against brute force — enumerate *every* subset of r corrupted
// transmissions through the simulator and take the max completion.
//
// This pins the analyzer's exactness claim: any disagreement between the
// analytic worst case and exhaustive enumeration is a bug in one of them.

#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

#include "bdisk/delay_analysis.h"
#include "bdisk/flat_builder.h"
#include "sim/simulation.h"

namespace bdisk::broadcast {
namespace {

// Max completion slot over all ways to corrupt exactly `errors` of the
// file's transmissions at or after `start` (within a generous horizon),
// computed via the simulator.
std::uint64_t BruteForceWorstCompletion(const BroadcastProgram& program,
                                        FileIndex file, std::uint64_t start,
                                        std::uint32_t errors) {
  const ProgramFile& pf = program.files()[file];
  // Candidate transmissions to corrupt: enough to cover the analyzer's own
  // horizon (m + (r+1)n + 2 occurrences).
  const std::size_t horizon_occurrences =
      pf.m + (static_cast<std::size_t>(errors) + 1) * pf.n + 2;
  std::vector<std::uint64_t> slots;
  for (std::uint64_t t = start; slots.size() < horizon_occurrences; ++t) {
    const auto tx = program.TransmissionAt(t);
    if (tx.has_value() && tx->file == file) slots.push_back(t);
  }

  const std::uint64_t sim_horizon = slots.back() + program.DataCycleLength();
  std::uint64_t worst = 0;

  // Enumerate subsets of size `errors` via index recursion.
  std::vector<std::size_t> pick(errors);
  const std::size_t n_slots = slots.size();
  std::vector<std::size_t> stack;
  // Iterative combination enumeration.
  std::vector<std::size_t> idx(errors);
  for (std::size_t i = 0; i < errors; ++i) idx[i] = i;
  bool done = errors > n_slots;
  while (!done) {
    std::unordered_set<std::uint64_t> dead;
    for (std::size_t i = 0; i < errors; ++i) dead.insert(slots[idx[i]]);
    sim::SlotSetFaultModel faults(std::move(dead));
    sim::Simulator simulator(program, &faults, sim_horizon + 1);
    sim::ClientRequest req;
    req.file = file;
    req.start_slot = start;
    req.model = pf.n == pf.m ? ClientModel::kFlat : ClientModel::kIda;
    auto outcome = simulator.Retrieve(req);
    EXPECT_TRUE(outcome.ok());
    EXPECT_TRUE(outcome->completed);
    worst = std::max(worst, outcome->completion_slot);

    if (errors == 0) break;
    // Next combination.
    std::size_t i = errors;
    while (i > 0) {
      --i;
      if (idx[i] + (errors - i) < n_slots) {
        ++idx[i];
        for (std::size_t j = i + 1; j < errors; ++j) idx[j] = idx[j - 1] + 1;
        break;
      }
      if (i == 0) done = true;
    }
  }
  (void)pick;
  (void)stack;
  return worst;
}

struct Case {
  const char* name;
  std::vector<FlatFileSpec> files;
  FlatLayout layout;
};

class BruteForceTest : public ::testing::TestWithParam<Case> {};

TEST_P(BruteForceTest, AnalyzerMatchesExhaustiveAdversary) {
  const Case& c = GetParam();
  auto program = BuildFlatProgram(c.files, c.layout);
  ASSERT_TRUE(program.ok());
  DelayAnalyzer analyzer(*program);

  for (FileIndex f = 0; f < program->file_count(); ++f) {
    const ProgramFile& pf = program->files()[f];
    const ClientModel model =
        pf.n == pf.m ? ClientModel::kFlat : ClientModel::kIda;
    for (std::uint32_t r = 0; r <= 3; ++r) {
      for (std::uint64_t start = 0; start < program->DataCycleLength();
           start += 3) {  // Subsample starts to keep runtime low.
        auto analytic = analyzer.WorstCaseCompletion(f, start, r, model);
        ASSERT_TRUE(analytic.ok()) << analytic.status();
        const std::uint64_t brute =
            BruteForceWorstCompletion(*program, f, start, r);
        ASSERT_EQ(*analytic, brute)
            << c.name << " file " << f << " r " << r << " start " << start;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Programs, BruteForceTest,
    ::testing::Values(
        Case{"ida_spread",
             {{"A", 3, 6, {}}, {"B", 2, 4, {}}},
             FlatLayout::kSpread},
        Case{"ida_contiguous",
             {{"A", 3, 6, {}}, {"B", 2, 4, {}}},
             FlatLayout::kContiguous},
        Case{"flat_spread",
             {{"A", 3, 3, {}}, {"B", 2, 2, {}}},
             FlatLayout::kSpread},
        Case{"flat_contiguous",
             {{"A", 4, 4, {}}, {"B", 2, 2, {}}},
             FlatLayout::kContiguous},
        Case{"tight_rotation",  // n < m + r for r >= 2: exercises the DP.
             {{"A", 2, 3, {}}, {"B", 1, 2, {}}},
             FlatLayout::kSpread},
        Case{"single_file", {{"A", 4, 8, {}}}, FlatLayout::kSpread}),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace bdisk::broadcast
