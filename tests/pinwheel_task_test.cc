// Unit tests for the pinwheel task model.

#include "pinwheel/task.h"

#include <gtest/gtest.h>

namespace bdisk::pinwheel {
namespace {

TEST(TaskTest, DensityAndToString) {
  Task t{1, 2, 5};
  EXPECT_DOUBLE_EQ(t.density(), 0.4);
  EXPECT_EQ(t.ToString(), "(1, 2, 5)");
}

TEST(InstanceTest, CreateValid) {
  auto inst = Instance::Create({{1, 1, 2}, {2, 1, 3}});
  ASSERT_TRUE(inst.ok());
  EXPECT_EQ(inst->size(), 2u);
  EXPECT_FALSE(inst->empty());
}

TEST(InstanceTest, RejectsZeroRequirement) {
  EXPECT_TRUE(Instance::Create({{1, 0, 2}}).status().IsInvalidArgument());
}

TEST(InstanceTest, RejectsZeroWindow) {
  EXPECT_TRUE(Instance::Create({{1, 1, 0}}).status().IsInvalidArgument());
}

TEST(InstanceTest, RejectsRequirementAboveWindow) {
  EXPECT_TRUE(Instance::Create({{1, 3, 2}}).status().IsInvalidArgument());
}

TEST(InstanceTest, RejectsDuplicateIds) {
  Status s = Instance::Create({{1, 1, 2}, {1, 1, 3}}).status();
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("nice"), std::string::npos);
}

TEST(InstanceTest, AllowsFullWindowTask) {
  EXPECT_TRUE(Instance::Create({{1, 4, 4}}).ok());
}

// The paper's Example 1 densities.
TEST(InstanceTest, Example1Densities) {
  auto first = Instance::Create({{1, 1, 2}, {2, 1, 3}});
  ASSERT_TRUE(first.ok());
  EXPECT_NEAR(first->density(), 1.0 / 2 + 1.0 / 3, 1e-12);

  auto second = Instance::Create({{1, 2, 5}, {2, 1, 3}});
  ASSERT_TRUE(second.ok());
  EXPECT_NEAR(second->density(), 2.0 / 5 + 1.0 / 3, 1e-12);

  auto third = Instance::Create({{1, 1, 2}, {2, 1, 3}, {3, 1, 100}});
  ASSERT_TRUE(third.ok());
  EXPECT_NEAR(third->density(), 1.0 / 2 + 1.0 / 3 + 1.0 / 100, 1e-12);
}

TEST(InstanceTest, WindowLcm) {
  auto inst = Instance::Create({{1, 1, 4}, {2, 1, 6}, {3, 1, 10}});
  ASSERT_TRUE(inst.ok());
  EXPECT_EQ(inst->WindowLcm(), 60u);
}

TEST(InstanceTest, MaxWindow) {
  auto inst = Instance::Create({{1, 1, 4}, {2, 1, 6}});
  ASSERT_TRUE(inst.ok());
  EXPECT_EQ(inst->MaxWindow(), 6u);
  EXPECT_EQ(Instance().MaxWindow(), 0u);
}

TEST(InstanceTest, FindTask) {
  auto inst = Instance::Create({{7, 2, 9}});
  ASSERT_TRUE(inst.ok());
  auto found = inst->FindTask(7);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->a, 2u);
  EXPECT_TRUE(inst->FindTask(8).status().IsNotFound());
}

TEST(InstanceTest, ToStringMatchesPaperNotation) {
  auto inst = Instance::Create({{1, 1, 2}, {2, 1, 3}});
  ASSERT_TRUE(inst.ok());
  EXPECT_EQ(inst->ToString(), "{(1, 1, 2), (2, 1, 3)}");
}

}  // namespace
}  // namespace bdisk::pinwheel
