// Tests for the flat broadcast-program builders (Figures 5 / 6 baselines).

#include "bdisk/flat_builder.h"

#include <gtest/gtest.h>

namespace bdisk::broadcast {
namespace {

std::vector<FlatFileSpec> PaperToyFiles(bool ida) {
  // File A: 5 blocks (dispersed to 10 under AIDA); file B: 3 (to 6).
  return {
      {"A", 5, ida ? 10u : 5u, {}},
      {"B", 3, ida ? 6u : 3u, {}},
  };
}

TEST(FlatBuilderTest, Validation) {
  EXPECT_FALSE(BuildFlatProgram({}, FlatLayout::kContiguous).ok());
  EXPECT_FALSE(
      BuildFlatProgram({{"A", 0, 1, {}}}, FlatLayout::kContiguous).ok());
  EXPECT_FALSE(
      BuildFlatProgram({{"A", 3, 2, {}}}, FlatLayout::kContiguous).ok());
}

TEST(FlatBuilderTest, ContiguousLayoutMatchesFigure5) {
  auto p = BuildFlatProgram(PaperToyFiles(false), FlatLayout::kContiguous);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->period(), 8u);
  // A1..A5 then B1..B3.
  const std::vector<FileIndex> expected{0, 0, 0, 0, 0, 1, 1, 1};
  EXPECT_EQ(p->slots(), expected);
  EXPECT_EQ(p->DataCycleLength(), 8u);
}

TEST(FlatBuilderTest, SpreadLayoutInterleaves) {
  auto p = BuildFlatProgram(PaperToyFiles(true), FlatLayout::kSpread);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->period(), 8u);
  EXPECT_EQ(p->CountOf(0), 5u);
  EXPECT_EQ(p->CountOf(1), 3u);
  // Spreading strictly reduces A's max gap versus contiguous.
  auto contiguous =
      BuildFlatProgram(PaperToyFiles(true), FlatLayout::kContiguous);
  ASSERT_TRUE(contiguous.ok());
  EXPECT_LT(p->MaxGapOf(0), contiguous->MaxGapOf(0));
  EXPECT_LE(p->MaxGapOf(0), 2u);  // 5 of 8 slots spread: gap at most 2.
  EXPECT_LE(p->MaxGapOf(1), 3u);  // 3 of 8 slots spread: gap at most 3.
}

TEST(FlatBuilderTest, SpreadIsDeterministic) {
  auto p1 = BuildFlatProgram(PaperToyFiles(true), FlatLayout::kSpread);
  auto p2 = BuildFlatProgram(PaperToyFiles(true), FlatLayout::kSpread);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(p1->slots(), p2->slots());
}

TEST(FlatBuilderTest, AidaVersionHasDataCycle16) {
  auto p = BuildFlatProgram(PaperToyFiles(true), FlatLayout::kSpread);
  ASSERT_TRUE(p.ok());
  // n/gcd(c,n): A: 10/gcd(5,10) = 2; B: 6/gcd(3,6) = 2 => 2 periods = 16.
  EXPECT_EQ(p->DataCycleLength(), 16u);
}

// The paper's Section 2.3 sizing example: 200 blocks from 10 files of 20
// blocks each can be spread so same-file blocks are at most 200/20 = 10
// apart.
TEST(FlatBuilderTest, PaperSpreadingExample200Blocks) {
  std::vector<FlatFileSpec> files;
  for (int i = 0; i < 10; ++i) {
    files.push_back({"F" + std::to_string(i), 20, 40, {}});
  }
  auto p = BuildFlatProgram(files, FlatLayout::kSpread);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->period(), 200u);
  for (FileIndex f = 0; f < 10; ++f) {
    EXPECT_LE(p->MaxGapOf(f), 10u) << "file " << f;
  }
}

TEST(FlatBuilderTest, SkewedSizesStillSpreadWell) {
  std::vector<FlatFileSpec> files{
      {"big", 12, 24, {}}, {"mid", 4, 8, {}}, {"tiny", 1, 2, {}}};
  auto p = BuildFlatProgram(files, FlatLayout::kSpread);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->period(), 17u);
  // The big file (12 of 17 slots) must appear at least every 3 slots.
  EXPECT_LE(p->MaxGapOf(0), 3u);
  // Every file appears.
  EXPECT_EQ(p->CountOf(2), 1u);
}

TEST(FlatBuilderTest, LatencyVectorsForwarded) {
  std::vector<FlatFileSpec> files{{"A", 2, 4, {5, 8}}, {"B", 1, 1, {4}}};
  auto p = BuildFlatProgram(files, FlatLayout::kSpread);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->files()[0].latency_slots, (std::vector<std::uint64_t>{5, 8}));
  // A: 2 of every 3 slots? Spread period 3: A A B or A B A. bc(2,[5,8]):
  // 2 per 5 and 3 per 8 — verify runs the exact check.
  EXPECT_TRUE(p->VerifyBroadcastConditions().ok());
}

}  // namespace
}  // namespace bdisk::broadcast
