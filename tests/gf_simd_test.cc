// Exhaustive conformance tests for every GF(2^8) kernel implementation the
// host supports, against the GF256::MulSlow oracle.
//
// Every implementation (generic table kernel, SSSE3, AVX2, NEON — whatever
// gf::Dispatch::Supported() reports) must be byte-identical to the scalar
// oracle for all 256 coefficients, at lengths that straddle every vector
// width and tail path, and at every src/dst misalignment in [0, 16). The
// oracle is materialized once as a 256x256 table whose every entry is
// asserted equal to GF256::MulSlow, then applied via lookups (building
// multi-KiB expected buffers through the bitwise MulSlow loop itself would
// dominate the test's runtime without adding coverage).
//
// A second suite checks the fused MatrixMulAccumulate against the unfused
// per-(dst, src) row loop on random matrices, and that every implementation
// reproduces ida::Dispersal's wire bytes exactly.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/random.h"
#include "gf/gf256.h"
#include "gf/gf_bulk.h"
#include "gf/gf_dispatch.h"
#include "gf/gf_kernels.h"
#include "gf/matrix.h"
#include "ida/dispersal.h"

namespace bdisk::gf {
namespace {

using internal::KernelTable;

// Lengths straddling the 8/16/32/64-byte inner loops and their tails, plus
// two multi-tile sizes (4096 is exactly one matrix tile, 4097 spills).
constexpr std::size_t kLengths[] = {0, 1, 15, 16, 17, 31, 32, 33, 4096, 4097};
constexpr std::size_t kMaxLength = 4097;
constexpr std::size_t kMaxOffset = 16;  // Misalignments 0..15.
constexpr std::size_t kCanary = 64;     // Guard bytes checked around dst.

const std::array<std::array<std::uint8_t, 256>, 256>& OracleTable() {
  static const auto kOracle = [] {
    std::array<std::array<std::uint8_t, 256>, 256> t{};
    for (unsigned c = 0; c < 256; ++c) {
      for (unsigned x = 0; x < 256; ++x) {
        t[c][x] = GF256::MulSlow(static_cast<std::uint8_t>(c),
                                 static_cast<std::uint8_t>(x));
      }
    }
    return t;
  }();
  return kOracle;
}

std::vector<std::uint8_t> RandomBytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.Uniform(256));
  return out;
}

TEST(GfSimdTest, OracleTableMatchesMulSlow) {
  const auto& oracle = OracleTable();
  for (unsigned c = 0; c < 256; ++c) {
    for (unsigned x = 0; x < 256; ++x) {
      ASSERT_EQ(oracle[c][x],
                GF256::MulSlow(static_cast<std::uint8_t>(c),
                               static_cast<std::uint8_t>(x)))
          << "c=" << c << " x=" << x;
    }
  }
}

TEST(GfSimdTest, DispatchReportsConsistentImplementations) {
  const auto& supported = Dispatch::Supported();
  ASSERT_FALSE(supported.empty());
  EXPECT_STREQ(supported.front()->name, "generic");
  for (const KernelTable* k : supported) {
    EXPECT_EQ(Dispatch::ByName(k->name), k);
  }
  EXPECT_EQ(Dispatch::ByName("no-such-impl"), nullptr);
  // The active implementation is always one of the supported set.
  bool active_supported = false;
  for (const KernelTable* k : supported) {
    if (k == &Dispatch::Active()) active_supported = true;
  }
  EXPECT_TRUE(active_supported) << Dispatch::ActiveName();
}

// Shared buffers for the conformance sweep. `src` and `dst` carry extra
// room so kernels can be invoked at every misalignment; `base` is the
// logical (offset-independent) initial dst content for accumulate calls.
struct Sweep {
  std::vector<std::uint8_t> src = RandomBytes(kMaxOffset + kMaxLength, 101);
  std::vector<std::uint8_t> base = RandomBytes(kMaxLength, 202);
  std::vector<std::uint8_t> dst =
      std::vector<std::uint8_t>(kMaxOffset + kMaxLength + kCanary, 0);
  // Expected product / accumulate bytes for the current (coeff, src_off).
  std::vector<std::uint8_t> exp = std::vector<std::uint8_t>(kMaxLength, 0);
  std::vector<std::uint8_t> acc_exp = std::vector<std::uint8_t>(kMaxLength, 0);
};

// Runs one (impl, coeff, len, src_off, dst_off) kernel call and checks the
// output bytes plus the canary region around the destination window.
// Returns false (after recording a gtest failure) on the first mismatch so
// the sweep can bail out instead of printing millions of errors.
template <typename Fn>
bool CheckCall(Sweep* s, const char* what, const char* impl, unsigned coeff,
               std::size_t len, std::size_t src_off, std::size_t dst_off,
               const std::uint8_t* expected, bool init_dst_with_base,
               Fn&& call) {
  std::uint8_t* const dst = s->dst.data() + dst_off;
  std::memset(s->dst.data(), 0x5C, s->dst.size());
  if (init_dst_with_base && len > 0) {
    std::memcpy(dst, s->base.data(), len);
  }
  call(dst, s->src.data() + src_off, static_cast<std::uint8_t>(coeff), len);
  const bool body_ok = len == 0 || std::memcmp(dst, expected, len) == 0;
  bool canary_ok = true;
  for (std::size_t i = 0; i < dst_off && canary_ok; ++i) {
    canary_ok = s->dst[i] == 0x5C;
  }
  for (std::size_t i = dst_off + len; i < dst_off + len + kCanary && canary_ok;
       ++i) {
    canary_ok = s->dst[i] == 0x5C;
  }
  EXPECT_TRUE(body_ok && canary_ok)
      << what << " impl=" << impl << " coeff=" << coeff << " len=" << len
      << " src_off=" << src_off << " dst_off=" << dst_off
      << (body_ok ? " (out-of-bounds write hit the canary)"
                  : " (output bytes differ from the MulSlow oracle)");
  return body_ok && canary_ok;
}

// The exhaustive sweep of the ISSUE: every supported implementation x all
// 256 coefficients x kLengths x src offsets 0-15 x dst offsets 0-15, for
// both MulRow and MulRowAccumulate.
TEST(GfSimdTest, MulKernelsMatchOracleExhaustively) {
  const auto& oracle = OracleTable();
  Sweep s;
  for (const KernelTable* k : Dispatch::Supported()) {
    for (unsigned coeff = 0; coeff < 256; ++coeff) {
      const auto& row = oracle[coeff];
      for (std::size_t src_off = 0; src_off < kMaxOffset; ++src_off) {
        for (std::size_t i = 0; i < kMaxLength; ++i) {
          s.exp[i] = row[s.src[src_off + i]];
          s.acc_exp[i] = static_cast<std::uint8_t>(s.base[i] ^ s.exp[i]);
        }
        for (std::size_t len : kLengths) {
          for (std::size_t dst_off = 0; dst_off < kMaxOffset; ++dst_off) {
            if (!CheckCall(&s, "MulRow", k->name, coeff, len, src_off, dst_off,
                           s.exp.data(), /*init_dst_with_base=*/false,
                           k->mul_row)) {
              return;
            }
            if (!CheckCall(&s, "MulRowAccumulate", k->name, coeff, len,
                           src_off, dst_off, s.acc_exp.data(),
                           /*init_dst_with_base=*/true,
                           k->mul_row_accumulate)) {
              return;
            }
          }
        }
      }
    }
  }
}

TEST(GfSimdTest, XorRowMatchesBytewiseXorAtEveryMisalignment) {
  Sweep s;
  for (const KernelTable* k : Dispatch::Supported()) {
    for (std::size_t src_off = 0; src_off < kMaxOffset; ++src_off) {
      for (std::size_t i = 0; i < kMaxLength; ++i) {
        s.acc_exp[i] = static_cast<std::uint8_t>(s.base[i] ^
                                                 s.src[src_off + i]);
      }
      for (std::size_t len : kLengths) {
        for (std::size_t dst_off = 0; dst_off < kMaxOffset; ++dst_off) {
          auto xor_call = [k](std::uint8_t* dst, const std::uint8_t* src,
                              std::uint8_t, std::size_t n) {
            k->xor_row(dst, src, n);
          };
          if (!CheckCall(&s, "XorRow", k->name, /*coeff=*/0, len, src_off,
                         dst_off, s.acc_exp.data(),
                         /*init_dst_with_base=*/true, xor_call)) {
            return;
          }
        }
      }
    }
  }
}

TEST(GfSimdTest, MulRowSupportsExactInPlaceAliasing) {
  const auto& oracle = OracleTable();
  const auto src = RandomBytes(333, 17);
  for (const KernelTable* k : Dispatch::Supported()) {
    for (unsigned c : {0u, 1u, 77u, 255u}) {
      auto buf = src;
      k->mul_row(buf.data(), buf.data(), static_cast<std::uint8_t>(c),
                 buf.size());
      for (std::size_t i = 0; i < buf.size(); ++i) {
        ASSERT_EQ(buf[i], oracle[c][src[i]])
            << "impl=" << k->name << " c=" << c << " i=" << i;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Fused matrix kernel.
// ---------------------------------------------------------------------------

// Unfused reference: n_dst * n_src independent row passes through the
// already-oracle-verified generic kernel.
void UnfusedReference(std::uint8_t* const* dsts, const std::uint8_t* const* srcs,
                      const std::uint8_t* const* coeffs, std::size_t n_dst,
                      std::size_t n_src, std::size_t block_size) {
  const KernelTable* generic = internal::GenericKernels();
  for (std::size_t i = 0; i < n_dst; ++i) {
    for (std::size_t j = 0; j < n_src; ++j) {
      generic->mul_row_accumulate(dsts[i], srcs[j], coeffs[i][j], block_size);
    }
  }
}

TEST(GfSimdTest, MatrixMulAccumulateMatchesUnfusedLoop) {
  Rng rng(4242);
  // Shapes cover single-row, tall, wide, and square cases; block sizes
  // cover sub-vector, tail-heavy, one-tile, and multi-tile ranges.
  const struct {
    std::size_t n_dst, n_src;
  } kShapes[] = {{1, 1}, {2, 3}, {8, 5}, {12, 12}};
  const std::size_t kBlockSizes[] = {0, 1, 16, 100, 1000, 4096, 4097, 16384};
  for (const auto& shape : kShapes) {
    for (std::size_t block : kBlockSizes) {
      // Random coefficients with 0 and 1 forced common (systematic dispersal
      // matrices are mostly identity rows, and both values take fast paths).
      std::vector<std::vector<std::uint8_t>> coeff_rows(shape.n_dst);
      std::vector<const std::uint8_t*> coeffs(shape.n_dst);
      for (std::size_t i = 0; i < shape.n_dst; ++i) {
        coeff_rows[i].resize(shape.n_src);
        for (auto& c : coeff_rows[i]) {
          const std::uint64_t pick = rng.Uniform(4);
          c = pick == 0 ? 0
              : pick == 1 ? 1
                          : static_cast<std::uint8_t>(rng.Uniform(256));
        }
        coeffs[i] = coeff_rows[i].data();
      }
      std::vector<std::vector<std::uint8_t>> src_blocks(shape.n_src);
      std::vector<const std::uint8_t*> srcs(shape.n_src);
      for (std::size_t j = 0; j < shape.n_src; ++j) {
        src_blocks[j] = RandomBytes(block, 1000 + 7 * j + block);
        srcs[j] = src_blocks[j].data();
      }
      const auto initial = RandomBytes(shape.n_dst * block, 9999 + block);

      std::vector<std::uint8_t> expected = initial;
      {
        std::vector<std::uint8_t*> dsts(shape.n_dst);
        for (std::size_t i = 0; i < shape.n_dst; ++i) {
          dsts[i] = expected.data() + i * block;
        }
        UnfusedReference(dsts.data(), srcs.data(), coeffs.data(), shape.n_dst,
                         shape.n_src, block);
      }

      for (const KernelTable* k : Dispatch::Supported()) {
        std::vector<std::uint8_t> actual = initial;
        std::vector<std::uint8_t*> dsts(shape.n_dst);
        for (std::size_t i = 0; i < shape.n_dst; ++i) {
          dsts[i] = actual.data() + i * block;
        }
        k->matrix_mul_accumulate(dsts.data(), srcs.data(), coeffs.data(),
                                 shape.n_dst, shape.n_src, block);
        ASSERT_EQ(actual, expected)
            << "impl=" << k->name << " n_dst=" << shape.n_dst
            << " n_src=" << shape.n_src << " block=" << block;
      }
    }
  }
}

// Every implementation must reproduce the engine's dispersal bytes exactly:
// run Dispersal::Disperse (which uses the active implementation), then
// recompute each payload with every supported implementation's fused kernel
// and compare. Combined with the CI matrix that reruns the whole suite per
// BDISK_GF_IMPL, this pins the wire format across implementations.
TEST(GfSimdTest, AllImplementationsProduceIdenticalDispersalBytes) {
  constexpr std::uint32_t kM = 5;
  constexpr std::uint32_t kN = 8;
  constexpr std::size_t kBlock = 4097;  // Odd: exercises every tail path.
  auto engine = ida::Dispersal::Create(kM, kN, kBlock);
  ASSERT_TRUE(engine.ok()) << engine.status().message();
  const auto file = RandomBytes(kM * kBlock, 31337);
  auto blocks = engine->Disperse(77, file);
  ASSERT_TRUE(blocks.ok()) << blocks.status().message();

  auto matrix = Matrix::SystematicCauchy(kN, kM);
  ASSERT_TRUE(matrix.ok());
  std::vector<const std::uint8_t*> srcs(kM);
  std::vector<const std::uint8_t*> coeffs(kN);
  for (std::uint32_t j = 0; j < kM; ++j) srcs[j] = file.data() + j * kBlock;
  for (std::uint32_t i = 0; i < kN; ++i) coeffs[i] = matrix->RowData(i);

  for (const KernelTable* k : Dispatch::Supported()) {
    std::vector<std::uint8_t> payloads(kN * kBlock, 0);
    std::vector<std::uint8_t*> dsts(kN);
    for (std::uint32_t i = 0; i < kN; ++i) {
      dsts[i] = payloads.data() + i * kBlock;
    }
    k->matrix_mul_accumulate(dsts.data(), srcs.data(), coeffs.data(), kN, kM,
                             kBlock);
    for (std::uint32_t i = 0; i < kN; ++i) {
      ASSERT_EQ(std::memcmp(dsts[i], (*blocks)[i].payload.data(), kBlock), 0)
          << "impl=" << k->name << " block=" << i;
    }
  }

  // And reconstruction from the last m blocks (all parity plus the trailing
  // data blocks) round-trips under the active implementation (the per-impl
  // rerun comes from the CI matrix).
  std::vector<ida::Block> subset(blocks->begin() + (kN - kM), blocks->end());
  auto rec = engine->Reconstruct(subset);
  ASSERT_TRUE(rec.ok()) << rec.status().message();
  EXPECT_EQ(*rec, file);
}

}  // namespace
}  // namespace bdisk::gf
