// Tests for the nice-conjunct optimizer against the paper's worked
// Examples 2-6 (Section 4.2), plus system-level conversion.

#include "algebra/optimizer.h"

#include <gtest/gtest.h>

#include "pinwheel/composite_scheduler.h"
#include "pinwheel/verifier.h"

namespace bdisk::algebra {
namespace {

Conversion MustConvert(const BroadcastCondition& bc) {
  auto conv = NiceConverter::Convert(bc);
  EXPECT_TRUE(conv.ok()) << conv.status();
  return *conv;
}

// Example 2: bc(5, [100,105,110,115,120]); lower bound 0.075; the paper
// selects TR1's pc(1, 13) with density 0.0769 (within 2.5%).
TEST(OptimizerTest, PaperExample2) {
  const Conversion conv = MustConvert({5, {100, 105, 110, 115, 120}});
  EXPECT_NEAR(conv.density_lower_bound, 0.075, 1e-9);
  EXPECT_LE(conv.best().density(), 1.0 / 13 + 1e-12);
  // The paper's achieved overhead: within 2.5% of the lower bound; our
  // optimizer may only improve on it.
  EXPECT_LE(conv.OverheadRatio(), 0.0769 / 0.075 + 1e-3);
}

// Example 3: bc(6, [105,110]); TR1 gives 0.0667, TR2 gives 0.0662 and is
// selected (within 4.1% of the 0.0636 lower bound).
TEST(OptimizerTest, PaperExample3) {
  const Conversion conv = MustConvert({6, {105, 110}});
  EXPECT_NEAR(conv.density_lower_bound, 7.0 / 110, 1e-9);
  EXPECT_LE(conv.best().density(), 6.0 / 105 + 1.0 / 110 + 1e-12);
  // TR1 and TR2 must both be among the candidates with the paper's values.
  bool saw_tr1 = false;
  bool saw_tr2 = false;
  for (const ConversionCandidate& c : conv.candidates) {
    if (c.strategy == "TR1") {
      saw_tr1 = true;
      EXPECT_NEAR(c.density(), 1.0 / 15, 1e-12);
    }
    if (c.strategy == "TR2") {
      saw_tr2 = true;
      EXPECT_NEAR(c.density(), 6.0 / 105 + 1.0 / 110, 1e-12);
    }
  }
  EXPECT_TRUE(saw_tr1);
  EXPECT_TRUE(saw_tr2);
}

// Example 4: bc(4, [8,9]); TR1 = 1.0, TR2 = 0.6111, and the R1+R5
// manipulation reaches pc(1,2) ∧ pc'(1,10) = 0.6000 (within 4% of 0.5556).
TEST(OptimizerTest, PaperExample4) {
  const Conversion conv = MustConvert({4, {8, 9}});
  EXPECT_NEAR(conv.density_lower_bound, 5.0 / 9, 1e-9);
  EXPECT_LE(conv.best().density(), 0.6 + 1e-12);
  EXPECT_GE(conv.best().density(), conv.density_lower_bound - 1e-12);
}

// Example 5: bc(2, [5,6,6]); the paper reaches pc(2,3), which is optimal
// (density equals the lower bound 2/3).
TEST(OptimizerTest, PaperExample5) {
  const Conversion conv = MustConvert({2, {5, 6, 6}});
  EXPECT_NEAR(conv.density_lower_bound, 2.0 / 3, 1e-9);
  EXPECT_NEAR(conv.best().density(), 2.0 / 3, 1e-9);
  EXPECT_NEAR(conv.OverheadRatio(), 1.0, 1e-9);
}

// Example 6: bc(1, [2,3]) ≡ pc(1,2) ∧ pc(2,3); pc(2,3) alone (0.6667) is
// optimal, beating TR2's 0.8333.
TEST(OptimizerTest, PaperExample6) {
  const Conversion conv = MustConvert({1, {2, 3}});
  EXPECT_NEAR(conv.best().density(), 2.0 / 3, 1e-9);
  // TR2's direct candidate is strictly worse, as the paper notes.
  for (const ConversionCandidate& c : conv.candidates) {
    if (c.strategy == "TR2") {
      EXPECT_NEAR(c.density(), 1.0 / 2 + 1.0 / 3, 1e-12);
    }
  }
}

// Regular files (all latencies equal) should reduce to a single condition
// with no helpers and no density overhead beyond the condition itself.
TEST(OptimizerTest, RegularFileIsSingleCondition) {
  const Conversion conv = MustConvert({3, {12, 12, 12}});
  // Levels (3,12), (4,12), (5,12): dominated by (5,12). Best possible
  // density: 5/12.
  EXPECT_NEAR(conv.density_lower_bound, 5.0 / 12, 1e-9);
  EXPECT_NEAR(conv.best().density(), 5.0 / 12, 1e-9);
  EXPECT_EQ(conv.best().conjunct.conditions.size(), 1u);
}

TEST(OptimizerTest, InvalidConditionRejected) {
  BroadcastCondition bad{0, {5}};
  EXPECT_FALSE(NiceConverter::Convert(bad).ok());
}

// Every candidate the optimizer emits must *provably* imply every level of
// the original condition (sound conversions only).
TEST(OptimizerTest, AllCandidatesCoverAllLevels) {
  const std::vector<BroadcastCondition> cases = {
      {4, {8, 9}},       {2, {5, 6, 6}},   {1, {2, 3}},
      {6, {105, 110}},   {3, {12, 15, 20}}, {5, {25, 26, 30, 40}},
      {2, {4, 9}},       {1, {3}},          {7, {21, 22}},
  };
  for (const BroadcastCondition& bc : cases) {
    const Conversion conv = MustConvert(bc);
    const auto levels = bc.ToPinwheelConjunct();
    for (const ConversionCandidate& cand : conv.candidates) {
      std::vector<PinwheelCondition> raw;
      for (const MappedCondition& mc : cand.conjunct.conditions) {
        raw.push_back(mc.condition);
      }
      for (const PinwheelCondition& level : levels) {
        EXPECT_GE(ConjunctGuaranteedCount(raw, level.b), level.a)
            << bc.ToString() << " candidate " << cand.strategy << " level pc("
            << level.a << ", " << level.b << ")";
      }
    }
    // And the best never undercuts the density lower bound.
    EXPECT_GE(conv.best().density(), conv.density_lower_bound - 1e-9);
  }
}

// End-to-end: conversions are schedulable and the resulting schedule,
// with virtual tasks merged per map(), satisfies every bc level.
TEST(OptimizerTest, ConvertedSystemSchedulesAndSatisfiesBc) {
  const std::vector<BroadcastCondition> conditions = {
      {2, {16, 20}}, {1, {8, 12}}, {3, {60, 70, 80}}};
  auto system = ConvertSystem(conditions);
  ASSERT_TRUE(system.ok()) << system.status();
  EXPECT_EQ(system->conversions.size(), 3u);
  EXPECT_EQ(system->virtual_to_file.size(), system->instance.size());

  pinwheel::CompositeScheduler scheduler;
  auto schedule = scheduler.BuildSchedule(system->instance);
  ASSERT_TRUE(schedule.ok()) << schedule.status();

  // Merge virtual tasks to files and verify bc levels directly.
  std::vector<pinwheel::TaskId> merged(schedule->period());
  for (std::uint64_t t = 0; t < schedule->period(); ++t) {
    const pinwheel::TaskId v = schedule->slots()[t];
    merged[t] = v == pinwheel::Schedule::kIdle
                    ? pinwheel::Schedule::kIdle
                    : system->virtual_to_file[v];
  }
  auto merged_schedule = pinwheel::Schedule::FromCycle(std::move(merged));
  ASSERT_TRUE(merged_schedule.ok());
  for (std::size_t f = 0; f < conditions.size(); ++f) {
    for (std::size_t j = 0; j < conditions[f].d.size(); ++j) {
      EXPECT_GE(pinwheel::Verifier::MinWindowCount(
                    *merged_schedule, static_cast<pinwheel::TaskId>(f),
                    conditions[f].d[j]),
                conditions[f].m + j)
          << "file " << f << " level " << j;
    }
  }
}

TEST(OptimizerTest, SystemTotalDensity) {
  const std::vector<BroadcastCondition> conditions = {{1, {4}}, {1, {8}}};
  auto system = ConvertSystem(conditions);
  ASSERT_TRUE(system.ok());
  EXPECT_NEAR(system->total_density(), 0.25 + 0.125, 1e-12);
}

TEST(OptimizerTest, EmptySystemRejected) {
  EXPECT_FALSE(ConvertSystem({}).ok());
}

}  // namespace
}  // namespace bdisk::algebra
