// Property tests for the arrival processes (sim/arrivals.h).
//
// Statistical checks run at fixed seeds with tolerances sized for the
// sample counts used, so they are deterministic — a failure means the
// construction changed, not that the dice came up bad. The determinism
// contract (pure per-client draws, random access, shard invariance) is
// checked exactly, no tolerances.

#include "sim/arrivals.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace bdisk::sim {
namespace {

std::vector<double> SampleTimes(const ArrivalProcess& process,
                                std::uint64_t count) {
  std::vector<double> times(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    times[i] = process.ArrivalTimeOf(i);
  }
  return times;
}

// ---------------------------------------------------------------------------
// Poisson: sorted inter-arrival gaps must look exponential.

// Kolmogorov-Smirnov distance between the sorted sample and Exp(mean).
double KsDistanceToExponential(std::vector<double> sample, double mean) {
  std::sort(sample.begin(), sample.end());
  const double n = static_cast<double>(sample.size());
  double ks = 0.0;
  for (std::size_t i = 0; i < sample.size(); ++i) {
    const double cdf = 1.0 - std::exp(-sample[i] / mean);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    ks = std::max(ks, std::max(std::abs(cdf - lo), std::abs(cdf - hi)));
  }
  return ks;
}

TEST(PoissonArrivalsTest, InterArrivalGapsAreExponential) {
  constexpr std::uint64_t kClients = 20000;
  constexpr std::uint64_t kWindow = 100000;
  const PoissonArrivals process(kWindow, /*seed=*/7);

  std::vector<double> times = SampleTimes(process, kClients);
  for (const double t : times) {
    ASSERT_GE(t, 0.0);
    ASSERT_LT(t, static_cast<double>(kWindow));
  }
  std::sort(times.begin(), times.end());
  std::vector<double> gaps(times.size() - 1);
  for (std::size_t i = 0; i + 1 < times.size(); ++i) {
    gaps[i] = times[i + 1] - times[i];
  }

  // Conditional uniformity: gaps of N uniforms on [0, W) are exchangeable
  // with mean W/(N+1) and, for large N, near-exponential.
  const double expected_mean =
      static_cast<double>(kWindow) / static_cast<double>(kClients + 1);
  double sum = 0.0;
  for (const double g : gaps) sum += g;
  const double mean = sum / static_cast<double>(gaps.size());
  EXPECT_NEAR(mean / expected_mean, 1.0, 0.02);

  // Exponential: variance == mean^2. Check the ratio.
  double var = 0.0;
  for (const double g : gaps) var += (g - mean) * (g - mean);
  var /= static_cast<double>(gaps.size() - 1);
  EXPECT_NEAR(var / (mean * mean), 1.0, 0.05);

  // KS distance to Exp(expected_mean): far below any divergence a broken
  // construction (e.g. accidentally sequential or lattice draws) produces.
  EXPECT_LT(KsDistanceToExponential(gaps, expected_mean), 0.02);
}

// ---------------------------------------------------------------------------
// Flash crowd: the burst window carries the configured extra mass.

TEST(FlashCrowdArrivalsTest, BurstWindowCarriesConfiguredMass) {
  constexpr std::uint64_t kClients = 50000;
  FlashCrowdArrivals::Params params;
  params.window_slots = 10000;
  params.burst_start = 4000;
  params.burst_length = 500;
  params.burst_fraction = 0.4;
  const FlashCrowdArrivals process(params, /*seed=*/21);

  std::uint64_t in_burst = 0;
  for (std::uint64_t i = 0; i < kClients; ++i) {
    const double t = process.ArrivalTimeOf(i);
    ASSERT_GE(t, 0.0);
    ASSERT_LT(t, static_cast<double>(params.window_slots));
    if (t >= static_cast<double>(params.burst_start) &&
        t < static_cast<double>(params.burst_start + params.burst_length)) {
      ++in_burst;
    }
  }

  // Burst members land inside by construction; baseline clients hit the
  // window with probability burst_length / window.
  const double baseline_hit = static_cast<double>(params.burst_length) /
                              static_cast<double>(params.window_slots);
  const double expected =
      static_cast<double>(kClients) *
      (params.burst_fraction + (1.0 - params.burst_fraction) * baseline_hit);
  EXPECT_NEAR(static_cast<double>(in_burst) / expected, 1.0, 0.03);
}

// ---------------------------------------------------------------------------
// Diurnal: empirical per-bucket mass follows Lambda, total is exact.

TEST(DiurnalArrivalsTest, RateIntegratesToConfiguredTotal) {
  constexpr std::uint64_t kClients = 100000;
  DiurnalArrivals::Params params;
  params.window_slots = 20000;
  params.cycles = 2;
  params.amplitude = 0.8;
  const DiurnalArrivals process(params, /*seed=*/5);

  // Lambda spans [0, window]: the density normalizes exactly, so *every*
  // client lands in the window — the realized total is the configured
  // total, exactly.
  EXPECT_NEAR(process.CumulativeRate(0.0), 0.0, 1e-9);
  EXPECT_NEAR(process.CumulativeRate(static_cast<double>(params.window_slots)),
              static_cast<double>(params.window_slots), 1e-6);

  constexpr std::size_t kBuckets = 20;
  std::vector<std::uint64_t> counts(kBuckets, 0);
  const double bucket_width =
      static_cast<double>(params.window_slots) / kBuckets;
  for (std::uint64_t i = 0; i < kClients; ++i) {
    const double t = process.ArrivalTimeOf(i);
    ASSERT_GE(t, 0.0);
    ASSERT_LT(t, static_cast<double>(params.window_slots));
    ++counts[std::min(kBuckets - 1,
                      static_cast<std::size_t>(t / bucket_width))];
  }

  // Each bucket's mass tracks N * (Lambda(b+1) - Lambda(b)) / window. With
  // amplitude 0.8 the trough bucket still expects ~1000 clients, so a 10%
  // relative tolerance is comfortable at this seed.
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const double lo = process.CumulativeRate(b * bucket_width);
    const double hi = process.CumulativeRate((b + 1) * bucket_width);
    const double expected = static_cast<double>(kClients) * (hi - lo) /
                            static_cast<double>(params.window_slots);
    EXPECT_NEAR(static_cast<double>(counts[b]) / expected, 1.0, 0.10)
        << "bucket " << b;
  }

  // The modulation is real: peak bucket clearly above trough bucket.
  const auto [min_it, max_it] =
      std::minmax_element(counts.begin(), counts.end());
  EXPECT_GT(static_cast<double>(*max_it), 2.0 * static_cast<double>(*min_it));
}

// ---------------------------------------------------------------------------
// Determinism contract: random access, shard invariance, seed identity.

TEST(ArrivalDeterminismTest, RandomAccessEqualsSequentialAccess) {
  const PoissonArrivals poisson(5000, 11);
  FlashCrowdArrivals::Params fc{5000, 1000, 200, 0.3};
  const FlashCrowdArrivals flash(fc, 11);
  DiurnalArrivals::Params di{5000, 1, 0.5};
  const DiurnalArrivals diurnal(di, 11);
  const ArrivalProcess* processes[] = {&poisson, &flash, &diurnal};

  for (const ArrivalProcess* process : processes) {
    // Sequential pass...
    std::vector<double> sequential = SampleTimes(*process, 1000);
    // ...must match isolated random-access draws, in any order.
    for (const std::uint64_t i :
         {std::uint64_t{999}, std::uint64_t{0}, std::uint64_t{500},
          std::uint64_t{7}, std::uint64_t{123}}) {
      EXPECT_EQ(process->ArrivalTimeOf(i), sequential[i])
          << process->Describe() << " client " << i;
    }
  }
}

TEST(ArrivalDeterminismTest, ShardPartitioningObservesIdenticalTrace) {
  constexpr std::uint64_t kClients = 4096;
  const PoissonArrivals process(10000, 33);
  const std::vector<double> trace = SampleTimes(process, kClients);

  // Any shard partition reads the same per-client times: walk the fleet in
  // 1-, 3-, and 7-shard interleavings and compare every draw.
  for (const std::uint64_t shards : {1ull, 3ull, 7ull}) {
    for (std::uint64_t s = 0; s < shards; ++s) {
      for (std::uint64_t i = s; i < kClients; i += shards) {
        ASSERT_EQ(process.ArrivalTimeOf(i), trace[i])
            << shards << " shards, client " << i;
      }
    }
  }
}

TEST(ArrivalDeterminismTest, SeedsSeparateAndReproduce) {
  const PoissonArrivals a1(10000, 1), a2(10000, 1), b(10000, 2);
  std::uint64_t diverged = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(a1.ArrivalTimeOf(i), a2.ArrivalTimeOf(i)) << i;
    if (a1.ArrivalTimeOf(i) != b.ArrivalTimeOf(i)) ++diverged;
  }
  // Different seeds give an (essentially) disjoint trace.
  EXPECT_GT(diverged, 990u);
}

// Family separation: the three processes with the same seed must not alias
// each other's streams (the family tag enters the seed mix).
TEST(ArrivalDeterminismTest, ProcessFamiliesDoNotAlias) {
  const PoissonArrivals poisson(5000, 11);
  FlashCrowdArrivals::Params fc{5000, 0, 5000, 0.0};
  const FlashCrowdArrivals flash(fc, 11);
  std::uint64_t diverged = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    if (poisson.ArrivalTimeOf(i) != flash.ArrivalTimeOf(i)) ++diverged;
  }
  EXPECT_GT(diverged, 990u);
}

TEST(ArrivalSlotTest, SlotIsFloorAndInWindow) {
  const PoissonArrivals process(777, 3);
  for (std::uint64_t i = 0; i < 500; ++i) {
    const std::uint64_t slot = process.ArrivalSlotOf(i);
    EXPECT_EQ(slot,
              static_cast<std::uint64_t>(process.ArrivalTimeOf(i)));
    EXPECT_LT(slot, 777u);
  }
}

}  // namespace
}  // namespace bdisk::sim
