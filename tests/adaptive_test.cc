// Tests for the adaptive subsystem: demand estimation, demand-driven
// program optimization (determinism, canonical order, delay-analysis
// refinement), hot-swap coordination, and the closed loop beating a static
// program under demand drift.

#include <gtest/gtest.h>

#include <numeric>

#include "adaptive/adaptive_loop.h"
#include "adaptive/demand_estimator.h"
#include "adaptive/hot_swap.h"
#include "adaptive/program_optimizer.h"
#include "bdisk/flat_builder.h"
#include "bdisk/multi_disk.h"
#include "common/zipf.h"
#include "runtime/thread_pool.h"

namespace bdisk::adaptive {
namespace {

using broadcast::BroadcastProgram;
using broadcast::FileIndex;
using broadcast::FlatFileSpec;

std::vector<FlatFileSpec> Population() {
  std::vector<FlatFileSpec> files;
  for (int i = 0; i < 8; ++i) {
    files.push_back({"F" + std::to_string(i), 3, 5, {}});
  }
  return files;
}

TEST(DemandEstimatorTest, SharesTrackObservations) {
  DemandEstimator estimator(4, 0.5);
  estimator.Observe(0, 300);
  estimator.Observe(1, 100);
  const std::vector<double> shares = estimator.Shares();
  EXPECT_NEAR(std::accumulate(shares.begin(), shares.end(), 0.0), 1.0,
              1e-12);
  EXPECT_GT(shares[0], shares[1]);
  EXPECT_GT(shares[1], shares[2]);
  EXPECT_GT(shares[2], 0.0);  // Uniform floor: never zero.
  EXPECT_EQ(estimator.total_observed(), 400u);
}

TEST(DemandEstimatorTest, DecayForgetsOldIntervals) {
  DemandEstimator estimator(2, 0.25);
  estimator.Observe(0, 1000);
  estimator.FoldInterval();
  // Four quiet intervals, then the other file takes over.
  for (int i = 0; i < 4; ++i) estimator.FoldInterval();
  estimator.Observe(1, 100);
  const std::vector<double> shares = estimator.Shares();
  // 1000 * 0.25^5 < 1 << 100: file 1 dominates despite the smaller burst.
  EXPECT_GT(shares[1], shares[0]);
}

TEST(ProgramOptimizerTest, SkewedDemandSpeedsUpHotFiles) {
  auto optimizer = ProgramOptimizer::Create(Population());
  ASSERT_TRUE(optimizer.ok()) << optimizer.status();
  const ZipfDistribution zipf(8, 1.2);
  auto result = optimizer->Optimize(zipf.Probabilities());
  ASSERT_TRUE(result.ok()) << result.status();
  const BroadcastProgram& p = result->program;
  // Canonical order and geometry preserved (the hot-swap requirement).
  ASSERT_EQ(p.file_count(), 8u);
  for (FileIndex f = 0; f < 8; ++f) {
    EXPECT_EQ(p.files()[f].name, "F" + std::to_string(f));
    EXPECT_EQ(p.files()[f].m, 3u);
    EXPECT_EQ(p.files()[f].n, 5u);
  }
  // The hottest file is broadcast strictly more often per period than the
  // coldest, and its mean retrieval latency is lower.
  const double hot_rate = static_cast<double>(p.CountOf(0)) /
                          static_cast<double>(p.period());
  const double cold_rate = static_cast<double>(p.CountOf(7)) /
                           static_cast<double>(p.period());
  EXPECT_GT(hot_rate, cold_rate);
  EXPECT_LT(broadcast::MeanRetrievalLatency(p, 0),
            broadcast::MeanRetrievalLatency(p, 7));
  EXPECT_GT(result->class_count, 1u);
}

TEST(ProgramOptimizerTest, UniformDemandPrefersFlat) {
  auto optimizer = ProgramOptimizer::Create(Population());
  ASSERT_TRUE(optimizer.ok());
  const std::vector<double> uniform(8, 1.0 / 8.0);
  auto result = optimizer->Optimize(uniform);
  ASSERT_TRUE(result.ok()) << result.status();
  // Every file ends up with the same per-period transmission count.
  const BroadcastProgram& p = result->program;
  for (FileIndex f = 1; f < 8; ++f) {
    EXPECT_EQ(p.CountOf(f), p.CountOf(0));
  }
}

TEST(ProgramOptimizerTest, ParallelOptimizeIsBitIdentical) {
  auto optimizer = ProgramOptimizer::Create(Population());
  ASSERT_TRUE(optimizer.ok());
  const ZipfDistribution zipf(8, 0.95);
  auto serial = optimizer->Optimize(zipf.Probabilities());
  ASSERT_TRUE(serial.ok()) << serial.status();
  runtime::ThreadPool pool(4);
  auto parallel = optimizer->Optimize(zipf.Probabilities(), &pool);
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  EXPECT_EQ(serial->candidate_index, parallel->candidate_index);
  EXPECT_EQ(serial->program.slots(), parallel->program.slots());
  EXPECT_EQ(serial->score.expected_mean_delay,
            parallel->score.expected_mean_delay);
  EXPECT_EQ(serial->score.worst_case_latency,
            parallel->score.worst_case_latency);
}

TEST(ProgramOptimizerTest, WorstCaseCapRefinesSelection) {
  auto unconstrained = ProgramOptimizer::Create(Population());
  ASSERT_TRUE(unconstrained.ok());
  const ZipfDistribution zipf(8, 1.2);
  auto best = unconstrained->Optimize(zipf.Probabilities());
  ASSERT_TRUE(best.ok());

  // Capping below the unconstrained winner's worst case forces a different
  // (flatter) candidate or an Infeasible verdict — never a cap violation.
  OptimizerOptions capped_options;
  capped_options.worst_case_cap_slots = best->score.worst_case_latency - 1;
  auto capped = ProgramOptimizer::Create(Population(), capped_options);
  ASSERT_TRUE(capped.ok());
  auto refined = capped->Optimize(zipf.Probabilities());
  if (refined.ok()) {
    EXPECT_LE(refined->score.worst_case_latency,
              capped_options.worst_case_cap_slots);
    EXPECT_GE(refined->score.expected_mean_delay,
              best->score.expected_mean_delay);
  } else {
    EXPECT_TRUE(refined.status().IsInfeasible());
  }
}

TEST(ProgramOptimizerTest, RejectsMalformedInputs) {
  EXPECT_FALSE(ProgramOptimizer::Create({}).ok());
  EXPECT_FALSE(
      ProgramOptimizer::Create({{"a", 2, 1, {}}}).ok());  // n < m.
  EXPECT_FALSE(
      ProgramOptimizer::Create({{"a", 1, 1, {}}, {"a", 1, 1, {}}}).ok());
  auto optimizer = ProgramOptimizer::Create(Population());
  ASSERT_TRUE(optimizer.ok());
  EXPECT_FALSE(optimizer->Optimize({0.5, 0.5}).ok());  // Wrong arity.
}

TEST(HotSwapCoordinatorTest, AlignsSwapsToPeriodBoundaries) {
  auto initial = broadcast::BuildFlatProgram(Population(),
                                             broadcast::FlatLayout::kSpread);
  ASSERT_TRUE(initial.ok());
  const std::uint64_t period = initial->period();
  HotSwapCoordinator coordinator(*initial);

  auto next = broadcast::BuildFlatProgram(Population(),
                                          broadcast::FlatLayout::kContiguous);
  ASSERT_TRUE(next.ok());
  auto swap = coordinator.ScheduleSwap(*next, period + 1);
  ASSERT_TRUE(swap.ok()) << swap.status();
  EXPECT_EQ(*swap, 2 * period);
  EXPECT_EQ(coordinator.epoch_count(), 2u);

  // A swap "now" (not_before inside the current epoch) lands on the next
  // boundary of the new current program, strictly after its start.
  auto again = coordinator.ScheduleSwap(*initial, 2 * period);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 2 * period + next->period());
}

TEST(HotSwapCoordinatorTest, RejectsGeometryChanges) {
  auto initial = broadcast::BuildFlatProgram(Population(),
                                             broadcast::FlatLayout::kSpread);
  ASSERT_TRUE(initial.ok());
  HotSwapCoordinator coordinator(*initial);
  auto bigger = Population();
  bigger.push_back({"extra", 1, 1, {}});
  auto next = broadcast::BuildFlatProgram(bigger,
                                          broadcast::FlatLayout::kSpread);
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(coordinator.ScheduleSwap(*next, 0).ok());
  EXPECT_EQ(coordinator.epoch_count(), 1u);  // Timeline unchanged.
}

TEST(AdaptiveLoopTest, ControllerSwapsOnDemandFlip) {
  const auto files = Population();
  const ZipfDistribution zipf(files.size(), 1.0);
  auto optimizer = ProgramOptimizer::Create(files);
  ASSERT_TRUE(optimizer.ok());
  auto initial = optimizer->Optimize(zipf.Probabilities());
  ASSERT_TRUE(initial.ok());

  auto controller = AdaptiveController::Create(files, initial->program, {});
  ASSERT_TRUE(controller.ok()) << controller.status();

  // Steady pre-flip demand: no swap (the incumbent is already optimal).
  std::vector<std::uint64_t> preflip(files.size(), 0);
  for (std::size_t f = 0; f < files.size(); ++f) {
    preflip[f] = static_cast<std::uint64_t>(10000 * zipf.ProbabilityOf(f));
  }
  auto swapped = controller->EndInterval(preflip, 1000);
  ASSERT_TRUE(swapped.ok()) << swapped.status();
  EXPECT_FALSE(*swapped);

  // Flipped demand: the controller must re-optimize and swap.
  std::vector<std::uint64_t> flipped(preflip.rbegin(), preflip.rend());
  bool saw_swap = false;
  std::uint64_t end = 2000;
  for (int interval = 0; interval < 4 && !saw_swap; ++interval) {
    auto result = controller->EndInterval(flipped, end);
    ASSERT_TRUE(result.ok()) << result.status();
    saw_swap = *result;
    end += 1000;
  }
  EXPECT_TRUE(saw_swap);
  EXPECT_EQ(controller->swap_count(), 1u);
  // The post-swap program serves the flipped demand better than the
  // incumbent did.
  const BroadcastProgram& post =
      controller->schedule().epochs().back().program;
  EXPECT_GT(post.CountOf(static_cast<FileIndex>(files.size() - 1)),
            post.CountOf(0));
}

// The acceptance criterion: under a mid-run demand flip, the adaptive
// timeline's mean retrieval delay beats the static program's.
TEST(AdaptiveLoopTest, AdaptiveBeatsStaticUnderDrift) {
  DriftingZipfWorkload workload;
  workload.requests = 6000;
  workload.theta = 1.1;
  workload.arrival_horizon = 30000;
  workload.flip_slot = 15000;
  workload.seed = 9;

  auto result = RunAdaptiveExperiment(Population(), workload,
                                      /*interval_slots=*/3000, {},
                                      /*loss_probability=*/0.02,
                                      /*fault_seed=*/41);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GE(result->swaps, 1u);
  const double static_mean = result->static_metrics.OverallMeanLatency();
  const double adaptive_mean = result->adaptive_metrics.OverallMeanLatency();
  EXPECT_LT(adaptive_mean, static_mean);
  // Every request completes under both timelines (horizon is generous;
  // incomplete retrievals count into the miss rate).
  EXPECT_EQ(result->static_metrics.TotalAttempts(), workload.requests);
  EXPECT_EQ(result->static_metrics.OverallMissRate(), 0.0);
  EXPECT_EQ(result->adaptive_metrics.OverallMissRate(), 0.0);
}

// Determinism: the whole experiment is bit-identical with and without a
// thread pool.
TEST(AdaptiveLoopTest, ExperimentIsThreadCountInvariant) {
  DriftingZipfWorkload workload;
  workload.requests = 1500;
  workload.arrival_horizon = 12000;
  workload.flip_slot = 6000;

  auto serial = RunAdaptiveExperiment(Population(), workload, 2000, {},
                                      0.05, 7);
  ASSERT_TRUE(serial.ok()) << serial.status();
  runtime::ThreadPool pool(4);
  auto parallel = RunAdaptiveExperiment(Population(), workload, 2000, {},
                                        0.05, 7, &pool);
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  EXPECT_EQ(serial->swaps, parallel->swaps);
  ASSERT_EQ(serial->schedule.epoch_count(), parallel->schedule.epoch_count());
  for (std::size_t e = 0; e < serial->schedule.epoch_count(); ++e) {
    EXPECT_EQ(serial->schedule.epochs()[e].start_slot,
              parallel->schedule.epochs()[e].start_slot);
    EXPECT_EQ(serial->schedule.epochs()[e].program.slots(),
              parallel->schedule.epochs()[e].program.slots());
  }
  EXPECT_EQ(serial->adaptive_metrics.OverallMeanLatency(),
            parallel->adaptive_metrics.OverallMeanLatency());
  EXPECT_EQ(serial->static_metrics.OverallMeanLatency(),
            parallel->static_metrics.OverallMeanLatency());
}

}  // namespace
}  // namespace bdisk::adaptive
