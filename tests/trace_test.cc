// Trace-plane suite (obs/trace.h + sim/trace_walk.h): span capture,
// flight recording, and Chrome trace-event export.
//
// The load-bearing claims pinned here:
//
//  * the rendered Chrome trace is byte-identical across the slot and
//    event engines, serial and sharded, at any thread count — spans are
//    built post hoc from (schedule, fault trace, request), so the engines
//    cannot disagree structurally, and shard sinks merge in shard order;
//  * counter sampling selects exactly the requests with
//    g % sample_every == 0, independent of execution order;
//  * anomaly triggers (deadline miss, undecodable, threshold stall) force
//    a span with sampling off, and each span's causal chain accounts for
//    its own summary numbers event by event: every lost/corrupt slot of a
//    stall victim lies inside the span, errors_observed equals the faulty
//    transmissions heard, and an undecodable span ends with "incomplete";
//  * flight-recorder retention (last K spans dumped ahead of each
//    anomaly) survives sharded capture byte-identically;
//  * RunAdaptiveExperiment's adaptive sink carries one swap-decision span
//    per controller interval, with `completed` matching the swap count;
//  * the rendered document parses as JSON with the documented envelope.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "adaptive/adaptive_loop.h"
#include "bdisk/flat_builder.h"
#include "faults/channel_spec.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "runtime/thread_pool.h"
#include "sim/simulation.h"

namespace bdisk::obs {
namespace {

unsigned PoolWidth() {
  const char* env = std::getenv("BDISK_EQUIV_THREADS");
  if (env == nullptr) return 3;
  const unsigned threads =
      static_cast<unsigned>(std::strtoul(env, nullptr, 10));
  return threads == 0 ? 3 : threads;
}

broadcast::BroadcastProgram BuildTestProgram(
    const std::vector<std::uint64_t>& latencies = {}) {
  std::vector<broadcast::FlatFileSpec> files;
  for (int i = 0; i < 4; ++i) {
    files.push_back({"F" + std::to_string(i), 4, 8, latencies});
  }
  auto p = broadcast::BuildFlatProgram(files, broadcast::FlatLayout::kSpread);
  EXPECT_TRUE(p.ok()) << p.status();
  return *p;
}

constexpr std::uint64_t kHorizon = 2048;
constexpr std::uint64_t kRequestsPerFile = 64;

sim::WorkloadConfig TestWorkload() {
  sim::WorkloadConfig config;
  config.requests_per_file = kRequestsPerFile;
  config.seed = 99;
  return config;
}

/// Runs the workload through the chosen engine and returns the captured
/// sink (by value; TraceSink is move-only through Merge but copyable).
TraceSink CaptureFor(const sim::Simulator& simulator, bool evented,
                     runtime::ThreadPool* pool, const TraceOptions& options,
                     const sim::WorkloadConfig& config) {
  TraceSink sink(options);
  auto metrics = evented
                     ? simulator.RunWorkloadEvented(config, pool, nullptr,
                                                    &sink)
                     : simulator.RunWorkload(config, pool, nullptr, &sink);
  EXPECT_TRUE(metrics.ok()) << metrics.status();
  return sink;
}

std::string RenderFor(const sim::Simulator& simulator, bool evented,
                      runtime::ThreadPool* pool,
                      const TraceOptions& options) {
  const TraceSink sink =
      CaptureFor(simulator, evented, pool, options, TestWorkload());
  return RenderChromeTrace({{&sink, "workload"}});
}

// Counts `kind` events in the span.
std::uint64_t CountEvents(const TraceSpan& span, TraceEventKind kind) {
  std::uint64_t n = 0;
  for (const TraceEvent& e : span.events) n += e.kind == kind ? 1 : 0;
  return n;
}

// ---------------------------------------------------------------------------
// Byte-identity across engines and thread counts.
// ---------------------------------------------------------------------------

TEST(TraceTest, ChromeTraceByteIdenticalAcrossEnginesAndPools) {
  const auto program = BuildTestProgram();
  auto channel = faults::ParseChannelSpec("gilbert:pgb=0.05,pbg=0.2,seed=7");
  ASSERT_TRUE(channel.ok()) << channel.status();
  const sim::Simulator simulator(program, **channel, kHorizon);

  TraceOptions options;
  options.sample_every = 8;
  options.stall_threshold = 4;

  const std::string slot_serial =
      RenderFor(simulator, false, nullptr, options);
  ASSERT_FALSE(slot_serial.empty());
  EXPECT_EQ(slot_serial, RenderFor(simulator, true, nullptr, options))
      << "event-serial trace differs from slot-serial";
  runtime::ThreadPool pool(PoolWidth());
  EXPECT_EQ(slot_serial, RenderFor(simulator, false, &pool, options))
      << "slot-pooled trace differs from slot-serial";
  EXPECT_EQ(slot_serial, RenderFor(simulator, true, &pool, options))
      << "event-pooled (" << PoolWidth()
      << " threads) trace differs from slot-serial";
}

// ---------------------------------------------------------------------------
// Counter sampling: the traced set is exactly the multiples.
// ---------------------------------------------------------------------------

TEST(TraceTest, SampledSetIsExactlyTheCounterMultiples) {
  const auto program = BuildTestProgram();
  auto channel = faults::ParseChannelSpec("lossless");
  ASSERT_TRUE(channel.ok()) << channel.status();
  const sim::Simulator simulator(program, **channel, kHorizon);

  TraceOptions options;
  options.sample_every = 5;
  options.trace_anomalies = false;

  const TraceSink sink =
      CaptureFor(simulator, false, nullptr, options, TestWorkload());
  const std::uint64_t total = 4 * kRequestsPerFile;
  ASSERT_EQ(sink.spans().size(), (total + 4) / 5);
  std::uint64_t expected_id = 0;
  for (const TraceSpan& span : sink.spans()) {
    EXPECT_EQ(span.request_id, expected_id);  // Ascending, every 5th.
    EXPECT_EQ(span.trigger, kTraceSampled);
    EXPECT_EQ(span.kind, TraceSpanKind::kRetrieval);
    expected_id += 5;
  }
  EXPECT_EQ(sink.recorded_count(), sink.spans().size());
  EXPECT_EQ(sink.dropped_count(), 0u);
}

// ---------------------------------------------------------------------------
// Anomaly triggers and per-span causal accounting.
// ---------------------------------------------------------------------------

TEST(TraceTest, UndecodablesAlwaysTracedAndEndIncomplete) {
  const auto program = BuildTestProgram();
  // Every slot from 300 on is lost: late starters cannot decode.
  auto channel = faults::ParseChannelSpec("outage:period=600,start=300,len=300");
  ASSERT_TRUE(channel.ok()) << channel.status();
  const sim::Simulator simulator(program, **channel, 600);

  TraceOptions options;  // Sampling off; anomalies on by default.
  TraceSink sink(options);
  auto metrics = simulator.RunWorkload(TestWorkload(), nullptr, nullptr,
                                       &sink);
  ASSERT_TRUE(metrics.ok()) << metrics.status();

  std::uint64_t undecodable_spans = 0;
  for (const TraceSpan& span : sink.spans()) {
    EXPECT_EQ(span.trigger & kTraceSampled, 0);  // Sampling is off.
    EXPECT_NE(span.trigger, 0);
    if (span.completed) continue;
    ++undecodable_spans;
    EXPECT_NE(span.trigger & kTraceUndecodable, 0);
    EXPECT_EQ(span.latency, 0u);
    EXPECT_EQ(span.end_slot, simulator.horizon());
    ASSERT_FALSE(span.events.empty());
    EXPECT_EQ(span.events.front().kind, TraceEventKind::kArrival);
    EXPECT_EQ(span.events.back().kind, TraceEventKind::kIncomplete);
    EXPECT_EQ(CountEvents(span, TraceEventKind::kDecodeStart), 0u);
  }
  // The outage covers half the horizon; the workload must have victims,
  // and every one of them must have produced a span.
  std::uint64_t incomplete = 0;
  for (const auto& f : metrics->per_file) incomplete += f.incomplete;
  EXPECT_GT(incomplete, 0u);
  EXPECT_EQ(undecodable_spans, incomplete);
}

TEST(TraceTest, StallVictimsAccountEveryFaultInsideTheSpan) {
  const auto program = BuildTestProgram();
  auto channel = faults::ParseChannelSpec("gilbert:pgb=0.05,pbg=0.2,seed=7");
  ASSERT_TRUE(channel.ok()) << channel.status();
  const sim::Simulator simulator(program, **channel, kHorizon);

  TraceOptions options;
  options.stall_threshold = 1;  // Trace every stalled completion.

  const TraceSink sink =
      CaptureFor(simulator, false, nullptr, options, TestWorkload());
  std::uint64_t stalled = 0;
  for (const TraceSpan& span : sink.spans()) {
    const std::uint64_t faults = CountEvents(span, TraceEventKind::kLost) +
                                 CountEvents(span, TraceEventKind::kCorrupt);
    EXPECT_EQ(faults, span.errors_observed)
        << "request " << span.request_id
        << ": event chain disagrees with the fault summary";
    EXPECT_EQ(CountEvents(span, TraceEventKind::kCorrupt),
              span.corrupt_detected);
    for (const TraceEvent& e : span.events) {
      EXPECT_GE(e.slot, span.start_slot) << "request " << span.request_id;
      EXPECT_LT(e.slot, span.end_slot) << "request " << span.request_id;
    }
    if (!span.completed || span.stall_slots == 0) continue;
    ++stalled;
    // A stall is by definition fault-induced: the chain must show the
    // lost period(s) that pushed completion past the lossless baseline.
    EXPECT_NE(span.trigger & kTraceStall, 0);
    EXPECT_GT(span.errors_observed, 0u);
    EXPECT_EQ(CountEvents(span, TraceEventKind::kDecodeStart), 1u);
    EXPECT_EQ(span.events.back().kind, TraceEventKind::kDecodeStart);
  }
  EXPECT_GT(stalled, 0u) << "channel produced no stalls to verify";
}

TEST(TraceTest, DeadlineMissesAlwaysTraced) {
  // Tight per-file deadline: with bursty loss, some completions miss it.
  const auto program = BuildTestProgram({40});
  auto channel = faults::ParseChannelSpec("gilbert:pgb=0.08,pbg=0.15,seed=3");
  ASSERT_TRUE(channel.ok()) << channel.status();
  const sim::Simulator simulator(program, **channel, kHorizon);

  TraceOptions options;  // Sampling off; anomalies on.
  TraceSink sink(options);
  auto metrics = simulator.RunWorkload(TestWorkload(), nullptr, nullptr,
                                       &sink);
  ASSERT_TRUE(metrics.ok()) << metrics.status();

  std::uint64_t missed_spans = 0;
  for (const TraceSpan& span : sink.spans()) {
    if (span.met_deadline) continue;
    EXPECT_NE(span.trigger & kTraceDeadlineMiss, 0);
    EXPECT_EQ(span.deadline_slots, 40u);
    // FileMetrics::missed_deadline counts completed-but-late only;
    // incomplete victims are traced too but tallied as undecodable.
    if (span.completed) ++missed_spans;
  }
  std::uint64_t missed = 0;
  for (const auto& f : metrics->per_file) missed += f.missed_deadline;
  EXPECT_GT(missed, 0u) << "workload produced no deadline misses to verify";
  EXPECT_EQ(missed_spans, missed);
}

// ---------------------------------------------------------------------------
// Flight recorder.
// ---------------------------------------------------------------------------

bool IsAnomaly(const TraceSpan& span) {
  return (span.trigger & ~kTraceSampled) != 0;
}

TEST(TraceTest, FlightRecorderDumpsAtMostDepthSpansBeforeEachAnomaly) {
  const auto program = BuildTestProgram();
  auto channel = faults::ParseChannelSpec("gilbert:pgb=0.05,pbg=0.2,seed=7");
  ASSERT_TRUE(channel.ok()) << channel.status();
  const sim::Simulator simulator(program, **channel, kHorizon);

  constexpr std::uint64_t kDepth = 3;
  TraceOptions options;
  options.sample_every = 1;  // Offer every span to the recorder.
  options.stall_threshold = 8;
  options.flight_recorder_depth = kDepth;

  const TraceSink sink =
      CaptureFor(simulator, false, nullptr, options, TestWorkload());
  ASSERT_FALSE(sink.spans().empty());
  // Every request was offered; retention dropped the quiet majority.
  EXPECT_EQ(sink.recorded_count(), 4 * kRequestsPerFile);
  EXPECT_GT(sink.dropped_count(), 0u);
  EXPECT_LT(sink.spans().size(), sink.recorded_count());

  // The retained log is a sequence of (<= kDepth quiet spans, anomaly)
  // groups: runs of non-anomaly spans never exceed the ring depth and are
  // always terminated by the anomaly that dumped them.
  std::uint64_t run = 0;
  for (const TraceSpan& span : sink.spans()) {
    if (IsAnomaly(span)) {
      run = 0;
    } else {
      ++run;
      EXPECT_LE(run, kDepth);
    }
  }
  EXPECT_TRUE(IsAnomaly(sink.spans().back()))
      << "retained log must end with an anomaly (final ring is discarded)";

  // Sharded capture replays to the identical retained log.
  runtime::ThreadPool pool(PoolWidth());
  const TraceSink pooled =
      CaptureFor(simulator, false, &pool, options, TestWorkload());
  EXPECT_EQ(RenderChromeTrace({{&sink, "workload"}}),
            RenderChromeTrace({{&pooled, "workload"}}))
      << "flight-recorder retention diverged under sharding";
  EXPECT_EQ(sink.dropped_count(), pooled.dropped_count());
}

// ---------------------------------------------------------------------------
// Adaptive swap-decision spans.
// ---------------------------------------------------------------------------

TEST(TraceTest, AdaptiveExperimentEmitsSwapDecisionSpans) {
  std::vector<broadcast::FlatFileSpec> files;
  for (int i = 0; i < 6; ++i) {
    files.push_back({"f" + std::to_string(i), 2, 4, {}});
  }
  adaptive::DriftingZipfWorkload workload;
  workload.requests = 3000;
  workload.arrival_horizon = 12000;
  workload.flip_slot = 6000;
  workload.seed = 5;
  adaptive::AdaptiveLoopOptions loop;
  loop.min_interval_requests = 8;
  loop.improvement_threshold = 0.01;

  TraceOptions options;
  options.sample_every = 64;
  auto result = adaptive::RunAdaptiveExperiment(
      files, workload, /*interval_slots=*/1500, loop,
      /*loss_probability=*/0.02, /*fault_seed=*/11, nullptr, nullptr,
      nullptr, /*snapshot_interval_slots=*/0, &options);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_NE(result->adaptive_trace, nullptr);
  ASSERT_NE(result->static_trace, nullptr);

  std::uint64_t decisions = 0;
  std::uint64_t swapped = 0;
  for (const TraceSpan& span : result->adaptive_trace->spans()) {
    if (span.kind != TraceSpanKind::kSwapDecision) continue;
    ++decisions;
    EXPECT_EQ(span.trigger, kTraceSwap);
    EXPECT_EQ(span.file_name, "controller");
    EXPECT_EQ(span.end_slot - span.start_slot, 1500u);
    if (span.completed) {
      ++swapped;
      // A swap decision that fired carries the epoch boundary it created.
      EXPECT_EQ(CountEvents(span, TraceEventKind::kEpoch), 1u);
    }
  }
  EXPECT_EQ(decisions, workload.arrival_horizon / 1500);
  EXPECT_EQ(swapped, result->swaps);
  EXPECT_GT(result->swaps, 0u) << "drift produced no swaps to trace";
  for (const TraceSpan& span : result->static_trace->spans()) {
    EXPECT_EQ(span.kind, TraceSpanKind::kRetrieval)
        << "static replay must not carry controller spans";
  }
}

// ---------------------------------------------------------------------------
// Chrome export envelope.
// ---------------------------------------------------------------------------

TEST(TraceTest, RenderedTraceIsWellFormedChromeJson) {
  const auto program = BuildTestProgram();
  auto channel = faults::ParseChannelSpec("bernoulli:p=0.05,seed=11");
  ASSERT_TRUE(channel.ok()) << channel.status();
  const sim::Simulator simulator(program, **channel, kHorizon);

  TraceOptions options;
  options.sample_every = 16;
  const TraceSink sink =
      CaptureFor(simulator, false, nullptr, options, TestWorkload());
  const std::string doc = RenderChromeTrace(
      {{&sink, "workload"}}, {{"engine", "slot"}, {"channel", "bernoulli"}});

  auto parsed = ParseJson(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  EXPECT_GT(events->array.size(), sink.spans().size())
      << "expected one X event per span plus instants and metadata";
  const JsonValue* other = parsed->Find("otherData");
  ASSERT_NE(other, nullptr);
  const JsonValue* clock = other->Find("clock");
  ASSERT_NE(clock, nullptr);
  EXPECT_EQ(clock->string_value, "sim-slots-as-us");
  const JsonValue* engine = other->Find("engine");
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->string_value, "slot");

  // Every span surfaces as a complete event on its request lane with the
  // sim-clock geometry.
  std::set<std::uint64_t> lanes;
  for (const JsonValue& event : events->array) {
    const JsonValue* ph = event.Find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string_value != "X") continue;
    const JsonValue* tid = event.Find("tid");
    ASSERT_NE(tid, nullptr);
    lanes.insert(static_cast<std::uint64_t>(tid->number));
  }
  EXPECT_EQ(lanes.size(), sink.spans().size());
  for (const TraceSpan& span : sink.spans()) {
    EXPECT_EQ(lanes.count(span.request_id), 1u);
  }
}

TEST(TraceTest, TriggerNamesAndEventNamesAreStable) {
  EXPECT_STREQ(TraceEventKindName(TraceEventKind::kArrival), "arrival");
  EXPECT_STREQ(TraceEventKindName(TraceEventKind::kDecodeStart), "decode");
  EXPECT_STREQ(TraceEventKindName(TraceEventKind::kIncomplete), "incomplete");
  EXPECT_EQ(TraceTriggerName(0), "none");
  EXPECT_EQ(TraceTriggerName(kTraceSampled), "sampled");
  EXPECT_EQ(TraceTriggerName(kTraceSampled | kTraceStall), "sampled+stall");
  EXPECT_EQ(TraceTriggerName(kTraceDeadlineMiss | kTraceUndecodable),
            "deadline_miss+undecodable");
}

}  // namespace
}  // namespace bdisk::obs
