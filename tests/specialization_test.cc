// Unit tests for window-size specialization helpers.

#include "pinwheel/specialization.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace bdisk::pinwheel {
namespace {

TEST(SpecializationTest, LargestPowerOfTwoAtMost) {
  EXPECT_EQ(LargestPowerOfTwoAtMost(1), 1u);
  EXPECT_EQ(LargestPowerOfTwoAtMost(2), 2u);
  EXPECT_EQ(LargestPowerOfTwoAtMost(3), 2u);
  EXPECT_EQ(LargestPowerOfTwoAtMost(4), 4u);
  EXPECT_EQ(LargestPowerOfTwoAtMost(1023), 512u);
  EXPECT_EQ(LargestPowerOfTwoAtMost(1024), 1024u);
}

TEST(SpecializationTest, LargestChainValueAtMost) {
  EXPECT_EQ(LargestChainValueAtMost(3, 2), std::nullopt);
  EXPECT_EQ(LargestChainValueAtMost(3, 3), 3u);
  EXPECT_EQ(LargestChainValueAtMost(3, 5), 3u);
  EXPECT_EQ(LargestChainValueAtMost(3, 6), 6u);
  EXPECT_EQ(LargestChainValueAtMost(3, 13), 12u);
  EXPECT_EQ(LargestChainValueAtMost(1, 13), 8u);
}

TEST(SpecializationTest, LargestSmoothValueAtMost) {
  // x = 1: 3-smooth numbers 1,2,3,4,6,8,9,12,16,18,24,27,...
  EXPECT_EQ(LargestSmoothValueAtMost(1, 5), 4u);
  EXPECT_EQ(LargestSmoothValueAtMost(1, 6), 6u);
  EXPECT_EQ(LargestSmoothValueAtMost(1, 11), 9u);
  EXPECT_EQ(LargestSmoothValueAtMost(1, 13), 12u);
  EXPECT_EQ(LargestSmoothValueAtMost(1, 17), 16u);
  EXPECT_EQ(LargestSmoothValueAtMost(1, 23), 18u);
  // x = 5: values 5,10,15,20,30,40,45,...
  EXPECT_EQ(LargestSmoothValueAtMost(5, 4), std::nullopt);
  EXPECT_EQ(LargestSmoothValueAtMost(5, 29), 20u);
  EXPECT_EQ(LargestSmoothValueAtMost(5, 30), 30u);
}

TEST(SpecializationTest, SmoothAtLeastChain) {
  // The 3-smooth set is a superset of the chain, so its rounding is never
  // worse.
  for (std::uint64_t x : {1ULL, 2ULL, 3ULL, 5ULL, 7ULL}) {
    for (std::uint64_t b = x; b < x + 200; ++b) {
      auto chain = LargestChainValueAtMost(x, b);
      auto smooth = LargestSmoothValueAtMost(x, b);
      ASSERT_TRUE(chain.has_value());
      ASSERT_TRUE(smooth.has_value());
      EXPECT_GE(*smooth, *chain) << "x=" << x << " b=" << b;
      EXPECT_LE(*smooth, b);
    }
  }
}

TEST(SpecializationTest, PowerOfTwoLosesAtMostHalf) {
  for (std::uint64_t b = 1; b <= 4096; ++b) {
    const std::uint64_t p = LargestPowerOfTwoAtMost(b);
    EXPECT_LE(p, b);
    EXPECT_GT(2 * p, b);  // Rounds down by strictly less than 2x.
  }
}

TEST(SpecializationTest, ChainBaseCandidatesContainAllHalvings) {
  const auto candidates = ChainBaseCandidates({12, 7});
  // 12 -> 12,6,3,1; 7 -> 7,3,1.
  const std::vector<std::uint64_t> expected{1, 3, 6, 7, 12};
  EXPECT_EQ(candidates, expected);
}

TEST(SpecializationTest, SmoothBaseCandidatesIncludeChainCandidates) {
  const auto chain = ChainBaseCandidates({36});
  const auto smooth = SmoothBaseCandidates({36});
  for (std::uint64_t c : chain) {
    EXPECT_TRUE(std::find(smooth.begin(), smooth.end(), c) != smooth.end())
        << c;
  }
  // 36/3 = 12 and 36/9 = 4 must be present too.
  EXPECT_TRUE(std::find(smooth.begin(), smooth.end(), 12) != smooth.end());
  EXPECT_TRUE(std::find(smooth.begin(), smooth.end(), 4) != smooth.end());
}

TEST(SpecializationTest, CandidatesSortedAndUnique) {
  const auto c = SmoothBaseCandidates({24, 24, 10});
  for (std::size_t i = 1; i < c.size(); ++i) {
    EXPECT_LT(c[i - 1], c[i]);
  }
}

}  // namespace
}  // namespace bdisk::pinwheel
