// Corruption-detection fuzz: damage random bytes/lengths of received
// blocks — payload, header identity fields, even the stored checksum — and
// assert detection-or-correct-reconstruction: the client either rejects
// every damaged block or the final bytes are identical to the original.
// Silent wrong bytes are the one outcome that must never happen.
//
// The corpus is a committed list of deterministic seeds (ctest-registered,
// so the same traces run on every platform and sanitizer job); each seed
// drives geometry, contents, damage pattern, and interleaving.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/random.h"
#include "faults/channel_model.h"
#include "ida/dispersal.h"
#include "runtime/rng_stream.h"
#include "sim/client.h"
#include "store/block_device.h"
#include "store/block_store.h"

namespace bdisk::sim {
namespace {

// Seed corpus: the fixed entries pin historically interesting shapes
// (minimal geometry, single-byte payloads, checksum-field damage); the
// trailing range is bulk coverage.
std::vector<std::uint64_t> SeedCorpus() {
  std::vector<std::uint64_t> seeds = {0, 1, 7, 42, 0xFFFFFFFFu,
                                      0x1234567890ABCDEFull};
  for (std::uint64_t i = 0; i < 200; ++i) {
    seeds.push_back(runtime::StreamSeed(0xF0221, i));
  }
  return seeds;
}

struct FuzzCase {
  std::uint32_t m;
  std::uint32_t n;
  std::size_t block_size;
  std::vector<std::uint8_t> contents;
  std::vector<ida::Block> blocks;  // Stamped.
};

FuzzCase MakeCase(Rng* rng) {
  FuzzCase c;
  c.m = static_cast<std::uint32_t>(1 + rng->Uniform(8));
  c.n = c.m + static_cast<std::uint32_t>(rng->Uniform(8));
  c.block_size = 1 + rng->Uniform(64);
  c.contents.resize(c.m * c.block_size);
  for (auto& b : c.contents) {
    b = static_cast<std::uint8_t>(rng->Uniform(256));
  }
  auto engine = ida::Dispersal::Create(c.m, c.n, c.block_size);
  EXPECT_TRUE(engine.ok());
  auto blocks = engine->Disperse(0, c.contents);
  EXPECT_TRUE(blocks.ok());
  c.blocks = *blocks;
  for (ida::Block& b : c.blocks) ida::StampChecksum(&b);
  return c;
}

// Raw fuzz damage: unlike CorruptionChannel (which never touches the
// stored checksum), this may hit ANY byte — including the checksum field
// itself — and damage runs of random length. Identity bytes are addressed
// through the canonical ida::SerializeIdentity layout, so this stays in
// lockstep with the checksum coverage by construction.
void Damage(ida::Block* block, Rng* rng) {
  const std::size_t payload = block->payload.size();
  const std::size_t covered =
      payload + ida::kBlockIdentityBytes + sizeof(std::uint32_t);
  const std::size_t count = 1 + rng->Uniform(std::min<std::size_t>(
                                    covered, 1 + rng->Uniform(16)));
  auto identity = ida::SerializeIdentity(block->header);
  for (std::size_t hit = 0; hit < count; ++hit) {
    const std::size_t pos = rng->Uniform(covered);
    const auto delta = static_cast<std::uint8_t>(1 + rng->Uniform(255));
    if (pos < payload) {
      block->payload[pos] ^= delta;
    } else if (pos < payload + ida::kBlockIdentityBytes) {
      identity[pos - payload] ^= delta;
    } else {
      const std::size_t h = pos - payload - ida::kBlockIdentityBytes;
      block->header.checksum ^= static_cast<std::uint32_t>(delta) << (8 * h);
    }
  }
  ida::DeserializeIdentity(identity, &block->header);
}

// Core property: offer a shuffled interleaving of clean and damaged
// blocks; if the client completes, the bytes must be the original ones.
TEST(CorruptionFuzzTest, DetectionOrCorrectReconstruction) {
  for (const std::uint64_t seed : SeedCorpus()) {
    Rng rng(seed);
    const FuzzCase c = MakeCase(&rng);

    // Damaged copies of a random subset; clean copies of everything (so
    // completion is always possible and "reject all damaged" is testable).
    std::vector<ida::Block> offers;
    for (const ida::Block& b : c.blocks) offers.push_back(b);
    const std::size_t damaged_count = 1 + rng.Uniform(2 * c.n);
    for (std::size_t d = 0; d < damaged_count; ++d) {
      ida::Block copy = c.blocks[rng.Uniform(c.n)];
      Damage(&copy, &rng);
      if (copy == c.blocks[copy.header.block_index % c.n]) continue;
      offers.push_back(std::move(copy));
    }
    rng.Shuffle(&offers);

    ReconstructingClient client(0, c.m, c.n, c.block_size);
    client.set_require_checksums(true);
    for (const ida::Block& b : offers) {
      client.OfferEx(b);
      if (client.CanReconstruct()) break;
    }
    ASSERT_TRUE(client.CanReconstruct()) << "seed " << seed;
    auto data = client.Reconstruct();
    ASSERT_TRUE(data.ok()) << "seed " << seed << ": " << data.status();
    ASSERT_EQ(*data, c.contents) << "seed " << seed;
  }
}

// Damaged-only offers: a client that sees nothing but corruption must
// reject every block — zero distinct blocks, loud DataLoss on
// Reconstruct, never a fabricated file.
TEST(CorruptionFuzzTest, PureCorruptionNeverDecodes) {
  for (const std::uint64_t seed : SeedCorpus()) {
    Rng rng(seed ^ 0xBAD);
    const FuzzCase c = MakeCase(&rng);
    ReconstructingClient client(0, c.m, c.n, c.block_size);
    client.set_require_checksums(true);
    for (std::uint64_t d = 0; d < 3 * c.n; ++d) {
      ida::Block copy = c.blocks[rng.Uniform(c.n)];
      Damage(&copy, &rng);
      if (copy == c.blocks[copy.header.block_index % c.n]) continue;
      const OfferOutcome outcome = client.OfferEx(copy);
      ASSERT_FALSE(OfferSatisfied(outcome) ||
                   outcome == OfferOutcome::kAccepted)
          << "seed " << seed << " accepted a damaged block";
    }
    EXPECT_EQ(client.distinct_blocks(), 0u) << "seed " << seed;
    EXPECT_TRUE(client.Reconstruct().status().IsDataLoss());
  }
}

// The channel's own corruption path composes with the client the same
// way: every CorruptBlock result is rejected.
TEST(CorruptionFuzzTest, ChannelCorruptionAlwaysRejected) {
  for (const std::uint64_t seed : SeedCorpus()) {
    Rng rng(seed ^ 0xC0FFEE);
    const FuzzCase c = MakeCase(&rng);
    const faults::CorruptionChannel channel(1.0, seed);
    ReconstructingClient client(0, c.m, c.n, c.block_size);
    client.set_require_checksums(true);
    for (std::uint64_t slot = 0; slot < 2 * c.n; ++slot) {
      ida::Block copy = c.blocks[slot % c.n];
      channel.CorruptBlock(slot, &copy);
      const OfferOutcome outcome = client.OfferEx(copy);
      ASSERT_FALSE(OfferSatisfied(outcome) ||
                   outcome == OfferOutcome::kAccepted)
          << "seed " << seed << " slot " << slot;
    }
    EXPECT_EQ(client.distinct_blocks(), 0u);
  }
}

// The persistent store's read path is held to the same property as the
// wire: commit each fuzz case to a block store, rot random bytes of the
// on-disk payload extents, and every ReadCodedBlock must either return
// the original block bit-exact (the rot hit sector padding outside the
// payload) or fail with a typed DataLoss — decoded garbage never.
TEST(CorruptionFuzzTest, StoreReadPathNeverServesGarbage) {
  constexpr std::size_t kDeviceBlock = 64;
  for (const std::uint64_t seed : SeedCorpus()) {
    Rng rng(seed ^ 0xD15Cull);
    const FuzzCase c = MakeCase(&rng);

    auto mem = std::make_unique<store::MemBlockDevice>(kDeviceBlock, 512);
    auto buffer = mem->buffer();
    auto built = store::BlockStore::Format(std::move(mem));
    ASSERT_TRUE(built.ok()) << built.status();
    store::BlockStore& st = **built;
    ASSERT_TRUE(st.StageFile(c.blocks).ok()) << "seed " << seed;
    ASSERT_TRUE(st.Commit().ok()) << "seed " << seed;
    const store::CatalogEntry* entry = st.FindEntry(0, 0);
    ASSERT_NE(entry, nullptr);

    // Rot: random byte flips across the payload extents.
    const std::uint64_t run = entry->BlocksPerCoded(kDeviceBlock);
    const std::size_t hits = 1 + rng.Uniform(8);
    for (std::size_t hit = 0; hit < hits; ++hit) {
      const store::CodedBlockRef& ref =
          entry->blocks[rng.Uniform(entry->n)];
      const std::uint64_t pos = (ref.first_block + rng.Uniform(run)) *
                                    kDeviceBlock +
                                rng.Uniform(kDeviceBlock);
      (*buffer)[pos] ^= static_cast<std::uint8_t>(1 + rng.Uniform(255));
    }

    for (std::uint32_t k = 0; k < c.n; ++k) {
      const Result<ida::Block> block = st.ReadCodedBlock(0, 0, k);
      if (block.ok()) {
        ASSERT_EQ(*block, c.blocks[k])
            << "seed " << seed << " block " << k
            << ": store served bytes that differ from what was written";
      } else {
        ASSERT_TRUE(block.status().IsDataLoss())
            << "seed " << seed << " block " << k << ": " << block.status();
      }
    }
  }
}

}  // namespace
}  // namespace bdisk::sim
