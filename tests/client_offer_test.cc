// Tests for the ReconstructingClient's explicit offer outcomes: every
// unusable block (duplicate, stale version, corrupt, malformed) is
// rejected with a reason and counted — never silently treated as progress
// or overwritten — while stale-*epoch* blocks remain combinable under the
// hot-swap geometry contract.

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "ida/dispersal.h"
#include "sim/client.h"

namespace bdisk::sim {
namespace {

std::vector<std::uint8_t> RandomFile(std::size_t size, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> data(size);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.Uniform(256));
  return data;
}

std::vector<ida::Block> DisperseFile(std::uint32_t m, std::uint32_t n,
                                     std::size_t block_size,
                                     std::uint64_t version,
                                     std::uint64_t content_seed) {
  auto engine = ida::Dispersal::Create(m, n, block_size);
  EXPECT_TRUE(engine.ok());
  auto blocks = engine->Disperse(
      0, RandomFile(m * block_size, content_seed), version);
  EXPECT_TRUE(blocks.ok());
  for (ida::Block& b : *blocks) ida::StampChecksum(&b);
  return *blocks;
}

TEST(OfferOutcomeTest, AcceptAndCompleteLifecycle) {
  const auto blocks = DisperseFile(2, 4, 16, 0, 1);
  ReconstructingClient client(0, 2, 4, 16);
  EXPECT_EQ(client.OfferEx(blocks[0]), OfferOutcome::kAccepted);
  EXPECT_EQ(client.OfferEx(blocks[2]), OfferOutcome::kCompleted);
  EXPECT_EQ(client.OfferEx(blocks[3]), OfferOutcome::kAlreadyComplete);
  EXPECT_TRUE(client.CanReconstruct());
}

TEST(OfferOutcomeTest, DuplicatesAreExplicitlyRejectedAndCounted) {
  const auto blocks = DisperseFile(3, 6, 16, 0, 2);
  ReconstructingClient client(0, 3, 6, 16);
  EXPECT_EQ(client.OfferEx(blocks[1]), OfferOutcome::kAccepted);
  EXPECT_EQ(client.OfferEx(blocks[1]), OfferOutcome::kDuplicate);
  EXPECT_EQ(client.OfferEx(blocks[1]), OfferOutcome::kDuplicate);
  EXPECT_EQ(client.duplicates_rejected(), 2u);
  EXPECT_EQ(client.distinct_blocks(), 1u);  // No silent overwrite.
}

TEST(OfferOutcomeTest, StaleVersionIsRejectedNotCombined) {
  const auto v0 = DisperseFile(2, 4, 16, /*version=*/0, 3);
  const auto v1 = DisperseFile(2, 4, 16, /*version=*/1, 4);
  ReconstructingClient client(0, 2, 4, 16);
  EXPECT_EQ(client.OfferEx(v1[0]), OfferOutcome::kAccepted);
  // An older snapshot's block must never join a newer collection.
  EXPECT_EQ(client.OfferEx(v0[1]), OfferOutcome::kStaleVersion);
  EXPECT_EQ(client.stale_rejected(), 1u);
  EXPECT_EQ(client.distinct_blocks(), 1u);
  // Finishing with the pinned version reconstructs that snapshot.
  EXPECT_EQ(client.OfferEx(v1[1]), OfferOutcome::kCompleted);
  auto data = client.Reconstruct();
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, RandomFile(2 * 16, 4));
}

TEST(OfferOutcomeTest, NewerVersionRestartsCollection) {
  const auto v0 = DisperseFile(2, 4, 16, /*version=*/0, 5);
  const auto v2 = DisperseFile(2, 4, 16, /*version=*/2, 6);
  ReconstructingClient client(0, 2, 4, 16);
  EXPECT_EQ(client.OfferEx(v0[0]), OfferOutcome::kAccepted);
  // A newer snapshot invalidates the stale partial: discard and restart.
  EXPECT_EQ(client.OfferEx(v2[1]), OfferOutcome::kAccepted);
  EXPECT_EQ(client.restarts(), 1u);
  EXPECT_EQ(client.distinct_blocks(), 1u);
  EXPECT_EQ(client.OfferEx(v2[3]), OfferOutcome::kCompleted);
  auto data = client.Reconstruct();
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, RandomFile(2 * 16, 6));
}

TEST(OfferOutcomeTest, StaleEpochBlocksRemainCombinable) {
  // Epochs only re-schedule transmissions; geometry and contents are
  // invariant (sim/epoch.h), so blocks heard under different epochs — in
  // either order — reconstruct together.
  const auto blocks = DisperseFile(2, 5, 16, 0, 7);
  ReconstructingClient client(0, 2, 5, 16);
  EXPECT_EQ(client.OfferEx(blocks[4], /*epoch=*/3), OfferOutcome::kAccepted);
  EXPECT_EQ(client.OfferEx(blocks[0], /*epoch=*/1),
            OfferOutcome::kCompleted);
  EXPECT_EQ(client.EpochsSpanned(), 2u);
  auto data = client.Reconstruct();
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, RandomFile(2 * 16, 7));
}

TEST(OfferOutcomeTest, ChecksumMismatchIsRejectedInAnyMode) {
  auto blocks = DisperseFile(2, 4, 16, 0, 8);
  ReconstructingClient client(0, 2, 4, 16);
  ida::Block damaged = blocks[0];
  damaged.payload[3] ^= 0x40;
  // Stamped-but-wrong is rejected even without require_checksums.
  EXPECT_EQ(client.OfferEx(damaged), OfferOutcome::kChecksumMismatch);
  EXPECT_EQ(client.checksum_rejected(), 1u);
  EXPECT_EQ(client.OfferEx(blocks[0]), OfferOutcome::kAccepted);
}

TEST(OfferOutcomeTest, RequireChecksumsRejectsUnstamped) {
  auto blocks = DisperseFile(2, 4, 16, 0, 9);
  ida::Block unstamped = blocks[0];
  unstamped.header.checksum = 0;

  ReconstructingClient lenient(0, 2, 4, 16);
  EXPECT_EQ(lenient.OfferEx(unstamped), OfferOutcome::kAccepted);

  ReconstructingClient strict(0, 2, 4, 16);
  strict.set_require_checksums(true);
  EXPECT_EQ(strict.OfferEx(unstamped), OfferOutcome::kChecksumMismatch);
  EXPECT_EQ(strict.OfferEx(blocks[0]), OfferOutcome::kAccepted);
}

TEST(OfferOutcomeTest, WrongFileAndMalformedHeaders) {
  const auto blocks = DisperseFile(2, 4, 16, 0, 10);
  ReconstructingClient client(1, 2, 4, 16);  // Listens for file 1.
  EXPECT_EQ(client.OfferEx(blocks[0]), OfferOutcome::kWrongFile);

  ReconstructingClient geometry(0, 2, 4, 16);
  ida::Block wrong_m = blocks[0];
  wrong_m.header.reconstruct_threshold = 3;
  ida::StampChecksum(&wrong_m);  // Valid checksum, wrong geometry.
  EXPECT_EQ(geometry.OfferEx(wrong_m), OfferOutcome::kMalformedHeader);
}

TEST(OfferOutcomeTest, ClearResetsCollectionButKeepsCounters) {
  const auto blocks = DisperseFile(2, 4, 16, 0, 11);
  ReconstructingClient client(0, 2, 4, 16);
  EXPECT_EQ(client.OfferEx(blocks[0]), OfferOutcome::kAccepted);
  EXPECT_EQ(client.OfferEx(blocks[0]), OfferOutcome::kDuplicate);
  client.Clear();
  EXPECT_EQ(client.distinct_blocks(), 0u);
  EXPECT_EQ(client.duplicates_rejected(), 1u);
  // After Clear the same index is fresh again.
  EXPECT_EQ(client.OfferEx(blocks[0]), OfferOutcome::kAccepted);
}

}  // namespace
}  // namespace bdisk::sim
