// Unit and property tests for GF(2^8) arithmetic.

#include "gf/gf256.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace bdisk::gf {
namespace {

TEST(GF256Test, AddIsXor) {
  EXPECT_EQ(GF256::Add(0x53, 0xCA), 0x53 ^ 0xCA);
  EXPECT_EQ(GF256::Add(0, 0x7F), 0x7F);
  EXPECT_EQ(GF256::Sub(0x53, 0xCA), GF256::Add(0x53, 0xCA));
}

TEST(GF256Test, MulZeroAndOne) {
  for (unsigned a = 0; a < 256; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    EXPECT_EQ(GF256::Mul(x, 0), 0);
    EXPECT_EQ(GF256::Mul(0, x), 0);
    EXPECT_EQ(GF256::Mul(x, 1), x);
    EXPECT_EQ(GF256::Mul(1, x), x);
  }
}

TEST(GF256Test, KnownAesProducts) {
  // Classic AES-field test vectors (poly 0x11B).
  EXPECT_EQ(GF256::Mul(0x53, 0xCA), 0x01);
  EXPECT_EQ(GF256::Mul(0x02, 0x87), 0x15);
  EXPECT_EQ(GF256::Mul(0x57, 0x13), 0xFE);
}

TEST(GF256Test, TableMulMatchesBitwiseMulExhaustively) {
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      ASSERT_EQ(GF256::Mul(static_cast<std::uint8_t>(a),
                           static_cast<std::uint8_t>(b)),
                GF256::MulSlow(static_cast<std::uint8_t>(a),
                               static_cast<std::uint8_t>(b)))
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(GF256Test, MulCommutative) {
  for (unsigned a = 0; a < 256; a += 3) {
    for (unsigned b = 0; b < 256; b += 5) {
      EXPECT_EQ(GF256::Mul(static_cast<std::uint8_t>(a),
                           static_cast<std::uint8_t>(b)),
                GF256::Mul(static_cast<std::uint8_t>(b),
                           static_cast<std::uint8_t>(a)));
    }
  }
}

TEST(GF256Test, MulAssociative) {
  for (unsigned a = 1; a < 256; a += 17) {
    for (unsigned b = 1; b < 256; b += 13) {
      for (unsigned c = 1; c < 256; c += 11) {
        const auto x = static_cast<std::uint8_t>(a);
        const auto y = static_cast<std::uint8_t>(b);
        const auto z = static_cast<std::uint8_t>(c);
        EXPECT_EQ(GF256::Mul(GF256::Mul(x, y), z),
                  GF256::Mul(x, GF256::Mul(y, z)));
      }
    }
  }
}

TEST(GF256Test, DistributesOverAdd) {
  for (unsigned a = 0; a < 256; a += 7) {
    for (unsigned b = 0; b < 256; b += 9) {
      for (unsigned c = 0; c < 256; c += 15) {
        const auto x = static_cast<std::uint8_t>(a);
        const auto y = static_cast<std::uint8_t>(b);
        const auto z = static_cast<std::uint8_t>(c);
        EXPECT_EQ(GF256::Mul(x, GF256::Add(y, z)),
                  GF256::Add(GF256::Mul(x, y), GF256::Mul(x, z)));
      }
    }
  }
}

TEST(GF256Test, InverseIsTwoSided) {
  for (unsigned a = 1; a < 256; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    const std::uint8_t inv = GF256::Inv(x);
    EXPECT_EQ(GF256::Mul(x, inv), 1) << "a=" << a;
    EXPECT_EQ(GF256::Mul(inv, x), 1) << "a=" << a;
  }
}

TEST(GF256Test, DivisionInvertsMultiplication) {
  for (unsigned a = 0; a < 256; a += 3) {
    for (unsigned b = 1; b < 256; b += 7) {
      const auto x = static_cast<std::uint8_t>(a);
      const auto y = static_cast<std::uint8_t>(b);
      EXPECT_EQ(GF256::Mul(GF256::Div(x, y), y), x);
    }
  }
}

TEST(GF256Test, DivByOneIsIdentity) {
  for (unsigned a = 0; a < 256; ++a) {
    EXPECT_EQ(GF256::Div(static_cast<std::uint8_t>(a), 1),
              static_cast<std::uint8_t>(a));
  }
}

TEST(GF256Test, PowBasics) {
  EXPECT_EQ(GF256::Pow(0, 0), 1);
  EXPECT_EQ(GF256::Pow(0, 5), 0);
  EXPECT_EQ(GF256::Pow(7, 0), 1);
  EXPECT_EQ(GF256::Pow(7, 1), 7);
  EXPECT_EQ(GF256::Pow(2, 2), GF256::Mul(2, 2));
  EXPECT_EQ(GF256::Pow(3, 3), GF256::Mul(3, GF256::Mul(3, 3)));
}

TEST(GF256Test, PowMatchesRepeatedMul) {
  for (unsigned a = 1; a < 256; a += 29) {
    std::uint8_t acc = 1;
    for (unsigned e = 0; e < 20; ++e) {
      EXPECT_EQ(GF256::Pow(static_cast<std::uint8_t>(a), e), acc)
          << "a=" << a << " e=" << e;
      acc = GF256::Mul(acc, static_cast<std::uint8_t>(a));
    }
  }
}

TEST(GF256Test, FermatOrder) {
  // a^255 == 1 for all non-zero a.
  for (unsigned a = 1; a < 256; ++a) {
    EXPECT_EQ(GF256::Pow(static_cast<std::uint8_t>(a), 255), 1) << "a=" << a;
  }
}

TEST(GF256Test, GeneratorHasFullOrder) {
  // Powers of the generator must hit every non-zero element exactly once.
  bool seen[256] = {false};
  std::uint8_t x = 1;
  for (int i = 0; i < 255; ++i) {
    EXPECT_FALSE(seen[x]);
    seen[x] = true;
    x = GF256::Mul(x, GF256::kGenerator);
  }
  EXPECT_EQ(x, 1);  // Full cycle.
}

}  // namespace
}  // namespace bdisk::gf
