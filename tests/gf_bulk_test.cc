// Tests for the bulk GF(2^8) kernels against the GF256::MulSlow oracle.

#include "gf/gf_bulk.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "gf/gf256.h"

namespace bdisk::gf {
namespace {

std::vector<std::uint8_t> RandomBytes(std::size_t n, Rng* rng) {
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng->Uniform(256));
  return out;
}

TEST(GFBulkTest, MulTableMatchesMulSlowExhaustively) {
  for (unsigned c = 0; c < 256; ++c) {
    const std::uint8_t* table = GFBulk::MulTable(static_cast<std::uint8_t>(c));
    for (unsigned x = 0; x < 256; ++x) {
      ASSERT_EQ(table[x],
                GF256::MulSlow(static_cast<std::uint8_t>(c),
                               static_cast<std::uint8_t>(x)))
          << "c=" << c << " x=" << x;
    }
  }
}

TEST(GFBulkTest, XorRowMatchesBytewiseXor) {
  Rng rng(7);
  // Sizes straddling the 8-byte word loop, including the 0 and tail cases.
  for (std::size_t n : {0u, 1u, 7u, 8u, 9u, 64u, 1000u}) {
    auto dst = RandomBytes(n, &rng);
    const auto src = RandomBytes(n, &rng);
    auto expected = dst;
    for (std::size_t i = 0; i < n; ++i) expected[i] ^= src[i];
    GFBulk::XorRow(dst.data(), src.data(), n);
    EXPECT_EQ(dst, expected) << "n=" << n;
  }
}

TEST(GFBulkTest, MulRowMatchesMulSlowOnRandomInputs) {
  Rng rng(8);
  for (std::size_t n : {1u, 5u, 64u, 257u, 4096u}) {
    const auto src = RandomBytes(n, &rng);
    for (unsigned c : {0u, 1u, 2u, 29u, 127u, 255u}) {
      const auto coeff = static_cast<std::uint8_t>(c);
      std::vector<std::uint8_t> dst(n, 0xAB);
      GFBulk::MulRow(dst.data(), src.data(), coeff, n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(dst[i], GF256::MulSlow(coeff, src[i]))
            << "n=" << n << " c=" << c << " i=" << i;
      }
    }
  }
}

TEST(GFBulkTest, MulRowInPlace) {
  Rng rng(9);
  const auto src = RandomBytes(333, &rng);
  for (unsigned c : {0u, 1u, 77u}) {
    const auto coeff = static_cast<std::uint8_t>(c);
    auto buf = src;
    GFBulk::MulRow(buf.data(), buf.data(), coeff, buf.size());
    for (std::size_t i = 0; i < buf.size(); ++i) {
      ASSERT_EQ(buf[i], GF256::MulSlow(coeff, src[i])) << "c=" << c;
    }
  }
}

TEST(GFBulkTest, MulRowAccumulateMatchesMulSlowOnRandomInputs) {
  Rng rng(10);
  for (std::size_t n : {1u, 3u, 8u, 100u, 4096u}) {
    const auto src = RandomBytes(n, &rng);
    const auto base = RandomBytes(n, &rng);
    for (unsigned c = 0; c < 256; c += 17) {
      const auto coeff = static_cast<std::uint8_t>(c);
      auto dst = base;
      GFBulk::MulRowAccumulate(dst.data(), src.data(), coeff, n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(dst[i],
                  static_cast<std::uint8_t>(base[i] ^
                                            GF256::MulSlow(coeff, src[i])))
            << "n=" << n << " c=" << c << " i=" << i;
      }
    }
  }
}

TEST(GFBulkTest, AccumulatingAllCoefficientsIsLinear) {
  // sum_c (c * src) over a set of coefficients equals (xor of coefficients)
  // * src — accumulation must respect field linearity.
  Rng rng(11);
  const std::size_t n = 512;
  const auto src = RandomBytes(n, &rng);
  const std::uint8_t coeffs[] = {0x03, 0x1D, 0x80, 0xFF};
  std::vector<std::uint8_t> acc(n, 0);
  std::uint8_t combined = 0;
  for (std::uint8_t c : coeffs) {
    GFBulk::MulRowAccumulate(acc.data(), src.data(), c, n);
    combined ^= c;
  }
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(acc[i], GF256::MulSlow(combined, src[i])) << "i=" << i;
  }
}

}  // namespace
}  // namespace bdisk::gf
