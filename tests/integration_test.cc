// Full-pipeline integration tests: specs -> algebra -> pinwheel scheduling
// -> broadcast program -> analytic delay bounds -> simulation -> byte-level
// reconstruction. Cross-checks every layer against the others.

#include <gtest/gtest.h>

#include "bdisk/bandwidth.h"
#include "bdisk/delay_analysis.h"
#include "bdisk/pinwheel_builder.h"
#include "common/random.h"
#include "pinwheel/composite_scheduler.h"
#include "sim/client.h"
#include "sim/server.h"
#include "sim/simulation.h"

namespace bdisk {
namespace {

using broadcast::BroadcastProgram;
using broadcast::ClientModel;
using broadcast::DelayAnalyzer;
using broadcast::FileIndex;

// An IVHS-flavored workload (the paper's motivating application): traffic
// incidents are small and urgent; map tiles are large and relaxed.
std::vector<broadcast::GeneralizedFileSpec> IvhsFiles() {
  return {
      {"incidents", 2, {12, 16}},       // Urgent, tolerate 1 fault.
      {"routes", 3, {40, 48, 56}},      // Medium, tolerate 2 faults.
      {"map-tiles", 6, {120, 140}},     // Bulky, tolerate 1 fault.
  };
}

TEST(IntegrationTest, GeneralizedPipelineSatisfiesAllConstraints) {
  pinwheel::CompositeScheduler scheduler;
  auto result = broadcast::BuildGeneralizedProgram(IvhsFiles(), scheduler);
  ASSERT_TRUE(result.ok()) << result.status();
  const BroadcastProgram& p = result->program;

  // 1. Exact verification of every bc level.
  ASSERT_TRUE(p.VerifyBroadcastConditions().ok());

  // 2. Analytic check: the worst-case latency with j faults is within
  //    d^(j) for every file and level (this is the paper's core promise).
  DelayAnalyzer analyzer(p);
  for (FileIndex f = 0; f < p.file_count(); ++f) {
    const auto& pf = p.files()[f];
    for (std::size_t j = 0; j < pf.latency_slots.size(); ++j) {
      auto latency = analyzer.WorstCaseLatency(
          f, static_cast<std::uint32_t>(j), ClientModel::kIda);
      ASSERT_TRUE(latency.ok()) << latency.status();
      EXPECT_LE(*latency, pf.latency_slots[j])
          << pf.name << " with " << j << " faults";
    }
  }
}

TEST(IntegrationTest, SimulationNeverExceedsAnalyticWorstCase) {
  pinwheel::CompositeScheduler scheduler;
  auto result = broadcast::BuildGeneralizedProgram(IvhsFiles(), scheduler);
  ASSERT_TRUE(result.ok()) << result.status();
  const BroadcastProgram& p = result->program;
  DelayAnalyzer analyzer(p);

  // Fault-free simulation: every observed latency must be bounded by the
  // analytic zero-fault worst case.
  sim::NoFaultModel faults;
  sim::Simulator simulator(p, &faults, 50 * p.DataCycleLength());
  sim::WorkloadConfig config;
  config.requests_per_file = 500;
  auto metrics = simulator.RunWorkload(config);
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  for (FileIndex f = 0; f < p.file_count(); ++f) {
    auto analytic = analyzer.WorstCaseLatency(f, 0, ClientModel::kIda);
    ASSERT_TRUE(analytic.ok());
    EXPECT_LE(metrics->per_file[f].latency.max(),
              static_cast<double>(*analytic))
        << p.files()[f].name;
    EXPECT_EQ(metrics->per_file[f].MissRate(), 0.0);
  }
}

TEST(IntegrationTest, RegularPipelineAtSufficientBandwidth) {
  const std::vector<broadcast::FileSpec> files{
      {"aircraft", 4, 0.4, 1},
      {"tanks", 8, 6.0, 1},
      {"weather", 6, 2.0, 0},
  };
  auto bandwidth = broadcast::BandwidthPlanner::SufficientBandwidth(files);
  ASSERT_TRUE(bandwidth.ok());
  pinwheel::CompositeScheduler scheduler;
  auto result = broadcast::BuildProgram(files, *bandwidth, scheduler);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->program.VerifyBroadcastConditions().ok());

  // Lemma 2 style check: after one fault, retrieval still fits the window.
  DelayAnalyzer analyzer(result->program);
  for (FileIndex f = 0; f < 2; ++f) {  // Files with r = 1.
    auto latency = analyzer.WorstCaseLatency(f, 1, ClientModel::kIda);
    ASSERT_TRUE(latency.ok());
    EXPECT_LE(*latency, result->program.files()[f].latency_slots[1]);
  }
}

TEST(IntegrationTest, ByteLevelRoundTripOverPinwheelProgram) {
  pinwheel::CompositeScheduler scheduler;
  auto result = broadcast::BuildGeneralizedProgram(IvhsFiles(), scheduler);
  ASSERT_TRUE(result.ok()) << result.status();
  const BroadcastProgram& p = result->program;

  constexpr std::size_t kBlockSize = 32;
  Rng rng(42);
  std::vector<std::vector<std::uint8_t>> contents;
  for (FileIndex f = 0; f < p.file_count(); ++f) {
    std::vector<std::uint8_t> data(p.files()[f].m * kBlockSize);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.Uniform(256));
    contents.push_back(std::move(data));
  }
  auto server = sim::BroadcastServer::Create(p, contents, kBlockSize);
  ASSERT_TRUE(server.ok()) << server.status();

  // Random losses at 10%; every file must still reconstruct, byte-exact.
  sim::BernoulliFaultModel faults(0.1, 1234);
  for (FileIndex f = 0; f < p.file_count(); ++f) {
    auto session = sim::RunRetrievalSession(*server, &faults, f, 3,
                                            200 * p.DataCycleLength());
    ASSERT_TRUE(session.ok()) << session.status();
    ASSERT_TRUE(session->completed) << p.files()[f].name;
    EXPECT_EQ(session->data, contents[f]) << p.files()[f].name;
  }
}

// Deterministic adversarial cross-check: inject exactly the worst-case
// fault pattern the analyzer assumes (corrupt r consecutive transmissions
// of a file from some start) and confirm the simulator's latency never
// exceeds the analyzer's bound for that fault count.
TEST(IntegrationTest, AdversarialInjectionWithinAnalyticBound) {
  pinwheel::CompositeScheduler scheduler;
  auto result = broadcast::BuildGeneralizedProgram(IvhsFiles(), scheduler);
  ASSERT_TRUE(result.ok()) << result.status();
  const BroadcastProgram& p = result->program;
  DelayAnalyzer analyzer(p);

  const FileIndex target = 0;
  const std::uint32_t faults_to_tolerate =
      static_cast<std::uint32_t>(p.files()[target].latency_slots.size() - 1);
  auto analytic = analyzer.WorstCaseLatency(target, faults_to_tolerate,
                                            ClientModel::kIda);
  ASSERT_TRUE(analytic.ok());

  // Try every start within one data cycle, corrupting the first r
  // transmissions the client hears.
  for (std::uint64_t start = 0; start < p.DataCycleLength(); ++start) {
    std::unordered_set<std::uint64_t> dead;
    std::uint32_t injected = 0;
    for (std::uint64_t t = start; injected < faults_to_tolerate; ++t) {
      const auto tx = p.TransmissionAt(t);
      if (tx.has_value() && tx->file == target) {
        dead.insert(t);
        ++injected;
      }
    }
    sim::SlotSetFaultModel fault_model(std::move(dead));
    sim::Simulator simulator(p, &fault_model, 50 * p.DataCycleLength());
    sim::ClientRequest req;
    req.file = target;
    req.start_slot = start;
    auto outcome = simulator.Retrieve(req);
    ASSERT_TRUE(outcome.ok());
    ASSERT_TRUE(outcome->completed);
    EXPECT_LE(outcome->latency, *analytic) << "start " << start;
  }
}

}  // namespace
}  // namespace bdisk
