// Property-based channel/codec tests: for random geometries (n, m), block
// sizes, and loss patterns, a byte-level retrieval through a lossy channel
// reconstructs byte-identically whenever >= m distinct blocks survive, and
// fails cleanly (typed DataLoss error, no partial output, no UB) whenever
// fewer than m survive. Runs under ASan/UBSan in CI like the rest of the
// suite.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "bdisk/flat_builder.h"
#include "common/random.h"
#include "faults/channel_model.h"
#include "ida/dispersal.h"
#include "runtime/rng_stream.h"
#include "sim/client.h"
#include "sim/server.h"

namespace bdisk::sim {
namespace {

std::vector<std::uint8_t> RandomFile(std::size_t size, Rng* rng) {
  std::vector<std::uint8_t> data(size);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng->Uniform(256));
  return data;
}

struct Geometry {
  std::uint32_t m;
  std::uint32_t n;
  std::size_t block_size;
};

Geometry RandomGeometry(Rng* rng) {
  const auto m = static_cast<std::uint32_t>(1 + rng->Uniform(12));
  const auto n = m + static_cast<std::uint32_t>(rng->Uniform(12));
  const std::size_t block_size = 1 + rng->Uniform(96);
  return {m, n, block_size};
}

// A single-file broadcast program: every slot transmits the file, the
// data-cycle rotation walks its n dispersed blocks.
broadcast::BroadcastProgram OneFileProgram(const Geometry& g) {
  auto program = broadcast::BuildFlatProgram(
      {{"F", g.m, g.n, {}}}, broadcast::FlatLayout::kSpread);
  EXPECT_TRUE(program.ok());
  return *program;
}

// >= m survivors: the session completes and returns the original bytes.
// The channel is a random Bernoulli loss trace; the horizon is generous
// enough that the rotation eventually delivers m distinct block indices
// through any loss pattern that is not almost-everything.
TEST(ChannelPropertyTest, EnoughSurvivorsReconstructByteIdentically) {
  for (std::uint64_t trial = 0; trial < 40; ++trial) {
    Rng rng(runtime::StreamSeed(0xFEED, trial));
    const Geometry g = RandomGeometry(&rng);
    const auto contents = RandomFile(g.m * g.block_size, &rng);
    auto server = BroadcastServer::Create(OneFileProgram(g), {contents},
                                          g.block_size);
    ASSERT_TRUE(server.ok()) << server.status();

    const double p = 0.05 + 0.4 * rng.UniformDouble();  // Loss in [.05,.45].
    const faults::BernoulliChannel channel(p, trial * 31 + 7);
    // Loss rate < 1/2 and one distinct block per rotation step: ~2x m
    // rotations of headroom plus slack makes non-completion astronomically
    // unlikely; completion is asserted, so a regression fails loudly.
    const std::uint64_t horizon = 64 * (g.n + g.m) + 4096;
    auto session = RunRetrievalSession(*server, channel, 0,
                                       /*start_slot=*/trial % g.m, horizon);
    ASSERT_TRUE(session.ok()) << session.status();
    ASSERT_TRUE(session->completed)
        << "m=" << g.m << " n=" << g.n << " p=" << p;
    ASSERT_EQ(session->data, contents)
        << "m=" << g.m << " n=" << g.n << " p=" << p;
  }
}

// < m survivors: Reconstruct fails with a clean DataLoss, whether the
// shortage comes from the channel (session against an outage that erases
// everything after a prefix) or from handing the codec too few blocks
// directly. No partial data is returned either way.
TEST(ChannelPropertyTest, TooFewSurvivorsFailCleanly) {
  for (std::uint64_t trial = 0; trial < 40; ++trial) {
    Rng rng(runtime::StreamSeed(0xDEAD, trial));
    Geometry g = RandomGeometry(&rng);
    if (g.m < 2) g.m = 2;
    if (g.n < g.m) g.n = g.m;
    const auto contents = RandomFile(g.m * g.block_size, &rng);
    auto server = BroadcastServer::Create(OneFileProgram(g), {contents},
                                          g.block_size);
    ASSERT_TRUE(server.ok()) << server.status();

    // The channel delivers only the first k < m slots, then total outage.
    const std::uint64_t k = rng.Uniform(g.m);
    const faults::OutageChannel channel(/*period=*/0, /*start=*/k,
                                        /*length=*/~std::uint64_t{0} - k);
    auto session = RunRetrievalSession(*server, channel, 0, 0,
                                       /*horizon=*/k + 4 * g.n + 64);
    ASSERT_TRUE(session.ok()) << session.status();
    EXPECT_FALSE(session->completed);
    EXPECT_TRUE(session->data.empty());  // No partial output.

    // The codec path agrees: k distinct blocks < m is typed DataLoss.
    auto engine = ida::Dispersal::Create(g.m, g.n, g.block_size);
    ASSERT_TRUE(engine.ok());
    auto blocks = engine->Disperse(0, contents);
    ASSERT_TRUE(blocks.ok());
    std::vector<ida::Block> survivors;
    for (std::size_t i : rng.SampleWithoutReplacement(g.n, k)) {
      survivors.push_back((*blocks)[i]);
    }
    auto rec = engine->Reconstruct(survivors);
    ASSERT_FALSE(rec.ok());
    EXPECT_TRUE(rec.status().IsDataLoss()) << rec.status();
  }
}

// Random subsets of exactly m survivors, fed through the client out of
// order: always byte-identical. (The erasure pattern is arbitrary here,
// not a prefix — this is the "any m of n" claim itself.)
TEST(ChannelPropertyTest, AnyMSurvivorsSufficeThroughClient) {
  for (std::uint64_t trial = 0; trial < 60; ++trial) {
    Rng rng(runtime::StreamSeed(0xC0DE, trial));
    const Geometry g = RandomGeometry(&rng);
    const auto contents = RandomFile(g.m * g.block_size, &rng);
    auto engine = ida::Dispersal::Create(g.m, g.n, g.block_size);
    ASSERT_TRUE(engine.ok());
    auto blocks = engine->Disperse(0, contents);
    ASSERT_TRUE(blocks.ok());
    for (ida::Block& b : *blocks) ida::StampChecksum(&b);

    std::vector<std::size_t> chosen =
        rng.SampleWithoutReplacement(g.n, g.m);
    rng.Shuffle(&chosen);
    ReconstructingClient client(0, g.m, g.n, g.block_size);
    client.set_require_checksums(true);
    bool done = false;
    for (std::size_t i : chosen) {
      done = client.Offer((*blocks)[i]);
    }
    ASSERT_TRUE(done) << "m=" << g.m << " n=" << g.n;
    auto data = client.Reconstruct();
    ASSERT_TRUE(data.ok()) << data.status();
    ASSERT_EQ(*data, contents) << "m=" << g.m << " n=" << g.n;
  }
}

}  // namespace
}  // namespace bdisk::sim
