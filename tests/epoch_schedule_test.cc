// Tests for epoch schedules and the epoch-aware simulator, server, and
// client: validation, swap semantics, and the hot-swap reconstruction
// guarantee (blocks collected across a swap still reconstruct, bit-exact).

#include "sim/epoch.h"

#include <gtest/gtest.h>

#include "bdisk/flat_builder.h"
#include "common/random.h"
#include "sim/client.h"
#include "sim/server.h"
#include "sim/simulation.h"

namespace bdisk::sim {
namespace {

using broadcast::BroadcastProgram;
using broadcast::FlatFileSpec;
using broadcast::FlatLayout;

// Two programs over the same three files (same geometry), different
// layouts — a legal hot-swap pair.
BroadcastProgram ProgramA() {
  auto p = BuildFlatProgram({{"a", 2, 4, {}}, {"b", 3, 5, {}},
                             {"c", 4, 6, {}}},
                            FlatLayout::kContiguous);
  EXPECT_TRUE(p.ok()) << p.status();
  return *p;
}

BroadcastProgram ProgramB() {
  auto p = BuildFlatProgram({{"a", 2, 4, {}}, {"b", 3, 5, {}},
                             {"c", 4, 6, {}}},
                            FlatLayout::kSpread);
  EXPECT_TRUE(p.ok()) << p.status();
  return *p;
}

TEST(EpochScheduleTest, SingleWrapsOneProgram) {
  const EpochSchedule schedule = EpochSchedule::Single(ProgramA());
  EXPECT_EQ(schedule.epoch_count(), 1u);
  EXPECT_EQ(schedule.file_count(), 3u);
  EXPECT_EQ(schedule.EpochIndexAt(0), 0u);
  EXPECT_EQ(schedule.EpochIndexAt(123456), 0u);
}

TEST(EpochScheduleTest, RejectsNonZeroFirstStart) {
  std::vector<ProgramEpoch> epochs;
  epochs.push_back({5, ProgramA()});
  EXPECT_FALSE(EpochSchedule::Create(std::move(epochs)).ok());
}

TEST(EpochScheduleTest, RejectsUnalignedSwap) {
  const BroadcastProgram a = ProgramA();  // Period 9.
  std::vector<ProgramEpoch> epochs;
  epochs.push_back({0, a});
  epochs.push_back({a.period() + 1, ProgramB()});  // Mid-period.
  auto schedule = EpochSchedule::Create(std::move(epochs));
  ASSERT_FALSE(schedule.ok());
  EXPECT_NE(schedule.status().message().find("period boundary"),
            std::string::npos);
}

TEST(EpochScheduleTest, RejectsGeometryChange) {
  auto grown = BuildFlatProgram({{"a", 2, 4, {}}, {"b", 3, 5, {}},
                                 {"c", 4, 7, {}}},  // n changed: 6 -> 7.
                                FlatLayout::kContiguous);
  ASSERT_TRUE(grown.ok());
  const BroadcastProgram a = ProgramA();
  std::vector<ProgramEpoch> epochs;
  epochs.push_back({0, a});
  epochs.push_back({a.period(), *grown});
  auto schedule = EpochSchedule::Create(std::move(epochs));
  ASSERT_FALSE(schedule.ok());
  EXPECT_NE(schedule.status().message().find("geometry"), std::string::npos);
}

TEST(EpochScheduleTest, TransmissionsSwitchAtTheBoundary) {
  const BroadcastProgram a = ProgramA();
  const BroadcastProgram b = ProgramB();
  const std::uint64_t swap = 2 * a.period();
  std::vector<ProgramEpoch> epochs;
  epochs.push_back({0, a});
  epochs.push_back({swap, b});
  auto schedule = EpochSchedule::Create(std::move(epochs));
  ASSERT_TRUE(schedule.ok()) << schedule.status();

  for (std::uint64_t t = 0; t < swap; ++t) {
    EXPECT_EQ(schedule->TransmissionAt(t), a.TransmissionAt(t)) << t;
    EXPECT_EQ(schedule->EpochIndexAt(t), 0u);
  }
  // After the swap the new program governs, rotation restarted at the
  // boundary.
  for (std::uint64_t t = swap; t < swap + 3 * b.period(); ++t) {
    EXPECT_EQ(schedule->TransmissionAt(t), b.TransmissionAt(t - swap)) << t;
    EXPECT_EQ(schedule->EpochIndexAt(t), 1u);
  }
}

TEST(EpochSimulatorTest, SingleEpochMatchesPlainSimulator) {
  const BroadcastProgram a = ProgramA();
  const EpochSchedule schedule = EpochSchedule::Single(a);
  BernoulliFaultModel faults1(0.1, 77);
  BernoulliFaultModel faults2(0.1, 77);
  Simulator plain(a, &faults1, 20000);
  Simulator epoch(schedule, &faults2, 20000);

  WorkloadConfig config;
  config.requests_per_file = 300;
  config.seed = 5;
  auto m1 = plain.RunWorkload(config);
  auto m2 = epoch.RunWorkload(config);
  ASSERT_TRUE(m1.ok()) << m1.status();
  ASSERT_TRUE(m2.ok()) << m2.status();
  ASSERT_EQ(m1->per_file.size(), m2->per_file.size());
  for (std::size_t f = 0; f < m1->per_file.size(); ++f) {
    EXPECT_EQ(m1->per_file[f].completed, m2->per_file[f].completed);
    EXPECT_EQ(m1->per_file[f].latency.sum(), m2->per_file[f].latency.sum());
    EXPECT_EQ(m1->per_file[f].errors_observed,
              m2->per_file[f].errors_observed);
  }
}

TEST(EpochSimulatorTest, RunRequestsMatchesRetrieve) {
  const BroadcastProgram a = ProgramA();
  BernoulliFaultModel faults(0.05, 3);
  Simulator sim(a, &faults, 5000);
  std::vector<ClientRequest> requests;
  for (std::uint64_t k = 0; k < 50; ++k) {
    ClientRequest req;
    req.file = static_cast<broadcast::FileIndex>(k % 3);
    req.start_slot = 17 * k;
    requests.push_back(req);
  }
  auto metrics = sim.RunRequests(requests);
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  RunningStats expected;
  std::uint64_t completed = 0;
  for (const ClientRequest& req : requests) {
    auto outcome = sim.Retrieve(req);
    ASSERT_TRUE(outcome.ok());
    if (outcome->completed) {
      ++completed;
      expected.Add(static_cast<double>(outcome->latency));
    }
  }
  std::uint64_t got_completed = 0;
  double got_sum = 0.0;
  for (const auto& fm : metrics->per_file) {
    got_completed += fm.completed;
    got_sum += fm.latency.sum();
  }
  EXPECT_EQ(got_completed, completed);
  EXPECT_DOUBLE_EQ(got_sum, expected.sum());
}

TEST(EpochSimulatorTest, RunRequestsRejectsBadRequests) {
  const BroadcastProgram a = ProgramA();
  NoFaultModel faults;
  Simulator sim(a, &faults, 1000);
  ClientRequest bad_file;
  bad_file.file = 99;
  EXPECT_FALSE(sim.RunRequests({bad_file}).ok());
  ClientRequest bad_start;
  bad_start.start_slot = 1000;
  EXPECT_FALSE(sim.RunRequests({bad_start}).ok());
}

// The acceptance-criteria equivalence test: a byte-level retrieval that
// spans a hot swap reconstructs bit-identically to a from-scratch
// retrieval under the new program alone.
TEST(HotSwapEquivalenceTest, ReconstructionSpanningSwapIsBitIdentical) {
  const BroadcastProgram a = ProgramA();
  const BroadcastProgram b = ProgramB();
  const std::uint64_t swap = a.period();  // Swap after one period.
  std::vector<ProgramEpoch> epochs;
  epochs.push_back({0, a});
  epochs.push_back({swap, b});
  auto schedule = EpochSchedule::Create(std::move(epochs));
  ASSERT_TRUE(schedule.ok()) << schedule.status();

  constexpr std::size_t kBlockSize = 48;
  Rng rng(2026);
  std::vector<std::vector<std::uint8_t>> contents;
  for (std::size_t f = 0; f < a.file_count(); ++f) {
    std::vector<std::uint8_t> data(a.files()[f].m * kBlockSize);
    for (auto& byte : data) byte = static_cast<std::uint8_t>(rng.Uniform(256));
    contents.push_back(std::move(data));
  }
  auto swapping = BroadcastServer::Create(*schedule, contents, kBlockSize);
  ASSERT_TRUE(swapping.ok()) << swapping.status();
  auto fresh = BroadcastServer::Create(b, contents, kBlockSize);
  ASSERT_TRUE(fresh.ok()) << fresh.status();

  const std::uint64_t horizon = swap + 50 * b.DataCycleLength();
  for (broadcast::FileIndex f = 0; f < a.file_count(); ++f) {
    // Start inside epoch 0, late enough that completion crosses the swap:
    // file c's m = 4 blocks cannot all be heard in the few pre-swap slots
    // left after `start`, and a and b are checked at every viable start.
    for (std::uint64_t start = 1; start < swap; ++start) {
      NoFaultModel faults;
      auto spanning =
          RunRetrievalSession(*swapping, &faults, f, start, horizon);
      ASSERT_TRUE(spanning.ok()) << spanning.status();
      ASSERT_TRUE(spanning->completed);
      if (spanning->completion_slot < swap) continue;  // Did not span.
      EXPECT_GE(spanning->epochs_spanned, 1u);
      // Bit-identical to the ground truth...
      EXPECT_EQ(spanning->data, contents[f]) << "file " << f << " start "
                                             << start;
      // ...and to a from-scratch retrieval under the new program alone.
      NoFaultModel fresh_faults;
      auto from_scratch = RunRetrievalSession(*fresh, &fresh_faults, f, 0,
                                              horizon);
      ASSERT_TRUE(from_scratch.ok()) << from_scratch.status();
      ASSERT_TRUE(from_scratch->completed);
      EXPECT_EQ(spanning->data, from_scratch->data)
          << "file " << f << " start " << start;
    }
  }

  // At least one session per file must actually have collected blocks
  // under both epochs (the guarantee is vacuous otherwise).
  for (broadcast::FileIndex f = 0; f < a.file_count(); ++f) {
    bool spanned_both = false;
    for (std::uint64_t start = 1; start < swap && !spanned_both; ++start) {
      NoFaultModel faults;
      auto session =
          RunRetrievalSession(*swapping, &faults, f, start, horizon);
      ASSERT_TRUE(session.ok());
      spanned_both = session->completed && session->epochs_spanned >= 2;
    }
    EXPECT_TRUE(spanned_both) << "file " << f;
  }
}

}  // namespace
}  // namespace bdisk::sim
