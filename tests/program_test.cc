// Tests for BroadcastProgram, built around the paper's Figures 5 and 6.

#include "bdisk/program.h"

#include <gtest/gtest.h>

#include <set>

namespace bdisk::broadcast {
namespace {

// The paper's Figure 6 program: files A (m=5, n=10) and B (m=3, n=6),
// period 8, layout A B A A B A B A, data cycle 16.
BroadcastProgram Figure6Program() {
  std::vector<ProgramFile> files{
      {"A", 5, 10, {}},
      {"B", 3, 6, {}},
  };
  std::vector<FileIndex> slots{0, 1, 0, 0, 1, 0, 1, 0};
  auto p = BroadcastProgram::Create(std::move(files), std::move(slots));
  EXPECT_TRUE(p.ok());
  return *p;
}

// The Figure 5 program: same layout, no dispersal (n = m).
BroadcastProgram Figure5Program() {
  std::vector<ProgramFile> files{
      {"A", 5, 5, {}},
      {"B", 3, 3, {}},
  };
  std::vector<FileIndex> slots{0, 1, 0, 0, 1, 0, 1, 0};
  auto p = BroadcastProgram::Create(std::move(files), std::move(slots));
  EXPECT_TRUE(p.ok());
  return *p;
}

TEST(ProgramTest, CreateValidation) {
  EXPECT_FALSE(BroadcastProgram::Create({}, {0}).ok());
  EXPECT_FALSE(BroadcastProgram::Create({{"A", 1, 1, {}}}, {}).ok());
  // n < m.
  EXPECT_FALSE(BroadcastProgram::Create({{"A", 3, 2, {}}}, {0}).ok());
  // Slot referencing unknown file.
  EXPECT_FALSE(BroadcastProgram::Create({{"A", 1, 1, {}}}, {1}).ok());
  // File never broadcast.
  EXPECT_FALSE(
      BroadcastProgram::Create({{"A", 1, 1, {}}, {"B", 1, 1, {}}}, {0}).ok());
}

TEST(ProgramTest, PeriodAndCounts) {
  const BroadcastProgram p = Figure6Program();
  EXPECT_EQ(p.period(), 8u);
  EXPECT_EQ(p.CountOf(0), 5u);
  EXPECT_EQ(p.CountOf(1), 3u);
  EXPECT_DOUBLE_EQ(p.Utilization(), 1.0);
}

// The paper: "While the broadcast period for the broadcast disk is still 8,
// ... resulting in a program data cycle of 16."
TEST(ProgramTest, Figure6DataCycleIs16) {
  const BroadcastProgram p = Figure6Program();
  EXPECT_EQ(p.DataCycleLength(), 16u);
}

TEST(ProgramTest, Figure5DataCycleEqualsPeriod) {
  const BroadcastProgram p = Figure5Program();
  EXPECT_EQ(p.DataCycleLength(), 8u);
}

TEST(ProgramTest, RotationCoversAllDispersedBlocks) {
  const BroadcastProgram p = Figure6Program();
  // Across one data cycle, file A must transmit blocks 0..9 exactly once
  // and file B blocks 0..5 exactly once.
  std::multiset<std::uint32_t> a_blocks;
  std::multiset<std::uint32_t> b_blocks;
  for (std::uint64_t t = 0; t < p.DataCycleLength(); ++t) {
    const auto tx = p.TransmissionAt(t);
    ASSERT_TRUE(tx.has_value());
    if (tx->file == 0) {
      a_blocks.insert(tx->block_index);
    } else {
      b_blocks.insert(tx->block_index);
    }
  }
  EXPECT_EQ(a_blocks.size(), 10u);
  EXPECT_EQ(b_blocks.size(), 6u);
  for (std::uint32_t k = 0; k < 10; ++k) EXPECT_EQ(a_blocks.count(k), 1u);
  for (std::uint32_t k = 0; k < 6; ++k) EXPECT_EQ(b_blocks.count(k), 1u);
}

TEST(ProgramTest, RotationIsPeriodicWithDataCycle) {
  const BroadcastProgram p = Figure6Program();
  for (std::uint64_t t = 0; t < 2 * p.DataCycleLength(); ++t) {
    const auto a = p.TransmissionAt(t);
    const auto b = p.TransmissionAt(t + p.DataCycleLength());
    ASSERT_EQ(a.has_value(), b.has_value());
    if (a.has_value()) {
      EXPECT_EQ(*a, *b) << "slot " << t;
    }
  }
}

TEST(ProgramTest, ConsecutiveTransmissionsCarryDistinctBlocks) {
  const BroadcastProgram p = Figure6Program();
  // Any n consecutive transmissions of a file have pairwise distinct
  // blocks; check runs of 5 for A starting at every occurrence.
  const auto& occ = p.OccurrencesOf(0);
  for (std::uint64_t start = 0; start < p.DataCycleLength(); ++start) {
    std::set<std::uint32_t> run;
    std::uint64_t count = 0;
    for (std::uint64_t t = start; count < 5; ++t) {
      const auto tx = p.TransmissionAt(t);
      if (!tx.has_value() || tx->file != 0) continue;
      run.insert(tx->block_index);
      ++count;
    }
    EXPECT_EQ(run.size(), 5u) << "start " << start;
  }
  (void)occ;
}

TEST(ProgramTest, FileAtAndIdle) {
  std::vector<ProgramFile> files{{"A", 1, 1, {}}};
  std::vector<FileIndex> slots{0, BroadcastProgram::kIdleSlot};
  auto p = BroadcastProgram::Create(std::move(files), std::move(slots));
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->FileAt(0), std::optional<FileIndex>(0));
  EXPECT_EQ(p->FileAt(1), std::nullopt);
  EXPECT_EQ(p->FileAt(2), std::optional<FileIndex>(0));  // Wraps.
  EXPECT_FALSE(p->TransmissionAt(1).has_value());
  EXPECT_DOUBLE_EQ(p->Utilization(), 0.5);
}

TEST(ProgramTest, MaxGapOf) {
  const BroadcastProgram p = Figure6Program();
  // A at slots 0,2,3,5,7: gaps 2,1,2,2, wrap 7->8: 1. Max 2.
  EXPECT_EQ(p.MaxGapOf(0), 2u);
  // B at slots 1,4,6: gaps 3,2, wrap 6->9: 3. Max 3.
  EXPECT_EQ(p.MaxGapOf(1), 3u);
}

TEST(ProgramTest, VerifyBroadcastConditionsPass) {
  // A needs 5 of every 8 even with 2 faults? A occupies 5 of every 8
  // slots... bc(5, [8]) holds; with fault levels 8 is too tight, so use
  // [8] only. B: 3 of every 8.
  std::vector<ProgramFile> files{
      {"A", 5, 10, {8}},
      {"B", 3, 6, {8}},
  };
  std::vector<FileIndex> slots{0, 1, 0, 0, 1, 0, 1, 0};
  auto p = BroadcastProgram::Create(std::move(files), std::move(slots));
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->VerifyBroadcastConditions().ok());
}

TEST(ProgramTest, VerifyBroadcastConditionsFail) {
  std::vector<ProgramFile> files{
      {"A", 5, 10, {8, 8}},  // Level 1 needs 6 of every 8: impossible here.
      {"B", 3, 6, {}},
  };
  std::vector<FileIndex> slots{0, 1, 0, 0, 1, 0, 1, 0};
  auto p = BroadcastProgram::Create(std::move(files), std::move(slots));
  ASSERT_TRUE(p.ok());
  Status st = p->VerifyBroadcastConditions();
  EXPECT_TRUE(st.IsInfeasible());
  EXPECT_NE(st.message().find("A"), std::string::npos);
}

TEST(ProgramTest, ToStringShowsRotatedBlocks) {
  const BroadcastProgram p = Figure6Program();
  // First period: A0 B0 A1 A2 B1 A3 B2 A4; second period continues A5...
  const std::string two = p.ToString(2);
  EXPECT_EQ(two,
            "A0 B0 A1 A2 B1 A3 B2 A4 A5 B3 A6 A7 B4 A8 B5 A9");
}

TEST(ProgramTest, DataCycleWithCoprimeRotation) {
  // One file, 2 slots per period, rotating 3 blocks: data cycle =
  // period * 3 / gcd(2,3) = 3 periods.
  std::vector<ProgramFile> files{{"A", 2, 3, {}}};
  std::vector<FileIndex> slots{0, 0, BroadcastProgram::kIdleSlot};
  auto p = BroadcastProgram::Create(std::move(files), std::move(slots));
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->DataCycleLength(), 9u);
}

}  // namespace
}  // namespace bdisk::broadcast
