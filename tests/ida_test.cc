// Unit, property and failure-injection tests for IDA / AIDA.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/random.h"
#include "gf/gf256.h"
#include "gf/matrix.h"
#include "ida/aida.h"
#include "ida/block.h"
#include "ida/dispersal.h"

namespace bdisk::ida {
namespace {

std::vector<std::uint8_t> RandomFile(std::size_t size, Rng* rng) {
  std::vector<std::uint8_t> data(size);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng->Uniform(256));
  return data;
}

TEST(BlockHeaderTest, ToStringIncludesAllFields) {
  BlockHeader h{3, 4, 5, 10};
  EXPECT_EQ(h.ToString(), "file=3 block=4/10 (m=5) v0");
  BlockHeader none;
  EXPECT_NE(none.ToString().find("<none>"), std::string::npos);
}

TEST(DispersalTest, CreateValidation) {
  EXPECT_TRUE(Dispersal::Create(0, 5, 16).status().IsInvalidArgument());
  EXPECT_TRUE(Dispersal::Create(5, 4, 16).status().IsInvalidArgument());
  EXPECT_TRUE(Dispersal::Create(5, 10, 0).status().IsInvalidArgument());
  EXPECT_TRUE(Dispersal::Create(5, 300, 16).status().IsInvalidArgument());
  EXPECT_TRUE(Dispersal::Create(5, 10, 16).ok());
  EXPECT_TRUE(Dispersal::Create(1, 1, 1).ok());
}

TEST(DispersalTest, DisperseProducesSelfIdentifyingBlocks) {
  auto d = Dispersal::Create(3, 6, 8);
  ASSERT_TRUE(d.ok());
  Rng rng(1);
  const auto file = RandomFile(3 * 8, &rng);
  auto blocks = d->Disperse(7, file);
  ASSERT_TRUE(blocks.ok());
  ASSERT_EQ(blocks->size(), 6u);
  for (std::uint32_t i = 0; i < 6; ++i) {
    EXPECT_EQ((*blocks)[i].header.file_id, 7u);
    EXPECT_EQ((*blocks)[i].header.block_index, i);
    EXPECT_EQ((*blocks)[i].header.reconstruct_threshold, 3u);
    EXPECT_EQ((*blocks)[i].header.total_blocks, 6u);
    EXPECT_EQ((*blocks)[i].payload.size(), 8u);
  }
}

TEST(DispersalTest, SystematicPrefixCopiesData) {
  auto d = Dispersal::Create(2, 5, 4);
  ASSERT_TRUE(d.ok());
  const std::vector<std::uint8_t> file{1, 2, 3, 4, 5, 6, 7, 8};
  auto blocks = d->Disperse(0, file);
  ASSERT_TRUE(blocks.ok());
  EXPECT_EQ((*blocks)[0].payload, (std::vector<std::uint8_t>{1, 2, 3, 4}));
  EXPECT_EQ((*blocks)[1].payload, (std::vector<std::uint8_t>{5, 6, 7, 8}));
}

TEST(DispersalTest, WrongFileSizeRejected) {
  auto d = Dispersal::Create(3, 6, 8);
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d->Disperse(0, std::vector<std::uint8_t>(23, 0))
                  .status()
                  .IsInvalidArgument());
}

// Property: any m of the N dispersed blocks reconstruct the original —
// exhaustive over all C(6,3) = 20 subsets, in random order.
TEST(DispersalTest, AnyMSubsetReconstructsExhaustive) {
  auto d = Dispersal::Create(3, 6, 16);
  ASSERT_TRUE(d.ok());
  Rng rng(2);
  const auto file = RandomFile(3 * 16, &rng);
  auto blocks = d->Disperse(1, file);
  ASSERT_TRUE(blocks.ok());
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = i + 1; j < 6; ++j) {
      for (std::size_t k = j + 1; k < 6; ++k) {
        std::vector<Block> subset{(*blocks)[k], (*blocks)[i], (*blocks)[j]};
        auto rec = d->Reconstruct(subset);
        ASSERT_TRUE(rec.ok()) << "subset " << i << "," << j << "," << k;
        EXPECT_EQ(*rec, file);
      }
    }
  }
}

struct GeometryParam {
  std::uint32_t m;
  std::uint32_t n;
  std::size_t block_size;
};

class DispersalGeometryTest : public ::testing::TestWithParam<GeometryParam> {};

// Property sweep over geometries: random m-subsets reconstruct; m-1 blocks
// fail with DataLoss.
TEST_P(DispersalGeometryTest, RandomSubsetsRoundTrip) {
  const GeometryParam p = GetParam();
  auto d = Dispersal::Create(p.m, p.n, p.block_size);
  ASSERT_TRUE(d.ok());
  Rng rng(p.m * 1000003 + p.n);
  const auto file = RandomFile(p.m * p.block_size, &rng);
  auto blocks = d->Disperse(9, file);
  ASSERT_TRUE(blocks.ok());

  for (int trial = 0; trial < 10; ++trial) {
    const auto idx = rng.SampleWithoutReplacement(p.n, p.m);
    std::vector<Block> subset;
    for (std::size_t i : idx) subset.push_back((*blocks)[i]);
    auto rec = d->Reconstruct(subset);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(*rec, file);
  }

  if (p.m > 1) {
    const auto idx = rng.SampleWithoutReplacement(p.n, p.m - 1);
    std::vector<Block> subset;
    for (std::size_t i : idx) subset.push_back((*blocks)[i]);
    EXPECT_TRUE(d->Reconstruct(subset).status().IsDataLoss());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, DispersalGeometryTest,
    ::testing::Values(GeometryParam{1, 1, 4}, GeometryParam{1, 8, 4},
                      GeometryParam{2, 3, 32}, GeometryParam{5, 10, 64},
                      GeometryParam{8, 12, 128}, GeometryParam{16, 24, 16},
                      GeometryParam{32, 48, 8}, GeometryParam{64, 96, 4}),
    [](const ::testing::TestParamInfo<GeometryParam>& info) {
      std::string name = "m";
      name += std::to_string(info.param.m);
      name += "n";
      name += std::to_string(info.param.n);
      name += "b";
      name += std::to_string(info.param.block_size);
      return name;
    });

TEST(DispersalTest, DuplicateBlocksIgnored) {
  auto d = Dispersal::Create(2, 4, 8);
  ASSERT_TRUE(d.ok());
  Rng rng(3);
  const auto file = RandomFile(16, &rng);
  auto blocks = d->Disperse(0, file);
  ASSERT_TRUE(blocks.ok());
  // Duplicates of block 0 do not count toward the threshold.
  std::vector<Block> dup{(*blocks)[0], (*blocks)[0], (*blocks)[0]};
  EXPECT_TRUE(d->Reconstruct(dup).status().IsDataLoss());
  // But a duplicate plus a distinct block works.
  std::vector<Block> okset{(*blocks)[0], (*blocks)[0], (*blocks)[3]};
  auto rec = d->Reconstruct(okset);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(*rec, file);
}

TEST(DispersalTest, GeometryMismatchRejected) {
  auto d = Dispersal::Create(2, 4, 8);
  auto other = Dispersal::Create(3, 6, 8);
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE(other.ok());
  Rng rng(4);
  auto foreign = other->Disperse(0, RandomFile(24, &rng));
  ASSERT_TRUE(foreign.ok());
  std::vector<Block> mixed{(*foreign)[0], (*foreign)[1]};
  EXPECT_TRUE(d->Reconstruct(mixed).status().IsInvalidArgument());
}

TEST(DispersalTest, CorruptPayloadSizeRejected) {
  auto d = Dispersal::Create(2, 4, 8);
  ASSERT_TRUE(d.ok());
  Rng rng(5);
  auto blocks = d->Disperse(0, RandomFile(16, &rng));
  ASSERT_TRUE(blocks.ok());
  (*blocks)[1].payload.resize(5);
  std::vector<Block> subset{(*blocks)[0], (*blocks)[1]};
  EXPECT_TRUE(d->Reconstruct(subset).status().IsInvalidArgument());
}

TEST(DispersalTest, InverseCacheGrowsAndIsReused) {
  auto d = Dispersal::Create(2, 4, 8);
  ASSERT_TRUE(d.ok());
  Rng rng(6);
  const auto file = RandomFile(16, &rng);
  auto blocks = d->Disperse(0, file);
  ASSERT_TRUE(blocks.ok());
  EXPECT_EQ(d->cached_inverse_count(), 0u);
  std::vector<Block> s1{(*blocks)[0], (*blocks)[2]};
  ASSERT_TRUE(d->Reconstruct(s1).ok());
  EXPECT_EQ(d->cached_inverse_count(), 1u);
  // Same subset in the other order hits the cache.
  std::vector<Block> s2{(*blocks)[2], (*blocks)[0]};
  ASSERT_TRUE(d->Reconstruct(s2).ok());
  EXPECT_EQ(d->cached_inverse_count(), 1u);
  std::vector<Block> s3{(*blocks)[1], (*blocks)[3]};
  ASSERT_TRUE(d->Reconstruct(s3).ok());
  EXPECT_EQ(d->cached_inverse_count(), 2u);
}

TEST(AidaTest, AllocateScalesRedundancy) {
  auto aida = Aida::Create(3, 9, 8);
  ASSERT_TRUE(aida.ok());
  Rng rng(7);
  const auto file = RandomFile(24, &rng);
  auto dispersed = aida->Disperse(0, file);
  ASSERT_TRUE(dispersed.ok());

  auto minimal = aida->Allocate(*dispersed, 3);
  ASSERT_TRUE(minimal.ok());
  EXPECT_EQ(minimal->size(), 3u);

  auto maximal = aida->Allocate(*dispersed, 9);
  ASSERT_TRUE(maximal.ok());
  EXPECT_EQ(maximal->size(), 9u);

  EXPECT_TRUE(aida->Allocate(*dispersed, 2).status().IsInvalidArgument());
  EXPECT_TRUE(aida->Allocate(*dispersed, 10).status().IsInvalidArgument());
}

TEST(AidaTest, MinimalAllocationStillReconstructs) {
  auto aida = Aida::Create(3, 9, 8);
  ASSERT_TRUE(aida.ok());
  Rng rng(8);
  const auto file = RandomFile(24, &rng);
  auto tx = aida->DisperseAndAllocate(0, file, 3);
  ASSERT_TRUE(tx.ok());
  auto rec = aida->Reconstruct(*tx);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(*rec, file);
}

TEST(AidaTest, FaultToleranceArithmetic) {
  auto aida = Aida::Create(5, 10, 8);
  ASSERT_TRUE(aida.ok());
  auto n0 = aida->BlocksForFaultTolerance(0);
  ASSERT_TRUE(n0.ok());
  EXPECT_EQ(*n0, 5u);
  auto n5 = aida->BlocksForFaultTolerance(5);
  ASSERT_TRUE(n5.ok());
  EXPECT_EQ(*n5, 10u);
  EXPECT_TRUE(aida->BlocksForFaultTolerance(6).status().IsInvalidArgument());
  EXPECT_DOUBLE_EQ(aida->RedundancyRatio(10), 2.0);
}

TEST(AidaTest, RedundancyProfileModes) {
  RedundancyProfile profile(5, 10);
  profile.SetMode("combat", 10);
  profile.SetMode("landing", 6);
  profile.SetMode("excessive", 99);  // Clamped to n_max.
  EXPECT_EQ(profile.BlocksForMode("combat"), 10u);
  EXPECT_EQ(profile.BlocksForMode("landing"), 6u);
  EXPECT_EQ(profile.BlocksForMode("excessive"), 10u);
  EXPECT_EQ(profile.BlocksForMode("unknown"), 5u);  // Defaults to m.
  EXPECT_EQ(profile.FaultsToleratedInMode("combat"), 5u);
  EXPECT_EQ(profile.FaultsToleratedInMode("unknown"), 0u);
}

TEST(PaddingTest, PadToFileSize) {
  auto padded = PadToFileSize({1, 2, 3}, 2, 4);
  ASSERT_TRUE(padded.ok());
  EXPECT_EQ(*padded, (std::vector<std::uint8_t>{1, 2, 3, 0, 0, 0, 0, 0}));
  EXPECT_TRUE(PadToFileSize(std::vector<std::uint8_t>(9, 1), 2, 4)
                  .status()
                  .IsInvalidArgument());
}

TEST(PaddingTest, BlocksNeeded) {
  EXPECT_EQ(BlocksNeeded(0, 16), 1u);
  EXPECT_EQ(BlocksNeeded(1, 16), 1u);
  EXPECT_EQ(BlocksNeeded(16, 16), 1u);
  EXPECT_EQ(BlocksNeeded(17, 16), 2u);
  EXPECT_EQ(BlocksNeeded(160, 16), 10u);
}

// The paper's Figure 6 geometry: A is 5 blocks dispersed to 10, B is 3
// dispersed to 6; any 5 (resp. 3) reconstruct.
TEST(PaperExampleTest, Figure6Geometries) {
  Rng rng(9);
  auto a = Dispersal::Create(5, 10, 32);
  auto b = Dispersal::Create(3, 6, 32);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const auto file_a = RandomFile(5 * 32, &rng);
  const auto file_b = RandomFile(3 * 32, &rng);
  auto blocks_a = a->Disperse(0, file_a);
  auto blocks_b = b->Disperse(1, file_b);
  ASSERT_TRUE(blocks_a.ok());
  ASSERT_TRUE(blocks_b.ok());
  // Client misses A'1..A'5 entirely and still reconstructs from A'6..A'10.
  std::vector<Block> tail(blocks_a->begin() + 5, blocks_a->end());
  auto rec = a->Reconstruct(tail);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(*rec, file_a);
  // B tolerates any 3 losses out of 6.
  std::vector<Block> some{(*blocks_b)[1], (*blocks_b)[4], (*blocks_b)[5]};
  auto rec_b = b->Reconstruct(some);
  ASSERT_TRUE(rec_b.ok());
  EXPECT_EQ(*rec_b, file_b);
}

TEST(DispersalTest, DisperseMatchesMulSlowReferenceByteIdentically) {
  // The dispersed blocks are a wire format: block i, byte k must equal
  // sum_j M[i][j] * file_j[k] with M = SystematicCauchy(n, m), computed
  // here with the bitwise MulSlow oracle. This pins the encoding against
  // changes to the bulk GF(2^8) kernels that back Disperse.
  const std::uint32_t m = 5;
  const std::uint32_t n = 11;
  const std::size_t block_size = 96;
  auto engine = Dispersal::Create(m, n, block_size);
  ASSERT_TRUE(engine.ok());
  Rng rng(20260728);
  const auto file = RandomFile(m * block_size, &rng);
  auto blocks = engine->Disperse(7, file, 3);
  ASSERT_TRUE(blocks.ok());
  ASSERT_EQ(blocks->size(), n);

  auto matrix = gf::Matrix::SystematicCauchy(n, m);
  ASSERT_TRUE(matrix.ok());
  for (std::uint32_t i = 0; i < n; ++i) {
    const Block& blk = (*blocks)[i];
    ASSERT_EQ(blk.payload.size(), block_size);
    for (std::size_t k = 0; k < block_size; ++k) {
      std::uint8_t expected = 0;
      for (std::uint32_t j = 0; j < m; ++j) {
        expected ^= gf::GF256::MulSlow(matrix->At(i, j),
                                       file[j * block_size + k]);
      }
      ASSERT_EQ(blk.payload[k], expected) << "block=" << i << " byte=" << k;
    }
  }
}

}  // namespace
}  // namespace bdisk::ida
