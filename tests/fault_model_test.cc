// Tests for the channel fault models.

#include "sim/fault_model.h"

#include <gtest/gtest.h>

namespace bdisk::sim {
namespace {

TEST(NoFaultModelTest, NeverCorrupts) {
  NoFaultModel model;
  for (std::uint64_t t = 0; t < 1000; ++t) {
    EXPECT_FALSE(model.Corrupts(t));
  }
}

TEST(BernoulliFaultModelTest, DeterministicAfterReset) {
  BernoulliFaultModel model(0.3, 99);
  std::vector<bool> first;
  for (std::uint64_t t = 0; t < 500; ++t) first.push_back(model.Corrupts(t));
  model.Reset();
  for (std::uint64_t t = 0; t < 500; ++t) {
    EXPECT_EQ(model.Corrupts(t), first[t]) << "slot " << t;
  }
}

TEST(BernoulliFaultModelTest, RateApproximatesP) {
  BernoulliFaultModel model(0.2, 7);
  int losses = 0;
  const int trials = 100000;
  for (int t = 0; t < trials; ++t) {
    if (model.Corrupts(t)) ++losses;
  }
  EXPECT_NEAR(static_cast<double>(losses) / trials, 0.2, 0.01);
}

TEST(BernoulliFaultModelTest, ZeroAndOneRates) {
  BernoulliFaultModel never(0.0, 1);
  BernoulliFaultModel always(1.0, 1);
  for (int t = 0; t < 100; ++t) {
    EXPECT_FALSE(never.Corrupts(t));
    EXPECT_TRUE(always.Corrupts(t));
  }
}

TEST(GilbertElliottTest, DeterministicAfterReset) {
  GilbertElliottFaultModel::Params params;
  GilbertElliottFaultModel model(params, 123);
  std::vector<bool> first;
  for (std::uint64_t t = 0; t < 500; ++t) first.push_back(model.Corrupts(t));
  model.Reset();
  for (std::uint64_t t = 0; t < 500; ++t) {
    EXPECT_EQ(model.Corrupts(t), first[t]);
  }
}

TEST(GilbertElliottTest, StationaryLossRateFormula) {
  GilbertElliottFaultModel::Params params;
  params.p_good_to_bad = 0.1;
  params.p_bad_to_good = 0.3;
  params.loss_good = 0.0;
  params.loss_bad = 1.0;
  GilbertElliottFaultModel model(params, 5);
  // pi_bad = 0.1 / 0.4 = 0.25 -> loss rate 0.25.
  EXPECT_NEAR(model.StationaryLossRate(), 0.25, 1e-12);
}

TEST(GilbertElliottTest, EmpiricalRateMatchesStationary) {
  GilbertElliottFaultModel::Params params;
  params.p_good_to_bad = 0.05;
  params.p_bad_to_good = 0.45;
  GilbertElliottFaultModel model(params, 17);
  int losses = 0;
  const int trials = 200000;
  for (int t = 0; t < trials; ++t) {
    if (model.Corrupts(t)) ++losses;
  }
  EXPECT_NEAR(static_cast<double>(losses) / trials,
              model.StationaryLossRate(), 0.01);
}

TEST(GilbertElliottTest, LossesAreBursty) {
  // With slow transitions, consecutive-loss runs must be much longer than
  // under an independent model of the same rate.
  GilbertElliottFaultModel::Params params;
  params.p_good_to_bad = 0.01;
  params.p_bad_to_good = 0.1;
  GilbertElliottFaultModel model(params, 23);
  int runs = 0;
  int losses = 0;
  bool prev = false;
  for (int t = 0; t < 200000; ++t) {
    const bool lost = model.Corrupts(t);
    if (lost) {
      ++losses;
      if (!prev) ++runs;
    }
    prev = lost;
  }
  ASSERT_GT(runs, 0);
  const double mean_run = static_cast<double>(losses) / runs;
  EXPECT_GT(mean_run, 5.0);  // Expected run length ~ 1/p_bad_to_good = 10.
}

TEST(SlotSetFaultModelTest, ExactSlots) {
  SlotSetFaultModel model({3, 5, 8});
  EXPECT_FALSE(model.Corrupts(0));
  EXPECT_TRUE(model.Corrupts(3));
  EXPECT_FALSE(model.Corrupts(4));
  EXPECT_TRUE(model.Corrupts(5));
  EXPECT_TRUE(model.Corrupts(8));
  model.Reset();
  EXPECT_TRUE(model.Corrupts(3));
}

}  // namespace
}  // namespace bdisk::sim
