// Unit and property tests for GF(2^8) matrices.

#include "gf/matrix.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace bdisk::gf {
namespace {

Matrix RandomMatrix(std::size_t rows, std::size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      m.Set(i, j, static_cast<std::uint8_t>(rng->Uniform(256)));
    }
  }
  return m;
}

TEST(MatrixTest, FromRowMajorValidatesSize) {
  EXPECT_TRUE(Matrix::FromRowMajor(2, 2, {1, 2, 3, 4}).ok());
  EXPECT_TRUE(Matrix::FromRowMajor(2, 2, {1, 2, 3}).status().IsInvalidArgument());
}

TEST(MatrixTest, IdentityMultiplication) {
  Rng rng(1);
  const Matrix m = RandomMatrix(5, 5, &rng);
  const Matrix id = Matrix::Identity(5);
  auto left = id.Mul(m);
  auto right = m.Mul(id);
  ASSERT_TRUE(left.ok());
  ASSERT_TRUE(right.ok());
  EXPECT_TRUE(left->Equals(m));
  EXPECT_TRUE(right->Equals(m));
}

TEST(MatrixTest, MulShapeMismatchFails) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_TRUE(a.Mul(b).status().IsInvalidArgument());
}

TEST(MatrixTest, MulVectorMatchesMatrixMul) {
  Rng rng(2);
  const Matrix m = RandomMatrix(4, 3, &rng);
  std::vector<std::uint8_t> v{10, 20, 30};
  auto mv = m.MulVector(v);
  ASSERT_TRUE(mv.ok());
  auto col = Matrix::FromRowMajor(3, 1, v);
  ASSERT_TRUE(col.ok());
  auto prod = m.Mul(*col);
  ASSERT_TRUE(prod.ok());
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ((*mv)[i], prod->At(i, 0));
  }
}

TEST(MatrixTest, MulVectorSizeMismatchFails) {
  Matrix m(2, 3);
  EXPECT_TRUE(m.MulVector({1, 2}).status().IsInvalidArgument());
}

TEST(MatrixTest, InverseRoundTripProperty) {
  Rng rng(3);
  int invertible_seen = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 1 + rng.Uniform(8);
    const Matrix m = RandomMatrix(n, n, &rng);
    auto inv = m.Inverse();
    if (!inv.ok()) continue;  // Singular random matrix; fine.
    ++invertible_seen;
    auto prod = m.Mul(*inv);
    ASSERT_TRUE(prod.ok());
    EXPECT_TRUE(prod->Equals(Matrix::Identity(n)));
    auto prod2 = inv->Mul(m);
    ASSERT_TRUE(prod2.ok());
    EXPECT_TRUE(prod2->Equals(Matrix::Identity(n)));
  }
  EXPECT_GT(invertible_seen, 20);  // Random GF(256) matrices are mostly invertible.
}

TEST(MatrixTest, SingularMatrixInverseFails) {
  auto m = Matrix::FromRowMajor(2, 2, {1, 2, 1, 2});
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(m->Inverse().status().IsInfeasible());
}

TEST(MatrixTest, NonSquareInverseFails) {
  Matrix m(2, 3);
  EXPECT_TRUE(m.Inverse().status().IsInvalidArgument());
}

TEST(MatrixTest, RankOfIdentity) {
  EXPECT_EQ(Matrix::Identity(6).Rank(), 6u);
}

TEST(MatrixTest, RankOfDuplicatedRows) {
  auto m = Matrix::FromRowMajor(3, 3, {1, 2, 3, 1, 2, 3, 0, 0, 7});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->Rank(), 2u);
}

TEST(MatrixTest, RankOfZero) {
  Matrix m(4, 4);
  EXPECT_EQ(m.Rank(), 0u);
}

TEST(MatrixTest, SelectRowsExtracts) {
  auto m = Matrix::FromRowMajor(3, 2, {1, 2, 3, 4, 5, 6});
  ASSERT_TRUE(m.ok());
  auto sel = m->SelectRows({2, 0});
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->At(0, 0), 5);
  EXPECT_EQ(sel->At(0, 1), 6);
  EXPECT_EQ(sel->At(1, 0), 1);
}

TEST(MatrixTest, SelectRowsOutOfRangeFails) {
  Matrix m(2, 2);
  EXPECT_TRUE(m.SelectRows({0, 5}).status().IsInvalidArgument());
}

TEST(VandermondeTest, ShapeAndLimits) {
  auto v = Matrix::Vandermonde(10, 4);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->rows(), 10u);
  EXPECT_EQ(v->cols(), 4u);
  EXPECT_TRUE(Matrix::Vandermonde(256, 4).status().IsInvalidArgument());
  EXPECT_TRUE(Matrix::Vandermonde(3, 4).status().IsInvalidArgument());
}

TEST(VandermondeTest, AnySquareRowSubsetInvertible) {
  auto v = Matrix::Vandermonde(8, 3);
  ASSERT_TRUE(v.ok());
  // All C(8,3) = 56 row subsets.
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = i + 1; j < 8; ++j) {
      for (std::size_t k = j + 1; k < 8; ++k) {
        auto sq = v->SelectRows({i, j, k});
        ASSERT_TRUE(sq.ok());
        EXPECT_TRUE(sq->Inverse().ok())
            << "rows " << i << "," << j << "," << k;
      }
    }
  }
}

TEST(CauchyTest, ShapeAndLimits) {
  auto c = Matrix::Cauchy(5, 3);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->rows(), 5u);
  EXPECT_TRUE(Matrix::Cauchy(200, 100).status().IsInvalidArgument());
}

TEST(CauchyTest, EverySquareSubmatrixInvertible) {
  auto c = Matrix::Cauchy(6, 4);
  ASSERT_TRUE(c.ok());
  // Full-width row subsets.
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = i + 1; j < 6; ++j) {
      for (std::size_t k = j + 1; k < 6; ++k) {
        for (std::size_t l = k + 1; l < 6; ++l) {
          auto sq = c->SelectRows({i, j, k, l});
          ASSERT_TRUE(sq.ok());
          EXPECT_TRUE(sq->Inverse().ok());
        }
      }
    }
  }
}

TEST(SystematicCauchyTest, TopIsIdentity) {
  auto m = Matrix::SystematicCauchy(7, 4);
  ASSERT_TRUE(m.ok());
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_EQ(m->At(i, j), i == j ? 1 : 0);
    }
  }
}

TEST(SystematicCauchyTest, AnyMRowsInvertibleExhaustive) {
  // The MDS property IDA relies on: any m rows of the dispersal matrix are
  // independent. Exhaustive over C(8, 3) subsets mixing identity and
  // parity rows.
  auto m = Matrix::SystematicCauchy(8, 3);
  ASSERT_TRUE(m.ok());
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = i + 1; j < 8; ++j) {
      for (std::size_t k = j + 1; k < 8; ++k) {
        auto sq = m->SelectRows({i, j, k});
        ASSERT_TRUE(sq.ok());
        EXPECT_TRUE(sq->Inverse().ok())
            << "rows " << i << "," << j << "," << k;
      }
    }
  }
}

TEST(SystematicCauchyTest, NEqualsMIsPlainIdentity) {
  auto m = Matrix::SystematicCauchy(4, 4);
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(m->Equals(Matrix::Identity(4)));
}

TEST(MatrixTest, ToStringFormat) {
  auto m = Matrix::FromRowMajor(1, 2, {0xAB, 0x01});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->ToString(), "ab 01\n");
}

}  // namespace
}  // namespace bdisk::gf
