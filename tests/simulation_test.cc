// Tests for the index-level broadcast-disk simulator.

#include "sim/simulation.h"

#include <gtest/gtest.h>

#include "bdisk/flat_builder.h"

namespace bdisk::sim {
namespace {

broadcast::BroadcastProgram ToyProgram(bool ida) {
  std::vector<broadcast::FlatFileSpec> files{
      {"A", 5, ida ? 10u : 5u, {16}},
      {"B", 3, ida ? 6u : 3u, {16}},
  };
  auto p = broadcast::BuildFlatProgram(files, broadcast::FlatLayout::kSpread);
  EXPECT_TRUE(p.ok());
  return *p;
}

TEST(SimulatorTest, NoFaultRetrievalMatchesOccurrenceCount) {
  const auto p = ToyProgram(true);
  NoFaultModel faults;
  Simulator sim(p, &faults, 1000);
  EXPECT_EQ(sim.CorruptedSlotCount(), 0u);

  ClientRequest req;
  req.file = 1;  // B: m = 3.
  req.start_slot = 0;
  auto outcome = sim.Retrieve(req);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->completed);
  // Completion at the third B transmission at or after slot 0.
  EXPECT_EQ(outcome->completion_slot, p.OccurrencesOf(1)[2]);
  EXPECT_TRUE(outcome->met_deadline);
  EXPECT_EQ(outcome->errors_observed, 0u);
}

TEST(SimulatorTest, ValidationErrors) {
  const auto p = ToyProgram(true);
  NoFaultModel faults;
  Simulator sim(p, &faults, 100);
  ClientRequest bad_file;
  bad_file.file = 9;
  EXPECT_FALSE(sim.Retrieve(bad_file).ok());
  ClientRequest late;
  late.file = 0;
  late.start_slot = 100;
  EXPECT_FALSE(sim.Retrieve(late).ok());
  // Flat model on a rotating program is rejected.
  ClientRequest flat;
  flat.file = 0;
  flat.model = broadcast::ClientModel::kFlat;
  EXPECT_FALSE(sim.Retrieve(flat).ok());
}

TEST(SimulatorTest, TargetedFaultDelaysExactlyToNextBlock) {
  const auto p = ToyProgram(true);
  // Corrupt the third B transmission; client must finish at the fourth.
  const auto& occ = p.OccurrencesOf(1);
  SlotSetFaultModel faults({occ[2]});
  Simulator sim(p, &faults, 1000);

  ClientRequest req;
  req.file = 1;
  req.start_slot = 0;
  auto outcome = sim.Retrieve(req);
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->completed);
  EXPECT_EQ(outcome->errors_observed, 1u);
  // Fourth B transmission lives in the next period.
  EXPECT_EQ(outcome->completion_slot, occ[0] + p.period());
}

TEST(SimulatorTest, FlatClientWaitsForSpecificBlock) {
  const auto p = ToyProgram(false);  // n = m: flat.
  const auto& occ = p.OccurrencesOf(1);
  // Corrupt B's third transmission (block index 2). The flat client needs
  // exactly that block again: one full period later.
  SlotSetFaultModel faults({occ[2]});
  Simulator sim(p, &faults, 1000);
  ClientRequest req;
  req.file = 1;
  req.start_slot = 0;
  req.model = broadcast::ClientModel::kFlat;
  auto outcome = sim.Retrieve(req);
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->completed);
  EXPECT_EQ(outcome->completion_slot, occ[2] + p.period());
}

TEST(SimulatorTest, IdaClientRecoversFasterThanFlat) {
  // Same fault pattern; the IDA client takes any next block, the flat
  // client waits a full period.
  const auto ida_p = ToyProgram(true);
  const auto flat_p = ToyProgram(false);
  const auto& occ = ida_p.OccurrencesOf(0);
  SlotSetFaultModel faults({occ[4]});  // Kill A's fifth transmission.

  Simulator ida_sim(ida_p, &faults, 1000);
  Simulator flat_sim(flat_p, &faults, 1000);
  ClientRequest req;
  req.file = 0;
  req.start_slot = 0;
  auto ida_out = ida_sim.Retrieve(req);
  req.model = broadcast::ClientModel::kFlat;
  auto flat_out = flat_sim.Retrieve(req);
  ASSERT_TRUE(ida_out.ok());
  ASSERT_TRUE(flat_out.ok());
  ASSERT_TRUE(ida_out->completed);
  ASSERT_TRUE(flat_out->completed);
  EXPECT_LT(ida_out->latency, flat_out->latency);
}

TEST(SimulatorTest, IncompleteWhenChannelDead) {
  const auto p = ToyProgram(true);
  BernoulliFaultModel faults(1.0, 1);  // Everything lost.
  Simulator sim(p, &faults, 500);
  ClientRequest req;
  req.file = 0;
  req.start_slot = 0;
  req.deadline_slots = 16;
  auto outcome = sim.Retrieve(req);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->completed);
  EXPECT_FALSE(outcome->met_deadline);
}

TEST(SimulatorTest, DeadlineVerdicts) {
  const auto p = ToyProgram(true);
  NoFaultModel faults;
  Simulator sim(p, &faults, 1000);
  ClientRequest req;
  req.file = 0;
  req.start_slot = 1;
  req.deadline_slots = 3;  // Too tight for 5 blocks.
  auto outcome = sim.Retrieve(req);
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->completed);
  EXPECT_FALSE(outcome->met_deadline);
  req.deadline_slots = 16;
  outcome = sim.Retrieve(req);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->met_deadline);
}

TEST(SimulatorTest, WorkloadAggregation) {
  const auto p = ToyProgram(true);
  NoFaultModel faults;
  Simulator sim(p, &faults, 5000);
  WorkloadConfig config;
  config.requests_per_file = 200;
  config.seed = 7;
  auto metrics = sim.RunWorkload(config);
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  ASSERT_EQ(metrics->per_file.size(), 2u);
  EXPECT_EQ(metrics->TotalAttempts(), 400u);
  // Fault-free: everything completes within its d(0) = 16-slot deadline.
  EXPECT_EQ(metrics->OverallMissRate(), 0.0);
  for (const FileMetrics& fm : metrics->per_file) {
    EXPECT_EQ(fm.completed, 200u);
    EXPECT_EQ(fm.incomplete, 0u);
    EXPECT_GE(fm.latency.min(), 1.0);
    EXPECT_LE(fm.latency.max(), 16.0);
  }
  // Deterministic reruns.
  auto metrics2 = sim.RunWorkload(config);
  ASSERT_TRUE(metrics2.ok());
  EXPECT_EQ(metrics->per_file[0].latency.mean(),
            metrics2->per_file[0].latency.mean());
}

TEST(SimulatorTest, WorkloadMissRateGrowsWithErrorRate) {
  const auto p = ToyProgram(true);
  WorkloadConfig config;
  config.requests_per_file = 300;
  double prev_miss = -1.0;
  for (double rate : {0.0, 0.2, 0.5}) {
    BernoulliFaultModel faults(rate, 11);
    Simulator sim(p, &faults, 20000);
    auto metrics = sim.RunWorkload(config);
    ASSERT_TRUE(metrics.ok());
    EXPECT_GE(metrics->OverallMissRate(), prev_miss);
    prev_miss = metrics->OverallMissRate();
  }
  EXPECT_GT(prev_miss, 0.0);
}

TEST(SimulatorTest, HorizonTooSmallForWorkload) {
  const auto p = ToyProgram(true);
  NoFaultModel faults;
  Simulator sim(p, &faults, 30);
  WorkloadConfig config;
  EXPECT_FALSE(sim.RunWorkload(config).ok());
}

TEST(TransactionTest, CompletesAtLastFile) {
  const auto p = ToyProgram(true);
  NoFaultModel faults;
  Simulator sim(p, &faults, 1000);
  TransactionRequest txn;
  txn.files = {0, 1};
  txn.start_slot = 0;
  auto outcome = sim.RetrieveTransaction(txn);
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->completed);
  // Completion = max of the individual completions.
  ClientRequest r0;
  r0.file = 0;
  ClientRequest r1;
  r1.file = 1;
  auto o0 = sim.Retrieve(r0);
  auto o1 = sim.Retrieve(r1);
  ASSERT_TRUE(o0.ok());
  ASSERT_TRUE(o1.ok());
  EXPECT_EQ(outcome->completion_slot,
            std::max(o0->completion_slot, o1->completion_slot));
}

TEST(TransactionTest, EmptyRejected) {
  const auto p = ToyProgram(true);
  NoFaultModel faults;
  Simulator sim(p, &faults, 100);
  EXPECT_FALSE(sim.RetrieveTransaction({}).ok());
}

TEST(TransactionTest, JointDeadlineVerdict) {
  const auto p = ToyProgram(true);
  NoFaultModel faults;
  Simulator sim(p, &faults, 1000);
  TransactionRequest txn;
  txn.files = {0, 1};
  txn.start_slot = 1;
  txn.deadline_slots = 3;  // Too tight for file A's 5 blocks.
  auto outcome = sim.RetrieveTransaction(txn);
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->completed);
  EXPECT_FALSE(outcome->met_deadline);
  txn.deadline_slots = 32;
  outcome = sim.RetrieveTransaction(txn);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->met_deadline);
}

TEST(TransactionTest, IncompleteFilePropagates) {
  const auto p = ToyProgram(true);
  BernoulliFaultModel faults(1.0, 3);
  Simulator sim(p, &faults, 200);
  TransactionRequest txn;
  txn.files = {0};
  txn.deadline_slots = 50;
  auto outcome = sim.RetrieveTransaction(txn);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->completed);
  EXPECT_FALSE(outcome->met_deadline);
}

TEST(MetricsTest, ToStringContainsFileNames) {
  SimulationMetrics m;
  FileMetrics fm;
  fm.file_name = "alpha";
  fm.completed = 3;
  fm.latency.Add(4.0);
  m.per_file.push_back(fm);
  EXPECT_NE(m.ToString().find("alpha"), std::string::npos);
}

}  // namespace
}  // namespace bdisk::sim
