// Tests for versioned broadcast and absolute temporal consistency.

#include "sim/versioned.h"

#include <gtest/gtest.h>

#include "bdisk/flat_builder.h"
#include "common/random.h"

namespace bdisk::sim {
namespace {

broadcast::BroadcastProgram ToyProgram() {
  std::vector<broadcast::FlatFileSpec> files{
      {"A", 3, 6, {}},
      {"B", 2, 4, {}},
  };
  auto p = broadcast::BuildFlatProgram(files, broadcast::FlatLayout::kSpread);
  EXPECT_TRUE(p.ok());
  return *p;
}

VersionedBroadcastServer MakeServer(std::uint64_t interval_a,
                                    std::uint64_t interval_b) {
  VersionedServerOptions options;
  options.block_size = 16;
  options.update_interval_slots = {interval_a, interval_b};
  auto server = VersionedBroadcastServer::Create(ToyProgram(), options);
  EXPECT_TRUE(server.ok()) << server.status();
  return std::move(*server);
}

TEST(VersionedServerTest, CreateValidation) {
  VersionedServerOptions bad_size;
  bad_size.block_size = 0;
  bad_size.update_interval_slots = {0, 0};
  EXPECT_FALSE(VersionedBroadcastServer::Create(ToyProgram(), bad_size).ok());
  VersionedServerOptions bad_count;
  bad_count.update_interval_slots = {0};
  EXPECT_FALSE(
      VersionedBroadcastServer::Create(ToyProgram(), bad_count).ok());
}

TEST(VersionedServerTest, VersionArithmetic) {
  const auto server = MakeServer(10, 0);
  EXPECT_EQ(server.VersionAt(0, 0), 0u);
  EXPECT_EQ(server.VersionAt(0, 9), 0u);
  EXPECT_EQ(server.VersionAt(0, 10), 1u);
  EXPECT_EQ(server.VersionAt(0, 25), 2u);
  EXPECT_EQ(server.VersionStartSlot(0, 2), 20u);
  // File B never updates.
  EXPECT_EQ(server.VersionAt(1, 1000), 0u);
}

TEST(VersionedServerTest, TransmissionsCarryCurrentVersion) {
  const auto server = MakeServer(10, 0);
  for (std::uint64_t t = 0; t < 60; ++t) {
    auto block = server.TransmissionAt(t);
    ASSERT_TRUE(block.ok());
    ASSERT_TRUE(block->has_value());
    const auto& header = (*block)->header;
    EXPECT_EQ(header.version, server.VersionAt(header.file_id, t))
        << "slot " << t;
  }
}

TEST(VersionedServerTest, ContentsDeterministicPerVersion) {
  const auto server = MakeServer(10, 0);
  EXPECT_EQ(server.ContentsOf(0, 3), server.ContentsOf(0, 3));
  EXPECT_NE(server.ContentsOf(0, 3), server.ContentsOf(0, 4));
  EXPECT_NE(server.ContentsOf(0, 3), server.ContentsOf(1, 3));
}

TEST(MixedVersionTest, ReconstructRejectsMixedSnapshots) {
  auto engine = ida::Dispersal::Create(2, 4, 8);
  ASSERT_TRUE(engine.ok());
  Rng rng(5);
  std::vector<std::uint8_t> v0(16);
  std::vector<std::uint8_t> v1(16);
  for (auto& b : v0) b = static_cast<std::uint8_t>(rng.Uniform(256));
  for (auto& b : v1) b = static_cast<std::uint8_t>(rng.Uniform(256));
  auto blocks_v0 = engine->Disperse(0, v0, 0);
  auto blocks_v1 = engine->Disperse(0, v1, 1);
  ASSERT_TRUE(blocks_v0.ok());
  ASSERT_TRUE(blocks_v1.ok());
  std::vector<ida::Block> mixed{(*blocks_v0)[0], (*blocks_v1)[1]};
  Status st = engine->Reconstruct(mixed).status();
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("version"), std::string::npos);
}

TEST(VersionedRetrievalTest, StableFileRoundTrips) {
  const auto server = MakeServer(0, 0);
  NoFaultModel faults;
  auto session = RunVersionedRetrieval(server, &faults, 0, 0, 1000);
  ASSERT_TRUE(session.ok()) << session.status();
  ASSERT_TRUE(session->completed);
  EXPECT_EQ(session->version, 0u);
  EXPECT_EQ(session->restarts, 0u);
  EXPECT_EQ(session->data, server.ContentsOf(0, 0));
}

TEST(VersionedRetrievalTest, RetrievesFreshVersionAcrossBoundary) {
  // Update every 7 slots; a client starting just before a boundary must
  // restart and end with a consistent *newer* snapshot, byte-exact.
  const auto server = MakeServer(7, 0);
  NoFaultModel faults;
  for (std::uint64_t start = 0; start < 40; ++start) {
    auto session = RunVersionedRetrieval(server, &faults, 0, start, 2000);
    ASSERT_TRUE(session.ok());
    ASSERT_TRUE(session->completed) << "start " << start;
    EXPECT_EQ(session->data, server.ContentsOf(0, session->version))
        << "start " << start;
    // The retrieved version is current sometime within the session.
    EXPECT_GE(session->completion_slot,
              server.VersionStartSlot(0, session->version));
  }
}

TEST(VersionedRetrievalTest, DataAgeBoundedByIntervalPlusRetrieval) {
  const std::uint64_t interval = 20;
  const auto server = MakeServer(interval, 0);
  NoFaultModel faults;
  for (std::uint64_t start = 0; start < 40; ++start) {
    auto session = RunVersionedRetrieval(server, &faults, 0, start, 2000);
    ASSERT_TRUE(session.ok());
    ASSERT_TRUE(session->completed);
    // Age counts from the snapshot's creation; it can never exceed the
    // interval plus the collection time (a newer version would have
    // triggered a restart otherwise).
    EXPECT_LE(session->data_age, interval + session->latency);
  }
}

TEST(VersionedRetrievalTest, TooFastUpdatesStarveRetrieval) {
  // File A needs 3 blocks; its slots come roughly every other slot, so an
  // update interval of 2 can never deliver 3 same-version blocks.
  const auto server = MakeServer(2, 0);
  NoFaultModel faults;
  auto session = RunVersionedRetrieval(server, &faults, 0, 0, 5000);
  ASSERT_TRUE(session.ok());
  EXPECT_FALSE(session->completed);
  EXPECT_GT(session->restarts, 100u);  // Perpetual restarting.
}

TEST(VersionedRetrievalTest, RestartsCountedUnderLoss) {
  const auto server = MakeServer(12, 0);
  BernoulliFaultModel faults(0.3, 99);
  auto session = RunVersionedRetrieval(server, &faults, 0, 0, 20000);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->completed);
  EXPECT_EQ(session->data, server.ContentsOf(0, session->version));
}

}  // namespace
}  // namespace bdisk::sim
