// Semantic tests for the pinwheel algebra rules R0-R5 and TR1/TR2
// (paper, Figure 8 and Section 4.2).
//
// Beyond checking the arithmetic, each forward rule is validated
// *semantically*: we build concrete schedules satisfying the RHS and verify
// the derived LHS condition over the full cycle with the exhaustive
// verifier.

#include "algebra/rules.h"

#include <gtest/gtest.h>

#include "pinwheel/schedule.h"
#include "pinwheel/verifier.h"

namespace bdisk::algebra {
namespace {

using pinwheel::Schedule;
using pinwheel::Verifier;

// A residue-class schedule: task 1 on `count` classes of period `period`
// (slots 0, ..., count-1 mod period). Satisfies pc(count, period).
Schedule ResidueSchedule(std::uint64_t count, std::uint64_t period) {
  std::vector<pinwheel::TaskId> cycle(period, Schedule::kIdle);
  for (std::uint64_t k = 0; k < count; ++k) cycle[k] = 1;
  auto s = Schedule::FromCycle(std::move(cycle));
  EXPECT_TRUE(s.ok());
  return *s;
}

bool ScheduleSatisfies(const Schedule& s, const PinwheelCondition& c) {
  return Verifier::MinWindowCount(s, 1, c.b) >= c.a;
}

TEST(RuleR0Test, Arithmetic) {
  auto r = RuleR0({3, 7}, 1, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (PinwheelCondition{2, 9}));
  EXPECT_TRUE(RuleR0({3, 7}, 3, 0).status().IsInvalidArgument());
}

TEST(RuleR0Test, SemanticImplication) {
  // Schedule satisfying pc(3, 7) must satisfy every R0 weakening.
  const Schedule s = ResidueSchedule(3, 7);
  ASSERT_TRUE(ScheduleSatisfies(s, {3, 7}));
  for (std::uint64_t x = 0; x < 3; ++x) {
    for (std::uint64_t y = 0; y <= 5; ++y) {
      auto weak = RuleR0({3, 7}, x, y);
      ASSERT_TRUE(weak.ok());
      EXPECT_TRUE(ScheduleSatisfies(s, *weak))
          << "x=" << x << " y=" << y << " -> " << weak->ToString();
    }
  }
}

TEST(RuleR1Test, Arithmetic) {
  auto r = RuleR1({2, 5}, 3);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (PinwheelCondition{6, 15}));
  EXPECT_TRUE(RuleR1({2, 5}, 0).status().IsInvalidArgument());
}

TEST(RuleR1Test, SemanticImplication) {
  const Schedule s = ResidueSchedule(2, 5);
  for (std::uint64_t n = 1; n <= 6; ++n) {
    auto scaled = RuleR1({2, 5}, n);
    ASSERT_TRUE(scaled.ok());
    EXPECT_TRUE(ScheduleSatisfies(s, *scaled)) << scaled->ToString();
  }
}

TEST(RuleR2Test, Arithmetic) {
  auto r = RuleR2({4, 9}, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (PinwheelCondition{2, 7}));
  EXPECT_TRUE(RuleR2({4, 9}, 4).status().IsInvalidArgument());
}

TEST(RuleR2Test, SemanticImplication) {
  const Schedule s = ResidueSchedule(4, 9);
  for (std::uint64_t x = 0; x < 4; ++x) {
    auto shrunk = RuleR2({4, 9}, x);
    ASSERT_TRUE(shrunk.ok());
    EXPECT_TRUE(ScheduleSatisfies(s, *shrunk)) << shrunk->ToString();
  }
}

TEST(RuleR3Test, Arithmetic) {
  EXPECT_EQ(RuleR3({2, 5}), (PinwheelCondition{1, 2}));
  EXPECT_EQ(RuleR3({3, 7}), (PinwheelCondition{1, 2}));
  EXPECT_EQ(RuleR3({1, 9}), (PinwheelCondition{1, 9}));
}

TEST(RuleR3Test, SemanticStrengthening) {
  // A schedule satisfying pc(1, floor(b/a)) satisfies pc(a, b): sweep.
  for (std::uint64_t b = 2; b <= 12; ++b) {
    for (std::uint64_t a = 1; a <= b; ++a) {
      const PinwheelCondition strong = RuleR3({a, b});
      // Residue schedule for the strengthened condition: every strong.b-th
      // slot.
      std::vector<pinwheel::TaskId> cycle(strong.b, Schedule::kIdle);
      cycle[0] = 1;
      auto s = Schedule::FromCycle(std::move(cycle));
      ASSERT_TRUE(s.ok());
      EXPECT_GE(Verifier::MinWindowCount(*s, 1, b), a)
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(RuleR4Test, Arithmetic) {
  auto r = RuleR4({4, 8}, {1, 9});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (PinwheelCondition{5, 9}));
  // Helper window below the base window is rejected.
  EXPECT_TRUE(RuleR4({4, 8}, {1, 7}).status().IsInvalidArgument());
}

TEST(RuleR4Test, SemanticImplication) {
  // Base: task at slots {0,1,2,3} mod 8 => pc(4, 8). Helper: slot 4 mod 8,
  // disjoint from the base and satisfying pc(1, 9) (gap 8 < 9). R4 then
  // derives pc(5, 9) for the union.
  std::vector<pinwheel::TaskId> cycle(8, Schedule::kIdle);
  for (std::uint64_t t = 0; t < 4; ++t) cycle[t] = 1;
  cycle[4] = 1;
  auto s = Schedule::FromCycle(std::move(cycle));
  ASSERT_TRUE(s.ok());
  ASSERT_GE(Verifier::MinWindowCount(*s, 1, 8), 4u);  // Base holds.
  ASSERT_GE(Verifier::MinWindowCount(*s, 1, 9), 1u);  // Helper holds.
  // Combined condition pc(5, 9) must hold.
  EXPECT_GE(Verifier::MinWindowCount(*s, 1, 9), 5u);
}

TEST(RuleR5Test, Arithmetic) {
  // Example 4: base pc(1,2), n = 5, helper pc(1,10) => pc(5, 9).
  auto r = RuleR5({1, 2}, 5, {1, 10});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (PinwheelCondition{5, 9}));
  EXPECT_TRUE(RuleR5({1, 2}, 5, {1, 9}).status().IsInvalidArgument());
  EXPECT_TRUE(RuleR5({1, 2}, 5, {10, 10}).status().IsInvalidArgument());
}

TEST(RuleR5Test, SemanticImplication) {
  // Base: every even slot (pc(1,2)); helper: one slot of period 10,
  // disjoint from the base slots. Combined: pc(5, 9) must hold.
  std::vector<pinwheel::TaskId> cycle(10, Schedule::kIdle);
  for (std::uint64_t t = 0; t < 10; t += 2) cycle[t] = 1;
  cycle[9] = 1;
  auto s = Schedule::FromCycle(std::move(cycle));
  ASSERT_TRUE(s.ok());
  EXPECT_GE(Verifier::MinWindowCount(*s, 1, 9), 5u);
}

TEST(RuleTR1Test, PaperExample2) {
  // bc(5, [100,105,110,115,120]) <= pc(1, 13).
  BroadcastCondition bc{5, {100, 105, 110, 115, 120}};
  auto r = RuleTR1(bc);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (PinwheelCondition{1, 13}));
  EXPECT_NEAR(r->density(), 0.0769, 0.0001);
}

TEST(RuleTR1Test, PaperExample3) {
  // bc(6, [105, 110]) <= pc(1, 15).
  BroadcastCondition bc{6, {105, 110}};
  auto r = RuleTR1(bc);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (PinwheelCondition{1, 15}));
}

TEST(RuleTR1Test, PaperExample4GivesDensityOne) {
  // bc(4, [8, 9]) <= pc(1, 1) (density 1.0) per the paper.
  BroadcastCondition bc{4, {8, 9}};
  auto r = RuleTR1(bc);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (PinwheelCondition{1, 1}));
}

TEST(RuleTR1Test, SemanticSufficiency) {
  // A schedule realizing the TR1 condition satisfies every level of the bc.
  BroadcastCondition bc{2, {9, 11, 14}};
  auto strong = RuleTR1(bc);
  ASSERT_TRUE(strong.ok());
  std::vector<pinwheel::TaskId> cycle(strong->b, Schedule::kIdle);
  cycle[0] = 1;
  auto s = Schedule::FromCycle(std::move(cycle));
  ASSERT_TRUE(s.ok());
  for (std::size_t j = 0; j < bc.d.size(); ++j) {
    EXPECT_GE(Verifier::MinWindowCount(*s, 1, bc.d[j]), bc.m + j)
        << "level " << j;
  }
}

TEST(RuleTR2Test, StructureMatchesPaper) {
  BroadcastCondition bc{6, {105, 110}};
  auto r = RuleTR2(bc);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->conditions.size(), 2u);
  EXPECT_EQ(r->conditions[0].condition, (PinwheelCondition{6, 105}));
  EXPECT_FALSE(r->conditions[0].is_helper);
  EXPECT_EQ(r->conditions[1].condition, (PinwheelCondition{1, 110}));
  EXPECT_TRUE(r->conditions[1].is_helper);
  // Paper: density 6/105 + 1/110 = 0.0662.
  EXPECT_NEAR(r->density(), 0.0662, 0.0001);
}

TEST(RuleTR2Test, Example4Density) {
  // TR2 on bc(4, [8,9]): pc(4,8) ∧ pc'(1,9), density 0.6111.
  BroadcastCondition bc{4, {8, 9}};
  auto r = RuleTR2(bc);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->density(), 4.0 / 8 + 1.0 / 9, 1e-12);
}

TEST(RuleTR2Test, RegularFileDegeneratesToSingleCondition) {
  BroadcastCondition bc{3, {12}};
  auto r = RuleTR2(bc);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->conditions.size(), 1u);
}

TEST(MappedConjunctTest, ToStringRendersHelpers) {
  BroadcastCondition bc{4, {8, 9}};
  auto r = RuleTR2(bc);
  ASSERT_TRUE(r.ok());
  const std::string s = r->ToString();
  EXPECT_NE(s.find("pc(i0, 4, 8)"), std::string::npos);
  EXPECT_NE(s.find("i'1"), std::string::npos);
}

}  // namespace
}  // namespace bdisk::algebra
