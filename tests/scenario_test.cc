// Deterministic scenario regression harness.
//
// Each fixture under tests/fixtures/ is a `<name>.scenario` file that
// names a committed workload spec, a fault-trace (channel) specification,
// and workload parameters. The harness replays the full pipeline — spec
// parse, program build, channel realization, sharded workload simulation —
// and compares the complete metric snapshot (sim::MetricsToJson) against
// the committed `<name>.golden.json`, byte for byte. Because every stage
// is deterministic (counter-based RNG streams, exact-merge statistics),
// any diff is a real behavior change, at any thread count, on any machine.
//
// Regenerating goldens after an intentional change:
//   UPDATE_GOLDENS=1 ./scenario_test          (writes into the source tree)
//
// Adding a scenario: drop a .scenario (+ spec if new) into tests/fixtures/
// and run once with UPDATE_GOLDENS=1; the harness discovers fixtures by
// globbing, so no code change is needed.
//
// The fixture parsing and spec-to-program helpers live in
// tests/scenario_util.h, shared with engine_equivalence_test.cc (which
// proves the discrete-event engine reproduces these same goldens).

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "faults/channel_spec.h"
#include "runtime/thread_pool.h"
#include "scenario_util.h"
#include "sim/metrics.h"
#include "sim/simulation.h"

#ifndef BDISK_FIXTURES_DIR
#error "BDISK_FIXTURES_DIR must be defined by the build (CMakeLists.txt)"
#endif

namespace bdisk::sim {
namespace {

namespace fs = std::filesystem;
using scenario_util::BuildProgram;
using scenario_util::DiscoverScenarioNames;
using scenario_util::ParseScenario;
using scenario_util::ReadFileOrDie;
using scenario_util::Scenario;

class ScenarioTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ScenarioTest, ReplayMatchesGolden) {
  const fs::path fixtures(BDISK_FIXTURES_DIR);
  const Scenario scenario =
      ParseScenario(fixtures / (GetParam() + ".scenario"));
  ASSERT_EQ(scenario.Problem(), "") << GetParam();
  ASSERT_FALSE(::testing::Test::HasFailure());

  const broadcast::BroadcastProgram program =
      BuildProgram(ReadFileOrDie(fixtures / scenario.spec_file));
  ASSERT_FALSE(::testing::Test::HasFailure());

  auto channel = faults::ParseChannelSpec(scenario.channel);
  ASSERT_TRUE(channel.ok()) << channel.status();

  const Simulator simulator(program, **channel, scenario.horizon);
  WorkloadConfig config;
  config.requests_per_file = scenario.requests_per_file;
  config.seed = scenario.workload_seed;

  auto serial = simulator.RunWorkload(config, nullptr);
  ASSERT_TRUE(serial.ok()) << serial.status();
  const std::string snapshot = MetricsToJson(*serial);

  // Thread-count invariance is part of the replay contract: the sharded
  // run must be bit-identical before it is compared to the golden at all.
  {
    runtime::ThreadPool pool(3);
    auto sharded = simulator.RunWorkload(config, &pool);
    ASSERT_TRUE(sharded.ok()) << sharded.status();
    ASSERT_EQ(snapshot, MetricsToJson(*sharded))
        << scenario.name << ": serial vs 3-thread metrics differ";
  }

  const fs::path golden_path = fixtures / (scenario.name + ".golden.json");
  if (std::getenv("UPDATE_GOLDENS") != nullptr) {
    std::ofstream out(golden_path);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    out << snapshot;
    std::printf("updated %s\n", golden_path.c_str());
    return;
  }
  ASSERT_TRUE(fs::exists(golden_path))
      << golden_path
      << " missing — run once with UPDATE_GOLDENS=1 to create it";
  EXPECT_EQ(snapshot, ReadFileOrDie(golden_path))
      << scenario.name
      << ": metric snapshot diverged from the committed golden. If the "
         "change is intentional, regenerate with UPDATE_GOLDENS=1.";
}

INSTANTIATE_TEST_SUITE_P(
    Fixtures, ScenarioTest,
    ::testing::ValuesIn(DiscoverScenarioNames(BDISK_FIXTURES_DIR)),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return scenario_util::ParamName(info.param);
    });

}  // namespace
}  // namespace bdisk::sim
