// Deterministic scenario regression harness.
//
// Each fixture under tests/fixtures/ is a `<name>.scenario` file that
// names a committed workload spec, a fault-trace (channel) specification,
// and workload parameters. The harness replays the full pipeline — spec
// parse, program build, channel realization, sharded workload simulation —
// and compares the complete metric snapshot (sim::MetricsToJson) against
// the committed `<name>.golden.json`, byte for byte. Because every stage
// is deterministic (counter-based RNG streams, exact-merge statistics),
// any diff is a real behavior change, at any thread count, on any machine.
//
// Regenerating goldens after an intentional change:
//   UPDATE_GOLDENS=1 ./scenario_test          (writes into the source tree)
//
// Adding a scenario: drop a .scenario (+ spec if new) into tests/fixtures/
// and run once with UPDATE_GOLDENS=1; the harness discovers fixtures by
// globbing, so no code change is needed.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bdisk/block_size.h"
#include "bdisk/pinwheel_builder.h"
#include "bdisk/spec_parser.h"
#include "faults/channel_spec.h"
#include "pinwheel/composite_scheduler.h"
#include "runtime/thread_pool.h"
#include "sim/metrics.h"
#include "sim/simulation.h"

#ifndef BDISK_FIXTURES_DIR
#error "BDISK_FIXTURES_DIR must be defined by the build (CMakeLists.txt)"
#endif

namespace bdisk::sim {
namespace {

namespace fs = std::filesystem;

std::string ReadFileOrDie(const fs::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

std::string Strip(const std::string& s) {
  const std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

/// A parsed .scenario fixture: `key = value` lines, '#' comments.
struct Scenario {
  std::string name;
  std::string spec_file;
  std::string channel;
  std::uint64_t horizon = 0;
  std::uint64_t requests_per_file = 0;
  std::uint64_t workload_seed = 0;

  /// Empty iff the fixture is complete and well-formed.
  std::string Problem() const {
    if (spec_file.empty()) return "missing spec";
    if (channel.empty()) return "missing channel";
    if (horizon == 0) return "missing horizon";
    if (requests_per_file == 0) return "missing requests_per_file";
    return "";
  }
};

Scenario ParseScenario(const fs::path& path) {
  Scenario scenario;
  scenario.name = path.stem().string();
  std::istringstream in(ReadFileOrDie(path));
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    line = Strip(line);
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    EXPECT_NE(eq, std::string::npos) << path << ": bad line '" << line << "'";
    if (eq == std::string::npos) continue;
    const std::string key = Strip(line.substr(0, eq));
    const std::string value = Strip(line.substr(eq + 1));
    if (key == "spec") {
      scenario.spec_file = value;
    } else if (key == "channel") {
      scenario.channel = value;
    } else if (key == "horizon") {
      scenario.horizon = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "requests_per_file") {
      scenario.requests_per_file = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "workload_seed") {
      scenario.workload_seed = std::strtoull(value.c_str(), nullptr, 10);
    } else {
      ADD_FAILURE() << path << ": unknown key '" << key << "'";
    }
  }
  return scenario;
}

// The same spec-to-program pipeline the planner runs.
broadcast::BroadcastProgram BuildProgram(const std::string& spec_text) {
  auto spec = broadcast::ParseWorkloadSpec(spec_text);
  EXPECT_TRUE(spec.ok()) << spec.status();
  pinwheel::CompositeScheduler scheduler;
  if (spec->IsByteDomain()) {
    std::vector<std::uint64_t> ladder;
    if (spec->block_size != 0) ladder.push_back(spec->block_size);
    auto choice = broadcast::ChooseLargestFeasibleBlockSize(
        spec->byte_files, spec->channel_bytes_per_second, scheduler,
        std::move(ladder));
    EXPECT_TRUE(choice.ok()) << choice.status();
    return choice->build.program;
  }
  auto result =
      broadcast::BuildGeneralizedProgram(spec->generalized_files, scheduler);
  EXPECT_TRUE(result.ok()) << result.status();
  return result->program;
}

std::vector<std::string> DiscoverScenarioNames() {
  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(BDISK_FIXTURES_DIR)) {
    if (entry.path().extension() == ".scenario") {
      names.push_back(entry.path().stem().string());
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

class ScenarioTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ScenarioTest, ReplayMatchesGolden) {
  const fs::path fixtures(BDISK_FIXTURES_DIR);
  const Scenario scenario =
      ParseScenario(fixtures / (GetParam() + ".scenario"));
  ASSERT_EQ(scenario.Problem(), "") << GetParam();
  ASSERT_FALSE(::testing::Test::HasFailure());

  const broadcast::BroadcastProgram program =
      BuildProgram(ReadFileOrDie(fixtures / scenario.spec_file));
  ASSERT_FALSE(::testing::Test::HasFailure());

  auto channel = faults::ParseChannelSpec(scenario.channel);
  ASSERT_TRUE(channel.ok()) << channel.status();

  const Simulator simulator(program, **channel, scenario.horizon);
  WorkloadConfig config;
  config.requests_per_file = scenario.requests_per_file;
  config.seed = scenario.workload_seed;

  auto serial = simulator.RunWorkload(config, nullptr);
  ASSERT_TRUE(serial.ok()) << serial.status();
  const std::string snapshot = MetricsToJson(*serial);

  // Thread-count invariance is part of the replay contract: the sharded
  // run must be bit-identical before it is compared to the golden at all.
  {
    runtime::ThreadPool pool(3);
    auto sharded = simulator.RunWorkload(config, &pool);
    ASSERT_TRUE(sharded.ok()) << sharded.status();
    ASSERT_EQ(snapshot, MetricsToJson(*sharded))
        << scenario.name << ": serial vs 3-thread metrics differ";
  }

  const fs::path golden_path = fixtures / (scenario.name + ".golden.json");
  if (std::getenv("UPDATE_GOLDENS") != nullptr) {
    std::ofstream out(golden_path);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    out << snapshot;
    std::printf("updated %s\n", golden_path.c_str());
    return;
  }
  ASSERT_TRUE(fs::exists(golden_path))
      << golden_path
      << " missing — run once with UPDATE_GOLDENS=1 to create it";
  EXPECT_EQ(snapshot, ReadFileOrDie(golden_path))
      << scenario.name
      << ": metric snapshot diverged from the committed golden. If the "
         "change is intentional, regenerate with UPDATE_GOLDENS=1.";
}

INSTANTIATE_TEST_SUITE_P(
    Fixtures, ScenarioTest, ::testing::ValuesIn(DiscoverScenarioNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace bdisk::sim
