// The recovery sweep: the store's crash-safety claim, checked by
// enumeration rather than argument. A workload (catalog build, then an
// update transaction) is first run over a counting pass-through device to
// learn its total write count W, then replayed W+1 times under
// `powercut:at=k` for every write boundary k — plus a second sweep where
// the in-flight write at the boundary additionally tears. After every
// kill the device bytes are reopened and the store must recover to
// EXACTLY the old or the new consistent generation — every cataloged
// block checksum-valid and byte-identical to that generation's expected
// contents — never a torn hybrid.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ida/block.h"
#include "store/block_device.h"
#include "store/block_store.h"
#include "store/fault_device.h"

namespace bdisk::store {
namespace {

constexpr std::size_t kBlockSize = 64;
constexpr std::uint64_t kBlockCount = 128;

std::vector<ida::Block> MakeBlocks(ida::FileId file_id, std::uint64_t version,
                                   std::uint32_t m, std::uint32_t n,
                                   std::size_t payload_bytes) {
  std::vector<ida::Block> blocks(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    blocks[i].header.file_id = file_id;
    blocks[i].header.block_index = i;
    blocks[i].header.reconstruct_threshold = m;
    blocks[i].header.total_blocks = n;
    blocks[i].header.version = version;
    blocks[i].payload.resize(payload_bytes);
    for (std::size_t b = 0; b < payload_bytes; ++b) {
      blocks[i].payload[b] = static_cast<std::uint8_t>(
          file_id * 7 + version * 131 + i * 17 + b);
    }
  }
  ida::StampChecksums(&blocks);
  return blocks;
}

// Small geometry keeps the sweep in the tens of boundaries.
std::vector<ida::Block> FileBlocks(ida::FileId file_id,
                                   std::uint64_t version) {
  return MakeBlocks(file_id, version, /*m=*/2, /*n=*/3,
                    /*payload_bytes=*/96);
}

// One generation the sweep may legally observe: the exact catalog keys
// and, for each, the exact stamped blocks.
struct ExpectedGeneration {
  std::string label;
  std::vector<std::vector<ida::Block>> files;
};

// True iff the recovered store's committed catalog matches `expected`
// exactly, with every block reading back checksum-valid and bit-identical.
bool MatchesGeneration(BlockStore& store, const ExpectedGeneration& expected,
                       std::string* why) {
  std::size_t entries = 0;
  for (const auto& file : expected.files) {
    const ida::BlockHeader& h = file.front().header;
    const CatalogEntry* entry = store.FindEntry(h.file_id, h.version);
    if (entry == nullptr) {
      *why = "missing file " + std::to_string(h.file_id) + " v" +
             std::to_string(h.version);
      return false;
    }
    ++entries;
    for (std::uint32_t i = 0; i < h.total_blocks; ++i) {
      const Result<ida::Block> block =
          store.ReadCodedBlock(h.file_id, h.version, i);
      if (!block.ok()) {
        *why = block.status().ToString();
        return false;
      }
      if (*block != file[i]) {
        *why = "block " + std::to_string(i) + " of file " +
               std::to_string(h.file_id) + " differs";
        return false;
      }
    }
  }
  if (store.catalog().size() != entries) {
    *why = "catalog has " + std::to_string(store.catalog().size()) +
           " entries, expected " + std::to_string(entries);
    return false;
  }
  return true;
}

using Workload = std::function<Status(std::unique_ptr<BlockDevice>)>;

// Runs `workload` over a counting pass-through to learn its write count.
std::uint64_t CountWrites(const MemBlockDevice::Buffer& base,
                          const Workload& workload) {
  auto inner = std::make_unique<MemBlockDevice>(kBlockSize, kBlockCount);
  *inner->buffer() = base;
  const auto config = ParseDeviceFaultSpec("none");
  BDISK_CHECK(config.ok());
  auto counter = std::make_unique<FaultingBlockDevice>(std::move(inner),
                                                       *config);
  FaultingBlockDevice* raw = counter.get();
  const Status status = workload(std::move(counter));
  EXPECT_TRUE(status.ok()) << "fault-free workload failed: " << status;
  BDISK_CHECK(status.ok());
  return raw->writes_attempted();
}

// The sweep proper. `allow_unformatted` accepts the pre-format state
// (power cut before the first superblock ever landed) as "old".
void SweepWorkload(const MemBlockDevice::Buffer& base,
                   const Workload& workload,
                   const std::vector<ExpectedGeneration>& legal,
                   bool allow_unformatted) {
  const std::uint64_t writes = CountWrites(base, workload);
  ASSERT_GT(writes, 0u);
  // Boundary k = "power dies on the k-th write"; k == writes exercises a
  // cut after the workload's last write (every write landed, syncs may
  // not have) — recovery must still pick a consistent generation.
  for (const bool torn : {false, true}) {
    for (std::uint64_t k = 0; k <= writes; ++k) {
      const std::string spec =
          "powercut:at=" + std::to_string(k) + (torn ? ",torn=13" : "");
      const auto config = ParseDeviceFaultSpec(spec);
      ASSERT_TRUE(config.ok()) << config.status();

      auto inner = std::make_unique<MemBlockDevice>(kBlockSize, kBlockCount);
      auto buffer = inner->buffer();
      *buffer = base;
      const Status died = workload(std::make_unique<FaultingBlockDevice>(
          std::move(inner), *config));
      if (k == writes) {
        // The cut landed after the last write; the workload may still
        // have died on a post-write sync — either outcome is legal.
      } else {
        ASSERT_FALSE(died.ok())
            << spec << ": workload survived a power cut mid-write";
      }

      // Reboot: reopen the surviving bytes and demand a consistent
      // generation.
      Result<std::unique_ptr<BlockStore>> reopened =
          BlockStore::Open(MemBlockDevice::Attach(buffer, kBlockSize));
      if (!reopened.ok()) {
        EXPECT_TRUE(allow_unformatted && reopened.status().IsDataLoss())
            << spec << ": reopen failed with " << reopened.status();
        continue;
      }
      std::string why;
      bool matched = false;
      std::string tried;
      for (const ExpectedGeneration& gen : legal) {
        if (MatchesGeneration(**reopened, gen, &why)) {
          matched = true;
          break;
        }
        tried += " [" + gen.label + ": " + why + "]";
      }
      EXPECT_TRUE(matched)
          << spec << ": recovered generation " << (*reopened)->generation()
          << " matches neither legal state:" << tried;
    }
  }
}

TEST(StoreCrashSweepTest, BuildFromScratchRecoversOldOrNewAtEveryBoundary) {
  const Workload build = [](std::unique_ptr<BlockDevice> device) -> Status {
    BDISK_ASSIGN_OR_RETURN(std::unique_ptr<BlockStore> store,
                           BlockStore::Format(std::move(device)));
    BDISK_RETURN_NOT_OK(store->StageFile(FileBlocks(0, 0)));
    BDISK_RETURN_NOT_OK(store->StageFile(FileBlocks(1, 0)));
    return store->Commit();
  };
  const ExpectedGeneration empty{"gen1-empty", {}};
  const ExpectedGeneration full{"gen2-both-files",
                                {FileBlocks(0, 0), FileBlocks(1, 0)}};
  const MemBlockDevice::Buffer pristine(kBlockSize * kBlockCount, 0);
  SweepWorkload(pristine, build, {empty, full}, /*allow_unformatted=*/true);
}

TEST(StoreCrashSweepTest, UpdateTransactionRecoversOldOrNewAtEveryBoundary) {
  // Base state: generation 2 holding f0 v0 and f1 v0, built failure-free.
  MemBlockDevice::Buffer base;
  {
    auto mem = std::make_unique<MemBlockDevice>(kBlockSize, kBlockCount);
    auto buffer = mem->buffer();
    auto store = BlockStore::Format(std::move(mem));
    ASSERT_TRUE(store.ok()) << store.status();
    ASSERT_TRUE((*store)->StageFile(FileBlocks(0, 0)).ok());
    ASSERT_TRUE((*store)->StageFile(FileBlocks(1, 0)).ok());
    ASSERT_TRUE((*store)->Commit().ok());
    base = *buffer;
  }
  // The update: one transaction replacing f0 v0 with f0 v1.
  const Workload update = [](std::unique_ptr<BlockDevice> device) -> Status {
    BDISK_ASSIGN_OR_RETURN(std::unique_ptr<BlockStore> store,
                           BlockStore::Open(std::move(device)));
    BDISK_RETURN_NOT_OK(store->StageErase(0, 0));
    BDISK_RETURN_NOT_OK(store->StageFile(FileBlocks(0, 1)));
    return store->Commit();
  };
  const ExpectedGeneration old_gen{"gen2-f0v0",
                                   {FileBlocks(0, 0), FileBlocks(1, 0)}};
  const ExpectedGeneration new_gen{"gen3-f0v1",
                                   {FileBlocks(0, 1), FileBlocks(1, 0)}};
  SweepWorkload(base, update, {old_gen, new_gen},
                /*allow_unformatted=*/false);
}

TEST(StoreCrashSweepTest, BackToBackUpdatesRecoverAcrossBothSlots) {
  // Two chained update transactions force commits into BOTH superblock
  // slots; the sweep covers the second transaction, whose "old" state is
  // itself a product of the first.
  MemBlockDevice::Buffer base;
  {
    auto mem = std::make_unique<MemBlockDevice>(kBlockSize, kBlockCount);
    auto buffer = mem->buffer();
    auto store = BlockStore::Format(std::move(mem));
    ASSERT_TRUE(store.ok()) << store.status();
    ASSERT_TRUE((*store)->StageFile(FileBlocks(0, 0)).ok());
    ASSERT_TRUE((*store)->Commit().ok());  // Generation 2.
    ASSERT_TRUE((*store)->StageErase(0, 0).ok());
    ASSERT_TRUE((*store)->StageFile(FileBlocks(0, 1)).ok());
    ASSERT_TRUE((*store)->Commit().ok());  // Generation 3.
    base = *buffer;
  }
  const Workload update = [](std::unique_ptr<BlockDevice> device) -> Status {
    BDISK_ASSIGN_OR_RETURN(std::unique_ptr<BlockStore> store,
                           BlockStore::Open(std::move(device)));
    BDISK_RETURN_NOT_OK(store->StageErase(0, 1));
    BDISK_RETURN_NOT_OK(store->StageFile(FileBlocks(0, 2)));
    return store->Commit();
  };
  const ExpectedGeneration old_gen{"gen3-f0v1", {FileBlocks(0, 1)}};
  const ExpectedGeneration new_gen{"gen4-f0v2", {FileBlocks(0, 2)}};
  SweepWorkload(base, update, {old_gen, new_gen},
                /*allow_unformatted=*/false);
}

}  // namespace
}  // namespace bdisk::store
