// Unit tests for Schedule and the exhaustive Verifier.

#include <gtest/gtest.h>

#include "pinwheel/schedule.h"
#include "pinwheel/task.h"
#include "pinwheel/verifier.h"

namespace bdisk::pinwheel {
namespace {

Schedule MakeSchedule(std::vector<TaskId> cycle) {
  auto s = Schedule::FromCycle(std::move(cycle));
  EXPECT_TRUE(s.ok());
  return *s;
}

TEST(ScheduleTest, EmptyCycleRejected) {
  EXPECT_TRUE(Schedule::FromCycle({}).status().IsInvalidArgument());
}

TEST(ScheduleTest, BasicAccessors) {
  const Schedule s = MakeSchedule({1, 2, 1, Schedule::kIdle});
  EXPECT_EQ(s.period(), 4u);
  EXPECT_EQ(s.At(0), 1u);
  EXPECT_EQ(s.At(5), 2u);  // Wraps.
  EXPECT_EQ(s.CountOf(1), 2u);
  EXPECT_EQ(s.CountOf(2), 1u);
  EXPECT_EQ(s.IdleCount(), 1u);
  EXPECT_DOUBLE_EQ(s.Utilization(), 0.75);
  EXPECT_EQ(s.OccurrencesOf(1), (std::vector<std::uint64_t>{0, 2}));
}

TEST(ScheduleTest, MaxGapCyclic) {
  const Schedule s = MakeSchedule({1, Schedule::kIdle, Schedule::kIdle, 1,
                                   Schedule::kIdle});
  // Gaps: 0 -> 3 (3), 3 -> 5 (wrap to 0: 2). Max = 3.
  auto gap = s.MaxGapOf(1);
  ASSERT_TRUE(gap.ok());
  EXPECT_EQ(*gap, 3u);
}

TEST(ScheduleTest, MaxGapSingleOccurrence) {
  const Schedule s = MakeSchedule({Schedule::kIdle, 1, Schedule::kIdle});
  auto gap = s.MaxGapOf(1);
  ASSERT_TRUE(gap.ok());
  EXPECT_EQ(*gap, 3u);  // Full period.
}

TEST(ScheduleTest, MaxGapMissingTask) {
  const Schedule s = MakeSchedule({1});
  EXPECT_TRUE(s.MaxGapOf(9).status().IsNotFound());
}

TEST(ScheduleTest, ToStringUsesStarForIdle) {
  const Schedule s = MakeSchedule({1, Schedule::kIdle, 2});
  EXPECT_EQ(s.ToString(), "1, *, 2");
}

// Example 1, first system: {(1,1,2),(2,1,3)} scheduled as 1,2,1,2,...
TEST(VerifierTest, Example1FirstSystem) {
  const Schedule s = MakeSchedule({1, 2});
  auto inst = Instance::Create({{1, 1, 2}, {2, 1, 3}});
  ASSERT_TRUE(inst.ok());
  EXPECT_TRUE(Verifier::Verify(s, *inst).ok());
}

// Example 1, second system: {(1,2,5),(2,1,3)} scheduled as
// 1,2,1,*,2,1,2,1,*,2,...  (period 5 shown twice in the paper).
TEST(VerifierTest, Example1SecondSystem) {
  const Schedule s = MakeSchedule({1, 2, 1, Schedule::kIdle, 2});
  auto inst = Instance::Create({{1, 2, 5}, {2, 1, 3}});
  ASSERT_TRUE(inst.ok());
  EXPECT_TRUE(Verifier::Verify(s, *inst).ok());
}

TEST(VerifierTest, DetectsViolation) {
  const Schedule s = MakeSchedule({1, 2});
  auto inst = Instance::Create({{1, 1, 2}, {2, 2, 3}});
  ASSERT_TRUE(inst.ok());
  Status status = Verifier::Verify(s, *inst);
  EXPECT_TRUE(status.IsInfeasible());
  EXPECT_NE(status.message().find("pc(2, 2, 3)"), std::string::npos);
}

TEST(VerifierTest, MinWindowCountBasic) {
  const Schedule s = MakeSchedule({1, 2, 1, 2});
  EXPECT_EQ(Verifier::MinWindowCount(s, 1, 1), 0u);
  EXPECT_EQ(Verifier::MinWindowCount(s, 1, 2), 1u);
  EXPECT_EQ(Verifier::MinWindowCount(s, 1, 3), 1u);
  EXPECT_EQ(Verifier::MinWindowCount(s, 1, 4), 2u);
}

TEST(VerifierTest, MinWindowCountReportsWorstStart) {
  const Schedule s = MakeSchedule({1, 1, Schedule::kIdle, Schedule::kIdle});
  std::uint64_t worst = 99;
  EXPECT_EQ(Verifier::MinWindowCount(s, 1, 2, &worst), 0u);
  EXPECT_EQ(worst, 2u);  // Window [2,4) has no task-1 slot.
}

TEST(VerifierTest, WindowLargerThanPeriod) {
  const Schedule s = MakeSchedule({1, 2, Schedule::kIdle});
  // Window 7 = 2 full periods (2 ones) + remainder 1 (worst: 0 extra).
  EXPECT_EQ(Verifier::MinWindowCount(s, 1, 7), 2u);
  // Window 6 = exactly 2 periods.
  EXPECT_EQ(Verifier::MinWindowCount(s, 1, 6), 2u);
}

TEST(VerifierTest, WindowEqualsPeriod) {
  const Schedule s = MakeSchedule({1, 1, 2});
  EXPECT_EQ(Verifier::MinWindowCount(s, 1, 3), 2u);
}

TEST(VerifierTest, IdleTaskCounting) {
  const Schedule s = MakeSchedule({1, Schedule::kIdle});
  EXPECT_EQ(Verifier::MinWindowCount(s, Schedule::kIdle, 2), 1u);
}

TEST(VerifierTest, CheckConditionStruct) {
  const Schedule s = MakeSchedule({1, 2});
  ConditionCheck c = Verifier::CheckCondition(s, 1, 1, 2);
  EXPECT_TRUE(c.satisfied);
  EXPECT_EQ(c.min_count, 1u);
  c = Verifier::CheckCondition(s, 1, 2, 2);
  EXPECT_FALSE(c.satisfied);
  EXPECT_NE(c.ToString().find("VIOLATED"), std::string::npos);
}

TEST(VerifierTest, CheckAllReturnsPerTaskResults) {
  const Schedule s = MakeSchedule({1, 2, 1});
  auto inst = Instance::Create({{1, 2, 3}, {2, 1, 3}});
  ASSERT_TRUE(inst.ok());
  auto checks = Verifier::CheckAll(s, *inst);
  ASSERT_EQ(checks.size(), 2u);
  EXPECT_TRUE(checks[0].satisfied);
  EXPECT_TRUE(checks[1].satisfied);
}

// A task absent from the schedule fails any condition.
TEST(VerifierTest, AbsentTaskFails) {
  const Schedule s = MakeSchedule({1, 1});
  auto inst = Instance::Create({{2, 1, 10}});
  ASSERT_TRUE(inst.ok());
  EXPECT_TRUE(Verifier::Verify(s, *inst).IsInfeasible());
}

}  // namespace
}  // namespace bdisk::pinwheel
