// Tests for the fault-injection channel models (src/faults/): the
// determinism contract (pure, random-access, shard-invariant traces), the
// statistical properties of each model, corruption application, and the
// channel-spec parser.

#include "faults/channel_model.h"

#include <gtest/gtest.h>

#include <vector>

#include "faults/channel_spec.h"
#include "ida/block.h"

namespace bdisk::faults {
namespace {

std::vector<FaultType> Realize(const ChannelModel& channel, std::uint64_t n) {
  std::vector<FaultType> out(n);
  channel.FillFaults(0, n, out.data());
  return out;
}

// The determinism contract, part 1: FaultAt is pure, so two evaluations
// (and two model instances with the same parameters) agree slot by slot.
TEST(ChannelModelTest, TracesAreReproducible) {
  const BernoulliChannel a(0.3, 99);
  const BernoulliChannel b(0.3, 99);
  const GilbertElliottChannel g1({}, 7);
  const GilbertElliottChannel g2({}, 7);
  for (std::uint64_t t = 0; t < 2000; ++t) {
    EXPECT_EQ(a.FaultAt(t), b.FaultAt(t)) << "slot " << t;
    EXPECT_EQ(g1.FaultAt(t), g2.FaultAt(t)) << "slot " << t;
  }
}

// Part 2: random access equals sequential fill, for every model — this is
// what makes traces shard-count invariant (any partition of [0, H) into
// FillFaults calls, or any per-slot FaultAt pattern, sees one realization).
TEST(ChannelModelTest, RandomAccessMatchesSequentialFill) {
  GilbertElliottChannel::Params params;
  params.p_good_to_bad = 0.05;
  params.p_bad_to_good = 0.3;
  const BernoulliChannel bern(0.2, 5);
  const GilbertElliottChannel gilbert(params, 5);
  const CorruptionChannel corrupt(0.15, 5);
  const OutageChannel outage(64, 10, 7);
  for (const ChannelModel* model :
       {static_cast<const ChannelModel*>(&bern),
        static_cast<const ChannelModel*>(&gilbert),
        static_cast<const ChannelModel*>(&corrupt),
        static_cast<const ChannelModel*>(&outage)}) {
    constexpr std::uint64_t kHorizon = 1500;
    const std::vector<FaultType> fill = Realize(*model, kHorizon);
    // Per-slot random access, probed out of order.
    for (std::uint64_t t = kHorizon; t-- > 0;) {
      EXPECT_EQ(model->FaultAt(t), fill[t])
          << model->Describe() << " slot " << t;
    }
    // Arbitrary-offset fills (shard boundaries).
    for (std::uint64_t begin : {std::uint64_t{1}, std::uint64_t{255},
                                std::uint64_t{256}, std::uint64_t{777}}) {
      std::vector<FaultType> shard(kHorizon - begin);
      model->FillFaults(begin, kHorizon, shard.data());
      for (std::uint64_t t = begin; t < kHorizon; ++t) {
        ASSERT_EQ(shard[t - begin], fill[t])
            << model->Describe() << " begin " << begin << " slot " << t;
      }
    }
  }
}

TEST(ChannelModelTest, LosslessNeverFaults) {
  const LosslessChannel channel;
  for (std::uint64_t t = 0; t < 1000; ++t) {
    EXPECT_EQ(channel.FaultAt(t), FaultType::kNone);
  }
}

TEST(BernoulliChannelTest, RateApproximatesP) {
  const BernoulliChannel channel(0.2, 7);
  int losses = 0;
  const int trials = 100000;
  for (int t = 0; t < trials; ++t) {
    if (channel.FaultAt(t) == FaultType::kLost) ++losses;
  }
  EXPECT_NEAR(static_cast<double>(losses) / trials, 0.2, 0.01);
}

TEST(BernoulliChannelTest, DistinctSeedsDecorrelate) {
  const BernoulliChannel a(0.5, 1);
  const BernoulliChannel b(0.5, 2);
  int agree = 0;
  const int trials = 10000;
  for (int t = 0; t < trials; ++t) {
    if (a.FaultAt(t) == b.FaultAt(t)) ++agree;
  }
  // Independent fair coins agree about half the time.
  EXPECT_NEAR(static_cast<double>(agree) / trials, 0.5, 0.05);
}

TEST(GilbertElliottChannelTest, EmpiricalRateMatchesStationary) {
  GilbertElliottChannel::Params params;
  params.p_good_to_bad = 0.05;
  params.p_bad_to_good = 0.45;
  const GilbertElliottChannel channel(params, 17);
  const std::uint64_t trials = 200000;
  const std::vector<FaultType> trace = Realize(channel, trials);
  std::uint64_t losses = 0;
  for (FaultType f : trace) {
    if (f == FaultType::kLost) ++losses;
  }
  EXPECT_NEAR(static_cast<double>(losses) / static_cast<double>(trials),
              channel.StationaryLossRate(), 0.01);
}

TEST(GilbertElliottChannelTest, LossesAreBursty) {
  // With slow transitions, consecutive-loss runs must be much longer than
  // under an independent model of the same rate.
  GilbertElliottChannel::Params params;
  params.p_good_to_bad = 0.01;
  params.p_bad_to_good = 0.1;
  const GilbertElliottChannel channel(params, 23);
  const std::vector<FaultType> trace = Realize(channel, 200000);
  std::uint64_t runs = 0;
  std::uint64_t losses = 0;
  bool prev = false;
  for (FaultType f : trace) {
    const bool lost = f == FaultType::kLost;
    if (lost) {
      ++losses;
      if (!prev) ++runs;
    }
    prev = lost;
  }
  ASSERT_GT(runs, 0u);
  const double mean_run =
      static_cast<double>(losses) / static_cast<double>(runs);
  EXPECT_GT(mean_run, 5.0);  // Expected run length ~ 1/p_bad_to_good = 10.
}

TEST(OutageChannelTest, PeriodicWindows) {
  const OutageChannel channel(/*period=*/10, /*start=*/3, /*length=*/2);
  for (std::uint64_t t = 0; t < 3; ++t) {
    EXPECT_EQ(channel.FaultAt(t), FaultType::kNone) << t;
  }
  for (std::uint64_t base : {std::uint64_t{3}, std::uint64_t{13},
                             std::uint64_t{103}}) {
    EXPECT_EQ(channel.FaultAt(base), FaultType::kLost);
    EXPECT_EQ(channel.FaultAt(base + 1), FaultType::kLost);
    EXPECT_EQ(channel.FaultAt(base + 2), FaultType::kNone);
  }
}

TEST(OutageChannelTest, OneShotWindow) {
  const OutageChannel channel(/*period=*/0, /*start=*/100, /*length=*/50);
  EXPECT_EQ(channel.FaultAt(99), FaultType::kNone);
  EXPECT_EQ(channel.FaultAt(100), FaultType::kLost);
  EXPECT_EQ(channel.FaultAt(149), FaultType::kLost);
  EXPECT_EQ(channel.FaultAt(150), FaultType::kNone);
  EXPECT_EQ(channel.FaultAt(100000), FaultType::kNone);
}

TEST(CorruptionChannelTest, CorruptionIsDetectedByChecksum) {
  const CorruptionChannel channel(1.0, 11);
  for (std::uint64_t slot = 0; slot < 500; ++slot) {
    ida::Block block;
    block.header = ida::BlockHeader{3, 1, 2, 4, 9};
    block.payload.assign(64, static_cast<std::uint8_t>(slot));
    ida::StampChecksum(&block);
    ASSERT_EQ(ida::VerifyChecksum(block), ida::ChecksumState::kValid);
    ida::Block damaged = block;
    channel.CorruptBlock(slot, &damaged);
    EXPECT_NE(damaged, block) << "slot " << slot;
    EXPECT_EQ(ida::VerifyChecksum(damaged), ida::ChecksumState::kMismatch)
        << "slot " << slot;
  }
}

TEST(CorruptionChannelTest, CorruptionIsDeterministic) {
  const CorruptionChannel channel(1.0, 11);
  ida::Block a;
  a.header = ida::BlockHeader{1, 0, 2, 3, 0};
  a.payload.assign(32, 0xAB);
  ida::StampChecksum(&a);
  ida::Block b = a;
  channel.CorruptBlock(42, &a);
  channel.CorruptBlock(42, &b);
  EXPECT_EQ(a, b);
}

TEST(ComposedChannelTest, TakesWorstEffectPerSlot) {
  std::vector<std::unique_ptr<ChannelModel>> parts;
  parts.push_back(std::make_unique<OutageChannel>(0, 10, 5));
  parts.push_back(std::make_unique<CorruptionChannel>(1.0, 3));
  const ComposedChannel channel(std::move(parts));
  // Inside the outage window loss dominates corruption; outside, the
  // always-corrupting member shows through.
  EXPECT_EQ(channel.FaultAt(12), FaultType::kLost);
  EXPECT_EQ(channel.FaultAt(20), FaultType::kCorrupted);
  const std::vector<FaultType> fill = Realize(channel, 64);
  for (std::uint64_t t = 0; t < 64; ++t) {
    EXPECT_EQ(fill[t], channel.FaultAt(t)) << t;
  }
}

TEST(ComposedChannelTest, EqualSeedsAcrossFamiliesStayIndependent) {
  // Model families draw from family-tagged streams: a loss model and a
  // corruption model sharing seed 1 must NOT share their uniform draws —
  // otherwise every corruption would hide under a loss (severity max) and
  // corruption would silently never be delivered.
  std::vector<std::unique_ptr<ChannelModel>> parts;
  parts.push_back(std::make_unique<BernoulliChannel>(0.1, 1));
  parts.push_back(std::make_unique<CorruptionChannel>(0.05, 1));
  const ComposedChannel channel(std::move(parts));
  std::uint64_t corrupted = 0;
  const std::uint64_t trials = 100000;
  for (std::uint64_t t = 0; t < trials; ++t) {
    if (channel.FaultAt(t) == FaultType::kCorrupted) ++corrupted;
  }
  // Independent streams deliver ~ 0.05 * (1 - 0.1) = 4.5% corrupted slots.
  EXPECT_NEAR(static_cast<double>(corrupted) / static_cast<double>(trials),
              0.045, 0.005);
}

TEST(ChannelSpecTest, ParsesEveryModelAndRoundTrips) {
  for (const char* spec :
       {"lossless", "bernoulli:p=0.1,seed=42",
        // Non-round probability: Describe() must round-trip the exact
        // double (shortest to_chars form), not a 6-digit truncation.
        "bernoulli:p=0.123456789123,seed=4",
        "gilbert:pgb=0.02,pbg=0.2,lg=0,lb=1,seed=9", "corrupt:p=0.05,seed=3",
        "outage:period=1024,start=512,len=64",
        "bernoulli:p=0.1,seed=42+corrupt:p=0.05,seed=3"}) {
    auto parsed = ParseChannelSpec(spec);
    ASSERT_TRUE(parsed.ok()) << spec << ": " << parsed.status();
    // Describe() re-parses to an equivalent model (same trace).
    auto reparsed = ParseChannelSpec((*parsed)->Describe());
    ASSERT_TRUE(reparsed.ok()) << (*parsed)->Describe();
    for (std::uint64_t t = 0; t < 512; ++t) {
      ASSERT_EQ((*parsed)->FaultAt(t), (*reparsed)->FaultAt(t))
          << spec << " slot " << t;
    }
  }
}

TEST(ChannelSpecTest, DefaultsApply) {
  auto parsed = ParseChannelSpec("bernoulli");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ((*parsed)->Describe(), "bernoulli:p=0.1,seed=1");
}

TEST(ChannelSpecTest, RejectsMalformedSpecs) {
  for (const char* spec :
       {"", "warp", "bernoulli:p=1.5", "bernoulli:p=-0.1", "bernoulli:p=x",
        "bernoulli:q=0.1", "bernoulli:p", "bernoulli:p=",
        "gilbert:pgb=0.1,pgb=0.2", "outage:len=-3", "outage:len=2x",
        "bernoulli+warp"}) {
    auto parsed = ParseChannelSpec(spec);
    EXPECT_FALSE(parsed.ok()) << "accepted: '" << spec << "'";
    if (!parsed.ok()) {
      EXPECT_TRUE(parsed.status().IsInvalidArgument()) << spec;
    }
  }
}

}  // namespace
}  // namespace bdisk::faults
