// Ops-plane suite: canonical JSON writer/parser, the metric registry's
// concurrency contract, histogram bucket edges, and snapshot-stream
// determinism.
//
// The load-bearing claims pinned here:
//
//  * the writer's canonical form (%.17g doubles, \u00XX control escapes,
//    lazy structural commas + scheduled layout whitespace) round-trips
//    through the parser byte-identically — the property bench_compare and
//    the scenario goldens rely on;
//  * registry recording is exact under a ThreadPool: after the pool
//    barrier, counters and histograms hold the precise totals (this file
//    is on the TSan CI leg, so the relaxed-atomic paths are also proven
//    race-free);
//  * HistogramMetric bounds are inclusive upper bounds with an overflow
//    bucket — the edge cases are pinned value-by-value;
//  * RenderSnapshotStream is byte-identical across the slot and event
//    engines and across thread counts, and its final line is consistent
//    at any snapshot interval.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bdisk/flat_builder.h"
#include "faults/channel_spec.h"
#include "obs/json.h"
#include "obs/registry.h"
#include "obs/snapshot.h"
#include "obs/stream_tail.h"
#include "runtime/parallel_for.h"
#include "runtime/thread_pool.h"
#include "sim/simulation.h"

namespace bdisk::obs {
namespace {

// ---------------------------------------------------------------------------
// JsonWriter canonical form.
// ---------------------------------------------------------------------------

TEST(JsonWriterTest, CompactObjectWithAutomaticCommas) {
  JsonWriter w;
  w.BeginObject();
  w.Key("a");
  w.Uint(1);
  w.Key("b");
  w.String("x");
  w.Key("c");
  w.BeginArray();
  w.Uint(1);
  w.Uint(2);
  w.BeginObject();
  w.EndObject();
  w.EndArray();
  w.Key("d");
  w.Bool(true);
  w.Key("e");
  w.Null();
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"a\":1,\"b\":\"x\",\"c\":[1,2,{}],\"d\":true,\"e\":null}");
}

TEST(JsonWriterTest, CanonicalDoubles) {
  std::string out;
  AppendCanonicalDouble(&out, 0.1);
  EXPECT_EQ(out, "0.10000000000000001");  // %.17g: lossless, canonical.
  out.clear();
  AppendCanonicalDouble(&out, 2.0);
  EXPECT_EQ(out, "2");
  out.clear();
  AppendCanonicalDouble(&out, 1.5);
  EXPECT_EQ(out, "1.5");
  out.clear();
  AppendCanonicalDouble(&out, 1e300);
  EXPECT_EQ(out, "1.0000000000000001e+300");  // 1e300 isn't representable.
}

TEST(JsonWriterTest, StringEscaping) {
  std::string out;
  AppendQuotedString(&out, "a\"b\\c\nd\te\x01");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\u000ad\\u0009e\\u0001\"");
  // UTF-8 multibyte passes through verbatim.
  out.clear();
  AppendQuotedString(&out, "caf\xC3\xA9");
  EXPECT_EQ(out, "\"caf\xC3\xA9\"");
}

TEST(JsonWriterTest, ScheduledNewlinesReproduceLegacyLayout) {
  JsonWriter w;
  w.BeginObject();
  w.Newline("  ");
  w.Key("a");
  w.Raw(" ");
  w.Uint(1);
  w.Newline("  ");
  w.Key("b");
  w.Raw(" ");
  w.Uint(2);
  w.Newline("");
  w.EndObject();
  EXPECT_EQ(w.str(), "{\n  \"a\": 1,\n  \"b\": 2\n}");
}

// ---------------------------------------------------------------------------
// Parser: round trips and malformed input.
// ---------------------------------------------------------------------------

TEST(JsonParserTest, CanonicalRoundTripIsByteIdentical) {
  const std::string doc =
      "{\"s\":\"a\\\"b\",\"n\":0.10000000000000001,\"i\":-7,\"u\":42,"
      "\"t\":true,\"f\":false,\"z\":null,\"arr\":[1,2.5,{\"k\":[]}]}";
  auto parsed = ParseJson(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(ToCanonicalJson(*parsed), doc);
}

TEST(JsonParserTest, UnicodeEscapesAndSurrogatePairs) {
  auto parsed = ParseJson("\"\\u0041\\u00e9\\ud83d\\ude00\"");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->string_value, "A\xC3\xA9\xF0\x9F\x98\x80");
}

TEST(JsonParserTest, KeyOrderIsPreservedAndFindReturnsFirst) {
  auto parsed = ParseJson("{\"b\":1,\"a\":2,\"b\":3}");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->object.size(), 3u);
  EXPECT_EQ(parsed->object[0].first, "b");
  EXPECT_EQ(parsed->object[1].first, "a");
  const JsonValue* b = parsed->Find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->number, 1.0);
}

TEST(JsonParserTest, RejectsMalformedDocuments) {
  const char* bad[] = {
      "",            // empty
      "{",           // unterminated object
      "{\"a\":}",    // missing value
      "[1,]",        // trailing comma
      "\"abc",       // unterminated string
      "tru",         // truncated literal
      "{} x",        // trailing garbage
      "\"\\ud83d\"", // lone high surrogate
      "01",          // leading zero
  };
  for (const char* doc : bad) {
    EXPECT_FALSE(ParseJson(doc).ok()) << "accepted: " << doc;
  }
}

// ---------------------------------------------------------------------------
// Registry: exact totals under a ThreadPool (TSan leg covers the races).
// ---------------------------------------------------------------------------

TEST(RegistryTest, ExactTotalsUnderThreadPool) {
  MetricRegistry registry;
  Counter* counter = registry.GetCounter("test.events");
  HistogramMetric* hist =
      registry.GetHistogram("test.hist", {1.0, 2.0, 4.0, 8.0});
  // Stable pointers: re-registration returns the same instrument.
  EXPECT_EQ(counter, registry.GetCounter("test.events"));
  EXPECT_EQ(hist, registry.GetHistogram("test.hist", {99.0}));

  constexpr std::uint64_t kTotal = 200000;
  runtime::ThreadPool pool(4);
  const unsigned shards = runtime::ShardCountFor(&pool, kTotal);
  runtime::ParallelFor(&pool, kTotal, shards,
                       [&](unsigned, runtime::ShardRange range) {
                         for (std::uint64_t g = range.begin; g < range.end;
                              ++g) {
                           counter->Add(1);
                           hist->Record(static_cast<double>(g % 5));
                         }
                       });

  EXPECT_EQ(counter->Value(), kTotal);
  EXPECT_EQ(hist->Count(), kTotal);
  // Integer-valued observations: the CAS-summed double is exact in any
  // interleaving. sum over g%5 for a multiple of 5 is total/5 * (0+..+4).
  EXPECT_EQ(hist->Sum(), static_cast<double>(kTotal / 5 * 10));
  std::uint64_t bucket_total = 0;
  for (std::size_t i = 0; i <= 4; ++i) bucket_total += hist->CountInBucket(i);
  EXPECT_EQ(bucket_total, kTotal);
}

TEST(RegistryTest, HistogramBucketEdgesAreInclusiveUpperBounds) {
  HistogramMetric h({1.0, 2.0, 4.0});
  h.Record(0.0);   // <= 1       -> bucket 0
  h.Record(1.0);   // == bound 0 -> bucket 0 (inclusive)
  h.Record(1.5);   //            -> bucket 1
  h.Record(2.0);   // == bound 1 -> bucket 1
  h.Record(4.0);   // == bound 2 -> bucket 2
  h.Record(4.01);  // past last  -> overflow bucket 3
  EXPECT_EQ(h.CountInBucket(0), 2u);
  EXPECT_EQ(h.CountInBucket(1), 2u);
  EXPECT_EQ(h.CountInBucket(2), 1u);
  EXPECT_EQ(h.CountInBucket(3), 1u);
  EXPECT_EQ(h.Count(), 6u);
}

TEST(RegistryTest, WriteJsonIsSortedByNameAndResetZeroesInPlace) {
  MetricRegistry registry;
  Counter* z = registry.GetCounter("zz.last");
  registry.GetGauge("mm.gauge")->Set(2.5);
  Counter* a = registry.GetCounter("aa.first");
  a->Add(3);
  z->Add(7);

  JsonWriter w;
  w.BeginObject();
  registry.WriteJson(&w);
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"aa.first\":3,\"mm.gauge\":2.5,\"zz.last\":7}");

  registry.Reset();
  EXPECT_EQ(a->Value(), 0u);            // Same pointer, zeroed in place.
  EXPECT_EQ(z->Value(), 0u);
  EXPECT_EQ(registry.GetCounter("aa.first"), a);
}

// ---------------------------------------------------------------------------
// Snapshot streams: determinism across engines, pools, and intervals.
// ---------------------------------------------------------------------------

broadcast::BroadcastProgram BuildTestProgram() {
  std::vector<broadcast::FlatFileSpec> files;
  for (int i = 0; i < 4; ++i) {
    files.push_back({"F" + std::to_string(i), 4, 8, {}});
  }
  auto p = broadcast::BuildFlatProgram(files, broadcast::FlatLayout::kSpread);
  EXPECT_TRUE(p.ok()) << p.status();
  return *p;
}

constexpr std::uint64_t kHorizon = 2048;

std::string StreamFor(const sim::Simulator& simulator, bool evented,
                      runtime::ThreadPool* pool,
                      std::uint64_t interval_slots) {
  sim::WorkloadConfig config;
  config.requests_per_file = 64;
  config.seed = 99;
  Timeline timeline(interval_slots, kHorizon);
  auto metrics = evented
                     ? simulator.RunWorkloadEvented(config, pool, &timeline)
                     : simulator.RunWorkload(config, pool, &timeline);
  EXPECT_TRUE(metrics.ok()) << metrics.status();
  return RenderSnapshotStream(timeline, nullptr);
}

TEST(SnapshotTest, StreamIsByteIdenticalAcrossEnginesAndPools) {
  const auto program = BuildTestProgram();
  auto channel = faults::ParseChannelSpec("bernoulli:p=0.05,seed=7");
  ASSERT_TRUE(channel.ok()) << channel.status();
  const sim::Simulator simulator(program, **channel, kHorizon);

  const std::string slot_serial = StreamFor(simulator, false, nullptr, 16);
  ASSERT_FALSE(slot_serial.empty());
  EXPECT_EQ(slot_serial, StreamFor(simulator, true, nullptr, 16))
      << "event-serial stream differs from slot-serial";
  runtime::ThreadPool pool(3);
  EXPECT_EQ(slot_serial, StreamFor(simulator, false, &pool, 16))
      << "slot-pooled stream differs from slot-serial";
  EXPECT_EQ(slot_serial, StreamFor(simulator, true, &pool, 16))
      << "event-pooled stream differs from slot-serial";
}

// Last line of a stream (the "final" line when no registry is attached).
JsonValue FinalLineOf(const std::string& stream) {
  const std::size_t end = stream.find_last_not_of('\n');
  const std::size_t begin = stream.find_last_of('\n', end);
  auto parsed = ParseJson(stream.substr(
      begin == std::string::npos ? 0 : begin + 1, end - begin));
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  return parsed.ok() ? *parsed : JsonValue{};
}

double NumField(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.Find(key);
  EXPECT_NE(v, nullptr) << "missing field " << key;
  return v != nullptr ? v->number : -1.0;
}

TEST(SnapshotTest, FinalLineIsIntervalInvariant) {
  const auto program = BuildTestProgram();
  auto channel = faults::ParseChannelSpec("bernoulli:p=0.05,seed=7");
  ASSERT_TRUE(channel.ok()) << channel.status();
  const sim::Simulator simulator(program, **channel, kHorizon);

  // The cumulative end state cannot depend on how finely it was sampled.
  const JsonValue fine = FinalLineOf(StreamFor(simulator, false, nullptr, 1));
  const JsonValue coarse =
      FinalLineOf(StreamFor(simulator, false, nullptr, kHorizon));
  for (const char* key :
       {"completed", "incomplete", "attempts", "missed_deadline",
        "errors_observed", "mean_latency", "max_latency", "mean_stall",
        "undecodable_rate", "miss_rate"}) {
    EXPECT_EQ(NumField(fine, key), NumField(coarse, key)) << key;
  }
  // Every request is accounted for: attempts = completed + incomplete.
  EXPECT_EQ(NumField(fine, "attempts"),
            NumField(fine, "completed") + NumField(fine, "incomplete"));
  EXPECT_EQ(NumField(fine, "attempts"),
            static_cast<double>(4 * 64));  // files x requests_per_file
}

TEST(SnapshotTest, StreamGeometryMatchesIntervalArithmetic) {
  Timeline timeline(7, 100);
  EXPECT_EQ(timeline.bucket_count(), 15u);  // ceil(100 / 7)
  timeline.RecordCompleted(/*completion_slot=*/99, /*latency=*/100,
                           /*stall=*/0, /*met_deadline=*/true, /*errors=*/0,
                           /*corrupt=*/0);
  timeline.RecordIncomplete(/*errors=*/2, /*corrupt=*/1);
  const std::string stream = RenderSnapshotStream(timeline, nullptr);
  // 1 header + 15 snapshot/final lines, no registry line.
  std::size_t lines = 0;
  for (char c : stream) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 16u);
  const JsonValue final_line = FinalLineOf(stream);
  EXPECT_EQ(NumField(final_line, "slot"), 100.0);  // Clamped to horizon.
  EXPECT_EQ(NumField(final_line, "completed"), 1.0);
  EXPECT_EQ(NumField(final_line, "incomplete"), 1.0);
  EXPECT_EQ(NumField(final_line, "undecodable_rate"), 0.5);
  EXPECT_EQ(NumField(final_line, "total_errors_observed"), 2.0);
  EXPECT_EQ(NumField(final_line, "total_corrupt_detected"), 1.0);
}

TEST(SnapshotTest, EmptyTimelineStillRendersEveryIntervalAndAFinalLine) {
  // A run that recorded nothing (e.g. a workload of zero requests) must
  // still produce the full snapshot geometry with all-zero rows, not an
  // empty or truncated stream — bdisk_top renders whatever exists.
  Timeline timeline(16, 256);
  const std::string stream = RenderSnapshotStream(timeline, nullptr);
  std::size_t lines = 0;
  for (char c : stream) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 1u + 256 / 16);  // header + one line per interval
  const JsonValue final_line = FinalLineOf(stream);
  EXPECT_EQ(NumField(final_line, "slot"), 256.0);
  EXPECT_EQ(NumField(final_line, "attempts"), 0.0);
  EXPECT_EQ(NumField(final_line, "completed"), 0.0);
  // Zero attempts must not divide by zero.
  EXPECT_EQ(NumField(final_line, "undecodable_rate"), 0.0);
  EXPECT_EQ(NumField(final_line, "miss_rate"), 0.0);
}

TEST(SnapshotTest, IntervalLargerThanHorizonCollapsesToOneBucket) {
  // interval_slots > horizon is legal: the whole run is one snapshot
  // interval, and the single line doubles as the final line.
  Timeline timeline(5000, 100);
  EXPECT_EQ(timeline.bucket_count(), 1u);
  timeline.RecordCompleted(/*completion_slot=*/42, /*latency=*/43,
                           /*stall=*/0, /*met_deadline=*/true, /*errors=*/0,
                           /*corrupt=*/0);
  const std::string stream = RenderSnapshotStream(timeline, nullptr);
  std::size_t lines = 0;
  for (char c : stream) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 2u);  // header + the one final line
  const JsonValue final_line = FinalLineOf(stream);
  EXPECT_EQ(final_line.Find("type")->string_value, "final");
  EXPECT_EQ(NumField(final_line, "slot"), 100.0);  // Clamped to horizon.
  EXPECT_EQ(NumField(final_line, "completed"), 1.0);
}

TEST(SnapshotTest, AllIncompleteRunStreamsConsistentlyAcrossEngines) {
  // A channel that loses every slot: nothing ever decodes. The stream
  // must still be well formed (no latency statistics to aggregate) and
  // byte-identical across engines and pools.
  const auto program = BuildTestProgram();
  auto channel = faults::ParseChannelSpec("outage:period=64,start=0,len=64");
  ASSERT_TRUE(channel.ok()) << channel.status();
  const sim::Simulator simulator(program, **channel, kHorizon);

  const std::string slot_serial = StreamFor(simulator, false, nullptr, 256);
  const JsonValue final_line = FinalLineOf(slot_serial);
  EXPECT_EQ(NumField(final_line, "completed"), 0.0);
  EXPECT_EQ(NumField(final_line, "incomplete"),
            static_cast<double>(4 * 64));
  EXPECT_EQ(NumField(final_line, "undecodable_rate"), 1.0);
  EXPECT_EQ(NumField(final_line, "miss_rate"), 1.0);
  EXPECT_EQ(NumField(final_line, "mean_latency"), 0.0);

  EXPECT_EQ(slot_serial, StreamFor(simulator, true, nullptr, 256))
      << "event-serial stream differs on the all-incomplete run";
  runtime::ThreadPool pool(3);
  EXPECT_EQ(slot_serial, StreamFor(simulator, true, &pool, 256))
      << "event-pooled stream differs on the all-incomplete run";
}

// ---------------------------------------------------------------------------
// StreamTail exactly-once framing (the bdisk_top --follow engine).

TEST(StreamTailTest, UnterminatedLineIsPendingThenDeliveredExactlyOnce) {
  StreamTail tail;
  std::vector<std::string> lines;
  const auto sink = [&lines](const std::string& l) { lines.push_back(l); };
  tail.Feed("alpha\nbra", 9, sink);
  // "bra" has no newline yet: buffered, not delivered.
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "alpha");
  EXPECT_EQ(tail.pending(), "bra");
  // The producer completes the line: one delivery, with both halves.
  tail.Feed("vo\n", 3, sink);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[1], "bravo");
  EXPECT_TRUE(tail.pending().empty());
}

TEST(StreamTailTest, PollFileCompletesPartialLineExactlyOnce) {
  const std::string path = ::testing::TempDir() + "/bdisk_tail_poll_test";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "one\ntw";  // Final line mid-write, no trailing newline.
  }
  StreamTail tail;
  std::vector<std::string> lines;
  const auto sink = [&lines](const std::string& l) { lines.push_back(l); };
  ASSERT_TRUE(tail.PollFile(path, sink));
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "one");
  EXPECT_EQ(tail.pending(), "tw");
  // Nothing appended: polling again must not re-deliver anything.
  ASSERT_TRUE(tail.PollFile(path, sink));
  EXPECT_EQ(lines.size(), 1u);
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "o\nthree\n";
  }
  ASSERT_TRUE(tail.PollFile(path, sink));
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[1], "two");  // Once, whole — not "tw" + "two".
  EXPECT_EQ(lines[2], "three");
  std::remove(path.c_str());
}

TEST(StreamTailTest, TruncateMidLineRestartsFromByteZero) {
  const std::string path = ::testing::TempDir() + "/bdisk_tail_trunc_test";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "first run line\npartial tail without newline";
  }
  StreamTail tail;
  std::vector<std::string> lines;
  const auto sink = [&lines](const std::string& l) { lines.push_back(l); };
  bool restarted = false;
  ASSERT_TRUE(tail.PollFile(path, sink, &restarted));
  EXPECT_FALSE(restarted);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_FALSE(tail.pending().empty());
  // A fresh (shorter) run replaces the file while the old tail is
  // mid-line: the tail must discard the stale pending bytes and re-read
  // from byte zero instead of splicing two unrelated files together.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "second\n";
  }
  ASSERT_TRUE(tail.PollFile(path, sink, &restarted));
  EXPECT_TRUE(restarted);
  EXPECT_EQ(tail.truncations(), 1u);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[1], "second");
  EXPECT_TRUE(tail.pending().empty());
  EXPECT_EQ(tail.offset(), 7u);
  std::remove(path.c_str());
}

TEST(SnapshotTest, MergeConcatenatesShardLogs) {
  Timeline a(4, 64);
  Timeline b(4, 64);
  a.RecordCompleted(3, 4, 0, true, 0, 0);
  b.RecordCompleted(9, 10, 2, false, 1, 0);
  b.RecordIncomplete(0, 0);
  a.Merge(b);
  EXPECT_EQ(a.completed_count(), 2u);
  const JsonValue final_line = FinalLineOf(RenderSnapshotStream(a, nullptr));
  EXPECT_EQ(NumField(final_line, "completed"), 2.0);
  EXPECT_EQ(NumField(final_line, "incomplete"), 1.0);
  EXPECT_EQ(NumField(final_line, "missed_deadline"), 1.0);
  EXPECT_EQ(NumField(final_line, "mean_latency"), 7.0);
}

}  // namespace
}  // namespace bdisk::obs
