// Tests for the workload spec parser.

#include "bdisk/spec_parser.h"

#include <gtest/gtest.h>

namespace bdisk::broadcast {
namespace {

TEST(SpecParserTest, ByteDomainHappyPath) {
  const std::string text = R"(
# IVHS workload
channel 196608
blocksize 1024
file nav     bytes=16384 latency=0.5 faults=1
file weather bytes=8192  latency=2.0
)";
  auto spec = ParseWorkloadSpec(text);
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_TRUE(spec->IsByteDomain());
  EXPECT_EQ(spec->channel_bytes_per_second, 196608u);
  EXPECT_EQ(spec->block_size, 1024u);
  ASSERT_EQ(spec->byte_files.size(), 2u);
  EXPECT_EQ(spec->byte_files[0].name, "nav");
  EXPECT_EQ(spec->byte_files[0].bytes, 16384u);
  EXPECT_DOUBLE_EQ(spec->byte_files[0].latency_seconds, 0.5);
  EXPECT_EQ(spec->byte_files[0].fault_tolerance, 1u);
  EXPECT_EQ(spec->byte_files[1].fault_tolerance, 0u);  // Default.
}

TEST(SpecParserTest, SlotDomainHappyPath) {
  const std::string text =
      "gfile incidents blocks=2 latencies=12,14,16\n"
      "gfile maps blocks=8 latencies=150,170\n";
  auto spec = ParseWorkloadSpec(text);
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_FALSE(spec->IsByteDomain());
  ASSERT_EQ(spec->generalized_files.size(), 2u);
  EXPECT_EQ(spec->generalized_files[0].latency_slots,
            (std::vector<std::uint64_t>{12, 14, 16}));
  EXPECT_EQ(spec->generalized_files[1].size_blocks, 8u);
}

TEST(SpecParserTest, CommentsAndBlankLines) {
  const std::string text =
      "\n# header\n   \ngfile a blocks=1 latencies=4  # trailing comment\n";
  auto spec = ParseWorkloadSpec(text);
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->generalized_files.size(), 1u);
}

TEST(SpecParserTest, ErrorsNameTheLine) {
  auto spec = ParseWorkloadSpec("channel 100\nbogus 3\n");
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("line 2"), std::string::npos);
}

TEST(SpecParserTest, RejectsMixedDomains) {
  const std::string text =
      "channel 1000\n"
      "file a bytes=100 latency=1.0\n"
      "gfile b blocks=1 latencies=4\n";
  auto spec = ParseWorkloadSpec(text);
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("mixes"), std::string::npos);
}

TEST(SpecParserTest, ByteDomainNeedsChannel) {
  auto spec = ParseWorkloadSpec("file a bytes=100 latency=1.0\n");
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("channel"), std::string::npos);
}

TEST(SpecParserTest, RejectsEmptySpec) {
  EXPECT_FALSE(ParseWorkloadSpec("# nothing\n").ok());
}

TEST(SpecParserTest, RejectsMalformedNumbers) {
  EXPECT_FALSE(ParseWorkloadSpec("channel -5\nfile a bytes=1 latency=1\n").ok());
  EXPECT_FALSE(
      ParseWorkloadSpec("channel 10\nfile a bytes=x latency=1\n").ok());
  EXPECT_FALSE(
      ParseWorkloadSpec("gfile a blocks=1 latencies=4,,5\n").ok());
  EXPECT_FALSE(ParseWorkloadSpec("channel 0\ngfile a blocks=1 latencies=4\n")
                   .ok());
}

TEST(SpecParserTest, RejectsMissingAttributes) {
  EXPECT_FALSE(ParseWorkloadSpec("channel 10\nfile a bytes=100\n").ok());
  EXPECT_FALSE(ParseWorkloadSpec("gfile a blocks=2\n").ok());
  EXPECT_FALSE(ParseWorkloadSpec("channel 10\nfile a nonsense\n").ok());
  EXPECT_FALSE(
      ParseWorkloadSpec("gfile a blocks=2 latencies=8 color=red\n").ok());
}

TEST(SpecParserTest, RejectsDuplicateFileNames) {
  auto byte_dup = ParseWorkloadSpec(
      "channel 10\n"
      "file a bytes=100 latency=1.0\n"
      "file a bytes=200 latency=2.0\n");
  ASSERT_FALSE(byte_dup.ok());
  EXPECT_NE(byte_dup.status().message().find("duplicate"),
            std::string::npos);
  EXPECT_NE(byte_dup.status().message().find("line 3"), std::string::npos);

  auto gfile_dup = ParseWorkloadSpec(
      "gfile x blocks=1 latencies=4\n"
      "gfile x blocks=2 latencies=8\n");
  ASSERT_FALSE(gfile_dup.ok());
  EXPECT_NE(gfile_dup.status().message().find("duplicate"),
            std::string::npos);

  // Duplicates across domains are caught before the mixed-domain check
  // (both are errors; the line-specific one is more actionable).
  EXPECT_FALSE(ParseWorkloadSpec("channel 10\n"
                                 "file a bytes=100 latency=1.0\n"
                                 "gfile a blocks=1 latencies=4\n")
                   .ok());
}

TEST(SpecParserTest, RejectsZeroLengthFiles) {
  auto zero_bytes =
      ParseWorkloadSpec("channel 10\nfile a bytes=0 latency=1.0\n");
  ASSERT_FALSE(zero_bytes.ok());
  EXPECT_NE(zero_bytes.status().message().find("zero length"),
            std::string::npos);

  auto zero_blocks = ParseWorkloadSpec("gfile a blocks=0 latencies=4\n");
  ASSERT_FALSE(zero_blocks.ok());
  EXPECT_NE(zero_blocks.status().message().find("zero length"),
            std::string::npos);
}

TEST(SpecParserTest, RejectsNonPositiveLatencies) {
  EXPECT_FALSE(
      ParseWorkloadSpec("channel 10\nfile a bytes=8 latency=0\n").ok());
  EXPECT_FALSE(
      ParseWorkloadSpec("channel 10\nfile a bytes=8 latency=-1.5\n").ok());
  EXPECT_FALSE(ParseWorkloadSpec("gfile a blocks=2 latencies=8,0\n").ok());
}

TEST(SpecParserTest, RejectsOverflowSizedFields) {
  // 2^64 and beyond must surface as line errors, not wrap silently.
  EXPECT_FALSE(ParseWorkloadSpec("channel 10\n"
                                 "file a bytes=18446744073709551616 "
                                 "latency=1.0\n")
                   .ok());
  auto overflow = ParseWorkloadSpec(
      "gfile a blocks=99999999999999999999999999 latencies=4\n");
  ASSERT_FALSE(overflow.ok());
  EXPECT_NE(overflow.status().message().find("line 1"), std::string::npos);
  EXPECT_FALSE(ParseWorkloadSpec("channel 184467440737095516160\n"
                                 "gfile a blocks=1 latencies=4\n")
                   .ok());
  EXPECT_FALSE(ParseWorkloadSpec("gfile a blocks=1 "
                                 "latencies=4,18446744073709551616\n")
                   .ok());
}

TEST(SpecParserTest, MalformedLinesDoNotCrash) {
  // A grab bag of malformed inputs; each must return a Status, never
  // crash.
  const char* cases[] = {
      "file\n",
      "gfile\n",
      "channel\n",
      "channel 10 20\n",
      "file a bytes= latency=1\n",
      "file a =100 latency=1\n",
      "file a bytes=100=200 latency=1\n",
      "gfile a blocks=1 latencies=\n",
      "gfile a blocks=1 latencies=,\n",
      "gfile a blocks=1 latencies=,4\n",
      "blocksize 0\n",
      "file a bytes=1e3 latency=1\n",
  };
  for (const char* text : cases) {
    EXPECT_FALSE(ParseWorkloadSpec(text).ok()) << text;
  }
}

TEST(SpecParserTest, ParsedSpecBuildsEndToEnd) {
  const std::string text =
      "gfile urgent blocks=2 latencies=16,20\n"
      "gfile bulk blocks=6 latencies=80,90\n";
  auto spec = ParseWorkloadSpec(text);
  ASSERT_TRUE(spec.ok());
  for (const GeneralizedFileSpec& f : spec->generalized_files) {
    EXPECT_TRUE(f.Validate().ok());
  }
}

}  // namespace
}  // namespace bdisk::broadcast
