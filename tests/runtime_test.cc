// Tests for the runtime layer: ThreadPool, ShardOf/ParallelFor, and
// counter-based RNG streams. The concurrency cases double as
// ThreadSanitizer targets (the CI tsan job runs this binary).

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "runtime/flags.h"
#include "runtime/parallel_for.h"
#include "runtime/rng_stream.h"
#include "runtime/thread_pool.h"

namespace bdisk::runtime {
namespace {

TEST(ThreadPoolTest, ClampsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
}

TEST(ThreadPoolTest, DrainsAllTasksOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.thread_count(), 4u);
    for (int i = 0; i < 1000; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, HardwareThreadsNeverZero) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1u);
}

TEST(ShardOfTest, PartitionsExactlyAndEvenly) {
  for (std::uint64_t total : {0ull, 1ull, 7ull, 8ull, 100ull, 12345ull}) {
    for (unsigned shards : {1u, 2u, 3u, 8u, 17u}) {
      std::uint64_t covered = 0;
      std::uint64_t expected_begin = 0;
      std::uint64_t min_size = ~0ull;
      std::uint64_t max_size = 0;
      for (unsigned s = 0; s < shards; ++s) {
        const ShardRange range = ShardOf(total, shards, s);
        EXPECT_EQ(range.begin, expected_begin);  // Contiguous, in order.
        expected_begin = range.end;
        covered += range.size();
        min_size = std::min(min_size, range.size());
        max_size = std::max(max_size, range.size());
      }
      EXPECT_EQ(covered, total);
      EXPECT_EQ(expected_begin, total);
      EXPECT_LE(max_size - min_size, 1u);  // Balanced within one item.
    }
  }
}

TEST(ShardOfTest, DeterministicAcrossCalls) {
  const ShardRange a = ShardOf(12345, 7, 3);
  const ShardRange b = ShardOf(12345, 7, 3);
  EXPECT_EQ(a.begin, b.begin);
  EXPECT_EQ(a.end, b.end);
}

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::uint64_t total = 10000;
  std::vector<int> visits(total, 0);  // Disjoint ranges: no races.
  ParallelFor(&pool, total, 8, [&visits](unsigned, ShardRange range) {
    for (std::uint64_t i = range.begin; i < range.end; ++i) ++visits[i];
  });
  for (std::uint64_t i = 0; i < total; ++i) {
    ASSERT_EQ(visits[i], 1) << "index " << i;
  }
}

TEST(ParallelForTest, NullPoolRunsInlineInShardOrder) {
  std::vector<unsigned> shard_order;
  ParallelFor(nullptr, 10, 4, [&shard_order](unsigned shard, ShardRange) {
    shard_order.push_back(shard);
  });
  EXPECT_EQ(shard_order, (std::vector<unsigned>{0, 1, 2, 3}));
}

TEST(ParallelForTest, PassesMatchingShardRanges) {
  ThreadPool pool(3);
  std::vector<ShardRange> seen(5);
  ParallelFor(&pool, 103, 5, [&seen](unsigned shard, ShardRange range) {
    seen[shard] = range;
  });
  for (unsigned s = 0; s < 5; ++s) {
    const ShardRange expected = ShardOf(103, 5, s);
    EXPECT_EQ(seen[s].begin, expected.begin);
    EXPECT_EQ(seen[s].end, expected.end);
  }
}

TEST(ParallelForTest, SkipsEmptyShards) {
  ThreadPool pool(4);
  std::atomic<int> invocations{0};
  ParallelFor(&pool, 3, 8, [&invocations](unsigned, ShardRange range) {
    EXPECT_GT(range.size(), 0u);
    invocations.fetch_add(1);
  });
  EXPECT_EQ(invocations.load(), 3);
  // Zero work: no invocation at all, and no hang.
  ParallelFor(&pool, 0, 8, [](unsigned, ShardRange) { FAIL(); });
}

TEST(ParallelForTest, SharedAtomicAccumulation) {
  // TSan target: concurrent writes to one atomic from all workers.
  ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  ParallelFor(&pool, 100000, 16, [&sum](unsigned, ShardRange range) {
    std::uint64_t local = 0;
    for (std::uint64_t i = range.begin; i < range.end; ++i) local += i;
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), 100000ull * 99999ull / 2);
}

TEST(RngStreamTest, StreamSeedDeterministicAndDistinct) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 4096; ++s) {
    EXPECT_EQ(StreamSeed(42, s), StreamSeed(42, s));
    seeds.insert(StreamSeed(42, s));
  }
  EXPECT_EQ(seeds.size(), 4096u);  // Injective in the stream index.
}

TEST(RngStreamTest, DifferentBaseSeedsDecorrelate) {
  int same = 0;
  for (std::uint64_t s = 0; s < 256; ++s) {
    if (StreamRng(1, s)() == StreamRng(2, s)()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngStreamTest, StreamRngReplaysIdentically) {
  Rng a = StreamRng(7, 123);
  Rng b = StreamRng(7, 123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(ByteSizeTest, ParsesPlainAndBinarySuffixes) {
  const struct {
    const char* token;
    std::uint64_t expected;
  } kCases[] = {
      {"0", 0},
      {"123", 123},
      {"123B", 123},
      {"4KiB", 4096},
      {"64MiB", 64ull << 20},
      {"2GiB", 2ull << 30},
      {"16383GiB", 16383ull << 30},
  };
  for (const auto& c : kCases) {
    std::uint64_t value = 0;
    EXPECT_TRUE(ParseByteSizeToken(c.token, &value)) << c.token;
    EXPECT_EQ(value, c.expected) << c.token;
    const auto result = ParseByteSize(c.token);
    ASSERT_TRUE(result.ok()) << c.token;
    EXPECT_EQ(*result, c.expected) << c.token;
  }
}

TEST(ByteSizeTest, RejectsMalformedInputNamingTheToken) {
  const char* kBad[] = {
      "",      "-1",    "1.5GiB", "12 KiB", "KiB",        "64MB",
      "64KB",  "64kib", "64GiB ", "0x10",   "99999999999GiB",  // Overflows.
      "18446744073709551616",                               // > 2^64-1.
  };
  for (const char* token : kBad) {
    std::uint64_t value = 0;
    EXPECT_FALSE(ParseByteSizeToken(token, &value)) << token;
    const auto result = ParseByteSize(token);
    ASSERT_FALSE(result.ok()) << token;
    EXPECT_TRUE(result.status().IsInvalidArgument()) << result.status();
    // The error names the offending token (channel-spec error style).
    EXPECT_NE(result.status().message().find("'" + std::string(token) + "'"),
              std::string::npos)
        << result.status();
  }
  std::uint64_t value = 0;
  EXPECT_FALSE(ParseByteSizeToken(nullptr, &value));
}

TEST(ByteSizeTest, ByteSizeFlagParsesAndFallsBack) {
  const char* argv_ok[] = {"prog", "--store-bytes", "8MiB"};
  EXPECT_EQ(ByteSizeFlag(3, const_cast<char**>(argv_ok), "store-bytes", 7),
            8ull << 20);
  const char* argv_eq[] = {"prog", "--cap-bytes=512KiB"};
  EXPECT_EQ(ByteSizeFlag(2, const_cast<char**>(argv_eq), "cap-bytes", 7),
            512ull << 10);
  const char* argv_bad[] = {"prog", "--store-bytes", "8MB"};
  EXPECT_EQ(ByteSizeFlag(3, const_cast<char**>(argv_bad), "store-bytes", 7),
            7u);
  EXPECT_EQ(ByteSizeFlag(1, const_cast<char**>(argv_ok), "store-bytes", 7),
            7u);
}

TEST(StrictFlagTest, AcceptsBothSpellingsAndConsumes) {
  {
    char a0[] = "prog", a1[] = "--port", a2[] = "9000", a3[] = "file";
    char* argv[] = {a0, a1, a2, a3, nullptr};
    int argc = 4;
    const auto v = ConsumeUintFlagOnce(&argc, argv, "port", 7);
    ASSERT_TRUE(v.ok()) << v.status();
    EXPECT_EQ(*v, 9000u);
    ASSERT_EQ(argc, 2);  // Flag and value consumed; positional kept.
    EXPECT_STREQ(argv[1], "file");
    EXPECT_EQ(argv[2], nullptr);  // argv[argc] == NULL preserved.
  }
  {
    char a0[] = "prog", a1[] = "--port=9000";
    char* argv[] = {a0, a1, nullptr};
    int argc = 2;
    const auto v = ConsumeUintFlagOnce(&argc, argv, "port", 7);
    ASSERT_TRUE(v.ok()) << v.status();
    EXPECT_EQ(*v, 9000u);
    EXPECT_EQ(argc, 1);
  }
  {
    char a0[] = "prog";
    char* argv[] = {a0, nullptr};
    int argc = 1;
    const auto v = ConsumeUintFlagOnce(&argc, argv, "port", 7);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, 7u);  // Absent: fallback.
  }
}

TEST(StrictFlagTest, DuplicateFlagErrorsNamingTheFlag) {
  // Same spelling twice.
  {
    char a0[] = "prog", a1[] = "--port", a2[] = "1", a3[] = "--port",
         a4[] = "2";
    char* argv[] = {a0, a1, a2, a3, a4, nullptr};
    int argc = 5;
    const auto v = ConsumeUintFlagOnce(&argc, argv, "port", 7);
    ASSERT_FALSE(v.ok());
    EXPECT_TRUE(v.status().IsInvalidArgument());
    EXPECT_NE(v.status().message().find("--port"), std::string::npos)
        << v.status();
  }
  // Mixed spellings count as the same flag.
  {
    char a0[] = "prog", a1[] = "--port=1", a2[] = "--port", a3[] = "2";
    char* argv[] = {a0, a1, a2, a3, nullptr};
    int argc = 4;
    const auto v = ConsumeStringFlagOnce(&argc, argv, "port");
    ASSERT_FALSE(v.ok());
    EXPECT_NE(v.status().message().find("--port"), std::string::npos);
  }
  // Bool flags too.
  {
    char a0[] = "prog", a1[] = "--follow", a2[] = "--follow";
    char* argv[] = {a0, a1, a2, nullptr};
    int argc = 3;
    const auto v = ConsumeBoolFlagOnce(&argc, argv, "follow");
    ASSERT_FALSE(v.ok());
    EXPECT_NE(v.status().message().find("--follow"), std::string::npos);
  }
  // A different flag sharing the prefix is NOT a duplicate.
  {
    char a0[] = "prog", a1[] = "--port", a2[] = "1", a3[] = "--portable";
    char* argv[] = {a0, a1, a2, a3, nullptr};
    int argc = 4;
    const auto v = ConsumeUintFlagOnce(&argc, argv, "port", 7);
    ASSERT_TRUE(v.ok()) << v.status();
    EXPECT_EQ(*v, 1u);
  }
}

TEST(StrictFlagTest, MalformedValueErrorsNamingFlagAndToken) {
  char a0[] = "prog", a1[] = "--port", a2[] = "-3";
  char* argv[] = {a0, a1, a2, nullptr};
  int argc = 3;
  const auto v = ConsumeUintFlagOnce(&argc, argv, "port", 7);
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.status().message().find("--port"), std::string::npos);
  EXPECT_NE(v.status().message().find("-3"), std::string::npos);

  char b0[] = "prog", b1[] = "--bandwidth=8MB";
  char* argv2[] = {b0, b1, nullptr};
  int argc2 = 2;
  const auto w = ConsumeByteSizeFlagOnce(&argc2, argv2, "bandwidth", 0);
  ASSERT_FALSE(w.ok());
  EXPECT_NE(w.status().message().find("--bandwidth"), std::string::npos);
}

}  // namespace
}  // namespace bdisk::runtime
