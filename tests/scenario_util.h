// Shared helpers for the fixture-driven regression tests: parsing
// tests/fixtures/*.scenario files and rebuilding their programs through
// the same spec-to-program pipeline the planner runs. Used by
// scenario_test.cc (golden replay) and engine_equivalence_test.cc
// (slot-vs-event cross-engine proof); each test is its own binary, so
// everything here is header-only.

#ifndef BDISK_TESTS_SCENARIO_UTIL_H_
#define BDISK_TESTS_SCENARIO_UTIL_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bdisk/block_size.h"
#include "bdisk/pinwheel_builder.h"
#include "bdisk/spec_parser.h"
#include "pinwheel/composite_scheduler.h"

namespace bdisk::sim::scenario_util {

inline std::string ReadFileOrDie(const std::filesystem::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

inline std::string Strip(const std::string& s) {
  const std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

/// A parsed .scenario fixture: `key = value` lines, '#' comments.
struct Scenario {
  std::string name;
  std::string spec_file;
  std::string channel;
  std::uint64_t horizon = 0;
  std::uint64_t requests_per_file = 0;
  std::uint64_t workload_seed = 0;

  /// Empty iff the fixture is complete and well-formed.
  std::string Problem() const {
    if (spec_file.empty()) return "missing spec";
    if (channel.empty()) return "missing channel";
    if (horizon == 0) return "missing horizon";
    if (requests_per_file == 0) return "missing requests_per_file";
    return "";
  }
};

inline Scenario ParseScenario(const std::filesystem::path& path) {
  Scenario scenario;
  scenario.name = path.stem().string();
  std::istringstream in(ReadFileOrDie(path));
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    line = Strip(line);
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    EXPECT_NE(eq, std::string::npos) << path << ": bad line '" << line << "'";
    if (eq == std::string::npos) continue;
    const std::string key = Strip(line.substr(0, eq));
    const std::string value = Strip(line.substr(eq + 1));
    if (key == "spec") {
      scenario.spec_file = value;
    } else if (key == "channel") {
      scenario.channel = value;
    } else if (key == "horizon") {
      scenario.horizon = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "requests_per_file") {
      scenario.requests_per_file = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "workload_seed") {
      scenario.workload_seed = std::strtoull(value.c_str(), nullptr, 10);
    } else {
      ADD_FAILURE() << path << ": unknown key '" << key << "'";
    }
  }
  return scenario;
}

/// A built fixture program plus the payload block size the planner chose
/// (byte-domain specs only; slot-domain programs have no byte size and
/// report 0). The wire tests need the size to feed a UDP server.
struct BuiltProgram {
  broadcast::BroadcastProgram program;
  std::uint64_t block_size = 0;
};

// The same spec-to-program pipeline the planner runs.
inline BuiltProgram BuildProgramWithBlockSize(const std::string& spec_text) {
  auto spec = broadcast::ParseWorkloadSpec(spec_text);
  EXPECT_TRUE(spec.ok()) << spec.status();
  pinwheel::CompositeScheduler scheduler;
  if (spec->IsByteDomain()) {
    std::vector<std::uint64_t> ladder;
    if (spec->block_size != 0) ladder.push_back(spec->block_size);
    auto choice = broadcast::ChooseLargestFeasibleBlockSize(
        spec->byte_files, spec->channel_bytes_per_second, scheduler,
        std::move(ladder));
    EXPECT_TRUE(choice.ok()) << choice.status();
    if (!choice.ok()) return {};
    return {choice->build.program, choice->block_size};
  }
  auto result =
      broadcast::BuildGeneralizedProgram(spec->generalized_files, scheduler);
  EXPECT_TRUE(result.ok()) << result.status();
  if (!result.ok()) return {};
  return {result->program, 0};
}

inline broadcast::BroadcastProgram BuildProgram(const std::string& spec_text) {
  return BuildProgramWithBlockSize(spec_text).program;
}

inline std::vector<std::string> DiscoverScenarioNames(
    const std::filesystem::path& fixtures_dir) {
  std::vector<std::string> names;
  for (const auto& entry : std::filesystem::directory_iterator(fixtures_dir)) {
    if (entry.path().extension() == ".scenario") {
      names.push_back(entry.path().stem().string());
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

/// Sanitized gtest parameter name for a scenario.
inline std::string ParamName(const std::string& scenario_name) {
  std::string name = scenario_name;
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

}  // namespace bdisk::sim::scenario_util

#endif  // BDISK_TESTS_SCENARIO_UTIL_H_
