// Serial-vs-parallel equivalence: the runtime layer's determinism contract
// (docs/ARCHITECTURE.md) verified end to end. Every workload metric and
// every dispersed byte must be identical — bitwise, not approximately —
// between the serial path (null pool) and any thread/shard count.

#include <gtest/gtest.h>

#include <vector>

#include "bdisk/flat_builder.h"
#include "common/random.h"
#include "ida/dispersal.h"
#include "runtime/thread_pool.h"
#include "sim/simulation.h"

namespace bdisk::sim {
namespace {

using ida::Block;
using ida::Dispersal;
using runtime::ThreadPool;

broadcast::BroadcastProgram SixFileProgram() {
  std::vector<broadcast::FlatFileSpec> files;
  for (int i = 0; i < 6; ++i) {
    files.push_back({"F" + std::to_string(i),
                     static_cast<std::uint32_t>(3 + i % 3),
                     static_cast<std::uint32_t>(2 * (3 + i % 3)),
                     {96}});
  }
  auto p = broadcast::BuildFlatProgram(files, broadcast::FlatLayout::kSpread);
  EXPECT_TRUE(p.ok());
  return *p;
}

void ExpectIdenticalMetrics(const SimulationMetrics& a,
                            const SimulationMetrics& b) {
  ASSERT_EQ(a.per_file.size(), b.per_file.size());
  for (std::size_t f = 0; f < a.per_file.size(); ++f) {
    const FileMetrics& fa = a.per_file[f];
    const FileMetrics& fb = b.per_file[f];
    EXPECT_EQ(fa.file_name, fb.file_name);
    EXPECT_EQ(fa.completed, fb.completed);
    EXPECT_EQ(fa.missed_deadline, fb.missed_deadline);
    EXPECT_EQ(fa.incomplete, fb.incomplete);
    EXPECT_EQ(fa.errors_observed, fb.errors_observed);
    EXPECT_EQ(fa.latency.count(), fb.latency.count());
    // Bitwise equality of the floating-point aggregates, not EXPECT_NEAR:
    // that is the contract.
    EXPECT_EQ(fa.latency.sum(), fb.latency.sum());
    EXPECT_EQ(fa.latency.mean(), fb.latency.mean());
    EXPECT_EQ(fa.latency.variance(), fb.latency.variance());
    EXPECT_EQ(fa.latency.min(), fb.latency.min());
    EXPECT_EQ(fa.latency.max(), fb.latency.max());
  }
}

TEST(ParallelWorkloadTest, MatchesSerialBitwiseAcrossSeedsAndThreadCounts) {
  const auto program = SixFileProgram();
  for (std::uint64_t seed : {1ull, 42ull, 987654321ull}) {
    BernoulliFaultModel faults(0.08, 4242);
    Simulator sim(program, &faults, 60000);
    WorkloadConfig config;
    config.requests_per_file = 500;
    config.seed = seed;
    auto serial = sim.RunWorkload(config);
    ASSERT_TRUE(serial.ok()) << serial.status();
    for (unsigned threads : {2u, 3u, 5u}) {
      ThreadPool pool(threads);
      auto parallel = sim.RunWorkload(config, &pool);
      ASSERT_TRUE(parallel.ok()) << parallel.status();
      ExpectIdenticalMetrics(*serial, *parallel);
    }
  }
}

TEST(ParallelWorkloadTest, ShardCountDoesNotLeakIntoResults) {
  // Different pool sizes shard the same workload differently; the merged
  // metrics must not depend on the split.
  const auto program = SixFileProgram();
  BernoulliFaultModel faults(0.15, 99);
  Simulator sim(program, &faults, 60000);
  WorkloadConfig config;
  config.requests_per_file = 333;  // Deliberately not divisible by shards.
  ThreadPool pool_a(2);
  ThreadPool pool_b(7);
  auto a = sim.RunWorkload(config, &pool_a);
  auto b = sim.RunWorkload(config, &pool_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectIdenticalMetrics(*a, *b);
}

TEST(ParallelWorkloadTest, ValidationStillFailsUpFront) {
  const auto program = SixFileProgram();
  NoFaultModel faults;
  Simulator sim(program, &faults, 30);  // Horizon too small.
  ThreadPool pool(2);
  WorkloadConfig config;
  EXPECT_FALSE(sim.RunWorkload(config, &pool).ok());
  // Flat model on a rotating (n > m) program is rejected before sharding.
  Simulator sim2(program, &faults, 60000);
  WorkloadConfig flat;
  flat.model = broadcast::ClientModel::kFlat;
  EXPECT_FALSE(sim2.RunWorkload(flat, &pool).ok());
}

TEST(ParallelTransactionTest, MatchesSerialBitwise) {
  const auto program = SixFileProgram();
  for (std::uint64_t seed : {7ull, 4096ull}) {
    BernoulliFaultModel faults(0.1, 777);
    Simulator sim(program, &faults, 60000);
    TransactionWorkloadConfig config;
    config.transactions = 1500;
    config.files_per_transaction = 3;
    config.deadline_slots = 3 * program.period();
    config.seed = seed;
    auto serial = sim.RunTransactionWorkload(config);
    ASSERT_TRUE(serial.ok()) << serial.status();
    for (unsigned threads : {2u, 4u}) {
      ThreadPool pool(threads);
      auto parallel = sim.RunTransactionWorkload(config, &pool);
      ASSERT_TRUE(parallel.ok()) << parallel.status();
      EXPECT_EQ(serial->completed, parallel->completed);
      EXPECT_EQ(serial->missed_deadline, parallel->missed_deadline);
      EXPECT_EQ(serial->incomplete, parallel->incomplete);
      EXPECT_EQ(serial->errors_observed, parallel->errors_observed);
      EXPECT_EQ(serial->latency.count(), parallel->latency.count());
      EXPECT_EQ(serial->latency.sum(), parallel->latency.sum());
      EXPECT_EQ(serial->latency.variance(), parallel->latency.variance());
      EXPECT_EQ(serial->latency.min(), parallel->latency.min());
      EXPECT_EQ(serial->latency.max(), parallel->latency.max());
    }
  }
}

TEST(ParallelTransactionTest, ValidatesConfig) {
  const auto program = SixFileProgram();
  NoFaultModel faults;
  Simulator sim(program, &faults, 60000);
  TransactionWorkloadConfig config;
  config.files_per_transaction = 0;
  EXPECT_FALSE(sim.RunTransactionWorkload(config).ok());
  config.files_per_transaction = 100;  // More than the program has.
  EXPECT_FALSE(sim.RunTransactionWorkload(config).ok());
}

std::vector<std::uint8_t> RandomBytes(std::size_t size, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> data(size);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.Uniform(256));
  return data;
}

TEST(DisperseBatchTest, MatchesSerialByteForByte) {
  auto engine = Dispersal::Create(5, 10, 512);
  ASSERT_TRUE(engine.ok());
  const std::size_t stripe_bytes = 5 * 512;
  const auto file = RandomBytes(17 * stripe_bytes, 31337);
  auto serial = engine->DisperseBatch(3, file, 9);
  ASSERT_TRUE(serial.ok()) << serial.status();
  ASSERT_EQ(serial->size(), 17u);
  for (unsigned threads : {2u, 4u}) {
    ThreadPool pool(threads);
    auto parallel = engine->DisperseBatch(3, file, 9, &pool);
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    EXPECT_EQ(*serial, *parallel);  // Block == compares header + payload.
  }
}

TEST(DisperseBatchTest, StripesMatchSingleStripeDisperse) {
  auto engine = Dispersal::Create(4, 8, 64);
  ASSERT_TRUE(engine.ok());
  const std::size_t stripe_bytes = 4 * 64;
  const auto file = RandomBytes(6 * stripe_bytes, 555);
  auto batch = engine->DisperseBatch(1, file, 2);
  ASSERT_TRUE(batch.ok());
  for (std::size_t s = 0; s < 6; ++s) {
    const std::vector<std::uint8_t> stripe(
        file.begin() + s * stripe_bytes, file.begin() + (s + 1) * stripe_bytes);
    auto single = engine->Disperse(1, stripe, 2);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ((*batch)[s], *single) << "stripe " << s;
  }
}

TEST(DisperseBatchTest, RejectsBadSizes) {
  auto engine = Dispersal::Create(4, 8, 64);
  ASSERT_TRUE(engine.ok());
  EXPECT_TRUE(engine->DisperseBatch(0, {}).status().IsInvalidArgument());
  const auto short_file = RandomBytes(4 * 64 + 1, 1);
  EXPECT_TRUE(engine->DisperseBatch(0, short_file).status()
                  .IsInvalidArgument());
}

TEST(ReconstructBatchTest, RoundtripFromParityUnderPool) {
  auto engine = Dispersal::Create(6, 12, 256);
  ASSERT_TRUE(engine.ok());
  const std::size_t stripe_bytes = 6 * 256;
  const auto file = RandomBytes(20 * stripe_bytes, 777);
  ThreadPool pool(4);
  auto dispersed = engine->DisperseBatch(2, file, 0, &pool);
  ASSERT_TRUE(dispersed.ok());
  // Keep a different 6-subset per stripe (rotating, often all-parity) so
  // reconstruction exercises several cached inverses concurrently.
  std::vector<std::vector<Block>> received(dispersed->size());
  for (std::size_t s = 0; s < dispersed->size(); ++s) {
    for (std::size_t j = 0; j < 6; ++j) {
      received[s].push_back((*dispersed)[s][(s + j) % 12]);
    }
  }
  auto serial = engine->ReconstructBatch(received);
  ASSERT_TRUE(serial.ok()) << serial.status();
  EXPECT_EQ(*serial, file);
  auto parallel = engine->ReconstructBatch(received, &pool);
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  EXPECT_EQ(*parallel, file);
  EXPECT_LE(engine->cached_inverse_count(), 12u);
}

TEST(ReconstructBatchTest, PropagatesStripeErrors) {
  auto engine = Dispersal::Create(3, 6, 32);
  ASSERT_TRUE(engine.ok());
  const auto file = RandomBytes(4 * 3 * 32, 9);
  auto dispersed = engine->DisperseBatch(0, file);
  ASSERT_TRUE(dispersed.ok());
  EXPECT_TRUE(engine->ReconstructBatch({}).status().IsInvalidArgument());
  // Starve one stripe below the threshold.
  auto starved = *dispersed;
  starved[2].resize(2);
  ThreadPool pool(2);
  EXPECT_TRUE(
      engine->ReconstructBatch(starved, &pool).status().IsDataLoss());
}

}  // namespace
}  // namespace bdisk::sim
