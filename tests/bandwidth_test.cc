// Tests for the bandwidth planner (Equations (1) and (2) of the paper).

#include "bdisk/bandwidth.h"

#include <gtest/gtest.h>

#include <cmath>

#include "pinwheel/composite_scheduler.h"
#include "pinwheel/verifier.h"

namespace bdisk::broadcast {
namespace {

std::vector<FileSpec> AwacsFiles() {
  // The paper's motivating example: aircraft positions need 400 ms
  // temporal consistency, tank positions 6000 ms. Sizes in blocks; with
  // one fault to tolerate each.
  return {
      {"aircraft", 4, 0.4, 1},
      {"tanks", 8, 6.0, 1},
      {"terrain", 16, 10.0, 0},
  };
}

TEST(FileSpecTest, Validation) {
  FileSpec ok{"f", 2, 1.0, 0};
  EXPECT_TRUE(ok.Validate().ok());
  FileSpec zero_size{"f", 0, 1.0, 0};
  EXPECT_TRUE(zero_size.Validate().IsInvalidArgument());
  FileSpec bad_latency{"f", 2, 0.0, 0};
  EXPECT_TRUE(bad_latency.Validate().IsInvalidArgument());
}

TEST(FileSpecTest, DemandBlocksPerSecond) {
  FileSpec f{"f", 4, 0.4, 1};
  EXPECT_NEAR(f.DemandBlocksPerSecond(), 12.5, 1e-12);
}

TEST(FileSpecTest, ToBroadcastCondition) {
  FileSpec f{"f", 4, 0.5, 2};
  auto bc = f.ToBroadcastCondition(20);
  ASSERT_TRUE(bc.ok());
  EXPECT_EQ(bc->m, 4u);
  ASSERT_EQ(bc->d.size(), 3u);
  for (std::uint64_t d : bc->d) EXPECT_EQ(d, 10u);
  // Window too small for m + r blocks.
  EXPECT_TRUE(f.ToBroadcastCondition(10).status().IsInfeasible());
}

TEST(BandwidthPlannerTest, LowerBoundIsSumOfDemands) {
  const auto files = AwacsFiles();
  auto lower = BandwidthPlanner::LowerBound(files);
  ASSERT_TRUE(lower.ok());
  EXPECT_NEAR(*lower, (4.0 + 1) / 0.4 + (8.0 + 1) / 6.0 + 16.0 / 10.0,
              1e-12);
}

TEST(BandwidthPlannerTest, SufficientBandwidthIsTenSeventhsCeil) {
  const auto files = AwacsFiles();
  auto lower = BandwidthPlanner::LowerBound(files);
  auto sufficient = BandwidthPlanner::SufficientBandwidth(files);
  ASSERT_TRUE(lower.ok());
  ASSERT_TRUE(sufficient.ok());
  EXPECT_EQ(*sufficient,
            static_cast<std::uint64_t>(std::ceil(*lower * 10.0 / 7.0)));
  // At most 43% above the lower bound (plus integer rounding).
  EXPECT_LE(static_cast<double>(*sufficient), *lower * 10.0 / 7.0 + 1.0);
}

TEST(BandwidthPlannerTest, EmptyFilesRejected) {
  EXPECT_FALSE(BandwidthPlanner::LowerBound({}).ok());
  EXPECT_FALSE(BandwidthPlanner::SufficientBandwidth({}).ok());
  EXPECT_FALSE(BandwidthPlanner::ToPinwheelInstance({}, 5).ok());
}

TEST(BandwidthPlannerTest, ToPinwheelInstanceShape) {
  const std::vector<FileSpec> files{{"a", 5, 2.0, 1}, {"b", 3, 1.0, 0}};
  auto inst = BandwidthPlanner::ToPinwheelInstance(files, 10);
  ASSERT_TRUE(inst.ok());
  ASSERT_EQ(inst->size(), 2u);
  // Task 0: (m + r, floor(B * T)) = (6, 20); task 1: (3, 10).
  EXPECT_EQ(inst->tasks()[0].a, 6u);
  EXPECT_EQ(inst->tasks()[0].b, 20u);
  EXPECT_EQ(inst->tasks()[1].a, 3u);
  EXPECT_EQ(inst->tasks()[1].b, 10u);
}

TEST(BandwidthPlannerTest, InsufficientBandwidthInfeasible) {
  const std::vector<FileSpec> files{{"a", 5, 1.0, 0}};
  EXPECT_TRUE(
      BandwidthPlanner::ToPinwheelInstance(files, 4).status().IsInfeasible());
}

// The paper's core claim, end to end: the Eq. (2) bandwidth suffices for
// the pinwheel schedulers to produce a verified program.
TEST(BandwidthPlannerTest, SufficientBandwidthActuallySchedules) {
  const auto files = AwacsFiles();
  auto sufficient = BandwidthPlanner::SufficientBandwidth(files);
  ASSERT_TRUE(sufficient.ok());
  auto inst = BandwidthPlanner::ToPinwheelInstance(files, *sufficient);
  ASSERT_TRUE(inst.ok());
  EXPECT_LE(inst->density(), BandwidthPlanner::kSchedulableDensity + 0.05);
  pinwheel::CompositeScheduler scheduler;
  auto schedule = scheduler.BuildSchedule(*inst);
  ASSERT_TRUE(schedule.ok()) << schedule.status();
  EXPECT_TRUE(pinwheel::Verifier::Verify(*schedule, *inst).ok());
}

TEST(BandwidthPlannerTest, FindMinimalBandwidth) {
  const auto files = AwacsFiles();
  pinwheel::CompositeScheduler scheduler;
  auto minimal = BandwidthPlanner::FindMinimalBandwidth(files, scheduler);
  ASSERT_TRUE(minimal.ok()) << minimal.status();
  auto lower = BandwidthPlanner::LowerBound(files);
  auto sufficient = BandwidthPlanner::SufficientBandwidth(files);
  ASSERT_TRUE(lower.ok());
  ASSERT_TRUE(sufficient.ok());
  // Minimal feasible bandwidth sits between the bounds.
  EXPECT_GE(static_cast<double>(minimal->bandwidth), std::floor(*lower));
  EXPECT_LE(minimal->bandwidth, *sufficient);
  // The returned schedule really works at that bandwidth.
  auto inst = BandwidthPlanner::ToPinwheelInstance(files, minimal->bandwidth);
  ASSERT_TRUE(inst.ok());
  EXPECT_TRUE(pinwheel::Verifier::Verify(minimal->schedule, *inst).ok());
}

TEST(GeneralizedFileSpecTest, Validation) {
  GeneralizedFileSpec ok{"g", 2, {8, 10}};
  EXPECT_TRUE(ok.Validate().ok());
  EXPECT_EQ(ok.fault_tolerance(), 1u);
  GeneralizedFileSpec bad{"g", 2, {8, 2}};
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());
  GeneralizedFileSpec empty{"g", 2, {}};
  EXPECT_FALSE(empty.Validate().ok());
}

TEST(GeneralizedFileSpecTest, ToBroadcastCondition) {
  GeneralizedFileSpec g{"g", 3, {9, 12, 15}};
  const auto bc = g.ToBroadcastCondition();
  EXPECT_EQ(bc.m, 3u);
  EXPECT_EQ(bc.d, (std::vector<std::uint64_t>{9, 12, 15}));
}

}  // namespace
}  // namespace bdisk::broadcast
