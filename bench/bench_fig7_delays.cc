// E1 — Reproduces the paper's Figure 7: "Worst-case delays versus errors"
// for the toy system of Section 2.3 (file A: 5 blocks dispersed to 10;
// file B: 3 blocks dispersed to 6; broadcast period 8; data cycle 16).
//
// The paper's table (labeled an estimate there):
//     errors | with IDA | without IDA
//        0   |    0     |     0
//        1   |    3     |     8
//        2   |    4     |    16
//        3   |    6     |    24
//        4   |    7     |    32
//        5   |    8     |    40
//
// We compute the delays *exactly* under the documented adversarial model
// (worst start slot, worst placement of r corrupted transmissions of the
// retrieved file, delay = completion(r) - completion(0)). The shape to
// check: the without-IDA column is exactly r * tau = 8r (Lemma 1 tight),
// and the with-IDA column stays at or below r * Delta and far below 8r.

#include <cstdio>

#include "bdisk/delay_analysis.h"
#include "bdisk/flat_builder.h"
#include "bench_util.h"

namespace {

using bdisk::broadcast::BroadcastProgram;
using bdisk::broadcast::ClientModel;
using bdisk::broadcast::DelayAnalyzer;
using bdisk::broadcast::FlatFileSpec;
using bdisk::broadcast::FlatLayout;

BroadcastProgram Build(bool ida) {
  std::vector<FlatFileSpec> files{
      {"A", 5, ida ? 10u : 5u, {}},
      {"B", 3, ida ? 6u : 3u, {}},
  };
  auto p = BuildFlatProgram(files, FlatLayout::kSpread);
  if (!p.ok()) {
    std::fprintf(stderr, "builder failed: %s\n", p.status().ToString().c_str());
    std::exit(1);
  }
  return *p;
}

}  // namespace

int main() {
  const BroadcastProgram ida = Build(true);
  const BroadcastProgram flat = Build(false);
  DelayAnalyzer ida_analyzer(ida);
  DelayAnalyzer flat_analyzer(flat);

  std::printf("E1 / Figure 7: worst-case delays versus errors\n");
  std::printf("toy system: A (5 blocks -> 10 dispersed), B (3 -> 6), "
              "period tau = %llu, data cycle = %llu\n",
              static_cast<unsigned long long>(ida.period()),
              static_cast<unsigned long long>(ida.DataCycleLength()));
  std::printf("Delta(A) = %llu, Delta(B) = %llu\n\n",
              static_cast<unsigned long long>(ida.MaxGapOf(0)),
              static_cast<unsigned long long>(ida.MaxGapOf(1)));

  std::printf("%-7s %-22s %-24s %-18s %-18s\n", "errors",
              "with IDA (A / B)", "without IDA (A / B)", "paper with-IDA",
              "paper without");
  const int paper_with[6] = {0, 3, 4, 6, 7, 8};
  const int paper_without[6] = {0, 8, 16, 24, 32, 40};
  for (std::uint32_t r = 0; r <= 5; ++r) {
    const auto ida_a = ida_analyzer.WorstCaseDelay(0, r, ClientModel::kIda);
    const auto ida_b = ida_analyzer.WorstCaseDelay(1, r, ClientModel::kIda);
    const auto flat_a = flat_analyzer.WorstCaseDelay(0, r, ClientModel::kFlat);
    const auto flat_b = flat_analyzer.WorstCaseDelay(1, r, ClientModel::kFlat);
    if (!ida_a.ok() || !ida_b.ok() || !flat_a.ok() || !flat_b.ok()) {
      std::fprintf(stderr, "analysis failed\n");
      return 1;
    }
    std::printf("%-7u %6llu / %-13llu %7llu / %-14llu %-18d %-18d\n", r,
                static_cast<unsigned long long>(*ida_a),
                static_cast<unsigned long long>(*ida_b),
                static_cast<unsigned long long>(*flat_a),
                static_cast<unsigned long long>(*flat_b), paper_with[r],
                paper_without[r]);
  }

  // Shape checks the table must satisfy (exit non-zero on violation so CI
  // catches regressions).
  bool ok = true;
  for (std::uint32_t r = 1; r <= 5; ++r) {
    const auto flat_a = flat_analyzer.WorstCaseDelay(0, r, ClientModel::kFlat);
    const auto ida_a = ida_analyzer.WorstCaseDelay(0, r, ClientModel::kIda);
    const auto ida_b = ida_analyzer.WorstCaseDelay(1, r, ClientModel::kIda);
    ok &= flat_a.ok() && *flat_a == r * flat.period();  // Lemma 1 tight.
    ok &= ida_a.ok() && *ida_a < *flat_a;               // IDA wins.
    if (r <= 5) {
      ok &= ida_a.ok() && *ida_a <= ida_analyzer.Lemma2Bound(0, r);
    }
    if (r <= 3) {  // B's AIDA premise: n - m = 3.
      ok &= ida_b.ok() && *ida_b <= ida_analyzer.Lemma2Bound(1, r);
    }
  }
  benchutil::EmitJson("bench_fig7_delays", "shape_ok", ok ? 1 : 0, 1);
  std::printf("\nshape checks (Lemma 1 tight; IDA < flat; Lemma 2 bound): %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
