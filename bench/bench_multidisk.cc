// E9 (extension) — mean latency vs. worst-case guarantees: the paper's
// positioning, quantified.
//
// "Previous work on Bdisk protocols [placed] hot data items on fast
// spinning disks ... Such a strategy is optimal in the sense that it
// minimizes the average latency ... In a real-time database environment,
// minimizing the average latency ceases to be the main performance
// criterion. Rather, guaranteeing that timing constraints ... will be met
// becomes the overriding concern."  (Section 1)
//
// This bench builds, for one workload, (a) a flat program, (b) an
// Acharya-style multi-speed program (hot files spin fast), and (c) this
// paper's pinwheel program with per-file deadlines — and reports each
// file's MEAN retrieval latency next to its WORST-CASE latency after one
// fault. The multi-disk layout wins on hot-file mean latency; only the
// pinwheel layout bounds every file's worst case within its deadline.

#include <cstdio>

#include "bdisk/delay_analysis.h"
#include "bdisk/multi_disk.h"
#include "bdisk/pinwheel_builder.h"
#include "bench_util.h"
#include "pinwheel/composite_scheduler.h"

namespace {

using namespace bdisk::broadcast;  // NOLINT

struct Item {
  const char* name;
  std::uint32_t m;
  std::uint64_t deadline_slots;  // d(0) = d(1) promise for the pinwheel build.
};

constexpr Item kItems[] = {
    {"hot", 2, 24},
    {"warm", 6, 96},
    {"cold", 16, 384},
};

void Report(const char* label, const BroadcastProgram& p, bool check) {
  DelayAnalyzer analyzer(p);
  std::printf("%s (period %llu):\n", label,
              static_cast<unsigned long long>(p.period()));
  for (FileIndex f = 0; f < p.file_count(); ++f) {
    const double mean = MeanRetrievalLatency(p, f);
    auto worst = analyzer.WorstCaseLatency(f, 1, ClientModel::kIda);
    const std::uint64_t deadline = kItems[f].deadline_slots;
    std::printf("  %-6s mean %7.2f   worst-case(1 fault) %5llu   deadline "
                "%4llu  %s\n",
                p.files()[f].name.c_str(), mean,
                worst.ok() ? static_cast<unsigned long long>(*worst) : 0,
                static_cast<unsigned long long>(deadline),
                !check ? ""
                : (worst.ok() && *worst <= deadline ? "met" : "VIOLATED"));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("E9 / mean-latency optimization vs worst-case guarantees\n\n");

  // (a) Flat, single speed.
  std::vector<FlatFileSpec> flat_files;
  for (const Item& it : kItems) {
    flat_files.push_back({it.name, it.m, it.m + 1, {}});
  }
  auto flat = BuildFlatProgram(flat_files, FlatLayout::kSpread);
  if (!flat.ok()) return 1;
  Report("(a) flat single-speed", *flat, true);

  // (b) Multi-speed broadcast disks: hot spins 8x, warm 2x, cold 1x.
  auto multi = BuildMultiDiskProgram({
      {8, {flat_files[0]}},
      {2, {flat_files[1]}},
      {1, {flat_files[2]}},
  });
  if (!multi.ok()) {
    std::fprintf(stderr, "%s\n", multi.status().ToString().c_str());
    return 1;
  }
  Report("(b) multi-speed (hot x8, warm x2, cold x1)", multi->program, true);

  // (c) Pinwheel with explicit deadlines (this paper).
  std::vector<GeneralizedFileSpec> rt_files;
  for (const Item& it : kItems) {
    rt_files.push_back(
        {it.name, it.m, {it.deadline_slots, it.deadline_slots}});
  }
  bdisk::pinwheel::CompositeScheduler scheduler;
  auto pin = BuildGeneralizedProgram(rt_files, scheduler);
  if (!pin.ok()) {
    std::fprintf(stderr, "%s\n", pin.status().ToString().c_str());
    return 1;
  }
  Report("(c) pinwheel, per-file deadlines (this paper)", pin->program, true);

  // Shape check: pinwheel meets every deadline with one fault; the others
  // are not required to (and typically the cold file's worst case blows
  // through under (b)).
  DelayAnalyzer analyzer(pin->program);
  bool ok = true;
  for (FileIndex f = 0; f < pin->program.file_count(); ++f) {
    auto worst = analyzer.WorstCaseLatency(f, 1, ClientModel::kIda);
    ok &= worst.ok() && *worst <= kItems[f].deadline_slots;
  }
  benchutil::EmitJson("bench_multidisk", "shape_ok", ok ? 1 : 0, 1);
  std::printf("shape check (pinwheel build meets every 1-fault deadline): "
              "%s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
