// E12 (extension) — client cache management on broadcast disks
// (Acharya et al. [1], cited in the paper's Section 1).
//
// Clients access items Zipf-skewed; the server broadcasts a multi-speed
// program whose frequencies only partly track access probabilities (the
// server serves a *population*, individual clients deviate). A client
// cache hides re-access latency; the broadcast-aware PIX policy (evict the
// item with the smallest access-probability / broadcast-frequency ratio)
// should beat LRU, because re-fetching a rarely-broadcast item is far more
// expensive than re-fetching a hot one.

#include <cstdio>
#include <vector>

#include "bdisk/multi_disk.h"
#include "bench_util.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/zipf.h"
#include "sim/cache.h"
#include "sim/simulation.h"

namespace {

using namespace bdisk;             // NOLINT
using namespace bdisk::broadcast;  // NOLINT
using namespace bdisk::sim;        // NOLINT

// Multi-speed program: the first sixth of the items spin fast, the next
// third at half speed, the rest slow — deliberately *not* aligned with
// every client's access skew.
BroadcastProgram BuildServerProgram(std::size_t files) {
  std::vector<DiskSpec> disks(3);
  disks[0].relative_frequency = 4;
  disks[1].relative_frequency = 2;
  disks[2].relative_frequency = 1;
  for (std::size_t i = 0; i < files; ++i) {
    const std::size_t disk = i < files / 6 ? 0 : (i < files / 2 ? 1 : 2);
    disks[disk].files.push_back(
        {"F" + std::to_string(i), 4, 6, {}});
  }
  // Small --files values can leave a disk empty; drop it.
  std::vector<DiskSpec> populated;
  for (DiskSpec& d : disks) {
    if (!d.files.empty()) populated.push_back(std::move(d));
  }
  auto p = BuildMultiDiskProgram(populated);
  if (!p.ok()) std::exit(1);
  return std::move(p->program);
}

double MeanAccessLatency(const BroadcastProgram& program, std::size_t capacity,
                         CachePolicy policy, const ZipfDistribution& zipf,
                         Rng* rng) {
  NoFaultModel faults;
  Simulator sim(program, &faults, 400000);
  ClientCache cache(capacity, policy);

  // Broadcast frequency of each item: transmissions per period.
  std::vector<double> frequency(program.file_count());
  for (FileIndex f = 0; f < program.file_count(); ++f) {
    frequency[f] = static_cast<double>(program.CountOf(f)) /
                   static_cast<double>(program.period());
  }

  RunningStats latency;
  std::uint64_t now = 0;
  const int kAccesses = 4000;
  for (int k = 0; k < kAccesses; ++k) {
    const auto file =
        static_cast<FileIndex>(zipf.Sample(rng->UniformDouble()));
    // Client think time between accesses.
    now += 1 + rng->Uniform(2 * program.period());
    if (now >= 300000) now = rng->Uniform(1000);  // Wrap within horizon.
    if (cache.Lookup(file)) {
      latency.Add(0.0);
      continue;
    }
    ClientRequest req;
    req.file = file;
    req.start_slot = now;
    auto outcome = sim.Retrieve(req);
    if (!outcome.ok() || !outcome->completed) std::exit(1);
    latency.Add(static_cast<double>(outcome->latency));
    now = outcome->completion_slot;
    cache.Insert(file, zipf.ProbabilityOf(file), frequency[file]);
  }
  return latency.mean();
}

}  // namespace

int main(int argc, char** argv) {
  // Workload shape flags (runtime/flags.h): --files N items on the
  // broadcast, --theta X Zipf skew of the client's accesses.
  const auto files = static_cast<std::size_t>(
      benchutil::UintFlag(argc, argv, "files", 12));
  const double theta = benchutil::DoubleFlag(argc, argv, "theta", 0.95);
  if (files < 2) {
    std::fprintf(stderr, "--files must be >= 2\n");
    return 2;
  }
  const BroadcastProgram program = BuildServerProgram(files);
  const ZipfDistribution zipf(files, theta);

  std::printf("E12 / client cache policies on a multi-speed broadcast "
              "disk\n");
  std::printf("%zu items x 4 blocks (dispersed to 6), period %llu slots, "
              "Zipf(%.2f) access, 4000 accesses per point\n\n",
              files, static_cast<unsigned long long>(program.period()),
              theta);
  std::printf("%-10s %-14s %-14s %-14s\n", "cache", "no cache", "LRU",
              "PIX");
  bool ok = true;
  for (std::size_t capacity : {1u, 2u, 4u, 6u, 8u}) {
    Rng rng_none(1000 + capacity);
    Rng rng_lru(1000 + capacity);
    Rng rng_pix(1000 + capacity);
    const double none =
        MeanAccessLatency(program, 0, CachePolicy::kLru, zipf, &rng_none);
    const double lru =
        MeanAccessLatency(program, capacity, CachePolicy::kLru, zipf,
                          &rng_lru);
    const double pix =
        MeanAccessLatency(program, capacity, CachePolicy::kPix, zipf,
                          &rng_pix);
    std::printf("%-10zu %-14.2f %-14.2f %-14.2f\n", capacity, none, lru,
                pix);
    ok &= lru <= none + 1e-9;
    ok &= pix <= lru * 1.05;  // PIX at least competitive, usually better.
  }
  benchutil::EmitJson("bench_client_cache", "shape_ok", ok ? 1 : 0, 1);
  std::printf("\nshape checks (caching helps; PIX >= LRU within noise): "
              "%s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
