// Shared helpers for the bench executables (header-only: bench/*.cc each
// build into their own binary, so there is no bench library to link).
//
// Every bench emits at least one machine-readable line of the form
//   {"bench":"bench_ida","metric":"disperse_MBps","value":123.4,"threads":1}
// on stdout, so CI runs can be scraped into BENCH_*.json trajectory files
// with `grep '^{"bench"'`. Human-readable tables remain unchanged around
// these lines.

#ifndef BDISK_BENCH_BENCH_UTIL_H_
#define BDISK_BENCH_BENCH_UTIL_H_

#include <cstdio>

#include "runtime/flags.h"

namespace benchutil {

/// `--threads N` / `--threads=N` parsing — the shared runtime-layer parser.
using bdisk::runtime::ThreadsFlag;

/// Emits one JSON metric line: {"bench":...,"metric":...,"value":...,
/// "threads":N}. `%.17g` keeps doubles lossless for trajectory diffing.
inline void EmitJson(const char* bench, const char* metric, double value,
                     unsigned threads) {
  std::printf("{\"bench\":\"%s\",\"metric\":\"%s\",\"value\":%.17g,"
              "\"threads\":%u}\n",
              bench, metric, value, threads);
}

}  // namespace benchutil

#endif  // BDISK_BENCH_BENCH_UTIL_H_
