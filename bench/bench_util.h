// Shared helpers for the bench executables (header-only: bench/*.cc each
// build into their own binary, so there is no bench library to link).
//
// Every bench emits at least one machine-readable line of the form
//   {"bench":"bench_ida","metric":"disperse_MBps","value":123.4,
//    "threads":1,"commit":"abc1234"}
// on stdout, so CI runs can be scraped into BENCH_*.json trajectory files
// with `grep '^{"bench"'`. The commit field is the short git SHA injected
// at configure time (CMakeLists.txt defines BDISK_BUILD_COMMIT), making
// trajectory artifacts attributable across PRs. Human-readable tables
// remain unchanged around these lines.

#ifndef BDISK_BENCH_BENCH_UTIL_H_
#define BDISK_BENCH_BENCH_UTIL_H_

#include <cstdio>

#include "obs/json.h"
#include "runtime/flags.h"

// Injected by CMake (-DBDISK_BUILD_COMMIT="<short sha>"); "unknown" when
// building outside a git checkout.
#ifndef BDISK_BUILD_COMMIT
#define BDISK_BUILD_COMMIT "unknown"
#endif

namespace benchutil {

/// `--threads N` / `--threads=N` parsing — the shared runtime-layer parser.
using bdisk::runtime::DoubleFlag;
using bdisk::runtime::ThreadsFlag;
using bdisk::runtime::UintFlag;

/// Emits one JSON metric line: {"bench":...,"metric":...,"value":...,
/// "threads":N,"commit":...}. Built on the canonical obs::JsonWriter, so
/// doubles stay %.17g-lossless for trajectory diffing and metric names
/// with reserved characters are escaped instead of corrupting the line.
inline void EmitJson(const char* bench, const char* metric, double value,
                     unsigned threads) {
  bdisk::obs::JsonWriter w;
  w.BeginObject();
  w.Key("bench");
  w.String(bench);
  w.Key("metric");
  w.String(metric);
  w.Key("value");
  w.Double(value);
  w.Key("threads");
  w.Uint(threads);
  w.Key("commit");
  w.String(BDISK_BUILD_COMMIT);
  w.EndObject();
  std::printf("%s\n", w.str().c_str());
}

}  // namespace benchutil

#endif  // BDISK_BENCH_BENCH_UTIL_H_
