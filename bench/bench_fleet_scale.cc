// Fleet-scale event-engine bench: 1M clients over a 10k-slot trace on one
// box, inside a 2 GB peak-RSS budget.
//
// The discrete-event engine (sim/event_engine.h) exists to make this run
// routine: per-client state is ~tens of bytes and per-retrieval cost is
// O(transmissions heard), so a million concurrent clients fit where the
// slot-by-slot walk would thrash. The bench
//
//   * generates clients on demand — Zipf file choice + Poisson arrivals,
//     both pure functions of the client index (no materialized request
//     list), so the fleet itself costs no memory;
//   * runs the evented fleet, reports events/sec, mean delay, and peak RSS
//     (VmHWM from /proc/self/status), and FAILS (exit 1) if peak RSS
//     exceeds 2 GB;
//   * cross-checks the engine in-process on a small configuration:
//     RunWorkloadEvented's MetricsToJson must equal RunWorkload's byte for
//     byte before any number is reported;
//   * asserts the ops plane's overhead budget: the fleet is run as three
//     interleaved (obs-off, snapshots-on, tracing-on) triples — the
//     snapshot run records an obs::Timeline at 1-slot granularity, the
//     trace run samples causal spans at 1/1024 with anomaly triggers
//     armed (obs/trace.h) — and FAILS if either enabled side's best time
//     exceeds the best obs-off time by more than 1% (plus a 5 ms absolute
//     floor so sub-second CI smoke configurations aren't gated on timer
//     noise).
//
// Flags: --clients N (1000000), --slots N (10000), --threads N (1),
//        --seed N (42).
//
//   ./bench_fleet_scale --threads 4
//   ./bench_fleet_scale --clients 100000        # CI smoke configuration
//
// The BDISK_BENCH_SLEEP_MS env var injects a sleep into every timed run —
// an intentional slowdown hook that CI's perf-gate self-test uses to prove
// bench_compare actually trips on a regression.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bdisk/flat_builder.h"
#include "bench_util.h"
#include "common/zipf.h"
#include "faults/channel_spec.h"
#include "obs/snapshot.h"
#include "obs/trace.h"
#include "runtime/rng_stream.h"
#include "runtime/thread_pool.h"
#include "sim/arrivals.h"
#include "sim/event_engine.h"
#include "sim/metrics.h"
#include "sim/simulation.h"

namespace {

using namespace bdisk;             // NOLINT
using namespace bdisk::broadcast;  // NOLINT
using namespace bdisk::sim;        // NOLINT

/// Peak resident set (VmHWM) in kB from /proc/self/status; 0 off-Linux.
std::uint64_t PeakRssKb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kb = std::strtoull(line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kb;
}

// A 16-file AIDA program (8-of-16 dispersal, spread layout): period 128,
// realistic block redundancy, and per-file occurrence lists long enough to
// exercise the jump arithmetic.
BroadcastProgram BuildFleetProgram() {
  std::vector<FlatFileSpec> files;
  for (int i = 0; i < 16; ++i) {
    files.push_back({"F" + std::to_string(i), 8, 16, {}});
  }
  auto p = BuildFlatProgram(files, FlatLayout::kSpread);
  if (!p.ok()) {
    std::fprintf(stderr, "program build failed: %s\n",
                 p.status().ToString().c_str());
    std::exit(1);
  }
  return *p;
}

/// Small-configuration byte-identity cross-check of the two engines,
/// in-process: any drift disqualifies the numbers below.
bool EnginesAgreeOnSmallConfig(runtime::ThreadPool* pool) {
  const BroadcastProgram program = BuildFleetProgram();
  auto channel = faults::ParseChannelSpec("bernoulli:p=0.05,seed=7");
  if (!channel.ok()) return false;
  const Simulator simulator(program, **channel, 4096);
  WorkloadConfig config;
  config.requests_per_file = 50;
  config.seed = 1234;
  auto slot = simulator.RunWorkload(config, nullptr);
  auto event = simulator.RunWorkloadEvented(config, pool);
  if (!slot.ok() || !event.ok()) return false;
  return MetricsToJson(*slot) == MetricsToJson(*event);
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned threads = benchutil::ThreadsFlag(argc, argv);
  const std::uint64_t clients =
      benchutil::UintFlag(argc, argv, "clients", 1000000);
  const std::uint64_t slots = benchutil::UintFlag(argc, argv, "slots", 10000);
  const std::uint64_t seed = benchutil::UintFlag(argc, argv, "seed", 42);

  std::unique_ptr<runtime::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<runtime::ThreadPool>(threads);

  if (!EnginesAgreeOnSmallConfig(pool.get())) {
    std::fprintf(stderr,
                 "FAIL: event engine diverged from the slot engine on the "
                 "small cross-check configuration\n");
    return 1;
  }
  std::printf("engine cross-check: event == slot (byte-identical)\n");

  const BroadcastProgram program = BuildFleetProgram();
  auto channel = faults::ParseChannelSpec("bernoulli:p=0.02,seed=5");
  if (!channel.ok()) {
    std::fprintf(stderr, "%s\n", channel.status().ToString().c_str());
    return 1;
  }
  std::vector<faults::FaultType> trace(slots);
  (*channel)->FillFaults(0, slots, trace.data());
  const EventEngine engine(program, trace);

  // Clients: Zipf(0.95)-skewed file choice, Poisson arrivals over the
  // window that leaves every client room to finish (tail = 8 periods).
  const std::uint64_t tail = 8 * program.period();
  if (slots <= tail) {
    std::fprintf(stderr, "--slots must exceed %llu\n",
                 static_cast<unsigned long long>(tail));
    return 1;
  }
  const ZipfDistribution zipf(program.files().size(), 0.95);
  const PoissonArrivals arrivals(slots - tail, seed);
  const auto client_at = [&](std::uint64_t g) {
    EventClient client;
    client.file = static_cast<FileIndex>(
        zipf.Sample(runtime::StreamRng(seed ^ 0x5a5a5a5aULL, g)
                        .UniformDouble()));
    client.start_slot = arrivals.ArrivalSlotOf(g);
    return client;
  };

  std::printf("fleet: %llu clients, %llu slots, %u thread(s), %s\n",
              static_cast<unsigned long long>(clients),
              static_cast<unsigned long long>(slots), threads,
              arrivals.Describe().c_str());

  // The perf-gate self-test hook: CI reruns the bench with this set to
  // prove bench_compare trips on an induced slowdown.
  std::uint64_t sleep_ms = 0;
  if (const char* env = std::getenv("BDISK_BENCH_SLEEP_MS")) {
    sleep_ms = std::strtoull(env, nullptr, 10);
  }

  EventEngineStats stats;
  SimulationMetrics metrics;
  const auto timed_run = [&](bdisk::obs::Timeline* timeline,
                             bdisk::obs::TraceSink* trace) {
    const auto t0 = std::chrono::steady_clock::now();
    metrics = engine.Run(clients, client_at, pool.get(), &stats, timeline,
                         trace);
    if (sleep_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    }
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
        .count();
  };

  // Three interleaved (obs-off, snapshots-on, tracing-on) triples;
  // min-of-runs on each side cancels scheduler noise. The snapshot
  // timeline runs at the finest possible granularity (1 slot) — the worst
  // case for recording cost — and each enabled run gets a fresh timeline
  // / sink, as a streamer would. The trace run is the production flight
  // configuration: 1/1024 sampling with anomaly triggers armed.
  constexpr int kPairs = 3;
  double best_off = 0.0;
  double best_on = 0.0;
  double best_trace = 0.0;
  std::uint64_t traced_spans = 0;
  for (int pair = 0; pair < kPairs; ++pair) {
    const double off = timed_run(nullptr, nullptr);
    if (pair == 0 || off < best_off) best_off = off;
    bdisk::obs::Timeline timeline(1, slots);
    const double on = timed_run(&timeline, nullptr);
    if (pair == 0 || on < best_on) best_on = on;
    bdisk::obs::TraceOptions trace_options;
    trace_options.sample_every = 1024;
    bdisk::obs::TraceSink sink(trace_options);
    const double traced = timed_run(nullptr, &sink);
    if (pair == 0 || traced < best_trace) best_trace = traced;
    traced_spans = sink.recorded_count();
  }
  const double seconds = best_off;

  const double events_per_sec =
      seconds > 0.0 ? static_cast<double>(stats.events) / seconds : 0.0;
  const double mean_delay = metrics.OverallMeanLatency();
  const std::uint64_t peak_kb = PeakRssKb();
  const double peak_mb = static_cast<double>(peak_kb) / 1024.0;

  const double overhead_pct =
      best_off > 0.0 ? 100.0 * (best_on - best_off) / best_off : 0.0;
  const double trace_overhead_pct =
      best_off > 0.0 ? 100.0 * (best_trace - best_off) / best_off : 0.0;
  std::printf("events processed : %llu (%.2fM events/s)\n",
              static_cast<unsigned long long>(stats.events),
              events_per_sec / 1e6);
  std::printf("wall time        : %.2f s (best of %d; snapshots on: "
              "%.2f s, %+.2f%%; tracing 1/1024: %.2f s, %+.2f%%, "
              "%llu spans)\n",
              seconds, kPairs, best_on, overhead_pct, best_trace,
              trace_overhead_pct,
              static_cast<unsigned long long>(traced_spans));
  std::printf("mean delay       : %.1f slots\n", mean_delay);
  std::printf("undecodable rate : %.6f\n", metrics.OverallUndecodableRate());
  std::printf("peak RSS         : %.1f MB\n", peak_mb);

  benchutil::EmitJson("bench_fleet_scale", "events_per_sec", events_per_sec,
                      threads);
  benchutil::EmitJson("bench_fleet_scale", "clients",
                      static_cast<double>(clients), threads);
  benchutil::EmitJson("bench_fleet_scale", "mean_delay_slots", mean_delay,
                      threads);
  benchutil::EmitJson("bench_fleet_scale", "undecodable_rate",
                      metrics.OverallUndecodableRate(), threads);
  benchutil::EmitJson("bench_fleet_scale", "peak_rss_mb", peak_mb, threads);
  benchutil::EmitJson("bench_fleet_scale", "snapshot_overhead_pct",
                      overhead_pct, threads);
  benchutil::EmitJson("bench_fleet_scale", "trace_overhead_pct",
                      trace_overhead_pct, threads);

  // The ops-plane budget: full snapshot recording at 1-slot granularity
  // must cost < 1% wall clock (5 ms absolute floor for sub-second smoke
  // configurations, where a single timer tick exceeds 1%).
  if (best_on > best_off * 1.01 + 0.005) {
    std::fprintf(stderr,
                 "FAIL: snapshot streaming overhead %.2f%% exceeds the 1%% "
                 "budget (off %.3f s, on %.3f s)\n",
                 overhead_pct, best_off, best_on);
    return 1;
  }

  // Same budget for causal tracing at the production 1/1024 sampling
  // rate: the hot path pays one trigger check per client; span replay is
  // paid only for the sampled/anomalous few.
  if (best_trace > best_off * 1.01 + 0.005) {
    std::fprintf(stderr,
                 "FAIL: trace capture overhead %.2f%% exceeds the 1%% "
                 "budget (off %.3f s, traced %.3f s)\n",
                 trace_overhead_pct, best_off, best_trace);
    return 1;
  }

  // The budget that makes million-client fleets routine on one box.
  constexpr double kBudgetMb = 2048.0;
  if (peak_kb == 0) {
    std::printf("peak RSS unavailable on this platform; budget not "
                "enforced\n");
  } else if (peak_mb >= kBudgetMb) {
    std::fprintf(stderr, "FAIL: peak RSS %.1f MB >= %.0f MB budget\n",
                 peak_mb, kBudgetMb);
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
