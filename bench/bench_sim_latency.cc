// E8 — Stochastic extension of Figure 7: simulated retrieval latency and
// deadline-miss rate versus channel error rate, AIDA versus flat, under
// independent (Bernoulli, the paper's channel model) and bursty
// (Gilbert-Elliott) losses.

#include <cstdio>
#include <memory>
#include <vector>

#include "bdisk/flat_builder.h"
#include "bench_util.h"
#include "runtime/thread_pool.h"
#include "sim/simulation.h"

namespace {

using namespace bdisk;             // NOLINT
using namespace bdisk::broadcast;  // NOLINT
using namespace bdisk::sim;       // NOLINT

BroadcastProgram Build(bool ida) {
  // 6 files x 8 blocks, spread layout, 16-slot deadline headroom over the
  // 48-slot period... deadline = 2 periods.
  std::vector<FlatFileSpec> files;
  for (int i = 0; i < 6; ++i) {
    files.push_back({"F" + std::to_string(i), 8, ida ? 16u : 8u, {96}});
  }
  auto p = BuildFlatProgram(files, FlatLayout::kSpread);
  if (!p.ok()) std::exit(1);
  return *p;
}

struct Row {
  double mean_latency = 0.0;
  double max_latency = 0.0;
  double miss_rate = 0.0;
};

bdisk::runtime::ThreadPool* g_pool = nullptr;

Row Run(const BroadcastProgram& p, FaultModel* faults, ClientModel model) {
  Simulator sim(p, faults, 200000);
  WorkloadConfig config;
  config.requests_per_file = 2000;
  config.model = model;
  config.seed = 99;
  auto metrics = sim.RunWorkload(config, g_pool);
  if (!metrics.ok()) {
    std::fprintf(stderr, "workload failed: %s\n",
                 metrics.status().ToString().c_str());
    std::exit(1);
  }
  return Row{metrics->OverallMeanLatency(), metrics->OverallMaxLatency(),
             metrics->OverallMissRate()};
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned threads = benchutil::ThreadsFlag(argc, argv);
  std::unique_ptr<bdisk::runtime::ThreadPool> pool;
  if (threads > 1) {
    pool = std::make_unique<bdisk::runtime::ThreadPool>(threads);
    g_pool = pool.get();
  }
  const BroadcastProgram ida = Build(true);
  const BroadcastProgram flat = Build(false);
  std::printf("E8 / simulated latency and miss rate vs channel error rate\n");
  std::printf("6 files x 8 blocks, period %llu, deadline 96 slots, "
              "12000 retrievals per point, %u thread(s)\n\n",
              static_cast<unsigned long long>(ida.period()), threads);

  std::printf("--- independent losses (Bernoulli; the paper's channel "
              "model) ---\n");
  std::printf("%-8s %-28s %-28s\n", "p_loss", "AIDA mean/max/miss",
              "flat mean/max/miss");
  bool ok = true;
  Row last_aida;
  for (double p_loss : {0.0, 0.01, 0.05, 0.1, 0.2, 0.4}) {
    BernoulliFaultModel f1(p_loss, 4242);
    const Row a = Run(ida, &f1, ClientModel::kIda);
    BernoulliFaultModel f2(p_loss, 4242);
    const Row b = Run(flat, &f2, ClientModel::kFlat);
    std::printf("%-8.2f %8.1f / %6.0f / %-7.4f %8.1f / %6.0f / %-7.4f\n",
                p_loss, a.mean_latency, a.max_latency, a.miss_rate,
                b.mean_latency, b.max_latency, b.miss_rate);
    // Shape: AIDA never loses on mean latency or miss rate.
    if (p_loss > 0.0) {
      ok &= a.mean_latency <= b.mean_latency + 1e-9;
      ok &= a.miss_rate <= b.miss_rate + 1e-9;
    }
    last_aida = a;
  }
  benchutil::EmitJson("bench_sim_latency", "aida_mean_latency_40pct_loss",
                      last_aida.mean_latency, threads);
  benchutil::EmitJson("bench_sim_latency", "aida_miss_rate_40pct_loss",
                      last_aida.miss_rate, threads);

  std::printf("\n--- bursty losses (Gilbert-Elliott, mean burst 5 slots) "
              "---\n");
  std::printf("%-8s %-28s %-28s\n", "p_loss", "AIDA mean/max/miss",
              "flat mean/max/miss");
  for (double p_loss : {0.01, 0.05, 0.1, 0.2}) {
    GilbertElliottFaultModel::Params params;
    params.p_bad_to_good = 0.2;  // Mean burst length 5.
    // Choose p_good_to_bad for the target stationary rate:
    // rate = gb / (gb + bg) => gb = rate * bg / (1 - rate).
    params.p_good_to_bad = p_loss * params.p_bad_to_good / (1.0 - p_loss);
    GilbertElliottFaultModel f1(params, 4242);
    const Row a = Run(ida, &f1, ClientModel::kIda);
    GilbertElliottFaultModel f2(params, 4242);
    const Row b = Run(flat, &f2, ClientModel::kFlat);
    std::printf("%-8.2f %8.1f / %6.0f / %-7.4f %8.1f / %6.0f / %-7.4f\n",
                p_loss, a.mean_latency, a.max_latency, a.miss_rate,
                b.mean_latency, b.max_latency, b.miss_rate);
    ok &= a.mean_latency <= b.mean_latency + 1e-9;
  }

  benchutil::EmitJson("bench_sim_latency", "shape_ok", ok ? 1 : 0, threads);
  std::printf("\nshape checks (AIDA <= flat on mean latency and miss "
              "rate at every error rate): %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
