// E14 (extension) — absolute temporal consistency (the paper's AWACS
// motivation): completion rate, data age, and restart cost as the update
// interval sweeps from generous to starvation.
//
// A file's snapshot changes every U slots; IDA blocks of different
// snapshots cannot be combined, so clients straddling an update restart.
// The feasibility cliff sits where U falls below the worst-case retrieval
// time — exactly the paper's point that the broadcast program must
// *guarantee* retrieval within the temporal-consistency bound, not merely
// achieve it on average.

#include <cstdio>

#include "bdisk/delay_analysis.h"
#include "bdisk/flat_builder.h"
#include "bench_util.h"
#include "common/stats.h"
#include "sim/versioned.h"

namespace {

using namespace bdisk;             // NOLINT
using namespace bdisk::broadcast;  // NOLINT
using namespace bdisk::sim;        // NOLINT

}  // namespace

int main() {
  std::vector<FlatFileSpec> files{
      {"track", 4, 8, {}},   // The updated item under study.
      {"other", 8, 10, {}},  // Background load.
  };
  auto program = BuildFlatProgram(files, FlatLayout::kSpread);
  if (!program.ok()) return 1;

  DelayAnalyzer analyzer(*program);
  auto worst = analyzer.WorstCaseLatency(0, 0, ClientModel::kIda);
  if (!worst.ok()) return 1;

  std::printf("E14 / temporal consistency: update interval sweep\n");
  std::printf("file 'track': 4 blocks (dispersed to 8), period %llu, "
              "fault-free worst-case retrieval %llu slots\n\n",
              static_cast<unsigned long long>(program->period()),
              static_cast<unsigned long long>(*worst));
  std::printf("%-10s %-12s %-10s %-12s %-10s\n", "interval",
              "completed", "restarts", "mean age", "max age");

  bool ok = true;
  for (std::uint64_t interval : {0ull, 96ull, 48ull, 24ull, 12ull, 6ull}) {
    VersionedServerOptions options;
    options.block_size = 32;
    options.update_interval_slots = {interval, 0};
    auto server = VersionedBroadcastServer::Create(*program, options);
    if (!server.ok()) return 1;

    NoFaultModel faults;
    RunningStats age;
    std::uint64_t restarts = 0;
    int completed = 0;
    const int kTrials = 200;
    for (int t = 0; t < kTrials; ++t) {
      const std::uint64_t start =
          (static_cast<std::uint64_t>(t) * 37) % (4 * program->period());
      auto session =
          RunVersionedRetrieval(*server, &faults, 0, start, 20000);
      if (!session.ok()) return 1;
      if (session->completed) {
        ++completed;
        age.Add(static_cast<double>(session->data_age));
        restarts += session->restarts;
      }
    }
    std::printf("%-10llu %3d/%-8d %-10llu %-12.1f %-10.0f\n",
                static_cast<unsigned long long>(interval), completed,
                kTrials, static_cast<unsigned long long>(restarts),
                age.mean(), age.count() ? age.max() : 0.0);
    // Shape: intervals at or above the worst-case retrieval time always
    // complete; intervals below the error-free collection time starve.
    if (interval == 0 || interval >= *worst) ok &= completed == kTrials;
    if (interval > 0 && interval < 8) ok &= completed == 0;
  }
  std::printf("\nreading: interval 0 = static file. Once the interval "
              "drops below the retrieval time, clients restart forever — "
              "the temporal-consistency feasibility constraint the "
              "paper's deadline guarantees protect against.\n");
  benchutil::EmitJson("bench_temporal", "shape_ok", ok ? 1 : 0, 1);
  std::printf("\nshape checks (always complete when interval >= worst-case "
              "retrieval; starve when below collection time): %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
