// E7 — IDA dispersal / reconstruction cost (google-benchmark).
//
// The paper's Section 5 notes the dispersal/reconstruction operation is
// O(m^2) for a trivial IDA implementation (and its SETH VLSI chip ran at
// ~1 MB/s in 1990 hardware). These timings characterize our software
// GF(2^8) implementation: throughput versus the dispersal level m at fixed
// file size, and versus block size at fixed m.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_gbench.h"
#include "common/random.h"
#include "gf/gf_dispatch.h"
#include "ida/dispersal.h"

namespace {

using bdisk::Rng;
using bdisk::ida::Block;
using bdisk::ida::Dispersal;

std::vector<std::uint8_t> RandomFile(std::size_t size) {
  Rng rng(size * 2654435761ULL + 1);
  std::vector<std::uint8_t> data(size);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.Uniform(256));
  return data;
}

// Disperse a fixed 64 KiB file at varying dispersal level m (n = 2m).
void BM_DisperseVsM(benchmark::State& state) {
  const std::uint32_t m = static_cast<std::uint32_t>(state.range(0));
  const std::size_t file_size = 64 * 1024;
  const std::size_t block_size = file_size / m;
  auto engine = Dispersal::Create(m, 2 * m, block_size);
  if (!engine.ok()) {
    state.SkipWithError("engine creation failed");
    return;
  }
  const auto file = RandomFile(m * block_size);
  for (auto _ : state) {
    auto blocks = engine->Disperse(0, file);
    benchmark::DoNotOptimize(blocks);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(file.size()));
  state.counters["m"] = m;
}
BENCHMARK(BM_DisperseVsM)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

// Reconstruct from the parity blocks (worst case: no systematic shortcut).
void BM_ReconstructVsM(benchmark::State& state) {
  const std::uint32_t m = static_cast<std::uint32_t>(state.range(0));
  const std::size_t file_size = 64 * 1024;
  const std::size_t block_size = file_size / m;
  auto engine = Dispersal::Create(m, 2 * m, block_size);
  if (!engine.ok()) {
    state.SkipWithError("engine creation failed");
    return;
  }
  const auto file = RandomFile(m * block_size);
  auto blocks = engine->Disperse(0, file);
  if (!blocks.ok()) {
    state.SkipWithError("dispersal failed");
    return;
  }
  // Use the last m blocks (all parity).
  std::vector<Block> parity(blocks->begin() + m, blocks->end());
  for (auto _ : state) {
    auto rec = engine->Reconstruct(parity);
    benchmark::DoNotOptimize(rec);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(file.size()));
  state.counters["m"] = m;
}
BENCHMARK(BM_ReconstructVsM)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

// Fixed m = 8, varying block size: the cost per byte is flat (the O(m^2)
// matrix work amortizes over the block).
void BM_DisperseVsBlockSize(benchmark::State& state) {
  const std::size_t block_size = static_cast<std::size_t>(state.range(0));
  const std::uint32_t m = 8;
  auto engine = Dispersal::Create(m, 16, block_size);
  if (!engine.ok()) {
    state.SkipWithError("engine creation failed");
    return;
  }
  const auto file = RandomFile(m * block_size);
  for (auto _ : state) {
    auto blocks = engine->Disperse(0, file);
    benchmark::DoNotOptimize(blocks);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(file.size()));
  state.counters["block_bytes"] = static_cast<double>(block_size);
}
BENCHMARK(BM_DisperseVsBlockSize)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384);

// First-time reconstruction pays a Gauss-Jordan inversion; repeated
// subsets hit the inverse cache. Measure the cached path separately from
// the cold path.
void BM_ReconstructCachedInverse(benchmark::State& state) {
  const std::uint32_t m = 16;
  auto engine = Dispersal::Create(m, 32, 1024);
  if (!engine.ok()) {
    state.SkipWithError("engine creation failed");
    return;
  }
  const auto file = RandomFile(m * 1024);
  auto blocks = engine->Disperse(0, file);
  std::vector<Block> subset(blocks->begin() + 8, blocks->begin() + 8 + m);
  // Warm the cache.
  benchmark::DoNotOptimize(engine->Reconstruct(subset));
  for (auto _ : state) {
    auto rec = engine->Reconstruct(subset);
    benchmark::DoNotOptimize(rec);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(file.size()));
}
BENCHMARK(BM_ReconstructCachedInverse);

void BM_GaussJordanInversion(benchmark::State& state) {
  const std::uint32_t m = static_cast<std::uint32_t>(state.range(0));
  auto engine = Dispersal::Create(m, 2 * m, 16);
  const auto file = RandomFile(m * 16);
  auto blocks = engine->Disperse(0, file);
  std::vector<Block> parity(blocks->begin() + m, blocks->end());
  for (auto _ : state) {
    // Fresh engine each round so the inverse is recomputed (cold path).
    auto cold = Dispersal::Create(m, 2 * m, 16);
    auto rec = cold->Reconstruct(parity);
    benchmark::DoNotOptimize(rec);
  }
  state.counters["m"] = m;
}
BENCHMARK(BM_GaussJordanInversion)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  // The codec follows gf::Dispatch (BDISK_GF_IMPL overrides the CPU probe),
  // so tag every metric with the implementation that actually ran — one
  // trajectory file can then hold scalar and SIMD datapoints side by side.
  const std::string prefix =
      std::string(bdisk::gf::Dispatch::ActiveName()) + ":";
  return benchutil::RunGoogleBenchmarks(argc, argv, "bench_ida", prefix);
}
