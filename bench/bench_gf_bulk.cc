// GF(2^8) data-plane kernels: every implementation the host supports vs.
// the per-byte log/exp baseline (google-benchmark).
//
// The IDA inner loop is dst[k] ^= coeff * src[k] over a whole block column.
// The baseline pays two log-table lookups and an exp lookup per byte
// (GF256::Mul); the generic bulk kernel pays one lookup into a precomputed
// 256-entry product row plus one XOR; the SIMD kernels (SSSE3/AVX2/NEON via
// gf::Dispatch) multiply 16-32 bytes per nibble-shuffle pair. Benchmarks
// are registered per supported implementation and sweep block sizes from
// L1-resident (256 B) to streaming (1 MiB), one JSON line each, so the
// trajectory shows both cache regimes.
//
// The fused-vs-unfused pair measures GFBulk::MatrixMulAccumulate against
// the equivalent n * m independent MulRowAccumulate calls on the dispersal
// geometry of the acceptance bar (n=8 outputs, m=5 inputs, 64 KiB blocks).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bench_gbench.h"
#include "common/random.h"
#include "gf/gf256.h"
#include "gf/gf_dispatch.h"
#include "gf/gf_kernels.h"
#include "gf/matrix.h"

namespace {

using bdisk::Rng;
using bdisk::gf::Dispatch;
using bdisk::gf::GF256;
using bdisk::gf::Matrix;
using bdisk::gf::internal::KernelTable;

std::vector<std::uint8_t> RandomBytes(std::size_t n) {
  Rng rng(n * 0x9E3779B97F4A7C15ULL + 3);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.Uniform(256));
  return out;
}

constexpr std::uint8_t kCoeff = 0x8E;  // A generic non-trivial coefficient.

// L1-resident through streaming block sizes.
constexpr std::int64_t kBlockSizes[] = {256, 4096, 65536, 1 << 20};

// Baseline: the seed's per-byte log/exp multiply-accumulate loop.
void BM_PerByteLogExpAccumulate(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto src = RandomBytes(n);
  std::vector<std::uint8_t> dst(n, 0);
  for (auto _ : state) {
    for (std::size_t k = 0; k < n; ++k) {
      dst[k] ^= GF256::Mul(kCoeff, src[k]);
    }
    benchmark::DoNotOptimize(dst.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PerByteLogExpAccumulate)
    ->Arg(256)
    ->Arg(4096)
    ->Arg(65536)
    ->Arg(1 << 20);

// One registered benchmark per (implementation, kernel); the implementation
// name is part of the benchmark name, so every JSON line identifies its
// datapoint (e.g. "BM_MulRowAccumulate<avx2>/65536:bytes_per_second").
void RunMulRowAccumulate(benchmark::State& state, const KernelTable* k) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto src = RandomBytes(n);
  std::vector<std::uint8_t> dst(n, 0);
  for (auto _ : state) {
    k->mul_row_accumulate(dst.data(), src.data(), kCoeff, n);
    benchmark::DoNotOptimize(dst.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void RunXorRow(benchmark::State& state, const KernelTable* k) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto src = RandomBytes(n);
  std::vector<std::uint8_t> dst(n, 0);
  for (auto _ : state) {
    k->xor_row(dst.data(), src.data(), n);
    benchmark::DoNotOptimize(dst.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

// The acceptance-bar dispersal geometry: 8 output blocks over 5 inputs,
// 64 KiB each, SystematicCauchy coefficients (3 identity-heavy rows would
// understate the work, so all rows participate: 5 identity + 3 Cauchy).
struct MatrixBenchData {
  static constexpr std::size_t kNDst = 8;
  static constexpr std::size_t kNSrc = 5;
  static constexpr std::size_t kBlock = 64 * 1024;

  MatrixBenchData()
      : matrix(*Matrix::SystematicCauchy(kNDst, kNSrc)),
        src_bytes(RandomBytes(kNSrc * kBlock)),
        dst_bytes(kNDst * kBlock, 0) {
    for (std::size_t j = 0; j < kNSrc; ++j) {
      srcs.push_back(src_bytes.data() + j * kBlock);
    }
    for (std::size_t i = 0; i < kNDst; ++i) {
      dsts.push_back(dst_bytes.data() + i * kBlock);
      coeffs.push_back(matrix.RowData(i));
    }
  }

  Matrix matrix;
  std::vector<std::uint8_t> src_bytes;
  std::vector<std::uint8_t> dst_bytes;
  std::vector<const std::uint8_t*> srcs;
  std::vector<std::uint8_t*> dsts;
  std::vector<const std::uint8_t*> coeffs;
};

std::int64_t MatrixBytesPerIteration() {
  // Useful traffic: each source read once, each destination written once.
  return static_cast<std::int64_t>(
      (MatrixBenchData::kNDst + MatrixBenchData::kNSrc) *
      MatrixBenchData::kBlock);
}

void RunMatrixFused(benchmark::State& state, const KernelTable* k) {
  MatrixBenchData d;
  for (auto _ : state) {
    k->matrix_mul_accumulate(d.dsts.data(), d.srcs.data(), d.coeffs.data(),
                             MatrixBenchData::kNDst, MatrixBenchData::kNSrc,
                             MatrixBenchData::kBlock);
    benchmark::DoNotOptimize(d.dst_bytes.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          MatrixBytesPerIteration());
}

void RunMatrixUnfused(benchmark::State& state, const KernelTable* k) {
  MatrixBenchData d;
  for (auto _ : state) {
    for (std::size_t i = 0; i < MatrixBenchData::kNDst; ++i) {
      for (std::size_t j = 0; j < MatrixBenchData::kNSrc; ++j) {
        k->mul_row_accumulate(d.dsts[i], d.srcs[j], d.coeffs[i][j],
                              MatrixBenchData::kBlock);
      }
    }
    benchmark::DoNotOptimize(d.dst_bytes.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          MatrixBytesPerIteration());
}

void RegisterPerImplementationBenchmarks() {
  for (const KernelTable* k : Dispatch::Supported()) {
    const std::string tag = std::string("<") + k->name + ">";
    benchmark::RegisterBenchmark(
        ("BM_MulRowAccumulate" + tag).c_str(),
        [k](benchmark::State& state) { RunMulRowAccumulate(state, k); })
        ->Arg(kBlockSizes[0])
        ->Arg(kBlockSizes[1])
        ->Arg(kBlockSizes[2])
        ->Arg(kBlockSizes[3]);
    benchmark::RegisterBenchmark(
        ("BM_XorRow" + tag).c_str(),
        [k](benchmark::State& state) { RunXorRow(state, k); })
        ->Arg(kBlockSizes[1])
        ->Arg(kBlockSizes[3]);
    benchmark::RegisterBenchmark(
        ("BM_MatrixMulAccumulateFused" + tag).c_str(),
        [k](benchmark::State& state) { RunMatrixFused(state, k); });
    benchmark::RegisterBenchmark(
        ("BM_MatrixMulAccumulateUnfused" + tag).c_str(),
        [k](benchmark::State& state) { RunMatrixUnfused(state, k); });
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterPerImplementationBenchmarks();
  return benchutil::RunGoogleBenchmarks(argc, argv, "bench_gf_bulk");
}
