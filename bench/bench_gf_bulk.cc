// Bulk GF(2^8) kernel vs. the per-byte log/exp baseline (google-benchmark).
//
// The IDA inner loop is dst[k] ^= coeff * src[k] over a whole block column.
// The baseline pays two log-table lookups and an exp lookup per byte
// (GF256::Mul); the bulk kernel (GFBulk::MulRowAccumulate) pays one lookup
// into a precomputed 256-entry product row plus one XOR. The acceptance bar
// for the data-plane rewire is >= 3x bytes/sec on the multiply-accumulate
// kernel; run both BM_ variants at the same size to compare.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "bench_gbench.h"
#include "common/random.h"
#include "gf/gf256.h"
#include "gf/gf_bulk.h"

namespace {

using bdisk::Rng;
using bdisk::gf::GF256;
using bdisk::gf::GFBulk;

std::vector<std::uint8_t> RandomBytes(std::size_t n) {
  Rng rng(n * 0x9E3779B97F4A7C15ULL + 3);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.Uniform(256));
  return out;
}

constexpr std::uint8_t kCoeff = 0x8E;  // A generic non-trivial coefficient.

// Baseline: the seed's per-byte log/exp multiply-accumulate loop.
void BM_PerByteLogExpAccumulate(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto src = RandomBytes(n);
  std::vector<std::uint8_t> dst(n, 0);
  for (auto _ : state) {
    for (std::size_t k = 0; k < n; ++k) {
      dst[k] ^= GF256::Mul(kCoeff, src[k]);
    }
    benchmark::DoNotOptimize(dst.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PerByteLogExpAccumulate)
    ->Arg(1 << 10)
    ->Arg(1 << 12)
    ->Arg(1 << 14)
    ->Arg(1 << 16)
    ->Arg(1 << 20);

// The bulk table-driven kernel that now backs ida::Dispersal.
void BM_BulkMulRowAccumulate(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto src = RandomBytes(n);
  std::vector<std::uint8_t> dst(n, 0);
  for (auto _ : state) {
    GFBulk::MulRowAccumulate(dst.data(), src.data(), kCoeff, n);
    benchmark::DoNotOptimize(dst.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BulkMulRowAccumulate)
    ->Arg(1 << 10)
    ->Arg(1 << 12)
    ->Arg(1 << 14)
    ->Arg(1 << 16)
    ->Arg(1 << 20);

// coeff == 1 degenerates to a word-wide XOR — the systematic-row fast path.
void BM_BulkXorRow(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto src = RandomBytes(n);
  std::vector<std::uint8_t> dst(n, 0);
  for (auto _ : state) {
    GFBulk::XorRow(dst.data(), src.data(), n);
    benchmark::DoNotOptimize(dst.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BulkXorRow)->Arg(1 << 14)->Arg(1 << 20);

}  // namespace

int main(int argc, char** argv) {
  return benchutil::RunGoogleBenchmarks(argc, argv, "bench_gf_bulk");
}
