// E10 (extension) — ablation of the nice-conjunct conversion strategies.
//
// DESIGN.md calls out the optimizer's candidate portfolio (TR1, TR2,
// R-chain, single) as a design choice; this bench quantifies what each
// strategy contributes: over random generalized broadcast conditions,
// the mean and max density overhead (best density / lower bound) when
// restricted to each strategy alone versus the full portfolio, plus how
// often each strategy is the portfolio's winner.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "algebra/optimizer.h"
#include "bench_util.h"
#include "common/random.h"
#include "common/stats.h"

namespace {

using namespace bdisk;           // NOLINT
using namespace bdisk::algebra;  // NOLINT

BroadcastCondition RandomCondition(Rng* rng) {
  BroadcastCondition bc;
  bc.m = 1 + rng->Uniform(8);
  const std::uint64_t r = rng->Uniform(4);
  // d0 between tight (m) and loose (8m).
  std::uint64_t d = bc.m + rng->Uniform(7 * bc.m + 1);
  bc.d.push_back(std::max(d, bc.m));
  for (std::uint64_t j = 1; j <= r; ++j) {
    d += rng->Uniform(2 * bc.m + 2);
    bc.d.push_back(std::max(d, bc.m + j));
  }
  return bc;
}

}  // namespace

int main() {
  Rng rng(31337);
  const int kTrials = 400;

  std::map<std::string, RunningStats> overhead;  // density / lower bound.
  std::map<std::string, int> available;
  std::map<std::string, int> wins;
  RunningStats full_overhead;

  int generated = 0;
  for (int t = 0; t < kTrials; ++t) {
    const BroadcastCondition bc = RandomCondition(&rng);
    if (!bc.Validate().ok()) continue;
    auto conv = NiceConverter::Convert(bc);
    if (!conv.ok()) continue;
    ++generated;
    full_overhead.Add(conv->OverheadRatio());
    ++wins[conv->best().strategy];
    // Per-strategy best.
    std::map<std::string, double> best_by_strategy;
    for (const ConversionCandidate& c : conv->candidates) {
      auto [it, inserted] =
          best_by_strategy.emplace(c.strategy, c.density());
      if (!inserted && c.density() < it->second) it->second = c.density();
    }
    for (const auto& [strategy, density] : best_by_strategy) {
      overhead[strategy].Add(density / conv->density_lower_bound);
      ++available[strategy];
    }
  }

  std::printf("E10 / conversion-strategy ablation over %d random "
              "generalized conditions\n\n",
              generated);
  std::printf("%-10s %-10s %-12s %-12s %-10s\n", "strategy", "avail.",
              "mean ovh", "max ovh", "wins");
  for (const auto& [strategy, stats] : overhead) {
    std::printf("%-10s %-10d %-12.4f %-12.4f %-10d\n", strategy.c_str(),
                available[strategy], stats.mean(), stats.max(),
                wins.count(strategy) != 0 ? wins[strategy] : 0);
  }
  std::printf("%-10s %-10d %-12.4f %-12.4f %-10s\n", "portfolio", generated,
              full_overhead.mean(), full_overhead.max(), "-");

  // Shape check: the portfolio is never worse than any single strategy
  // (it contains them), and its mean overhead is small.
  const bool ok = full_overhead.mean() < 1.25;
  std::printf("\nreading: overhead = chosen density / density lower bound "
              "(1.0 = provably optimal). The portfolio dominates every "
              "individual strategy by construction; 'wins' counts where a "
              "strategy supplied the selected conjunct.\n");
  benchutil::EmitJson("bench_conversion_ablation", "portfolio_mean_overhead",
                      full_overhead.mean(), 1);
  benchutil::EmitJson("bench_conversion_ablation", "shape_ok", ok ? 1 : 0, 1);
  std::printf("\nshape check (portfolio mean overhead < 1.25): %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
