// E13 — static vs adaptive broadcast programs under demand drift.
//
// A Zipf-skewed client population requests files over a one-way broadcast;
// halfway through the run the popularity ranking reverses (yesterday's
// cold files are today's hot ones). The static server keeps the program it
// optimized for the original demand; the adaptive server closes the loop
// (src/adaptive/): decayed demand estimation per interval, square-root-
// rule re-optimization scored with the exact delay analyses, and hot swaps
// at period boundaries. Identical request trace, identical channel-fault
// realization — the only difference is adaptation.
//
// The shape assertion (also enforced ctest-side by tests/adaptive_test.cc)
// is the subsystem's reason to exist: adaptive mean retrieval delay must
// beat static under the flip.

#include <cstdio>
#include <memory>
#include <vector>

#include "adaptive/adaptive_loop.h"
#include "bench_util.h"
#include "runtime/thread_pool.h"

namespace {

using namespace bdisk;             // NOLINT
using namespace bdisk::adaptive;   // NOLINT
using namespace bdisk::broadcast;  // NOLINT

std::vector<FlatFileSpec> Population(std::size_t files) {
  std::vector<FlatFileSpec> population;
  for (std::size_t i = 0; i < files; ++i) {
    // Mixed sizes: a third bulky, the rest small.
    const std::uint32_t m = i % 3 == 2 ? 6 : 3;
    population.push_back(
        {"F" + std::to_string(i), m, m + 2, {}});
  }
  return population;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned threads = benchutil::ThreadsFlag(argc, argv);
  const auto files = static_cast<std::size_t>(
      benchutil::UintFlag(argc, argv, "files", 12));
  const double theta = benchutil::DoubleFlag(argc, argv, "theta", 1.1);
  std::unique_ptr<runtime::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<runtime::ThreadPool>(threads);

  DriftingZipfWorkload workload;
  workload.requests = 30000;
  workload.theta = theta;
  workload.arrival_horizon = 200000;
  workload.flip_slot = 100000;
  workload.seed = 2024;
  const std::uint64_t interval_slots = 10000;

  std::printf("E13 / static vs adaptive broadcast program under demand "
              "drift\n");
  std::printf("%zu files, Zipf(%.2f) demand reversing at slot %llu, "
              "%llu requests over %llu slots, adaptation interval %llu, "
              "2%% loss, %u thread(s)\n\n",
              files, theta,
              static_cast<unsigned long long>(workload.flip_slot),
              static_cast<unsigned long long>(workload.requests),
              static_cast<unsigned long long>(workload.arrival_horizon),
              static_cast<unsigned long long>(interval_slots), threads);

  auto result = RunAdaptiveExperiment(Population(files), workload,
                                      interval_slots, {},
                                      /*loss_probability=*/0.02,
                                      /*fault_seed=*/1337, pool.get());
  if (!result.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  const double static_mean = result->static_metrics.OverallMeanLatency();
  const double adaptive_mean =
      result->adaptive_metrics.OverallMeanLatency();
  const double improvement =
      100.0 * (static_mean - adaptive_mean) / static_mean;

  std::printf("%-10s %14s %14s %10s\n", "timeline", "mean delay", "max "
              "delay", "miss rate");
  std::printf("%-10s %14.1f %14.0f %10.4f\n", "static", static_mean,
              result->static_metrics.OverallMaxLatency(),
              result->static_metrics.OverallMissRate());
  std::printf("%-10s %14.1f %14.0f %10.4f\n", "adaptive", adaptive_mean,
              result->adaptive_metrics.OverallMaxLatency(),
              result->adaptive_metrics.OverallMissRate());
  std::printf("\nhot swaps: %zu\n", result->swaps);
  for (std::size_t e = 1; e < result->schedule.epoch_count(); ++e) {
    const auto& epoch = result->schedule.epochs()[e];
    std::printf("  epoch %zu from slot %llu (period %llu)\n", e,
                static_cast<unsigned long long>(epoch.start_slot),
                static_cast<unsigned long long>(epoch.program.period()));
  }

  bool ok = true;
  ok &= result->swaps >= 1;
  ok &= adaptive_mean < static_mean;

  benchutil::EmitJson("bench_adaptive", "static_mean_delay_slots",
                      static_mean, threads);
  benchutil::EmitJson("bench_adaptive", "adaptive_mean_delay_slots",
                      adaptive_mean, threads);
  benchutil::EmitJson("bench_adaptive", "improvement_pct", improvement,
                      threads);
  benchutil::EmitJson("bench_adaptive", "hot_swaps",
                      static_cast<double>(result->swaps), threads);
  benchutil::EmitJson("bench_adaptive", "shape_ok", ok ? 1 : 0, threads);
  std::printf("\nshape checks (>= 1 swap; adaptive mean < static mean "
              "under the flip): %s  (improvement %.1f%%)\n",
              ok ? "PASS" : "FAIL", improvement);
  return ok ? 0 : 1;
}
