// E3 — Equations (1) and (2): sufficient bandwidth for real-time
// fault-tolerant broadcast disks.
//
// The paper: B = ceil((10/7) * sum (m_i + r_i) / T_i) suffices (at most 43%
// above the trivial lower bound). This bench sweeps random workloads and
// reports, per workload: the lower bound, the Eq. (2) sufficient bandwidth,
// and the *minimal* bandwidth at which this library's scheduler portfolio
// actually produces a verified program (usually well below the 10/7 bound).

#include <cstdio>
#include <vector>

#include "bdisk/bandwidth.h"
#include "bench_util.h"
#include "common/random.h"
#include "common/stats.h"
#include "pinwheel/composite_scheduler.h"

namespace {

using bdisk::Rng;
using bdisk::RunningStats;
using bdisk::broadcast::BandwidthPlanner;
using bdisk::broadcast::FileSpec;

std::vector<FileSpec> RandomWorkload(Rng* rng, std::size_t n_files) {
  std::vector<FileSpec> files;
  for (std::size_t i = 0; i < n_files; ++i) {
    FileSpec f;
    f.name = "f" + std::to_string(i);
    f.size_blocks = 1 + rng->Uniform(16);
    f.latency_seconds = 0.25 * static_cast<double>(1 + rng->Uniform(16));
    f.fault_tolerance = rng->Uniform(3);
    files.push_back(std::move(f));
  }
  return files;
}

}  // namespace

int main() {
  std::printf("E3 / Equations (1)-(2): bandwidth bounds vs achieved\n\n");
  Rng rng(2024);
  bdisk::pinwheel::CompositeScheduler scheduler;

  std::printf("%-5s %-7s %-12s %-12s %-12s %-10s %-10s\n", "case", "files",
              "lower", "Eq.(2) B", "achieved B", "Eq2/low", "ach/low");
  RunningStats eq2_ratio;
  RunningStats achieved_ratio;
  bool ok = true;
  const int kCases = 20;
  for (int c = 0; c < kCases; ++c) {
    const std::size_t n_files = 2 + rng.Uniform(6);
    const auto files = RandomWorkload(&rng, n_files);
    auto lower = BandwidthPlanner::LowerBound(files);
    auto sufficient = BandwidthPlanner::SufficientBandwidth(files);
    if (!lower.ok() || !sufficient.ok()) return 1;
    auto minimal = BandwidthPlanner::FindMinimalBandwidth(files, scheduler);
    if (!minimal.ok()) {
      std::fprintf(stderr, "case %d: %s\n", c,
                   minimal.status().ToString().c_str());
      return 1;
    }
    const double r_eq2 = static_cast<double>(*sufficient) / *lower;
    const double r_ach = static_cast<double>(minimal->bandwidth) / *lower;
    eq2_ratio.Add(r_eq2);
    achieved_ratio.Add(r_ach);
    // The paper's claim: Eq. (2) bandwidth is sufficient, i.e. the achieved
    // minimal bandwidth never exceeds it.
    ok &= minimal->bandwidth <= *sufficient;
    std::printf("%-5d %-7zu %-12.2f %-12llu %-12llu %-10.3f %-10.3f\n", c,
                n_files, *lower,
                static_cast<unsigned long long>(*sufficient),
                static_cast<unsigned long long>(minimal->bandwidth), r_eq2,
                r_ach);
  }
  std::printf("\nEq.(2)/lower: mean %.3f max %.3f "
              "(paper: <= 10/7 = 1.43 plus integer rounding)\n",
              eq2_ratio.mean(), eq2_ratio.max());
  std::printf("achieved/lower: mean %.3f max %.3f\n", achieved_ratio.mean(),
              achieved_ratio.max());
  benchutil::EmitJson("bench_bandwidth", "eq2_over_lower_mean",
                      eq2_ratio.mean(), 1);
  benchutil::EmitJson("bench_bandwidth", "achieved_over_lower_mean",
                      achieved_ratio.mean(), 1);
  benchutil::EmitJson("bench_bandwidth", "shape_ok", ok ? 1 : 0, 1);
  std::printf("\nshape checks (achieved <= Eq.(2) bandwidth on every case): "
              "%s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
