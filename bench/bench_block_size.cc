// E7b — The block-size tradeoff (paper, Section 5 "The Effect of Block
// Size").
//
// A file of fixed byte size S transmitted as m blocks of b bytes (S = m*b):
// smaller blocks mean a higher dispersal level m, hence finer-grained
// fault tolerance and more efficient bandwidth use, but O(m^2)
// dispersal/reconstruction work. Following the paper's closing question,
// this bench reports, for each candidate block size: the dispersal level,
// the pinwheel feasibility of the combined workload at a fixed channel
// bandwidth, the achieved worst-case one-fault latency, and the measured
// software reconstruction cost — exposing the largest block size that
// still meets the timeliness + fault-tolerance + bandwidth constraints.

#include <chrono>
#include <cstdio>
#include <vector>

#include "bdisk/delay_analysis.h"
#include "bdisk/pinwheel_builder.h"
#include "bench_util.h"
#include "common/random.h"
#include "ida/dispersal.h"
#include "pinwheel/composite_scheduler.h"

namespace {

using bdisk::Rng;
using namespace bdisk::broadcast;  // NOLINT

// Sized so the tradeoff bites: per-file density is (S + b) / (C * T), so
// small blocks fit comfortably while the largest block sizes push the
// system past the schedulable density and become infeasible.
constexpr std::size_t kFileBytes = 16 * 1024;   // Each file's payload (S).
constexpr double kLatencySeconds = 0.5;         // Deadline per file (T).
constexpr std::uint64_t kChannelBytesPerSec = 192 * 1024;  // C.

double MeasureReconstructSeconds(std::uint32_t m, std::size_t block_size) {
  auto engine = bdisk::ida::Dispersal::Create(m, 2 * m, block_size);
  if (!engine.ok()) return -1.0;
  Rng rng(m);
  std::vector<std::uint8_t> file(m * block_size);
  for (auto& b : file) b = static_cast<std::uint8_t>(rng.Uniform(256));
  auto blocks = engine->Disperse(0, file);
  if (!blocks.ok()) return -1.0;
  std::vector<bdisk::ida::Block> parity(blocks->begin() + m, blocks->end());
  const auto start = std::chrono::steady_clock::now();
  int reps = 0;
  double elapsed = 0.0;
  do {
    auto rec = engine->Reconstruct(parity);
    if (!rec.ok()) return -1.0;
    ++reps;
    elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count();
  } while (elapsed < 0.05);
  return elapsed / reps;
}

}  // namespace

int main() {
  std::printf("E7b / block-size tradeoff (Section 5)\n");
  std::printf("4 files x %zu bytes, latency %.1fs each, 1 fault to "
              "tolerate, channel %llu bytes/s\n\n",
              kFileBytes, kLatencySeconds,
              static_cast<unsigned long long>(kChannelBytesPerSec));
  std::printf("%-12s %-6s %-10s %-12s %-16s %-14s\n", "block bytes", "m",
              "schedul.", "1f latency", "latency (ms)", "reconstr (us)");

  bdisk::pinwheel::CompositeScheduler scheduler;
  bool any_feasible = false;
  for (std::size_t block_size :
       {512u, 1024u, 2048u, 4096u, 8192u, 16384u}) {
    const auto m = static_cast<std::uint32_t>(kFileBytes / block_size);
    // Channel bandwidth in blocks/sec at this block size.
    const std::uint64_t bandwidth = kChannelBytesPerSec / block_size;
    std::vector<FileSpec> files;
    for (int i = 0; i < 4; ++i) {
      files.push_back(
          {"f" + std::to_string(i), m, kLatencySeconds, 1});
    }
    auto result = BuildProgram(files, bandwidth, scheduler);
    const double recon_us = MeasureReconstructSeconds(m, block_size) * 1e6;
    if (!result.ok()) {
      std::printf("%-12zu %-6u %-10s %-12s %-16s %-14.1f\n", block_size, m,
                  "NO", "-", "-", recon_us);
      continue;
    }
    any_feasible = true;
    DelayAnalyzer analyzer(result->program);
    auto latency = analyzer.WorstCaseLatency(0, 1, ClientModel::kIda);
    const double ms =
        latency.ok()
            ? static_cast<double>(*latency) / static_cast<double>(bandwidth) *
                  1e3
            : -1.0;
    std::printf("%-12zu %-6u %-10s %-12llu %-16.1f %-14.1f\n", block_size, m,
                "yes",
                latency.ok() ? static_cast<unsigned long long>(*latency) : 0,
                ms, recon_us);
  }
  benchutil::EmitJson("bench_block_size", "shape_ok", any_feasible ? 1 : 0,
                      1);
  std::printf("\nreading: the largest feasible block size minimizes CPU "
              "cost; smaller blocks raise m (finer fault tolerance, higher "
              "O(m^2) reconstruction cost). Latency is in slots and ms at "
              "the per-block-size bandwidth.\n");
  return any_feasible ? 0 : 1;
}
