// E2 — Lemmas 1 and 2: worst-case error-recovery delay bounds.
//
// Lemma 1: flat program, r errors  => delay <= r * tau (tau = period).
// Lemma 2: AIDA program, r errors  => delay <= r * Delta (max block gap).
//
// Includes the paper's Section 2.3 sizing example: a 200-block program of
// 10 files x 20 blocks spread so same-file blocks are at most
// Delta = 200/20 = 10 apart, giving a tau/Delta = 20x speedup in error
// recovery.

#include <cstdio>
#include <string>
#include <vector>

#include "bdisk/delay_analysis.h"
#include "bdisk/flat_builder.h"
#include "bench_util.h"

namespace {

using bdisk::broadcast::BroadcastProgram;
using bdisk::broadcast::ClientModel;
using bdisk::broadcast::DelayAnalyzer;
using bdisk::broadcast::FlatFileSpec;
using bdisk::broadcast::FlatLayout;

struct Workload {
  const char* name;
  std::vector<FlatFileSpec> files;  // n == m here; AIDA variant derived.
};

std::vector<Workload> Workloads() {
  std::vector<Workload> out;
  out.push_back({"toy-2-files",
                 {{"A", 5, 5, {}}, {"B", 3, 3, {}}}});
  out.push_back({"uniform-4x8",
                 {{"F0", 8, 8, {}},
                  {"F1", 8, 8, {}},
                  {"F2", 8, 8, {}},
                  {"F3", 8, 8, {}}}});
  Workload paper200{"paper-200-blocks", {}};
  for (int i = 0; i < 10; ++i) {
    paper200.files.push_back(
        {"F" + std::to_string(i), 20, 20, {}});
  }
  out.push_back(std::move(paper200));
  out.push_back({"skewed",
                 {{"big", 24, 24, {}}, {"mid", 6, 6, {}}, {"sm", 2, 2, {}}}});
  return out;
}

}  // namespace

int main() {
  std::printf("E2 / Lemmas 1 & 2: measured worst-case delay vs bounds\n\n");
  bool ok = true;
  const std::uint32_t kMaxErrors = 4;

  for (const Workload& w : Workloads()) {
    // Flat baseline (no dispersal), spread layout.
    auto flat = BuildFlatProgram(w.files, FlatLayout::kSpread);
    // AIDA variant: disperse each file to n = m + kMaxErrors so the
    // Lemma 2 premise (enough distinct blocks to mask every fault) holds
    // for all reported error counts.
    std::vector<FlatFileSpec> aida_files = w.files;
    for (auto& f : aida_files) f.n = f.m + kMaxErrors;
    auto aida = BuildFlatProgram(aida_files, FlatLayout::kSpread);
    if (!flat.ok() || !aida.ok()) {
      std::fprintf(stderr, "builder failed\n");
      return 1;
    }
    DelayAnalyzer flat_an(*flat);
    DelayAnalyzer aida_an(*aida);

    std::uint64_t max_delta = 0;
    for (std::size_t f = 0; f < w.files.size(); ++f) {
      max_delta = std::max(max_delta,
                           aida->MaxGapOf(static_cast<std::uint32_t>(f)));
    }
    std::printf("workload %-18s tau = %-5llu max Delta = %-4llu "
                "(tau/Delta speedup ~= %.1fx)\n",
                w.name, static_cast<unsigned long long>(flat->period()),
                static_cast<unsigned long long>(max_delta),
                static_cast<double>(flat->period()) /
                    static_cast<double>(max_delta));
    std::printf("  %-4s %-26s %-26s\n", "r",
                "flat: worst / r*tau", "AIDA: worst / r*Delta(file)");
    for (std::uint32_t r = 1; r <= kMaxErrors; ++r) {
      // Report the worst file for each regime.
      std::uint64_t flat_worst = 0;
      std::uint64_t aida_worst = 0;
      std::uint64_t aida_bound = 0;
      for (std::size_t f = 0; f < w.files.size(); ++f) {
        const auto fi = static_cast<std::uint32_t>(f);
        auto fd = flat_an.WorstCaseDelay(fi, r, ClientModel::kFlat);
        auto ad = aida_an.WorstCaseDelay(fi, r, ClientModel::kIda);
        if (!fd.ok() || !ad.ok()) {
          std::fprintf(stderr, "analysis failed: %s\n",
                       fd.ok() ? ad.status().ToString().c_str()
                               : fd.status().ToString().c_str());
          return 1;
        }
        flat_worst = std::max(flat_worst, *fd);
        aida_worst = std::max(aida_worst, *ad);
        aida_bound = std::max(aida_bound, aida_an.Lemma2Bound(fi, r));
        ok &= *fd <= flat_an.Lemma1Bound(r);
        ok &= *ad <= aida_an.Lemma2Bound(fi, r);
        ok &= *ad <= *fd;
      }
      std::printf("  %-4u %10llu / %-13llu %10llu / %-13llu\n", r,
                  static_cast<unsigned long long>(flat_worst),
                  static_cast<unsigned long long>(flat_an.Lemma1Bound(r)),
                  static_cast<unsigned long long>(aida_worst),
                  static_cast<unsigned long long>(aida_bound));
    }
    std::printf("\n");
  }

  benchutil::EmitJson("bench_lemma_bounds", "shape_ok", ok ? 1 : 0, 1);
  std::printf("shape checks (delay <= bound for every file and r; "
              "AIDA <= flat): %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
