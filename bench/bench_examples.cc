// E4/E5 — The paper's worked examples.
//
// Example 1 (Section 3.1): schedulability of the three textbook pinwheel
// systems, including the infeasible {(1,2),(1,3),(1,n)} family.
// Examples 2-6 (Section 4.2): conversion of broadcast conditions to nice
// pinwheel conjuncts; the densities must match the paper's numbers.

#include <cmath>
#include <cstdio>

#include "algebra/optimizer.h"
#include "bench_util.h"
#include "pinwheel/exact_scheduler.h"
#include "pinwheel/verifier.h"

namespace {

using bdisk::algebra::BroadcastCondition;
using bdisk::algebra::Conversion;
using bdisk::algebra::NiceConverter;

bool CheckExample(const char* name, const BroadcastCondition& bc,
                  double paper_lower_bound, double paper_best_density) {
  auto conv = NiceConverter::Convert(bc);
  if (!conv.ok()) {
    std::printf("%-10s %-24s CONVERSION FAILED: %s\n", name,
                bc.ToString().c_str(), conv.status().ToString().c_str());
    return false;
  }
  const double best = conv->best().density();
  const bool lb_match =
      std::abs(conv->density_lower_bound - paper_lower_bound) < 5e-4;
  // Our optimizer may only match or beat the paper's reported density.
  const bool density_ok = best <= paper_best_density + 5e-4;
  std::printf("%-10s %-24s lb=%.4f (paper %.4f)  best=%.4f via %-8s "
              "(paper %.4f)  %s\n",
              name, bc.ToString().c_str(), conv->density_lower_bound,
              paper_lower_bound, best, conv->best().strategy.c_str(),
              paper_best_density,
              lb_match && density_ok ? "OK" : "MISMATCH");
  return lb_match && density_ok;
}

}  // namespace

int main() {
  bool ok = true;

  std::printf("E5 / Example 1: pinwheel schedulability\n");
  {
    bdisk::pinwheel::ExactScheduler exact;
    auto first = bdisk::pinwheel::Instance::Create({{1, 1, 2}, {2, 1, 3}});
    auto second = bdisk::pinwheel::Instance::Create({{1, 2, 5}, {2, 1, 3}});
    if (!first.ok() || !second.ok()) return 1;
    auto s1 = exact.BuildSchedule(*first);
    auto s2 = exact.BuildSchedule(*second);
    ok &= s1.ok() && s2.ok();
    std::printf("  {(1,1,2),(2,1,3)}: %s  schedule: %s\n",
                s1.ok() ? "feasible" : "INFEASIBLE",
                s1.ok() ? s1->ToString().c_str() : "-");
    std::printf("  {(1,2,5),(2,1,3)}: %s  schedule: %s\n",
                s2.ok() ? "feasible" : "INFEASIBLE",
                s2.ok() ? s2->ToString().c_str() : "-");
    std::printf("  {(1,1,2),(2,1,3),(3,1,n)} for n = 4..24: ");
    bool all_infeasible = true;
    for (std::uint64_t n = 4; n <= 24; ++n) {
      auto third =
          bdisk::pinwheel::Instance::Create({{1, 1, 2}, {2, 1, 3}, {3, 1, n}});
      if (!third.ok()) return 1;
      auto verdict = exact.IsFeasible(*third);
      if (!verdict.ok() || *verdict) all_infeasible = false;
    }
    ok &= all_infeasible;
    std::printf("%s (paper: infeasible for every n)\n",
                all_infeasible ? "all infeasible" : "MISMATCH");
  }

  std::printf("\nE4 / Examples 2-6: nice-conjunct conversion densities\n");
  // Example 2: lb 0.075, paper best 0.0769 (TR1, within 2.5%).
  ok &= CheckExample("Example 2", {5, {100, 105, 110, 115, 120}}, 0.075,
                     0.0769);
  // Example 3: lb 0.0636, paper best 0.0662 (TR2, within 4.1%).
  ok &= CheckExample("Example 3", {6, {105, 110}}, 7.0 / 110, 0.0662);
  // Example 4: lb 0.5556, paper best 0.6000 (R1+R5, within 4%).
  ok &= CheckExample("Example 4", {4, {8, 9}}, 5.0 / 9, 0.6);
  // Example 5: lb 2/3, paper best 2/3 (optimal single condition pc(2,3)).
  ok &= CheckExample("Example 5", {2, {5, 6, 6}}, 2.0 / 3, 2.0 / 3);
  // Example 6: paper best 2/3 via pc(2,3); TR2 would be 0.8333.
  ok &= CheckExample("Example 6", {1, {2, 3}}, 2.0 / 3, 2.0 / 3);

  benchutil::EmitJson("bench_examples", "shape_ok", ok ? 1 : 0, 1);
  std::printf("\noverall: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
