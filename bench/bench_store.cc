// bench_store: throughput and memory discipline of the persistent block
// store. Builds a catalog of dispersal-shaped entries (default 256 MiB,
// one commit per entry — the two-generation swap under churn), then
// serves random coded-block reads through the checksum-verified path.
//
// The point of the bench is the memory claim: the catalog is at least 4x
// a configured cap (default 64 MiB) and PEAK RSS MUST STAY UNDER THE CAP
// — the store serves from disk, it does not become a cache. The process
// exits non-zero if VmHWM crosses the cap, so CI can gate on it.
//
// Flags: --store-bytes SIZE (256MiB), --cap-bytes SIZE (64MiB),
//        --reads N (1024), --device-block SIZE (4KiB),
//        --path FILE (/tmp/bdisk_bench_store.dev), --threads N (reported).
// Sizes take the byte-size grammar: plain bytes or B/KiB/MiB/GiB.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "ida/block.h"
#include "runtime/flags.h"
#include "store/block_device.h"
#include "store/block_store.h"

namespace {

using bdisk::Rng;
namespace store = bdisk::store;

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::uint64_t PeakRssKb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kb = std::strtoull(line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kb;
}

void FillPayload(std::vector<std::uint8_t>* payload, Rng* rng) {
  std::size_t i = 0;
  for (; i + 8 <= payload->size(); i += 8) {
    const std::uint64_t x = (*rng)();
    std::memcpy(payload->data() + i, &x, 8);
  }
  for (; i < payload->size(); ++i) {
    (*payload)[i] = static_cast<std::uint8_t>((*rng)());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned threads = bdisk::runtime::ThreadsFlag(argc, argv, 1);
  const std::uint64_t store_bytes =
      bdisk::runtime::ByteSizeFlag(argc, argv, "store-bytes", 256ull << 20);
  const std::uint64_t cap_bytes =
      bdisk::runtime::ByteSizeFlag(argc, argv, "cap-bytes", 64ull << 20);
  const std::uint64_t reads =
      bdisk::runtime::UintFlag(argc, argv, "reads", 1024);
  const std::uint64_t device_block =
      bdisk::runtime::ByteSizeFlag(argc, argv, "device-block", 4096);
  const char* path = bdisk::runtime::ConsumeStringFlag(
      &argc, argv, "path", "/tmp/bdisk_bench_store.dev");

  // Entry shape: 16 entries of an 8-of-16 dispersal; payload sized so the
  // 16 entries together approximate --store-bytes.
  constexpr std::uint32_t kEntries = 16;
  constexpr std::uint32_t kM = 8;
  constexpr std::uint32_t kN = 16;
  std::uint64_t payload_bytes =
      store_bytes / (kEntries * kN) / device_block * device_block;
  if (payload_bytes == 0) payload_bytes = device_block;
  const std::uint64_t data_bytes =
      static_cast<std::uint64_t>(kEntries) * kN * payload_bytes;
  const std::uint64_t device_blocks =
      store::BlockStore::kFirstDataBlock + data_bytes / device_block +
      4 * kEntries + 64;  // Catalog extents + slack.

  std::printf("bench_store: catalog %.1f MiB, cap %.1f MiB (%.1fx), "
              "device %s (%llu x %llu B)\n",
              static_cast<double>(data_bytes) / (1 << 20),
              static_cast<double>(cap_bytes) / (1 << 20),
              static_cast<double>(data_bytes) /
                  static_cast<double>(cap_bytes),
              path, static_cast<unsigned long long>(device_blocks),
              static_cast<unsigned long long>(device_block));

  std::remove(path);
  auto device = store::FileBlockDevice::Create(
      path, static_cast<std::size_t>(device_block), device_blocks);
  if (!device.ok()) {
    std::fprintf(stderr, "bench_store: %s\n",
                 device.status().ToString().c_str());
    return 1;
  }
  auto built = store::BlockStore::Format(std::move(*device));
  if (!built.ok()) {
    std::fprintf(stderr, "bench_store: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  store::BlockStore& st = **built;

  // Build: stream one entry at a time (generate -> stamp -> stage ->
  // drop), one commit per entry. In-memory footprint is a single entry.
  Rng rng(0xB345);
  const auto build_start = std::chrono::steady_clock::now();
  for (std::uint32_t e = 0; e < kEntries; ++e) {
    std::vector<bdisk::ida::Block> blocks(kN);
    for (std::uint32_t k = 0; k < kN; ++k) {
      blocks[k].header.file_id = e;
      blocks[k].header.block_index = k;
      blocks[k].header.reconstruct_threshold = kM;
      blocks[k].header.total_blocks = kN;
      blocks[k].header.version = 0;
      blocks[k].payload.resize(payload_bytes);
      FillPayload(&blocks[k].payload, &rng);
    }
    bdisk::ida::StampChecksums(&blocks);
    bdisk::Status status = st.StageFile(blocks);
    if (status.ok()) status = st.Commit();
    if (!status.ok()) {
      std::fprintf(stderr, "bench_store: entry %u: %s\n", e,
                   status.ToString().c_str());
      return 1;
    }
  }
  const double build_s = SecondsSince(build_start);
  const double build_mbps =
      static_cast<double>(data_bytes) / (1 << 20) / build_s;

  // Serve: random coded-block reads through checksum verification.
  std::uint64_t read_bytes = 0;
  const auto read_start = std::chrono::steady_clock::now();
  for (std::uint64_t r = 0; r < reads; ++r) {
    const auto e = static_cast<bdisk::ida::FileId>(rng.Uniform(kEntries));
    const auto k = static_cast<std::uint32_t>(rng.Uniform(kN));
    const auto block = st.ReadCodedBlock(e, 0, k);
    if (!block.ok()) {
      std::fprintf(stderr, "bench_store: read %llu: %s\n",
                   static_cast<unsigned long long>(r),
                   block.status().ToString().c_str());
      return 1;
    }
    read_bytes += block->payload.size();
  }
  const double read_s = SecondsSince(read_start);
  const double read_mbps =
      static_cast<double>(read_bytes) / (1 << 20) / read_s;

  const double peak_mb = static_cast<double>(PeakRssKb()) / 1024.0;
  std::printf("build : %.1f MiB in %.2f s (%.1f MiB/s, %llu generations)\n",
              static_cast<double>(data_bytes) / (1 << 20), build_s,
              build_mbps,
              static_cast<unsigned long long>(st.generation()));
  std::printf("read  : %llu reads, %.1f MiB in %.2f s (%.1f MiB/s)\n",
              static_cast<unsigned long long>(reads),
              static_cast<double>(read_bytes) / (1 << 20), read_s,
              read_mbps);
  std::printf("memory: peak RSS %.1f MiB, cap %.1f MiB\n", peak_mb,
              static_cast<double>(cap_bytes) / (1 << 20));

  benchutil::EmitJson("bench_store", "build_MBps", build_mbps, threads);
  benchutil::EmitJson("bench_store", "read_MBps", read_mbps, threads);
  benchutil::EmitJson("bench_store", "peak_rss_mb", peak_mb, threads);
  benchutil::EmitJson("bench_store", "catalog_mb",
                      static_cast<double>(data_bytes) / (1 << 20), threads);

  std::remove(path);
  if (peak_mb * (1 << 20) >= static_cast<double>(cap_bytes)) {
    std::fprintf(stderr,
                 "bench_store: FAIL — peak RSS %.1f MiB breached the "
                 "%.1f MiB cap; the store must serve from disk, not from "
                 "a resident copy\n",
                 peak_mb, static_cast<double>(cap_bytes) / (1 << 20));
    return 1;
  }
  return 0;
}
