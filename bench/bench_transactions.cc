// E11 (extension) — real-time transactions over several data items.
//
// The paper's RTDB framing: client transactions read multiple broadcast
// items under one deadline (an IVHS reroute needs incidents + congestion +
// route data together). A transaction misses its deadline if *any* item is
// late, so retrieval-latency tails compound with transaction size — which
// is exactly where AIDA's fault masking pays off. This bench sweeps the
// number of items per transaction at a fixed channel loss rate and reports
// deadline-miss rates for AIDA vs flat programs over the same files.

#include <cstdio>
#include <memory>
#include <vector>

#include "bdisk/flat_builder.h"
#include "bench_util.h"
#include "runtime/thread_pool.h"
#include "sim/simulation.h"

namespace {

using namespace bdisk;             // NOLINT
using namespace bdisk::broadcast;  // NOLINT
using namespace bdisk::sim;        // NOLINT

constexpr int kFiles = 8;
constexpr std::uint32_t kBlocksPerFile = 6;

BroadcastProgram Build(bool ida) {
  std::vector<FlatFileSpec> files;
  for (int i = 0; i < kFiles; ++i) {
    files.push_back({"F" + std::to_string(i), kBlocksPerFile,
                     ida ? 2 * kBlocksPerFile : kBlocksPerFile, {}});
  }
  auto p = BuildFlatProgram(files, FlatLayout::kSpread);
  if (!p.ok()) std::exit(1);
  return *p;
}

double MissRate(const BroadcastProgram& p, ClientModel model,
                std::size_t txn_size, double loss_rate,
                std::uint64_t deadline, bdisk::runtime::ThreadPool* pool) {
  BernoulliFaultModel faults(loss_rate, 777);
  Simulator sim(p, &faults, 200000);
  TransactionWorkloadConfig config;
  config.transactions = 3000;
  config.files_per_transaction = txn_size;
  config.deadline_slots = deadline;
  config.model = model;
  config.seed = 4096 + txn_size;
  auto metrics = sim.RunTransactionWorkload(config, pool);
  if (!metrics.ok()) std::exit(1);
  return metrics->MissRate();
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned threads = benchutil::ThreadsFlag(argc, argv);
  std::unique_ptr<bdisk::runtime::ThreadPool> pool;
  if (threads > 1) {
    pool = std::make_unique<bdisk::runtime::ThreadPool>(threads);
  }
  const BroadcastProgram ida = Build(true);
  const BroadcastProgram flat = Build(false);
  const std::uint64_t deadline = 3 * ida.period();
  const double loss = 0.08;

  std::printf("E11 / transaction deadline-miss rate vs transaction size\n");
  std::printf("%d files x %u blocks, period %llu, joint deadline %llu "
              "slots, 8%% independent loss, 3000 transactions per point, "
              "%u thread(s)\n\n",
              kFiles, kBlocksPerFile,
              static_cast<unsigned long long>(ida.period()),
              static_cast<unsigned long long>(deadline), threads);
  std::printf("%-12s %-12s %-12s\n", "items/txn", "AIDA miss", "flat miss");
  bool ok = true;
  double prev_flat = -1.0;
  double aida_last = 0.0;  // Miss rate at the largest size (k = 8).
  for (std::size_t k : {1u, 2u, 3u, 4u, 6u, 8u}) {
    const double a =
        MissRate(ida, ClientModel::kIda, k, loss, deadline, pool.get());
    const double f =
        MissRate(flat, ClientModel::kFlat, k, loss, deadline, pool.get());
    std::printf("%-12zu %-12.4f %-12.4f\n", k, a, f);
    ok &= a <= f + 1e-9;       // AIDA never worse.
    ok &= f >= prev_flat - 0.02;  // Flat misses compound with size.
    prev_flat = f;
    aida_last = a;
  }
  benchutil::EmitJson("bench_transactions", "aida_miss_rate_8_items",
                      aida_last, threads);
  benchutil::EmitJson("bench_transactions", "shape_ok", ok ? 1 : 0, threads);
  std::printf("\nshape checks (AIDA <= flat at every size; flat miss rate "
              "non-decreasing in size): %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
