// E6 — Scheduler ablation: empirical success rate versus instance density.
//
// Supports the paper's reliance on Chan & Chin's 7/10-density scheduler:
// our reconstruction (Sxy) should succeed on (nearly) all instances up to
// density ~0.7, Sa up to 0.5 (its guarantee), with the exact solver as
// ground truth on the same instances (feasible-but-missed vs truly
// infeasible).

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "pinwheel/chain_schedulers.h"
#include "pinwheel/exact_scheduler.h"
#include "pinwheel/greedy_scheduler.h"

namespace {

using bdisk::Rng;
using namespace bdisk::pinwheel;  // NOLINT

// Random single-unit instance with density in [target - 0.03, target].
// Windows are kept small (<= 18) so the exact solver can act as ground
// truth within a bounded state budget.
Instance RandomInstance(Rng* rng, double target) {
  std::vector<Task> tasks;
  double density = 0.0;
  TaskId id = 0;
  int stall = 0;
  while (density < target - 0.03 && tasks.size() < 7 && stall < 64) {
    const std::uint64_t b = 2 + rng->Uniform(17);
    const double d = 1.0 / static_cast<double>(b);
    if (density + d > target) {
      ++stall;
      continue;
    }
    tasks.push_back({id++, 1, b});
    density += d;
  }
  if (tasks.empty()) tasks.push_back({0, 1, 64});
  auto inst = Instance::Create(std::move(tasks));
  return *inst;
}

}  // namespace

int main() {
  std::printf("E6 / scheduler ablation: success rate vs density "
              "(200 random single-unit instances per bin)\n\n");
  Rng rng(7777);
  SaScheduler sa;
  SxScheduler sx;
  SxyScheduler sxy;
  GreedyScheduler greedy;
  ExactSchedulerOptions exact_options;
  exact_options.max_states = 200000;  // Undecided instances are skipped.
  ExactScheduler exact(exact_options);

  std::printf("%-9s %-9s %-9s %-9s %-9s %-10s\n", "density", "Sa", "Sx",
              "Sxy", "Greedy", "feasible*");
  bool ok = true;
  for (double target : {0.3, 0.4, 0.5, 0.6, 0.7, 0.75, 0.8, 0.85, 0.9}) {
    const int kTrials = 200;
    int sa_ok = 0;
    int sx_ok = 0;
    int sxy_ok = 0;
    int greedy_ok = 0;
    int feasible = 0;
    int decided = 0;
    for (int t = 0; t < kTrials; ++t) {
      const Instance inst = RandomInstance(&rng, target);
      const bool a = sa.BuildSchedule(inst).ok();
      const bool x = sx.BuildSchedule(inst).ok();
      const bool xy = sxy.BuildSchedule(inst).ok();
      const bool g = greedy.BuildSchedule(inst).ok();
      sa_ok += a;
      sx_ok += x;
      sxy_ok += xy;
      greedy_ok += g;
      auto verdict = exact.IsFeasible(inst);
      if (verdict.ok()) {
        ++decided;
        feasible += *verdict;
        // No heuristic may "succeed" on a provably infeasible instance
        // (schedules are verified, so this would be a library bug).
        if (!*verdict && (a || x || xy || g)) ok = false;
      }
      // Sa's guarantee.
      if (inst.density() <= 0.5 && !a) ok = false;
    }
    std::printf("%-9.2f %-9.2f %-9.2f %-9.2f %-9.2f %.2f (n=%d)\n", target,
                static_cast<double>(sa_ok) / kTrials,
                static_cast<double>(sx_ok) / kTrials,
                static_cast<double>(sxy_ok) / kTrials,
                static_cast<double>(greedy_ok) / kTrials,
                decided > 0 ? static_cast<double>(feasible) / decided : 0.0,
                decided);
  }
  std::printf("\n*feasible = exact-solver ground truth on instances it "
              "decided within budget\n");
  std::printf("\nexpected shape: Sa ~1.0 through 0.5 (its guarantee) then "
              "degrading; Sx and Sxy near 1.0 through ~0.7, the Chan-Chin "
              "density the paper's Eq. (1)/(2) rely on; greedy degrades "
              "earliest. (Sxy's richer window set can lose to Sx when its "
              "non-chain residue allocation fails; the composite portfolio "
              "takes whichever succeeds.)\n");
  benchutil::EmitJson("bench_scheduler_density", "shape_ok", ok ? 1 : 0, 1);
  std::printf("\nconsistency checks: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
