// E13 (extension) — the (1, m) indexing tradeoff (Imielinski et al. [24],
// the paper's footnote-3 alternative): access latency vs tuning time
// (energy) as the index replication factor sweeps.
//
// Expected shape: without an index, tuning time == latency (the receiver
// is always on). With an index, tuning time collapses to roughly
// probe + index + m target slots regardless of replication, while latency
// traces the classic U-ish curve — few copies mean long dozes to the next
// index, many copies bloat the period.

#include <cstdio>

#include "bdisk/flat_builder.h"
#include "bdisk/indexing.h"
#include "bench_util.h"

namespace {

using namespace bdisk::broadcast;  // NOLINT

BroadcastProgram Base() {
  std::vector<FlatFileSpec> files;
  for (int i = 0; i < 8; ++i) {
    files.push_back({"F" + std::to_string(i), 6, 9, {}});
  }
  auto p = BuildFlatProgram(files, FlatLayout::kSpread);
  if (!p.ok()) std::exit(1);
  return *p;
}

}  // namespace

int main() {
  const BroadcastProgram base = Base();
  const FileIndex target = 0;
  constexpr std::uint64_t kIndexSlots = 4;

  std::printf("E13 / (1,m) indexing: latency vs tuning time (file of %u "
              "blocks, base period %llu, index %llu slots)\n\n",
              base.files()[target].m,
              static_cast<unsigned long long>(base.period()),
              static_cast<unsigned long long>(kIndexSlots));

  auto plain = MeanNonIndexedAccess(base, target);
  if (!plain.ok()) return 1;
  std::printf("%-14s %-12s %-12s\n", "index copies", "latency", "tuning");
  std::printf("%-14s %-12.1f %-12.1f   (receiver always on)\n", "none",
              plain->latency, plain->tuning_time);

  bool ok = true;
  for (std::uint32_t replication : {1u, 2u, 4u, 8u, 16u}) {
    auto indexed = BuildIndexedProgram(base, {replication, kIndexSlots});
    if (!indexed.ok()) return 1;
    auto cost = MeanIndexedAccess(*indexed, target);
    if (!cost.ok()) return 1;
    std::printf("%-14u %-12.1f %-12.1f\n", replication, cost->latency,
                cost->tuning_time);
    ok &= cost->tuning_time < plain->tuning_time / 2;
  }
  benchutil::EmitJson("bench_indexing", "plain_tuning_slots",
                      plain->tuning_time, 1);
  benchutil::EmitJson("bench_indexing", "shape_ok", ok ? 1 : 0, 1);
  std::printf("\nshape check (indexing cuts tuning time by > 2x at every "
              "replication): %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
