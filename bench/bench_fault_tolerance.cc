// Fault-tolerance frontier: retrieval latency, reconstruction stall,
// periods-to-recovery, and undecodable-file rate as a function of the
// erasure channel and the AIDA redundancy knob n/m.
//
// This is the quantitative half of the paper's fault-tolerance claim: a
// client reconstructs from any m of n dispersed blocks, so raising n/m
// buys reliability (and lowers stall) at the price of bandwidth. The sweep
// runs every channel of the fault taxonomy (src/faults/) against
// redundancy ratios 1.0-2.0 and emits one JSON line per (channel, ratio,
// metric).
//
// The bench also enforces the subsystem's acceptance bar and exits
// non-zero on violation:
//   * under Bernoulli loss p=0.1 with redundancy >= 1.5, every file of the
//     byte-level data plane reconstructs byte-identically through the
//     corrupting/lossy channel, and the index-level workload has no
//     undecodable attempts;
//   * the identical fault seed produces bit-identical metrics (compared as
//     serialized JSON) at 1 and 8 threads.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bdisk/flat_builder.h"
#include "bench_util.h"
#include "common/random.h"
#include "faults/channel_spec.h"
#include "runtime/thread_pool.h"
#include "sim/client.h"
#include "sim/server.h"
#include "sim/simulation.h"

namespace {

using namespace bdisk;             // NOLINT
using namespace bdisk::broadcast;  // NOLINT
using namespace bdisk::sim;       // NOLINT

// Large enough for the 4-data-cycle workload tail of every swept program
// (the block-rotation data cycle of the r=1.5 program is ~1320 periods).
constexpr std::uint64_t kHorizon = 200000;
constexpr std::uint64_t kWorkloadSeed = 404;
constexpr std::uint64_t kRequestsPerFile = 500;
constexpr std::size_t kBlockSize = 64;

bdisk::runtime::ThreadPool* g_pool = nullptr;
unsigned g_threads = 1;

// 6 files, m in 2..7, n = ceil(m * redundancy): one program per ratio.
BroadcastProgram Build(double redundancy) {
  std::vector<FlatFileSpec> files;
  for (std::uint32_t i = 0; i < 6; ++i) {
    const std::uint32_t m = 2 + i;
    const auto n = static_cast<std::uint32_t>(std::ceil(m * redundancy));
    files.push_back({"F" + std::to_string(i), m, n, {}});
  }
  auto p = BuildFlatProgram(files, FlatLayout::kSpread);
  if (!p.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 p.status().ToString().c_str());
    std::exit(1);
  }
  return *p;
}

SimulationMetrics RunPoint(const BroadcastProgram& program,
                           const faults::ChannelModel& channel,
                           bdisk::runtime::ThreadPool* pool) {
  Simulator sim(program, channel, kHorizon);
  WorkloadConfig config;
  config.requests_per_file = kRequestsPerFile;
  config.seed = kWorkloadSeed;
  auto metrics = sim.RunWorkload(config, pool);
  if (!metrics.ok()) {
    std::fprintf(stderr, "workload failed: %s\n",
                 metrics.status().ToString().c_str());
    std::exit(1);
  }
  return *metrics;
}

// Metric tag "<channel>_r<ratio>_<metric>"; ratios render as 1.50.
std::string Tag(const char* channel, double ratio, const char* metric) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%s_r%.2f_%s", channel, ratio, metric);
  return buf;
}

// Acceptance: byte-identical end-to-end reconstruction through the lossy
// channel for every file of the r >= 1.5 program, from several starts.
int CheckByteLevel(const BroadcastProgram& program,
                   const faults::ChannelModel& channel) {
  Rng rng(2024);
  std::vector<std::vector<std::uint8_t>> contents(program.file_count());
  for (FileIndex f = 0; f < program.file_count(); ++f) {
    contents[f].resize(program.files()[f].m * kBlockSize);
    for (auto& b : contents[f]) {
      b = static_cast<std::uint8_t>(rng.Uniform(256));
    }
  }
  auto server = BroadcastServer::Create(program, contents, kBlockSize);
  if (!server.ok()) {
    std::fprintf(stderr, "server build failed: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  for (FileIndex f = 0; f < program.file_count(); ++f) {
    for (std::uint64_t start = 0; start < 3 * program.period();
         start += program.period() / 2 + 1) {
      auto session =
          RunRetrievalSession(*server, channel, f, start, kHorizon);
      if (!session.ok()) {
        std::fprintf(stderr, "session failed: %s\n",
                     session.status().ToString().c_str());
        return 1;
      }
      if (!session->completed) {
        std::fprintf(stderr,
                     "ACCEPTANCE: file %u from slot %llu did not complete\n",
                     f, static_cast<unsigned long long>(start));
        return 1;
      }
      if (session->data != contents[f]) {
        std::fprintf(stderr,
                     "ACCEPTANCE: file %u from slot %llu reconstructed "
                     "different bytes\n",
                     f, static_cast<unsigned long long>(start));
        return 1;
      }
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  g_threads = benchutil::ThreadsFlag(argc, argv);
  std::unique_ptr<bdisk::runtime::ThreadPool> pool;
  if (g_threads > 1) {
    pool = std::make_unique<bdisk::runtime::ThreadPool>(g_threads);
    g_pool = pool.get();
  }

  const std::vector<std::pair<const char*, std::string>> channels = {
      {"lossless", "lossless"},
      {"bernoulli0.05", "bernoulli:p=0.05,seed=7"},
      {"bernoulli0.10", "bernoulli:p=0.1,seed=7"},
      {"gilbert", "gilbert:pgb=0.02,pbg=0.2,seed=7"},
      {"corrupt0.05", "corrupt:p=0.05,seed=7"},
      {"outage", "outage:period=2048,start=512,len=192"},
  };
  const std::vector<double> ratios = {1.0, 1.25, 1.5, 2.0};

  std::printf("%-14s %6s %10s %10s %10s %10s\n", "channel", "n/m",
              "mean_lat", "mean_stall", "periods", "undecod");
  for (const auto& [name, spec] : channels) {
    auto channel = faults::ParseChannelSpec(spec);
    if (!channel.ok()) {
      std::fprintf(stderr, "bad channel spec '%s': %s\n", spec.c_str(),
                   channel.status().ToString().c_str());
      return 1;
    }
    for (const double ratio : ratios) {
      const BroadcastProgram program = Build(ratio);
      const SimulationMetrics metrics = RunPoint(program, **channel, g_pool);
      double mean_periods = 0.0;
      {
        RunningStats all;
        for (const FileMetrics& f : metrics.per_file) {
          all.Merge(f.periods_to_recovery);
        }
        mean_periods = all.mean();
      }
      std::printf("%-14s %6.2f %10.2f %10.2f %10.2f %10.4f\n", name, ratio,
                  metrics.OverallMeanLatency(), metrics.OverallMeanStall(),
                  mean_periods, metrics.OverallUndecodableRate());
      benchutil::EmitJson("bench_fault_tolerance",
                          Tag(name, ratio, "mean_latency_slots").c_str(),
                          metrics.OverallMeanLatency(), g_threads);
      benchutil::EmitJson("bench_fault_tolerance",
                          Tag(name, ratio, "mean_stall_slots").c_str(),
                          metrics.OverallMeanStall(), g_threads);
      benchutil::EmitJson("bench_fault_tolerance",
                          Tag(name, ratio, "mean_periods_to_recovery").c_str(),
                          mean_periods, g_threads);
      benchutil::EmitJson("bench_fault_tolerance",
                          Tag(name, ratio, "undecodable_rate").c_str(),
                          metrics.OverallUndecodableRate(), g_threads);
    }
  }

  // ---- Acceptance bar -----------------------------------------------------
  auto bern = faults::ParseChannelSpec("bernoulli:p=0.1,seed=7");
  if (!bern.ok()) return 1;
  const BroadcastProgram accept_program = Build(1.5);

  // Index level: no undecodable attempts at p=0.1, r=1.5.
  const SimulationMetrics serial = RunPoint(accept_program, **bern, nullptr);
  if (serial.OverallUndecodableRate() != 0.0) {
    std::fprintf(stderr,
                 "ACCEPTANCE: undecodable rate %.6f != 0 at p=0.1 r=1.5\n",
                 serial.OverallUndecodableRate());
    return 1;
  }

  // Byte level: every file reconstructs byte-identically.
  if (CheckByteLevel(accept_program, **bern) != 0) return 1;

  // Determinism: bit-identical metrics at 1 and 8 threads.
  {
    bdisk::runtime::ThreadPool eight(8);
    const SimulationMetrics parallel = RunPoint(accept_program, **bern,
                                                &eight);
    if (MetricsToJson(serial) != MetricsToJson(parallel)) {
      std::fprintf(stderr,
                   "ACCEPTANCE: metrics differ between 1 and 8 threads\n");
      return 1;
    }
  }
  std::printf("acceptance: p=0.1 r=1.5 all files byte-identical, "
              "undecodable 0, 1-vs-8-thread metrics bit-identical\n");
  benchutil::EmitJson("bench_fault_tolerance", "acceptance_pass", 1.0,
                      g_threads);
  return 0;
}
