// E16 — parallel scaling of the two data-plane drivers the runtime layer
// feeds: batched IDA dispersal (DisperseBatch over >= 64 MiB of stripes)
// and the sharded workload simulator (RunWorkload over >= 100k requests).
//
// Reports throughput and speedup at 1/2/4/8 threads (cap with
// --threads N). Correctness is asserted, not sampled: every parallel run
// must be bit-identical to the serial path — that is the runtime layer's
// determinism contract — and the bench exits non-zero on any mismatch.
// Speedup itself is hardware-dependent (a 1-core container shows ~1x) and
// is reported, not asserted.

#include <chrono>
#include <cstdio>
#include <vector>

#include "bdisk/flat_builder.h"
#include "bench_util.h"
#include "common/random.h"
#include "ida/dispersal.h"
#include "runtime/thread_pool.h"
#include "sim/simulation.h"

namespace {

using namespace bdisk;             // NOLINT
using namespace bdisk::broadcast;  // NOLINT
using namespace bdisk::sim;        // NOLINT

constexpr const char* kBench = "bench_parallel_scaling";

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::vector<std::uint8_t> RandomFile(std::size_t size) {
  Rng rng(0xB0D15Cull);
  std::vector<std::uint8_t> data(size);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.Uniform(256));
  return data;
}

// Part 1: DisperseBatch over 64 MiB of stripes (m=8, n=16, 4 KiB blocks).
bool ScaleDisperse(const std::vector<unsigned>& thread_counts) {
  const std::uint32_t m = 8;
  const std::size_t block_size = 4096;
  const std::size_t stripe_bytes = m * block_size;           // 32 KiB.
  const std::size_t stripe_count = 2048;                     // 64 MiB total.
  auto engine = ida::Dispersal::Create(m, 2 * m, block_size);
  if (!engine.ok()) return false;
  const auto file = RandomFile(stripe_count * stripe_bytes);

  const auto t0 = std::chrono::steady_clock::now();
  auto serial = engine->DisperseBatch(0, file);
  const double serial_s = Seconds(t0);
  if (!serial.ok()) return false;
  const double mib = static_cast<double>(file.size()) / (1024.0 * 1024.0);

  std::printf("\n--- DisperseBatch, %.0f MiB (%zu stripes of %zu KiB) ---\n",
              mib, stripe_count, stripe_bytes / 1024);
  std::printf("%-9s %-12s %-10s %-10s\n", "threads", "MiB/s", "speedup",
              "identical");
  std::printf("%-9u %-12.1f %-10.2f %-10s\n", 1u, mib / serial_s, 1.0, "ref");
  benchutil::EmitJson(kBench, "disperse_MiBps", mib / serial_s, 1);

  bool identical = true;
  for (unsigned threads : thread_counts) {
    if (threads == 1) continue;
    runtime::ThreadPool pool(threads);
    const auto t1 = std::chrono::steady_clock::now();
    auto parallel = engine->DisperseBatch(0, file, 0, &pool);
    const double parallel_s = Seconds(t1);
    if (!parallel.ok()) return false;
    const bool same = *parallel == *serial;
    identical &= same;
    std::printf("%-9u %-12.1f %-10.2f %-10s\n", threads, mib / parallel_s,
                serial_s / parallel_s, same ? "yes" : "NO");
    benchutil::EmitJson(kBench, "disperse_MiBps", mib / parallel_s, threads);
    benchutil::EmitJson(kBench, "disperse_speedup", serial_s / parallel_s,
                        threads);
  }
  return identical;
}

bool SameMetrics(const SimulationMetrics& a, const SimulationMetrics& b) {
  if (a.per_file.size() != b.per_file.size()) return false;
  for (std::size_t f = 0; f < a.per_file.size(); ++f) {
    const FileMetrics& x = a.per_file[f];
    const FileMetrics& y = b.per_file[f];
    if (x.completed != y.completed || x.incomplete != y.incomplete ||
        x.missed_deadline != y.missed_deadline ||
        x.errors_observed != y.errors_observed ||
        x.latency.sum() != y.latency.sum() ||
        x.latency.variance() != y.latency.variance() ||
        x.latency.min() != y.latency.min() ||
        x.latency.max() != y.latency.max()) {
      return false;
    }
  }
  return true;
}

// Part 2: RunWorkload over >= 100k requests (6 files x 17k, 8% loss).
bool ScaleWorkload(const std::vector<unsigned>& thread_counts) {
  std::vector<FlatFileSpec> files;
  for (int i = 0; i < 6; ++i) {
    files.push_back({"F" + std::to_string(i), 8, 16, {96}});
  }
  auto program = BuildFlatProgram(files, FlatLayout::kSpread);
  if (!program.ok()) return false;
  BernoulliFaultModel faults(0.08, 4242);
  Simulator sim(*program, &faults, 200000);
  WorkloadConfig config;
  config.requests_per_file = 17000;  // 102k requests total.
  config.seed = 99;
  const double requests =
      static_cast<double>(config.requests_per_file) * 6.0;

  const auto t0 = std::chrono::steady_clock::now();
  auto serial = sim.RunWorkload(config);
  const double serial_s = Seconds(t0);
  if (!serial.ok()) return false;

  std::printf("\n--- RunWorkload, %.0fk requests (8%% loss) ---\n",
              requests / 1000.0);
  std::printf("%-9s %-12s %-10s %-10s\n", "threads", "kreq/s", "speedup",
              "identical");
  std::printf("%-9u %-12.1f %-10.2f %-10s\n", 1u,
              requests / serial_s / 1000.0, 1.0, "ref");
  benchutil::EmitJson(kBench, "workload_kreqps",
                      requests / serial_s / 1000.0, 1);

  bool identical = true;
  for (unsigned threads : thread_counts) {
    if (threads == 1) continue;
    runtime::ThreadPool pool(threads);
    const auto t1 = std::chrono::steady_clock::now();
    auto parallel = sim.RunWorkload(config, &pool);
    const double parallel_s = Seconds(t1);
    if (!parallel.ok()) return false;
    const bool same = SameMetrics(*serial, *parallel);
    identical &= same;
    std::printf("%-9u %-12.1f %-10.2f %-10s\n", threads,
                requests / parallel_s / 1000.0, serial_s / parallel_s,
                same ? "yes" : "NO");
    benchutil::EmitJson(kBench, "workload_kreqps",
                        requests / parallel_s / 1000.0, threads);
    benchutil::EmitJson(kBench, "workload_speedup", serial_s / parallel_s,
                        threads);
  }
  return identical;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned max_threads = benchutil::ThreadsFlag(argc, argv, 8);
  std::vector<unsigned> thread_counts;
  for (unsigned t = 1; t < max_threads; t *= 2) thread_counts.push_back(t);
  thread_counts.push_back(max_threads);  // Include non-power-of-two caps.

  std::printf("E16 / parallel scaling of DisperseBatch and RunWorkload\n");
  std::printf("hardware threads: %u (speedups are hardware-bound; "
              "identical-output checks are not)\n",
              runtime::ThreadPool::HardwareThreads());

  const bool disperse_ok = ScaleDisperse(thread_counts);
  const bool workload_ok = ScaleWorkload(thread_counts);
  const bool ok = disperse_ok && workload_ok;
  if (max_threads < 2) {
    // No parallel run happened; do not print a vacuous verification.
    std::printf("\ncorrectness: skipped (no multi-thread run at "
                "--threads %u)\n",
                max_threads);
  } else {
    std::printf("\ncorrectness (parallel output bit-identical to serial at "
                "every thread count): %s\n",
                ok ? "PASS" : "FAIL");
  }
  return ok ? 0 : 1;
}
