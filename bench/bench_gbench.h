// Google-benchmark glue shared by the gbench-based benches: console output
// plus one machine-readable JSON line per run (real time, and bytes/s
// where the run processed bytes), replacing BENCHMARK_MAIN().

#ifndef BDISK_BENCH_BENCH_GBENCH_H_
#define BDISK_BENCH_BENCH_GBENCH_H_

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_util.h"

namespace benchutil {

class JsonLineReporter : public benchmark::ConsoleReporter {
 public:
  /// `metric_prefix` (may be empty) is prepended to every metric name —
  /// benches whose kernels follow gf::Dispatch use it to tag lines with the
  /// active GF implementation, so one trajectory file can carry datapoints
  /// from several BDISK_GF_IMPL runs without colliding.
  JsonLineReporter(const char* bench_name, std::string metric_prefix)
      : bench_name_(bench_name), metric_prefix_(std::move(metric_prefix)) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      EmitJson(bench_name_,
               (metric_prefix_ + run.benchmark_name() + ":real_time_ns")
                   .c_str(),
               run.GetAdjustedRealTime(), 1);
      const auto bytes = run.counters.find("bytes_per_second");
      if (bytes != run.counters.end()) {
        EmitJson(bench_name_,
                 (metric_prefix_ + run.benchmark_name() + ":bytes_per_second")
                     .c_str(),
                 bytes->second, 1);
      }
    }
  }

 private:
  const char* bench_name_;
  std::string metric_prefix_;
};

/// Drop-in BENCHMARK_MAIN() body that reports through JsonLineReporter.
inline int RunGoogleBenchmarks(int argc, char** argv, const char* bench_name,
                               std::string metric_prefix = std::string()) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonLineReporter reporter(bench_name, std::move(metric_prefix));
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}

}  // namespace benchutil

#endif  // BDISK_BENCH_BENCH_GBENCH_H_
