// bench_net: token-bucket pacing accuracy on the real UDP data path.
//
// The broadcast server promises to hold the configured channel bandwidth
// (udp_server.h / rate_limiter.h document the ±5% contract); this bench
// MEASURES it and exits non-zero when any rate misses, so CI can gate on
// the claim instead of trusting the comment. Two layers are checked:
//
//  1. Virtual clock: drive TokenBucket::ReserveAt with a synthetic clock
//     and compare granted bytes against rate * elapsed. This is the
//     arithmetic itself — integer-nanosecond credit means the error must
//     stay within one datagram, far inside the gate.
//  2. Wall clock: serve a real broadcast program through a SocketSink to
//     a loopback socket at several rates and compare achieved wire
//     throughput (stats.bytes / stats.wall_ns) against the budget. The
//     primed-full bucket front-loads one burst, so short runs read a
//     fraction of a percent hot — the run length is sized to keep that
//     inside the gate with room to spare.
//
// Flags: --block-size SIZE (32KiB), --seconds S (1.0 per rate),
//        --tolerance-pct P (5.0), --threads N (reported).

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "bdisk/flat_builder.h"
#include "net/rate_limiter.h"
#include "net/udp_server.h"
#include "net/udp_socket.h"
#include "net/wire.h"
#include "runtime/flags.h"
#include "sim/server.h"

namespace {

namespace net = bdisk::net;
namespace broadcast = bdisk::broadcast;
namespace sim = bdisk::sim;
using bdisk::Rng;

// Granted-rate error (percent) of the pure ReserveAt arithmetic on a
// virtual clock: reserve `sends` datagrams back to back and compare the
// span the bucket stretched them over against the ideal transmission
// time. No sleeping, no jitter — this isolates the credit arithmetic.
double VirtualClockErrorPct(std::uint64_t rate, std::uint64_t datagram_bytes,
                            std::uint64_t sends) {
  net::TokenBucket bucket(rate, /*burst_bytes=*/datagram_bytes);
  const std::uint64_t t0 = 1'000'000;  // arbitrary epoch
  std::uint64_t granted_at = t0;
  for (std::uint64_t i = 0; i < sends; ++i) {
    granted_at = bucket.ReserveAt(granted_at, datagram_bytes);
  }
  // The primed bucket grants the first datagram at t0; the rest must be
  // spaced at rate. Ideal span: (sends - 1) datagrams of transmission.
  const double ideal_ns = static_cast<double>(sends - 1) *
                          static_cast<double>(datagram_bytes) * 1e9 /
                          static_cast<double>(rate);
  const double actual_ns = static_cast<double>(granted_at - t0);
  return 100.0 * std::abs(actual_ns - ideal_ns) / ideal_ns;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned threads = bdisk::runtime::ThreadsFlag(argc, argv, 1);
  const std::uint64_t block_size =
      bdisk::runtime::ByteSizeFlag(argc, argv, "block-size", 32 * 1024);
  const double seconds =
      bdisk::runtime::DoubleFlag(argc, argv, "seconds", 1.0);
  const double tolerance_pct =
      bdisk::runtime::DoubleFlag(argc, argv, "tolerance-pct", 5.0);

  // A dense single-file program: every slot carries a block, so the wire
  // stream is uniform datagrams of block_size + header.
  auto program = broadcast::BuildFlatProgram(
      {{"A", 5, 10, {}}}, broadcast::FlatLayout::kSpread);
  if (!program.ok()) {
    std::fprintf(stderr, "program: %s\n", program.status().message().c_str());
    return 1;
  }
  Rng rng(7);
  std::vector<std::uint8_t> bytes(5 * block_size);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.Uniform(256));
  auto server = sim::BroadcastServer::Create(*program, {bytes}, block_size);
  if (!server.ok()) {
    std::fprintf(stderr, "server: %s\n", server.status().message().c_str());
    return 1;
  }

  // A bound loopback receiver nobody reads: UDP makes dropping legal, and
  // the pacer's timing is what we are measuring, not delivery.
  auto recv_socket = net::UdpSocket::Bind(net::Endpoint{});
  if (!recv_socket.ok()) {
    std::fprintf(stderr, "bind: %s\n",
                 recv_socket.status().message().c_str());
    return 1;
  }
  auto send_socket = net::UdpSocket::Open();
  if (!send_socket.ok()) {
    std::fprintf(stderr, "open: %s\n",
                 send_socket.status().message().c_str());
    return 1;
  }
  net::Endpoint dest;
  dest.port = recv_socket->bound_port();

  const std::uint64_t datagram_bytes = net::kWireHeaderBytes + block_size;
  const double vclock_err =
      VirtualClockErrorPct(100'000'000, datagram_bytes, 100'000);
  benchutil::EmitJson("bench_net", "virtual_clock_error_pct", vclock_err,
                      threads);

  const std::uint64_t rates[] = {8ull << 20, 16ull << 20, 48ull << 20};
  bool gate_ok = vclock_err <= tolerance_pct;
  std::printf("%-14s %14s %14s %8s\n", "budget_B/s", "achieved_B/s",
              "datagrams", "err_pct");
  for (const std::uint64_t rate : rates) {
    net::UdpServerOptions options;
    options.bandwidth_bytes_per_sec = rate;
    options.horizon = static_cast<std::uint64_t>(
        seconds * static_cast<double>(rate) /
        static_cast<double>(datagram_bytes));
    if (options.horizon < 16) options.horizon = 16;
    net::SocketSink sink(&*send_socket, dest);
    auto stats = net::ServeBroadcast(&*server, &sink, options);
    if (!stats.ok()) {
      std::fprintf(stderr, "serve: %s\n", stats.status().message().c_str());
      return 1;
    }
    const double achieved = static_cast<double>(stats->bytes) * 1e9 /
                            static_cast<double>(stats->wall_ns);
    const double err_pct =
        100.0 * std::abs(achieved - static_cast<double>(rate)) /
        static_cast<double>(rate);
    std::printf("%-14" PRIu64 " %14.0f %14" PRIu64 " %8.3f\n", rate,
                achieved, stats->block_datagrams + stats->idle_datagrams,
                err_pct);
    char metric[64];
    std::snprintf(metric, sizeof(metric), "paced_error_pct_%" PRIu64 "MiB",
                  rate >> 20);
    benchutil::EmitJson("bench_net", metric, err_pct, threads);
    if (err_pct > tolerance_pct) gate_ok = false;
  }

  if (!gate_ok) {
    std::fprintf(stderr,
                 "FAIL: pacing error exceeded %.1f%% of the budget\n",
                 tolerance_pct);
    return 1;
  }
  std::printf("pacing held within %.1f%% at every rate\n", tolerance_pct);
  return 0;
}
