// AWACS mode-dependent redundancy (paper, Sections 1 and 2.2).
//
// "The fault-tolerant timely access of a data object (e.g. 'location of
// nearby aircrafts') could be critical in a given mode of operation (e.g.
// 'combat'), but less critical in a different mode (e.g. 'landing')."
//
// AIDA makes this a *bandwidth allocation* knob: the server disperses each
// object once to N blocks and, per mode, transmits only n in [m, N] of
// them. This example sets up per-mode redundancy profiles, rebuilds the
// broadcast program when the mode changes, and demonstrates — on the real
// byte-level data plane — that in combat mode the aircraft track survives
// losses that would stall it in landing mode.
//
// Build & run:  ./build/examples/awacs_modes

#include <cstdio>
#include <string>

#include "bdisk/delay_analysis.h"
#include "bdisk/flat_builder.h"
#include "ida/aida.h"
#include "sim/client.h"
#include "sim/server.h"

namespace {

using namespace bdisk;             // NOLINT
using namespace bdisk::broadcast;  // NOLINT

struct Object {
  const char* name;
  std::uint32_t m;            // Blocks needed to reconstruct.
  ida::RedundancyProfile profile;
};

BroadcastProgram BuildForMode(const std::vector<Object>& objects,
                              const std::string& mode) {
  std::vector<FlatFileSpec> files;
  for (const Object& o : objects) {
    files.push_back(
        {o.name, o.m, o.profile.BlocksForMode(mode), {}});
  }
  auto p = BuildFlatProgram(files, FlatLayout::kSpread);
  if (!p.ok()) {
    std::fprintf(stderr, "build failed: %s\n", p.status().ToString().c_str());
    std::exit(1);
  }
  return *p;
}

}  // namespace

int main() {
  // Aircraft tracks: 4 blocks, dispersed to at most 8. Terrain: 6 of 8.
  Object aircraft{"aircraft", 4, ida::RedundancyProfile(4, 8)};
  aircraft.profile.SetMode("combat", 8);   // Tolerate 4 lost blocks.
  aircraft.profile.SetMode("landing", 5);  // Tolerate 1.
  Object terrain{"terrain", 6, ida::RedundancyProfile(6, 8)};
  terrain.profile.SetMode("combat", 6);    // Scaled down: bandwidth for
  terrain.profile.SetMode("landing", 8);   // aircraft instead.

  const std::vector<Object> objects{aircraft, terrain};

  for (const std::string mode : {"combat", "landing"}) {
    const BroadcastProgram program = BuildForMode(objects, mode);
    std::printf("=== mode: %-8s period %llu slots ===\n", mode.c_str(),
                static_cast<unsigned long long>(program.period()));
    DelayAnalyzer analyzer(program);
    for (FileIndex f = 0; f < program.file_count(); ++f) {
      const auto& pf = program.files()[f];
      const std::uint32_t masked = pf.n - pf.m;
      auto d1 = analyzer.WorstCaseDelay(f, std::min(masked, 1u),
                                        ClientModel::kIda);
      std::printf("  %-9s n=%u (masks %u faults), worst delay after "
                  "1 fault: %llu slots\n",
                  pf.name.c_str(), pf.n, masked,
                  d1.ok() ? static_cast<unsigned long long>(*d1) : 0);
    }

    // Byte-level demonstration: lose 3 consecutive aircraft transmissions.
    constexpr std::size_t kBlockSize = 128;
    Rng rng(7);
    std::vector<std::vector<std::uint8_t>> contents;
    for (FileIndex f = 0; f < program.file_count(); ++f) {
      std::vector<std::uint8_t> data(program.files()[f].m * kBlockSize);
      for (auto& b : data) b = static_cast<std::uint8_t>(rng.Uniform(256));
      contents.push_back(std::move(data));
    }
    auto server = sim::BroadcastServer::Create(program, contents, kBlockSize);
    if (!server.ok()) return 1;

    std::unordered_set<std::uint64_t> dead;
    std::uint32_t injected = 0;
    for (std::uint64_t t = 0; injected < 3; ++t) {
      const auto tx = program.TransmissionAt(t);
      if (tx.has_value() && tx->file == 0) {
        dead.insert(t);
        ++injected;
      }
    }
    sim::SlotSetFaultModel faults(std::move(dead));
    auto session = sim::RunRetrievalSession(*server, &faults, 0, 0,
                                            20 * program.DataCycleLength());
    if (!session.ok()) return 1;
    std::printf("  aircraft retrieval with 3 lost blocks: %s in %llu slots "
                "(byte-exact: %s)\n\n",
                session->completed ? "reconstructed" : "NOT COMPLETED",
                static_cast<unsigned long long>(session->latency),
                session->completed && session->data == contents[0] ? "yes"
                                                                   : "no");
  }

  std::printf("reading: combat mode spends bandwidth on aircraft "
              "redundancy (n=8), so three lost blocks barely delay the "
              "track; landing mode (n=5) must wait for the rotation to "
              "bring replacement blocks around.\n");
  return 0;
}
