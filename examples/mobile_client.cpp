// A battery-limited mobile client (the paper's "wearable computers for
// soldiers in the battlefield"): no secondary storage, a small cache, and
// a radio that should doze whenever possible.
//
// This example composes three pieces of the library on one broadcast:
//   * AIDA dispersal   — block losses are masked by redundant coded blocks;
//   * (1,m) indexing   — the client dozes between index segments and its
//                        target's slots (tuning time ~ energy);
//   * PIX client cache — re-accesses of rarely-broadcast items are served
//                        locally.
//
// Build & run:  ./build/examples/mobile_client

#include <cstdio>

#include "bdisk.h"

int main() {
  using namespace bdisk;             // NOLINT
  using namespace bdisk::broadcast;  // NOLINT

  // The unit database: a handful of battlefield objects, AIDA-dispersed.
  std::vector<FlatFileSpec> files{
      {"threats", 4, 8, {}},      // Hot, critical.
      {"orders", 2, 4, {}},       // Hot.
      {"terrain", 8, 10, {}},     // Bulky, colder.
      {"logistics", 6, 8, {}},    // Cold.
  };
  auto base = BuildFlatProgram(files, FlatLayout::kSpread);
  if (!base.ok()) return 1;

  // Interleave 2 copies of a 2-slot index per period.
  auto indexed = BuildIndexedProgram(*base, {2, 2});
  if (!indexed.ok()) return 1;
  const BroadcastProgram& program = indexed->program;
  std::printf("broadcast: period %llu slots (%u index copies x %llu "
              "slots), data cycle %llu\n\n",
              static_cast<unsigned long long>(program.period()),
              indexed->options.replication,
              static_cast<unsigned long long>(indexed->options.index_slots),
              static_cast<unsigned long long>(program.DataCycleLength()));

  // Access pattern: Zipf over the four items, 2000 accesses.
  ZipfDistribution zipf(files.size(), 0.9);
  Rng rng(1917);
  sim::ClientCache cache(2, sim::CachePolicy::kPix);

  RunningStats latency;
  RunningStats tuning;
  std::uint64_t hits = 0;
  std::uint64_t now = 0;
  const int kAccesses = 2000;
  for (int k = 0; k < kAccesses; ++k) {
    const auto target =
        static_cast<FileIndex>(zipf.Sample(rng.UniformDouble()));
    now += 1 + rng.Uniform(program.period());
    if (cache.Lookup(target)) {
      ++hits;
      latency.Add(0.0);
      tuning.Add(0.0);
      continue;
    }
    auto cost = IndexedAccess(*indexed, target, now);
    if (!cost.ok()) return 1;
    latency.Add(static_cast<double>(cost->latency));
    tuning.Add(static_cast<double>(cost->tuning_time));
    now += cost->latency;
    const double freq = static_cast<double>(program.CountOf(target)) /
                        static_cast<double>(program.period());
    cache.Insert(target, zipf.ProbabilityOf(target), freq);
  }

  std::printf("accesses: %d, cache hits: %llu (%.1f%%)\n", kAccesses,
              static_cast<unsigned long long>(hits),
              100.0 * static_cast<double>(hits) / kAccesses);
  std::printf("mean latency: %.1f slots  (max %.0f)\n", latency.mean(),
              latency.max());
  std::printf("mean tuning time: %.1f slots  — the radio listens on %.1f%% "
              "of the latency window\n",
              tuning.mean(),
              100.0 * tuning.sum() / std::max(1.0, latency.sum()));

  // Contrast: the same accesses with the radio always on and no cache.
  RunningStats plain;
  now = 0;
  Rng rng2(1917);
  for (int k = 0; k < kAccesses; ++k) {
    const auto target =
        static_cast<FileIndex>(zipf.Sample(rng2.UniformDouble()));
    now += 1 + rng2.Uniform(program.period());
    auto cost = NonIndexedAccess(program, target, now);
    if (!cost.ok()) return 1;
    plain.Add(static_cast<double>(cost->tuning_time));
    now += cost->latency;
  }
  std::printf("\nwithout index or cache the radio would listen %.1f slots "
              "per access on average — %.0fx the energy.\n",
              plain.mean(), plain.mean() / std::max(1.0, tuning.mean()));
  return 0;
}
