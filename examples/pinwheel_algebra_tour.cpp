// A guided tour of the pinwheel algebra (paper, Section 4.2, Figure 8).
//
// Walks the rules R0-R5 and transformation rules TR1/TR2 on the paper's
// own examples, showing how a generalized broadcast-file condition
// bc(m, d⃗) is lowered to a *nice* conjunct of pinwheel conditions that a
// density-based scheduler accepts — and what each candidate costs in
// density.
//
// Build & run:  ./build/examples/pinwheel_algebra_tour

#include <cstdio>

#include "algebra/optimizer.h"
#include "algebra/rules.h"
#include "pinwheel/composite_scheduler.h"

namespace {

using namespace bdisk::algebra;  // NOLINT

void ShowConversion(const char* title, const BroadcastCondition& bc) {
  std::printf("--- %s: %s ---\n", title, bc.ToString().c_str());
  std::printf("equivalent conjunct (Eq. 3):");
  for (const PinwheelCondition& level : bc.ToPinwheelConjunct()) {
    std::printf(" %s", level.ToString().c_str());
  }
  std::printf("\ndensity lower bound: %.4f\n", bc.DensityLowerBound());
  auto conv = NiceConverter::Convert(bc);
  if (!conv.ok()) {
    std::printf("conversion failed: %s\n", conv.status().ToString().c_str());
    return;
  }
  for (std::size_t i = 0; i < conv->candidates.size(); ++i) {
    const auto& c = conv->candidates[i];
    std::printf("  %-8s density %.4f   %s%s\n", c.strategy.c_str(),
                c.density(), c.conjunct.ToString().c_str(),
                i == conv->best_index ? "   <== selected" : "");
  }
  std::printf("overhead over lower bound: %.1f%%\n\n",
              100.0 * (conv->OverheadRatio() - 1.0));
}

}  // namespace

int main() {
  std::printf("==== the rules of Figure 8 ====\n");
  const PinwheelCondition base{2, 5};
  std::printf("start from %s (density %.2f):\n", base.ToString().c_str(),
              base.density());
  std::printf("  R0 (weaken):      %s\n",
              RuleR0(base, 1, 2)->ToString().c_str());
  std::printf("  R1 (scale n=3):   %s\n", RuleR1(base, 3)->ToString().c_str());
  std::printf("  R2 (shrink x=1):  %s\n", RuleR2(base, 1)->ToString().c_str());
  std::printf("  R3 (single-unit): %s\n", RuleR3(base).ToString().c_str());
  std::printf("  R4 (base + helper pc(1,7)):      %s\n",
              RuleR4(base, {1, 7})->ToString().c_str());
  std::printf("  R5 (n=2, helper pc(1,10)):       %s\n",
              RuleR5(base, 2, {1, 10})->ToString().c_str());

  std::printf("\n==== the paper's worked conversions ====\n\n");
  ShowConversion("Example 2", {5, {100, 105, 110, 115, 120}});
  ShowConversion("Example 3", {6, {105, 110}});
  ShowConversion("Example 4", {4, {8, 9}});
  ShowConversion("Example 5", {2, {5, 6, 6}});
  ShowConversion("Example 6", {1, {2, 3}});

  std::printf("==== scheduling the converted system ====\n");
  const std::vector<BroadcastCondition> system{
      {5, {100, 105, 110, 115, 120}},  // Example 2.
      {6, {105, 110}},                 // Example 3.
      {2, {5, 6, 6}},                  // Example 5 — the dense one.
  };
  auto converted = ConvertSystem(system);
  if (!converted.ok()) {
    std::printf("system conversion failed\n");
    return 1;
  }
  std::printf("nice instance: %s  (total density %.4f)\n",
              converted->instance.ToString().c_str(),
              converted->total_density());
  bdisk::pinwheel::CompositeScheduler scheduler;
  auto schedule = scheduler.BuildSchedule(converted->instance);
  if (!schedule.ok()) {
    std::printf("scheduling failed: %s\n",
                schedule.status().ToString().c_str());
    return 1;
  }
  std::printf("scheduled with period %llu; task -> file map:",
              static_cast<unsigned long long>(schedule->period()));
  for (std::size_t v = 0; v < converted->virtual_to_file.size(); ++v) {
    std::printf(" %zu->F%u", v, converted->virtual_to_file[v]);
  }
  std::printf("\n");
  return 0;
}
