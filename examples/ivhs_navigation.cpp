// IVHS navigation scenario (the paper's Section 1 motivation).
//
// An Intelligent Vehicle Highway System backbone broadcasts traffic data
// to vehicles over a satellite downlink; vehicles have no meaningful
// uplink. Different items degrade differently under transmission faults,
// which is exactly the generalized model of Section 4: each file carries a
// latency *vector* d = [d(0), d(1), ..., d(r)] — the tolerable retrieval
// latency when 0, 1, ..., r blocks are lost.
//
// The example builds the program via the pinwheel algebra + scheduler
// portfolio, prints the per-file conversion the optimizer chose, checks
// the worst-case latencies analytically, and then runs a stochastic
// simulation over a bursty channel to show the real-time promises holding.
//
// Build & run:  ./build/examples/ivhs_navigation

#include <cstdio>

#include "bdisk/delay_analysis.h"
#include "bdisk/pinwheel_builder.h"
#include "pinwheel/composite_scheduler.h"
#include "sim/simulation.h"

int main() {
  using namespace bdisk::broadcast;  // NOLINT

  // Latency vectors in slots. "incidents" must arrive fast even with two
  // lost blocks; "map-tiles" may degrade gracefully.
  const std::vector<GeneralizedFileSpec> files{
      {"incidents", 2, {12, 14, 16}},   // Accidents / lane closures.
      {"congestion", 3, {36, 40}},      // Live congestion grid.
      {"reroutes", 2, {30, 34, 38}},    // Suggested detours.
      {"map-tiles", 8, {150, 170}},     // Base map refresh.
  };

  bdisk::pinwheel::CompositeScheduler scheduler;
  auto result = BuildGeneralizedProgram(files, scheduler);
  if (!result.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const BroadcastProgram& program = result->program;

  std::printf("=== IVHS broadcast disk ===\n");
  std::printf("period %llu slots, data cycle %llu, scheduled density %.3f\n\n",
              static_cast<unsigned long long>(program.period()),
              static_cast<unsigned long long>(program.DataCycleLength()),
              result->scheduled_density);

  std::printf("per-file pinwheel-algebra conversions:\n");
  for (std::size_t f = 0; f < result->conversions.size(); ++f) {
    const auto& conv = result->conversions[f];
    std::printf("  %-12s %-22s -> %-10s density %.4f (lower bound %.4f)\n",
                files[f].name.c_str(), conv.bc.ToString().c_str(),
                conv.best().strategy.c_str(), conv.best().density(),
                conv.density_lower_bound);
  }

  std::printf("\nanalytic worst-case latency vs promise (slots):\n");
  DelayAnalyzer analyzer(program);
  for (FileIndex f = 0; f < program.file_count(); ++f) {
    const auto& pf = program.files()[f];
    std::printf("  %-12s", pf.name.c_str());
    for (std::size_t j = 0; j < pf.latency_slots.size(); ++j) {
      auto latency = analyzer.WorstCaseLatency(
          f, static_cast<std::uint32_t>(j), ClientModel::kIda);
      if (!latency.ok()) return 1;
      std::printf("  %llu faults: %llu <= %llu %s",
                  static_cast<unsigned long long>(j),
                  static_cast<unsigned long long>(*latency),
                  static_cast<unsigned long long>(pf.latency_slots[j]),
                  *latency <= pf.latency_slots[j] ? "ok" : "VIOLATED");
    }
    std::printf("\n");
  }

  // Stochastic check on a bursty channel at 5% loss.
  bdisk::sim::GilbertElliottFaultModel::Params params;
  params.p_bad_to_good = 0.25;
  params.p_good_to_bad = 0.05 * params.p_bad_to_good / 0.95;
  bdisk::sim::GilbertElliottFaultModel faults(params, 2026);
  bdisk::sim::Simulator sim(program, &faults,
                            400 * program.DataCycleLength());
  bdisk::sim::WorkloadConfig config;
  config.requests_per_file = 4000;
  auto metrics = sim.RunWorkload(config);
  if (!metrics.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n",
                 metrics.status().ToString().c_str());
    return 1;
  }
  std::printf("\nsimulation on a bursty channel (~%.1f%% stationary loss), "
              "4000 retrievals per file:\n%s",
              100.0 * faults.StationaryLossRate(),
              metrics->ToString().c_str());
  std::printf("overall deadline miss rate: %.4f\n",
              metrics->OverallMissRate());
  return 0;
}
