// Quickstart: build a real-time fault-tolerant broadcast program in ~40
// lines.
//
//   1. Describe your files (size, latency, faults to tolerate).
//   2. Ask the bandwidth planner how fast the channel must be (Eq. (2)).
//   3. Build the program with the scheduler portfolio.
//   4. Inspect it: every latency constraint is verified exactly.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "bdisk/bandwidth.h"
#include "bdisk/pinwheel_builder.h"
#include "pinwheel/composite_scheduler.h"

int main() {
  using namespace bdisk::broadcast;  // NOLINT

  // 1. Three database items, sizes in blocks, latencies in seconds,
  //    fault tolerance in blocks lost per retrieval.
  const std::vector<FileSpec> files{
      {"sensor-readings", 2, 0.5, 1},   // Small, urgent, 1 fault masked.
      {"route-updates", 6, 2.0, 1},     // Medium.
      {"map-tiles", 12, 8.0, 0},        // Bulky, relaxed, best effort.
  };

  // 2. Bandwidth planning (paper, Eq. (2)).
  auto lower = BandwidthPlanner::LowerBound(files);
  auto bandwidth = BandwidthPlanner::SufficientBandwidth(files);
  if (!lower.ok() || !bandwidth.ok()) {
    std::fprintf(stderr, "planning failed\n");
    return 1;
  }
  std::printf("bandwidth lower bound: %.2f blocks/s; sufficient: %llu\n",
              *lower, static_cast<unsigned long long>(*bandwidth));

  // 3. Build the broadcast program.
  bdisk::pinwheel::CompositeScheduler scheduler;
  auto result = BuildProgram(files, *bandwidth, scheduler);
  if (!result.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const BroadcastProgram& program = result->program;

  // 4. Inspect.
  std::printf("period: %llu slots, data cycle: %llu slots, utilization "
              "%.0f%%\n",
              static_cast<unsigned long long>(program.period()),
              static_cast<unsigned long long>(program.DataCycleLength()),
              100.0 * program.Utilization());
  for (FileIndex f = 0; f < program.file_count(); ++f) {
    std::printf("  %-16s m=%u n=%u slots/period=%llu max gap=%llu\n",
                program.files()[f].name.c_str(), program.files()[f].m,
                program.files()[f].n,
                static_cast<unsigned long long>(program.CountOf(f)),
                static_cast<unsigned long long>(program.MaxGapOf(f)));
  }
  std::printf("\nfirst period of the program:\n  %s\n",
              program.ToString(1).c_str());
  std::printf("\nall latency constraints verified: %s\n",
              program.VerifyBroadcastConditions().ok() ? "yes" : "NO");
  return 0;
}
