#include "pinwheel/composite_scheduler.h"

#include "pinwheel/chain_schedulers.h"
#include "pinwheel/exact_scheduler.h"
#include "pinwheel/greedy_scheduler.h"

namespace bdisk::pinwheel {

CompositeScheduler::CompositeScheduler(CompositeSchedulerOptions options)
    : options_(options) {
  schedulers_.push_back(std::make_unique<SxyScheduler>());
  schedulers_.push_back(std::make_unique<SxScheduler>());
  schedulers_.push_back(std::make_unique<SaScheduler>());
  schedulers_.push_back(std::make_unique<GreedyScheduler>());
  ExactSchedulerOptions exact_options;
  exact_options.max_states = options_.exact_max_states;
  schedulers_.push_back(std::make_unique<ExactScheduler>(exact_options));
  gate_exact_ = true;
}

CompositeScheduler::CompositeScheduler(
    std::vector<std::unique_ptr<Scheduler>> schedulers)
    : schedulers_(std::move(schedulers)) {}

Result<Schedule> CompositeScheduler::BuildSchedule(
    const Instance& instance) const {
  std::string failures;
  for (std::size_t i = 0; i < schedulers_.size(); ++i) {
    const auto& s = schedulers_[i];
    if (gate_exact_ && i + 1 == schedulers_.size()) {
      // Gate the complete search behind a crude state-space estimate.
      double bound = 1.0;
      for (const Task& t : instance.tasks()) {
        for (std::uint64_t k = 0; k < t.a && bound <= options_.exact_state_bound;
             ++k) {
          bound *= static_cast<double>(t.b);
        }
        if (bound > options_.exact_state_bound) break;
      }
      if (bound > options_.exact_state_bound) break;
    }
    Result<Schedule> r = s->BuildSchedule(instance);
    if (r.ok()) return r;
    if (r.status().IsInternal()) return r;  // Library bug: surface, don't mask.
    if (!failures.empty()) failures += "; ";
    failures += s->name() + ": " + r.status().message();
  }
  return Status::Infeasible("Composite: all schedulers failed [" + failures +
                            "]");
}

}  // namespace bdisk::pinwheel
