/// \file composite_scheduler.h
/// \brief Portfolio scheduler: tries a sequence of schedulers and returns
/// the first verified schedule.
///
/// The default portfolio orders the specialization-based schedulers first
/// (their residue-class schedules spread each task's slots evenly, which
/// minimizes the broadcast-disk inter-block gap Delta), then the greedy
/// heuristic, then — for small instances — the complete search.

#ifndef BDISK_PINWHEEL_COMPOSITE_SCHEDULER_H_
#define BDISK_PINWHEEL_COMPOSITE_SCHEDULER_H_

#include <memory>
#include <string>
#include <vector>

#include "pinwheel/scheduler.h"

namespace bdisk::pinwheel {

/// \brief Options for the default portfolio.
struct CompositeSchedulerOptions {
  /// Exact search is attempted only if the product of the unit-reduced
  /// windows (a crude state-space bound) is at most this value.
  double exact_state_bound = 1e6;
  /// State budget handed to the exact search when attempted.
  std::size_t exact_max_states = 1u << 20;
};

/// \brief Tries Sxy, Sx, Sa, Greedy, then (small instances) Exact.
class CompositeScheduler : public Scheduler {
 public:
  explicit CompositeScheduler(CompositeSchedulerOptions options = {});

  /// Builds a portfolio from an explicit scheduler list (takes ownership).
  explicit CompositeScheduler(
      std::vector<std::unique_ptr<Scheduler>> schedulers);

  std::string name() const override { return "Composite"; }
  double guaranteed_density() const override { return 0.5; }
  Result<Schedule> BuildSchedule(const Instance& instance) const override;

 private:
  CompositeSchedulerOptions options_;
  std::vector<std::unique_ptr<Scheduler>> schedulers_;
  bool gate_exact_ = false;  // True when the last entry is the exact search.
};

}  // namespace bdisk::pinwheel

#endif  // BDISK_PINWHEEL_COMPOSITE_SCHEDULER_H_
