#include "pinwheel/task.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "common/stats.h"

namespace bdisk::pinwheel {

std::string Task::ToString() const {
  std::ostringstream oss;
  oss << "(" << id << ", " << a << ", " << b << ")";
  return oss.str();
}

Result<Instance> Instance::Create(std::vector<Task> tasks) {
  std::unordered_set<TaskId> ids;
  ids.reserve(tasks.size());
  for (const Task& t : tasks) {
    if (t.a == 0) {
      return Status::InvalidArgument("Task " + t.ToString() +
                                     ": requirement a must be positive");
    }
    if (t.b == 0) {
      return Status::InvalidArgument("Task " + t.ToString() +
                                     ": window b must be positive");
    }
    if (t.a > t.b) {
      return Status::InvalidArgument("Task " + t.ToString() +
                                     ": requirement a exceeds window b");
    }
    if (!ids.insert(t.id).second) {
      return Status::InvalidArgument(
          "Duplicate task id " + std::to_string(t.id) +
          "; conjuncts of conditions on one task must be lowered to nice "
          "form first (see algebra::NiceConverter)");
    }
  }
  return Instance(std::move(tasks));
}

double Instance::density() const {
  double d = 0.0;
  for (const Task& t : tasks_) d += t.density();
  return d;
}

std::uint64_t Instance::WindowLcm() const {
  std::uint64_t l = 1;
  for (const Task& t : tasks_) l = LcmCapped(l, t.b);
  return l;
}

std::uint64_t Instance::MaxWindow() const {
  std::uint64_t m = 0;
  for (const Task& t : tasks_) m = std::max(m, t.b);
  return m;
}

Result<Task> Instance::FindTask(TaskId id) const {
  for (const Task& t : tasks_) {
    if (t.id == id) return t;
  }
  return Status::NotFound("No task with id " + std::to_string(id));
}

std::string Instance::ToString() const {
  std::ostringstream oss;
  oss << "{";
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (i > 0) oss << ", ";
    oss << tasks_[i].ToString();
  }
  oss << "}";
  return oss.str();
}

}  // namespace bdisk::pinwheel
