/// \file verifier.h
/// \brief Exhaustive verification of pinwheel conditions over a cyclic
/// schedule.
///
/// Every scheduler in this library is allowed to be heuristic; the verifier
/// is the ground truth. A condition pc(i, a, b) holds for a periodic
/// schedule iff *every* window of b consecutive slots of the infinite
/// repetition contains at least a slots of task i; by periodicity it
/// suffices to check the `period` distinct window start offsets, which the
/// verifier does exactly (no sampling).

#ifndef BDISK_PINWHEEL_VERIFIER_H_
#define BDISK_PINWHEEL_VERIFIER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "pinwheel/schedule.h"
#include "pinwheel/task.h"

namespace bdisk::pinwheel {

/// \brief Outcome of checking a single pinwheel condition.
struct ConditionCheck {
  TaskId task = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  /// Minimum occurrence count over all windows of length b.
  std::uint64_t min_count = 0;
  /// A window start offset achieving min_count.
  std::uint64_t worst_start = 0;
  /// True iff min_count >= a.
  bool satisfied = false;

  std::string ToString() const;
};

/// \brief Schedule verifier (stateless; all methods static).
class Verifier {
 public:
  /// Minimum number of occurrences of `id` over all windows of `window`
  /// consecutive slots of the infinite repetition of `schedule`.
  /// `worst_start`, if non-null, receives a start offset achieving the
  /// minimum. `window` must be positive.
  static std::uint64_t MinWindowCount(const Schedule& schedule, TaskId id,
                                      std::uint64_t window,
                                      std::uint64_t* worst_start = nullptr);

  /// Checks pc(id, a, b) against the schedule.
  static ConditionCheck CheckCondition(const Schedule& schedule, TaskId id,
                                       std::uint64_t a, std::uint64_t b);

  /// Checks every task of `instance` against the schedule. OK iff all
  /// conditions hold; otherwise Infeasible naming the first violated
  /// condition.
  static Status Verify(const Schedule& schedule, const Instance& instance);

  /// Like Verify but returns all per-condition results (for reporting).
  static std::vector<ConditionCheck> CheckAll(const Schedule& schedule,
                                              const Instance& instance);
};

}  // namespace bdisk::pinwheel

#endif  // BDISK_PINWHEEL_VERIFIER_H_
