/// \file scheduler.h
/// \brief Scheduler interface for pinwheel task systems.
///
/// All schedulers verify their output against the *original* instance with
/// pinwheel::Verifier before returning; a returned schedule is therefore
/// always correct, and a Status of Infeasible means only that the particular
/// scheduler could not place the instance (the instance itself may still be
/// feasible — pinwheel scheduling is conjectured NP-hard in general).

#ifndef BDISK_PINWHEEL_SCHEDULER_H_
#define BDISK_PINWHEEL_SCHEDULER_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "pinwheel/schedule.h"
#include "pinwheel/task.h"

namespace bdisk::pinwheel {

/// \brief Abstract pinwheel scheduler.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Human-readable scheduler name ("Sa", "Sx", ...).
  virtual std::string name() const = 0;

  /// \brief Worst-case density up to which this scheduler is *guaranteed*
  /// to succeed (0 if best-effort only). E.g. 0.5 for Sa on single-unit
  /// instances.
  virtual double guaranteed_density() const = 0;

  /// Builds and verifies a schedule for `instance`.
  virtual Result<Schedule> BuildSchedule(const Instance& instance) const = 0;

  /// Verifies `schedule` against `instance`; wraps violations as Internal
  /// (a scheduler that emits an invalid schedule has a bug; heuristics must
  /// detect infeasibility *before* emitting).
  static Result<Schedule> VerifyAndReturn(Schedule schedule,
                                          const Instance& instance,
                                          const std::string& scheduler_name);
};

}  // namespace bdisk::pinwheel

#endif  // BDISK_PINWHEEL_SCHEDULER_H_
