#include "pinwheel/chain_schedulers.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <optional>
#include <vector>

#include "pinwheel/chain_allocator.h"
#include "pinwheel/specialization.h"

namespace bdisk::pinwheel {

namespace {

/// Specialization function: maps a window b to the largest admissible
/// window <= b in the scheduler's window set, or nullopt if none exists.
using SpecFn = std::function<std::optional<std::uint64_t>(std::uint64_t)>;

/// Picks the cheaper sound encoding (unit vs spread; see header) of task
/// `t` under the specialization `spec`. Returns nullopt if neither fits.
std::optional<ClassRequest> EncodeTask(const Task& t, const SpecFn& spec) {
  std::optional<ClassRequest> best;
  double best_density = 0.0;

  const std::uint64_t unit_window = t.b / t.a;  // floor; >= 1 since b >= a.
  if (std::optional<std::uint64_t> w = spec(unit_window)) {
    best = ClassRequest{t.id, *w, 1};
    best_density = 1.0 / static_cast<double>(*w);
  }
  if (std::optional<std::uint64_t> w = spec(t.b)) {
    const double d = static_cast<double>(t.a) / static_cast<double>(*w);
    if (!best.has_value() || d < best_density) {
      best = ClassRequest{t.id, *w, t.a};
      best_density = d;
    }
  }
  return best;
}

/// Encodes the whole instance; returns the requests and their total density,
/// or nullopt if some task cannot be specialized or the density exceeds 1.
std::optional<std::pair<std::vector<ClassRequest>, double>> EncodeInstance(
    const Instance& instance, const SpecFn& spec) {
  std::vector<ClassRequest> requests;
  requests.reserve(instance.size());
  double density = 0.0;
  for (const Task& t : instance.tasks()) {
    std::optional<ClassRequest> r = EncodeTask(t, spec);
    if (!r.has_value()) return std::nullopt;
    density += static_cast<double>(r->count) / static_cast<double>(r->period);
    if (density > 1.0 + 1e-12) return std::nullopt;
    requests.push_back(*r);
  }
  return std::make_pair(std::move(requests), density);
}

/// Allocates the requests and materializes + verifies the schedule. Chain
/// period sets succeed under the default policy whenever density <= 1;
/// non-chain sets (Sxy) are policy-sensitive, so every variant is tried.
Result<Schedule> Realize(const Instance& instance,
                         std::vector<ClassRequest> requests,
                         std::uint64_t max_period, const std::string& name) {
  Status last = Status::Infeasible(name + ": allocation failed");
  for (const AllocationPolicy& policy : AllocationPolicy::AllPolicies()) {
    auto assignments = ChainAllocator::Allocate(requests, policy);
    if (!assignments.ok()) {
      last = assignments.status();
      continue;
    }
    auto schedule = ChainAllocator::ToSchedule(*assignments, max_period);
    if (!schedule.ok()) {
      last = schedule.status();
      continue;
    }
    // Verification failure here is a library bug for chain schedulers (the
    // encodings are sound by construction), hence Internal via the base
    // hook.
    return Scheduler::VerifyAndReturn(std::move(*schedule), instance, name);
  }
  return last;
}

/// Shared driver for Sx and Sxy: enumerate candidate bases, order by
/// encoded density, attempt allocation until one succeeds.
Result<Schedule> ScheduleWithBases(
    const Instance& instance, const std::vector<std::uint64_t>& bases,
    const std::function<SpecFn(std::uint64_t)>& spec_for_base,
    const ChainSchedulerOptions& options, const std::string& name) {
  if (instance.empty()) {
    return Status::InvalidArgument(name + ": empty instance");
  }
  struct Candidate {
    std::uint64_t base;
    double density;
    std::vector<ClassRequest> requests;
  };
  std::vector<Candidate> candidates;
  for (std::uint64_t x : bases) {
    auto encoded = EncodeInstance(instance, spec_for_base(x));
    if (!encoded.has_value()) continue;
    candidates.push_back(Candidate{x, encoded->second,
                                   std::move(encoded->first)});
  }
  if (candidates.empty()) {
    return Status::Infeasible(name + ": no base specializes " +
                              instance.ToString() + " within density 1");
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.density < b.density;
                   });
  if (candidates.size() > options.max_candidates) {
    candidates.resize(options.max_candidates);
  }
  Status last = Status::Infeasible(name + ": all candidate bases failed");
  for (Candidate& c : candidates) {
    Result<Schedule> r =
        Realize(instance, std::move(c.requests), options.max_period, name);
    if (r.ok()) return r;
    last = r.status();
  }
  return Status::Infeasible(name + ": could not schedule " +
                            instance.ToString() + " (last: " + last.message() +
                            ")");
}

}  // namespace

Result<Schedule> SaScheduler::BuildSchedule(const Instance& instance) const {
  const auto spec = [](std::uint64_t b) -> std::optional<std::uint64_t> {
    if (b == 0) return std::nullopt;
    return LargestPowerOfTwoAtMost(b);
  };
  const auto spec_for_base = [&spec](std::uint64_t) { return SpecFn(spec); };
  return ScheduleWithBases(instance, {1}, spec_for_base, options_, name());
}

Result<Schedule> SxScheduler::BuildSchedule(const Instance& instance) const {
  std::vector<std::uint64_t> windows;
  for (const Task& t : instance.tasks()) {
    windows.push_back(t.b);
    windows.push_back(t.b / t.a);
  }
  const auto spec_for_base = [](std::uint64_t x) {
    return SpecFn([x](std::uint64_t b) { return LargestChainValueAtMost(x, b); });
  };
  return ScheduleWithBases(instance, ChainBaseCandidates(windows),
                           spec_for_base, options_, name());
}

Result<Schedule> SxyScheduler::BuildSchedule(const Instance& instance) const {
  std::vector<std::uint64_t> windows;
  for (const Task& t : instance.tasks()) {
    windows.push_back(t.b);
    windows.push_back(t.b / t.a);
  }
  const auto spec_for_base = [](std::uint64_t x) {
    return SpecFn([x](std::uint64_t b) { return LargestSmoothValueAtMost(x, b); });
  };
  return ScheduleWithBases(instance, SmoothBaseCandidates(windows),
                           spec_for_base, options_, name());
}

}  // namespace bdisk::pinwheel
