#include "pinwheel/schedule.h"

#include <sstream>

namespace bdisk::pinwheel {

Result<Schedule> Schedule::FromCycle(std::vector<TaskId> cycle) {
  if (cycle.empty()) {
    return Status::InvalidArgument("Schedule: cycle must be non-empty");
  }
  return Schedule(std::move(cycle));
}

std::vector<std::uint64_t> Schedule::OccurrencesOf(TaskId id) const {
  std::vector<std::uint64_t> out;
  for (std::uint64_t t = 0; t < cycle_.size(); ++t) {
    if (cycle_[t] == id) out.push_back(t);
  }
  return out;
}

std::uint64_t Schedule::CountOf(TaskId id) const {
  std::uint64_t n = 0;
  for (TaskId s : cycle_) {
    if (s == id) ++n;
  }
  return n;
}

double Schedule::Utilization() const {
  if (cycle_.empty()) return 0.0;
  return 1.0 - static_cast<double>(IdleCount()) /
                   static_cast<double>(cycle_.size());
}

Result<std::uint64_t> Schedule::MaxGapOf(TaskId id) const {
  const std::vector<std::uint64_t> occ = OccurrencesOf(id);
  if (occ.empty()) {
    return Status::NotFound("MaxGapOf: task " + std::to_string(id) +
                            " never appears in the schedule");
  }
  std::uint64_t max_gap = 0;
  for (std::size_t i = 0; i < occ.size(); ++i) {
    const std::uint64_t next =
        i + 1 < occ.size() ? occ[i + 1] : occ[0] + period();
    max_gap = std::max(max_gap, next - occ[i]);
  }
  return max_gap;
}

std::string Schedule::ToString() const {
  std::ostringstream oss;
  for (std::size_t i = 0; i < cycle_.size(); ++i) {
    if (i > 0) oss << ", ";
    if (cycle_[i] == kIdle) {
      oss << "*";
    } else {
      oss << cycle_[i];
    }
  }
  return oss.str();
}

}  // namespace bdisk::pinwheel
