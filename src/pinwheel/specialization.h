/// \file specialization.h
/// \brief Window-size specialization helpers shared by the chain-based
/// schedulers (Holte et al. [19]; Chan & Chin [12, 13]).
///
/// *Specializing* a window b means replacing it by a smaller window b' <= b
/// drawn from a structured set; by rule R0 of the paper's pinwheel algebra,
/// any schedule for the specialized instance also satisfies the original.
/// The structured sets used here:
///
/// * powers of two {2^j}                      — scheduler Sa,
/// * a single geometric chain {x * 2^j}       — scheduler Sx,
/// * 3-smooth multiples of a base {x 2^j 3^k} — scheduler Sxy
///   (our reconstruction of the double-integer reduction idea).

#ifndef BDISK_PINWHEEL_SPECIALIZATION_H_
#define BDISK_PINWHEEL_SPECIALIZATION_H_

#include <cstdint>
#include <optional>
#include <vector>

namespace bdisk::pinwheel {

/// Largest power of two <= b (b >= 1).
std::uint64_t LargestPowerOfTwoAtMost(std::uint64_t b);

/// Largest value of the form x * 2^j (j >= 0) that is <= b, or nullopt if
/// x > b. Requires x >= 1.
std::optional<std::uint64_t> LargestChainValueAtMost(std::uint64_t x,
                                                     std::uint64_t b);

/// Largest value of the form x * 2^j * 3^k (j, k >= 0) that is <= b, or
/// nullopt if x > b. Requires x >= 1.
std::optional<std::uint64_t> LargestSmoothValueAtMost(std::uint64_t x,
                                                      std::uint64_t b);

/// \brief Candidate bases x for chain specialization of the given windows:
/// every value floor(b_i / 2^j) down to 1, deduplicated and sorted.
///
/// The optimal base for the {x * 2^j} specialization of a finite window set
/// is always of this form (lowering x between two candidates changes no
/// specialized window).
std::vector<std::uint64_t> ChainBaseCandidates(
    const std::vector<std::uint64_t>& windows);

/// \brief Candidate bases for the 3-smooth specialization: every value
/// floor(b_i / (2^j 3^k)), deduplicated and sorted.
std::vector<std::uint64_t> SmoothBaseCandidates(
    const std::vector<std::uint64_t>& windows);

}  // namespace bdisk::pinwheel

#endif  // BDISK_PINWHEEL_SPECIALIZATION_H_
