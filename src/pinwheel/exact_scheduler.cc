#include "pinwheel/exact_scheduler.h"

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/check.h"

namespace bdisk::pinwheel {

namespace {

using State = std::vector<std::uint32_t>;

struct StateHash {
  std::size_t operator()(const State& v) const {
    std::size_t h = 1469598103934665603ULL;
    for (std::uint32_t x : v) {
      h ^= x;
      h *= 1099511628211ULL;
    }
    return h;
  }
};

struct SubTask {
  TaskId parent;
  std::uint32_t window;
};

/// DFS frame: the state, and the ordered choices not yet tried.
struct Frame {
  State state;
  std::vector<std::uint32_t> choices;  // Sub-task indices, most urgent first.
  std::size_t next_choice = 0;
};

/// Search outcome: the cyclic sequence of sub-task picks, if feasible.
struct SearchResult {
  bool feasible = false;
  bool budget_exhausted = false;
  std::vector<std::uint32_t> cycle;  // Sub-task indices.
};

/// Ordered candidate choices from `state`: if any counter is 1 those tasks
/// are forced (two or more forced tasks -> dead end, empty choice list);
/// otherwise all sub-tasks, most urgent first. Among sub-tasks identical in
/// (parent, window), only the most urgent representative is kept (serving a
/// less urgent clone is dominated).
std::vector<std::uint32_t> OrderedChoices(const std::vector<SubTask>& subs,
                                          const State& state) {
  std::uint32_t forced_count = 0;
  for (std::uint32_t c : state) {
    if (c == 1) ++forced_count;
  }
  if (forced_count > 1) return {};  // Two deadlines now: unavoidable miss.

  std::vector<std::uint32_t> order;
  order.reserve(state.size());
  if (forced_count == 1) {
    for (std::uint32_t j = 0; j < state.size(); ++j) {
      if (state[j] == 1) {
        order.push_back(j);
        break;
      }
    }
    return order;
  }
  for (std::uint32_t j = 0; j < state.size(); ++j) {
    // Symmetry breaking: skip clones that are not the most urgent of their
    // (parent, window) group.
    bool dominated = false;
    for (std::uint32_t k = 0; k < state.size(); ++k) {
      if (k == j) continue;
      if (subs[k].parent == subs[j].parent &&
          subs[k].window == subs[j].window &&
          (state[k] < state[j] || (state[k] == state[j] && k < j))) {
        dominated = true;
        break;
      }
    }
    if (!dominated) order.push_back(j);
  }
  std::sort(order.begin(), order.end(),
            [&state](std::uint32_t a, std::uint32_t b) {
              return state[a] < state[b];
            });
  return order;
}

/// Applies choice `pick` to `state`, or returns nullopt on a deadline miss.
std::optional<State> Step(const std::vector<SubTask>& subs, const State& state,
                          std::uint32_t pick) {
  State next = state;
  for (std::uint32_t j = 0; j < next.size(); ++j) {
    if (j == pick) {
      next[j] = subs[j].window;
    } else {
      if (next[j] == 1) return std::nullopt;
      --next[j];
    }
  }
  return next;
}

SearchResult Search(const std::vector<SubTask>& subs, std::size_t max_states) {
  SearchResult result;

  State initial(subs.size());
  for (std::size_t j = 0; j < subs.size(); ++j) initial[j] = subs[j].window;

  std::unordered_set<State, StateHash> dead;
  std::unordered_map<State, std::size_t, StateHash> on_path;  // state -> depth
  std::vector<Frame> stack;
  std::vector<std::uint32_t> picks;  // picks[d] = choice taken from depth d.

  stack.push_back(Frame{initial, OrderedChoices(subs, initial), 0});
  on_path.emplace(initial, 0);
  picks.push_back(0);
  std::size_t states_seen = 1;

  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next_choice >= top.choices.size()) {
      // Exhausted: this state cannot reach a cycle.
      dead.insert(top.state);
      on_path.erase(top.state);
      stack.pop_back();
      picks.pop_back();
      continue;
    }
    const std::uint32_t pick = top.choices[top.next_choice++];
    std::optional<State> next = Step(subs, top.state, pick);
    if (!next.has_value()) continue;
    picks.back() = pick;

    auto path_it = on_path.find(*next);
    if (path_it != on_path.end()) {
      // Cycle: picks from depth path_it->second to the top, inclusive.
      result.feasible = true;
      result.cycle.assign(picks.begin() +
                              static_cast<std::ptrdiff_t>(path_it->second),
                          picks.end());
      return result;
    }
    if (dead.count(*next) != 0) continue;
    if (states_seen >= max_states) {
      result.budget_exhausted = true;
      return result;
    }
    ++states_seen;
    std::vector<std::uint32_t> choices = OrderedChoices(subs, *next);
    on_path.emplace(*next, stack.size());
    stack.push_back(Frame{std::move(*next), std::move(choices), 0});
    picks.push_back(0);
  }
  return result;  // Fully explored, no cycle: infeasible.
}

// Splits (a, b) into a unit sub-tasks of window b. Lossless: pc(a, b) holds
// iff the task's slots can be dealt round-robin to a sub-tasks each served
// once per b-window (consecutive services t_k and t_{k+a} are at most b
// apart, else the window starting just after t_k holds only a - 1
// services). The search over the split system is therefore complete for
// arbitrary instances, not just single-unit ones.
std::vector<SubTask> SplitToUnits(const Instance& instance) {
  std::vector<SubTask> subs;
  for (const Task& t : instance.tasks()) {
    for (std::uint64_t k = 0; k < t.a; ++k) {
      subs.push_back(SubTask{t.id, static_cast<std::uint32_t>(std::min<std::uint64_t>(
                                       t.b, UINT32_MAX))});
    }
  }
  return subs;
}

}  // namespace

Result<Schedule> ExactScheduler::BuildSchedule(const Instance& instance) const {
  if (instance.empty()) {
    return Status::InvalidArgument("Exact: empty instance");
  }
  const std::vector<SubTask> subs = SplitToUnits(instance);

  SearchResult r = Search(subs, options_.max_states);
  if (r.budget_exhausted) {
    return Status::ResourceExhausted(
        "Exact: state budget (" + std::to_string(options_.max_states) +
        ") exhausted on " + instance.ToString());
  }
  if (!r.feasible) {
    return Status::Infeasible("Exact: instance is infeasible (proven): " +
                              instance.ToString());
  }
  std::vector<TaskId> cycle;
  cycle.reserve(r.cycle.size());
  for (std::uint32_t pick : r.cycle) cycle.push_back(subs[pick].parent);
  BDISK_ASSIGN_OR_RETURN(Schedule schedule,
                         Schedule::FromCycle(std::move(cycle)));
  return VerifyAndReturn(std::move(schedule), instance, name());
}

Result<bool> ExactScheduler::IsFeasible(const Instance& instance) const {
  if (instance.empty()) {
    return Status::InvalidArgument("Exact: empty instance");
  }
  const std::vector<SubTask> subs = SplitToUnits(instance);
  SearchResult r = Search(subs, options_.max_states);
  if (r.budget_exhausted) {
    return Status::ResourceExhausted("Exact: state budget exhausted");
  }
  return r.feasible;
}

}  // namespace bdisk::pinwheel
