/// \file chain_allocator.h
/// \brief Residue-class slot allocator for specialized pinwheel instances.
///
/// The classic pinwheel schedulers (Holte et al.'s Sa, Chan & Chin's
/// single- and double-integer reductions) all work by *specializing* window
/// sizes down to a set of harmonically related values and then assigning
/// each task a fixed residue class: task i receives every slot congruent to
/// offset_i modulo period_i. When the chosen periods pairwise divide one
/// another (a divisibility chain, e.g. {x, 2x, 4x, ...}), the classes nest
/// like a buddy allocator and an assignment exists whenever the specialized
/// density is at most 1.
///
/// This allocator implements the general form: free classes are split by
/// prime factors on demand, so it also serves the double-integer style
/// specializations whose periods are 3-smooth multiples of a base x (where
/// allocation is best-effort and callers must verify).

#ifndef BDISK_PINWHEEL_CHAIN_ALLOCATOR_H_
#define BDISK_PINWHEEL_CHAIN_ALLOCATOR_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "pinwheel/schedule.h"
#include "pinwheel/task.h"

namespace bdisk::pinwheel {

/// \brief A request for `count` residue classes of period `period` on behalf
/// of one task (count > 1 realizes "a out of every b" by a evenly spread
/// unit sub-tasks).
struct ClassRequest {
  TaskId task = 0;
  std::uint64_t period = 1;
  std::uint64_t count = 1;
};

/// \brief One granted residue class: task occupies slots t with
/// t ≡ offset (mod period).
struct ClassAssignment {
  TaskId task = 0;
  std::uint64_t offset = 0;
  std::uint64_t period = 1;
};

/// \brief Allocation policy knobs. The defaults are optimal for true
/// divisibility chains; non-chain period sets (e.g. the 3-smooth windows
/// of the double-integer specialization) can succeed under one variant and
/// fail under another, so callers handling such sets should try several
/// (see AllPolicies()).
struct AllocationPolicy {
  /// Split a free class toward the requested period by its smallest prime
  /// factor first (true) or largest first (false). Smallest-first keeps
  /// maximally flexible small-period siblings free; largest-first keeps
  /// more large-period siblings.
  bool smallest_prime_first = true;
  /// Serve a request from the free class with the largest admissible
  /// period (true, best fit) or the smallest (false, worst fit).
  bool best_fit = true;

  /// All four policy variants, default first.
  static std::vector<AllocationPolicy> AllPolicies() {
    return {{true, true}, {false, true}, {true, false}, {false, false}};
  }
};

/// \brief Buddy-style residue-class allocator.
class ChainAllocator {
 public:
  /// \brief Grants residue classes for all requests, or fails Infeasible.
  ///
  /// Requests are served in ascending period order. Success is guaranteed
  /// when the requested periods form a divisibility chain and the total
  /// density sum(count / period) is at most 1 (any policy); for non-chain
  /// periods the allocator is best-effort and policy-sensitive.
  static Result<std::vector<ClassAssignment>> Allocate(
      std::vector<ClassRequest> requests, AllocationPolicy policy = {});

  /// \brief Materializes granted classes into a cyclic Schedule whose period
  /// is the lcm of all class periods. Fails if the lcm exceeds `max_period`
  /// or if two classes collide (internal error).
  static Result<Schedule> ToSchedule(
      const std::vector<ClassAssignment>& assignments,
      std::uint64_t max_period = (1ULL << 24));
};

/// \brief Smallest prime factor of n (n >= 2).
std::uint64_t SmallestPrimeFactor(std::uint64_t n);

}  // namespace bdisk::pinwheel

#endif  // BDISK_PINWHEEL_CHAIN_ALLOCATOR_H_
