#include "pinwheel/verifier.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace bdisk::pinwheel {

std::string ConditionCheck::ToString() const {
  std::ostringstream oss;
  oss << "pc(" << task << ", " << a << ", " << b << "): min window count "
      << min_count << " at start " << worst_start << " => "
      << (satisfied ? "satisfied" : "VIOLATED");
  return oss.str();
}

std::uint64_t Verifier::MinWindowCount(const Schedule& schedule, TaskId id,
                                       std::uint64_t window,
                                       std::uint64_t* worst_start) {
  BDISK_CHECK(window > 0);
  const std::uint64_t period = schedule.period();
  const std::vector<TaskId>& cycle = schedule.slots();

  // Per-period occurrence count.
  std::uint64_t per_period = 0;
  for (TaskId s : cycle) {
    if (s == id) ++per_period;
  }

  const std::uint64_t full_cycles = window / period;
  const std::uint64_t rem = window % period;
  const std::uint64_t base = full_cycles * per_period;

  if (rem == 0) {
    if (worst_start != nullptr) *worst_start = 0;
    return base;
  }

  // Count occurrences in windows of length `rem` over the doubled cycle.
  // prefix[t] = occurrences in cycle positions [0, t).
  std::vector<std::uint64_t> prefix(2 * period + 1, 0);
  for (std::uint64_t t = 0; t < 2 * period; ++t) {
    prefix[t + 1] = prefix[t] + (cycle[t % period] == id ? 1 : 0);
  }

  std::uint64_t best = UINT64_MAX;
  std::uint64_t best_start = 0;
  for (std::uint64_t s = 0; s < period; ++s) {
    const std::uint64_t c = prefix[s + rem] - prefix[s];
    if (c < best) {
      best = c;
      best_start = s;
    }
  }
  if (worst_start != nullptr) *worst_start = best_start;
  return base + best;
}

ConditionCheck Verifier::CheckCondition(const Schedule& schedule, TaskId id,
                                        std::uint64_t a, std::uint64_t b) {
  ConditionCheck check;
  check.task = id;
  check.a = a;
  check.b = b;
  check.min_count = MinWindowCount(schedule, id, b, &check.worst_start);
  check.satisfied = check.min_count >= a;
  return check;
}

Status Verifier::Verify(const Schedule& schedule, const Instance& instance) {
  for (const Task& t : instance.tasks()) {
    const ConditionCheck check = CheckCondition(schedule, t.id, t.a, t.b);
    if (!check.satisfied) {
      return Status::Infeasible("Schedule violates " + check.ToString());
    }
  }
  return Status::OK();
}

std::vector<ConditionCheck> Verifier::CheckAll(const Schedule& schedule,
                                               const Instance& instance) {
  std::vector<ConditionCheck> out;
  out.reserve(instance.size());
  for (const Task& t : instance.tasks()) {
    out.push_back(CheckCondition(schedule, t.id, t.a, t.b));
  }
  return out;
}

}  // namespace bdisk::pinwheel
