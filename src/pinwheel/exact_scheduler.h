/// \file exact_scheduler.h
/// \brief Complete state-space search for single-unit pinwheel instances.
///
/// A single-unit pinwheel instance {(1, b_1), ..., (1, b_n)} is feasible iff
/// the "slack game" — counters c_i start at b_i, each slot one task's
/// counter resets to b_i and all others decrement, losing when a counter
/// reaches 0 — admits an infinite play, which (finite state space) happens
/// iff a reachable state cycle exists. This scheduler performs a memoized
/// DFS for such a cycle and emits it as the schedule.
///
/// Instances with a > 1 are first split into `a` unit sub-tasks of window
/// b; the split is *lossless* (pc(a, b) holds iff the task's slots can be
/// dealt round-robin to a sub-tasks each served once per b-window), so the
/// search is complete for arbitrary instances: Infeasible means proven
/// infeasible. The search is exponential in the worst case; use the state
/// budget.

#ifndef BDISK_PINWHEEL_EXACT_SCHEDULER_H_
#define BDISK_PINWHEEL_EXACT_SCHEDULER_H_

#include <cstdint>
#include <string>

#include "pinwheel/scheduler.h"

namespace bdisk::pinwheel {

/// \brief Options for ExactScheduler.
struct ExactSchedulerOptions {
  /// Maximum number of distinct states explored before giving up.
  std::size_t max_states = 1u << 20;
};

/// \brief Complete (for single-unit instances) pinwheel feasibility search.
class ExactScheduler : public Scheduler {
 public:
  explicit ExactScheduler(ExactSchedulerOptions options = {})
      : options_(options) {}

  std::string name() const override { return "Exact"; }
  /// Complete for single-unit instances, so "guaranteed density" is the
  /// feasibility frontier itself; reported as 0 because no uniform density
  /// bound below 1 guarantees feasibility (paper, Example 1).
  double guaranteed_density() const override { return 0.0; }
  Result<Schedule> BuildSchedule(const Instance& instance) const override;

  /// \brief Feasibility test without schedule construction. Returns true /
  /// false (a definitive verdict), or ResourceExhausted if the state budget
  /// was hit.
  Result<bool> IsFeasible(const Instance& instance) const;

 private:
  ExactSchedulerOptions options_;
};

}  // namespace bdisk::pinwheel

#endif  // BDISK_PINWHEEL_EXACT_SCHEDULER_H_
