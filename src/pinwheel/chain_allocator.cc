#include "pinwheel/chain_allocator.h"

#include <algorithm>
#include <map>

#include "common/check.h"
#include "common/stats.h"

namespace bdisk::pinwheel {

std::uint64_t SmallestPrimeFactor(std::uint64_t n) {
  BDISK_CHECK(n >= 2);
  if (n % 2 == 0) return 2;
  for (std::uint64_t p = 3; p * p <= n; p += 2) {
    if (n % p == 0) return p;
  }
  return n;
}

namespace {

std::uint64_t LargestPrimeFactor(std::uint64_t n) {
  BDISK_CHECK(n >= 2);
  std::uint64_t largest = 1;
  while (n >= 2) {
    const std::uint64_t p = SmallestPrimeFactor(n);
    largest = p;
    while (n % p == 0) n /= p;
  }
  return largest;
}

}  // namespace

Result<std::vector<ClassAssignment>> ChainAllocator::Allocate(
    std::vector<ClassRequest> requests, AllocationPolicy policy) {
  for (const ClassRequest& r : requests) {
    if (r.period == 0 || r.count == 0) {
      return Status::InvalidArgument(
          "ChainAllocator: period and count must be positive");
    }
  }
  std::stable_sort(requests.begin(), requests.end(),
                   [](const ClassRequest& a, const ClassRequest& b) {
                     return a.period < b.period;
                   });

  // Free classes, keyed by period; offsets kept sorted ascending so the
  // allocation is deterministic.
  std::map<std::uint64_t, std::vector<std::uint64_t>> free_classes;
  free_classes[1].push_back(0);

  std::vector<ClassAssignment> out;
  for (const ClassRequest& req : requests) {
    for (std::uint64_t unit = 0; unit < req.count; ++unit) {
      // Pick a free class whose period divides the requested one, per the
      // policy's fit preference.
      std::uint64_t chosen_period = 0;
      if (policy.best_fit) {
        auto it = free_classes.upper_bound(req.period);
        while (it != free_classes.begin()) {
          --it;
          if (req.period % it->first == 0 && !it->second.empty()) {
            chosen_period = it->first;
            break;
          }
          if (it == free_classes.begin()) break;
        }
      } else {
        for (auto it = free_classes.begin();
             it != free_classes.end() && it->first <= req.period; ++it) {
          if (req.period % it->first == 0 && !it->second.empty()) {
            chosen_period = it->first;
            break;
          }
        }
      }
      if (chosen_period == 0) {
        return Status::Infeasible(
            "ChainAllocator: no free residue class divides period " +
            std::to_string(req.period) + " for task " +
            std::to_string(req.task));
      }
      auto& offsets = free_classes[chosen_period];
      std::uint64_t offset = offsets.front();
      offsets.erase(offsets.begin());

      // Split towards the requested period per the policy's factor order,
      // keeping the first subclass and freeing the siblings.
      std::uint64_t p = chosen_period;
      while (p < req.period) {
        const std::uint64_t remaining = req.period / p;
        const std::uint64_t f = policy.smallest_prime_first
                                    ? SmallestPrimeFactor(remaining)
                                    : LargestPrimeFactor(remaining);
        for (std::uint64_t k = 1; k < f; ++k) {
          auto& sib = free_classes[p * f];
          sib.insert(std::lower_bound(sib.begin(), sib.end(), offset + k * p),
                     offset + k * p);
        }
        p *= f;
      }
      out.push_back(ClassAssignment{req.task, offset, req.period});
    }
  }
  return out;
}

Result<Schedule> ChainAllocator::ToSchedule(
    const std::vector<ClassAssignment>& assignments, std::uint64_t max_period) {
  if (assignments.empty()) {
    return Status::InvalidArgument("ToSchedule: no assignments");
  }
  std::uint64_t period = 1;
  for (const ClassAssignment& a : assignments) {
    if (a.period == 0 || a.offset >= a.period) {
      return Status::InvalidArgument("ToSchedule: malformed assignment");
    }
    period = LcmCapped(period, a.period, max_period + 1);
    if (period > max_period) {
      return Status::ResourceExhausted(
          "ToSchedule: schedule period exceeds cap " +
          std::to_string(max_period));
    }
  }
  std::vector<TaskId> cycle(period, Schedule::kIdle);
  for (const ClassAssignment& a : assignments) {
    for (std::uint64_t t = a.offset; t < period; t += a.period) {
      if (cycle[t] != Schedule::kIdle) {
        return Status::Internal(
            "ToSchedule: residue classes collide at slot " +
            std::to_string(t));
      }
      cycle[t] = a.task;
    }
  }
  return Schedule::FromCycle(std::move(cycle));
}

}  // namespace bdisk::pinwheel
