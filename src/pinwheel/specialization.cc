#include "pinwheel/specialization.h"

#include <algorithm>

#include "common/check.h"

namespace bdisk::pinwheel {

std::uint64_t LargestPowerOfTwoAtMost(std::uint64_t b) {
  BDISK_CHECK(b >= 1);
  std::uint64_t p = 1;
  while (p <= b / 2) p *= 2;
  return p;
}

std::optional<std::uint64_t> LargestChainValueAtMost(std::uint64_t x,
                                                     std::uint64_t b) {
  BDISK_CHECK(x >= 1);
  if (x > b) return std::nullopt;
  std::uint64_t v = x;
  while (v <= b / 2) v *= 2;
  return v;
}

std::optional<std::uint64_t> LargestSmoothValueAtMost(std::uint64_t x,
                                                      std::uint64_t b) {
  BDISK_CHECK(x >= 1);
  if (x > b) return std::nullopt;
  std::uint64_t best = x;
  // Enumerate x * 3^k, then double as far as possible; b / x bounds k by
  // log3, so the loop is tiny.
  for (std::uint64_t base = x; base <= b; base *= 3) {
    std::uint64_t v = base;
    while (v <= b / 2) v *= 2;
    best = std::max(best, v);
    if (base > b / 3) break;
  }
  return best;
}

std::vector<std::uint64_t> ChainBaseCandidates(
    const std::vector<std::uint64_t>& windows) {
  std::vector<std::uint64_t> out;
  for (std::uint64_t b : windows) {
    for (std::uint64_t v = b; v >= 1; v /= 2) {
      out.push_back(v);
      if (v == 1) break;
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<std::uint64_t> SmoothBaseCandidates(
    const std::vector<std::uint64_t>& windows) {
  std::vector<std::uint64_t> out;
  for (std::uint64_t b : windows) {
    for (std::uint64_t pow3 = 1; pow3 <= b; pow3 *= 3) {
      for (std::uint64_t v = b / pow3; v >= 1; v /= 2) {
        out.push_back(v);
        if (v == 1) break;
      }
      if (pow3 > b / 3) break;
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace bdisk::pinwheel
