/// \file task.h
/// \brief The pinwheel task model (paper, Section 3.1).
///
/// A pinwheel task (i, a, b) needs the shared resource (the broadcast
/// channel) for at least `a` out of every `b` consecutive unit time slots.
/// A pinwheel instance is a set of such tasks sharing one resource under the
/// Integral Boundary Constraint: each slot is allocated to exactly one task
/// or left idle.

#ifndef BDISK_PINWHEEL_TASK_H_
#define BDISK_PINWHEEL_TASK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace bdisk::pinwheel {

/// Identifier of a pinwheel task. Dense small integers; the schedule's idle
/// slot is represented separately (see Schedule::kIdle).
using TaskId = std::uint32_t;

/// \brief One pinwheel task (i, a, b): at least `a` slots in every window of
/// `b` consecutive slots.
struct Task {
  TaskId id = 0;
  /// Computation requirement `a` (slots needed per window); a >= 1.
  std::uint64_t a = 1;
  /// Window size `b` (consecutive slots); b >= a.
  std::uint64_t b = 1;

  /// Task density a / b.
  double density() const {
    return static_cast<double>(a) / static_cast<double>(b);
  }

  bool operator==(const Task&) const = default;

  /// "(i, a, b)" in the paper's tuple notation.
  std::string ToString() const;
};

/// \brief A pinwheel task system: a set of tasks sharing a single resource.
///
/// Task ids must be distinct ("nice" form, Definition 1 of the paper): one
/// pinwheel condition per task. Conjunctions of several conditions on the
/// same task are handled in the algebra module, which lowers them to nice
/// instances before scheduling.
class Instance {
 public:
  Instance() = default;

  /// Validates and builds an instance. Fails if any task has a == 0,
  /// b == 0, a > b, or a duplicated id.
  static Result<Instance> Create(std::vector<Task> tasks);

  /// The tasks, in the order supplied.
  const std::vector<Task>& tasks() const { return tasks_; }

  /// Number of tasks.
  std::size_t size() const { return tasks_.size(); }
  bool empty() const { return tasks_.empty(); }

  /// Sum of task densities. A density above 1 is sufficient for
  /// infeasibility; no finite density threshold below 1 is sufficient for
  /// feasibility in general (Example 1 of the paper).
  double density() const;

  /// Least common multiple of all window sizes, saturating at 2^62 (used to
  /// bound verification horizons).
  std::uint64_t WindowLcm() const;

  /// Largest window size (0 for an empty instance).
  std::uint64_t MaxWindow() const;

  /// The task with the given id. Fails with NotFound if absent.
  Result<Task> FindTask(TaskId id) const;

  /// "{(1,1,2), (2,1,3)}" in the paper's notation.
  std::string ToString() const;

 private:
  explicit Instance(std::vector<Task> tasks) : tasks_(std::move(tasks)) {}

  std::vector<Task> tasks_;
};

}  // namespace bdisk::pinwheel

#endif  // BDISK_PINWHEEL_TASK_H_
