#include "pinwheel/greedy_scheduler.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "common/check.h"

namespace bdisk::pinwheel {

namespace {

struct SubTask {
  TaskId parent;
  std::uint64_t window;
};

/// FNV-1a over the counter vector, used as the state-repeat key.
struct VectorHash {
  std::size_t operator()(const std::vector<std::uint64_t>& v) const {
    std::size_t h = 1469598103934665603ULL;
    for (std::uint64_t x : v) {
      h ^= x;
      h *= 1099511628211ULL;
    }
    return h;
  }
};

}  // namespace

Result<Schedule> GreedyScheduler::BuildSchedule(const Instance& instance) const {
  if (instance.empty()) {
    return Status::InvalidArgument("Greedy: empty instance");
  }
  // Split (a, b) into a unit sub-tasks of window b. The split is lossless:
  // a schedule serves task i at least a times per b-window iff its slots
  // can be dealt round-robin to a sub-tasks each served once per b-window
  // (consecutive services t_k, t_{k+a} of the task are at most b apart,
  // else the window just after t_k would hold only a - 1 services).
  std::vector<SubTask> subs;
  for (const Task& t : instance.tasks()) {
    for (std::uint64_t k = 0; k < t.a; ++k) {
      subs.push_back(SubTask{t.id, t.b});
    }
  }

  // Necessary check: density must not exceed 1.
  if (instance.density() > 1.0 + 1e-12) {
    return Status::Infeasible("Greedy: density " +
                              std::to_string(instance.density()) +
                              " exceeds 1 for " + instance.ToString());
  }

  // Slack counters: sub-task j must be served within c[j] slots (inclusive).
  std::vector<std::uint64_t> c(subs.size());
  for (std::size_t j = 0; j < subs.size(); ++j) c[j] = subs[j].window;

  std::unordered_map<std::vector<std::uint64_t>, std::uint64_t, VectorHash>
      seen;
  std::vector<TaskId> served;  // Slot log, by parent task id.
  served.reserve(1024);

  for (std::uint64_t step = 0; step < options_.max_steps; ++step) {
    auto [it, inserted] = seen.emplace(c, step);
    if (!inserted) {
      // Cycle found: slots [it->second, step) repeat forever.
      const std::uint64_t start = it->second;
      std::vector<TaskId> cycle(served.begin() + static_cast<std::ptrdiff_t>(start),
                                served.end());
      BDISK_ASSIGN_OR_RETURN(Schedule schedule,
                             Schedule::FromCycle(std::move(cycle)));
      return VerifyAndReturn(std::move(schedule), instance, name());
    }

    // Serve the most urgent sub-task (ties: smaller window, then order).
    std::size_t pick = 0;
    for (std::size_t j = 1; j < subs.size(); ++j) {
      if (c[j] < c[pick] ||
          (c[j] == c[pick] && subs[j].window < subs[pick].window)) {
        pick = j;
      }
    }
    served.push_back(subs[pick].parent);
    for (std::size_t j = 0; j < subs.size(); ++j) {
      if (j == pick) {
        c[j] = subs[j].window;
      } else {
        if (c[j] == 1) {
          return Status::Infeasible(
              "Greedy: deadline miss at slot " + std::to_string(step) +
              " for task " + std::to_string(subs[j].parent));
        }
        --c[j];
      }
    }
  }
  return Status::ResourceExhausted("Greedy: no cycle within " +
                                   std::to_string(options_.max_steps) +
                                   " steps");
}

}  // namespace bdisk::pinwheel
