/// \file greedy_scheduler.h
/// \brief Most-urgent-first heuristic pinwheel scheduler.
///
/// Simulates the deterministic "serve the task with the least remaining
/// slack" policy and harvests the cycle the simulation necessarily enters
/// (the state space is finite and the policy is deterministic). Not
/// guaranteed for any density bound, but cheap, and it succeeds on many
/// instances that defeat the specialization-based schedulers — the density
/// ablation bench quantifies this. Tasks with a > 1 are first split into
/// `a` unit sub-tasks of window b, which is lossless (pc(a, b) holds iff
/// the task's slots can be dealt round-robin to a sub-tasks each served
/// once per b-window).

#ifndef BDISK_PINWHEEL_GREEDY_SCHEDULER_H_
#define BDISK_PINWHEEL_GREEDY_SCHEDULER_H_

#include <cstdint>
#include <string>

#include "pinwheel/scheduler.h"

namespace bdisk::pinwheel {

/// \brief Options for GreedyScheduler.
struct GreedySchedulerOptions {
  /// Maximum number of simulated slots before giving up on finding a cycle.
  std::uint64_t max_steps = 1ULL << 20;
};

/// \brief Serve-most-urgent-first scheduler (see file comment).
class GreedyScheduler : public Scheduler {
 public:
  explicit GreedyScheduler(GreedySchedulerOptions options = {})
      : options_(options) {}

  std::string name() const override { return "Greedy"; }
  double guaranteed_density() const override { return 0.0; }
  Result<Schedule> BuildSchedule(const Instance& instance) const override;

 private:
  GreedySchedulerOptions options_;
};

}  // namespace bdisk::pinwheel

#endif  // BDISK_PINWHEEL_GREEDY_SCHEDULER_H_
