#include "pinwheel/scheduler.h"

#include "pinwheel/verifier.h"

namespace bdisk::pinwheel {

Result<Schedule> Scheduler::VerifyAndReturn(Schedule schedule,
                                            const Instance& instance,
                                            const std::string& scheduler_name) {
  Status st = Verifier::Verify(schedule, instance);
  if (!st.ok()) {
    return Status::Internal(scheduler_name +
                            " produced an invalid schedule: " + st.message());
  }
  return schedule;
}

}  // namespace bdisk::pinwheel
