/// \file schedule.h
/// \brief Cyclic schedules for pinwheel task systems.
///
/// A schedule is an infinite allocation of unit slots to tasks; we represent
/// the periodic case: a finite cycle repeated forever. Slot values are task
/// ids, with Schedule::kIdle marking an unallocated slot (the paper's "*").

#ifndef BDISK_PINWHEEL_SCHEDULE_H_
#define BDISK_PINWHEEL_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "pinwheel/task.h"

namespace bdisk::pinwheel {

/// \brief A periodic schedule: slot t is allocated to slots()[t mod period].
class Schedule {
 public:
  /// Marker for an unallocated slot.
  static constexpr TaskId kIdle = 0xFFFFFFFFu;

  Schedule() = default;

  /// Builds a schedule from one period of slot assignments. Fails on an
  /// empty cycle.
  static Result<Schedule> FromCycle(std::vector<TaskId> cycle);

  /// The cycle length (period).
  std::uint64_t period() const { return cycle_.size(); }

  /// One period of slot assignments.
  const std::vector<TaskId>& slots() const { return cycle_; }

  /// The task occupying absolute slot `t` (kIdle if unallocated).
  TaskId At(std::uint64_t t) const { return cycle_[t % cycle_.size()]; }

  /// Positions of task `id` within one period, ascending. Empty if the task
  /// never appears. This is the paper's "P.i" restricted to one period.
  std::vector<std::uint64_t> OccurrencesOf(TaskId id) const;

  /// Number of slots per period allocated to task `id`.
  std::uint64_t CountOf(TaskId id) const;

  /// Number of idle slots per period.
  std::uint64_t IdleCount() const { return CountOf(kIdle); }

  /// Fraction of slots that are allocated (1 - idle fraction).
  double Utilization() const;

  /// \brief Largest gap (in slots) between consecutive occurrences of task
  /// `id`, measured cyclically: the paper's Delta for Lemma 2 when applied
  /// to a file's block slots. Fails with NotFound if the task never appears.
  Result<std::uint64_t> MaxGapOf(TaskId id) const;

  /// "1, 2, 1, *, 2" rendering of one period, with '*' for idle slots.
  std::string ToString() const;

 private:
  explicit Schedule(std::vector<TaskId> cycle) : cycle_(std::move(cycle)) {}

  std::vector<TaskId> cycle_;
};

}  // namespace bdisk::pinwheel

#endif  // BDISK_PINWHEEL_SCHEDULE_H_
