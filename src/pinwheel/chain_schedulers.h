/// \file chain_schedulers.h
/// \brief The specialization-based pinwheel schedulers.
///
/// * SaScheduler — Holte et al. [19]: specialize windows to powers of two.
///   Guaranteed for any instance of density <= 1/2.
/// * SxScheduler — single-integer reduction (Chan & Chin [13] style):
///   specialize windows to one geometric chain {x * 2^j}, searching all
///   useful bases x. Subsumes Sa (x = 1 is always a candidate).
/// * SxyScheduler — double-integer-reduction style (Chan & Chin [12]):
///   specialize windows to 3-smooth multiples {x * 2^j * 3^k} of a base x.
///   Richer window sets lose less density to rounding; allocation on the
///   resulting non-chain periods is best-effort, and the result is verified.
///
/// Each task (a, b) is realized by whichever of two sound encodings is
/// denser-friendly for it:
///   unit:   one residue class of period  spec(floor(b / a))   (rule R3), or
///   spread: a residue classes of period  spec(b),
/// where spec() rounds down into the scheduler's window set. Both encodings
/// guarantee at least `a` slots in every window of `b` consecutive slots;
/// `spread` additionally spaces the slots evenly, which the broadcast-disk
/// layer prefers (it minimizes the paper's inter-block gap Delta).

#ifndef BDISK_PINWHEEL_CHAIN_SCHEDULERS_H_
#define BDISK_PINWHEEL_CHAIN_SCHEDULERS_H_

#include <cstdint>
#include <string>

#include "pinwheel/scheduler.h"

namespace bdisk::pinwheel {

/// \brief Options shared by the chain-based schedulers.
struct ChainSchedulerOptions {
  /// Upper bound on the emitted schedule's period.
  std::uint64_t max_period = 1ULL << 24;
  /// Maximum number of candidate bases x to attempt (sorted by specialized
  /// density, ascending), for Sx/Sxy.
  std::size_t max_candidates = 64;
};

/// \brief Sa: power-of-two specialization. Guaranteed density 1/2.
class SaScheduler : public Scheduler {
 public:
  explicit SaScheduler(ChainSchedulerOptions options = {})
      : options_(options) {}

  std::string name() const override { return "Sa"; }
  double guaranteed_density() const override { return 0.5; }
  Result<Schedule> BuildSchedule(const Instance& instance) const override;

 private:
  ChainSchedulerOptions options_;
};

/// \brief Sx: single-chain specialization {x * 2^j} with base search.
class SxScheduler : public Scheduler {
 public:
  explicit SxScheduler(ChainSchedulerOptions options = {})
      : options_(options) {}

  std::string name() const override { return "Sx"; }
  /// Subsumes Sa, so inherits its 1/2 guarantee; empirically schedules most
  /// instances up to ~0.65 (bench_scheduler_density quantifies this).
  double guaranteed_density() const override { return 0.5; }
  Result<Schedule> BuildSchedule(const Instance& instance) const override;

 private:
  ChainSchedulerOptions options_;
};

/// \brief Sxy: 3-smooth specialization {x * 2^j * 3^k} with base search.
class SxyScheduler : public Scheduler {
 public:
  explicit SxyScheduler(ChainSchedulerOptions options = {})
      : options_(options) {}

  std::string name() const override { return "Sxy"; }
  /// Subsumes Sa; empirically schedules most instances up to ~0.7-0.8
  /// (bench_scheduler_density), in line with Chan & Chin's 7/10 analysis.
  double guaranteed_density() const override { return 0.5; }
  Result<Schedule> BuildSchedule(const Instance& instance) const override;

 private:
  ChainSchedulerOptions options_;
};

}  // namespace bdisk::pinwheel

#endif  // BDISK_PINWHEEL_CHAIN_SCHEDULERS_H_
