#include "ida/dispersal.h"

#include <algorithm>
#include <array>
#include <mutex>

#include "common/check.h"
#include "gf/gf_bulk.h"

namespace {
// Pointer-array capacity for the fused kernel calls: n <= 256 by geometry
// (Dispersal::Create enforces it), so fixed stack arrays avoid per-stripe
// heap allocation on the hot path.
constexpr std::size_t kMaxBlocks = 256;
}  // namespace

namespace bdisk::ida {

Result<Dispersal> Dispersal::Create(std::uint32_t m, std::uint32_t n,
                                    std::size_t block_size) {
  if (m == 0) {
    return Status::InvalidArgument("Dispersal: m must be positive");
  }
  if (n < m) {
    return Status::InvalidArgument("Dispersal: need n >= m, got n=" +
                                   std::to_string(n) + " m=" +
                                   std::to_string(m));
  }
  if (block_size == 0) {
    return Status::InvalidArgument("Dispersal: block_size must be positive");
  }
  // SystematicCauchy needs (n - m) parity x-points and m + (n - m) y/x values
  // within GF(2^8): (n - m) + m <= 256.
  if (n > 256) {
    return Status::InvalidArgument(
        "Dispersal: at most 256 dispersed blocks over GF(2^8)");
  }
  BDISK_ASSIGN_OR_RETURN(gf::Matrix mat, gf::Matrix::SystematicCauchy(n, m));
  return Dispersal(m, n, block_size, std::move(mat));
}

Result<std::vector<Block>> Dispersal::Disperse(
    FileId file_id, const std::vector<std::uint8_t>& file,
    std::uint64_t version) const {
  const std::size_t expected = static_cast<std::size_t>(m_) * block_size_;
  if (file.size() != expected) {
    return Status::InvalidArgument(
        "Disperse: file must be exactly m * block_size = " +
        std::to_string(expected) + " bytes, got " +
        std::to_string(file.size()));
  }
  std::vector<Block> out;
  DisperseStripe(file_id, file.data(), version, &out);
  return out;
}

void Dispersal::DisperseStripe(FileId file_id, const std::uint8_t* stripe,
                               std::uint64_t version,
                               std::vector<Block>* out) const {
  out->resize(n_);
  for (std::uint32_t i = 0; i < n_; ++i) {
    (*out)[i].header = BlockHeader{file_id, i, m_, n_, version};
    (*out)[i].payload.assign(block_size_, 0);
  }
  // Dispersed block i, byte k = sum_j M[i][j] * stripe_block_j[k] — one
  // fused matrix-block product instead of n * m independent row passes, so
  // each stripe block streams through cache once per tile (gf/gf_bulk.h).
  std::array<std::uint8_t*, kMaxBlocks> dsts;
  std::array<const std::uint8_t*, kMaxBlocks> srcs;
  std::array<const std::uint8_t*, kMaxBlocks> rows;
  for (std::uint32_t i = 0; i < n_; ++i) {
    dsts[i] = (*out)[i].payload.data();
    rows[i] = dispersal_matrix_.RowData(i);
  }
  for (std::uint32_t j = 0; j < m_; ++j) {
    srcs[j] = stripe + static_cast<std::size_t>(j) * block_size_;
  }
  gf::GFBulk::MatrixMulAccumulate(dsts.data(), srcs.data(), rows.data(), n_,
                                  m_, block_size_);
}

Result<std::vector<std::uint8_t>> Dispersal::Reconstruct(
    const std::vector<Block>& blocks) const {
  std::vector<std::uint8_t> file(static_cast<std::size_t>(m_) * block_size_,
                                 0);
  BDISK_RETURN_NOT_OK(ReconstructInto(blocks, file.data()));
  return file;
}

Status Dispersal::ReconstructInto(const std::vector<Block>& blocks,
                                  std::uint8_t* dst) const {
  // Collect the first m distinct, valid blocks.
  std::vector<const Block*> chosen;
  std::vector<std::size_t> rows;
  chosen.reserve(m_);
  rows.reserve(m_);
  std::vector<bool> seen(n_, false);
  std::optional<std::uint64_t> version;
  for (const Block& b : blocks) {
    if (b.header.reconstruct_threshold != m_ || b.header.total_blocks != n_) {
      return Status::InvalidArgument(
          "Reconstruct: block geometry mismatch: " + b.header.ToString());
    }
    if (!version.has_value()) {
      version = b.header.version;
    } else if (b.header.version != *version) {
      return Status::InvalidArgument(
          "Reconstruct: mixed versions (" + std::to_string(*version) +
          " vs " + std::to_string(b.header.version) +
          "); blocks of different snapshots cannot be combined");
    }
    if (b.header.block_index >= n_) {
      return Status::InvalidArgument("Reconstruct: block index out of range: " +
                                     b.header.ToString());
    }
    if (b.payload.size() != block_size_) {
      return Status::InvalidArgument("Reconstruct: payload size mismatch");
    }
    if (seen[b.header.block_index]) continue;
    seen[b.header.block_index] = true;
    chosen.push_back(&b);
    rows.push_back(b.header.block_index);
    if (chosen.size() == m_) break;
  }
  if (chosen.size() < m_) {
    return Status::DataLoss("Reconstruct: need " + std::to_string(m_) +
                            " distinct blocks, have " +
                            std::to_string(chosen.size()));
  }

  // Look up or compute the inverse of the selected rows (sorted key so the
  // cache is independent of arrival order; we sort the blocks to match).
  std::vector<std::size_t> order(m_);
  for (std::size_t i = 0; i < m_; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&rows](std::size_t a, std::size_t b) {
    return rows[a] < rows[b];
  });
  std::vector<std::size_t> sorted_rows(m_);
  std::vector<const Block*> sorted_blocks(m_);
  for (std::size_t i = 0; i < m_; ++i) {
    sorted_rows[i] = rows[order[i]];
    sorted_blocks[i] = chosen[order[i]];
  }

  // The cache is read-mostly after warmup (there are only C(n, m) subsets,
  // and workloads revisit few of them), so hits take the lock shared and
  // batch reconstruction no longer serializes here.
  const gf::Matrix* inverse = nullptr;
  {
    std::shared_lock<std::shared_mutex> lock(inverse_cache_->mu);
    auto it = inverse_cache_->entries.find(sorted_rows);
    if (it != inverse_cache_->entries.end()) inverse = &it->second;
  }
  if (inverse == nullptr) {
    // Invert outside the lock; a concurrent reconstruction of the same
    // subset may win the emplace race, in which case its (identical)
    // matrix is used.
    BDISK_ASSIGN_OR_RETURN(gf::Matrix square,
                           dispersal_matrix_.SelectRows(sorted_rows));
    auto inv_result = square.Inverse();
    if (!inv_result.ok()) {
      // Cannot happen with a SystematicCauchy matrix; report as internal.
      return Status::Internal("Reconstruct: dispersal submatrix singular: " +
                              inv_result.status().message());
    }
    std::unique_lock<std::shared_mutex> lock(inverse_cache_->mu);
    auto [pos, inserted] = inverse_cache_->entries.emplace(
        sorted_rows, std::move(inv_result).value());
    (void)inserted;
    inverse = &pos->second;
  }

  // Original block j, byte k = sum_i Inv[j][i] * received_i[k] — fused
  // across all m output blocks (gf/gf_bulk.h).
  std::array<std::uint8_t*, kMaxBlocks> dsts;
  std::array<const std::uint8_t*, kMaxBlocks> srcs;
  std::array<const std::uint8_t*, kMaxBlocks> rows_ptrs;
  for (std::uint32_t j = 0; j < m_; ++j) {
    dsts[j] = dst + static_cast<std::size_t>(j) * block_size_;
    rows_ptrs[j] = inverse->RowData(j);
    srcs[j] = sorted_blocks[j]->payload.data();
  }
  gf::GFBulk::MatrixMulAccumulate(dsts.data(), srcs.data(), rows_ptrs.data(),
                                  m_, m_, block_size_);
  return Status::OK();
}

}  // namespace bdisk::ida
