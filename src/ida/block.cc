#include "ida/block.h"

#include <sstream>

namespace bdisk::ida {

std::string BlockHeader::ToString() const {
  std::ostringstream oss;
  if (file_id == kInvalidFileId) {
    oss << "file=<none>";
  } else {
    oss << "file=" << file_id;
  }
  oss << " block=" << block_index << "/" << total_blocks
      << " (m=" << reconstruct_threshold << ") v" << version;
  return oss.str();
}

}  // namespace bdisk::ida
