#include "ida/block.h"

#include <array>
#include <sstream>

#include "common/crc32c.h"

namespace bdisk::ida {

namespace {

// Little-endian (de)serialization of an integer at `*pos`, so the layout
// is independent of host endianness and struct padding.
template <typename T>
void PutLE(std::array<std::uint8_t, kBlockIdentityBytes>* out,
           std::size_t* pos, T value) {
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    (*out)[(*pos)++] = static_cast<std::uint8_t>(value >> (8 * i));
  }
}

template <typename T>
void GetLE(const std::array<std::uint8_t, kBlockIdentityBytes>& in,
           std::size_t* pos, T* value) {
  *value = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    *value |= static_cast<T>(in[(*pos)++]) << (8 * i);
  }
}

}  // namespace

std::array<std::uint8_t, kBlockIdentityBytes> SerializeIdentity(
    const BlockHeader& header) {
  std::array<std::uint8_t, kBlockIdentityBytes> out;
  std::size_t pos = 0;
  PutLE(&out, &pos, header.file_id);
  PutLE(&out, &pos, header.block_index);
  PutLE(&out, &pos, header.reconstruct_threshold);
  PutLE(&out, &pos, header.total_blocks);
  PutLE(&out, &pos, header.version);
  return out;
}

void DeserializeIdentity(
    const std::array<std::uint8_t, kBlockIdentityBytes>& bytes,
    BlockHeader* header) {
  std::size_t pos = 0;
  GetLE(bytes, &pos, &header->file_id);
  GetLE(bytes, &pos, &header->block_index);
  GetLE(bytes, &pos, &header->reconstruct_threshold);
  GetLE(bytes, &pos, &header->total_blocks);
  GetLE(bytes, &pos, &header->version);
}

std::uint32_t BlockChecksum(const Block& block) {
  const auto head = SerializeIdentity(block.header);
  std::uint32_t crc = Crc32cExtend(0, head.data(), head.size());
  crc = Crc32cExtend(crc, block.payload.data(), block.payload.size());
  // 0 is reserved for "unstamped"; remap the (1-in-2^32) zero CRC.
  return crc == 0 ? 1u : crc;
}

ChecksumState VerifyChecksum(const Block& block) {
  if (block.header.checksum == 0) return ChecksumState::kUnstamped;
  return block.header.checksum == BlockChecksum(block)
             ? ChecksumState::kValid
             : ChecksumState::kMismatch;
}

std::string BlockHeader::ToString() const {
  std::ostringstream oss;
  if (file_id == kInvalidFileId) {
    oss << "file=<none>";
  } else {
    oss << "file=" << file_id;
  }
  oss << " block=" << block_index << "/" << total_blocks
      << " (m=" << reconstruct_threshold << ") v" << version;
  return oss.str();
}

}  // namespace bdisk::ida
