/// \file aida.h
/// \brief The Adaptive Information Dispersal Algorithm (AIDA), paper
/// Section 2.2 (Bestavros [8]).
///
/// AIDA inserts a *bandwidth allocation* step between dispersal and
/// transmission: of the N dispersed blocks, only n in [m, N] are actually
/// transmitted, where n is chosen per data item and per *mode of operation*
/// ("combat" vs "landing" in the paper's AWACS example). Redundancy can thus
/// be scaled up for critical items and down for unimportant ones without
/// re-dispersing anything.

#ifndef BDISK_IDA_AIDA_H_
#define BDISK_IDA_AIDA_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "ida/dispersal.h"

namespace bdisk::ida {

/// \brief Per-mode redundancy profile for one data item: how many of the N
/// dispersed blocks to transmit in each named mode of operation.
class RedundancyProfile {
 public:
  /// Creates a profile for an item dispersed m-out-of-n_max.
  RedundancyProfile(std::uint32_t m, std::uint32_t n_max)
      : m_(m), n_max_(n_max) {}

  /// Sets the transmitted-block count for `mode`. Clamped into [m, n_max].
  void SetMode(const std::string& mode, std::uint32_t n);

  /// Transmitted-block count for `mode`; falls back to m (no redundancy)
  /// for unknown modes, matching AIDA's "scale down for unimportant items"
  /// default.
  std::uint32_t BlocksForMode(const std::string& mode) const;

  /// Number of block-loss faults tolerated in `mode` (= n - m).
  std::uint32_t FaultsToleratedInMode(const std::string& mode) const {
    return BlocksForMode(mode) - m_;
  }

  std::uint32_t m() const { return m_; }
  std::uint32_t n_max() const { return n_max_; }

 private:
  std::uint32_t m_;
  std::uint32_t n_max_;
  std::map<std::string, std::uint32_t> mode_to_n_;
};

/// \brief AIDA engine: dispersal plus the bandwidth-allocation step.
class Aida {
 public:
  /// Creates an engine dispersing m-out-of-n_max with the given block size.
  static Result<Aida> Create(std::uint32_t m, std::uint32_t n_max,
                             std::size_t block_size);

  /// Disperses to the full N blocks (the allocation step later picks n).
  Result<std::vector<Block>> Disperse(FileId file_id,
                                      const std::vector<std::uint8_t>& file) const {
    return dispersal_.Disperse(file_id, file);
  }

  /// \brief The bandwidth-allocation step: selects `n` of the dispersed
  /// blocks for transmission (the first n, i.e. the systematic data blocks
  /// plus n - m parity blocks).
  ///
  /// Fails unless m <= n <= N and `dispersed.size() == N`.
  Result<std::vector<Block>> Allocate(const std::vector<Block>& dispersed,
                                      std::uint32_t n) const;

  /// Disperse + Allocate in one call.
  Result<std::vector<Block>> DisperseAndAllocate(
      FileId file_id, const std::vector<std::uint8_t>& file,
      std::uint32_t n) const;

  /// Reconstructs from any >= m distinct received blocks.
  Result<std::vector<std::uint8_t>> Reconstruct(
      const std::vector<Block>& blocks) const {
    return dispersal_.Reconstruct(blocks);
  }

  /// Minimum n that tolerates `r` block-loss faults (m + r). Fails if
  /// m + r > N.
  Result<std::uint32_t> BlocksForFaultTolerance(std::uint32_t r) const;

  /// Bandwidth overhead factor of transmitting n blocks: n / m.
  double RedundancyRatio(std::uint32_t n) const {
    return static_cast<double>(n) / static_cast<double>(m());
  }

  std::uint32_t m() const { return dispersal_.reconstruct_threshold(); }
  std::uint32_t n_max() const { return dispersal_.total_blocks(); }
  std::size_t block_size() const { return dispersal_.block_size(); }
  const Dispersal& dispersal() const { return dispersal_; }

 private:
  explicit Aida(Dispersal dispersal) : dispersal_(std::move(dispersal)) {}

  Dispersal dispersal_;
};

/// \brief Pads `data` with zeros to a multiple of m * block_size... returns
/// a copy padded to exactly m * block_size bytes. Fails if data is larger
/// than m * block_size.
Result<std::vector<std::uint8_t>> PadToFileSize(
    const std::vector<std::uint8_t>& data, std::uint32_t m,
    std::size_t block_size);

/// \brief Smallest m such that `data_size` bytes fit in m blocks of
/// `block_size` bytes (i.e. ceil(data_size / block_size)), minimum 1.
std::uint32_t BlocksNeeded(std::size_t data_size, std::size_t block_size);

}  // namespace bdisk::ida

#endif  // BDISK_IDA_AIDA_H_
