#include "ida/aida.h"

#include <algorithm>

namespace bdisk::ida {

void RedundancyProfile::SetMode(const std::string& mode, std::uint32_t n) {
  mode_to_n_[mode] = std::clamp(n, m_, n_max_);
}

std::uint32_t RedundancyProfile::BlocksForMode(const std::string& mode) const {
  auto it = mode_to_n_.find(mode);
  return it == mode_to_n_.end() ? m_ : it->second;
}

Result<Aida> Aida::Create(std::uint32_t m, std::uint32_t n_max,
                          std::size_t block_size) {
  BDISK_ASSIGN_OR_RETURN(Dispersal d, Dispersal::Create(m, n_max, block_size));
  return Aida(std::move(d));
}

Result<std::vector<Block>> Aida::Allocate(const std::vector<Block>& dispersed,
                                          std::uint32_t n) const {
  if (n < m() || n > n_max()) {
    return Status::InvalidArgument(
        "Allocate: n must lie in [m, N] = [" + std::to_string(m()) + ", " +
        std::to_string(n_max()) + "], got " + std::to_string(n));
  }
  if (dispersed.size() != n_max()) {
    return Status::InvalidArgument(
        "Allocate: expected all " + std::to_string(n_max()) +
        " dispersed blocks, got " + std::to_string(dispersed.size()));
  }
  return std::vector<Block>(dispersed.begin(), dispersed.begin() + n);
}

Result<std::vector<Block>> Aida::DisperseAndAllocate(
    FileId file_id, const std::vector<std::uint8_t>& file,
    std::uint32_t n) const {
  BDISK_ASSIGN_OR_RETURN(std::vector<Block> all, Disperse(file_id, file));
  return Allocate(all, n);
}

Result<std::uint32_t> Aida::BlocksForFaultTolerance(std::uint32_t r) const {
  const std::uint64_t need = static_cast<std::uint64_t>(m()) + r;
  if (need > n_max()) {
    return Status::InvalidArgument(
        "BlocksForFaultTolerance: tolerating " + std::to_string(r) +
        " faults needs " + std::to_string(need) + " blocks but N = " +
        std::to_string(n_max()));
  }
  return static_cast<std::uint32_t>(need);
}

Result<std::vector<std::uint8_t>> PadToFileSize(
    const std::vector<std::uint8_t>& data, std::uint32_t m,
    std::size_t block_size) {
  const std::size_t target = static_cast<std::size_t>(m) * block_size;
  if (data.size() > target) {
    return Status::InvalidArgument(
        "PadToFileSize: data (" + std::to_string(data.size()) +
        " bytes) exceeds m * block_size = " + std::to_string(target));
  }
  std::vector<std::uint8_t> out = data;
  out.resize(target, 0);
  return out;
}

std::uint32_t BlocksNeeded(std::size_t data_size, std::size_t block_size) {
  if (block_size == 0) return 1;
  if (data_size == 0) return 1;
  return static_cast<std::uint32_t>((data_size + block_size - 1) / block_size);
}

}  // namespace bdisk::ida
