/// \file dispersal_batch.cc
/// \brief Batched (multi-stripe) dispersal and reconstruction.
///
/// A file larger than one dispersal stripe (m * block_size bytes) is
/// processed as consecutive independent stripes, which fan out across a
/// runtime::ThreadPool: each stripe's matrix product touches disjoint
/// input/output ranges, so the only shared state is the inverse-matrix
/// cache, which Dispersal synchronizes internally.

#include "common/check.h"
#include "ida/dispersal.h"
#include "obs/registry.h"
#include "runtime/parallel_for.h"

namespace bdisk::ida {

Result<std::vector<std::vector<Block>>> Dispersal::DisperseBatch(
    FileId file_id, const std::vector<std::uint8_t>& file,
    std::uint64_t version, runtime::ThreadPool* pool) const {
  const std::size_t stripe_bytes = static_cast<std::size_t>(m_) * block_size_;
  if (file.empty() || file.size() % stripe_bytes != 0) {
    return Status::InvalidArgument(
        "DisperseBatch: file must be a non-empty multiple of m * block_size "
        "= " +
        std::to_string(stripe_bytes) + " bytes, got " +
        std::to_string(file.size()));
  }
  const std::size_t stripe_count = file.size() / stripe_bytes;
  std::vector<std::vector<Block>> out(stripe_count);
  // Batch-granularity instrumentation: one timer around the whole fan-out,
  // never inside the stripe loop.
  obs::ScopedPhaseTimer timer(obs::GlobalRegistry().GetHistogram(
      "phase.encode_us", obs::PhaseTimerBoundsUs()));
  obs::GlobalRegistry().GetCounter("ida.encode_bytes")->Add(file.size());
  runtime::ParallelFor(
      pool, stripe_count, runtime::ShardCountFor(pool, stripe_count),
      [&](unsigned, runtime::ShardRange range) {
        for (std::uint64_t s = range.begin; s < range.end; ++s) {
          DisperseStripe(file_id, file.data() + s * stripe_bytes, version,
                         &out[s]);
        }
      });
  return out;
}

Result<std::vector<std::uint8_t>> Dispersal::ReconstructBatch(
    const std::vector<std::vector<Block>>& stripes,
    runtime::ThreadPool* pool) const {
  if (stripes.empty()) {
    return Status::InvalidArgument("ReconstructBatch: no stripes");
  }
  const std::size_t stripe_bytes = static_cast<std::size_t>(m_) * block_size_;
  std::vector<std::uint8_t> file(stripes.size() * stripe_bytes, 0);
  obs::ScopedPhaseTimer timer(obs::GlobalRegistry().GetHistogram(
      "phase.decode_us", obs::PhaseTimerBoundsUs()));
  obs::GlobalRegistry().GetCounter("ida.decode_bytes")->Add(file.size());
  const unsigned shards = runtime::ShardCountFor(pool, stripes.size());
  // Per-shard first failure, reported as the error of the lowest failing
  // shard so the (already rare) error path is stable for a given shard
  // count.
  std::vector<Status> failures(shards);
  runtime::ParallelFor(
      pool, stripes.size(), shards,
      [&](unsigned shard, runtime::ShardRange range) {
        for (std::uint64_t s = range.begin; s < range.end; ++s) {
          Status status =
              ReconstructInto(stripes[s], file.data() + s * stripe_bytes);
          if (!status.ok()) {
            failures[shard] = std::move(status);
            return;
          }
        }
      });
  for (Status& status : failures) {
    if (!status.ok()) return std::move(status);
  }
  return file;
}

}  // namespace bdisk::ida
