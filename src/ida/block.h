/// \file block.h
/// \brief Self-identifying broadcast blocks (paper, Section 2.1).
///
/// "Each block has two identifiers. The first specifies the data item to
/// which the block belongs (e.g., this is page 3 of object Z). The second
/// specifies the sequence number of the block relative to all blocks that
/// make up the data item (e.g., this is block 4 out of 5)."
///
/// We carry both identifiers plus the dispersal geometry (m out of N) so a
/// client can pick the correct inverse transformation without a directory.

#ifndef BDISK_IDA_BLOCK_H_
#define BDISK_IDA_BLOCK_H_

#include <cstdint>
#include <string>
#include <vector>

namespace bdisk::ida {

/// Identifier of a broadcast file (data item). File ids are dense small
/// integers assigned by the program builder; kInvalidFileId marks "no file".
using FileId = std::uint32_t;
constexpr FileId kInvalidFileId = 0xFFFFFFFFu;

/// \brief Header carried by every broadcast block, making it
/// self-identifying.
struct BlockHeader {
  /// Which data item this block belongs to.
  FileId file_id = kInvalidFileId;
  /// Index of this block among the N dispersed blocks of the file.
  std::uint32_t block_index = 0;
  /// Number of blocks sufficient for reconstruction (m).
  std::uint32_t reconstruct_threshold = 0;
  /// Total number of dispersed blocks (N).
  std::uint32_t total_blocks = 0;
  /// Version (update generation) of the file this block encodes. Blocks of
  /// different versions must never be combined during reconstruction: IDA's
  /// linear combination only inverts against one consistent snapshot.
  std::uint64_t version = 0;

  bool operator==(const BlockHeader&) const = default;

  /// "file=3 block=4/10 (m=5) v2".
  std::string ToString() const;
};

/// \brief One broadcast block: header plus payload bytes.
struct Block {
  BlockHeader header;
  std::vector<std::uint8_t> payload;

  bool operator==(const Block&) const = default;
};

}  // namespace bdisk::ida

#endif  // BDISK_IDA_BLOCK_H_
