/// \file block.h
/// \brief Self-identifying broadcast blocks (paper, Section 2.1).
///
/// "Each block has two identifiers. The first specifies the data item to
/// which the block belongs (e.g., this is page 3 of object Z). The second
/// specifies the sequence number of the block relative to all blocks that
/// make up the data item (e.g., this is block 4 out of 5)."
///
/// We carry both identifiers plus the dispersal geometry (m out of N) so a
/// client can pick the correct inverse transformation without a directory.

#ifndef BDISK_IDA_BLOCK_H_
#define BDISK_IDA_BLOCK_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace bdisk::ida {

/// Identifier of a broadcast file (data item). File ids are dense small
/// integers assigned by the program builder; kInvalidFileId marks "no file".
using FileId = std::uint32_t;
constexpr FileId kInvalidFileId = 0xFFFFFFFFu;

/// \brief Header carried by every broadcast block, making it
/// self-identifying.
struct BlockHeader {
  /// Which data item this block belongs to.
  FileId file_id = kInvalidFileId;
  /// Index of this block among the N dispersed blocks of the file.
  std::uint32_t block_index = 0;
  /// Number of blocks sufficient for reconstruction (m).
  std::uint32_t reconstruct_threshold = 0;
  /// Total number of dispersed blocks (N).
  std::uint32_t total_blocks = 0;
  /// Version (update generation) of the file this block encodes. Blocks of
  /// different versions must never be combined during reconstruction: IDA's
  /// linear combination only inverts against one consistent snapshot.
  std::uint64_t version = 0;
  /// Integrity checksum over the identity fields above plus the payload
  /// (CRC-32C, normalized so 0 never occurs on a stamped block). 0 means
  /// "unstamped" — blocks built by hand or by the raw codec carry no
  /// checksum; the broadcast server stamps every block it transmits
  /// (StampChecksum) so clients on corrupting channels can discard damaged
  /// blocks instead of silently reconstructing wrong bytes.
  std::uint32_t checksum = 0;

  bool operator==(const BlockHeader&) const = default;

  /// "file=3 block=4/10 (m=5) v2".
  std::string ToString() const;
};

/// \brief One broadcast block: header plus payload bytes.
struct Block {
  BlockHeader header;
  std::vector<std::uint8_t> payload;

  bool operator==(const Block&) const = default;
};

/// Serialized size of a header's identity fields (file_id, block_index,
/// reconstruct_threshold, total_blocks, version — the stored checksum is
/// not an identity field).
inline constexpr std::size_t kBlockIdentityBytes = 24;

/// \brief Canonical little-endian serialization of the header identity
/// fields. This single layout defines (a) the checksum coverage beyond the
/// payload and (b) the byte positions fault injectors may damage —
/// SerializeIdentity/DeserializeIdentity round-trip, so corrupting "byte k
/// of the identity" is well-defined without re-encoding the layout at
/// every site.
std::array<std::uint8_t, kBlockIdentityBytes> SerializeIdentity(
    const BlockHeader& header);

/// \brief Inverse of SerializeIdentity; leaves the checksum field alone.
void DeserializeIdentity(
    const std::array<std::uint8_t, kBlockIdentityBytes>& bytes,
    BlockHeader* header);

/// \brief The checksum a stamped `block` must carry: CRC-32C over the
/// header identity fields (SerializeIdentity) and the payload, normalized
/// to be non-zero so the value 0 stays reserved for "unstamped". The
/// stored checksum field itself is excluded from the coverage.
std::uint32_t BlockChecksum(const Block& block);

/// \brief Stamps `block` with its checksum.
inline void StampChecksum(Block* block) {
  block->header.checksum = BlockChecksum(*block);
}

/// \brief Stamps every block of one dispersal — the canonical
/// store-build-time step shared by the static server, the versioned
/// server, and the persistent block store, so "a stamped dispersal" means
/// the same thing at every site.
inline void StampChecksums(std::vector<Block>* blocks) {
  for (Block& block : *blocks) StampChecksum(&block);
}

/// \brief Verdict of VerifyChecksum.
enum class ChecksumState : std::uint8_t {
  /// checksum == 0: the block was never stamped; nothing to verify.
  kUnstamped,
  /// Stamped and the recomputed checksum matches.
  kValid,
  /// Stamped but the contents do not match — the block is corrupt.
  kMismatch,
};

/// \brief Recomputes and compares `block`'s checksum.
ChecksumState VerifyChecksum(const Block& block);


}  // namespace bdisk::ida

#endif  // BDISK_IDA_BLOCK_H_
