/// \file dispersal.h
/// \brief Rabin's Information Dispersal Algorithm (IDA), paper Section 2.1.
///
/// A file F of m blocks is processed into N >= m blocks such that any m of
/// the N suffice to reconstruct F. Dispersal is the matrix product
/// [x_ij]_{N x m} * [A_1 .. A_m]^T per byte column; reconstruction selects
/// the m rows corresponding to the received blocks, inverts that square
/// matrix, and multiplies (Figure 3 of the paper).
///
/// The dispersal matrix is systematic (first m rows = identity) and built
/// from a Cauchy matrix, so the "any m rows are mutually independent"
/// requirement of the paper holds; the systematic prefix additionally makes
/// the first m dispersed blocks literal copies of the data blocks, which is
/// convenient for incremental reads and matches the paper's Figure 6 example
/// (blocks A'_1..A'_10 where any 5 reconstruct A).
///
/// The per-byte matrix product runs on the bulk GF(2^8) kernels
/// (gf/gf_bulk.h): one table lookup + one XOR per byte, with the systematic
/// identity rows lowered to word-wide copies/XORs.

#ifndef BDISK_IDA_DISPERSAL_H_
#define BDISK_IDA_DISPERSAL_H_

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/status.h"
#include "gf/matrix.h"
#include "ida/block.h"

namespace bdisk::ida {

/// \brief Dispersal engine for a fixed geometry (m data blocks, N dispersed
/// blocks, fixed block size in bytes).
///
/// Thread-compatible; reconstruction caches inverse matrices per row subset
/// (the paper: "the inverse transformation could be precomputed for some or
/// even all possible subsets of m rows").
class Dispersal {
 public:
  /// Creates an engine. Requirements: 1 <= m <= n <= 255 + ... (n - m
  /// parity rows + m <= 256), block_size >= 1.
  static Result<Dispersal> Create(std::uint32_t m, std::uint32_t n,
                                  std::size_t block_size);

  /// Number of blocks sufficient to reconstruct (m).
  std::uint32_t reconstruct_threshold() const { return m_; }
  /// Total number of dispersed blocks (N).
  std::uint32_t total_blocks() const { return n_; }
  /// Payload bytes per block.
  std::size_t block_size() const { return block_size_; }

  /// \brief Disperses a file into N self-identifying blocks, stamped with
  /// `version` (the file's update generation).
  ///
  /// `file` must be exactly m * block_size bytes (callers pad; the library
  /// does not guess an encoding for partial trailing blocks).
  Result<std::vector<Block>> Disperse(FileId file_id,
                                      const std::vector<std::uint8_t>& file,
                                      std::uint64_t version = 0) const;

  /// \brief Reconstructs the original file from any >= m distinct blocks.
  ///
  /// Blocks with duplicate indices are ignored after the first occurrence;
  /// blocks whose header does not match this geometry are rejected, and so
  /// are mixed versions (a linear combination only inverts against one
  /// consistent snapshot). Fails with DataLoss if fewer than m distinct
  /// valid blocks are supplied.
  Result<std::vector<std::uint8_t>> Reconstruct(
      const std::vector<Block>& blocks) const;

  /// Number of distinct inverse matrices cached so far.
  std::size_t cached_inverse_count() const { return inverse_cache_.size(); }

 private:
  Dispersal(std::uint32_t m, std::uint32_t n, std::size_t block_size,
            gf::Matrix dispersal_matrix)
      : m_(m), n_(n), block_size_(block_size),
        dispersal_matrix_(std::move(dispersal_matrix)) {}

  std::uint32_t m_;
  std::uint32_t n_;
  std::size_t block_size_;
  gf::Matrix dispersal_matrix_;
  // Cache of inverse reconstruction matrices keyed by sorted row subset.
  mutable std::map<std::vector<std::size_t>, gf::Matrix> inverse_cache_;
};

}  // namespace bdisk::ida

#endif  // BDISK_IDA_DISPERSAL_H_
