/// \file dispersal.h
/// \brief Rabin's Information Dispersal Algorithm (IDA), paper Section 2.1.
///
/// A file F of m blocks is processed into N >= m blocks such that any m of
/// the N suffice to reconstruct F. Dispersal is the matrix product
/// [x_ij]_{N x m} * [A_1 .. A_m]^T per byte column; reconstruction selects
/// the m rows corresponding to the received blocks, inverts that square
/// matrix, and multiplies (Figure 3 of the paper).
///
/// The dispersal matrix is systematic (first m rows = identity) and built
/// from a Cauchy matrix, so the "any m rows are mutually independent"
/// requirement of the paper holds; the systematic prefix additionally makes
/// the first m dispersed blocks literal copies of the data blocks, which is
/// convenient for incremental reads and matches the paper's Figure 6 example
/// (blocks A'_1..A'_10 where any 5 reconstruct A).
///
/// The per-byte matrix product runs as one fused matrix-block kernel call
/// (GFBulk::MatrixMulAccumulate, gf/gf_bulk.h), dispatched at runtime to
/// the fastest GF(2^8) implementation the CPU supports (SSSE3/AVX2/NEON
/// nibble-table shuffles, or the portable product-table fallback), with the
/// systematic identity rows lowered to vector-wide XOR/skip.

#ifndef BDISK_IDA_DISPERSAL_H_
#define BDISK_IDA_DISPERSAL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <vector>

#include "common/status.h"
#include "gf/matrix.h"
#include "ida/block.h"

namespace bdisk::runtime {
class ThreadPool;
}  // namespace bdisk::runtime

namespace bdisk::ida {

/// \brief Dispersal engine for a fixed geometry (m data blocks, N dispersed
/// blocks, fixed block size in bytes).
///
/// Safe for concurrent const use: Disperse/Reconstruct (and the batch
/// variants) may run on many threads against one engine. Reconstruction
/// caches inverse matrices per row subset (the paper: "the inverse
/// transformation could be precomputed for some or even all possible
/// subsets of m rows"); the cache is internally synchronized.
class Dispersal {
 public:
  /// Creates an engine. Requirements: 1 <= m <= n <= 255 + ... (n - m
  /// parity rows + m <= 256), block_size >= 1.
  static Result<Dispersal> Create(std::uint32_t m, std::uint32_t n,
                                  std::size_t block_size);

  /// Number of blocks sufficient to reconstruct (m).
  std::uint32_t reconstruct_threshold() const { return m_; }
  /// Total number of dispersed blocks (N).
  std::uint32_t total_blocks() const { return n_; }
  /// Payload bytes per block.
  std::size_t block_size() const { return block_size_; }

  /// \brief Disperses a file into N self-identifying blocks, stamped with
  /// `version` (the file's update generation).
  ///
  /// `file` must be exactly m * block_size bytes (callers pad; the library
  /// does not guess an encoding for partial trailing blocks).
  Result<std::vector<Block>> Disperse(FileId file_id,
                                      const std::vector<std::uint8_t>& file,
                                      std::uint64_t version = 0) const;

  /// \brief Reconstructs the original file from any >= m distinct blocks.
  ///
  /// Blocks with duplicate indices are ignored after the first occurrence;
  /// blocks whose header does not match this geometry are rejected, and so
  /// are mixed versions (a linear combination only inverts against one
  /// consistent snapshot). Fails with DataLoss if fewer than m distinct
  /// valid blocks are supplied.
  Result<std::vector<std::uint8_t>> Reconstruct(
      const std::vector<Block>& blocks) const;

  /// \brief Batched dispersal of a large file.
  ///
  /// `file` must be a non-empty multiple of m * block_size bytes; each
  /// m * block_size stripe is dispersed independently — fanned out across
  /// `pool` when non-null — and returned in file order. Stripe identity is
  /// positional: all stripes share `file_id` and `version`, so blocks of
  /// different stripes must not be mixed in one Reconstruct call; keep the
  /// per-stripe grouping (as ReconstructBatch does).
  ///
  /// Deterministic: the output is byte-identical for any pool size,
  /// including the serial path (pool == nullptr).
  Result<std::vector<std::vector<Block>>> DisperseBatch(
      FileId file_id, const std::vector<std::uint8_t>& file,
      std::uint64_t version = 0, runtime::ThreadPool* pool = nullptr) const;

  /// \brief Inverse of DisperseBatch: reconstructs every stripe (each needs
  /// >= m distinct valid blocks, checked per stripe) — fanned out across
  /// `pool` when non-null — and concatenates the stripes in order.
  Result<std::vector<std::uint8_t>> ReconstructBatch(
      const std::vector<std::vector<Block>>& stripes,
      runtime::ThreadPool* pool = nullptr) const;

  /// Number of distinct inverse matrices cached so far.
  std::size_t cached_inverse_count() const {
    std::shared_lock<std::shared_mutex> lock(inverse_cache_->mu);
    return inverse_cache_->entries.size();
  }

 private:
  // Cache of inverse reconstruction matrices keyed by sorted row subset.
  // Read-mostly after warmup, so lookups take the lock shared and only
  // inserts take it exclusive — concurrent batch reconstruction does not
  // serialize on cache hits. Heap-allocated so the engine stays movable
  // despite the mutex; entries are never erased, so pointers into the map
  // remain valid while other threads insert.
  struct InverseCache {
    mutable std::shared_mutex mu;
    std::map<std::vector<std::size_t>, gf::Matrix> entries;
  };

  Dispersal(std::uint32_t m, std::uint32_t n, std::size_t block_size,
            gf::Matrix dispersal_matrix)
      : m_(m), n_(n), block_size_(block_size),
        dispersal_matrix_(std::move(dispersal_matrix)),
        inverse_cache_(std::make_unique<InverseCache>()) {}

  /// Disperses one m * block_size stripe into `out` (resized to N blocks).
  void DisperseStripe(FileId file_id, const std::uint8_t* stripe,
                      std::uint64_t version, std::vector<Block>* out) const;

  /// Reconstructs one stripe into `dst` (m * block_size bytes, zeroed).
  Status ReconstructInto(const std::vector<Block>& blocks,
                         std::uint8_t* dst) const;

  std::uint32_t m_;
  std::uint32_t n_;
  std::size_t block_size_;
  gf::Matrix dispersal_matrix_;
  std::unique_ptr<InverseCache> inverse_cache_;
};

}  // namespace bdisk::ida

#endif  // BDISK_IDA_DISPERSAL_H_
