/// \file condition.h
/// \brief Broadcast-file and pinwheel conditions (paper, Section 4.1).
///
/// * pc(i, a, b): the schedule gives task i at least `a` of every `b`
///   consecutive slots (Definition 4).
/// * bc(i, m, d⃗): the schedule gives file i at least m + j of every d^(j)
///   consecutive slots, for every fault level j (Definition 3); by Eq. (3)
///   this is exactly the conjunct ∧_j pc(i, m + j, d^(j)).
///
/// Conditions in this module are task-agnostic (the (a, b) payload); the
/// binding to concrete task ids happens in NiceConjunct / NiceConverter.

#ifndef BDISK_ALGEBRA_CONDITION_H_
#define BDISK_ALGEBRA_CONDITION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace bdisk::algebra {

/// \brief The (a, b) payload of a pinwheel condition pc(·, a, b).
struct PinwheelCondition {
  /// Required slots per window; a >= 1.
  std::uint64_t a = 1;
  /// Window length; b >= a.
  std::uint64_t b = 1;

  double density() const {
    return static_cast<double>(a) / static_cast<double>(b);
  }

  bool operator==(const PinwheelCondition&) const = default;

  /// "pc(a, b)".
  std::string ToString() const;
};

/// \brief The (m, d⃗) payload of a broadcast-file condition bc(·, m, d⃗).
///
/// d⃗ = [d^(0), d^(1), ..., d^(r)]: with j faults the client must be able to
/// collect m + j blocks within any window of d^(j) slots (m blocks suffice
/// to reconstruct; j extra cover the j lost ones).
struct BroadcastCondition {
  /// File size in blocks (reconstruction threshold m); m >= 1.
  std::uint64_t m = 1;
  /// Latency vector, indexed by fault count j = 0..r.
  std::vector<std::uint64_t> d;

  /// Number of tolerated faults r (= d.size() - 1).
  std::uint64_t fault_tolerance() const { return d.empty() ? 0 : d.size() - 1; }

  /// Validates m >= 1, d non-empty, and d^(j) >= m + j for every j (a window
  /// shorter than m + j slots cannot contain m + j blocks).
  Status Validate() const;

  /// \brief Eq. (3): the equivalent conjunct of pinwheel conditions
  /// { (m + j, d^(j)) : j = 0..r }.
  std::vector<PinwheelCondition> ToPinwheelConjunct() const;

  /// \brief The paper's *density lower bound*: max_j (m + j) / d^(j). No
  /// nice conjunct implying this bc can have smaller density (each level
  /// alone forces that density on the file's virtual tasks).
  double DensityLowerBound() const;

  bool operator==(const BroadcastCondition&) const = default;

  /// "bc(m, [d0, d1, ...])".
  std::string ToString() const;
};

/// \brief Sound lower bound on the number of slots any schedule satisfying
/// `c` provides in *every* window of `window` consecutive slots.
///
/// For window = q·b + s (0 <= s < b) the bound is
///   q·a + max(0, a - (b - s)),
/// from q disjoint full windows plus the tail of the window ending at the
/// range's end. Exact when the condition is realized by an evenly spread
/// residue-class schedule; in general a safe under-estimate.
std::uint64_t GuaranteedCount(const PinwheelCondition& c, std::uint64_t window);

/// \brief Sound lower bound on the slots a *conjunct* of conditions (on
/// virtual tasks all mapped to one file) jointly provides in every window of
/// `window` slots.
///
/// Stronger than summing GuaranteedCount: for candidate enlarged windows L'
/// (window rounded up to a multiple of each condition's b) it also uses
///   count(window) >= count(L') - (L' - window),
/// which is exactly the R2-style argument behind the paper's rule R5 — an
/// enlarged window aligned to full periods can guarantee more than the
/// original window even after paying one lost slot per slot of enlargement
/// (Example 4: pc(1,2) ∧ pc(1,10) jointly give 5 slots per 9-window).
std::uint64_t ConjunctGuaranteedCount(
    const std::vector<PinwheelCondition>& conjunct, std::uint64_t window);

/// \brief True iff `stronger` provably implies `weaker` via
/// ConjunctGuaranteedCount (i.e. every schedule satisfying `stronger`
/// satisfies `weaker`). Conservative: false negatives possible, false
/// positives not.
bool Implies(const PinwheelCondition& stronger, const PinwheelCondition& weaker);

}  // namespace bdisk::algebra

#endif  // BDISK_ALGEBRA_CONDITION_H_
