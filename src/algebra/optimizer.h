/// \file optimizer.h
/// \brief Conversion of broadcast-file conditions to minimum-density *nice*
/// pinwheel conjuncts (paper, Section 4.2).
///
/// The Chan & Chin style schedulers accept only nice conjuncts (one
/// condition per task, Definition 1), so a generalized broadcast file
/// bc(i, m, d⃗) — equivalent to the non-nice conjunct ∧_j pc(i, m+j, d^(j))
/// — must be *converted*: replaced by a nice conjunct that implies it, at
/// the smallest density increase we can find. The paper conjectures optimal
/// conversion is NP-hard and gives heuristics; this module implements them:
///
///  * TR1        — one single-unit condition covering every fault level;
///  * TR2        — base pc(m, d0) plus one unit helper per fault level;
///  * R-chain    — TR2 improved by the algebra rules R0-R5: the base is
///                 R1-reduced or R3-strengthened, dominated levels are
///                 dropped (R0), and each remaining level is covered by the
///                 cheaper of an R4 helper and an R5 helper (Example 4);
///  * single     — one condition pc(a, b) with a > 1 implying every level
///                 (Examples 5 and 6, where it reaches the density lower
///                 bound).
///
/// Convert() evaluates all candidates and returns them with the best marked.

#ifndef BDISK_ALGEBRA_OPTIMIZER_H_
#define BDISK_ALGEBRA_OPTIMIZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "algebra/condition.h"
#include "algebra/rules.h"
#include "common/status.h"
#include "pinwheel/task.h"

namespace bdisk::algebra {

/// \brief One candidate nice conjunct for a broadcast condition.
struct ConversionCandidate {
  /// Strategy that produced it: "TR1", "TR2", "R-chain", "single".
  std::string strategy;
  MappedConjunct conjunct;

  double density() const { return conjunct.density(); }
};

/// \brief Result of converting one broadcast condition.
struct Conversion {
  BroadcastCondition bc;
  /// max_j (m+j)/d^(j); no implying nice conjunct can be less dense.
  double density_lower_bound = 0.0;
  std::vector<ConversionCandidate> candidates;
  std::size_t best_index = 0;

  const ConversionCandidate& best() const { return candidates[best_index]; }

  /// best density / lower bound (>= 1; 1 means provably optimal).
  double OverheadRatio() const {
    return best().density() / density_lower_bound;
  }
};

/// \brief Options for the conversion search.
struct ConverterOptions {
  /// Cap on the requirement `a` tried by the single-condition search; 0
  /// derives a default from the condition (4 * (m + r) + 8, at most 512).
  std::uint64_t max_single_a = 0;
};

/// \brief The conversion engine.
class NiceConverter {
 public:
  /// Converts one broadcast condition. Fails only on invalid input.
  static Result<Conversion> Convert(const BroadcastCondition& bc,
                                    const ConverterOptions& options = {});
};

/// \brief A whole broadcast-disk system lowered to one nice pinwheel
/// instance plus the virtual-task → file mapping (map(i', i) semantics).
struct SystemConversion {
  /// The nice instance; task ids are dense virtual ids.
  pinwheel::Instance instance;
  /// virtual_to_file[v] = index of the file condition task v serves.
  std::vector<std::uint32_t> virtual_to_file;
  /// Per-file conversion details, aligned with the input order.
  std::vector<Conversion> conversions;

  /// Sum of the chosen conjunct densities.
  double total_density() const;
};

/// \brief Converts a set of broadcast conditions into one nice instance.
Result<SystemConversion> ConvertSystem(
    const std::vector<BroadcastCondition>& conditions,
    const ConverterOptions& options = {});

}  // namespace bdisk::algebra

#endif  // BDISK_ALGEBRA_OPTIMIZER_H_
