#include "algebra/rules.h"

#include <algorithm>
#include <limits>
#include <sstream>

namespace bdisk::algebra {

Result<PinwheelCondition> RuleR0(const PinwheelCondition& c, std::uint64_t x,
                                 std::uint64_t y) {
  if (x >= c.a) {
    return Status::InvalidArgument("R0: x must be below a (" + c.ToString() +
                                   ", x=" + std::to_string(x) + ")");
  }
  if (c.b > std::numeric_limits<std::uint64_t>::max() - y) {
    return Status::InvalidArgument("R0: b + y overflows");
  }
  return PinwheelCondition{c.a - x, c.b + y};
}

Result<PinwheelCondition> RuleR1(const PinwheelCondition& c, std::uint64_t n) {
  if (n == 0) {
    return Status::InvalidArgument("R1: n must be positive");
  }
  if (c.b > std::numeric_limits<std::uint64_t>::max() / n) {
    return Status::InvalidArgument("R1: n * b overflows");
  }
  return PinwheelCondition{n * c.a, n * c.b};
}

Result<PinwheelCondition> RuleR2(const PinwheelCondition& c, std::uint64_t x) {
  if (x >= c.a) {
    return Status::InvalidArgument("R2: x must be below a");
  }
  return PinwheelCondition{c.a - x, c.b - x};
}

Result<PinwheelCondition> RuleR4(const PinwheelCondition& base,
                                 const PinwheelCondition& helper) {
  if (helper.b < base.b) {
    return Status::InvalidArgument(
        "R4: helper window must be at least the base window (" +
        base.ToString() + " vs " + helper.ToString() + ")");
  }
  return PinwheelCondition{base.a + helper.a, helper.b};
}

Result<PinwheelCondition> RuleR5(const PinwheelCondition& base,
                                 std::uint64_t n,
                                 const PinwheelCondition& helper) {
  BDISK_RETURN_NOT_OK(RuleR1(base, n).status());
  const std::uint64_t nb = n * base.b;
  if (helper.b != nb) {
    return Status::InvalidArgument(
        "R5: helper window must equal n * b = " + std::to_string(nb) +
        ", got " + std::to_string(helper.b));
  }
  if (helper.a >= nb) {
    return Status::InvalidArgument("R5: helper requirement x must be below n*b");
  }
  return PinwheelCondition{n * base.a, nb - helper.a};
}

PinwheelCondition RuleR3(const PinwheelCondition& c) {
  return PinwheelCondition{1, c.b / c.a};
}

Result<PinwheelCondition> RuleTR1(const BroadcastCondition& bc) {
  BDISK_RETURN_NOT_OK(bc.Validate());
  std::uint64_t w = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t j = 0; j < bc.d.size(); ++j) {
    w = std::min(w, bc.d[j] / (bc.m + j));
  }
  if (w == 0) {
    return Status::Infeasible("TR1: " + bc.ToString() +
                              " admits no single-unit condition");
  }
  return PinwheelCondition{1, w};
}

std::string MappedConjunct::ToString() const {
  std::ostringstream oss;
  for (std::size_t i = 0; i < conditions.size(); ++i) {
    if (i > 0) oss << " ∧ ";
    const MappedCondition& mc = conditions[i];
    oss << "pc(" << (mc.is_helper ? "i'" : "i") << mc.virtual_task << ", "
        << mc.condition.a << ", " << mc.condition.b << ")";
  }
  return oss.str();
}

Result<MappedConjunct> RuleTR2(const BroadcastCondition& bc) {
  BDISK_RETURN_NOT_OK(bc.Validate());
  MappedConjunct out;
  out.conditions.push_back(
      MappedCondition{0, PinwheelCondition{bc.m, bc.d[0]}, false});
  for (std::size_t j = 1; j < bc.d.size(); ++j) {
    out.conditions.push_back(MappedCondition{
        static_cast<std::uint32_t>(j), PinwheelCondition{1, bc.d[j]}, true});
  }
  return out;
}

}  // namespace bdisk::algebra
