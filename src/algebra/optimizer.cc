#include "algebra/optimizer.h"

#include <algorithm>
#include <limits>
#include <optional>

#include "common/check.h"
#include "common/stats.h"

namespace bdisk::algebra {

namespace {

/// Levels of the equivalent conjunct with R0-dominated entries removed:
/// level j is dropped when another retained level k implies it.
std::vector<PinwheelCondition> EffectiveLevels(const BroadcastCondition& bc) {
  const std::vector<PinwheelCondition> all = bc.ToPinwheelConjunct();
  std::vector<PinwheelCondition> kept;
  for (std::size_t j = 0; j < all.size(); ++j) {
    bool dominated = false;
    for (std::size_t k = 0; k < all.size(); ++k) {
      if (k == j) continue;
      // Strict dominance ordering to avoid dropping both of an equal pair:
      // prefer the later (stronger requirement) level on ties.
      if (Implies(all[k], all[j]) && !(Implies(all[j], all[k]) && j > k)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) kept.push_back(all[j]);
  }
  return kept;
}

std::vector<PinwheelCondition> RawConditions(const MappedConjunct& conjunct) {
  std::vector<PinwheelCondition> out;
  out.reserve(conjunct.conditions.size());
  for (const MappedCondition& mc : conjunct.conditions) {
    out.push_back(mc.condition);
  }
  return out;
}

/// True iff the conjunct provably covers every level.
bool ConjunctCovers(const MappedConjunct& conjunct,
                    const std::vector<PinwheelCondition>& levels) {
  const std::vector<PinwheelCondition> raw = RawConditions(conjunct);
  for (const PinwheelCondition& level : levels) {
    if (ConjunctGuaranteedCount(raw, level.b) < level.a) return false;
  }
  return true;
}

MappedConjunct SingleConditionConjunct(const PinwheelCondition& c) {
  MappedConjunct out;
  out.conditions.push_back(MappedCondition{0, c, false});
  return out;
}

/// Candidate "TR1": one single-unit condition.
std::optional<ConversionCandidate> MakeTr1(const BroadcastCondition& bc) {
  Result<PinwheelCondition> r = RuleTR1(bc);
  if (!r.ok()) return std::nullopt;
  return ConversionCandidate{"TR1", SingleConditionConjunct(*r)};
}

/// Candidate "TR2": base plus one unit helper per fault level.
std::optional<ConversionCandidate> MakeTr2(const BroadcastCondition& bc) {
  Result<MappedConjunct> r = RuleTR2(bc);
  if (!r.ok()) return std::nullopt;
  return ConversionCandidate{"TR2", std::move(*r)};
}

/// Candidate "R-chain": base variant plus cheapest-of-R4/R5 helpers per
/// uncovered level (see header).
std::vector<ConversionCandidate> MakeRChains(
    const std::vector<PinwheelCondition>& levels) {
  std::vector<ConversionCandidate> out;
  const PinwheelCondition level0 = levels.front();

  std::vector<PinwheelCondition> base_variants;
  base_variants.push_back(level0);
  const std::uint64_t g = Gcd(level0.a, level0.b);
  if (g > 1) {
    base_variants.push_back(PinwheelCondition{level0.a / g, level0.b / g});
  }
  const PinwheelCondition r3 = RuleR3(level0);
  if (r3.b >= 1) base_variants.push_back(r3);

  for (const PinwheelCondition& base : base_variants) {
    if (!Implies(base, level0)) continue;
    MappedConjunct conjunct;
    conjunct.conditions.push_back(MappedCondition{0, base, false});
    std::uint32_t next_virtual = 1;
    bool ok = true;

    for (std::size_t j = 1; j < levels.size(); ++j) {
      const PinwheelCondition& level = levels[j];
      const std::uint64_t covered =
          ConjunctGuaranteedCount(RawConditions(conjunct), level.b);
      if (covered >= level.a) continue;

      // Option A (R4): helper of window d^(j) supplying the shortfall.
      const PinwheelCondition r4_helper{level.a - covered, level.b};

      // Option B (R5): base-only helper pc(x, n*b), x = n*b - d^(j).
      std::optional<PinwheelCondition> r5_helper;
      const std::uint64_t n = (level.a + base.a - 1) / base.a;
      if (n >= 1 && base.b <= std::numeric_limits<std::uint64_t>::max() / n) {
        const std::uint64_t nb = n * base.b;
        if (nb > level.b) {
          const std::uint64_t x = nb - level.b;
          if (x < nb && n * base.a >= level.a) {
            r5_helper = PinwheelCondition{x, nb};
          }
        } else if (n * base.a >= level.a) {
          // R1 alone: base implies (n*a, n*b) which implies the level.
          continue;
        }
      }

      PinwheelCondition chosen = r4_helper;
      if (r5_helper.has_value() &&
          r5_helper->density() < r4_helper.density()) {
        // R5's implied condition pc(n*a, d^(j)) must re-cover what the R4
        // accounting assumed; it covers the level on its own by
        // construction, so it is always admissible here.
        chosen = *r5_helper;
      }
      if (chosen.a == 0 || chosen.a > chosen.b) {
        ok = false;
        break;
      }
      conjunct.conditions.push_back(
          MappedCondition{next_virtual++, chosen, true});
    }
    if (!ok) continue;
    if (!ConjunctCovers(conjunct, levels)) continue;
    out.push_back(ConversionCandidate{"R-chain", std::move(conjunct)});
  }
  return out;
}

/// Candidate "single": one condition pc(a, b), a possibly > 1, implying all
/// levels; for each a the largest admissible b is found by binary search
/// plus a downward verification scan.
std::optional<ConversionCandidate> MakeSingle(
    const std::vector<PinwheelCondition>& levels, std::uint64_t max_a) {
  std::uint64_t max_window = 0;
  for (const PinwheelCondition& level : levels) {
    max_window = std::max(max_window, level.b);
  }
  std::optional<PinwheelCondition> best;
  for (std::uint64_t a = 1; a <= max_a; ++a) {
    const auto covers_all = [&levels, a](std::uint64_t b) {
      const PinwheelCondition c{a, b};
      for (const PinwheelCondition& level : levels) {
        if (!Implies(c, level)) return false;
      }
      return true;
    };
    // The guarantee is monotone non-increasing in b for the windows we care
    // about, so binary search for the largest covering b; a final check
    // guards against local non-monotonicity of the bound.
    std::uint64_t lo = a;
    std::uint64_t hi = max_window;
    if (!covers_all(lo)) continue;
    while (lo < hi) {
      const std::uint64_t mid = lo + (hi - lo + 1) / 2;
      if (covers_all(mid)) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    BDISK_DCHECK(covers_all(lo));
    const PinwheelCondition c{a, lo};
    if (!best.has_value() || c.density() < best->density()) best = c;
  }
  if (!best.has_value()) return std::nullopt;
  return ConversionCandidate{"single", SingleConditionConjunct(*best)};
}

}  // namespace

double SystemConversion::total_density() const {
  double s = 0.0;
  for (const Conversion& c : conversions) s += c.best().density();
  return s;
}

Result<Conversion> NiceConverter::Convert(const BroadcastCondition& bc,
                                          const ConverterOptions& options) {
  BDISK_RETURN_NOT_OK(bc.Validate());
  Conversion out;
  out.bc = bc;
  out.density_lower_bound = bc.DensityLowerBound();

  const std::vector<PinwheelCondition> levels = EffectiveLevels(bc);

  if (auto c = MakeTr1(bc)) out.candidates.push_back(std::move(*c));
  if (auto c = MakeTr2(bc)) out.candidates.push_back(std::move(*c));
  for (ConversionCandidate& c : MakeRChains(levels)) {
    out.candidates.push_back(std::move(c));
  }
  std::uint64_t max_a = options.max_single_a;
  if (max_a == 0) {
    max_a = std::min<std::uint64_t>(4 * (bc.m + bc.fault_tolerance()) + 8, 512);
  }
  if (auto c = MakeSingle(levels, max_a)) out.candidates.push_back(std::move(*c));

  if (out.candidates.empty()) {
    return Status::Infeasible("NiceConverter: no candidate conversion for " +
                              bc.ToString());
  }
  // Minimum density; ties broken toward fewer conditions (fewer virtual
  // tasks burden the scheduler less).
  out.best_index = 0;
  for (std::size_t i = 1; i < out.candidates.size(); ++i) {
    const ConversionCandidate& cur = out.candidates[i];
    const ConversionCandidate& best = out.candidates[out.best_index];
    const double delta = cur.density() - best.density();
    if (delta < -1e-12 ||
        (delta <= 1e-12 && cur.conjunct.conditions.size() <
                               best.conjunct.conditions.size())) {
      out.best_index = i;
    }
  }
  return out;
}

Result<SystemConversion> ConvertSystem(
    const std::vector<BroadcastCondition>& conditions,
    const ConverterOptions& options) {
  if (conditions.empty()) {
    return Status::InvalidArgument("ConvertSystem: no broadcast conditions");
  }
  std::vector<pinwheel::Task> tasks;
  std::vector<std::uint32_t> virtual_to_file;
  std::vector<Conversion> conversions;
  for (std::size_t f = 0; f < conditions.size(); ++f) {
    BDISK_ASSIGN_OR_RETURN(Conversion conv,
                           NiceConverter::Convert(conditions[f], options));
    for (const MappedCondition& mc : conv.best().conjunct.conditions) {
      const auto vid = static_cast<pinwheel::TaskId>(tasks.size());
      tasks.push_back(
          pinwheel::Task{vid, mc.condition.a, mc.condition.b});
      virtual_to_file.push_back(static_cast<std::uint32_t>(f));
    }
    conversions.push_back(std::move(conv));
  }
  BDISK_ASSIGN_OR_RETURN(pinwheel::Instance instance,
                         pinwheel::Instance::Create(std::move(tasks)));
  return SystemConversion{std::move(instance), std::move(virtual_to_file),
                          std::move(conversions)};
}

}  // namespace bdisk::algebra
