#include "algebra/condition.h"

#include <algorithm>
#include <sstream>

namespace bdisk::algebra {

std::string PinwheelCondition::ToString() const {
  std::ostringstream oss;
  oss << "pc(" << a << ", " << b << ")";
  return oss.str();
}

Status BroadcastCondition::Validate() const {
  if (m == 0) {
    return Status::InvalidArgument("bc: file size m must be positive");
  }
  if (d.empty()) {
    return Status::InvalidArgument(
        "bc: latency vector must have at least d^(0)");
  }
  for (std::size_t j = 0; j < d.size(); ++j) {
    if (d[j] < m + j) {
      return Status::InvalidArgument(
          ToString() + ": latency d^(" + std::to_string(j) + ") = " +
          std::to_string(d[j]) + " is below m + j = " +
          std::to_string(m + j) + "; no schedule can fit that many blocks");
    }
  }
  return Status::OK();
}

std::vector<PinwheelCondition> BroadcastCondition::ToPinwheelConjunct() const {
  std::vector<PinwheelCondition> out;
  out.reserve(d.size());
  for (std::size_t j = 0; j < d.size(); ++j) {
    out.push_back(PinwheelCondition{m + j, d[j]});
  }
  return out;
}

double BroadcastCondition::DensityLowerBound() const {
  double best = 0.0;
  for (std::size_t j = 0; j < d.size(); ++j) {
    best = std::max(best, static_cast<double>(m + j) /
                              static_cast<double>(d[j]));
  }
  return best;
}

std::string BroadcastCondition::ToString() const {
  std::ostringstream oss;
  oss << "bc(" << m << ", [";
  for (std::size_t j = 0; j < d.size(); ++j) {
    if (j > 0) oss << ", ";
    oss << d[j];
  }
  oss << "])";
  return oss.str();
}

std::uint64_t GuaranteedCount(const PinwheelCondition& c,
                              std::uint64_t window) {
  const std::uint64_t q = window / c.b;
  const std::uint64_t s = window % c.b;
  std::uint64_t extra = 0;
  if (c.a + s > c.b) extra = c.a + s - c.b;  // max(0, a - (b - s))
  return q * c.a + extra;
}

std::uint64_t ConjunctGuaranteedCount(
    const std::vector<PinwheelCondition>& conjunct, std::uint64_t window) {
  // Candidate enlarged windows: the window itself, plus the window rounded
  // up to the next multiple of each condition's period.
  std::vector<std::uint64_t> candidates;
  candidates.push_back(window);
  for (const PinwheelCondition& c : conjunct) {
    const std::uint64_t rounded = ((window + c.b - 1) / c.b) * c.b;
    if (rounded > window) candidates.push_back(rounded);
  }
  std::uint64_t best = 0;
  for (std::uint64_t enlarged : candidates) {
    std::uint64_t sum = 0;
    for (const PinwheelCondition& c : conjunct) {
      sum += GuaranteedCount(c, enlarged);
    }
    const std::uint64_t penalty = enlarged - window;
    if (sum > penalty) best = std::max(best, sum - penalty);
  }
  return best;
}

bool Implies(const PinwheelCondition& stronger,
             const PinwheelCondition& weaker) {
  return ConjunctGuaranteedCount({stronger}, weaker.b) >= weaker.a;
}

}  // namespace bdisk::algebra
