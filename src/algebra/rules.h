/// \file rules.h
/// \brief The paper's pinwheel algebra (Figure 8, rules R0-R5) and
/// transformation rules TR1 / TR2.
///
/// Each rule relates a condition on the left (the requirement) to conditions
/// on the right (what a scheduler is actually asked to satisfy); "LHS ⇐ RHS"
/// means every broadcast program satisfying the RHS also satisfies the LHS.
///
/// Two directions of helper are provided:
/// * *forward* (derive): given a condition that will be scheduled, derive a
///   condition it implies (R0, R1, R2, R4, R5) — used by tests and by the
///   optimizer's bookkeeping;
/// * *backward* (strengthen): given a requirement, produce a schedulable
///   condition that implies it (R3, TR1) — used to build candidates.
///
/// R4 and R5 introduce *helper* virtual tasks related by map(i', i): the two
/// task ids are semantically indistinguishable — blocks of file F_i are
/// broadcast whenever either task is scheduled. The MappedConjunct type
/// carries that bookkeeping.

#ifndef BDISK_ALGEBRA_RULES_H_
#define BDISK_ALGEBRA_RULES_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "algebra/condition.h"
#include "common/status.h"

namespace bdisk::algebra {

/// \name Forward rules: condition the RHS implies.
/// @{

/// R0: pc(a - x, b + y) ⇐ pc(a, b). Requires x < a (a result with a = 0 is
/// vacuous) and no overflow of b + y.
Result<PinwheelCondition> RuleR0(const PinwheelCondition& c, std::uint64_t x,
                                 std::uint64_t y);

/// R1: pc(n·a, n·b) ⇐ pc(a, b). Requires n >= 1.
Result<PinwheelCondition> RuleR1(const PinwheelCondition& c, std::uint64_t n);

/// R2: pc(a - x, b - x) ⇐ pc(a, b). Requires x < a.
Result<PinwheelCondition> RuleR2(const PinwheelCondition& c, std::uint64_t x);

/// R4: pc(a + x, b + y) ⇐ pc(a, b) ∧ pc(i', x, b + y) ∧ map(i', i).
/// Returns the implied combined condition given the base and the helper;
/// the helper's window must equal base.b + y for some y >= 0.
Result<PinwheelCondition> RuleR4(const PinwheelCondition& base,
                                 const PinwheelCondition& helper);

/// R5: pc(n·a, n·b - x) ⇐ pc(a, b) ∧ pc(i', x, n·b) ∧ map(i', i).
/// The helper's window must equal n * base.b, and its requirement x must be
/// below n·b (so the implied window is positive).
Result<PinwheelCondition> RuleR5(const PinwheelCondition& base,
                                 std::uint64_t n,
                                 const PinwheelCondition& helper);

/// @}
/// \name Backward rules: schedulable condition implying the requirement.
/// @{

/// R3: pc(a, b) ⇐ pc(1, floor(b / a)).
PinwheelCondition RuleR3(const PinwheelCondition& c);

/// TR1: bc(m, d⃗) ⇐ pc(1, min_j floor(d^(j) / (m + j))).
/// Fails (Infeasible) if the minimum is zero, i.e. some d^(j) < m + j.
Result<PinwheelCondition> RuleTR1(const BroadcastCondition& bc);

/// @}

/// \brief One pinwheel condition bound to a virtual task, with the original
/// file task it maps to (map(i', i) bookkeeping).
struct MappedCondition {
  /// Dense virtual-task index, unique within a MappedConjunct.
  std::uint32_t virtual_task = 0;
  PinwheelCondition condition;
  /// True for helper tasks introduced by R4/R5/TR2; false for the base.
  bool is_helper = false;
};

/// \brief A *nice* conjunct (Definition 1: one condition per virtual task)
/// implying a single broadcast-file condition.
struct MappedConjunct {
  std::vector<MappedCondition> conditions;

  double density() const {
    double s = 0.0;
    for (const MappedCondition& mc : conditions) s += mc.condition.density();
    return s;
  }

  /// "pc(4,8) ∧ pc'(1,9)" style rendering.
  std::string ToString() const;
};

/// TR2: bc(m, d⃗) ⇐ pc(m, d^(0)) ∧ pc(i_1, 1, d^(1)) ∧ ... ∧
/// pc(i_r, 1, d^(r)), all helpers mapped to the file's task. `bc` must
/// validate.
Result<MappedConjunct> RuleTR2(const BroadcastCondition& bc);

}  // namespace bdisk::algebra

#endif  // BDISK_ALGEBRA_RULES_H_
