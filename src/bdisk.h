/// \file bdisk.h
/// \brief Umbrella header: the full public API of the pinwheel-bdisk
/// library.
///
/// Include this for applications; include individual headers for faster
/// builds. See README.md for a tour and docs/ARCHITECTURE.md for the
/// layer dependency graph and error-handling conventions.

#ifndef BDISK_BDISK_H_
#define BDISK_BDISK_H_

// Foundations.
#include "common/crc32c.h"    // IWYU pragma: export
#include "common/random.h"    // IWYU pragma: export
#include "common/stats.h"     // IWYU pragma: export
#include "common/status.h"    // IWYU pragma: export
#include "common/zipf.h"      // IWYU pragma: export

// Information dispersal (Rabin's IDA + Bestavros' AIDA).
#include "gf/gf256.h"         // IWYU pragma: export
#include "gf/gf_bulk.h"       // IWYU pragma: export
#include "gf/matrix.h"        // IWYU pragma: export
#include "ida/aida.h"         // IWYU pragma: export
#include "ida/block.h"        // IWYU pragma: export
#include "ida/dispersal.h"    // IWYU pragma: export

// Pinwheel scheduling.
#include "pinwheel/chain_schedulers.h"     // IWYU pragma: export
#include "pinwheel/composite_scheduler.h"  // IWYU pragma: export
#include "pinwheel/exact_scheduler.h"      // IWYU pragma: export
#include "pinwheel/greedy_scheduler.h"     // IWYU pragma: export
#include "pinwheel/schedule.h"             // IWYU pragma: export
#include "pinwheel/task.h"                 // IWYU pragma: export
#include "pinwheel/verifier.h"             // IWYU pragma: export

// The pinwheel algebra (rules R0-R5, TR1/TR2, nice-conjunct conversion).
#include "algebra/condition.h"  // IWYU pragma: export
#include "algebra/optimizer.h"  // IWYU pragma: export
#include "algebra/rules.h"      // IWYU pragma: export

// Fault injection: erasure-channel models and the channel-spec grammar.
#include "faults/channel_model.h"  // IWYU pragma: export
#include "faults/channel_spec.h"   // IWYU pragma: export

// Broadcast disks.
#include "bdisk/bandwidth.h"        // IWYU pragma: export
#include "bdisk/block_size.h"       // IWYU pragma: export
#include "bdisk/delay_analysis.h"   // IWYU pragma: export
#include "bdisk/file_spec.h"        // IWYU pragma: export
#include "bdisk/flat_builder.h"     // IWYU pragma: export
#include "bdisk/indexing.h"         // IWYU pragma: export
#include "bdisk/multi_disk.h"       // IWYU pragma: export
#include "bdisk/pinwheel_builder.h" // IWYU pragma: export
#include "bdisk/program.h"          // IWYU pragma: export
#include "bdisk/spec_parser.h"      // IWYU pragma: export

// Simulation and the byte-level data plane.
#include "sim/cache.h"        // IWYU pragma: export
#include "sim/client.h"       // IWYU pragma: export
#include "sim/epoch.h"        // IWYU pragma: export
#include "sim/fault_model.h"  // IWYU pragma: export
#include "sim/metrics.h"      // IWYU pragma: export
#include "sim/server.h"       // IWYU pragma: export
#include "sim/simulation.h"   // IWYU pragma: export
#include "sim/versioned.h"    // IWYU pragma: export

// Online adaptation: demand estimation, incremental re-optimization,
// hot-swap program transitions.
#include "adaptive/adaptive_loop.h"      // IWYU pragma: export
#include "adaptive/demand_estimator.h"   // IWYU pragma: export
#include "adaptive/hot_swap.h"           // IWYU pragma: export
#include "adaptive/program_optimizer.h"  // IWYU pragma: export

#endif  // BDISK_BDISK_H_
