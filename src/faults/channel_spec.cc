#include "faults/channel_spec.h"

#include <cstdlib>
#include <map>
#include <vector>

#include "runtime/flags.h"

namespace bdisk::faults {

namespace {

/// Splits `text` on `sep` (no escaping; empty pieces preserved).
std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (true) {
    const std::size_t pos = text.find(sep, begin);
    if (pos == std::string::npos) {
      out.push_back(text.substr(begin));
      return out;
    }
    out.push_back(text.substr(begin, pos - begin));
    begin = pos + 1;
  }
}

/// Key-value arguments of one model term, with type- and range-checked
/// extraction and unknown-key detection.
class ModelArgs {
 public:
  static Result<ModelArgs> Parse(const std::string& model,
                                 const std::vector<std::string>& kvs) {
    ModelArgs args(model);
    for (const std::string& kv : kvs) {
      const std::size_t eq = kv.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == kv.size()) {
        return Status::InvalidArgument("channel spec: expected key=value in '" +
                                       model + "', got '" + kv + "'");
      }
      const std::string key = kv.substr(0, eq);
      if (!args.values_.emplace(key, kv.substr(eq + 1)).second) {
        return Status::InvalidArgument("channel spec: duplicate key '" + key +
                                       "' in '" + model + "'");
      }
    }
    return args;
  }

  Result<double> Probability(const std::string& key, double fallback) {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    consumed_.push_back(key);
    char* end = nullptr;
    const double value = std::strtod(it->second.c_str(), &end);
    // The negated range form also rejects NaN, which would otherwise
    // slide through both comparisons and silently disable the model.
    if (end == it->second.c_str() || *end != '\0' ||
        !(value >= 0.0 && value <= 1.0)) {
      return Status::InvalidArgument("channel spec: '" + key + "=" +
                                     it->second + "' in '" + model_ +
                                     "' is not a probability in [0, 1]");
    }
    return value;
  }

  Result<std::uint64_t> Uint(const std::string& key, std::uint64_t fallback) {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    consumed_.push_back(key);
    std::uint64_t value = 0;
    if (!runtime::ParseUint64Token(it->second.c_str(), &value)) {
      return Status::InvalidArgument("channel spec: '" + key + "=" +
                                     it->second + "' in '" + model_ +
                                     "' is not a 64-bit non-negative integer");
    }
    return value;
  }

  /// Fails if any supplied key was never consumed (typo detection).
  Status CheckAllConsumed() const {
    for (const auto& [key, value] : values_) {
      bool used = false;
      for (const std::string& c : consumed_) {
        if (c == key) used = true;
      }
      if (!used) {
        return Status::InvalidArgument("channel spec: unknown key '" + key +
                                       "' for model '" + model_ + "'");
      }
    }
    return Status::OK();
  }

 private:
  explicit ModelArgs(std::string model) : model_(std::move(model)) {}

  std::string model_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> consumed_;
};

Result<std::unique_ptr<ChannelModel>> ParseOneModel(const std::string& term) {
  const std::size_t colon = term.find(':');
  const std::string name = term.substr(0, colon);
  std::vector<std::string> kvs;
  if (colon != std::string::npos) {
    kvs = Split(term.substr(colon + 1), ',');
  }
  BDISK_ASSIGN_OR_RETURN(ModelArgs args, ModelArgs::Parse(term, kvs));

  std::unique_ptr<ChannelModel> model;
  if (name == "lossless") {
    model = std::make_unique<LosslessChannel>();
  } else if (name == "bernoulli") {
    BDISK_ASSIGN_OR_RETURN(const double p, args.Probability("p", 0.1));
    BDISK_ASSIGN_OR_RETURN(const std::uint64_t seed, args.Uint("seed", 1));
    model = std::make_unique<BernoulliChannel>(p, seed);
  } else if (name == "gilbert") {
    GilbertElliottChannel::Params params;
    BDISK_ASSIGN_OR_RETURN(params.p_good_to_bad,
                           args.Probability("pgb", params.p_good_to_bad));
    BDISK_ASSIGN_OR_RETURN(params.p_bad_to_good,
                           args.Probability("pbg", params.p_bad_to_good));
    BDISK_ASSIGN_OR_RETURN(params.loss_good,
                           args.Probability("lg", params.loss_good));
    BDISK_ASSIGN_OR_RETURN(params.loss_bad,
                           args.Probability("lb", params.loss_bad));
    BDISK_ASSIGN_OR_RETURN(const std::uint64_t seed, args.Uint("seed", 1));
    model = std::make_unique<GilbertElliottChannel>(params, seed);
  } else if (name == "corrupt") {
    BDISK_ASSIGN_OR_RETURN(const double p, args.Probability("p", 0.05));
    BDISK_ASSIGN_OR_RETURN(const std::uint64_t seed, args.Uint("seed", 1));
    model = std::make_unique<CorruptionChannel>(p, seed);
  } else if (name == "outage") {
    BDISK_ASSIGN_OR_RETURN(const std::uint64_t period, args.Uint("period", 0));
    BDISK_ASSIGN_OR_RETURN(const std::uint64_t start, args.Uint("start", 0));
    BDISK_ASSIGN_OR_RETURN(const std::uint64_t len, args.Uint("len", 0));
    model = std::make_unique<OutageChannel>(period, start, len);
  } else {
    return Status::InvalidArgument(
        "channel spec: unknown model '" + name +
        "' (expected lossless, bernoulli, gilbert, corrupt, or outage)");
  }
  BDISK_RETURN_NOT_OK(args.CheckAllConsumed());
  return model;
}

}  // namespace

Result<std::unique_ptr<ChannelModel>> ParseChannelSpec(
    const std::string& spec) {
  if (spec.empty()) {
    return Status::InvalidArgument("channel spec: empty specification");
  }
  std::vector<std::unique_ptr<ChannelModel>> parts;
  for (const std::string& term : Split(spec, '+')) {
    BDISK_ASSIGN_OR_RETURN(std::unique_ptr<ChannelModel> model,
                           ParseOneModel(term));
    parts.push_back(std::move(model));
  }
  if (parts.size() == 1) return std::move(parts.front());
  return std::unique_ptr<ChannelModel>(
      std::make_unique<ComposedChannel>(std::move(parts)));
}

}  // namespace bdisk::faults
