/// \file channel_spec.h
/// \brief Textual channel specifications: one grammar shared by the planner
/// (`bdisk_planner --channel`), the scenario regression fixtures, and the
/// benches, so a fault trace named anywhere names the same realization.
///
/// Grammar (whitespace-free):
///
///   spec    := model ( '+' model )*
///   model   := name ( ':' kv ( ',' kv )* )?
///   kv      := key '=' value
///
/// Models and their keys (all keys optional; defaults in parentheses):
///
///   lossless                        the fault-free channel
///   bernoulli  p (0.1), seed (1)    i.i.d. per-slot loss
///   gilbert    pgb (0.01), pbg (0.25), lg (0), lb (1), seed (1)
///                                   bursty two-state loss
///   corrupt    p (0.05), seed (1)   i.i.d. per-slot byte corruption
///   outage     period (0), start (0), len (0)
///                                   deterministic outage windows
///
/// '+' composes models into a superposition (channel_model.h). Examples:
///
///   bernoulli:p=0.1,seed=7
///   gilbert:pgb=0.02,pbg=0.2+corrupt:p=0.01
///   outage:period=1024,start=512,len=64

#ifndef BDISK_FAULTS_CHANNEL_SPEC_H_
#define BDISK_FAULTS_CHANNEL_SPEC_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "faults/channel_model.h"

namespace bdisk::faults {

/// \brief Parses a channel spec. Fails with InvalidArgument naming the
/// offending token on an unknown model, unknown key, malformed value, or
/// out-of-range probability.
Result<std::unique_ptr<ChannelModel>> ParseChannelSpec(
    const std::string& spec);

}  // namespace bdisk::faults

#endif  // BDISK_FAULTS_CHANNEL_SPEC_H_
