/// \file channel_model.h
/// \brief Pluggable erasure-channel models for fault injection.
///
/// The paper's fault-tolerance claim — any m of a file's n dispersed blocks
/// reconstruct it — is only exercised by a lossy channel. This layer models
/// the channel as a deterministic *fault trace*: a function from the
/// absolute slot number to a per-slot fault effect,
///
///   kNone       the block is delivered intact,
///   kLost       the block never arrives (erasure),
///   kCorrupted  the block arrives with damaged bytes (the client must
///               detect it via the block checksum and discard it).
///
/// **Determinism contract.** `FaultAt(slot)` is a *pure* function of
/// (model parameters, seed, slot), computed from the counter-based RNG
/// streams of runtime/rng_stream.h — never from mutable sequential state.
/// Consequently a fault trace is (a) exactly reproducible from its seed,
/// (b) random-access (a client starting at slot 10^6 needs no replay from
/// slot 0), and (c) invariant under sharding: any thread count observes the
/// identical realization, which is what keeps the sharded simulator's
/// metrics bit-identical to the serial path under faults.
///
/// The bursty Gilbert–Elliott model is inherently a Markov chain; it keeps
/// the contract by *frame regeneration*: time is cut into fixed frames, the
/// state at each frame boundary is drawn from the chain's stationary
/// distribution on the frame's own RNG stream, and the chain runs
/// sequentially only within a frame. Random access costs O(frame length);
/// burst statistics are exact within frames and only the (rare) bursts
/// straddling a boundary are truncated.
///
/// Models are safe for concurrent const use.

#ifndef BDISK_FAULTS_CHANNEL_MODEL_H_
#define BDISK_FAULTS_CHANNEL_MODEL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ida/block.h"

namespace bdisk::faults {

/// \brief Per-slot fault effect, in increasing severity order.
enum class FaultType : std::uint8_t {
  kNone = 0,
  kCorrupted = 1,
  kLost = 2,
};

/// \brief A deterministic, random-access fault trace.
class ChannelModel {
 public:
  virtual ~ChannelModel() = default;

  /// The fault effect at `slot`. Pure: depends only on the model's
  /// configuration and `slot`.
  virtual FaultType FaultAt(std::uint64_t slot) const = 0;

  /// Fills `out[0 .. end-begin)` with the effects of slots [begin, end).
  /// Semantically identical to calling FaultAt per slot; stateful-in-spirit
  /// models (Gilbert–Elliott) override it to walk each frame once.
  virtual void FillFaults(std::uint64_t begin, std::uint64_t end,
                          FaultType* out) const;

  /// Applies this model's slot-`slot` corruption to `block`. Only
  /// meaningful when FaultAt(slot) == kCorrupted; the base implementation
  /// is a no-op. Implementations damage the checksum-covered bytes (payload
  /// and header identity fields) and never touch the stored checksum field,
  /// so a stamped block's corruption is detectable (guaranteed for bursts
  /// <= 32 bits, with probability 1 - 2^-32 otherwise).
  virtual void CorruptBlock(std::uint64_t slot, ida::Block* block) const;

  /// Canonical human/machine-readable description, re-parseable by
  /// ParseChannelSpec (channel_spec.h), e.g. "bernoulli:p=0.1,seed=42".
  virtual std::string Describe() const = 0;
};

/// \brief The fault-free channel ("lossless").
class LosslessChannel final : public ChannelModel {
 public:
  FaultType FaultAt(std::uint64_t) const override { return FaultType::kNone; }
  void FillFaults(std::uint64_t begin, std::uint64_t end,
                  FaultType* out) const override;
  std::string Describe() const override { return "lossless"; }
};

/// \brief Independent per-slot loss with probability p (the paper's model:
/// "individual transmission errors occur independently of each other").
class BernoulliChannel final : public ChannelModel {
 public:
  BernoulliChannel(double loss_probability, std::uint64_t seed)
      : p_(loss_probability), seed_(seed) {}

  FaultType FaultAt(std::uint64_t slot) const override;
  std::string Describe() const override;

 private:
  double p_;
  std::uint64_t seed_;
};

/// \brief Two-state bursty loss (Gilbert–Elliott) under frame regeneration.
class GilbertElliottChannel final : public ChannelModel {
 public:
  struct Params {
    /// P(Good -> Bad) per slot.
    double p_good_to_bad = 0.01;
    /// P(Bad -> Good) per slot.
    double p_bad_to_good = 0.25;
    /// Loss probability while Good.
    double loss_good = 0.0;
    /// Loss probability while Bad.
    double loss_bad = 1.0;
  };

  /// Slots per regeneration frame. Large against the default mean burst
  /// length (1 / p_bad_to_good = 4), so boundary truncation is negligible.
  static constexpr std::uint64_t kFrameSlots = 256;

  GilbertElliottChannel(const Params& params, std::uint64_t seed)
      : params_(params), seed_(seed) {}

  FaultType FaultAt(std::uint64_t slot) const override;
  void FillFaults(std::uint64_t begin, std::uint64_t end,
                  FaultType* out) const override;
  std::string Describe() const override;

  /// Stationary probability of the Bad state.
  double StationaryBadProbability() const;
  /// Stationary per-slot loss probability of the configured chain.
  double StationaryLossRate() const;

 private:
  Params params_;
  std::uint64_t seed_;
};

/// \brief Independent per-slot byte corruption with probability p: the
/// block arrives, but 1-4 of its checksum-covered bytes (payload, or —
/// rarely — header identity fields) are damaged.
class CorruptionChannel final : public ChannelModel {
 public:
  CorruptionChannel(double corruption_probability, std::uint64_t seed)
      : p_(corruption_probability), seed_(seed) {}

  FaultType FaultAt(std::uint64_t slot) const override;
  void CorruptBlock(std::uint64_t slot, ida::Block* block) const override;
  std::string Describe() const override;

 private:
  double p_;
  std::uint64_t seed_;
};

/// \brief Deterministic outage windows: every slot with
/// (slot - start) mod period in [0, length) is lost; period == 0 gives the
/// single window [start, start + length).
///
/// This models per-disk downtime: a multi-disk program places each disk's
/// chunks at fixed offsets within its minor cycle, so a periodic window
/// aligned with the minor cycle blacks out exactly one disk's slots (and a
/// one-shot window models a client driving through a tunnel).
class OutageChannel final : public ChannelModel {
 public:
  OutageChannel(std::uint64_t period, std::uint64_t start,
                std::uint64_t length)
      : period_(period), start_(start), length_(length) {}

  FaultType FaultAt(std::uint64_t slot) const override;
  std::string Describe() const override;

 private:
  std::uint64_t period_;
  std::uint64_t start_;
  std::uint64_t length_;
};

/// \brief Superposition of independent channels: each slot suffers the
/// most severe member effect (kLost > kCorrupted > kNone); corruption is
/// applied by every member that corrupts the slot.
///
/// Different model *families* draw from family-tagged RNG streams, so
/// e.g. a Bernoulli loss and a corruption model with the same seed are
/// still independent. Two same-family members with identical seeds and
/// parameters are the same trace — give them distinct seeds.
class ComposedChannel final : public ChannelModel {
 public:
  explicit ComposedChannel(std::vector<std::unique_ptr<ChannelModel>> parts);

  FaultType FaultAt(std::uint64_t slot) const override;
  void FillFaults(std::uint64_t begin, std::uint64_t end,
                  FaultType* out) const override;
  void CorruptBlock(std::uint64_t slot, ida::Block* block) const override;
  std::string Describe() const override;

 private:
  std::vector<std::unique_ptr<ChannelModel>> parts_;
};

}  // namespace bdisk::faults

#endif  // BDISK_FAULTS_CHANNEL_MODEL_H_
