#include "faults/channel_model.h"

#include <algorithm>
#include <charconv>

#include "common/check.h"
#include "common/random.h"
#include "runtime/rng_stream.h"

namespace bdisk::faults {

namespace {

/// Stream-family tags mixed into each model's seed so that *different*
/// model families composed with the same user seed still draw from
/// decorrelated streams (without a tag, bernoulli:p=0.1+corrupt:p=0.05
/// with equal seeds would compare the identical uniform draw against both
/// thresholds, and the severity rule would silently swallow every
/// corruption under a loss). Same-family members of a composition should
/// still be given distinct seeds.
constexpr std::uint64_t kLossStreamTag = 0x10'55'7A'6B'E4'A0'01ULL;
constexpr std::uint64_t kBurstStreamTag = 0xB0'57'7A'6F'4A'3E'02ULL;
constexpr std::uint64_t kCorruptStreamTag = 0xC0'44'7A'61'0D'DB'03ULL;

/// Tag separating a corruption model's byte-damage draws from its
/// per-slot decision draws (both are indexed by slot).
constexpr std::uint64_t kCorruptionBytesTag = 0xC0B7'55E5'0DDB'A11ULL;

// Shortest representation that round-trips exactly (std::to_chars), so
// Describe() really is re-parseable to the *same* trace — %g's 6-digit
// truncation would silently rename non-round probabilities.
std::string FormatDouble(double v) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  BDISK_CHECK(ec == std::errc());
  return std::string(buf, ptr);
}

}  // namespace

void ChannelModel::FillFaults(std::uint64_t begin, std::uint64_t end,
                              FaultType* out) const {
  for (std::uint64_t t = begin; t < end; ++t) out[t - begin] = FaultAt(t);
}

void ChannelModel::CorruptBlock(std::uint64_t, ida::Block*) const {}

void LosslessChannel::FillFaults(std::uint64_t begin, std::uint64_t end,
                                 FaultType* out) const {
  std::fill(out, out + (end - begin), FaultType::kNone);
}

FaultType BernoulliChannel::FaultAt(std::uint64_t slot) const {
  Rng rng = runtime::StreamRng(seed_ ^ kLossStreamTag, slot);
  return rng.Bernoulli(p_) ? FaultType::kLost : FaultType::kNone;
}

std::string BernoulliChannel::Describe() const {
  return "bernoulli:p=" + FormatDouble(p_) +
         ",seed=" + std::to_string(seed_);
}

double GilbertElliottChannel::StationaryBadProbability() const {
  const double to_bad = params_.p_good_to_bad;
  const double to_good = params_.p_bad_to_good;
  if (to_bad + to_good <= 0.0) return 0.0;
  return to_bad / (to_bad + to_good);
}

double GilbertElliottChannel::StationaryLossRate() const {
  const double pi_bad = StationaryBadProbability();
  return (1.0 - pi_bad) * params_.loss_good + pi_bad * params_.loss_bad;
}

FaultType GilbertElliottChannel::FaultAt(std::uint64_t slot) const {
  // Regenerate at the frame boundary, then run the chain within the frame.
  // Draw order per slot is loss-then-transition, and must match
  // FillFaults exactly.
  const std::uint64_t frame = slot / kFrameSlots;
  Rng rng = runtime::StreamRng(seed_ ^ kBurstStreamTag, frame);
  bool bad = rng.Bernoulli(StationaryBadProbability());
  for (std::uint64_t t = frame * kFrameSlots;; ++t) {
    const bool lost =
        rng.Bernoulli(bad ? params_.loss_bad : params_.loss_good);
    if (t == slot) return lost ? FaultType::kLost : FaultType::kNone;
    bad = bad ? !rng.Bernoulli(params_.p_bad_to_good)
              : rng.Bernoulli(params_.p_good_to_bad);
  }
}

void GilbertElliottChannel::FillFaults(std::uint64_t begin, std::uint64_t end,
                                       FaultType* out) const {
  // Walk each overlapped frame once instead of O(frame) work per slot.
  std::uint64_t t = begin;
  while (t < end) {
    const std::uint64_t frame = t / kFrameSlots;
    const std::uint64_t frame_end =
        std::min(end, (frame + 1) * kFrameSlots);
    Rng rng = runtime::StreamRng(seed_ ^ kBurstStreamTag, frame);
    bool bad = rng.Bernoulli(StationaryBadProbability());
    for (std::uint64_t s = frame * kFrameSlots; s < frame_end; ++s) {
      const bool lost =
          rng.Bernoulli(bad ? params_.loss_bad : params_.loss_good);
      if (s >= t) {
        out[s - begin] = lost ? FaultType::kLost : FaultType::kNone;
      }
      bad = bad ? !rng.Bernoulli(params_.p_bad_to_good)
                : rng.Bernoulli(params_.p_good_to_bad);
    }
    t = frame_end;
  }
}

std::string GilbertElliottChannel::Describe() const {
  return "gilbert:pgb=" + FormatDouble(params_.p_good_to_bad) +
         ",pbg=" + FormatDouble(params_.p_bad_to_good) +
         ",lg=" + FormatDouble(params_.loss_good) +
         ",lb=" + FormatDouble(params_.loss_bad) +
         ",seed=" + std::to_string(seed_);
}

FaultType CorruptionChannel::FaultAt(std::uint64_t slot) const {
  Rng rng = runtime::StreamRng(seed_ ^ kCorruptStreamTag, slot);
  return rng.Bernoulli(p_) ? FaultType::kCorrupted : FaultType::kNone;
}

void CorruptionChannel::CorruptBlock(std::uint64_t slot,
                                     ida::Block* block) const {
  // Damage 1-4 distinct bytes of the checksum-covered region: the payload
  // plus the serialized header identity bytes — the same canonical layout
  // BlockChecksum covers (ida::SerializeIdentity). The stored checksum
  // field is never touched, so stamped corruption is detectable. Distinct
  // positions XORed with non-zero deltas guarantee the block really
  // changes.
  Rng rng = runtime::StreamRng(seed_ ^ kCorruptionBytesTag, slot);
  const std::size_t covered =
      block->payload.size() + ida::kBlockIdentityBytes;
  const std::size_t count = static_cast<std::size_t>(
      1 + rng.Uniform(std::min<std::uint64_t>(4, covered)));
  auto identity = ida::SerializeIdentity(block->header);
  for (std::size_t pos : rng.SampleWithoutReplacement(covered, count)) {
    const auto delta = static_cast<std::uint8_t>(1 + rng.Uniform(255));
    if (pos < block->payload.size()) {
      block->payload[pos] ^= delta;
    } else {
      identity[pos - block->payload.size()] ^= delta;
    }
  }
  ida::DeserializeIdentity(identity, &block->header);
}

std::string CorruptionChannel::Describe() const {
  return "corrupt:p=" + FormatDouble(p_) + ",seed=" + std::to_string(seed_);
}

FaultType OutageChannel::FaultAt(std::uint64_t slot) const {
  if (slot < start_) return FaultType::kNone;
  const std::uint64_t offset = slot - start_;
  const std::uint64_t phase = period_ == 0 ? offset : offset % period_;
  return phase < length_ ? FaultType::kLost : FaultType::kNone;
}

std::string OutageChannel::Describe() const {
  return "outage:period=" + std::to_string(period_) +
         ",start=" + std::to_string(start_) +
         ",len=" + std::to_string(length_);
}

ComposedChannel::ComposedChannel(
    std::vector<std::unique_ptr<ChannelModel>> parts)
    : parts_(std::move(parts)) {
  BDISK_CHECK(!parts_.empty());
}

FaultType ComposedChannel::FaultAt(std::uint64_t slot) const {
  FaultType worst = FaultType::kNone;
  for (const auto& part : parts_) {
    worst = std::max(worst, part->FaultAt(slot));
  }
  return worst;
}

void ComposedChannel::FillFaults(std::uint64_t begin, std::uint64_t end,
                                 FaultType* out) const {
  parts_.front()->FillFaults(begin, end, out);
  std::vector<FaultType> member(end - begin);
  for (std::size_t i = 1; i < parts_.size(); ++i) {
    parts_[i]->FillFaults(begin, end, member.data());
    for (std::uint64_t t = 0; t < end - begin; ++t) {
      out[t] = std::max(out[t], member[t]);
    }
  }
}

void ComposedChannel::CorruptBlock(std::uint64_t slot,
                                   ida::Block* block) const {
  for (const auto& part : parts_) {
    if (part->FaultAt(slot) == FaultType::kCorrupted) {
      part->CorruptBlock(slot, block);
    }
  }
}

std::string ComposedChannel::Describe() const {
  std::string out;
  for (const auto& part : parts_) {
    if (!out.empty()) out += "+";
    out += part->Describe();
  }
  return out;
}

}  // namespace bdisk::faults
