/// \file rng_stream.h
/// \brief Counter-based RNG stream splitting for deterministic parallelism.
///
/// Parallel code needs per-task randomness that depends only on
/// (base seed, task index) — never on execution order or shard count.
/// `StreamSeed` derives an independent, well-mixed seed for stream `stream`
/// of a base seed; `StreamRng` wraps it in a full generator. The simulator
/// uses one stream per request (stream = global request index), so the
/// sequence of draws a request sees is identical whether the workload runs
/// on one thread or eight.

#ifndef BDISK_RUNTIME_RNG_STREAM_H_
#define BDISK_RUNTIME_RNG_STREAM_H_

#include <cstdint>

#include "common/random.h"

namespace bdisk::runtime {

/// SplitMix64 finalizer: a bijective 64-bit mix with full avalanche.
constexpr std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// \brief Seed of stream `stream` under `base_seed`.
///
/// Injective in `stream` for a fixed base seed (Mix64 is bijective and XOR
/// preserves distinctness), and decorrelated even for adjacent indices by
/// the two mixing rounds.
constexpr std::uint64_t StreamSeed(std::uint64_t base_seed,
                                   std::uint64_t stream) {
  return Mix64(base_seed ^ Mix64(stream));
}

/// \brief Generator for stream `stream` of `base_seed`.
inline Rng StreamRng(std::uint64_t base_seed, std::uint64_t stream) {
  return Rng(StreamSeed(base_seed, stream));
}

}  // namespace bdisk::runtime

#endif  // BDISK_RUNTIME_RNG_STREAM_H_
