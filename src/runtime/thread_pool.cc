#include "runtime/thread_pool.h"

#include <utility>

#include "common/check.h"

namespace bdisk::runtime {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  BDISK_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    BDISK_CHECK(!stopping_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

unsigned ThreadPool::HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace bdisk::runtime
