#include "runtime/parallel_for.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>

#include "common/check.h"

namespace bdisk::runtime {

ShardRange ShardOf(std::uint64_t total, unsigned shards, unsigned shard) {
  BDISK_CHECK(shards > 0 && shard < shards);
  const std::uint64_t base = total / shards;
  const std::uint64_t rem = total % shards;
  ShardRange range;
  range.begin = shard * base + std::min<std::uint64_t>(shard, rem);
  range.end = range.begin + base + (shard < rem ? 1 : 0);
  return range;
}

unsigned ShardCountFor(ThreadPool* pool, std::uint64_t items) {
  if (pool == nullptr || items == 0) return 1;
  return static_cast<unsigned>(
      std::min<std::uint64_t>(pool->thread_count(), items));
}

void ParallelFor(ThreadPool* pool, std::uint64_t total, unsigned shards,
                 const std::function<void(unsigned, ShardRange)>& fn) {
  BDISK_CHECK(shards > 0);
  if (pool == nullptr || shards == 1) {
    for (unsigned s = 0; s < shards; ++s) {
      const ShardRange range = ShardOf(total, shards, s);
      if (range.size() > 0) fn(s, range);
    }
    return;
  }

  std::mutex mu;
  std::condition_variable done;
  unsigned remaining = 0;
  for (unsigned s = 0; s < shards; ++s) {
    if (ShardOf(total, shards, s).size() > 0) ++remaining;
  }
  if (remaining == 0) return;

  for (unsigned s = 0; s < shards; ++s) {
    const ShardRange range = ShardOf(total, shards, s);
    if (range.size() == 0) continue;
    pool->Submit([&fn, &mu, &done, &remaining, s, range] {
      fn(s, range);
      std::lock_guard<std::mutex> lock(mu);
      if (--remaining == 0) done.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  done.wait(lock, [&remaining] { return remaining == 0; });
}

}  // namespace bdisk::runtime
