/// \file thread_pool.h
/// \brief Fixed-size worker pool — the only component in the library that
/// creates threads.
///
/// Ownership rule (docs/ARCHITECTURE.md): library layers never own a pool.
/// Executables (benches, tools, servers) construct one and pass
/// `ThreadPool*` down through the APIs that accept it; a null pool means
/// "run serially on the caller's thread". This keeps thread creation at
/// the edge of the system and makes every parallel code path trivially
/// exercisable in serial mode.

#ifndef BDISK_RUNTIME_THREAD_POOL_H_
#define BDISK_RUNTIME_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bdisk::runtime {

/// \brief Fixed-size thread pool with a FIFO task queue.
///
/// Tasks must not throw (the library is exception-free) and must not
/// submit-and-wait on the same pool from inside a task (a task blocking on
/// work queued behind it can deadlock a saturated pool).
class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to at least 1).
  explicit ThreadPool(unsigned threads);

  /// Drains any outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned thread_count() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueues one task for execution on some worker.
  void Submit(std::function<void()> task);

  /// Hardware concurrency as reported by the OS, never 0.
  static unsigned HardwareThreads();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace bdisk::runtime

#endif  // BDISK_RUNTIME_THREAD_POOL_H_
