/// \file parallel_for.h
/// \brief Deterministic sharded-map primitive over an index range.
///
/// `ParallelFor` splits `[0, total)` into `shards` contiguous ranges whose
/// boundaries depend only on `(total, shards)` — never on timing — and runs
/// one task per non-empty shard. Callers that keep per-shard state indexed
/// by shard number and combine it with an order-independent merge (e.g.
/// `RunningStats::Merge`) obtain results that are bit-identical to the
/// serial path for any pool size; see docs/ARCHITECTURE.md for the full
/// determinism contract.

#ifndef BDISK_RUNTIME_PARALLEL_FOR_H_
#define BDISK_RUNTIME_PARALLEL_FOR_H_

#include <cstdint>
#include <functional>

#include "runtime/thread_pool.h"

namespace bdisk::runtime {

/// Half-open index range [begin, end).
struct ShardRange {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;

  std::uint64_t size() const { return end - begin; }
};

/// \brief Contiguous shard `shard` of `[0, total)` split into `shards`
/// parts. Deterministic in (total, shards, shard); shard sizes differ by at
/// most one, earlier shards taking the remainder. Requires shard < shards.
ShardRange ShardOf(std::uint64_t total, unsigned shards, unsigned shard);

/// \brief Number of shards to use for `items` units of work on `pool`: one
/// per worker, capped by the item count; 1 for a null pool or no work.
unsigned ShardCountFor(ThreadPool* pool, std::uint64_t items);

/// \brief Runs `fn(shard, ShardOf(total, shards, shard))` for every
/// non-empty shard and blocks until all of them have completed.
///
/// With a null pool or a single shard, runs inline on the caller's thread
/// in shard order — the serial reference path. `fn` must not throw and
/// must not recursively invoke ParallelFor on the same pool.
void ParallelFor(ThreadPool* pool, std::uint64_t total, unsigned shards,
                 const std::function<void(unsigned, ShardRange)>& fn);

}  // namespace bdisk::runtime

#endif  // BDISK_RUNTIME_PARALLEL_FOR_H_
