/// \file flags.h
/// \brief Command-line parsing for the flags shared across executables.
///
/// Pools are owned at the edge (docs/ARCHITECTURE.md), so every executable
/// that takes a thread count parses the same flag. One parser keeps the
/// semantics uniform across benches and tools: `--threads N` or
/// `--threads=N`; absent, zero, negative, or malformed values fall back.
/// The generic UintFlag / DoubleFlag / ConsumeBoolFlag helpers give bench
/// and tool parameters (`--files N`, `--theta X`, `--adaptive`) the same
/// two spellings and fallback behaviour.

#ifndef BDISK_RUNTIME_FLAGS_H_
#define BDISK_RUNTIME_FLAGS_H_

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/status.h"

namespace bdisk::runtime {

/// \brief Strict decimal uint64 parse: the whole token, no sign, no
/// whitespace, no overflow (ERANGE would otherwise silently saturate to
/// ULLONG_MAX). The single parser behind UintFlag, the planner's value
/// flags, and the channel-spec grammar.
inline bool ParseUint64Token(const char* token, std::uint64_t* out) {
  if (token == nullptr || token[0] < '0' || token[0] > '9') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(token, &end, 10);
  if (end == token || *end != '\0' || errno == ERANGE) return false;
  *out = static_cast<std::uint64_t>(value);
  return true;
}

/// \brief Strict byte-size parse: a decimal count with an optional binary
/// suffix (`B`, `KiB`, `MiB`, `GiB` — exact spelling, no space). Used by
/// `--store-bytes`-style flags so capacities read as "256MiB" instead of
/// nine-digit literals. Rejects anything else: sign, whitespace, decimal
/// fractions, SI suffixes (`KB`), and products that overflow 64 bits.
inline bool ParseByteSizeToken(const char* token, std::uint64_t* out) {
  if (token == nullptr || token[0] < '0' || token[0] > '9') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(token, &end, 10);
  if (end == token || errno == ERANGE) return false;
  unsigned shift = 0;
  if (*end != '\0') {
    if (std::strcmp(end, "B") == 0) {
      shift = 0;
    } else if (std::strcmp(end, "KiB") == 0) {
      shift = 10;
    } else if (std::strcmp(end, "MiB") == 0) {
      shift = 20;
    } else if (std::strcmp(end, "GiB") == 0) {
      shift = 30;
    } else {
      return false;
    }
  }
  if (shift != 0 && value > (~0ull >> shift)) return false;
  *out = static_cast<std::uint64_t>(value) << shift;
  return true;
}

/// \brief ParseByteSizeToken with a typed error naming the offending token
/// (channel-spec error style) for callers that report to users.
inline Result<std::uint64_t> ParseByteSize(const std::string& token) {
  std::uint64_t value = 0;
  if (!ParseByteSizeToken(token.c_str(), &value)) {
    return Status::InvalidArgument(
        "byte size: '" + token +
        "' is not a decimal count with an optional B, KiB, MiB, or GiB "
        "suffix");
  }
  return value;
}

/// Largest accepted thread count — far above any real machine, low enough
/// that a typo cannot wrap the unsigned conversion or exhaust the process
/// spawning threads.
inline constexpr long kMaxThreadsFlag = 4096;

/// \brief Parses one candidate value token. Accepts only a complete
/// positive integer in (0, kMaxThreadsFlag].
inline bool ParseThreadsValue(const char* token, unsigned* out) {
  char* end = nullptr;
  const long value = std::strtol(token, &end, 10);
  if (end == token || *end != '\0') return false;
  if (value <= 0 || value > kMaxThreadsFlag) return false;
  *out = static_cast<unsigned>(value);
  return true;
}

/// \brief Parses `--threads N` / `--threads=N` from argv without mutating
/// it; returns `fallback` when the flag is absent or its value malformed.
inline unsigned ThreadsFlag(int argc, char** argv, unsigned fallback = 1) {
  unsigned value = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      if (ParseThreadsValue(argv[i + 1], &value)) return value;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      if (ParseThreadsValue(argv[i] + 10, &value)) return value;
    }
  }
  return fallback;
}

/// \brief Like ThreadsFlag, but also removes the flag (and its valid
/// value) from argv, compacting it and updating *argc, so the caller can
/// treat the remaining arguments as positional. A `--threads` or
/// `--threads=` whose value is not a valid count is left in place for the
/// caller's own usage check — neither a positional argument nor a typo is
/// ever silently consumed.
inline unsigned ConsumeThreadsFlag(int* argc, char** argv,
                                   unsigned fallback = 1) {
  const unsigned threads = ThreadsFlag(*argc, argv, fallback);
  unsigned ignored = 0;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < *argc &&
        ParseThreadsValue(argv[i + 1], &ignored)) {
      ++i;  // Flag plus valid value: drop both.
      continue;
    }
    if (std::strncmp(argv[i], "--threads=", 10) == 0 &&
        ParseThreadsValue(argv[i] + 10, &ignored)) {
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  argv[out] = nullptr;  // Preserve the argv[argc] == NULL guarantee.
  return threads;
}

/// \brief Value token of `--<name> V` / `--<name>=V`, or nullptr when the
/// flag is absent or valueless.
inline const char* FlagValueToken(int argc, char** argv, const char* name) {
  const std::size_t name_len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) continue;
    const char* body = argv[i] + 2;
    if (std::strncmp(body, name, name_len) != 0) continue;
    if (body[name_len] == '\0') {
      if (i + 1 < argc) return argv[i + 1];
    } else if (body[name_len] == '=') {
      return body + name_len + 1;
    }
  }
  return nullptr;
}

/// \brief Parses `--<name> N` / `--<name>=N` as an unsigned integer;
/// returns `fallback` when absent or malformed. Negative values are
/// malformed (strtoull would silently wrap them).
inline std::uint64_t UintFlag(int argc, char** argv, const char* name,
                              std::uint64_t fallback) {
  std::uint64_t value = 0;
  if (!ParseUint64Token(FlagValueToken(argc, argv, name), &value)) {
    return fallback;
  }
  return value;
}

/// \brief Parses `--<name> SIZE` / `--<name>=SIZE` as a byte size
/// (ParseByteSizeToken); returns `fallback` when absent or malformed.
inline std::uint64_t ByteSizeFlag(int argc, char** argv, const char* name,
                                  std::uint64_t fallback) {
  std::uint64_t value = 0;
  if (!ParseByteSizeToken(FlagValueToken(argc, argv, name), &value)) {
    return fallback;
  }
  return value;
}

/// \brief Parses `--<name> X` / `--<name>=X` as a double; returns
/// `fallback` when absent or malformed.
inline double DoubleFlag(int argc, char** argv, const char* name,
                         double fallback) {
  const char* token = FlagValueToken(argc, argv, name);
  if (token == nullptr) return fallback;
  char* end = nullptr;
  const double value = std::strtod(token, &end);
  if (end == token || *end != '\0') return fallback;
  return value;
}

/// \brief Value of `--<name> V` / `--<name>=V` as a string, removing the
/// flag (and its value) from argv and updating *argc so the caller can
/// treat the remaining arguments as positional; returns `fallback` when
/// the flag is absent. A trailing `--<name>` with no value is left in
/// place for the caller's own usage check.
inline const char* ConsumeStringFlag(int* argc, char** argv, const char* name,
                                     const char* fallback = nullptr) {
  const char* value = fallback;
  const std::size_t name_len = std::strlen(name);
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0) {
      const char* body = argv[i] + 2;
      if (std::strncmp(body, name, name_len) == 0) {
        if (body[name_len] == '\0' && i + 1 < *argc) {
          value = argv[i + 1];
          ++i;  // Flag plus value: drop both.
          continue;
        }
        if (body[name_len] == '=') {
          value = body + name_len + 1;
          continue;
        }
      }
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  argv[out] = nullptr;  // Preserve the argv[argc] == NULL guarantee.
  return value;
}

/// \brief True iff `--<name>` appears in argv; removes it (compacting argv
/// and updating *argc) so the caller can treat the rest as positional.
inline bool ConsumeBoolFlag(int* argc, char** argv, const char* name) {
  bool present = false;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0 &&
        std::strcmp(argv[i] + 2, name) == 0) {
      present = true;
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  argv[out] = nullptr;  // Preserve the argv[argc] == NULL guarantee.
  return present;
}

/// \brief Occurrences of `--<name>` (either spelling: `--<name> V` and
/// `--<name>=V` both count, as does a bare `--<name>`).
inline int CountFlagOccurrences(int argc, char** argv, const char* name) {
  const std::size_t name_len = std::strlen(name);
  int count = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) continue;
    const char* body = argv[i] + 2;
    if (std::strncmp(body, name, name_len) != 0) continue;
    if (body[name_len] == '\0' || body[name_len] == '=') ++count;
  }
  return count;
}

/// \brief Typed error for a flag given more than once. A repeated flag is
/// almost always an edited-command mistake, and silently letting one
/// occurrence win (first for the value helpers, last for the consuming
/// ones — historically they even disagreed) means the user runs something
/// other than what they read on their own command line.
inline Status DuplicateFlagError(const char* name) {
  return Status::InvalidArgument(std::string("flag --") + name +
                                 " given more than once");
}

/// \brief Strict ConsumeStringFlag: accepts `--<name> V` and
/// `--<name>=V`, removes the flag + value from argv, and errors (naming
/// the flag) when the flag appears more than once. Returns `fallback`
/// when absent. A trailing valueless `--<name>` is left in place for the
/// caller's usage check, exactly like ConsumeStringFlag.
inline Result<const char*> ConsumeStringFlagOnce(
    int* argc, char** argv, const char* name,
    const char* fallback = nullptr) {
  if (CountFlagOccurrences(*argc, argv, name) > 1) {
    return DuplicateFlagError(name);
  }
  return ConsumeStringFlag(argc, argv, name, fallback);
}

/// \brief Strict presence flag: true iff `--<name>` appears exactly once
/// (removed from argv); absent is false; more than once is an error
/// naming the flag.
inline Result<bool> ConsumeBoolFlagOnce(int* argc, char** argv,
                                        const char* name) {
  if (CountFlagOccurrences(*argc, argv, name) > 1) {
    return DuplicateFlagError(name);
  }
  return ConsumeBoolFlag(argc, argv, name);
}

/// \brief Strict uint flag: both spellings, consumed from argv, duplicate
/// and malformed values are errors naming the flag; absent = `fallback`.
inline Result<std::uint64_t> ConsumeUintFlagOnce(int* argc, char** argv,
                                                 const char* name,
                                                 std::uint64_t fallback) {
  BDISK_ASSIGN_OR_RETURN(const char* token,
                         ConsumeStringFlagOnce(argc, argv, name));
  if (token == nullptr) return fallback;
  std::uint64_t value = 0;
  if (!ParseUint64Token(token, &value)) {
    return Status::InvalidArgument(std::string("flag --") + name +
                                   ": '" + token +
                                   "' is not a non-negative integer");
  }
  return value;
}

/// \brief Strict byte-size flag (ParseByteSizeToken grammar): both
/// spellings, consumed, duplicates and malformed values are errors naming
/// the flag; absent = `fallback`.
inline Result<std::uint64_t> ConsumeByteSizeFlagOnce(int* argc, char** argv,
                                                     const char* name,
                                                     std::uint64_t fallback) {
  BDISK_ASSIGN_OR_RETURN(const char* token,
                         ConsumeStringFlagOnce(argc, argv, name));
  if (token == nullptr) return fallback;
  std::uint64_t value = 0;
  if (!ParseByteSizeToken(token, &value)) {
    return Status::InvalidArgument(
        std::string("flag --") + name + ": '" + token +
        "' is not a byte size (decimal count with optional B/KiB/MiB/GiB)");
  }
  return value;
}


}  // namespace bdisk::runtime

#endif  // BDISK_RUNTIME_FLAGS_H_
