/// \file wire.h
/// \brief The broadcast datagram format: one UDP datagram per slot.
///
/// The wire carries exactly what the in-process data plane hands a client —
/// a self-identifying coded block (ida/block.h) stamped with its CRC-32C
/// checksum — plus the two pieces of channel context a tuned-in receiver
/// cannot infer on its own: the absolute slot number (the broadcast clock)
/// and the program epoch governing that slot (sim/epoch.h). Everything a
/// client needs to participate mid-stream is in every datagram; there is no
/// handshake, no uplink, and no per-client state on the server.
///
/// Layout (little-endian, fixed 52-byte header):
///
///   offset size field
///   0      4    magic "BDK1"
///   4      1    type (0 = block, 1 = idle beacon, 2 = end of stream)
///   5      3    reserved, zero
///   8      8    slot
///   16     8    epoch
///   24     24   block identity (ida::SerializeIdentity: file, index, m, n,
///               version) — zero for control datagrams
///   48     4    block checksum (the CRC-32C stamp of ida::BlockChecksum;
///               0 = control datagram / unstamped)
///   52     ...  payload (block datagrams only)
///
/// The identity + checksum bytes are byte-identical to the in-process
/// block header, so `ReconstructingClient::OfferEx` rejects a corrupted
/// datagram through exactly the same integrity check as the in-process
/// path — the wire adds no second checksum and no second rejection policy.
///
/// Idle beacons mark slots the program leaves empty (they advance a
/// listener's clock and liveness timer); the end-of-stream datagram marks
/// the served horizon so a listener can distinguish "run over" from "wire
/// gone quiet".

#ifndef BDISK_NET_WIRE_H_
#define BDISK_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "ida/block.h"

namespace bdisk::net {

/// \brief Datagram taxonomy. Values are the on-wire type byte.
enum class DatagramType : std::uint8_t {
  /// One coded block of one slot.
  kBlock = 0,
  /// An idle slot (nothing scheduled): header only.
  kIdle = 1,
  /// End of the served horizon: header only, slot = horizon.
  kEnd = 2,
};

/// Fixed header size; block payload follows.
inline constexpr std::size_t kWireHeaderBytes = 52;

/// Magic bytes "BDK1".
inline constexpr std::uint8_t kWireMagic[4] = {0x42, 0x44, 0x4B, 0x31};

/// Largest payload a single UDP datagram can carry (65535 minus IP + UDP
/// headers minus our wire header). The server rejects programs whose block
/// size exceeds this — the broadcast medium is one datagram per block.
inline constexpr std::size_t kMaxWirePayloadBytes =
    65507 - kWireHeaderBytes;

/// \brief A decoded datagram. `block` is meaningful only for kBlock.
struct WireDatagram {
  DatagramType type = DatagramType::kBlock;
  std::uint64_t slot = 0;
  std::uint64_t epoch = 0;
  ida::Block block;
};

/// \brief Encodes one coded block as a slot-`slot` datagram. The block's
/// stored checksum travels verbatim (the server stamps blocks once at
/// store build; encoding never re-hashes).
std::vector<std::uint8_t> EncodeBlockDatagram(std::uint64_t slot,
                                              std::uint64_t epoch,
                                              const ida::Block& block);

/// \brief Encodes a header-only control datagram (kIdle or kEnd).
std::vector<std::uint8_t> EncodeControlDatagram(DatagramType type,
                                                std::uint64_t slot,
                                                std::uint64_t epoch);

/// \brief Decodes a received datagram. Fails with InvalidArgument on a bad
/// magic, unknown type, short header, or a control datagram carrying a
/// payload. Block payload bytes are copied out verbatim — payload
/// integrity is the block checksum's job, not the decoder's.
Result<WireDatagram> DecodeDatagram(const std::uint8_t* data,
                                    std::size_t size);

/// \brief Reads the type byte of an encoded datagram without decoding it
/// (kWireHeaderBytes not required — any 5 bytes suffice).
Result<DatagramType> PeekType(const std::uint8_t* data, std::size_t size);

/// \brief Reads the slot of an encoded datagram without decoding it.
Result<std::uint64_t> PeekSlot(const std::uint8_t* data, std::size_t size);

}  // namespace bdisk::net

#endif  // BDISK_NET_WIRE_H_
