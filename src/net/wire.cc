#include "net/wire.h"

#include <cstring>

namespace bdisk::net {

namespace {

void PutU64(std::uint8_t* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

std::uint64_t GetU64(const std::uint8_t* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  }
  return v;
}

void PutU32(std::uint8_t* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

std::uint32_t GetU32(const std::uint8_t* in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(in[i]) << (8 * i);
  }
  return v;
}

void EncodeHeader(std::uint8_t* out, DatagramType type, std::uint64_t slot,
                  std::uint64_t epoch) {
  std::memcpy(out, kWireMagic, 4);
  out[4] = static_cast<std::uint8_t>(type);
  out[5] = out[6] = out[7] = 0;
  PutU64(out + 8, slot);
  PutU64(out + 16, epoch);
  std::memset(out + 24, 0, ida::kBlockIdentityBytes);
  PutU32(out + 48, 0);
}

}  // namespace

std::vector<std::uint8_t> EncodeBlockDatagram(std::uint64_t slot,
                                              std::uint64_t epoch,
                                              const ida::Block& block) {
  std::vector<std::uint8_t> out(kWireHeaderBytes + block.payload.size());
  EncodeHeader(out.data(), DatagramType::kBlock, slot, epoch);
  const auto identity = ida::SerializeIdentity(block.header);
  std::memcpy(out.data() + 24, identity.data(), identity.size());
  PutU32(out.data() + 48, block.header.checksum);
  std::memcpy(out.data() + kWireHeaderBytes, block.payload.data(),
              block.payload.size());
  return out;
}

std::vector<std::uint8_t> EncodeControlDatagram(DatagramType type,
                                                std::uint64_t slot,
                                                std::uint64_t epoch) {
  std::vector<std::uint8_t> out(kWireHeaderBytes);
  EncodeHeader(out.data(), type, slot, epoch);
  return out;
}

Result<WireDatagram> DecodeDatagram(const std::uint8_t* data,
                                    std::size_t size) {
  if (size < kWireHeaderBytes) {
    return Status::InvalidArgument("wire: datagram shorter than the header (" +
                                   std::to_string(size) + " bytes)");
  }
  if (std::memcmp(data, kWireMagic, 4) != 0) {
    return Status::InvalidArgument("wire: bad magic");
  }
  if (data[4] > static_cast<std::uint8_t>(DatagramType::kEnd)) {
    return Status::InvalidArgument("wire: unknown datagram type " +
                                   std::to_string(data[4]));
  }
  WireDatagram d;
  d.type = static_cast<DatagramType>(data[4]);
  d.slot = GetU64(data + 8);
  d.epoch = GetU64(data + 16);
  if (d.type != DatagramType::kBlock) {
    if (size != kWireHeaderBytes) {
      return Status::InvalidArgument(
          "wire: control datagram carries a payload");
    }
    return d;
  }
  std::array<std::uint8_t, ida::kBlockIdentityBytes> identity;
  std::memcpy(identity.data(), data + 24, identity.size());
  ida::DeserializeIdentity(identity, &d.block.header);
  d.block.header.checksum = GetU32(data + 48);
  d.block.payload.assign(data + kWireHeaderBytes, data + size);
  return d;
}

Result<DatagramType> PeekType(const std::uint8_t* data, std::size_t size) {
  if (size < 5 || std::memcmp(data, kWireMagic, 4) != 0) {
    return Status::InvalidArgument("wire: not a broadcast datagram");
  }
  if (data[4] > static_cast<std::uint8_t>(DatagramType::kEnd)) {
    return Status::InvalidArgument("wire: unknown datagram type " +
                                   std::to_string(data[4]));
  }
  return static_cast<DatagramType>(data[4]);
}

Result<std::uint64_t> PeekSlot(const std::uint8_t* data, std::size_t size) {
  if (size < 16 || std::memcmp(data, kWireMagic, 4) != 0) {
    return Status::InvalidArgument("wire: not a broadcast datagram");
  }
  return GetU64(data + 8);
}

}  // namespace bdisk::net
