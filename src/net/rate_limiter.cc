#include "net/rate_limiter.h"

#include <time.h>

#include <algorithm>

#include "common/check.h"

namespace bdisk::net {

namespace {

constexpr std::uint64_t kNsPerSec = 1'000'000'000ull;
constexpr std::uint64_t kDefaultBurstFloorBytes = 64 * 1024;

}  // namespace

TokenBucket::TokenBucket(std::uint64_t rate_bytes_per_sec,
                         std::uint64_t burst_bytes, TokenBucket* parent)
    : rate_(rate_bytes_per_sec), burst_(burst_bytes), parent_(parent) {
  BDISK_CHECK(rate_ > 0);  // A zero-rate bucket can never grant a send.
  if (burst_ == 0) {
    burst_ = std::max(rate_ / 64, kDefaultBurstFloorBytes);
  }
  burst_ns_ = CostNs(burst_);
}

std::uint64_t TokenBucket::CostNs(std::uint64_t bytes) const {
  const unsigned __int128 ns =
      static_cast<unsigned __int128>(bytes) * kNsPerSec / rate_;
  return static_cast<std::uint64_t>(ns);
}

std::uint64_t TokenBucket::ReserveAt(std::uint64_t now_ns,
                                     std::uint64_t bytes) {
  if (!primed_) {
    // First reservation: the bucket starts full, earning from `now_ns`.
    primed_ = true;
    last_ns_ = now_ns;
    credit_ns_ = burst_ns_;
  }
  if (now_ns > last_ns_) {
    credit_ns_ = std::min(burst_ns_, credit_ns_ + (now_ns - last_ns_));
    last_ns_ = now_ns;
  }
  const std::uint64_t cost = CostNs(bytes);
  std::uint64_t send_at = last_ns_;
  if (cost > credit_ns_) {
    // Not enough credit: the send waits for the bucket to earn the rest.
    send_at = last_ns_ + (cost - credit_ns_);
    credit_ns_ = 0;
    last_ns_ = send_at;
  } else {
    credit_ns_ -= cost;
  }
  if (parent_ != nullptr) {
    send_at = std::max(send_at, parent_->ReserveAt(now_ns, bytes));
  }
  return send_at;
}

void TokenBucket::Throttle(std::uint64_t bytes) {
  const std::uint64_t now = MonotonicNowNs();
  const std::uint64_t send_at = ReserveAt(now, bytes);
  if (send_at <= now) return;
  const std::uint64_t wait = send_at - now;
  struct timespec ts;
  ts.tv_sec = static_cast<time_t>(wait / kNsPerSec);
  ts.tv_nsec = static_cast<long>(wait % kNsPerSec);
  while (nanosleep(&ts, &ts) != 0) {
    // Interrupted: ts holds the remaining time.
  }
}

std::uint64_t TokenBucket::MonotonicNowNs() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * kNsPerSec +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

}  // namespace bdisk::net
