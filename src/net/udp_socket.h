/// \file udp_socket.h
/// \brief Thin RAII wrapper over a non-blocking UDP socket, plus the
/// `WireSink` seam the fault shim plugs into.
///
/// Everything here is deliberately minimal POSIX: IPv4, numeric
/// addresses, non-blocking I/O, `poll(2)` for readiness. The CI harness
/// binds port 0 and reads the kernel-chosen port back
/// (`UdpSocket::bound_port`) so parallel jobs never collide on a fixed
/// port.
///
/// `WireSink` abstracts "where datagrams go" on the send side: the
/// server writes to a sink, and tests interpose `FaultingSocket`
/// (faulting_socket.h) or a capture buffer without touching the
/// scheduling loop.

#ifndef BDISK_NET_UDP_SOCKET_H_
#define BDISK_NET_UDP_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "common/status.h"

namespace bdisk::net {

/// \brief A numeric IPv4 endpoint.
struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

/// \brief Parses "host:port" with a numeric IPv4 host (no DNS — the data
/// plane must not block on a resolver). A bare ":port" or "port" means
/// 127.0.0.1.
Result<Endpoint> ParseEndpoint(const std::string& spec);

/// \brief RAII non-blocking UDP socket.
class UdpSocket {
 public:
  UdpSocket() = default;
  ~UdpSocket();
  UdpSocket(UdpSocket&& other) noexcept;
  UdpSocket& operator=(UdpSocket&& other) noexcept;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  /// Opens the socket and binds it to `endpoint`. Port 0 asks the kernel
  /// for an ephemeral port; read it back with `bound_port()`.
  static Result<UdpSocket> Bind(const Endpoint& endpoint);

  /// Opens an unbound send-only socket.
  static Result<UdpSocket> Open();

  /// The locally bound port (0 if unbound).
  std::uint16_t bound_port() const { return bound_port_; }

  /// Grows the kernel receive buffer (SO_RCVBUF). A broadcast burst can
  /// outrun a poll loop; an undersized buffer turns pacing jitter into
  /// silent datagram loss on loopback.
  Status SetRecvBufferBytes(int bytes);

  /// Sends one datagram to `dest`. A full socket buffer (EWOULDBLOCK) is
  /// reported as kResourceExhausted; the UDP contract makes dropping legal,
  /// so callers may treat it as channel loss.
  Status SendTo(const Endpoint& dest, const std::uint8_t* data,
                std::size_t size);

  /// Receives one datagram into `buf`, non-blocking. Returns the
  /// datagram size, or nullopt when nothing is queued.
  Result<std::optional<std::size_t>> Recv(std::uint8_t* buf,
                                          std::size_t buf_size);

  /// Blocks up to `timeout_ms` for the socket to become readable
  /// (`poll(2)`). Returns true if readable, false on timeout.
  Result<bool> PollReadable(int timeout_ms);

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  std::uint16_t bound_port_ = 0;
};

/// \brief Where outbound datagrams go. The server's scheduling loop only
/// ever talks to this seam.
class WireSink {
 public:
  virtual ~WireSink() = default;
  virtual Status SendDatagram(const std::uint8_t* data, std::size_t size) = 0;
};

/// \brief The production sink: one socket, one destination endpoint.
class SocketSink : public WireSink {
 public:
  SocketSink(UdpSocket* socket, Endpoint dest)
      : socket_(socket), dest_(dest) {}

  Status SendDatagram(const std::uint8_t* data, std::size_t size) override;

  /// Datagrams handed to the socket.
  std::uint64_t sent() const { return sent_; }
  /// Datagrams the kernel refused with a full buffer (legal UDP loss).
  std::uint64_t kernel_dropped() const { return kernel_dropped_; }

 private:
  UdpSocket* socket_;
  Endpoint dest_;
  std::uint64_t sent_ = 0;
  std::uint64_t kernel_dropped_ = 0;
};

}  // namespace bdisk::net

#endif  // BDISK_NET_UDP_SOCKET_H_
