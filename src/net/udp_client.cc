#include "net/udp_client.h"

#include <utility>

#include "net/wire.h"

namespace bdisk::net {

Result<UdpClient> UdpClient::Create(const UdpClientOptions& options) {
  if (options.block_size == 0) {
    return Status::InvalidArgument("net: client block_size must be set");
  }
  Endpoint ep;
  ep.host = options.bind_host;
  ep.port = options.port;
  BDISK_ASSIGN_OR_RETURN(UdpSocket socket, UdpSocket::Bind(ep));
  BDISK_RETURN_NOT_OK(socket.SetRecvBufferBytes(options.recv_buffer_bytes));
  return UdpClient(options, std::move(socket));
}

void UdpClient::AddSession(const WireSession& session) {
  sessions_.push_back(ActiveSession{
      session,
      sim::ReconstructingClient(static_cast<ida::FileId>(session.file),
                                session.m, session.n, options_.block_size),
      WireSessionResult{},
      /*tuned_in=*/false});
  sessions_.back().client.set_require_checksums(options_.require_checksums);
  if (session.start_slot.has_value()) {
    // Prefill so an incomplete result still reports where it listened from.
    sessions_.back().result.start_slot = *session.start_slot;
  }
}

bool UdpClient::AllComplete() const {
  for (const ActiveSession& s : sessions_) {
    if (!s.result.session.completed) return false;
  }
  return true;
}

void UdpClient::OfferToSessions(std::uint64_t slot, std::uint64_t epoch,
                                const ida::Block& block) {
  for (ActiveSession& s : sessions_) {
    if (!s.tuned_in) {
      if (s.spec.start_slot.has_value()) {
        if (slot < *s.spec.start_slot) continue;
        s.result.start_slot = *s.spec.start_slot;
      } else {
        // Mid-stream join: latency counts from the first slot heard.
        s.result.start_slot = slot;
      }
      s.tuned_in = true;
    }
    if (s.result.session.completed) continue;
    const sim::OfferOutcome outcome = s.client.OfferEx(block, epoch);
    if (outcome == sim::OfferOutcome::kChecksumMismatch &&
        block.header.file_id == static_cast<ida::FileId>(s.spec.file)) {
      // Attribution by claimed identity — see the header-comment caveat.
      ++s.result.session.corrupt_detected;
    }
    if (sim::OfferSatisfied(outcome)) {
      s.result.session.completed = true;
      s.result.session.completion_slot = slot;
      s.result.session.latency = slot - s.result.start_slot + 1;
    }
  }
}

Result<std::vector<WireSessionResult>> UdpClient::Run() {
  std::vector<std::uint8_t> buf(65536);
  // Tuning out the moment every session completes (!linger_until_end)
  // sounds like an optimization but silently breaks any sent-vs-received
  // datagram accounting: the unread stream tail looks exactly like kernel
  // loss to the harness. Lingering to the end marker is the default so
  // the stats cover the whole broadcast.
  while ((options_.linger_until_end || !AllComplete()) && !stats_.end_seen) {
    BDISK_ASSIGN_OR_RETURN(bool readable,
                           socket_.PollReadable(options_.idle_timeout_ms));
    if (!readable) {
      stats_.timed_out = true;
      break;
    }
    // Drain everything queued before polling again.
    for (;;) {
      BDISK_ASSIGN_OR_RETURN(std::optional<std::size_t> n,
                             socket_.Recv(buf.data(), buf.size()));
      if (!n.has_value()) break;
      ++stats_.datagrams;
      auto decoded = DecodeDatagram(buf.data(), *n);
      if (!decoded.ok()) {
        // Not our traffic (or mangled beyond the header): ignore. Payload
        // corruption is NOT caught here — it rides to OfferEx's checksum.
        ++stats_.decode_errors;
        continue;
      }
      const WireDatagram& d = *decoded;
      if (d.type == DatagramType::kEnd) {
        stats_.end_seen = true;
        break;
      }
      if (d.type == DatagramType::kIdle) {
        ++stats_.idle_datagrams;
        // An idle beacon still tunes mid-stream joiners in: it tells
        // them the broadcast clock.
        for (ActiveSession& s : sessions_) {
          if (!s.tuned_in && !s.spec.start_slot.has_value()) {
            s.result.start_slot = d.slot;
            s.tuned_in = true;
          }
        }
        continue;
      }
      ++stats_.block_datagrams;
      OfferToSessions(d.slot, d.epoch, d.block);
    }
  }
  std::vector<WireSessionResult> results;
  results.reserve(sessions_.size());
  for (ActiveSession& s : sessions_) {
    s.result.session.epochs_spanned = s.client.EpochsSpanned();
    if (s.result.session.completed) {
      BDISK_ASSIGN_OR_RETURN(s.result.session.data, s.client.Reconstruct());
    }
    results.push_back(std::move(s.result));
  }
  return results;
}

}  // namespace bdisk::net
