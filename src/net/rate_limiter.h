/// \file rate_limiter.h
/// \brief Hierarchical token-bucket pacing for the broadcast wire.
///
/// The paper's channel has a fixed bandwidth; the wire server must honor
/// it instead of blasting datagrams as fast as the loopback accepts them.
/// The design follows the classic hierarchical token bucket (as in
/// libfilezilla's rate_limiter): a bucket holds up to `burst` bytes of
/// credit, refilled continuously at `rate` bytes/second, and a send of B
/// bytes may go out at the earliest instant the bucket holds B tokens.
/// Buckets form a tree — a child's reservation must also clear its parent,
/// so several flows (e.g. the block stream and a metrics side-channel) can
/// share one channel budget while keeping their own per-flow caps.
///
/// **Deterministic core.** The arithmetic lives in `ReserveAt(now_ns,
/// bytes)`: a pure state transition on an explicit clock, so tests drive a
/// virtual clock and assert exact send times — no sleeping, no wall-clock
/// flakiness. `Throttle(bytes)` is the wall-clock convenience wrapper the
/// server uses: reserve against the monotonic clock, sleep until the
/// granted instant.
///
/// **Accuracy.** Credit accrues in integer nanoseconds of transmission
/// time (`bytes * 1e9 / rate`, 128-bit intermediate), so there is no
/// floating-point drift: over any window in which the bucket never sits
/// full, granted bytes match `rate * elapsed` to within one datagram.
/// Sleep overshoot self-corrects the same way — while the sender
/// oversleeps the bucket keeps earning, and the following sends go out
/// back-to-back until the debt clears. The default burst (`rate / 64`,
/// ~15 ms of credit, floored at 64 KiB) comfortably absorbs scheduler
/// jitter; the CI gate asserts measured wire throughput within ±5% of the
/// configured budget.

#ifndef BDISK_NET_RATE_LIMITER_H_
#define BDISK_NET_RATE_LIMITER_H_

#include <cstdint>

namespace bdisk::net {

/// \brief One token bucket, optionally chained to a parent whose budget
/// every reservation must also clear. Not thread-safe: the broadcast
/// server is a single send loop (shard the bucket per flow, not per
/// thread).
class TokenBucket {
 public:
  /// \param rate_bytes_per_sec  sustained budget; must be positive.
  /// \param burst_bytes         bucket capacity; 0 picks the default
  ///                            max(rate / 64, 64 KiB).
  /// \param parent              optional shared budget; not owned, must
  ///                            outlive this bucket.
  explicit TokenBucket(std::uint64_t rate_bytes_per_sec,
                       std::uint64_t burst_bytes = 0,
                       TokenBucket* parent = nullptr);

  /// Reserves `bytes` of budget as of clock reading `now_ns` and returns
  /// the earliest instant (>= now_ns) the send may go out. The
  /// reservation is committed: subsequent calls account for it. Pure in
  /// the clock — the caller owns time.
  std::uint64_t ReserveAt(std::uint64_t now_ns, std::uint64_t bytes);

  /// Wall-clock pacing: reserves against the monotonic clock and sleeps
  /// until the granted instant.
  void Throttle(std::uint64_t bytes);

  std::uint64_t rate_bytes_per_sec() const { return rate_; }
  std::uint64_t burst_bytes() const { return burst_; }

  /// The process monotonic clock in nanoseconds (the clock Throttle
  /// reserves against — exposed so callers can measure with the same one).
  static std::uint64_t MonotonicNowNs();

 private:
  /// Nanoseconds of transmission time `bytes` costs at this bucket's rate.
  std::uint64_t CostNs(std::uint64_t bytes) const;

  std::uint64_t rate_;
  std::uint64_t burst_;
  TokenBucket* parent_;
  /// Accrued credit in nanoseconds of transmission time, in [0, burst_ns_].
  std::uint64_t credit_ns_ = 0;
  std::uint64_t burst_ns_ = 0;
  /// Clock reading at which credit_ns_ was last brought current. Starts at
  /// the first reservation with a full bucket.
  std::uint64_t last_ns_ = 0;
  bool primed_ = false;
};

}  // namespace bdisk::net

#endif  // BDISK_NET_RATE_LIMITER_H_
