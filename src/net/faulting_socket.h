/// \file faulting_socket.h
/// \brief Maps a `src/faults/` channel model onto real datagrams.
///
/// The in-process engine asks `ChannelModel::FaultAt(slot)` whether a
/// transmission is lost or corrupted. This sink applies the *same*
/// pure-by-slot verdicts to the wire: a kLost slot's datagram is dropped
/// before it reaches the socket, a kCorrupted slot's block is decoded,
/// damaged through `ChannelModel::CorruptBlock` (the exact bytes the
/// in-process path would damage), re-encoded, and forwarded. Because the
/// model is a pure function of the slot, a wire run under a faulting
/// sink sees bit-for-bit the channel of an in-process run with the same
/// spec — the basis for the byte-identical loopback tests.
///
/// Two mapping details:
///  - Idle beacons occupy a slot, so a kLost verdict drops them too; but
///    there is nothing to corrupt in a header-only datagram, so
///    kCorrupted forwards a beacon unchanged.
///  - End-of-stream datagrams bypass faults entirely. They are harness
///    control (every repeat carries slot = horizon, so one lost slot
///    verdict would erase all of them), not channel traffic.

#ifndef BDISK_NET_FAULTING_SOCKET_H_
#define BDISK_NET_FAULTING_SOCKET_H_

#include <cstdint>

#include "faults/channel_model.h"
#include "net/udp_socket.h"

namespace bdisk::net {

/// \brief A WireSink decorator that injects channel faults by slot.
/// `channel` and `next` are not owned and must outlive the shim.
class FaultingSocket : public WireSink {
 public:
  FaultingSocket(const faults::ChannelModel* channel, WireSink* next)
      : channel_(channel), next_(next) {}

  Status SendDatagram(const std::uint8_t* data, std::size_t size) override;

  /// Datagrams swallowed by kLost verdicts.
  std::uint64_t dropped() const { return dropped_; }
  /// Block datagrams damaged by kCorrupted verdicts.
  std::uint64_t corrupted() const { return corrupted_; }
  /// Datagrams passed through (including corrupted ones).
  std::uint64_t forwarded() const { return forwarded_; }

 private:
  const faults::ChannelModel* channel_;
  WireSink* next_;
  std::uint64_t dropped_ = 0;
  std::uint64_t corrupted_ = 0;
  std::uint64_t forwarded_ = 0;
};

}  // namespace bdisk::net

#endif  // BDISK_NET_FAULTING_SOCKET_H_
