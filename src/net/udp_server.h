/// \file udp_server.h
/// \brief The broadcast station: walks a schedule, emits one datagram per
/// slot, paced to the configured channel bandwidth.
///
/// `UdpBroadcastServer` adapts the existing `sim::BroadcastServer` (which
/// owns the schedule and the coded store, in-memory or disk-backed) onto a
/// `WireSink`. It is a pure downlink: no client state, no uplink, no
/// handshake — exactly the paper's broadcast-disk medium. Listeners tune
/// in whenever they like and synchronize from the slot number stamped on
/// every datagram.
///
/// Pacing: with a nonzero `bandwidth_bytes_per_sec`, every datagram
/// (header + payload) reserves its size from a `TokenBucket` before the
/// send, so wire throughput tracks the configured channel bandwidth (the
/// CI gate holds it to ±5%). Zero bandwidth means unpaced — as fast as
/// the loopback accepts, which is what byte-identity tests want.
///
/// The stream ends with `end_repeats` end-of-stream datagrams (UDP may
/// drop any one of them; a listener needs only one).

#ifndef BDISK_NET_UDP_SERVER_H_
#define BDISK_NET_UDP_SERVER_H_

#include <cstdint>

#include "net/rate_limiter.h"
#include "net/udp_socket.h"
#include "sim/server.h"

namespace bdisk::net {

/// \brief Knobs for one broadcast run.
struct UdpServerOptions {
  /// Slots to serve: [0, horizon).
  std::uint64_t horizon = 0;
  /// Channel budget for pacing; 0 = unpaced.
  std::uint64_t bandwidth_bytes_per_sec = 0;
  /// Token-bucket capacity; 0 = the TokenBucket default.
  std::uint64_t burst_bytes = 0;
  /// End-of-stream datagrams appended after the horizon.
  int end_repeats = 3;
  /// Emit header-only beacons for idle slots (keeps listener clocks and
  /// liveness timers advancing through scheduling gaps).
  bool emit_idle_beacons = true;
};

/// \brief Tallies from one `Serve` run.
struct UdpServerStats {
  std::uint64_t slots = 0;
  std::uint64_t block_datagrams = 0;
  std::uint64_t idle_datagrams = 0;
  std::uint64_t end_datagrams = 0;
  std::uint64_t bytes = 0;
  /// Wall time of the run, by TokenBucket::MonotonicNowNs.
  std::uint64_t wall_ns = 0;
};

/// \brief Serves `server`'s schedule over `sink`, slot 0 through
/// `options.horizon`. Blocks until the horizon is reached (pacing sleeps
/// happen inside). `server` and `sink` are borrowed.
Result<UdpServerStats> ServeBroadcast(sim::BroadcastServer* server,
                                      WireSink* sink,
                                      const UdpServerOptions& options);

}  // namespace bdisk::net

#endif  // BDISK_NET_UDP_SERVER_H_
