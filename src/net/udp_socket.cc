#include "net/udp_socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

#include "runtime/flags.h"

namespace bdisk::net {

namespace {

Status ErrnoStatus(const std::string& what, int err) {
  return Status::IoError(what + ": " + strerror(err));
}

Result<struct sockaddr_in> ToSockaddr(const Endpoint& ep) {
  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  if (inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("net: not a numeric IPv4 address: '" +
                                   ep.host + "'");
  }
  return addr;
}

}  // namespace

Result<Endpoint> ParseEndpoint(const std::string& spec) {
  Endpoint ep;
  std::string port_text = spec;
  const std::size_t colon = spec.rfind(':');
  if (colon != std::string::npos) {
    if (colon > 0) ep.host = spec.substr(0, colon);
    port_text = spec.substr(colon + 1);
  }
  std::uint64_t port = 0;
  if (!runtime::ParseUint64Token(port_text.c_str(), &port) || port > 65535) {
    return Status::InvalidArgument("net: bad port in endpoint '" + spec + "'");
  }
  ep.port = static_cast<std::uint16_t>(port);
  // Validate the host eagerly so Bind/SendTo failures can't be a typo.
  struct sockaddr_in addr;
  if (inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("net: not a numeric IPv4 address: '" +
                                   ep.host + "'");
  }
  return ep;
}

UdpSocket::~UdpSocket() {
  if (fd_ >= 0) close(fd_);
}

UdpSocket::UdpSocket(UdpSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      bound_port_(std::exchange(other.bound_port_, 0)) {}

UdpSocket& UdpSocket::operator=(UdpSocket&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    bound_port_ = std::exchange(other.bound_port_, 0);
  }
  return *this;
}

Result<UdpSocket> UdpSocket::Open() {
  UdpSocket s;
  s.fd_ = socket(AF_INET, SOCK_DGRAM, 0);
  if (s.fd_ < 0) return ErrnoStatus("net: socket", errno);
  const int flags = fcntl(s.fd_, F_GETFL, 0);
  if (flags < 0 || fcntl(s.fd_, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoStatus("net: O_NONBLOCK", errno);
  }
  return s;
}

Result<UdpSocket> UdpSocket::Bind(const Endpoint& endpoint) {
  BDISK_ASSIGN_OR_RETURN(UdpSocket s, Open());
  BDISK_ASSIGN_OR_RETURN(struct sockaddr_in addr, ToSockaddr(endpoint));
  if (bind(s.fd_, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return ErrnoStatus("net: bind", errno);
  }
  // Read back the kernel's choice so port-0 binds are discoverable.
  struct sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (getsockname(s.fd_, reinterpret_cast<struct sockaddr*>(&bound), &len) <
      0) {
    return ErrnoStatus("net: getsockname", errno);
  }
  s.bound_port_ = ntohs(bound.sin_port);
  return s;
}

Status UdpSocket::SetRecvBufferBytes(int bytes) {
  if (setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &bytes, sizeof(bytes)) < 0) {
    return ErrnoStatus("net: SO_RCVBUF", errno);
  }
  return Status::OK();
}

Status UdpSocket::SendTo(const Endpoint& dest, const std::uint8_t* data,
                         std::size_t size) {
  BDISK_ASSIGN_OR_RETURN(struct sockaddr_in addr, ToSockaddr(dest));
  for (;;) {
    const ssize_t n =
        sendto(fd_, data, size, 0, reinterpret_cast<struct sockaddr*>(&addr),
               sizeof(addr));
    if (n >= 0) return Status::OK();
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::ResourceExhausted("net: send buffer full");
    }
    return ErrnoStatus("net: sendto", errno);
  }
}

Result<std::optional<std::size_t>> UdpSocket::Recv(std::uint8_t* buf,
                                                   std::size_t buf_size) {
  for (;;) {
    const ssize_t n = recv(fd_, buf, buf_size, 0);
    if (n >= 0) return std::optional<std::size_t>(static_cast<std::size_t>(n));
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return std::optional<std::size_t>();
    }
    return ErrnoStatus("net: recv", errno);
  }
}

Result<bool> UdpSocket::PollReadable(int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd_;
  pfd.events = POLLIN;
  pfd.revents = 0;
  for (;;) {
    const int n = poll(&pfd, 1, timeout_ms);
    if (n > 0) return true;
    if (n == 0) return false;
    if (errno == EINTR) continue;
    return ErrnoStatus("net: poll", errno);
  }
}

Status SocketSink::SendDatagram(const std::uint8_t* data, std::size_t size) {
  Status s = socket_->SendTo(dest_, data, size);
  if (s.ok()) {
    ++sent_;
    return s;
  }
  if (s.IsResourceExhausted()) {
    // The kernel dropped it; on UDP that is channel loss, not an error.
    ++kernel_dropped_;
    return Status::OK();
  }
  return s;
}

}  // namespace bdisk::net
