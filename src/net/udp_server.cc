#include "net/udp_server.h"

#include <optional>
#include <string>
#include <vector>

#include "net/wire.h"

namespace bdisk::net {

Result<UdpServerStats> ServeBroadcast(sim::BroadcastServer* server,
                                      WireSink* sink,
                                      const UdpServerOptions& options) {
  if (options.horizon == 0) {
    return Status::InvalidArgument("net: serve horizon must be positive");
  }
  if (server->block_size() > kMaxWirePayloadBytes) {
    return Status::InvalidArgument(
        "net: block size " + std::to_string(server->block_size()) +
        " exceeds the single-datagram payload limit " +
        std::to_string(kMaxWirePayloadBytes));
  }
  TokenBucket bucket(options.bandwidth_bytes_per_sec == 0
                         ? 1  // unused; constructed eagerly for simplicity
                         : options.bandwidth_bytes_per_sec,
                     options.burst_bytes);
  const bool paced = options.bandwidth_bytes_per_sec > 0;

  UdpServerStats stats;
  const std::uint64_t start_ns = TokenBucket::MonotonicNowNs();
  for (std::uint64_t t = 0; t < options.horizon; ++t) {
    BDISK_ASSIGN_OR_RETURN(std::optional<ida::Block> block,
                           server->FetchTransmission(t));
    const std::uint64_t epoch = server->schedule().EpochIndexAt(t);
    std::vector<std::uint8_t> datagram;
    if (block.has_value()) {
      datagram = EncodeBlockDatagram(t, epoch, *block);
      ++stats.block_datagrams;
    } else if (options.emit_idle_beacons) {
      datagram = EncodeControlDatagram(DatagramType::kIdle, t, epoch);
      ++stats.idle_datagrams;
    } else {
      ++stats.slots;
      continue;
    }
    if (paced) bucket.Throttle(datagram.size());
    BDISK_RETURN_NOT_OK(sink->SendDatagram(datagram.data(), datagram.size()));
    stats.bytes += datagram.size();
    ++stats.slots;
  }
  const std::uint64_t end_epoch =
      options.horizon == 0 ? 0
                           : server->schedule().EpochIndexAt(options.horizon - 1);
  for (int i = 0; i < options.end_repeats; ++i) {
    const std::vector<std::uint8_t> datagram =
        EncodeControlDatagram(DatagramType::kEnd, options.horizon, end_epoch);
    if (paced) bucket.Throttle(datagram.size());
    BDISK_RETURN_NOT_OK(sink->SendDatagram(datagram.data(), datagram.size()));
    stats.bytes += datagram.size();
    ++stats.end_datagrams;
  }
  stats.wall_ns = TokenBucket::MonotonicNowNs() - start_ns;
  return stats;
}

}  // namespace bdisk::net
