#include "net/faulting_socket.h"

#include <vector>

#include "net/wire.h"

namespace bdisk::net {

Status FaultingSocket::SendDatagram(const std::uint8_t* data,
                                    std::size_t size) {
  BDISK_ASSIGN_OR_RETURN(DatagramType type, PeekType(data, size));
  if (type == DatagramType::kEnd) {
    ++forwarded_;
    return next_->SendDatagram(data, size);
  }
  BDISK_ASSIGN_OR_RETURN(std::uint64_t slot, PeekSlot(data, size));
  const faults::FaultType fault = channel_->FaultAt(slot);
  if (fault == faults::FaultType::kLost) {
    ++dropped_;
    return Status::OK();
  }
  if (fault == faults::FaultType::kCorrupted &&
      type == DatagramType::kBlock) {
    BDISK_ASSIGN_OR_RETURN(WireDatagram d, DecodeDatagram(data, size));
    channel_->CorruptBlock(slot, &d.block);
    const std::vector<std::uint8_t> damaged =
        EncodeBlockDatagram(d.slot, d.epoch, d.block);
    ++corrupted_;
    ++forwarded_;
    return next_->SendDatagram(damaged.data(), damaged.size());
  }
  ++forwarded_;
  return next_->SendDatagram(data, size);
}

}  // namespace bdisk::net
