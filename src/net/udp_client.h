/// \file udp_client.h
/// \brief Poll-based broadcast listener: tunes in mid-stream, feeds the
/// existing reconstruction path, reports the same `SessionResult`.
///
/// One socket hosts many *logical sessions* — that is the broadcast
/// semantics of the paper: every listener hears the same datagrams, so N
/// concurrent retrievals cost one wire pass, not N. Each session owns a
/// `sim::ReconstructingClient` and every received block datagram is
/// offered to every session that has tuned in; duplicate/stale/corrupt
/// rejection is the in-process `OfferEx` path, byte for byte (the wire
/// header carries the block's identity + CRC-32C stamp verbatim).
///
/// The loop is single-threaded and non-blocking: `poll(2)` for
/// readability, drain the socket, decode, offer. It terminates when all
/// sessions complete, an end-of-stream datagram arrives, or the wire
/// stays silent past the idle timeout (UDP may lose the end datagrams
/// too).
///
/// What a wire listener *cannot* report: `lost_observed` and
/// `stall_slots` need the server's schedule as ground truth (a lost
/// datagram is, to the listener, indistinguishable from an idle slot
/// whose beacon was lost). Those stay 0 in wire results; harnesses that
/// want them compute them from an in-process reference run.
/// `corrupt_detected` counts checksum rejections attributed by the
/// *claimed* header identity — identical to the in-process ground-truth
/// count whenever corruption leaves `file_id` intact, and exactly equal
/// (zero) on pure-erasure channels.

#ifndef BDISK_NET_UDP_CLIENT_H_
#define BDISK_NET_UDP_CLIENT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/udp_socket.h"
#include "sim/client.h"

namespace bdisk::net {

/// \brief One logical retrieval: which file, what geometry, and from
/// which slot the listener counts latency.
struct WireSession {
  broadcast::FileIndex file = 0;
  std::uint32_t m = 0;
  std::uint32_t n = 0;
  /// Slot from which this session listens. Unset = tune in at the first
  /// datagram heard (mid-stream join).
  std::optional<std::uint64_t> start_slot;
};

/// \brief A session's outcome: the in-process result shape plus the
/// resolved tune-in slot.
struct WireSessionResult {
  sim::SessionResult session;
  /// The slot latency is counted from (resolved at tune-in).
  std::uint64_t start_slot = 0;
};

/// \brief Listener knobs.
struct UdpClientOptions {
  std::string bind_host = "127.0.0.1";
  /// 0 = kernel-chosen; read back with bound_port().
  std::uint16_t port = 0;
  /// Payload bytes per block (the program's block size).
  std::size_t block_size = 0;
  /// Kernel receive buffer; a paced broadcast can burst faster than a
  /// test-runner schedules this process.
  int recv_buffer_bytes = 4 << 20;
  /// Give up after this long with no datagram at all.
  int idle_timeout_ms = 5000;
  /// Reject unstamped blocks (the broadcast server stamps everything).
  bool require_checksums = true;
  /// Keep listening until the end-of-stream marker even after every
  /// session has completed. On: stats cover the whole broadcast, and
  /// datagrams-received can be audited against datagrams-sent. Off: tune
  /// out as soon as all sessions are done (a real receiver switching the
  /// radio off) — the stream tail then goes deliberately unread, so
  /// sent-vs-received accounting is meaningless.
  bool linger_until_end = true;
};

/// \brief Run tallies (client-level, across all sessions).
struct UdpClientStats {
  std::uint64_t datagrams = 0;
  std::uint64_t block_datagrams = 0;
  std::uint64_t idle_datagrams = 0;
  std::uint64_t decode_errors = 0;
  bool end_seen = false;
  bool timed_out = false;
};

/// \brief The event-loop listener.
class UdpClient {
 public:
  /// Binds the listening socket (port 0 → ephemeral, see bound_port()).
  static Result<UdpClient> Create(const UdpClientOptions& options);

  UdpClient(UdpClient&&) = default;
  UdpClient& operator=(UdpClient&&) = default;

  /// The port the broadcast server should send to.
  std::uint16_t bound_port() const { return socket_.bound_port(); }

  /// Registers a logical session. Call before Run().
  void AddSession(const WireSession& session);

  /// Runs the event loop to completion and returns one result per
  /// registered session, in registration order.
  Result<std::vector<WireSessionResult>> Run();

  const UdpClientStats& stats() const { return stats_; }

 private:
  explicit UdpClient(UdpClientOptions options, UdpSocket socket)
      : options_(std::move(options)), socket_(std::move(socket)) {}

  struct ActiveSession {
    WireSession spec;
    sim::ReconstructingClient client;
    WireSessionResult result;
    bool tuned_in = false;
  };

  void OfferToSessions(std::uint64_t slot, std::uint64_t epoch,
                       const ida::Block& block);
  bool AllComplete() const;

  UdpClientOptions options_;
  UdpSocket socket_;
  std::vector<ActiveSession> sessions_;
  UdpClientStats stats_;
};

}  // namespace bdisk::net

#endif  // BDISK_NET_UDP_CLIENT_H_
