/// \file trace.h
/// \brief Per-request causal tracing: span capture, flight recording, and
/// Chrome trace-event export.
///
/// The snapshot plane (obs/snapshot.h) answers "how is the run doing in
/// aggregate"; the trace plane answers "what happened to *this* request".
/// A traced retrieval carries its full causal chain — arrival, every
/// transmission of its file it heard (received, lost, or corrupt), the
/// epoch hot-swaps it crossed, decode start, completion or incomplete —
/// as a TraceSpan, which Chrome's `chrome://tracing` / Perfetto renders
/// as one timeline lane per request.
///
/// **Determinism contract.** Spans are built *post hoc*: a retrieval is a
/// pure function of (schedule, fault trace, request), so the causal chain
/// is reconstructed after the outcome is known, by the single shared
/// walker in sim/trace_walk.h. The hot path pays only a trigger check per
/// request; cost scales with the number of *traced* requests. Sampling is
/// counter-based — request `g` is sampled iff `g % sample_every == 0` —
/// so the sampled set is a pure function of the global request index:
/// identical for any shard count, thread count, or engine. Timestamps are
/// the *simulated* clock (slots), never wall time. Consequently the
/// rendered trace is byte-identical across the slot and event engines and
/// at any thread count (tests/trace_test.cc pins this).
///
/// **Anomaly triggers.** Anomalies are only knowable at the end of a
/// retrieval — which is exactly when post-hoc spans are built, so "always
/// trace anomalies" costs nothing extra: a deadline miss, an undecodable
/// (incomplete) retrieval, or a reconstruction stall at or past the
/// configured threshold forces a span regardless of sampling.
///
/// **Flight recorder.** With `flight_recorder_depth = K > 0` the sink
/// keeps only the last K non-anomaly spans in a ring; when an anomaly
/// trigger fires, the ring (the anomaly's causal neighborhood) is dumped
/// to the retained log together with the anomaly span, and the ring
/// restarts. Spans still in the ring when the run ends are discarded —
/// nothing anomalous happened after them. Shard sinks merge by replaying
/// the other shard's surviving spans through the same automaton, which
/// provably reproduces the serial eviction/dump sequence, so flight
/// recording inherits the byte-identity contract.
#ifndef BDISK_OBS_TRACE_H_
#define BDISK_OBS_TRACE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace bdisk::obs {

/// \brief One step of a traced retrieval's causal chain.
enum class TraceEventKind : std::uint8_t {
  kArrival = 0,      ///< Client tunes in (span start).
  kBlock,            ///< Clean transmission heard (block, distinct after).
  kLost,             ///< Transmission lost on the channel.
  kCorrupt,          ///< Transmission corrupted and discarded by checksum.
  kEpoch,            ///< Epoch hot-swap boundary crossed (block = epoch).
  kDecodeStart,      ///< m-th distinct block collected; decode can begin.
  kIncomplete,       ///< Horizon exhausted before m distinct blocks.
};

/// Stable lowercase name of `kind` ("arrival", "block", ...).
const char* TraceEventKindName(TraceEventKind kind);

/// \brief One causal event at a simulated slot. `block` is the rotated
/// block index for kBlock/kLost/kCorrupt and the epoch index for kEpoch;
/// `distinct` is the client's distinct-block count after the event.
struct TraceEvent {
  std::uint64_t slot = 0;
  TraceEventKind kind = TraceEventKind::kArrival;
  std::uint32_t block = 0;
  std::uint32_t distinct = 0;
};

/// Why a span was captured (bitmask; anomaly = any bit but kSampled).
inline constexpr std::uint8_t kTraceSampled = 1;       ///< Counter sampling.
inline constexpr std::uint8_t kTraceDeadlineMiss = 2;  ///< Missed deadline.
inline constexpr std::uint8_t kTraceUndecodable = 4;   ///< Never completed.
inline constexpr std::uint8_t kTraceStall = 8;         ///< Stall >= threshold.
inline constexpr std::uint8_t kTraceSwap = 16;         ///< Controller span.

/// Human-readable trigger bitmask, e.g. "sampled+stall".
std::string TraceTriggerName(std::uint8_t trigger);

/// \brief What a span is about.
enum class TraceSpanKind : std::uint8_t {
  kRetrieval = 0,    ///< One client retrieval.
  kSwapDecision,     ///< One adaptive-controller interval decision.
};

/// \brief One traced span: metadata plus the causal event chain.
struct TraceSpan {
  TraceSpanKind kind = TraceSpanKind::kRetrieval;
  /// Global request index (retrievals) or interval index (swap decisions).
  std::uint64_t request_id = 0;
  std::uint32_t file = 0;
  std::string file_name;
  std::uint64_t start_slot = 0;
  /// Exclusive end: completion slot + 1, or the horizon when incomplete
  /// (for swap decisions, the interval end).
  std::uint64_t end_slot = 0;
  std::uint64_t deadline_slots = 0;
  std::uint64_t latency = 0;
  std::uint64_t stall_slots = 0;
  std::uint32_t errors_observed = 0;
  std::uint32_t corrupt_detected = 0;
  /// Retrievals: collected m distinct blocks. Swap decisions: swapped.
  bool completed = false;
  bool met_deadline = true;
  std::uint8_t trigger = 0;
  std::vector<TraceEvent> events;
};

/// \brief Capture policy. Tracing is active when any trigger can fire.
struct TraceOptions {
  /// Sample request g iff g % sample_every == 0 (0 = sampling off).
  std::uint64_t sample_every = 0;
  /// Force-trace deadline misses, undecodables, and threshold stalls.
  bool trace_anomalies = true;
  /// Stall trigger fires at stall_slots >= this (0 = stall trigger off).
  std::uint64_t stall_threshold = 0;
  /// Flight-recorder ring depth K (0 = retain every captured span).
  std::uint64_t flight_recorder_depth = 0;
};

/// \brief Append-only span log with optional flight recording. One sink
/// per shard; Merge in shard order reproduces the serial capture exactly.
class TraceSink {
 public:
  TraceSink() = default;
  explicit TraceSink(const TraceOptions& options) : options_(options) {}

  const TraceOptions& options() const { return options_; }

  /// Trigger bitmask for a finished retrieval (0 = do not trace). A pure
  /// function of the global request index and the outcome, so the traced
  /// set is shard-, thread-, and engine-invariant.
  std::uint8_t TriggerFor(std::uint64_t request_id, bool completed,
                          bool met_deadline, std::uint64_t stall_slots) const;

  /// Captures one span (span.trigger must be nonzero). In flight-recorder
  /// mode an anomaly span dumps the ring ahead of itself; a non-anomaly
  /// span enters the ring, evicting the oldest past depth K.
  void Record(TraceSpan span);

  /// Folds `other` (the next shard in global order) into this sink by
  /// replaying its surviving spans through the ring automaton. A span
  /// evicted inside `other` would have been evicted by the serial run too
  /// (eviction depends only on a span's successors), so the merged state
  /// is byte-identical to the serial capture. `other` is emptied.
  void Merge(TraceSink&& other);

  /// Spans that survived retention, in capture order. In flight-recorder
  /// mode: every dumped ring followed by its anomaly span; the final
  /// ring's undumped spans are not included.
  const std::vector<TraceSpan>& spans() const { return retained_; }

  /// Spans Record()ed, including ring evictions.
  std::uint64_t recorded_count() const { return recorded_; }
  /// Spans evicted from the flight ring without ever being dumped.
  std::uint64_t dropped_count() const { return dropped_; }

 private:
  TraceOptions options_;
  std::vector<TraceSpan> retained_;
  /// Flight ring, oldest first (only used when flight_recorder_depth > 0).
  std::deque<TraceSpan> ring_;
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
};

/// \brief One lane group of a Chrome trace: a sink plus its process label
/// (e.g. "channel replay", "adaptive replay").
struct TraceTrack {
  const TraceSink* sink = nullptr;
  std::string name;
};

/// \brief Renders tracks as one Chrome trace-event JSON document (one
/// event per line inside "traceEvents"). Mapping:
///
///   * track t's retrieval spans: pid 2t, swap-decision spans: pid 2t+1
///     (labeled via process_name metadata);
///   * each span is a complete ("X") event with tid = request_id,
///     ts = start slot, dur = end - start (sim slots rendered as
///     microseconds), and the span metadata in "args";
///   * each causal event is an instant ("i", thread scope) on the same
///     lane, with block/distinct/epoch detail in "args".
///
/// `metadata` key/value pairs land in "otherData". Deterministic given
/// the tracks: byte-identical across engines and thread counts.
std::string RenderChromeTrace(
    const std::vector<TraceTrack>& tracks,
    const std::vector<std::pair<std::string, std::string>>& metadata = {});

/// \brief Renders and writes the trace to `path` ("-" = stdout).
Status WriteChromeTrace(
    const std::vector<TraceTrack>& tracks,
    const std::vector<std::pair<std::string, std::string>>& metadata,
    const std::string& path);

}  // namespace bdisk::obs

#endif  // BDISK_OBS_TRACE_H_
