/// \file stream_tail.h
/// \brief Incremental newline-framed file tailer (the `--follow` engine).
///
/// Tails a line-oriented stream that a producer is still appending to,
/// delivering each line **exactly once**: a trailing line written without
/// its newline yet (the producer mid-write) is buffered, not delivered,
/// and is delivered as one complete line when the newline arrives — never
/// dropped, never delivered twice. A consumer that wants to *display* the
/// unfinished line anyway reads `pending()` and folds it into a throwaway
/// copy of its state (see bdisk_top), keeping the authoritative fold
/// newline-driven.
///
/// Truncation/replacement: a file smaller than the bytes already consumed
/// means the producer truncated or re-created it (a fresh run). The tail
/// restarts from byte zero — offset and the pending buffer are discarded —
/// and reports the restart so the consumer can reset its own fold state
/// (the already-delivered lines described a file that no longer exists).

#ifndef BDISK_OBS_STREAM_TAIL_H_
#define BDISK_OBS_STREAM_TAIL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

namespace bdisk::obs {

class StreamTail {
 public:
  /// Invoked once per completed line, newline stripped.
  using LineFn = std::function<void(const std::string&)>;

  /// Feeds `size` appended bytes, invoking `on_line` for each line
  /// completed by them. Bytes after the last newline stay in pending().
  void Feed(const char* data, std::size_t size, const LineFn& on_line);

  /// Reads whatever `path` holds beyond the consumed offset and feeds
  /// it. Returns false when the file cannot be opened (the tail state is
  /// untouched — the caller may retry). Sets `*restarted` (if non-null)
  /// when a truncation/replacement was detected and the tail restarted
  /// from byte zero; the caller must then also reset whatever state it
  /// folded the previous lines into.
  bool PollFile(const std::string& path, const LineFn& on_line,
                bool* restarted = nullptr);

  /// Bytes of the file consumed so far.
  std::uint64_t offset() const { return offset_; }
  /// The incomplete trailing line (producer mid-write), newline-less.
  const std::string& pending() const { return pending_; }
  /// Truncation/replacement restarts observed.
  std::uint64_t truncations() const { return truncations_; }

 private:
  std::uint64_t offset_ = 0;
  std::string pending_;
  std::uint64_t truncations_ = 0;
};

}  // namespace bdisk::obs

#endif  // BDISK_OBS_STREAM_TAIL_H_
