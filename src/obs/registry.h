/// \file registry.h
/// \brief Process-wide registry of named counters, gauges, and histograms.
///
/// The recording paths are built for the GF / simulation hot loops:
/// Counter::Add and Histogram::Record are single relaxed atomic RMWs with
/// no locks, no allocation, and no branches beyond the bucket search —
/// cheap enough to leave compiled into the data plane unconditionally
/// (the fleet bench asserts < 1% wall-clock overhead with the ops plane
/// fully enabled). Registration (name -> instrument lookup) takes a mutex
/// and is expected at setup time only; the returned pointers are stable
/// for the registry's lifetime, so hot code registers once and records
/// through the raw pointer.
///
/// Relaxed ordering is deliberate: instruments are monotonic accumulators
/// read for *reporting*, not for synchronization. A snapshot taken while
/// workers are mid-flight sees each instrument at some point of its own
/// monotonic history (TSan-clean; tests/obs_test.cc hammers this under
/// the ThreadPool), and a snapshot taken after a pool barrier sees exact
/// totals.
///
/// ScopedPhaseTimer is the profiling hook for the coarse phases (encode,
/// decode, event drain, swap decisions, slot dispatch): it records the
/// enclosing scope's wall time into a histogram in microseconds, at
/// batch/shard granularity — never per block or per event — so the clock
/// reads themselves stay off the innermost loops.

#ifndef BDISK_OBS_REGISTRY_H_
#define BDISK_OBS_REGISTRY_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace bdisk::obs {

class JsonWriter;

/// \brief Monotonic event count. Add is one relaxed fetch_add.
class Counter {
 public:
  void Add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }
  /// Zeroes the counter; callers must ensure no concurrent Add.
  void ResetQuiesced() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// \brief Last-write-wins instantaneous value (e.g. bytes resident,
/// configured interval). Set is one relaxed store.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// \brief Fixed-bucket histogram with inclusive upper bounds plus an
/// implicit overflow bucket. Record is a branchless-ish linear scan over
/// the (small, cache-resident) bounds array and one relaxed fetch_add;
/// sum and count accumulate alongside, so means are exact.
class HistogramMetric {
 public:
  /// \param bounds  strictly increasing inclusive upper bounds; a value v
  ///                lands in the first bucket with v <= bounds[i], or in
  ///                the overflow bucket past the last bound.
  explicit HistogramMetric(std::vector<double> bounds);

  void Record(double v) {
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    counts_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    // Doubles have no atomic fetch_add pre-C++20 on all targets; a relaxed
    // CAS loop keeps the sum exact without ordering cost.
    double sum = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(sum, sum + v,
                                       std::memory_order_relaxed)) {
    }
  }

  const std::vector<double>& bounds() const { return bounds_; }
  /// Bucket count (bucket bounds_.size() is the overflow bucket).
  std::uint64_t CountInBucket(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Smallest bucket upper bound b such that at least `q` (in [0,1]) of
  /// the observations fall in buckets with bound <= b — an upper-bound
  /// percentile estimate. Returns the last bound for the overflow bucket,
  /// 0 when empty.
  double QuantileUpperBound(double q) const;

  /// Zeroes all buckets in place (pointer stays valid). Callers must
  /// ensure no concurrent Record — intended for quiesced test/bench use.
  void ResetQuiesced();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// \brief Named-instrument registry. Get* registers on first use (mutex)
/// and returns a stable pointer; recording through the pointer is
/// lock-free. Names are dot-scoped by convention ("gf.encode_bytes",
/// "phase.event_drain_us").
class MetricRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` applies on first registration; later calls return the
  /// existing instrument regardless.
  HistogramMetric* GetHistogram(const std::string& name,
                                std::vector<double> bounds);

  /// Serializes every instrument as one JSON object value keyed by name,
  /// sorted by name (deterministic member order):
  ///   counters:   "name":N
  ///   gauges:     "name":X
  ///   histograms: "name":{"count":N,"sum":S,"bounds":[...],"counts":[...]}
  /// Written inside the caller's current container via Key/value pairs.
  void WriteJson(JsonWriter* writer) const;

  /// Resets every registered instrument to zero (tests and benches that
  /// need a clean slate per run; instrument pointers stay valid).
  void Reset();

 private:
  mutable std::mutex mutex_;
  // Deques-by-unique_ptr: pointer stability under growth.
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_;
  std::vector<std::pair<std::string, std::unique_ptr<Gauge>>> gauges_;
  std::vector<std::pair<std::string, std::unique_ptr<HistogramMetric>>>
      histograms_;
};

/// \brief The process-wide registry the data plane records into. Always
/// present; near-zero cost when nothing reads it.
MetricRegistry& GlobalRegistry();

/// Default bounds for phase timers: microseconds, powers of 4 from 1 us
/// to ~4.3 s plus overflow — wide dynamic range, 17 buckets.
std::vector<double> PhaseTimerBoundsUs();

/// \brief Records the enclosing scope's wall time (microseconds) into a
/// histogram on destruction. Use at batch/shard granularity only.
class ScopedPhaseTimer {
 public:
  explicit ScopedPhaseTimer(HistogramMetric* histogram)
      : histogram_(histogram),
        start_(std::chrono::steady_clock::now()) {}
  ~ScopedPhaseTimer() {
    if (histogram_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    histogram_->Record(
        std::chrono::duration<double, std::micro>(elapsed).count());
  }

  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

 private:
  HistogramMetric* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace bdisk::obs

#endif  // BDISK_OBS_REGISTRY_H_
