#include "obs/trace.h"

#include <cstdio>

#include "common/check.h"
#include "obs/json.h"

namespace bdisk::obs {

const char* TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kArrival: return "arrival";
    case TraceEventKind::kBlock: return "block";
    case TraceEventKind::kLost: return "lost";
    case TraceEventKind::kCorrupt: return "corrupt";
    case TraceEventKind::kEpoch: return "epoch";
    case TraceEventKind::kDecodeStart: return "decode";
    case TraceEventKind::kIncomplete: return "incomplete";
  }
  return "unknown";
}

std::string TraceTriggerName(std::uint8_t trigger) {
  static constexpr struct { std::uint8_t bit; const char* name; } kBits[] = {
      {kTraceSampled, "sampled"},   {kTraceDeadlineMiss, "deadline_miss"},
      {kTraceUndecodable, "undecodable"}, {kTraceStall, "stall"},
      {kTraceSwap, "swap"},
  };
  std::string out;
  for (const auto& b : kBits) {
    if ((trigger & b.bit) == 0) continue;
    if (!out.empty()) out += '+';
    out += b.name;
  }
  return out.empty() ? "none" : out;
}

std::uint8_t TraceSink::TriggerFor(std::uint64_t request_id, bool completed,
                                   bool met_deadline,
                                   std::uint64_t stall_slots) const {
  std::uint8_t trigger = 0;
  if (options_.sample_every != 0 &&
      request_id % options_.sample_every == 0) {
    trigger |= kTraceSampled;
  }
  if (options_.trace_anomalies) {
    if (!completed) trigger |= kTraceUndecodable;
    if (!met_deadline) trigger |= kTraceDeadlineMiss;
    if (options_.stall_threshold != 0 &&
        stall_slots >= options_.stall_threshold) {
      trigger |= kTraceStall;
    }
  }
  return trigger;
}

void TraceSink::Record(TraceSpan span) {
  BDISK_DCHECK(span.trigger != 0);
  ++recorded_;
  if (options_.flight_recorder_depth == 0) {
    retained_.push_back(std::move(span));
    return;
  }
  const bool anomaly = (span.trigger & ~kTraceSampled) != 0;
  if (anomaly) {
    // Dump the anomaly's causal neighborhood, then the anomaly itself;
    // the ring restarts empty.
    for (TraceSpan& s : ring_) retained_.push_back(std::move(s));
    ring_.clear();
    retained_.push_back(std::move(span));
    return;
  }
  ring_.push_back(std::move(span));
  if (ring_.size() > options_.flight_recorder_depth) {
    ring_.pop_front();
    ++dropped_;
  }
}

void TraceSink::Merge(TraceSink&& other) {
  // Replaying other's survivors through Record reproduces the serial
  // automaton exactly: other's retained log and ring together are its
  // capture subsequence in chronological order, and any span other
  // evicted in-shard had > K non-anomaly successors before the next
  // anomaly — the serial run evicts it on the same grounds.
  const std::uint64_t total = recorded_ + other.recorded_;
  dropped_ += other.dropped_;
  for (TraceSpan& s : other.retained_) Record(std::move(s));
  for (TraceSpan& s : other.ring_) Record(std::move(s));
  recorded_ = total;
  other.retained_.clear();
  other.ring_.clear();
  other.recorded_ = 0;
  other.dropped_ = 0;
}

namespace {

const char* OutcomeName(const TraceSpan& span) {
  if (!span.completed) return "undecodable";
  return span.met_deadline ? "ok" : "deadline_miss";
}

const char* EventCategory(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kBlock: return "rx";
    case TraceEventKind::kLost:
    case TraceEventKind::kCorrupt: return "fault";
    case TraceEventKind::kEpoch: return "swap";
    default: return "span";
  }
}

void BeginEvent(JsonWriter* w, const char* ph, std::uint64_t pid,
                std::uint64_t tid, std::uint64_t ts) {
  w->BeginObject();
  w->Key("ph");
  w->String(ph);
  w->Key("pid");
  w->Uint(pid);
  w->Key("tid");
  w->Uint(tid);
  w->Key("ts");
  w->Uint(ts);
}

void AppendProcessName(std::string* out, bool* first, std::uint64_t pid,
                       const std::string& name) {
  JsonWriter w;
  w.BeginObject();
  w.Key("ph");
  w.String("M");
  w.Key("pid");
  w.Uint(pid);
  w.Key("tid");
  w.Uint(0);
  w.Key("name");
  w.String("process_name");
  w.Key("args");
  w.BeginObject();
  w.Key("name");
  w.String(name);
  w.EndObject();
  w.EndObject();
  *out += *first ? "\n" : ",\n";
  *first = false;
  *out += w.str();
}

void AppendSpan(std::string* out, bool* first, std::uint64_t pid,
                const TraceSpan& span) {
  const std::uint64_t tid = span.request_id;
  {
    JsonWriter w;
    BeginEvent(&w, "X", pid, tid, span.start_slot);
    w.Key("dur");
    w.Uint(span.end_slot - span.start_slot);
    w.Key("name");
    if (span.kind == TraceSpanKind::kRetrieval) {
      w.String("retrieve " + span.file_name);
      w.Key("cat");
      w.String("retrieval");
    } else {
      w.String("interval " + std::to_string(span.request_id));
      w.Key("cat");
      w.String("controller");
    }
    w.Key("args");
    w.BeginObject();
    if (span.kind == TraceSpanKind::kRetrieval) {
      w.Key("request");
      w.Uint(span.request_id);
      w.Key("file");
      w.String(span.file_name);
      w.Key("file_index");
      w.Uint(span.file);
      w.Key("start_slot");
      w.Uint(span.start_slot);
      w.Key("deadline_slots");
      w.Uint(span.deadline_slots);
      w.Key("outcome");
      w.String(OutcomeName(span));
      w.Key("latency");
      w.Uint(span.latency);
      w.Key("stall_slots");
      w.Uint(span.stall_slots);
      w.Key("errors_observed");
      w.Uint(span.errors_observed);
      w.Key("corrupt_detected");
      w.Uint(span.corrupt_detected);
    } else {
      w.Key("interval");
      w.Uint(span.request_id);
      w.Key("swapped");
      w.Bool(span.completed);
    }
    w.Key("trigger");
    w.String(TraceTriggerName(span.trigger));
    w.EndObject();
    w.EndObject();
    *out += *first ? "\n" : ",\n";
    *first = false;
    *out += w.str();
  }
  for (const TraceEvent& event : span.events) {
    JsonWriter w;
    BeginEvent(&w, "i", pid, tid, event.slot);
    w.Key("s");
    w.String("t");
    w.Key("name");
    w.String(TraceEventKindName(event.kind));
    w.Key("cat");
    w.String(EventCategory(event.kind));
    switch (event.kind) {
      case TraceEventKind::kBlock:
      case TraceEventKind::kLost:
      case TraceEventKind::kCorrupt:
        w.Key("args");
        w.BeginObject();
        w.Key("block");
        w.Uint(event.block);
        w.Key("distinct");
        w.Uint(event.distinct);
        w.EndObject();
        break;
      case TraceEventKind::kEpoch:
        w.Key("args");
        w.BeginObject();
        w.Key("epoch");
        w.Uint(event.block);
        w.EndObject();
        break;
      case TraceEventKind::kDecodeStart:
      case TraceEventKind::kIncomplete:
        w.Key("args");
        w.BeginObject();
        w.Key("distinct");
        w.Uint(event.distinct);
        w.EndObject();
        break;
      case TraceEventKind::kArrival:
        break;
    }
    w.EndObject();
    *out += ",\n";
    *out += w.str();
  }
}

}  // namespace

std::string RenderChromeTrace(
    const std::vector<TraceTrack>& tracks,
    const std::vector<std::pair<std::string, std::string>>& metadata) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (std::size_t t = 0; t < tracks.size(); ++t) {
    BDISK_CHECK(tracks[t].sink != nullptr);
    const std::vector<TraceSpan>& spans = tracks[t].sink->spans();
    bool any_retrieval = false;
    bool any_controller = false;
    for (const TraceSpan& span : spans) {
      (span.kind == TraceSpanKind::kRetrieval ? any_retrieval
                                              : any_controller) = true;
    }
    if (any_retrieval) {
      AppendProcessName(&out, &first, 2 * t, tracks[t].name);
    }
    if (any_controller) {
      AppendProcessName(&out, &first, 2 * t + 1,
                        tracks[t].name + " (controller)");
    }
    for (const TraceSpan& span : spans) {
      const std::uint64_t pid =
          span.kind == TraceSpanKind::kRetrieval ? 2 * t : 2 * t + 1;
      AppendSpan(&out, &first, pid, span);
    }
  }
  out += "\n],\n\"otherData\":";
  {
    JsonWriter w;
    w.BeginObject();
    w.Key("clock");
    w.String("sim-slots-as-us");
    for (const auto& [key, value] : metadata) {
      w.Key(key);
      w.String(value);
    }
    w.EndObject();
    out += w.str();
  }
  out += ",\n\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

Status WriteChromeTrace(
    const std::vector<TraceTrack>& tracks,
    const std::vector<std::pair<std::string, std::string>>& metadata,
    const std::string& path) {
  const std::string text = RenderChromeTrace(tracks, metadata);
  if (path == "-") {
    std::fwrite(text.data(), 1, text.size(), stdout);
    std::fflush(stdout);
    return Status::OK();
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open trace output '" + path + "'");
  }
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const int rc = std::fclose(f);
  if (written != text.size() || rc != 0) {
    return Status::Internal("short write to trace output '" + path + "'");
  }
  return Status::OK();
}

}  // namespace bdisk::obs
