#include "obs/stream_tail.h"

#include <fstream>

namespace bdisk::obs {

void StreamTail::Feed(const char* data, std::size_t size,
                      const LineFn& on_line) {
  pending_.append(data, size);
  std::size_t start = 0;
  for (;;) {
    const std::size_t nl = pending_.find('\n', start);
    if (nl == std::string::npos) break;
    on_line(pending_.substr(start, nl - start));
    start = nl + 1;
  }
  pending_.erase(0, start);
}

bool StreamTail::PollFile(const std::string& path, const LineFn& on_line,
                          bool* restarted) {
  if (restarted != nullptr) *restarted = false;
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  in.seekg(0, std::ios::end);
  const auto end = in.tellg();
  if (end < 0) return false;
  const std::uint64_t size = static_cast<std::uint64_t>(end);
  if (size < offset_) {
    // Truncated or replaced underneath us: everything delivered so far
    // described a file that no longer exists. Start over.
    offset_ = 0;
    pending_.clear();
    ++truncations_;
    if (restarted != nullptr) *restarted = true;
  }
  if (size == offset_) return true;
  in.seekg(static_cast<std::streamoff>(offset_));
  std::string buf(static_cast<std::size_t>(size - offset_), '\0');
  in.read(buf.data(), static_cast<std::streamsize>(buf.size()));
  buf.resize(static_cast<std::size_t>(in.gcount()));
  offset_ += buf.size();
  Feed(buf.data(), buf.size(), on_line);
  return true;
}

}  // namespace bdisk::obs
