/// \file json.h
/// \brief Canonical JSON writer and parser for the ops plane.
///
/// One writer replaces the hand-rolled JSON emission that used to be
/// scattered across MetricsToJson, the bench JSON lines, and the
/// google-benchmark reporter glue. Canonicalization rules:
///
///  * doubles are printed with %.17g — lossless, so two values serialize
///    to the same bytes iff they are bit-identical (the property the
///    scenario goldens and BENCH_*.json trajectory diffing rely on);
///  * strings escape `"`, `\`, and control bytes (< 0x20) as \u00XX;
///    everything else (including UTF-8 multibyte sequences) passes through
///    verbatim;
///  * the writer inserts structural commas itself; callers control
///    layout whitespace explicitly (Newline), so byte-exact legacy formats
///    (e.g. the committed scenario goldens) are reproducible.
///
/// The parser accepts standard JSON (RFC 8259: objects, arrays, strings
/// with \uXXXX escapes incl. surrogate pairs, numbers, true/false/null)
/// and preserves object key order, so writer -> parser -> writer round
/// trips are byte-identical for canonical input. It exists for the tools
/// that *read* the ops plane's output — bench_compare diffing BENCH_*.json
/// trajectories and bdisk_top tailing snapshot streams — and for the
/// round-trip tests that pin the writer's canonical form.

#ifndef BDISK_OBS_JSON_H_
#define BDISK_OBS_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace bdisk::obs {

/// \brief Appends the canonical %.17g rendering of `v` to `out` (the
/// single definition of double canonicalization used everywhere).
void AppendCanonicalDouble(std::string* out, double v);

/// \brief Appends `s` as a quoted, escaped JSON string to `out`.
void AppendQuotedString(std::string* out, std::string_view s);

/// \brief Streaming JSON writer with automatic structural commas and
/// caller-controlled layout whitespace.
///
/// Commas are emitted lazily: when a value (or key) begins and a sibling
/// preceded it at the same nesting level, the writer first emits `,`, then
/// any whitespace scheduled with Newline(), then the token. Closing
/// brackets never take a comma but do flush scheduled whitespace — this
/// ordering is exactly what the legacy hand-rolled formats produced, so
/// ports stay byte-identical. With no Newline() calls the output is fully
/// compact (the JSON-lines form used by snapshots and bench metrics).
class JsonWriter {
 public:
  /// Structure.
  void BeginObject() { BeginContainer('{'); }
  void EndObject() { EndContainer('}'); }
  void BeginArray() { BeginContainer('['); }
  void EndArray() { EndContainer(']'); }

  /// Object key: emits `"k":` (comma-separated from the previous member).
  /// The next value attaches to this key without a comma.
  void Key(std::string_view k);

  /// Scalars.
  void String(std::string_view s);
  void Double(double v);
  void Uint(std::uint64_t v);
  void Int(std::int64_t v);
  void Bool(bool v);
  void Null();

  /// Schedules `"\n" + indent` to be emitted immediately after the next
  /// structural comma (or before the next token when no comma is due).
  void Newline(std::string_view indent);

  /// Raw bytes, bypassing comma/whitespace state entirely (layout-only
  /// escape hatch, e.g. the single space after a top-level key).
  void Raw(std::string_view bytes) { out_ += bytes; }

  const std::string& str() const { return out_; }
  std::string Release() { return std::move(out_); }

 private:
  void BeginContainer(char open);
  void EndContainer(char close);
  /// Emits the pending comma (if a sibling preceded) and scheduled
  /// whitespace; called before every key and value token.
  void BeginToken(bool is_key);
  void FlushPendingWhitespace();

  std::string out_;
  /// One bool per open container: has a member/element been written?
  std::vector<bool> has_sibling_;
  /// The next value completes a key (no comma before it).
  bool after_key_ = false;
  std::string pending_ws_;
};

/// \brief Parsed JSON value: a tagged tree preserving object key order.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  /// Members in document order (duplicate keys preserved as-is).
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  /// First member named `key`, or nullptr.
  const JsonValue* Find(std::string_view key) const;
};

/// \brief Parses one complete JSON document; trailing non-whitespace is an
/// error. Errors carry the byte offset of the offending token.
Result<JsonValue> ParseJson(std::string_view text);

/// \brief Re-serializes a parsed value in the writer's compact canonical
/// form (numbers via %.17g; integral numbers that fit uint64/int64 print
/// without an exponent or decimal point, matching Uint/Int emission).
std::string ToCanonicalJson(const JsonValue& value);

}  // namespace bdisk::obs

#endif  // BDISK_OBS_JSON_H_
