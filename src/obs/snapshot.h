/// \file snapshot.h
/// \brief Periodic metric snapshots of a simulation run as JSON lines.
///
/// A running simulation used to be a black box until it exited. The
/// snapshot plane fixes that in two pieces:
///
///  * **Timeline** — the collection side. A run appends every retrieval
///    outcome to a compact log (24 bytes per outcome, sequential writes —
///    measured far cheaper than bucketing in place, which cost ~9% of the
///    100k-client fleet run in zeroing, cache-missing, and merging
///    megabytes of bucket arrays). Bucketization into fixed sim-clock
///    intervals (`interval_slots` wide, keyed by *completion slot*)
///    happens once at render time, off the hot path. Shard-local
///    timelines merge by concatenation in shard order, which preserves
///    ascending global client order for any shard count; all aggregated
///    quantities are small integers whose double sums are exact, so the
///    rendered stream is byte-identical at any thread count and across
///    the slot and event engines. The clock is the *simulated* clock,
///    never wall time, which is what makes snapshots reproducible.
///
///  * **RenderSnapshotStream / WriteSnapshotStream** — the emission side.
///    One JSON object per line: a header (geometry + histogram bounds),
///    one cumulative snapshot per interval boundary ("metrics as of slot
///    T over retrievals completed before T"), a final line that also
///    carries the end-of-horizon incompletes (undecodable rate is only
///    knowable once the horizon ends), and — when a registry is supplied —
///    a registry dump with the process-wide counters and phase timers
///    (wall-clock profiling; deliberately excluded from the deterministic
///    contract). `bdisk_top` tails this stream.
///
/// Recording cost is one 24-byte append to shard-local storage — the
/// fleet bench asserts the whole plane at 1-slot granularity costs < 1%
/// wall clock.

#ifndef BDISK_OBS_SNAPSHOT_H_
#define BDISK_OBS_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/status.h"

namespace bdisk::obs {

class MetricRegistry;

/// Inclusive upper bounds of the snapshot latency histogram, in slots:
/// powers of two from 1 to 2^19, plus an implicit overflow bucket.
const std::vector<std::uint64_t>& SnapshotLatencyBounds();

/// \brief Outcome log of one run, rendered as sim-clock snapshots.
/// Shard-local recording (plain appends), concatenating Merge,
/// deterministic rendering.
class Timeline {
 public:
  /// \param interval_slots  snapshot interval (>= 1).
  /// \param horizon         run horizon in slots (>= 1, < 2^32); outcomes
  ///                        complete at slots < horizon.
  Timeline(std::uint64_t interval_slots, std::uint64_t horizon);

  std::uint64_t interval_slots() const { return interval_slots_; }
  std::uint64_t horizon() const { return horizon_; }
  std::size_t bucket_count() const {
    return static_cast<std::size_t>(
        (horizon_ + interval_slots_ - 1) / interval_slots_);
  }
  std::size_t completed_count() const { return completed_.size(); }

  /// Preallocates room for `outcomes` completed records (engines know the
  /// shard's client count up front).
  void Reserve(std::size_t outcomes) { completed_.reserve(outcomes); }

  /// Records a completed retrieval (one append; bucketed at render time).
  void RecordCompleted(std::uint64_t completion_slot, std::uint64_t latency,
                       std::uint64_t stall, bool met_deadline,
                       std::uint32_t errors, std::uint32_t corrupt);

  /// Records a retrieval that never completed within the horizon (only
  /// knowable at the end, so it lands in the final snapshot).
  void RecordIncomplete(std::uint32_t errors, std::uint32_t corrupt);

  /// Appends `other`'s log; `other` must have identical geometry. Merging
  /// shard timelines in shard order preserves ascending global client
  /// order (shards are contiguous index ranges), so downstream folds are
  /// shard-count-invariant.
  void Merge(const Timeline& other);

 private:
  friend std::string RenderSnapshotStream(const Timeline& timeline,
                                          const MetricRegistry* registry);

  /// One completed retrieval, 24 bytes. All fields fit 32 bits because
  /// the horizon does (checked at construction).
  struct Outcome {
    std::uint32_t completion_slot = 0;
    std::uint32_t latency = 0;
    std::uint32_t stall = 0;
    std::uint32_t errors = 0;
    std::uint32_t corrupt = 0;
    std::uint8_t met_deadline = 0;
  };

  std::uint64_t interval_slots_;
  std::uint64_t horizon_;
  std::vector<Outcome> completed_;
  /// End-of-horizon incompletes (never bucketed mid-run).
  std::uint64_t incomplete_ = 0;
  std::uint64_t incomplete_errors_ = 0;
  std::uint64_t incomplete_corrupt_ = 0;
};

/// \brief Renders the full snapshot stream (see file comment for the line
/// taxonomy). Deterministic given the timeline; the optional registry
/// appends one non-deterministic "registry" line.
std::string RenderSnapshotStream(const Timeline& timeline,
                                 const MetricRegistry* registry);

/// \brief Renders and writes the stream to `path` ("-" = stdout). With
/// `append`, adds to an existing file (multi-run experiments emit one
/// stream per run into the same file).
Status WriteSnapshotStream(const Timeline& timeline,
                           const MetricRegistry* registry,
                           const std::string& path, bool append = false);

}  // namespace bdisk::obs

#endif  // BDISK_OBS_SNAPSHOT_H_
