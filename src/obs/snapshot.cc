#include "obs/snapshot.h"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "common/check.h"
#include "obs/json.h"
#include "obs/registry.h"

namespace bdisk::obs {

const std::vector<std::uint64_t>& SnapshotLatencyBounds() {
  static const std::vector<std::uint64_t>* bounds = [] {
    auto* b = new std::vector<std::uint64_t>();
    for (std::uint64_t bound = 1; bound <= (1ULL << 19); bound <<= 1) {
      b->push_back(bound);
    }
    return b;
  }();
  return *bounds;
}

namespace {

std::size_t LatencyBin(std::uint64_t latency) {
  const auto& bounds = SnapshotLatencyBounds();
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), latency);
  return static_cast<std::size_t>(it - bounds.begin());  // == size() => overflow
}

std::size_t BinCount() { return SnapshotLatencyBounds().size() + 1; }

}  // namespace

Timeline::Timeline(std::uint64_t interval_slots, std::uint64_t horizon)
    : interval_slots_(interval_slots), horizon_(horizon) {
  BDISK_CHECK(interval_slots_ >= 1);
  BDISK_CHECK(horizon_ >= 1);
  // Outcome packs slots into 32 bits; a 2^32-slot horizon is ~4 years of
  // millisecond slots, far past any simulated run.
  BDISK_CHECK(horizon_ <= std::numeric_limits<std::uint32_t>::max());
}

void Timeline::RecordCompleted(std::uint64_t completion_slot,
                               std::uint64_t latency, std::uint64_t stall,
                               bool met_deadline, std::uint32_t errors,
                               std::uint32_t corrupt) {
  BDISK_DCHECK(completion_slot < horizon_);
  BDISK_DCHECK(latency <= horizon_);
  BDISK_DCHECK(stall <= horizon_);
  completed_.push_back(Outcome{static_cast<std::uint32_t>(completion_slot),
                               static_cast<std::uint32_t>(latency),
                               static_cast<std::uint32_t>(stall), errors,
                               corrupt, met_deadline ? std::uint8_t{1}
                                                     : std::uint8_t{0}});
}

void Timeline::RecordIncomplete(std::uint32_t errors, std::uint32_t corrupt) {
  ++incomplete_;
  incomplete_errors_ += errors;
  incomplete_corrupt_ += corrupt;
}

void Timeline::Merge(const Timeline& other) {
  BDISK_CHECK(interval_slots_ == other.interval_slots_);
  BDISK_CHECK(horizon_ == other.horizon_);
  completed_.insert(completed_.end(), other.completed_.begin(),
                    other.completed_.end());
  incomplete_ += other.incomplete_;
  incomplete_errors_ += other.incomplete_errors_;
  incomplete_corrupt_ += other.incomplete_corrupt_;
}

namespace {

/// Render-time per-interval aggregates, folded from the outcome log.
struct Bucket {
  RunningStats latency;
  RunningStats stall;
  std::uint64_t completed = 0;
  std::uint64_t missed_deadline = 0;
  std::uint64_t errors_observed = 0;
  std::uint64_t corrupt_detected = 0;
};

/// Upper-bound percentile over cumulative histogram counts: the first
/// bin whose cumulative count reaches q * total. Overflow reports the
/// last bound (documented estimate; exact max lives in max_latency).
std::uint64_t HistQuantile(const std::vector<std::uint64_t>& cumulative,
                           std::uint64_t total, double q) {
  if (total == 0) return 0;
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total));
  std::uint64_t seen = 0;
  const auto& bounds = SnapshotLatencyBounds();
  for (std::size_t i = 0; i < cumulative.size(); ++i) {
    seen += cumulative[i];
    if (seen >= target && seen > 0) {
      return i < bounds.size() ? bounds[i] : bounds.back();
    }
  }
  return bounds.back();
}

}  // namespace

std::string RenderSnapshotStream(const Timeline& timeline,
                                 const MetricRegistry* registry) {
  std::string out;
  const auto& bounds = SnapshotLatencyBounds();

  {
    JsonWriter w;
    w.BeginObject();
    w.Key("type");
    w.String("header");
    w.Key("interval_slots");
    w.Uint(timeline.interval_slots_);
    w.Key("horizon");
    w.Uint(timeline.horizon_);
    w.Key("latency_bounds");
    w.BeginArray();
    for (const std::uint64_t b : bounds) w.Uint(b);
    w.EndArray();
    w.EndObject();
    out += w.str();
    out += '\n';
  }

  // Bucketize the outcome log. One pass in stored order, which — shards
  // being contiguous index ranges merged in shard order — is ascending
  // global client order; and since every folded quantity is an integer
  // whose double sum is exact, the result is identical for any shard
  // count anyway.
  const std::size_t bins = BinCount();
  const std::size_t bucket_count = timeline.bucket_count();
  std::vector<Bucket> buckets(bucket_count);
  std::vector<std::uint64_t> hist(bucket_count * bins, 0);
  for (const Timeline::Outcome& o : timeline.completed_) {
    const auto b = static_cast<std::size_t>(o.completion_slot /
                                            timeline.interval_slots_);
    Bucket& bucket = buckets[b];
    ++bucket.completed;
    bucket.latency.Add(static_cast<double>(o.latency));
    bucket.stall.Add(static_cast<double>(o.stall));
    if (o.met_deadline == 0) ++bucket.missed_deadline;
    bucket.errors_observed += o.errors;
    bucket.corrupt_detected += o.corrupt;
    ++hist[b * bins + LatencyBin(o.latency)];
  }

  // Cumulative walk: exact (integer-valued sums), fixed fold order.
  RunningStats latency;
  RunningStats stall;
  std::uint64_t completed = 0;
  std::uint64_t missed_deadline = 0;
  std::uint64_t errors_observed = 0;
  std::uint64_t corrupt_detected = 0;
  std::vector<std::uint64_t> cumulative_hist(bins, 0);

  for (std::size_t b = 0; b < bucket_count; ++b) {
    const Bucket& bucket = buckets[b];
    latency.Merge(bucket.latency);
    stall.Merge(bucket.stall);
    completed += bucket.completed;
    missed_deadline += bucket.missed_deadline;
    errors_observed += bucket.errors_observed;
    corrupt_detected += bucket.corrupt_detected;
    for (std::size_t i = 0; i < bins; ++i) {
      cumulative_hist[i] += hist[b * bins + i];
    }
    const bool last = b + 1 == bucket_count;
    const std::uint64_t slot = std::min(
        (static_cast<std::uint64_t>(b) + 1) * timeline.interval_slots_,
        timeline.horizon_);

    JsonWriter w;
    w.BeginObject();
    w.Key("type");
    w.String(last ? "final" : "snapshot");
    w.Key("slot");
    w.Uint(slot);
    w.Key("completed");
    w.Uint(completed);
    w.Key("interval_completed");
    w.Uint(bucket.completed);
    w.Key("missed_deadline");
    w.Uint(missed_deadline);
    w.Key("errors_observed");
    w.Uint(errors_observed);
    w.Key("corrupt_detected");
    w.Uint(corrupt_detected);
    w.Key("mean_latency");
    w.Double(latency.mean());
    w.Key("max_latency");
    w.Double(latency.count() > 0 ? latency.max() : 0.0);
    w.Key("mean_stall");
    w.Double(stall.mean());
    w.Key("p50_latency");
    w.Uint(HistQuantile(cumulative_hist, completed, 0.50));
    w.Key("p90_latency");
    w.Uint(HistQuantile(cumulative_hist, completed, 0.90));
    w.Key("p99_latency");
    w.Uint(HistQuantile(cumulative_hist, completed, 0.99));
    if (last) {
      // Only the final line knows the incompletes: an attempt is
      // undecodable iff the whole horizon could not complete it.
      const std::uint64_t attempts = completed + timeline.incomplete_;
      w.Key("incomplete");
      w.Uint(timeline.incomplete_);
      w.Key("attempts");
      w.Uint(attempts);
      w.Key("undecodable_rate");
      w.Double(attempts == 0
                   ? 0.0
                   : static_cast<double>(timeline.incomplete_) /
                         static_cast<double>(attempts));
      w.Key("miss_rate");
      w.Double(attempts == 0
                   ? 0.0
                   : static_cast<double>(missed_deadline +
                                         timeline.incomplete_) /
                         static_cast<double>(attempts));
      w.Key("total_errors_observed");
      w.Uint(errors_observed + timeline.incomplete_errors_);
      w.Key("total_corrupt_detected");
      w.Uint(corrupt_detected + timeline.incomplete_corrupt_);
    }
    w.EndObject();
    out += w.str();
    out += '\n';
  }

  if (registry != nullptr) {
    JsonWriter w;
    w.BeginObject();
    w.Key("type");
    w.String("registry");
    registry->WriteJson(&w);
    w.EndObject();
    out += w.str();
    out += '\n';
  }
  return out;
}

Status WriteSnapshotStream(const Timeline& timeline,
                           const MetricRegistry* registry,
                           const std::string& path, bool append) {
  const std::string text = RenderSnapshotStream(timeline, registry);
  if (path == "-") {
    std::fwrite(text.data(), 1, text.size(), stdout);
    std::fflush(stdout);
    return Status::OK();
  }
  std::FILE* f = std::fopen(path.c_str(), append ? "ab" : "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open metrics stream '" + path + "'");
  }
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const int rc = std::fclose(f);
  if (written != text.size() || rc != 0) {
    return Status::Internal("short write to metrics stream '" + path + "'");
  }
  return Status::OK();
}

}  // namespace bdisk::obs
