#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/check.h"

namespace bdisk::obs {

void AppendCanonicalDouble(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  *out += buf;
}

void AppendQuotedString(std::string* out, std::string_view s) {
  *out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

void JsonWriter::FlushPendingWhitespace() {
  if (!pending_ws_.empty()) {
    out_ += pending_ws_;
    pending_ws_.clear();
  }
}

void JsonWriter::BeginToken(bool is_key) {
  if (after_key_) {
    // Value completing a key: never comma-separated from its key.
    BDISK_DCHECK(!is_key);
    after_key_ = false;
    FlushPendingWhitespace();
    return;
  }
  if (!has_sibling_.empty() && has_sibling_.back()) out_ += ',';
  FlushPendingWhitespace();
  if (!has_sibling_.empty()) has_sibling_.back() = true;
  if (is_key) after_key_ = true;
}

void JsonWriter::BeginContainer(char open) {
  BeginToken(/*is_key=*/false);
  out_ += open;
  has_sibling_.push_back(false);
}

void JsonWriter::EndContainer(char close) {
  BDISK_DCHECK(!has_sibling_.empty());
  FlushPendingWhitespace();
  out_ += close;
  has_sibling_.pop_back();
}

void JsonWriter::Key(std::string_view k) {
  BeginToken(/*is_key=*/true);
  AppendQuotedString(&out_, k);
  out_ += ':';
}

void JsonWriter::String(std::string_view s) {
  BeginToken(/*is_key=*/false);
  AppendQuotedString(&out_, s);
}

void JsonWriter::Double(double v) {
  BeginToken(/*is_key=*/false);
  AppendCanonicalDouble(&out_, v);
}

void JsonWriter::Uint(std::uint64_t v) {
  BeginToken(/*is_key=*/false);
  out_ += std::to_string(v);
}

void JsonWriter::Int(std::int64_t v) {
  BeginToken(/*is_key=*/false);
  out_ += std::to_string(v);
}

void JsonWriter::Bool(bool v) {
  BeginToken(/*is_key=*/false);
  out_ += v ? "true" : "false";
}

void JsonWriter::Null() {
  BeginToken(/*is_key=*/false);
  out_ += "null";
}

void JsonWriter::Newline(std::string_view indent) {
  pending_ws_ = "\n";
  pending_ws_ += indent;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

/// Recursive-descent parser over a string_view with byte-offset errors.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWhitespace();
    JsonValue value;
    BDISK_RETURN_NOT_OK(ParseValue(&value, /*depth=*/0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  /// Matches the writer's worst case (metrics objects nest ~4 deep) with
  /// a wide margin while keeping adversarial input from overflowing the
  /// stack.
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& message) const {
    return Status::InvalidArgument("json: " + message + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string_value);
      case 't':
      case 'f': return ParseKeyword(out);
      case 'n': return ParseNull(out);
      default: return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    out->kind = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      std::string key;
      BDISK_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      SkipWhitespace();
      JsonValue value;
      BDISK_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    out->kind = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      SkipWhitespace();
      JsonValue value;
      BDISK_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Status ParseHex4(std::uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      std::uint32_t digit = 0;
      if (c >= '0' && c <= '9') {
        digit = static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
      value = value * 16 + digit;
    }
    pos_ += 4;
    *out = value;
    return Status::OK();
  }

  static void AppendUtf8(std::string* out, std::uint32_t cp) {
    if (cp < 0x80) {
      *out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      *out += static_cast<char>(0xC0 | (cp >> 6));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      *out += static_cast<char>(0xE0 | (cp >> 12));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (cp >> 18));
      *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        *out += c;
        ++pos_;
        continue;
      }
      ++pos_;  // '\\'
      if (pos_ >= text_.size()) return Error("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          std::uint32_t cp = 0;
          BDISK_RETURN_NOT_OK(ParseHex4(&cp));
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate must follow.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Error("lone high surrogate");
            }
            pos_ += 2;
            std::uint32_t low = 0;
            BDISK_RETURN_NOT_OK(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("lone low surrogate");
          }
          AppendUtf8(out, cp);
          break;
        }
        default: return Error("invalid escape character");
      }
    }
  }

  Status ParseKeyword(JsonValue* out) {
    if (text_.substr(pos_, 4) == "true") {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = true;
      pos_ += 4;
      return Status::OK();
    }
    if (text_.substr(pos_, 5) == "false") {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = false;
      pos_ += 5;
      return Status::OK();
    }
    return Error("invalid literal");
  }

  Status ParseNull(JsonValue* out) {
    if (text_.substr(pos_, 4) == "null") {
      out->kind = JsonValue::Kind::kNull;
      pos_ += 4;
      return Status::OK();
    }
    return Error("invalid literal");
  }

  Status ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    // Integer part: one or more digits, no leading zero before a digit.
    if (pos_ >= text_.size() || !std::isdigit(
            static_cast<unsigned char>(text_[pos_]))) {
      pos_ = start;
      return Error("invalid number");
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(
              static_cast<unsigned char>(text_[pos_]))) {
        return Error("digits required after decimal point");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || !std::isdigit(
              static_cast<unsigned char>(text_[pos_]))) {
        return Error("digits required in exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::strtod(token.c_str(), nullptr);
    return Status::OK();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void WriteValue(JsonWriter* w, const JsonValue& v) {
  switch (v.kind) {
    case JsonValue::Kind::kNull: w->Null(); break;
    case JsonValue::Kind::kBool: w->Bool(v.bool_value); break;
    case JsonValue::Kind::kNumber: {
      // Integral values that fit the native integer emitters reproduce
      // Uint/Int output (no ".0"/exponent), keeping round trips canonical.
      const double d = v.number;
      if (d == std::floor(d) && std::isfinite(d)) {
        if (d >= 0.0 && d <= 18446744073709549568.0) {  // < 2^64, exact
          w->Uint(static_cast<std::uint64_t>(d));
          break;
        }
        if (d < 0.0 && d >= -9223372036854775808.0) {
          w->Int(static_cast<std::int64_t>(d));
          break;
        }
      }
      w->Double(d);
      break;
    }
    case JsonValue::Kind::kString: w->String(v.string_value); break;
    case JsonValue::Kind::kArray:
      w->BeginArray();
      for (const JsonValue& e : v.array) WriteValue(w, e);
      w->EndArray();
      break;
    case JsonValue::Kind::kObject:
      w->BeginObject();
      for (const auto& [key, value] : v.object) {
        w->Key(key);
        WriteValue(w, value);
      }
      w->EndObject();
      break;
  }
}

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

std::string ToCanonicalJson(const JsonValue& value) {
  JsonWriter w;
  WriteValue(&w, value);
  return w.Release();
}

}  // namespace bdisk::obs
