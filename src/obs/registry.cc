#include "obs/registry.h"

#include <algorithm>

#include "common/check.h"
#include "obs/json.h"

namespace bdisk::obs {

HistogramMetric::HistogramMetric(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  BDISK_CHECK(!bounds_.empty());
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    BDISK_CHECK(bounds_[i - 1] < bounds_[i]);
  }
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i] = 0;
}

double HistogramMetric::QuantileUpperBound(double q) const {
  const std::uint64_t total = Count();
  if (total == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    seen += CountInBucket(i);
    if (seen >= target && seen > 0) return bounds_[i];
  }
  return bounds_.back();
}

void HistogramMetric::ResetQuiesced() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Counter* MetricRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [n, c] : counters_) {
    if (n == name) return c.get();
  }
  counters_.emplace_back(name, std::make_unique<Counter>());
  return counters_.back().second.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [n, g] : gauges_) {
    if (n == name) return g.get();
  }
  gauges_.emplace_back(name, std::make_unique<Gauge>());
  return gauges_.back().second.get();
}

HistogramMetric* MetricRegistry::GetHistogram(const std::string& name,
                                              std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [n, h] : histograms_) {
    if (n == name) return h.get();
  }
  histograms_.emplace_back(
      name, std::make_unique<HistogramMetric>(std::move(bounds)));
  return histograms_.back().second.get();
}

void MetricRegistry::WriteJson(JsonWriter* writer) const {
  // Snapshot the name lists under the lock, then read instruments without
  // it (values are atomics; pointers are stable). One globally name-sorted
  // emission regardless of instrument kind.
  struct Entry {
    std::string name;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const HistogramMetric* histogram = nullptr;
  };
  std::vector<Entry> entries;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [n, c] : counters_) {
      entries.push_back({n, c.get(), nullptr, nullptr});
    }
    for (const auto& [n, g] : gauges_) {
      entries.push_back({n, nullptr, g.get(), nullptr});
    }
    for (const auto& [n, h] : histograms_) {
      entries.push_back({n, nullptr, nullptr, h.get()});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.name < b.name; });

  for (const Entry& e : entries) {
    writer->Key(e.name);
    if (e.counter != nullptr) {
      writer->Uint(e.counter->Value());
    } else if (e.gauge != nullptr) {
      writer->Double(e.gauge->Value());
    } else {
      writer->BeginObject();
      writer->Key("count");
      writer->Uint(e.histogram->Count());
      writer->Key("sum");
      writer->Double(e.histogram->Sum());
      writer->Key("bounds");
      writer->BeginArray();
      for (const double b : e.histogram->bounds()) writer->Double(b);
      writer->EndArray();
      writer->Key("counts");
      writer->BeginArray();
      for (std::size_t i = 0; i <= e.histogram->bounds().size(); ++i) {
        writer->Uint(e.histogram->CountInBucket(i));
      }
      writer->EndArray();
      writer->EndObject();
    }
  }
}

void MetricRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [n, c] : counters_) {
    (void)n;
    c->ResetQuiesced();
  }
  for (auto& [n, g] : gauges_) {
    (void)n;
    g->Set(0.0);
  }
  for (auto& [n, h] : histograms_) {
    (void)n;
    h->ResetQuiesced();
  }
}

MetricRegistry& GlobalRegistry() {
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

std::vector<double> PhaseTimerBoundsUs() {
  std::vector<double> bounds;
  double b = 1.0;
  for (int i = 0; i < 17; ++i) {
    bounds.push_back(b);
    b *= 4.0;
  }
  return bounds;
}

}  // namespace bdisk::obs
