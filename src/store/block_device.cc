#include "store/block_device.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace bdisk::store {

const char* IoErrorToString(IoError error) {
  switch (error) {
    case IoError::kOk:
      return "ok";
    case IoError::kErrno:
      return "os error";
    case IoError::kShortWrite:
      return "short write";
    case IoError::kShortRead:
      return "short read";
    case IoError::kOutOfRange:
      return "block out of range";
    case IoError::kPowerCut:
      return "power cut";
    case IoError::kChecksumMismatch:
      return "checksum mismatch";
    case IoError::kCorruptMeta:
      return "corrupt metadata";
  }
  return "unknown";
}

const char* IoOpToString(IoOp op) {
  switch (op) {
    case IoOp::kNone:
      return "none";
    case IoOp::kOpen:
      return "open";
    case IoOp::kRead:
      return "read";
    case IoOp::kWrite:
      return "write";
    case IoOp::kSync:
      return "sync";
    case IoOp::kTruncate:
      return "truncate";
  }
  return "unknown";
}

std::string IoResult::ToString() const {
  if (ok()) return "ok";
  std::string out(IoOpToString(op));
  if (block != kNoBlock) {
    out += " of block " + std::to_string(block);
  }
  out += " failed: ";
  out += IoErrorToString(error);
  if (error == IoError::kErrno) {
    out += " (errno " + std::to_string(raw_errno) + " '" +
           std::strerror(raw_errno) + "')";
  } else if (error == IoError::kShortWrite || error == IoError::kShortRead) {
    out += " (" + std::to_string(bytes) + " bytes transferred)";
  }
  return out;
}

Status IoResult::ToStatus(const std::string& context) const {
  if (ok()) return Status::OK();
  const std::string msg = context + ": " + ToString();
  if (error == IoError::kChecksumMismatch) return Status::DataLoss(msg);
  if (error == IoError::kCorruptMeta) return Status::DataLoss(msg);
  if (error == IoError::kErrno && raw_errno == ENOSPC) {
    return Status::ResourceExhausted(msg);
  }
  return Status::IoError(msg);
}

// ---------------------------------------------------------------------------
// FileBlockDevice
// ---------------------------------------------------------------------------

Result<std::unique_ptr<FileBlockDevice>> FileBlockDevice::Create(
    const std::string& path, std::size_t block_size,
    std::uint64_t block_count) {
  if (block_size == 0 || block_count == 0) {
    return Status::InvalidArgument(
        "FileBlockDevice: block_size and block_count must be positive");
  }
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return IoResult::Errno(IoOp::kOpen, errno).ToStatus("FileBlockDevice '" +
                                                        path + "'");
  }
  const auto bytes =
      static_cast<off_t>(block_size * static_cast<std::size_t>(block_count));
  if (::ftruncate(fd, bytes) != 0) {
    const IoResult r = IoResult::Errno(IoOp::kTruncate, errno);
    ::close(fd);
    return r.ToStatus("FileBlockDevice '" + path + "'");
  }
  return std::unique_ptr<FileBlockDevice>(
      new FileBlockDevice(fd, block_size, block_count));
}

Result<std::unique_ptr<FileBlockDevice>> FileBlockDevice::Open(
    const std::string& path, std::size_t block_size) {
  if (block_size == 0) {
    return Status::InvalidArgument(
        "FileBlockDevice: block_size must be positive");
  }
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return IoResult::Errno(IoOp::kOpen, errno).ToStatus("FileBlockDevice '" +
                                                        path + "'");
  }
  const off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    const IoResult r = IoResult::Errno(IoOp::kOpen, errno);
    ::close(fd);
    return r.ToStatus("FileBlockDevice '" + path + "'");
  }
  if (size == 0 || static_cast<std::uint64_t>(size) % block_size != 0) {
    ::close(fd);
    return Status::InvalidArgument(
        "FileBlockDevice '" + path + "': file size " + std::to_string(size) +
        " is not a non-zero multiple of block size " +
        std::to_string(block_size));
  }
  return std::unique_ptr<FileBlockDevice>(new FileBlockDevice(
      fd, block_size, static_cast<std::uint64_t>(size) / block_size));
}

FileBlockDevice::~FileBlockDevice() {
  if (fd_ >= 0) ::close(fd_);
}

IoResult FileBlockDevice::ReadBlock(std::uint64_t index, void* out) {
  if (index >= block_count_) return IoResult::OutOfRange(IoOp::kRead, index);
  auto* dst = static_cast<std::uint8_t*>(out);
  std::size_t done = 0;
  while (done < block_size_) {
    const ssize_t n =
        ::pread(fd_, dst + done, block_size_ - done,
                static_cast<off_t>(index * block_size_ + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return IoResult::Errno(IoOp::kRead, errno, index);
    }
    if (n == 0) {
      // EOF inside the fixed extent: the file was truncated underneath us.
      return IoResult::Short(IoOp::kRead, index, done);
    }
    done += static_cast<std::size_t>(n);
  }
  return IoResult::Ok();
}

IoResult FileBlockDevice::WriteBlock(std::uint64_t index, const void* data) {
  if (index >= block_count_) return IoResult::OutOfRange(IoOp::kWrite, index);
  const auto* src = static_cast<const std::uint8_t*>(data);
  std::size_t done = 0;
  while (done < block_size_) {
    const ssize_t n =
        ::pwrite(fd_, src + done, block_size_ - done,
                 static_cast<off_t>(index * block_size_ + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return IoResult::Errno(IoOp::kWrite, errno, index);
    }
    if (n == 0) {
      // A 0-byte pwrite is not progress (a full device / zero-size
      // extent reports this way); looping on it would spin forever.
      return IoResult::Short(IoOp::kWrite, index, done);
    }
    done += static_cast<std::size_t>(n);
  }
  return IoResult::Ok();
}

IoResult FileBlockDevice::Sync() {
  if (::fsync(fd_) != 0) return IoResult::Errno(IoOp::kSync, errno);
  return IoResult::Ok();
}

// ---------------------------------------------------------------------------
// MemBlockDevice
// ---------------------------------------------------------------------------

IoResult MemBlockDevice::ReadBlock(std::uint64_t index, void* out) {
  if (index >= block_count_) return IoResult::OutOfRange(IoOp::kRead, index);
  std::memcpy(out, buffer_->data() + index * block_size_, block_size_);
  return IoResult::Ok();
}

IoResult MemBlockDevice::WriteBlock(std::uint64_t index, const void* data) {
  if (index >= block_count_) return IoResult::OutOfRange(IoOp::kWrite, index);
  std::memcpy(buffer_->data() + index * block_size_, data, block_size_);
  return IoResult::Ok();
}

}  // namespace bdisk::store
