#include "store/block_store.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"
#include "common/crc32c.h"

namespace bdisk::store {

namespace {

constexpr std::uint8_t kMagic[8] = {'B', 'D', 'S', 'K', 'S', 'T', 'R', '1'};
constexpr std::uint32_t kFormat = 1;
constexpr std::size_t kSuperblockBytes = 56;
constexpr std::size_t kSuperblockCrcOffset = 52;

void PutU32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

void PutU64(std::uint8_t* p, std::uint64_t v) {
  PutU32(p, static_cast<std::uint32_t>(v));
  PutU32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t GetU32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t GetU64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(GetU32(p)) |
         static_cast<std::uint64_t>(GetU32(p + 4)) << 32;
}

/// In-memory form of one superblock slot.
struct Superblock {
  std::uint64_t generation = 0;
  std::uint64_t catalog_first = 0;
  std::uint64_t catalog_bytes = 0;
  std::uint32_t catalog_crc = 0;
};

/// Serializes `sb` into a full device sector (tail zero-padded).
std::vector<std::uint8_t> SerializeSuperblock(const Superblock& sb,
                                              std::size_t block_size,
                                              std::uint64_t block_count) {
  std::vector<std::uint8_t> sector(block_size, 0);
  std::memcpy(sector.data(), kMagic, 8);
  PutU32(sector.data() + 8, kFormat);
  PutU32(sector.data() + 12, static_cast<std::uint32_t>(block_size));
  PutU64(sector.data() + 16, block_count);
  PutU64(sector.data() + 24, sb.generation);
  PutU64(sector.data() + 32, sb.catalog_first);
  PutU64(sector.data() + 40, sb.catalog_bytes);
  PutU32(sector.data() + 48, sb.catalog_crc);
  PutU32(sector.data() + kSuperblockCrcOffset,
         Crc32c(sector.data(), kSuperblockCrcOffset));
  return sector;
}

/// Parses a superblock sector; false if magic/format/geometry/CRC reject.
bool ParseSuperblock(const std::uint8_t* sector, std::size_t block_size,
                     std::uint64_t block_count, Superblock* out) {
  if (std::memcmp(sector, kMagic, 8) != 0) return false;
  if (GetU32(sector + 8) != kFormat) return false;
  if (GetU32(sector + 12) != block_size) return false;
  if (GetU64(sector + 16) != block_count) return false;
  if (GetU32(sector + kSuperblockCrcOffset) !=
      Crc32c(sector, kSuperblockCrcOffset)) {
    return false;
  }
  out->generation = GetU64(sector + 24);
  out->catalog_first = GetU64(sector + 32);
  out->catalog_bytes = GetU64(sector + 40);
  out->catalog_crc = GetU32(sector + 48);
  return true;
}

constexpr std::size_t kEntryFixedBytes = 4 + 8 + 4 + 4 + 8;
constexpr std::size_t kRefBytes = 8 + 4;

std::vector<std::uint8_t> SerializeCatalog(const Catalog& catalog) {
  std::size_t bytes = 8;
  for (const auto& [key, entry] : catalog) {
    bytes += kEntryFixedBytes + entry.blocks.size() * kRefBytes;
  }
  std::vector<std::uint8_t> blob(bytes);
  std::uint8_t* p = blob.data();
  PutU64(p, catalog.size());
  p += 8;
  // std::map iteration order IS (file_id, version) order — the serialized
  // catalog is canonical, so identical contents produce identical bytes.
  for (const auto& [key, entry] : catalog) {
    PutU32(p, entry.file_id);
    PutU64(p + 4, entry.version);
    PutU32(p + 12, entry.m);
    PutU32(p + 16, entry.n);
    PutU64(p + 20, entry.payload_bytes);
    p += kEntryFixedBytes;
    for (const CodedBlockRef& ref : entry.blocks) {
      PutU64(p, ref.first_block);
      PutU32(p + 8, ref.checksum);
      p += kRefBytes;
    }
  }
  BDISK_CHECK(p == blob.data() + blob.size());
  return blob;
}

/// Bounds-checked catalog parse; every malformation is a typed DataLoss.
Result<Catalog> ParseCatalog(const std::vector<std::uint8_t>& blob) {
  const auto corrupt = [](const std::string& what) -> Status {
    return Status::DataLoss("block store catalog: " + what);
  };
  if (blob.size() < 8) return corrupt("blob shorter than its entry count");
  const std::uint8_t* p = blob.data();
  const std::uint8_t* end = blob.data() + blob.size();
  const std::uint64_t count = GetU64(p);
  p += 8;
  Catalog catalog;
  for (std::uint64_t i = 0; i < count; ++i) {
    if (static_cast<std::size_t>(end - p) < kEntryFixedBytes) {
      return corrupt("truncated entry header");
    }
    CatalogEntry entry;
    entry.file_id = GetU32(p);
    entry.version = GetU64(p + 4);
    entry.m = GetU32(p + 12);
    entry.n = GetU32(p + 16);
    entry.payload_bytes = GetU64(p + 20);
    p += kEntryFixedBytes;
    if (entry.n == 0 || entry.m == 0 || entry.m > entry.n) {
      return corrupt("entry with invalid geometry m=" +
                     std::to_string(entry.m) + " n=" +
                     std::to_string(entry.n));
    }
    if (static_cast<std::size_t>(end - p) <
        static_cast<std::size_t>(entry.n) * kRefBytes) {
      return corrupt("truncated block reference list");
    }
    entry.blocks.reserve(entry.n);
    for (std::uint32_t b = 0; b < entry.n; ++b) {
      CodedBlockRef ref;
      ref.first_block = GetU64(p);
      ref.checksum = GetU32(p + 8);
      p += kRefBytes;
      entry.blocks.push_back(ref);
    }
    const CatalogKey key{entry.file_id, entry.version};
    if (!catalog.emplace(key, std::move(entry)).second) {
      return corrupt("duplicate entry for file " +
                     std::to_string(key.first) + " v" +
                     std::to_string(key.second));
    }
  }
  if (p != end) return corrupt("trailing bytes after last entry");
  return catalog;
}

/// Marks one entry's extents in `bitmap`; false on out-of-range or
/// double allocation (both impossible for a store we wrote — their
/// presence means the catalog lies, so recovery must reject it).
bool MarkEntry(const CatalogEntry& entry, std::size_t block_size,
               FreeBitmap* bitmap) {
  const std::uint64_t run = entry.BlocksPerCoded(block_size);
  for (const CodedBlockRef& ref : entry.blocks) {
    if (ref.first_block < BlockStore::kFirstDataBlock ||
        run > bitmap->size() - ref.first_block) {
      return false;
    }
    for (std::uint64_t b = 0; b < run; ++b) {
      if (bitmap->Test(ref.first_block + b)) return false;
      bitmap->Set(ref.first_block + b);
    }
  }
  return true;
}

std::uint64_t ExtentBlocks(std::uint64_t bytes, std::size_t block_size) {
  return (bytes + block_size - 1) / block_size;
}

}  // namespace

std::string StoreStats::ToString() const {
  return "generation=" + std::to_string(generation) +
         " entries=" + std::to_string(entries) +
         " blocks=" + std::to_string(total_blocks - free_blocks) + "/" +
         std::to_string(total_blocks) +
         " block_size=" + std::to_string(block_size);
}

IoResult BlockStore::WriteExtent(std::uint64_t first,
                                 const std::uint8_t* bytes,
                                 std::uint64_t len) {
  const std::size_t bs = device_->block_size();
  std::vector<std::uint8_t> sector(bs);
  for (std::uint64_t i = 0; i < ExtentBlocks(len, bs); ++i) {
    const std::uint64_t off = i * bs;
    const std::size_t chunk =
        static_cast<std::size_t>(std::min<std::uint64_t>(bs, len - off));
    std::memcpy(sector.data(), bytes + off, chunk);
    if (chunk < bs) std::memset(sector.data() + chunk, 0, bs - chunk);
    const IoResult r = device_->WriteBlock(first + i, sector.data());
    if (!r.ok()) return r;
  }
  return IoResult::Ok();
}

IoResult BlockStore::ReadExtent(std::uint64_t first, std::uint8_t* bytes,
                                std::uint64_t len) const {
  const std::size_t bs = device_->block_size();
  std::vector<std::uint8_t> sector(bs);
  for (std::uint64_t i = 0; i < ExtentBlocks(len, bs); ++i) {
    const IoResult r = device_->ReadBlock(first + i, sector.data());
    if (!r.ok()) return r;
    const std::uint64_t off = i * bs;
    std::memcpy(bytes + off, sector.data(),
                static_cast<std::size_t>(std::min<std::uint64_t>(bs, len - off)));
  }
  return IoResult::Ok();
}

void BlockStore::RebuildBitmaps() {
  const std::size_t bs = device_->block_size();
  FreeBitmap used(device_->block_count());
  used.Set(0);
  used.Set(1);
  for (std::uint64_t i = 0; i < ExtentBlocks(catalog_bytes_, bs); ++i) {
    used.Set(catalog_first_ + i);
  }
  for (const auto& [key, entry] : committed_) {
    BDISK_CHECK(MarkEntry(entry, bs, &used));
  }
  committed_used_ = used;
  staged_used_ = used;
}

Result<std::unique_ptr<BlockStore>> BlockStore::Format(
    std::unique_ptr<BlockDevice> device) {
  BDISK_CHECK(device != nullptr);
  if (device->block_size() < kMinBlockSize) {
    return Status::InvalidArgument(
        "block store: device block size " +
        std::to_string(device->block_size()) + " is below the minimum " +
        std::to_string(kMinBlockSize));
  }
  if (device->block_count() < kFirstDataBlock + 1) {
    return Status::InvalidArgument(
        "block store: device too small (" +
        std::to_string(device->block_count()) + " blocks)");
  }
  auto store = std::unique_ptr<BlockStore>(new BlockStore(std::move(device)));
  BlockDevice* dev = store->device_.get();
  const std::size_t bs = dev->block_size();

  // Invalidate the stale-generation slot first so a reused device file
  // cannot resurrect an old catalog.
  const std::vector<std::uint8_t> zeros(bs, 0);
  IoResult r = dev->WriteBlock(0, zeros.data());
  if (!r.ok()) return r.ToStatus("block store format");

  // Generation 1: an empty catalog at the first data block.
  const std::vector<std::uint8_t> blob = SerializeCatalog({});
  store->generation_ = 1;
  store->catalog_first_ = kFirstDataBlock;
  store->catalog_bytes_ = blob.size();
  r = store->WriteExtent(kFirstDataBlock, blob.data(), blob.size());
  if (!r.ok()) return r.ToStatus("block store format");
  r = dev->Sync();
  if (!r.ok()) return r.ToStatus("block store format");

  Superblock sb;
  sb.generation = 1;
  sb.catalog_first = kFirstDataBlock;
  sb.catalog_bytes = blob.size();
  sb.catalog_crc = Crc32c(blob.data(), blob.size());
  const std::vector<std::uint8_t> sector =
      SerializeSuperblock(sb, bs, dev->block_count());
  r = dev->WriteBlock(sb.generation % 2, sector.data());
  if (!r.ok()) return r.ToStatus("block store format");
  r = dev->Sync();
  if (!r.ok()) return r.ToStatus("block store format");

  store->RebuildBitmaps();
  return store;
}

Result<std::unique_ptr<BlockStore>> BlockStore::Open(
    std::unique_ptr<BlockDevice> device) {
  BDISK_CHECK(device != nullptr);
  if (device->block_size() < kMinBlockSize) {
    return Status::InvalidArgument(
        "block store: device block size " +
        std::to_string(device->block_size()) + " is below the minimum " +
        std::to_string(kMinBlockSize));
  }
  auto store = std::unique_ptr<BlockStore>(new BlockStore(std::move(device)));
  BlockDevice* dev = store->device_.get();
  const std::size_t bs = dev->block_size();
  const std::uint64_t count = dev->block_count();

  // Recovery: collect the candidate superblocks, newest generation first.
  std::vector<Superblock> candidates;
  std::vector<std::uint8_t> sector(bs);
  for (std::uint64_t slot = 0; slot < 2 && slot < count; ++slot) {
    const IoResult r = dev->ReadBlock(slot, sector.data());
    if (!r.ok()) return r.ToStatus("block store open");
    Superblock sb;
    if (ParseSuperblock(sector.data(), bs, count, &sb)) {
      candidates.push_back(sb);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Superblock& a, const Superblock& b) {
              return a.generation > b.generation;
            });

  // Adopt the newest candidate whose catalog fully validates. A torn or
  // lost catalog demotes us to the previous generation — never to a
  // hybrid.
  for (const Superblock& sb : candidates) {
    if (sb.catalog_first < kFirstDataBlock ||
        sb.catalog_first >= count ||
        ExtentBlocks(sb.catalog_bytes, bs) > count - sb.catalog_first) {
      continue;
    }
    std::vector<std::uint8_t> blob(sb.catalog_bytes);
    const IoResult r =
        store->ReadExtent(sb.catalog_first, blob.data(), blob.size());
    if (!r.ok()) {
      // A checksum-independent device error is not "this slot is stale";
      // surface it rather than silently falling back.
      return r.ToStatus("block store open");
    }
    if (Crc32c(blob.data(), blob.size()) != sb.catalog_crc) continue;
    Result<Catalog> catalog = ParseCatalog(blob);
    if (!catalog.ok()) continue;
    // Allocation consistency: no entry may overlap another, the catalog
    // extent, or the superblocks.
    FreeBitmap used(count);
    used.Set(0);
    if (count > 1) used.Set(1);
    bool consistent = true;
    for (std::uint64_t i = 0; i < ExtentBlocks(sb.catalog_bytes, bs); ++i) {
      used.Set(sb.catalog_first + i);
    }
    for (const auto& [key, entry] : *catalog) {
      if (!MarkEntry(entry, bs, &used)) {
        consistent = false;
        break;
      }
    }
    if (!consistent) continue;

    store->generation_ = sb.generation;
    store->catalog_first_ = sb.catalog_first;
    store->catalog_bytes_ = sb.catalog_bytes;
    store->committed_ = std::move(*catalog);
    store->committed_used_ = used;
    store->staged_used_ = used;
    store->staged_ = store->committed_;
    return store;
  }
  return Status::DataLoss(
      "block store open: no superblock validates (device was never "
      "formatted, or both generations are damaged)");
}

Status BlockStore::StageFile(const std::vector<ida::Block>& coded) {
  if (poisoned_) {
    return Status::IoError(
        "block store: poisoned by a failed commit; Abort first");
  }
  if (coded.empty()) {
    return Status::InvalidArgument("block store: StageFile with no blocks");
  }
  const ida::BlockHeader& h0 = coded.front().header;
  if (h0.total_blocks != coded.size()) {
    return Status::InvalidArgument(
        "block store: header says n=" + std::to_string(h0.total_blocks) +
        " but " + std::to_string(coded.size()) + " blocks were staged");
  }
  const CatalogKey key{h0.file_id, h0.version};
  if (staged_.count(key) != 0) {
    return Status::InvalidArgument(
        "block store: file " + std::to_string(key.first) + " v" +
        std::to_string(key.second) + " is already present; StageErase first");
  }

  CatalogEntry entry;
  entry.file_id = h0.file_id;
  entry.version = h0.version;
  entry.m = h0.reconstruct_threshold;
  entry.n = h0.total_blocks;
  entry.payload_bytes = coded.front().payload.size();
  const std::size_t bs = device_->block_size();
  const std::uint64_t run = entry.BlocksPerCoded(bs);

  for (std::uint32_t i = 0; i < entry.n; ++i) {
    const ida::Block& block = coded[i];
    if (block.header.file_id != h0.file_id ||
        block.header.version != h0.version ||
        block.header.reconstruct_threshold != h0.reconstruct_threshold ||
        block.header.total_blocks != h0.total_blocks ||
        block.header.block_index != i) {
      return Status::InvalidArgument(
          "block store: staged blocks disagree on identity (" +
          block.header.ToString() + " vs " + h0.ToString() + ")");
    }
    if (block.payload.size() != entry.payload_bytes) {
      return Status::InvalidArgument(
          "block store: staged blocks have unequal payload sizes");
    }
    if (ida::VerifyChecksum(block) != ida::ChecksumState::kValid) {
      return Status::InvalidArgument(
          "block store: staged block is unstamped or corrupt (" +
          block.header.ToString() + ")");
    }
    // Shadow paging: the run comes from blocks free in the COMMITTED
    // bitmap (staged_used_ only ever accretes within a transaction), so
    // this write cannot touch the committed generation.
    const std::optional<std::uint64_t> first = staged_used_.AllocateRun(run);
    if (!first.has_value()) {
      poisoned_ = true;
      return Status::ResourceExhausted(
          "block store: out of space staging file " +
          std::to_string(key.first) + " v" + std::to_string(key.second) +
          " (" + std::to_string(staged_used_.FreeCount()) +
          " free blocks, need a run of " + std::to_string(run) + ")");
    }
    const IoResult r =
        WriteExtent(*first, block.payload.data(), block.payload.size());
    if (!r.ok()) {
      poisoned_ = true;
      return r.ToStatus("block store: staging " + block.header.ToString());
    }
    entry.blocks.push_back({*first, block.header.checksum});
  }
  staged_.emplace(key, std::move(entry));
  dirty_ = true;
  return Status::OK();
}

Status BlockStore::StageErase(ida::FileId file_id, std::uint64_t version) {
  if (poisoned_) {
    return Status::IoError(
        "block store: poisoned by a failed commit; Abort first");
  }
  const CatalogKey key{file_id, version};
  if (staged_.erase(key) == 0) {
    return Status::NotFound("block store: no entry for file " +
                            std::to_string(file_id) + " v" +
                            std::to_string(version));
  }
  // The erased entry's blocks stay marked in staged_used_ on purpose:
  // they belong to the committed generation until the commit lands.
  dirty_ = true;
  return Status::OK();
}

Status BlockStore::Commit() {
  if (poisoned_) {
    return Status::IoError(
        "block store: poisoned by a failed commit; Abort first");
  }
  if (!dirty_) return Status::OK();

  const std::size_t bs = device_->block_size();
  const std::vector<std::uint8_t> blob = SerializeCatalog(staged_);
  const std::optional<std::uint64_t> first =
      staged_used_.AllocateRun(ExtentBlocks(blob.size(), bs));
  if (!first.has_value()) {
    poisoned_ = true;
    return Status::ResourceExhausted(
        "block store: out of space for the new catalog (" +
        std::to_string(blob.size()) + " bytes)");
  }
  IoResult r = WriteExtent(*first, blob.data(), blob.size());
  if (!r.ok()) {
    poisoned_ = true;
    return r.ToStatus("block store commit: catalog write");
  }
  // Fence: the catalog and all staged payloads must be durable before the
  // superblock that references them can exist.
  r = device_->Sync();
  if (!r.ok()) {
    poisoned_ = true;
    return r.ToStatus("block store commit: pre-flip sync");
  }

  Superblock sb;
  sb.generation = generation_ + 1;
  sb.catalog_first = *first;
  sb.catalog_bytes = blob.size();
  sb.catalog_crc = Crc32c(blob.data(), blob.size());
  const std::vector<std::uint8_t> sector =
      SerializeSuperblock(sb, bs, device_->block_count());
  // THE flip: one sector, into the slot the committed superblock does not
  // occupy. Before the post-flip sync completes, recovery may see either
  // generation — both are consistent.
  r = device_->WriteBlock(sb.generation % 2, sector.data());
  if (!r.ok()) {
    poisoned_ = true;
    return r.ToStatus("block store commit: superblock flip");
  }
  r = device_->Sync();
  if (!r.ok()) {
    poisoned_ = true;
    return r.ToStatus("block store commit: post-flip sync");
  }

  generation_ = sb.generation;
  catalog_first_ = sb.catalog_first;
  catalog_bytes_ = sb.catalog_bytes;
  committed_ = staged_;
  dirty_ = false;
  RebuildBitmaps();
  return Status::OK();
}

void BlockStore::Abort() {
  staged_ = committed_;
  staged_used_ = committed_used_;
  dirty_ = false;
  poisoned_ = false;
}

const CatalogEntry* BlockStore::FindEntry(ida::FileId file_id,
                                          std::uint64_t version) const {
  const auto it = committed_.find(CatalogKey{file_id, version});
  return it == committed_.end() ? nullptr : &it->second;
}

Result<ida::Block> BlockStore::ReadCodedBlock(
    ida::FileId file_id, std::uint64_t version,
    std::uint32_t block_index) const {
  const CatalogEntry* entry = FindEntry(file_id, version);
  if (entry == nullptr) {
    return Status::NotFound("block store: no entry for file " +
                            std::to_string(file_id) + " v" +
                            std::to_string(version));
  }
  if (block_index >= entry->n) {
    return Status::InvalidArgument(
        "block store: block index " + std::to_string(block_index) +
        " out of range for n=" + std::to_string(entry->n));
  }
  const CodedBlockRef& ref = entry->blocks[block_index];
  ida::Block block;
  block.header.file_id = entry->file_id;
  block.header.block_index = block_index;
  block.header.reconstruct_threshold = entry->m;
  block.header.total_blocks = entry->n;
  block.header.version = entry->version;
  block.header.checksum = ref.checksum;
  block.payload.resize(entry->payload_bytes);
  const IoResult r =
      ReadExtent(ref.first_block, block.payload.data(), entry->payload_bytes);
  if (!r.ok()) {
    return r.ToStatus("block store: reading " + block.header.ToString());
  }
  if (ida::VerifyChecksum(block) != ida::ChecksumState::kValid) {
    // Bit rot: the payload on disk no longer matches the wire stamp the
    // catalog promised. Typed rejection — never decoded garbage.
    return IoResult{IoError::kChecksumMismatch, IoOp::kRead, 0,
                    ref.first_block, 0}
        .ToStatus("block store: reading " + block.header.ToString());
  }
  return block;
}

StoreStats BlockStore::Stats() const {
  StoreStats stats;
  stats.generation = generation_;
  stats.entries = committed_.size();
  stats.total_blocks = device_->block_count();
  stats.free_blocks = committed_used_.FreeCount();
  stats.block_size = device_->block_size();
  return stats;
}

}  // namespace bdisk::store
