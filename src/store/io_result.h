/// \file io_result.h
/// \brief Thin typed I/O results for the block-device layer.
///
/// The device stack (block_device.h, fault_device.h) cannot afford — and
/// must not hide — the full generality of Status: a pread that came up
/// short, an injected EIO, and a power-cut are *different* failures, and
/// the recovery sweep asserts on which one occurred. IoResult is the
/// fz::result-style answer: a value-type of a few machine words carrying
/// the error category, the operation that failed, the raw errno (when the
/// OS produced one), the device block involved, and the byte count that
/// actually transferred. No allocation, no message formatting on the hot
/// path; ToStatus() renders the typed fields into a Status at the store's
/// public API boundary, so no error is ever collapsed to a bool on the
/// way up.

#ifndef BDISK_STORE_IO_RESULT_H_
#define BDISK_STORE_IO_RESULT_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace bdisk::store {

/// \brief What failed, mechanically.
enum class IoError : std::uint8_t {
  kOk = 0,
  /// The OS call failed; IoResult::raw_errno holds errno.
  kErrno,
  /// A write persisted fewer bytes than requested (IoResult::bytes).
  kShortWrite,
  /// A read returned fewer bytes than requested (IoResult::bytes).
  kShortRead,
  /// The block index lies beyond the device's fixed size.
  kOutOfRange,
  /// Power was cut at an earlier write boundary; the device is dead and
  /// every subsequent operation fails with this error.
  kPowerCut,
  /// Stored data failed its CRC-32C check (bit rot or a torn write).
  kChecksumMismatch,
  /// Persistent metadata (superblock / catalog) is structurally invalid.
  kCorruptMeta,
};

/// \brief Which device operation was attempted.
enum class IoOp : std::uint8_t {
  kNone = 0,
  kOpen,
  kRead,
  kWrite,
  kSync,
  kTruncate,
};

const char* IoErrorToString(IoError error);
const char* IoOpToString(IoOp op);

/// \brief Outcome of one device operation. Trivially copyable; a few
/// machine words.
struct IoResult {
  IoError error = IoError::kOk;
  IoOp op = IoOp::kNone;
  /// errno of the failed OS call (0 when the failure is synthetic).
  int raw_errno = 0;
  /// Device block the operation addressed (kNoBlock for open/sync).
  std::uint64_t block = kNoBlock;
  /// Bytes actually transferred (meaningful for short reads/writes).
  std::uint64_t bytes = 0;

  static constexpr std::uint64_t kNoBlock = ~0ull;

  /// True iff the operation succeeded.
  explicit operator bool() const { return error == IoError::kOk; }
  bool ok() const { return error == IoError::kOk; }

  static IoResult Ok() { return IoResult{}; }
  static IoResult Errno(IoOp op, int err,
                        std::uint64_t block = kNoBlock) {
    return IoResult{IoError::kErrno, op, err, block, 0};
  }
  static IoResult Short(IoOp op, std::uint64_t block, std::uint64_t bytes) {
    return IoResult{op == IoOp::kRead ? IoError::kShortRead
                                      : IoError::kShortWrite,
                    op, 0, block, bytes};
  }
  static IoResult OutOfRange(IoOp op, std::uint64_t block) {
    return IoResult{IoError::kOutOfRange, op, 0, block, 0};
  }
  static IoResult PowerCut(IoOp op, std::uint64_t block = kNoBlock) {
    return IoResult{IoError::kPowerCut, op, 0, block, 0};
  }

  /// "write of block 17 failed: I/O error (errno 5 'Input/output error')".
  std::string ToString() const;

  /// Renders the typed fields into a Status for the store's Result<T>
  /// boundary, preserving the category: checksum failures map to
  /// kDataLoss (same as wire corruption), ENOSPC to kResourceExhausted,
  /// everything else device-shaped to kIoError. OK maps to OK.
  Status ToStatus(const std::string& context) const;
};

}  // namespace bdisk::store

#endif  // BDISK_STORE_IO_RESULT_H_
