/// \file block_store.h
/// \brief Crash-safe persistent store for dispersed broadcast blocks.
///
/// The store keeps every coded block of every (file, version) pair on a
/// fixed-geometry BlockDevice, with a catalog committed by a two-version
/// superblock swap — the durable twin of the epoch hot-swap contract
/// (sim/epoch.h): the committed generation stays fully readable while the
/// next one is staged, and a single atomic flip makes the new generation
/// current. A crash at ANY write boundary recovers to exactly the old or
/// the new generation, never a torn hybrid.
///
/// On-disk layout (all integers little-endian):
///
///   block 0, block 1   superblock slots. The writer of generation g uses
///                      slot g % 2, so the previous generation's
///                      superblock is never overwritten by the commit that
///                      supersedes it. Each superblock (56 bytes, padded
///                      to one device block):
///                        [ 0] magic            u64  "BDSKSTR1"
///                        [ 8] format           u32  (= 1)
///                        [12] block_size       u32  device sector bytes
///                        [16] block_count      u64  device sectors
///                        [24] generation       u64
///                        [32] catalog_first    u64  catalog extent start
///                        [40] catalog_bytes    u64  catalog blob length
///                        [48] catalog_crc      u32  CRC-32C of the blob
///                        [52] superblock_crc   u32  CRC-32C of bytes [0,52)
///   block 2 ..         data and catalog extents, allocated first-fit from
///                      the free-space bitmap.
///
/// Catalog blob:
///
///   u64 entry_count
///   entry_count x (sorted by (file_id, version)):
///     u32 file_id, u64 version, u32 m, u32 n, u64 payload_bytes,
///     n x { u64 first_block, u32 checksum }
///
/// Each coded block's payload occupies ceil(payload_bytes / block_size)
/// contiguous device blocks; its header is not stored — it is
/// reconstituted from the catalog entry, and `checksum` is the same
/// CRC-32C wire stamp (ida::BlockChecksum) the broadcast server transmits,
/// so a block read from disk is verified by exactly the code path a client
/// uses on a corrupting channel. Every persisted byte is covered by a
/// CRC: coded payloads by the block stamp, the catalog blob by
/// catalog_crc, the superblock by superblock_crc.
///
/// Crash-safety argument (the recovery sweep in
/// tests/store_crash_sweep_test.cc checks it at every write boundary):
///
///  1. Shadow paging: staged writes (coded payloads, the new catalog
///     blob) go only to blocks FREE in the committed bitmap, and blocks
///     freed by a staged erase are not reusable until after the commit —
///     so no pre-flip write can touch a byte the committed generation
///     depends on.
///  2. The flip is a single-sector superblock write to the slot the
///     committed superblock does NOT occupy, fenced by Sync on both
///     sides. If it tears, its CRC fails and recovery selects the other
///     slot — the old generation, intact by (1).
///  3. Open reads both slots and adopts the highest-generation candidate
///     whose superblock CRC, catalog CRC, catalog parse, and allocation
///     consistency all validate.
///
/// The free-space bitmap is derived state, rebuilt from the catalog at
/// Open and after every commit — it is never persisted, so it can never
/// disagree with the catalog.

#ifndef BDISK_STORE_BLOCK_STORE_H_
#define BDISK_STORE_BLOCK_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "ida/block.h"
#include "store/bitmap.h"
#include "store/block_device.h"

namespace bdisk::store {

/// \brief On-disk location and wire checksum of one coded block.
struct CodedBlockRef {
  std::uint64_t first_block = 0;
  std::uint32_t checksum = 0;

  bool operator==(const CodedBlockRef&) const = default;
};

/// \brief One catalog entry: the n coded blocks of (file_id, version).
struct CatalogEntry {
  ida::FileId file_id = ida::kInvalidFileId;
  std::uint64_t version = 0;
  std::uint32_t m = 0;  ///< reconstruction threshold
  std::uint32_t n = 0;  ///< total dispersed blocks
  std::uint64_t payload_bytes = 0;  ///< per coded block
  std::vector<CodedBlockRef> blocks;  ///< n entries

  bool operator==(const CatalogEntry&) const = default;

  /// Device blocks one coded payload occupies.
  std::uint64_t BlocksPerCoded(std::size_t device_block_size) const {
    return (payload_bytes + device_block_size - 1) / device_block_size;
  }
};

/// Catalog key: (file_id, version).
using CatalogKey = std::pair<ida::FileId, std::uint64_t>;
using Catalog = std::map<CatalogKey, CatalogEntry>;

/// \brief Point-in-time store counters (bdisk_planner --store prints them).
struct StoreStats {
  std::uint64_t generation = 0;
  std::uint64_t entries = 0;
  std::uint64_t total_blocks = 0;
  std::uint64_t free_blocks = 0;
  std::size_t block_size = 0;

  std::string ToString() const;
};

/// \brief The crash-safe block store.
///
/// Mutation protocol: StageFile / StageErase accumulate a transaction
/// against the committed catalog; Commit makes it durable with the
/// two-version swap; Abort discards it. Reads always serve the committed
/// generation. Not thread-safe; the simulator's determinism layer owns
/// serialization, as everywhere else in the codebase.
class BlockStore {
 public:
  /// Minimum device block size (the superblock must fit in one sector).
  static constexpr std::size_t kMinBlockSize = 64;
  /// First allocatable device block (0 and 1 are superblock slots).
  static constexpr std::uint64_t kFirstDataBlock = 2;

  /// Initializes `device` with an empty generation-1 catalog. Any previous
  /// store content on the device is destroyed.
  static Result<std::unique_ptr<BlockStore>> Format(
      std::unique_ptr<BlockDevice> device);

  /// Opens an existing store, running recovery: both superblock slots are
  /// read and the highest fully-validating generation is adopted. Fails
  /// with DataLoss if neither validates.
  static Result<std::unique_ptr<BlockStore>> Open(
      std::unique_ptr<BlockDevice> device);

  BlockStore(const BlockStore&) = delete;
  BlockStore& operator=(const BlockStore&) = delete;

  /// Stages the coded blocks of one (file, version). All blocks must share
  /// one header geometry, be stamped (checksum != 0), and the key must not
  /// already be staged. Payload data is written to committed-free device
  /// blocks immediately; the entry becomes readable only after Commit.
  Status StageFile(const std::vector<ida::Block>& coded);

  /// Stages removal of (file_id, version). Its blocks become reusable
  /// only after Commit — never within the staging transaction.
  Status StageErase(ida::FileId file_id, std::uint64_t version);

  /// Durably commits the staged transaction (catalog write + fenced
  /// superblock swap). On failure the store is poisoned: further staging
  /// and commits are rejected until Abort; reads stay on the committed
  /// generation, which is intact by construction.
  Status Commit();

  /// Discards the staged transaction (and clears a commit-failure poison).
  void Abort();

  /// Reads coded block `block_index` of (file_id, version) from the
  /// committed catalog, reconstitutes its header, and verifies the wire
  /// checksum — a damaged sector surfaces as a typed DataLoss, never as
  /// decoded garbage.
  Result<ida::Block> ReadCodedBlock(ida::FileId file_id,
                                    std::uint64_t version,
                                    std::uint32_t block_index) const;

  /// Committed entry lookup; nullptr if absent.
  const CatalogEntry* FindEntry(ida::FileId file_id,
                                std::uint64_t version) const;

  const Catalog& catalog() const { return committed_; }
  std::uint64_t generation() const { return generation_; }
  bool dirty() const { return dirty_; }
  bool poisoned() const { return poisoned_; }

  StoreStats Stats() const;

  /// The underlying device (tests reach through to the fault layer).
  BlockDevice* device() { return device_.get(); }

 private:
  explicit BlockStore(std::unique_ptr<BlockDevice> device)
      : device_(std::move(device)),
        committed_used_(device_->block_count()),
        staged_used_(device_->block_count()) {}

  /// Rebuilds `committed_used_` from `committed_` (+ superblocks and the
  /// committed catalog extent) and resets the staged bitmap to match.
  void RebuildBitmaps();

  /// Writes `bytes` to the extent starting at `first`, zero-padding the
  /// final sector.
  IoResult WriteExtent(std::uint64_t first, const std::uint8_t* bytes,
                       std::uint64_t len);
  /// Reads `len` bytes from the extent starting at `first`.
  IoResult ReadExtent(std::uint64_t first, std::uint8_t* bytes,
                      std::uint64_t len) const;

  std::unique_ptr<BlockDevice> device_;
  std::uint64_t generation_ = 0;
  /// Extent of the committed catalog blob (tracked so the bitmap rebuild
  /// can reserve it).
  std::uint64_t catalog_first_ = 0;
  std::uint64_t catalog_bytes_ = 0;

  Catalog committed_;
  Catalog staged_;
  FreeBitmap committed_used_;
  FreeBitmap staged_used_;
  bool dirty_ = false;
  bool poisoned_ = false;
};

}  // namespace bdisk::store

#endif  // BDISK_STORE_BLOCK_STORE_H_
